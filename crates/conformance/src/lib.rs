//! Analytic-oracle conformance suite for the eight visualization kernels.
//!
//! The study harness measures *power and performance*; this crate checks
//! that the kernels being measured are *correct*, three ways:
//!
//! * **Oracle** ([`oracle`]): run each kernel on an analytic input field
//!   (see [`fields`]) and compare its output against a closed-form
//!   answer — a contoured sphere must have area `4πr²` and genus 0, a
//!   clipped ball must remove `4/3·πr³` of volume, advected particles in
//!   a rigid rotation must stay on their circles, and so on.
//! * **Differential** ([`reference`]): re-run each kernel under 1-thread
//!   and 4-thread rayon pools (outputs must be byte-identical), and
//!   compare against deliberately simple sequential re-implementations
//!   (bit-exact where the reference replicates the arithmetic).
//! * **Metamorphic** ([`metamorphic`]): cross-kernel laws that need no
//!   ground truth at all — clip and its complementary isovolume must
//!   tile the domain, isovolume and all-points threshold must agree on
//!   interior cells, contour areas must grow with the isovalue, and the
//!   contour discretization error must shrink at second order under grid
//!   refinement.
//! * **Time-varying flow** ([`flow`]): the pathline generalization
//!   against an unsteady rotation with a closed-form answer, plus the
//!   frozen-series law (pathline on a single-snapshot series must be
//!   byte-identical to the steady streamline).
//!
//! Every check reduces to one [`CheckResult`] — `|measured − expected| ≤
//! tolerance` — so the whole suite serializes into the run journal as
//! `conformance_check` events, and every group span carries the
//! fingerprint of the exact [`AlgorithmSpec`] it checked (schema v4; see
//! docs/OBSERVABILITY.md and docs/CONFORMANCE.md).

pub mod backend;
pub mod fields;
pub mod flow;
pub mod metamorphic;
pub mod oracle;
pub mod reference;

use powersim::trace::{ConformanceCheck, Event, Journal, Scope};
use std::fmt::Write as _;
use vizalgo::{Algorithm, AlgorithmSpec, Filter, IsoValues, ScalarBand, SphereSpec};
use vizmesh::dataset::Geometry;
use vizmesh::{CellSet, CellShape, DataSet, Vec3};

/// Radius of the clip sphere and the primary contour isovalue.
pub const SPHERE_R: f64 = 0.3;
/// Isovolume band over the x-ramp: `[ISO_LO, ISO_HI]`.
pub const ISO_LO: f64 = 0.3;
pub const ISO_HI: f64 = 0.6;
/// Threshold band over the cell-centered x-ramp. Both bounds are dyadic,
/// so cell centers `(i + ½)/n` on power-of-two grids never land on a
/// boundary and the analytic kept-cell count is exact in `f64`.
pub const THRESH_LO: f64 = 0.25;
pub const THRESH_HI: f64 = 0.75;

/// Which family a check belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckKind {
    /// Closed-form analytic answer.
    Oracle,
    /// Thread-count and sequential-reference comparison.
    Differential,
    /// Cross-kernel law.
    Metamorphic,
}

impl CheckKind {
    pub fn as_str(self) -> &'static str {
        match self {
            CheckKind::Oracle => "oracle",
            CheckKind::Differential => "differential",
            CheckKind::Metamorphic => "metamorphic",
        }
    }
}

/// One conformance check: a measured quantity against its expectation.
#[derive(Debug, Clone)]
pub struct CheckResult {
    pub algorithm: Algorithm,
    /// Namespaced id, e.g. `oracle:sphere-area`.
    pub check: String,
    pub kind: CheckKind,
    /// Grid resolution (cells per axis) the check ran at.
    pub grid: u32,
    pub measured: f64,
    pub expected: f64,
    /// Absolute tolerance; 0 for exact checks.
    pub tolerance: f64,
}

impl CheckResult {
    pub fn new(
        algorithm: Algorithm,
        kind: CheckKind,
        check: impl Into<String>,
        grid: usize,
        measured: f64,
        expected: f64,
        tolerance: f64,
    ) -> Self {
        CheckResult {
            algorithm,
            check: format!("{}:{}", kind.as_str(), check.into()),
            kind,
            grid: grid as u32,
            measured,
            expected,
            tolerance,
        }
    }

    /// A check that could not even be evaluated (missing output); always
    /// fails with a NaN measurement.
    pub fn setup_failure(algorithm: Algorithm, kind: CheckKind, check: &str, grid: usize) -> Self {
        CheckResult::new(algorithm, kind, check, grid, f64::NAN, 0.0, 0.0)
    }

    pub fn pass(&self) -> bool {
        self.measured.is_finite() && (self.measured - self.expected).abs() <= self.tolerance
    }
}

/// Knobs for one conformance run. All defaults use power-of-two grids so
/// grid coordinates are exact dyadic `f64` values.
#[derive(Debug, Clone)]
pub struct ConformanceConfig {
    /// Grid resolutions every oracle/differential check runs at.
    pub grids: Vec<usize>,
    /// Three increasing resolutions for the refinement-order law.
    pub refinement: [usize; 3],
    /// Image width = height for the two renderers.
    pub render_px: usize,
    pub cameras: usize,
    pub particles: usize,
    pub advect_steps: usize,
    /// RK4 step length in fractions of the domain diagonal.
    pub step_fraction: f64,
    /// Seed for the advection particle placement.
    pub seed: u64,
}

impl ConformanceConfig {
    /// The acceptance configuration: every algorithm at 32³ and 64³.
    pub fn full() -> Self {
        ConformanceConfig {
            grids: vec![32, 64],
            refinement: [32, 64, 128],
            render_px: 48,
            cameras: 4,
            particles: 24,
            advect_steps: 200,
            step_fraction: 1e-3,
            seed: 0x00C0_FFEE,
        }
    }

    /// CI configuration: same checks, half the resolution.
    pub fn quick() -> Self {
        ConformanceConfig {
            grids: vec![16, 32],
            refinement: [16, 32, 64],
            render_px: 24,
            cameras: 2,
            particles: 8,
            advect_steps: 100,
            ..ConformanceConfig::full()
        }
    }
}

/// Build the analytic input dataset an algorithm is checked on.
pub fn build_input(alg: Algorithm, n: usize) -> DataSet {
    match alg {
        Algorithm::Contour => fields::sphere_dataset(n),
        Algorithm::Threshold => fields::cell_xramp_dataset(n),
        Algorithm::SphericalClip => fields::energy_dataset(n),
        Algorithm::Isovolume
        | Algorithm::Slice
        | Algorithm::RayTracing
        | Algorithm::VolumeRendering => fields::xramp_dataset(n),
        Algorithm::ParticleAdvection => fields::rotation_dataset(n),
    }
}

/// The canonical [`AlgorithmSpec`] each algorithm is checked under: the
/// analytic constants above bound to this config's size knobs. All
/// conformance filters are built from these specs (the sequential
/// re-implementations in [`reference`] are intentionally independent).
pub fn spec_for(alg: Algorithm, cfg: &ConformanceConfig) -> AlgorithmSpec {
    let px = cfg.render_px;
    match alg {
        Algorithm::Contour => AlgorithmSpec::Contour {
            field: fields::FIELD.into(),
            isovalues: IsoValues::Explicit(vec![SPHERE_R]),
        },
        Algorithm::Threshold => AlgorithmSpec::Threshold {
            field: fields::FIELD.into(),
            band: ScalarBand::Range {
                min: THRESH_LO,
                max: THRESH_HI,
            },
        },
        // The clip input carries its scalar as "energy" (the study field
        // name), matching the filter's carry-through field.
        Algorithm::SphericalClip => AlgorithmSpec::SphericalClip {
            field: "energy".into(),
            sphere: SphereSpec::Explicit {
                center: fields::CENTER,
                radius: SPHERE_R,
            },
        },
        Algorithm::Isovolume => AlgorithmSpec::Isovolume {
            field: fields::FIELD.into(),
            band: ScalarBand::Range {
                min: ISO_LO,
                max: ISO_HI,
            },
        },
        Algorithm::Slice => AlgorithmSpec::Slice {
            field: fields::FIELD.into(),
        },
        Algorithm::ParticleAdvection => AlgorithmSpec::ParticleAdvection {
            field: fields::VELOCITY.into(),
            particles: cfg.particles,
            steps: cfg.advect_steps,
            step_fraction: cfg.step_fraction,
            seed: cfg.seed,
            scenario: Default::default(),
        },
        Algorithm::RayTracing => AlgorithmSpec::RayTracing {
            field: fields::FIELD.into(),
            width: px,
            height: px,
            images: cfg.cameras,
        },
        Algorithm::VolumeRendering => AlgorithmSpec::VolumeRendering {
            field: fields::FIELD.into(),
            width: px,
            height: px,
            images: cfg.cameras,
        },
    }
}

/// Build the filter each algorithm is checked under (the [`spec_for`]
/// plan instantiated against `input`).
pub fn build_filter(alg: Algorithm, cfg: &ConformanceConfig, input: &DataSet) -> Box<dyn Filter> {
    spec_for(alg, cfg).build(input)
}

/// The explicit points + cells of an unstructured output, if present.
pub(crate) fn explicit_parts(ds: &DataSet) -> Option<(&[Vec3], &CellSet)> {
    match &ds.geometry {
        Geometry::Explicit { points, cells } => Some((points, cells)),
        Geometry::Uniform(_) => None,
    }
}

/// Total area of the `Triangle` cells of an unstructured mesh.
pub(crate) fn surface_area(points: &[Vec3], cells: &CellSet) -> f64 {
    let mut area = 0.0;
    for (shape, conn) in cells.iter() {
        if shape == CellShape::Triangle && conn.len() == 3 {
            let a = points[conn[0] as usize];
            let b = points[conn[1] as usize];
            let c = points[conn[2] as usize];
            area += (b - a).cross(c - a).length() * 0.5;
        }
    }
    area
}

/// Number of cells of one shape.
pub(crate) fn count_shape(cells: &CellSet, shape: CellShape) -> usize {
    cells.iter().filter(|(s, _)| *s == shape).count()
}

/// Full results of a conformance run.
#[derive(Debug, Clone, Default)]
pub struct ConformanceReport {
    pub checks: Vec<CheckResult>,
}

impl ConformanceReport {
    pub fn passed(&self) -> usize {
        self.checks.iter().filter(|c| c.pass()).count()
    }

    pub fn failed(&self) -> usize {
        self.checks.len() - self.passed()
    }

    pub fn failures(&self) -> impl Iterator<Item = &CheckResult> {
        self.checks.iter().filter(|c| !c.pass())
    }

    pub fn all_pass(&self) -> bool {
        self.failed() == 0
    }
}

/// Run every check, grouped as `(algorithm, grid, checks)` — one group
/// per algorithm per grid, plus the metamorphic groups.
pub fn run_grouped(cfg: &ConformanceConfig) -> Vec<(Algorithm, u32, Vec<CheckResult>)> {
    let mut groups = Vec::with_capacity(cfg.grids.len() * Algorithm::ALL.len() + 8);
    for &n in &cfg.grids {
        for alg in Algorithm::ALL {
            let input = build_input(alg, n);
            let filter = build_filter(alg, cfg, &input);
            let out = filter.execute(&input);
            let mut checks = oracle::checks(alg, cfg, n, &input, &out);
            checks.extend(reference::checks(alg, cfg, n, &input, &out));
            groups.push((alg, n as u32, checks));
        }
    }
    groups.extend(metamorphic::groups(cfg));
    groups.extend(flow::groups(cfg));
    groups
}

/// Run every check and flatten into one report.
pub fn run_all(cfg: &ConformanceConfig) -> ConformanceReport {
    let checks = run_grouped(cfg)
        .into_iter()
        .flat_map(|(_, _, checks)| checks)
        .collect();
    ConformanceReport { checks }
}

/// Run every check, journaling one `conformance_check` event per check
/// plus one zero-width `Scope::Conformance` span per group carrying the
/// fingerprint of the canonical spec the group checked (see
/// docs/OBSERVABILITY.md).
pub fn run_journaled(cfg: &ConformanceConfig, journal: &mut Journal) -> ConformanceReport {
    let mut all = Vec::new();
    for (alg, grid, checks) in run_grouped(cfg) {
        journal_spec_group(cfg, journal, alg, grid, &checks);
        all.extend(checks);
    }
    ConformanceReport { checks: all }
}

/// Journal one canonical-spec group under its traditional fingerprint.
fn journal_spec_group(
    cfg: &ConformanceConfig,
    journal: &mut Journal,
    alg: Algorithm,
    grid: u32,
    checks: &[CheckResult],
) {
    journal_group(
        journal,
        format!("conformance:{}:{}", alg.name(), grid),
        alg,
        grid,
        checks,
        spec_for(alg, cfg).fingerprint(),
    );
}

/// Journal one conformance group: one `conformance_check` event per
/// check plus the zero-width `Scope::Conformance` span carrying the
/// group's spec fingerprint. Shared by the canonical-spec run above and
/// the backend-differential run in [`backend`].
pub(crate) fn journal_group(
    journal: &mut Journal,
    span_name: String,
    alg: Algorithm,
    grid: u32,
    checks: &[CheckResult],
    spec_fp: u64,
) {
    let t0 = journal.now();
    let failures = checks.iter().filter(|c| !c.pass()).count();
    for c in checks {
        journal_check(journal, alg, grid, c);
    }
    journal.push_span(
        Scope::Conformance,
        span_name,
        t0,
        None,
        vec![
            ("grid", f64::from(grid)),
            ("checks", checks.len() as f64),
            ("failures", failures as f64),
            ("spec_fp", spec_fp as f64),
        ],
    );
}

/// One `conformance_check` journal event.
fn journal_check(journal: &mut Journal, alg: Algorithm, grid: u32, c: &CheckResult) {
    journal.push(Event::ConformanceCheck(ConformanceCheck {
        t: journal.now(),
        algorithm: alg.name().to_string(),
        check: c.check.clone(),
        kind: c.kind.as_str().to_string(),
        grid,
        measured: c.measured,
        expected: c.expected,
        tolerance: c.tolerance,
        pass: c.pass(),
    }));
}

/// Render the report as the fixed-width table the `reproduce conformance`
/// verb prints.
pub fn render_table(report: &ConformanceReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<18} {:>5} {:<34} {:>13} {:>13} {:>9}  {}",
        "ALGORITHM", "GRID", "CHECK", "MEASURED", "EXPECTED", "TOL", "STATUS"
    );
    for c in &report.checks {
        let _ = writeln!(
            out,
            "{:<18} {:>5} {:<34} {:>13.6e} {:>13.6e} {:>9.1e}  {}",
            c.algorithm.name(),
            c.grid,
            c.check,
            c.measured,
            c.expected,
            c.tolerance,
            if c.pass() { "PASS" } else { "FAIL" }
        );
    }
    let _ = writeln!(
        out,
        "{} checks, {} passed, {} failed",
        report.checks.len(),
        report.passed(),
        report.failed()
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_result_pass_semantics() {
        let ok = CheckResult::new(
            Algorithm::Contour,
            CheckKind::Oracle,
            "x",
            8,
            1.0,
            1.05,
            0.1,
        );
        assert!(ok.pass());
        let fail = CheckResult::new(Algorithm::Contour, CheckKind::Oracle, "x", 8, 1.0, 1.2, 0.1);
        assert!(!fail.pass());
        let nan = CheckResult::setup_failure(Algorithm::Contour, CheckKind::Oracle, "x", 8);
        assert!(!nan.pass());
        assert_eq!(nan.check, "oracle:x");
    }

    #[test]
    fn config_grids_are_powers_of_two() {
        for cfg in [ConformanceConfig::full(), ConformanceConfig::quick()] {
            for n in cfg.grids.iter().chain(cfg.refinement.iter()) {
                assert!(n.is_power_of_two(), "grid {n} must be a power of two");
            }
        }
    }

    #[test]
    fn every_algorithm_builds_input_and_filter() {
        let cfg = ConformanceConfig::quick();
        for alg in Algorithm::ALL {
            let input = build_input(alg, 4);
            let filter = build_filter(alg, &cfg, &input);
            assert_eq!(filter.name(), alg.name());
        }
    }

    #[test]
    fn table_renders_every_check() {
        let report = ConformanceReport {
            checks: vec![CheckResult::new(
                Algorithm::Slice,
                CheckKind::Oracle,
                "slice-area",
                16,
                3.0,
                3.0,
                1e-9,
            )],
        };
        let t = render_table(&report);
        assert!(t.contains("oracle:slice-area"));
        assert!(t.contains("PASS"));
        assert!(t.contains("1 checks, 1 passed, 0 failed"));
    }
}
