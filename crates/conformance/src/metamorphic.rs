//! Metamorphic checks: cross-kernel laws that hold without any ground
//! truth.
//!
//! * **clip-complement** — the spherical clip keeps the outside of the
//!   ball, the `f ≤ r` isovolume of the distance field keeps the inside;
//!   both discretize the same piecewise-linear boundary, so their
//!   volumes must tile the unit cube.
//! * **interior-threshold** — an all-points threshold over a point field
//!   keeps exactly the cells the isovolume passes through whole.
//! * **isovalue-monotone** — larger isovalues of the distance field give
//!   strictly larger contour spheres.
//! * **refinement-order** — the contour area error against `4πr²` must
//!   shrink at second order as the grid refines.

use crate::fields::{self, CENTER, FIELD};
use crate::{
    count_shape, explicit_parts, surface_area, CheckKind, CheckResult, ConformanceConfig, ISO_HI,
    ISO_LO, SPHERE_R,
};
use std::f64::consts::PI;
use vizalgo::{Algorithm, AlgorithmSpec, IsoValues, ScalarBand, SphereSpec};
use vizmesh::{validate_cells, CellShape};

const KIND: CheckKind = CheckKind::Metamorphic;

/// All metamorphic check groups for one configuration.
pub fn groups(cfg: &ConformanceConfig) -> Vec<(Algorithm, u32, Vec<CheckResult>)> {
    let n = cfg.grids.last().copied().unwrap_or(32);
    vec![
        (Algorithm::SphericalClip, n as u32, vec![clip_complement(n)]),
        (Algorithm::Isovolume, n as u32, vec![interior_threshold(n)]),
        (Algorithm::Contour, n as u32, vec![isovalue_monotone(n)]),
        (
            Algorithm::Contour,
            cfg.refinement[2] as u32,
            vec![refinement_order(cfg)],
        ),
    ]
}

/// Total volume of an unstructured output (0 when there is none).
fn volume_of(out: &vizalgo::FilterOutput) -> Option<f64> {
    let ds = out.dataset.as_ref()?;
    let (points, cells) = explicit_parts(ds)?;
    Some(validate_cells(points, cells, 0.0).total_volume)
}

/// vol(clip ∖ ball) + vol(ball) = 1: the clip on the constant-energy
/// cube plus the `f ∈ [−1, r]` isovolume of the distance field.
fn clip_complement(n: usize) -> CheckResult {
    let alg = Algorithm::SphericalClip;
    let check = "clip-complement";
    let clip_in = fields::energy_dataset(n);
    let outside = AlgorithmSpec::SphericalClip {
        field: "energy".into(),
        sphere: SphereSpec::Explicit {
            center: CENTER,
            radius: SPHERE_R,
        },
    }
    .build(&clip_in)
    .execute(&clip_in);
    let ball_in = fields::sphere_dataset(n);
    let inside = AlgorithmSpec::Isovolume {
        field: FIELD.into(),
        band: ScalarBand::Range {
            min: -1.0,
            max: SPHERE_R,
        },
    }
    .build(&ball_in)
    .execute(&ball_in);
    let (Some(v_out), Some(v_in)) = (volume_of(&outside), volume_of(&inside)) else {
        return CheckResult::setup_failure(alg, KIND, check, n);
    };
    CheckResult::new(alg, KIND, check, n, v_out + v_in, 1.0, 1e-9)
}

/// All-points threshold of the point ramp keeps exactly the isovolume's
/// whole (hexahedral) cells.
fn interior_threshold(n: usize) -> CheckResult {
    let alg = Algorithm::Isovolume;
    let check = "interior-threshold";
    let input = fields::xramp_dataset(n);
    let band = ScalarBand::Range {
        min: ISO_LO,
        max: ISO_HI,
    };
    let thresh = AlgorithmSpec::Threshold {
        field: FIELD.into(),
        band: band.clone(),
    }
    .build(&input)
    .execute(&input);
    let iso = AlgorithmSpec::Isovolume {
        field: FIELD.into(),
        band,
    }
    .build(&input)
    .execute(&input);
    let count = |out: &vizalgo::FilterOutput| {
        out.dataset
            .as_ref()
            .and_then(explicit_parts)
            .map(|(_, cells)| count_shape(cells, CellShape::Hexahedron))
    };
    let (Some(a), Some(b)) = (count(&thresh), count(&iso)) else {
        return CheckResult::setup_failure(alg, KIND, check, n);
    };
    CheckResult::new(alg, KIND, check, n, a as f64, b as f64, 0.0)
}

/// Contour area of the distance field at one isovalue.
fn sphere_area(n: usize, iso: f64) -> Option<f64> {
    let input = fields::sphere_dataset(n);
    let out = AlgorithmSpec::Contour {
        field: FIELD.into(),
        isovalues: IsoValues::Explicit(vec![iso]),
    }
    .build(&input)
    .execute(&input);
    let ds = out.dataset?;
    let (points, cells) = explicit_parts(&ds)?;
    Some(surface_area(points, cells))
}

/// Areas at isovalues 0.1 < 0.2 < 0.3 < 0.4 must strictly increase.
fn isovalue_monotone(n: usize) -> CheckResult {
    let alg = Algorithm::Contour;
    let check = "isovalue-monotone";
    let mut areas = Vec::with_capacity(4);
    for iso in [0.1, 0.2, 0.3, 0.4] {
        match sphere_area(n, iso) {
            Some(a) => areas.push(a),
            None => return CheckResult::setup_failure(alg, KIND, check, n),
        }
    }
    let violations = areas.windows(2).filter(|w| w[1] <= w[0]).count();
    CheckResult::new(alg, KIND, check, n, violations as f64, 0.0, 0.0)
}

/// Observed convergence order of the contour area error across the three
/// refinement grids: `log(e_coarse/e_fine) / log(n_fine/n_coarse)`,
/// which must sit near 2 (chordal approximation of a curved surface).
fn refinement_order(cfg: &ConformanceConfig) -> CheckResult {
    let alg = Algorithm::Contour;
    let check = "refinement-order";
    let exact = 4.0 * PI * SPHERE_R * SPHERE_R;
    let [n0, _, n2] = cfg.refinement;
    let (Some(a0), Some(a2)) = (sphere_area(n0, SPHERE_R), sphere_area(n2, SPHERE_R)) else {
        return CheckResult::setup_failure(alg, KIND, check, cfg.refinement[2]);
    };
    let (e0, e2) = ((a0 - exact).abs(), (a2 - exact).abs());
    let order = if e0 > 0.0 && e2 > 0.0 {
        (e0 / e2).ln() / (n2 as f64 / n0 as f64).ln()
    } else {
        f64::NAN
    };
    CheckResult::new(alg, KIND, check, cfg.refinement[2], order, 2.15, 0.45)
}
