//! Backend-differential conformance: traditional vs the DPP backend.
//!
//! For every algorithm the data-parallel-primitives backend formulates
//! (`vizalgo::dpp`), this module executes the *same* canonical
//! [`spec_for`] plan through both [`Backend`]s on the same analytic
//! input and compares the outputs check by check.
//!
//! Exactness posture (the table lives in docs/DPP.md): contour,
//! isovolume, and slice are **bit-identical** — every comparison here
//! carries tolerance 0. Threshold produces the identical cell list and
//! the identical welded point *set*, but numbers its points in grid
//! order instead of first-use order, so the one order-sensitive float
//! checksum (`backend:coord-checksum`) carries a documented relative
//! tolerance of `1e-9` — the only nonzero tolerance in this module. The
//! order-insensitive checks (`backend:point-set`, which compares the
//! bit-exact sorted coordinate multisets, and `backend:resolved-geometry`,
//! which resolves connectivity through the point arrays before
//! summing) stay exact even for threshold.

use crate::{
    build_input, explicit_parts, spec_for, CheckKind, CheckResult, ConformanceConfig,
    ConformanceReport,
};
use powersim::trace::{Journal, Scope};
use vizalgo::dpp::dpp_algorithms;
use vizalgo::{Algorithm, Backend, PrimitiveReport};
use vizmesh::{CellSet, DataSet, FieldData, Vec3};

/// One algorithm × grid differential group: its checks plus the DPP
/// execution's primitive-counter trail (journaled as schema-v6
/// `Primitive` spans by [`run_journaled`]).
#[derive(Debug, Clone)]
pub struct DppGroup {
    pub algorithm: Algorithm,
    pub grid: u32,
    pub checks: Vec<CheckResult>,
    pub primitives: Vec<PrimitiveReport>,
}

/// Run one algorithm through both backends at grid size `n` and compare.
pub fn checks(alg: Algorithm, cfg: &ConformanceConfig, n: usize) -> DppGroup {
    let input = build_input(alg, n);
    let spec = spec_for(alg, cfg);
    let trad = spec
        .build_with(Backend::Traditional, &input)
        .execute(&input);
    let dpp = spec.build_with(Backend::Dpp, &input).execute(&input);
    let mut out = Vec::with_capacity(7);

    let (Some(tds), Some(dds)) = (&trad.dataset, &dpp.dataset) else {
        out.push(CheckResult::setup_failure(
            alg,
            CheckKind::Differential,
            "backend:dataset",
            n,
        ));
        return group(alg, n, out, dpp.primitives);
    };
    let (Some((tp, tc)), Some((dp, dc))) = (explicit_parts(tds), explicit_parts(dds)) else {
        out.push(CheckResult::setup_failure(
            alg,
            CheckKind::Differential,
            "backend:explicit-geometry",
            n,
        ));
        return group(alg, n, out, dpp.primitives);
    };

    out.push(CheckResult::new(
        alg,
        CheckKind::Differential,
        "backend:cell-count",
        n,
        dc.iter().count() as f64,
        tc.iter().count() as f64,
        0.0,
    ));
    out.push(CheckResult::new(
        alg,
        CheckKind::Differential,
        "backend:point-count",
        n,
        dp.len() as f64,
        tp.len() as f64,
        0.0,
    ));
    // Connectivity resolved through the point arrays before summing:
    // both backends emit cells in the same order referencing the same
    // grid locations, so this is exact even when point *numbering*
    // differs (threshold).
    out.push(CheckResult::new(
        alg,
        CheckKind::Differential,
        "backend:resolved-geometry",
        n,
        geometry_checksum(dp, dc),
        geometry_checksum(tp, tc),
        0.0,
    ));
    // Storage-order coordinate sum: exact for the bit-identical
    // formulations; threshold sums the same multiset in a different
    // order, so it carries the documented 1e-9 relative tolerance.
    let expected_order = point_order_checksum(tp);
    let order_tol = if alg == Algorithm::Threshold {
        1e-9 * expected_order.abs().max(1.0)
    } else {
        0.0
    };
    out.push(CheckResult::new(
        alg,
        CheckKind::Differential,
        "backend:coord-checksum",
        n,
        point_order_checksum(dp),
        expected_order,
        order_tol,
    ));
    // Bit-exact sorted coordinate multisets: order-insensitive, exact
    // for all four formulations.
    out.push(CheckResult::new(
        alg,
        CheckKind::Differential,
        "backend:point-set",
        n,
        multiset_mismatches(dp, tp),
        0.0,
        0.0,
    ));
    out.push(CheckResult::new(
        alg,
        CheckKind::Differential,
        "backend:field-checksum",
        n,
        field_checksum(dds),
        field_checksum(tds),
        0.0,
    ));
    // The DPP execution must journal primitive counters and the
    // traditional one must not.
    out.push(CheckResult::new(
        alg,
        CheckKind::Differential,
        "backend:primitives",
        n,
        f64::from(u8::from(
            !dpp.primitives.is_empty() && trad.primitives.is_empty(),
        )),
        1.0,
        0.0,
    ));
    group(alg, n, out, dpp.primitives)
}

fn group(
    alg: Algorithm,
    n: usize,
    checks: Vec<CheckResult>,
    prims: Vec<PrimitiveReport>,
) -> DppGroup {
    DppGroup {
        algorithm: alg,
        grid: n as u32,
        checks,
        primitives: prims,
    }
}

/// Every DPP-formulated algorithm at every configured grid size.
pub fn run_grouped(cfg: &ConformanceConfig) -> Vec<DppGroup> {
    let mut groups = Vec::with_capacity(cfg.grids.len() * 4);
    for &n in &cfg.grids {
        for alg in dpp_algorithms() {
            groups.push(checks(alg, cfg, n));
        }
    }
    groups
}

/// Run every backend-differential check and flatten into one report.
pub fn run_all(cfg: &ConformanceConfig) -> ConformanceReport {
    let checks = run_grouped(cfg)
        .into_iter()
        .flat_map(|g| g.checks)
        .collect();
    ConformanceReport { checks }
}

/// [`run_all`], journaling one `conformance_check` event per check, one
/// zero-width `Scope::Conformance` span `conformance:dpp:{alg}:{grid}`
/// per group carrying the DPP-tagged spec fingerprint, and one
/// zero-width schema-v6 `Scope::Primitive` span per primitive op the
/// group's DPP execution invoked.
pub fn run_journaled(cfg: &ConformanceConfig, journal: &mut Journal) -> ConformanceReport {
    let mut all = Vec::new();
    for g in run_grouped(cfg) {
        journal_dpp_group(cfg, journal, &g);
        all.extend(g.checks);
    }
    ConformanceReport { checks: all }
}

fn journal_dpp_group(cfg: &ConformanceConfig, journal: &mut Journal, g: &DppGroup) {
    let fp = spec_for(g.algorithm, cfg).fingerprint_with(Backend::Dpp);
    crate::journal_group(
        journal,
        format!("conformance:dpp:{}:{}", g.algorithm.name(), g.grid),
        g.algorithm,
        g.grid,
        &g.checks,
        fp,
    );
    for r in &g.primitives {
        journal_primitive(journal, r);
    }
}

fn journal_primitive(journal: &mut Journal, r: &PrimitiveReport) {
    let t = journal.now();
    journal.push_span(
        Scope::Primitive,
        format!("primitive:{}", r.op.name()),
        t,
        None,
        vec![
            ("invocations", r.counters.invocations as f64),
            ("elements", r.counters.elements as f64),
            ("bytes_read", r.counters.bytes_read as f64),
            ("bytes_written", r.counters.bytes_written as f64),
            ("flops", r.counters.flops as f64),
        ],
    );
}

/// Coordinate sum with per-axis weights, resolved through connectivity
/// in cell/slot order.
fn geometry_checksum(points: &[Vec3], cells: &CellSet) -> f64 {
    let mut sum = 0.0;
    for (_, conn) in cells.iter() {
        for &p in conn {
            let v = points[p as usize];
            sum += v.x + 2.0 * v.y + 3.0 * v.z;
        }
    }
    sum
}

/// Coordinate sum in point-storage order (order-sensitive).
fn point_order_checksum(points: &[Vec3]) -> f64 {
    let mut sum = 0.0;
    for v in points {
        sum += v.x + 2.0 * v.y + 3.0 * v.z;
    }
    sum
}

/// Sum of every scalar field value, in field/storage order.
fn field_checksum(ds: &DataSet) -> f64 {
    let mut sum = 0.0;
    for f in &ds.fields {
        if let FieldData::Scalar(vals) = &f.data {
            for v in vals {
                sum += v;
            }
        }
    }
    sum
}

/// Number of positions at which the bit-exact sorted coordinate
/// multisets disagree (length mismatch counts fully).
fn multiset_mismatches(a: &[Vec3], b: &[Vec3]) -> f64 {
    if a.len() != b.len() {
        return a.len().abs_diff(b.len()) as f64;
    }
    let sa = sorted_bits(a);
    let sb = sorted_bits(b);
    let mut mismatches = 0usize;
    for (x, y) in sa.iter().zip(&sb) {
        if x != y {
            mismatches += 1;
        }
    }
    mismatches as f64
}

fn sorted_bits(points: &[Vec3]) -> Vec<(u64, u64, u64)> {
    let mut out = Vec::with_capacity(points.len());
    for v in points {
        out.push((v.x.to_bits(), v.y.to_bits(), v.z.to_bits()));
    }
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_backend_suite_passes() {
        let cfg = ConformanceConfig::quick();
        let groups = run_grouped(&ConformanceConfig {
            grids: vec![8],
            ..cfg
        });
        assert_eq!(groups.len(), 4, "one group per DPP algorithm");
        for g in &groups {
            assert!(
                !g.primitives.is_empty(),
                "{} journaled no primitives",
                g.algorithm
            );
            for c in &g.checks {
                assert!(
                    c.pass(),
                    "{} {} measured {} expected {} tol {}",
                    g.algorithm,
                    c.check,
                    c.measured,
                    c.expected,
                    c.tolerance
                );
            }
        }
    }

    #[test]
    fn exact_formulations_carry_zero_tolerance() {
        let cfg = ConformanceConfig {
            grids: vec![8],
            ..ConformanceConfig::quick()
        };
        for g in run_grouped(&cfg) {
            for c in &g.checks {
                if g.algorithm == Algorithm::Threshold
                    && c.check == "differential:backend:coord-checksum"
                {
                    assert!(
                        c.tolerance > 0.0,
                        "threshold coord checksum is order-tolerant"
                    );
                } else {
                    assert_eq!(c.tolerance, 0.0, "{} {}", g.algorithm, c.check);
                }
            }
        }
    }

    #[test]
    fn journaled_run_emits_primitive_spans() {
        let cfg = ConformanceConfig {
            grids: vec![8],
            ..ConformanceConfig::quick()
        };
        let mut journal = Journal::with_capacity(4096);
        let report = run_journaled(&cfg, &mut journal);
        assert!(
            report.all_pass(),
            "{:?}",
            report.failures().collect::<Vec<_>>()
        );
        let jsonl = journal.to_jsonl();
        assert!(
            jsonl.contains("\"scope\":\"primitive\""),
            "primitive spans journaled"
        );
        assert!(jsonl.contains("primitive:map"), "map span present");
        assert!(
            jsonl.contains("conformance:dpp:Contour:8"),
            "group span present"
        );
    }
}
