//! Time-varying flow checks: the pathline generalization against a
//! closed-form unsteady rotation, plus the frozen-series metamorphic law.
//!
//! * **Pathline oracle** — a [`FieldSeries`] of rigid-rotation snapshots
//!   whose angular rate grows linearly, `ω(t) = ω₀ + a·t`. The field is
//!   linear in space (trilinear sampling is exact) and linear in `t`
//!   between snapshots (the series' temporal lerp is exact), so the RK4
//!   pathline integrates the true ODE `dθ/dt = ω(t)`, `dr/dt = 0`:
//!   trajectories stay planar to the bit, conserve radius to integrator
//!   order, and turn through exactly `Δθ(T) = ω₀·T + a·T²/2` where `T`
//!   is the polyline's integrated time. The angle check documents RK4's
//!   global `O(h⁴)` error: at the suite's step sizes (`h ≈ 1.7·10⁻³`
//!   diagonals) the drift is ≲ 10⁻¹¹, pinned at 10⁻⁸ relative.
//! * **Frozen metamorphic law** — a pathline on a single-snapshot
//!   [`FieldSeries::frozen`] series must be *byte-identical* to the
//!   steady streamline on the same dataset (the kernel's documented
//!   bit-exactness guarantee): same output dataset, same kernel report.
//!
//! Kernels are built through [`AlgorithmSpec::build_flow`], the
//! sanctioned registry arm for series execution.

use crate::fields::{self, CENTER};
use crate::{CheckKind, CheckResult, ConformanceConfig};
use std::f64::consts::PI;
use std::sync::Arc;
use vizalgo::{Algorithm, AlgorithmSpec, FlowMode, FlowScenario, ParticleAdvection};
use vizmesh::{CellShape, FieldSeries};

/// Initial angular rate of the unsteady rotation.
const OMEGA0: f64 = 1.0;
/// dω/dt — linear in `t`, so piecewise-linear temporal lerp is exact.
const OMEGA_RATE: f64 = 0.5;
/// Snapshot spacing and count: knots at `t = 0, 0.05, …, 0.45`, past the
/// longest pathline the full config integrates (200 steps × √3·10⁻³ ≈
/// 0.35 time units).
const SNAP_DT: f64 = 0.05;
const SNAPSHOTS: usize = 10;

/// The two time-varying flow groups, run at the largest configured grid:
/// the unsteady-rotation pathline oracle and the frozen-series
/// metamorphic law.
pub fn groups(cfg: &ConformanceConfig) -> Vec<(Algorithm, u32, Vec<CheckResult>)> {
    let n = cfg.grids.last().copied().unwrap_or(32);
    vec![
        (
            Algorithm::ParticleAdvection,
            n as u32,
            pathline_oracle(cfg, n),
        ),
        (
            Algorithm::ParticleAdvection,
            n as u32,
            vec![frozen_pathline_exact(cfg, n)],
        ),
    ]
}

/// The canonical advection spec under `scenario` (identical to
/// [`crate::spec_for`]'s advection arm apart from the scenario).
fn advection_spec(cfg: &ConformanceConfig, scenario: FlowScenario) -> AlgorithmSpec {
    AlgorithmSpec::ParticleAdvection {
        field: fields::VELOCITY.into(),
        particles: cfg.particles,
        steps: cfg.advect_steps,
        step_fraction: cfg.step_fraction,
        seed: cfg.seed,
        scenario,
    }
}

fn pathline_kernel(cfg: &ConformanceConfig) -> Option<ParticleAdvection> {
    let scenario = FlowScenario {
        mode: FlowMode::Pathline,
        ..FlowScenario::default()
    };
    advection_spec(cfg, scenario).build_flow()
}

/// Pathlines through the accelerating rotation, checked against the
/// closed-form answer.
fn pathline_oracle(cfg: &ConformanceConfig, n: usize) -> Vec<CheckResult> {
    const KIND: CheckKind = CheckKind::Oracle;
    let alg = Algorithm::ParticleAdvection;
    let mut series = FieldSeries::with_capacity(SNAPSHOTS);
    for k in 0..SNAPSHOTS {
        let t = k as f64 * SNAP_DT;
        let omega = OMEGA0 + OMEGA_RATE * t;
        series.record(t, Arc::new(fields::rotation_dataset_scaled(n, omega)));
    }
    let Some(kernel) = pathline_kernel(cfg) else {
        return vec![CheckResult::setup_failure(alg, KIND, "pathline-angle", n)];
    };
    let out = kernel.execute_series(&series);
    let parts = out
        .dataset
        .as_ref()
        .and_then(|ds| crate::explicit_parts(ds));
    let Some((points, cells)) = parts else {
        return vec![CheckResult::setup_failure(alg, KIND, "pathline-angle", n)];
    };
    // Step length and start time match the kernel: h in fractions of the
    // input diagonal, integration starting at the first knot.
    let Some((_, first)) = series.get(0) else {
        return vec![CheckResult::setup_failure(alg, KIND, "pathline-angle", n)];
    };
    let h = first.bounds().diagonal() * cfg.step_fraction;
    let mut max_z = 0.0f64;
    let mut max_radius_drift = 0.0f64;
    let mut max_angle_err = 0.0f64;
    let mut path = Vec::with_capacity(cfg.advect_steps + 1);
    for (shape, conn) in cells.iter() {
        if shape != CellShape::PolyLine || conn.len() < 2 {
            continue;
        }
        path.clear();
        path.extend(conn.iter().map(|&i| points[i as usize]));
        let r0 = ((path[0].x - CENTER.x).powi(2) + (path[0].y - CENTER.y).powi(2)).sqrt();
        for p in &path {
            max_z = max_z.max((p.z - path[0].z).abs());
        }
        // As in the steady oracle: tight orbits amplify rounding, the
        // macroscopic ones carry the law.
        if r0 < 0.05 {
            continue;
        }
        let mut angle = 0.0f64;
        let mut prev = f64::atan2(path[0].y - CENTER.y, path[0].x - CENTER.x);
        for p in &path[1..] {
            let r = ((p.x - CENTER.x).powi(2) + (p.y - CENTER.y).powi(2)).sqrt();
            max_radius_drift = max_radius_drift.max((r - r0).abs() / r0);
            let th = f64::atan2(p.y - CENTER.y, p.x - CENTER.x);
            let mut d = th - prev;
            if d > PI {
                d -= 2.0 * PI;
            } else if d < -PI {
                d += 2.0 * PI;
            }
            angle += d;
            prev = th;
        }
        // Closed form: Δθ = ω₀·T + a·T²/2 over the polyline's own
        // integrated span (early domain exits shorten T, not the law).
        let t_total = (path.len() - 1) as f64 * h;
        let expected = OMEGA0 * t_total + 0.5 * OMEGA_RATE * t_total * t_total;
        max_angle_err = max_angle_err.max((angle - expected).abs() / expected);
    }
    vec![
        CheckResult::new(alg, KIND, "pathline-planar", n, max_z, 0.0, 0.0),
        CheckResult::new(
            alg,
            KIND,
            "pathline-radius-drift",
            n,
            max_radius_drift,
            0.0,
            1e-9,
        ),
        CheckResult::new(alg, KIND, "pathline-angle", n, max_angle_err, 0.0, 1e-8),
    ]
}

/// Streamline ≡ pathline-on-frozen-series: the steady kernel's output and
/// the pathline executed over `FieldSeries::frozen` of the same dataset
/// must match byte-for-byte, kernel report included.
fn frozen_pathline_exact(cfg: &ConformanceConfig, n: usize) -> CheckResult {
    const KIND: CheckKind = CheckKind::Metamorphic;
    let alg = Algorithm::ParticleAdvection;
    let check = "frozen-pathline-exact";
    let input = fields::rotation_dataset(n);
    let steady = advection_spec(cfg, FlowScenario::default())
        .build(&input)
        .execute(&input);
    let Some(kernel) = pathline_kernel(cfg) else {
        return CheckResult::setup_failure(alg, KIND, check, n);
    };
    let frozen = kernel.execute_series(&FieldSeries::frozen(Arc::new(input)));
    let identical = steady.dataset == frozen.dataset
        && format!("{:?}", steady.kernels) == format!("{:?}", frozen.kernels);
    let measured = if identical { 0.0 } else { 1.0 };
    CheckResult::new(alg, KIND, check, n, measured, 0.0, 0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flow_groups_pass_at_quick_resolution() {
        let cfg = ConformanceConfig::quick();
        let groups = groups(&cfg);
        assert_eq!(groups.len(), 2);
        for (alg, grid, checks) in &groups {
            assert_eq!(*alg, Algorithm::ParticleAdvection);
            assert_eq!(*grid, 32);
            for c in checks {
                assert!(
                    c.pass(),
                    "{}: measured {} vs {} ± {}",
                    c.check,
                    c.measured,
                    c.expected,
                    c.tolerance
                );
            }
        }
        let names: Vec<_> = groups
            .iter()
            .flat_map(|(_, _, cs)| cs.iter().map(|c| c.check.clone()))
            .collect();
        assert_eq!(
            names,
            [
                "oracle:pathline-planar",
                "oracle:pathline-radius-drift",
                "oracle:pathline-angle",
                "metamorphic:frozen-pathline-exact",
            ]
        );
    }

    #[test]
    fn scaled_rotation_matches_the_unit_field_at_omega_one() {
        let a = fields::rotation_dataset(8);
        let b = fields::rotation_dataset_scaled(8, 1.0);
        assert_eq!(a, b);
    }
}
