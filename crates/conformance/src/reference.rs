//! Differential checks: thread-count invariance and deliberately simple
//! sequential re-implementations.
//!
//! The references here trade every optimization for obviousness — plain
//! `for` loops over cells in raster order, a `HashMap` weld, a
//! brute-force ray/triangle loop — but replicate the kernels'
//! *arithmetic* exactly, so the comparison is bit-exact (tolerance 0).

use crate::fields::{CENTER, FIELD, VELOCITY};
use crate::{
    count_shape, explicit_parts, CheckKind, CheckResult, ConformanceConfig, ISO_HI, ISO_LO,
    SPHERE_R, THRESH_HI, THRESH_LO,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use vizalgo::colormap::ColorMap;
use vizalgo::contour::{triangle_table, EDGES};
use vizalgo::raytrace::external_face_triangles;
use vizalgo::{Algorithm, FilterOutput, ThreeSlice};
use vizmesh::{Camera, CellShape, DataSet, UniformGrid, Vec3};

const KIND: CheckKind = CheckKind::Differential;

/// Differential checks for `alg` at grid `n`: thread invariance plus the
/// sequential-reference comparison.
pub fn checks(
    alg: Algorithm,
    cfg: &ConformanceConfig,
    n: usize,
    input: &DataSet,
    out: &FilterOutput,
) -> Vec<CheckResult> {
    let mut checks = vec![thread_invariance(alg, cfg, n, input)];
    match alg {
        Algorithm::Contour => checks.push(contour_reference(n, input, out)),
        Algorithm::Threshold => checks.push(threshold_reference(n, input, out)),
        Algorithm::SphericalClip => checks.push(clip_reference(n, input, out)),
        Algorithm::Isovolume => checks.push(isovolume_reference(n, input, out)),
        Algorithm::Slice => checks.push(slice_reference(n, input, out)),
        Algorithm::ParticleAdvection => checks.push(advection_reference(cfg, n, input, out)),
        // The brute-force ray loop is O(pixels × triangles); run it at
        // the smallest grid only.
        Algorithm::RayTracing => {
            if Some(&n) == cfg.grids.first() {
                checks.push(raytrace_reference(cfg, n, input, out));
            }
        }
        Algorithm::VolumeRendering => checks.push(volren_reference(cfg, n, input, out)),
    }
    checks
}

/// Execute the canonical filter under private 1- and 4-thread rayon
/// pools; the outputs must be identical.
fn thread_invariance(
    alg: Algorithm,
    cfg: &ConformanceConfig,
    n: usize,
    input: &DataSet,
) -> CheckResult {
    let filter = crate::build_filter(alg, cfg, input);
    let mut runs = Vec::with_capacity(2);
    for threads in [1usize, 4] {
        let Ok(pool) = rayon::ThreadPoolBuilder::new().num_threads(threads).build() else {
            return CheckResult::setup_failure(alg, KIND, "threads", n);
        };
        runs.push(pool.install(|| filter.execute(input)));
    }
    let equal = runs[0].dataset == runs[1].dataset && runs[0].images == runs[1].images;
    CheckResult::new(
        alg,
        KIND,
        "threads",
        n,
        f64::from(u8::from(!equal)),
        0.0,
        0.0,
    )
}

/// Sequential welded marching cubes, replicating the kernel's per-edge
/// arithmetic (same `t01`, same lerp, same weld keys, same degenerate
/// drop) in plain raster order.
fn sequential_marching_cubes(
    grid: &UniformGrid,
    values: &[f64],
    iso: f64,
) -> (Vec<Vec3>, Vec<[u32; 3]>) {
    let table = triangle_table();
    // Pre-sized for a surface crossing ~n² cells: keeps the reference
    // obvious while staying off the analyzer's hot-loop-alloc radar.
    let est = 4 * grid.num_cells() / grid.cell_dims()[0].max(1);
    let mut weld: HashMap<u64, u32> = HashMap::with_capacity(est);
    let mut points: Vec<Vec3> = Vec::with_capacity(est);
    let mut tris: Vec<[u32; 3]> = Vec::with_capacity(2 * est);
    for c in 0..grid.num_cells() {
        let ids = grid.cell_point_ids(c);
        let mut config = 0u8;
        for (bit, &pid) in ids.iter().enumerate() {
            if values[pid] > iso {
                config |= 1 << bit;
            }
        }
        let case = &table[config as usize];
        if case.is_empty() {
            continue;
        }
        let corners = grid.cell_corners(c);
        for t in case {
            let mut key = [0u64; 3];
            let mut pos = [Vec3::ZERO; 3];
            for (slot, &e) in t.iter().enumerate() {
                let (a, b) = EDGES[e as usize];
                let (pa, pb) = (ids[a], ids[b]);
                let (va, vb) = (values[pa], values[pb]);
                let t01 = ((iso - va) / (vb - va)).clamp(0.0, 1.0);
                pos[slot] = corners[a].lerp(corners[b], t01);
                let (lo, hi) = if pa < pb { (pa, pb) } else { (pb, pa) };
                key[slot] = (lo as u64) << 32 | hi as u64;
            }
            let mut tri = [0u32; 3];
            for s in 0..3 {
                tri[s] = match weld.get(&key[s]) {
                    Some(&id) => id,
                    None => {
                        let id = points.len() as u32;
                        weld.insert(key[s], id);
                        points.push(pos[s]);
                        id
                    }
                };
            }
            if tri[0] != tri[1] && tri[1] != tri[2] && tri[2] != tri[0] {
                tris.push(tri);
            }
        }
    }
    (points, tris)
}

/// Count the points and triangles where `ds` differs from the reference
/// mesh, bit for bit.
fn mesh_mismatches(ds: &DataSet, ref_points: &[Vec3], ref_tris: &[[u32; 3]]) -> f64 {
    let Some((points, cells)) = explicit_parts(ds) else {
        return f64::NAN;
    };
    let mut mismatches = points.len().abs_diff(ref_points.len());
    for (p, q) in points.iter().zip(ref_points) {
        if p.x.to_bits() != q.x.to_bits()
            || p.y.to_bits() != q.y.to_bits()
            || p.z.to_bits() != q.z.to_bits()
        {
            mismatches += 1;
        }
    }
    let out_tris: Vec<&[u32]> = cells
        .iter()
        .filter(|(s, _)| *s == CellShape::Triangle)
        .map(|(_, conn)| conn)
        .collect();
    mismatches += out_tris.len().abs_diff(ref_tris.len());
    for (conn, tri) in out_tris.iter().zip(ref_tris) {
        if *conn != &tri[..] {
            mismatches += 1;
        }
    }
    mismatches as f64
}

fn contour_reference(n: usize, input: &DataSet, out: &FilterOutput) -> CheckResult {
    let alg = Algorithm::Contour;
    let check = "mesh-exact";
    let (Some(grid), Some(values), Some(ds)) = (
        input.as_uniform(),
        input.point_scalars(FIELD),
        out.dataset.as_ref(),
    ) else {
        return CheckResult::setup_failure(alg, KIND, check, n);
    };
    let (ref_points, ref_tris) = sequential_marching_cubes(grid, values, SPHERE_R);
    CheckResult::new(
        alg,
        KIND,
        check,
        n,
        mesh_mismatches(ds, &ref_points, &ref_tris),
        0.0,
        0.0,
    )
}

fn slice_reference(n: usize, input: &DataSet, out: &FilterOutput) -> CheckResult {
    let alg = Algorithm::Slice;
    let check = "mesh-exact";
    let (Some(grid), Some(ds)) = (input.as_uniform(), out.dataset.as_ref()) else {
        return CheckResult::setup_failure(alg, KIND, check, n);
    };
    let mut ref_points: Vec<Vec3> = Vec::new();
    let mut ref_tris: Vec<[u32; 3]> = Vec::new();
    let mut sdf = vec![0.0f64; grid.num_points()];
    for plane in &ThreeSlice::centered(input, FIELD).planes {
        for (p, s) in sdf.iter_mut().enumerate() {
            *s = plane.distance(grid.point_coord_id(p));
        }
        let (pts, tris) = sequential_marching_cubes(grid, &sdf, 0.0);
        let base = ref_points.len() as u32;
        ref_points.extend(pts);
        ref_tris.extend(tris.iter().map(|t| [t[0] + base, t[1] + base, t[2] + base]));
    }
    CheckResult::new(
        alg,
        KIND,
        check,
        n,
        mesh_mismatches(ds, &ref_points, &ref_tris),
        0.0,
        0.0,
    )
}

fn threshold_reference(n: usize, input: &DataSet, out: &FilterOutput) -> CheckResult {
    let alg = Algorithm::Threshold;
    let check = "kept-count";
    let (Some(vals), Some(ds)) = (input.cell_scalars(FIELD), out.dataset.as_ref()) else {
        return CheckResult::setup_failure(alg, KIND, check, n);
    };
    let expected = vals
        .iter()
        .filter(|&&v| v >= THRESH_LO && v <= THRESH_HI)
        .count();
    let measured = explicit_parts(ds)
        .map(|(_, cells)| count_shape(cells, CellShape::Hexahedron))
        .unwrap_or(usize::MAX);
    CheckResult::new(alg, KIND, check, n, measured as f64, expected as f64, 0.0)
}

fn clip_reference(n: usize, input: &DataSet, out: &FilterOutput) -> CheckResult {
    let alg = Algorithm::SphericalClip;
    let check = "whole-cells";
    let (Some(grid), Some(ds)) = (input.as_uniform(), out.dataset.as_ref()) else {
        return CheckResult::setup_failure(alg, KIND, check, n);
    };
    // A cell passes through whole iff no corner is strictly inside the
    // sphere — the same signed distance the kernel computes.
    let expected = (0..grid.num_cells())
        .filter(|&c| {
            grid.cell_point_ids(c)
                .iter()
                .all(|&p| grid.point_coord_id(p).distance(CENTER) - SPHERE_R >= 0.0)
        })
        .count();
    let measured = explicit_parts(ds)
        .map(|(_, cells)| count_shape(cells, CellShape::Hexahedron))
        .unwrap_or(usize::MAX);
    CheckResult::new(alg, KIND, check, n, measured as f64, expected as f64, 0.0)
}

fn isovolume_reference(n: usize, input: &DataSet, out: &FilterOutput) -> CheckResult {
    let alg = Algorithm::Isovolume;
    let check = "whole-cells";
    let (Some(grid), Some(vals), Some(ds)) = (
        input.as_uniform(),
        input.point_scalars(FIELD),
        out.dataset.as_ref(),
    ) else {
        return CheckResult::setup_failure(alg, KIND, check, n);
    };
    let expected = (0..grid.num_cells())
        .filter(|&c| {
            grid.cell_point_ids(c)
                .iter()
                .all(|&p| vals[p] >= ISO_LO && vals[p] <= ISO_HI)
        })
        .count();
    let measured = explicit_parts(ds)
        .map(|(_, cells)| count_shape(cells, CellShape::Hexahedron))
        .unwrap_or(usize::MAX);
    CheckResult::new(alg, KIND, check, n, measured as f64, expected as f64, 0.0)
}

/// Sequential RK4 re-integration with the kernel's exact seed order and
/// update arithmetic; streamlines must match bit for bit.
fn advection_reference(
    cfg: &ConformanceConfig,
    n: usize,
    input: &DataSet,
    out: &FilterOutput,
) -> CheckResult {
    let alg = Algorithm::ParticleAdvection;
    let check = "streamlines-exact";
    let (Some(grid), Some(vel), Some(ds)) = (
        input.as_uniform(),
        input.point_vectors(VELOCITY),
        out.dataset.as_ref(),
    ) else {
        return CheckResult::setup_failure(alg, KIND, check, n);
    };
    let Some((points, cells)) = explicit_parts(ds) else {
        return CheckResult::setup_failure(alg, KIND, check, n);
    };
    let b = grid.bounds();
    let h = b.diagonal() * cfg.step_fraction;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut ref_paths: Vec<Vec<Vec3>> = Vec::with_capacity(cfg.particles);
    for _ in 0..cfg.particles {
        let seed = Vec3::new(
            rng.random_range(b.min.x..b.max.x),
            rng.random_range(b.min.y..b.max.y),
            rng.random_range(b.min.z..b.max.z),
        );
        let mut path = Vec::with_capacity(cfg.advect_steps + 1);
        path.push(seed);
        let mut p = seed;
        for _ in 0..cfg.advect_steps {
            let step = (|| {
                let k1 = grid.sample_vector(vel, p)?;
                let k2 = grid.sample_vector(vel, p + k1 * (h * 0.5))?;
                let k3 = grid.sample_vector(vel, p + k2 * (h * 0.5))?;
                let k4 = grid.sample_vector(vel, p + k3 * h)?;
                Some(p + (k1 + k2 * 2.0 + k3 * 2.0 + k4) * (h / 6.0))
            })();
            match step {
                Some(next) => {
                    p = next;
                    path.push(p);
                }
                None => break,
            }
        }
        if path.len() >= 2 {
            ref_paths.push(path);
        }
    }
    let mut out_paths: Vec<Vec<Vec3>> = Vec::with_capacity(ref_paths.len());
    for (shape, conn) in cells.iter() {
        if shape != CellShape::PolyLine {
            continue;
        }
        let mut path = Vec::with_capacity(conn.len());
        path.extend(conn.iter().map(|&i| points[i as usize]));
        out_paths.push(path);
    }
    let mut mismatches = out_paths.len().abs_diff(ref_paths.len());
    for (a, b) in out_paths.iter().zip(&ref_paths) {
        if a.len() != b.len() {
            mismatches += 1;
            continue;
        }
        if a.iter().zip(b).any(|(p, q)| {
            p.x.to_bits() != q.x.to_bits()
                || p.y.to_bits() != q.y.to_bits()
                || p.z.to_bits() != q.z.to_bits()
        }) {
            mismatches += 1;
        }
    }
    CheckResult::new(alg, KIND, check, n, mismatches as f64, 0.0, 0.0)
}

/// Brute-force nearest-hit over every external face triangle (first
/// camera only): the BVH must find the same entry depth everywhere.
fn raytrace_reference(
    cfg: &ConformanceConfig,
    n: usize,
    input: &DataSet,
    out: &FilterOutput,
) -> CheckResult {
    let alg = Algorithm::RayTracing;
    let check = "depth-brute-force";
    let Some(img) = out.images.first() else {
        return CheckResult::setup_failure(alg, KIND, check, n);
    };
    let (tris, _) = external_face_triangles(input, FIELD);
    let cameras = Camera::orbit(&input.bounds(), cfg.cameras);
    let Some(cam) = cameras.first() else {
        return CheckResult::setup_failure(alg, KIND, check, n);
    };
    let px = cfg.render_px;
    let mut mismatches = 0usize;
    for y in 0..px {
        for x in 0..px {
            let ray = cam.pixel_ray(x, y, px, px);
            let mut best = f64::INFINITY;
            for tri in &tris {
                if let Some((t, _, _)) = tri.intersect(&ray) {
                    if t < best {
                        best = t;
                    }
                }
            }
            let expected = if best.is_finite() {
                best as f32
            } else {
                f32::INFINITY
            };
            if img.depth_at(x, y).to_bits() != expected.to_bits() {
                mismatches += 1;
            }
        }
    }
    CheckResult::new(alg, KIND, check, n, mismatches as f64, 0.0, 0.0)
}

/// Sequential front-to-back ray march replicating the kernel's sampling
/// and compositing arithmetic; every pixel must match bit for bit.
fn volren_reference(
    cfg: &ConformanceConfig,
    n: usize,
    input: &DataSet,
    out: &FilterOutput,
) -> CheckResult {
    let alg = Algorithm::VolumeRendering;
    let check = "pixels-exact";
    let (Some(grid), Some(values)) = (input.as_uniform(), input.point_scalars(FIELD)) else {
        return CheckResult::setup_failure(alg, KIND, check, n);
    };
    let (lo, hi) = input
        .field(FIELD)
        .and_then(|f| f.scalar_range())
        .unwrap_or((0.0, 1.0));
    let tf = ColorMap::volume_default();
    let bounds = grid.bounds();
    let step = grid.spacing().length() * 0.8;
    let opacity_scale = 0.35f64;
    let cameras = Camera::orbit(&bounds, cfg.cameras);
    let px = cfg.render_px;
    let mut mismatches = out.images.len().abs_diff(cameras.len());
    for (img, cam) in out.images.iter().zip(&cameras) {
        for y in 0..px {
            for x in 0..px {
                let ray = cam.pixel_ray(x, y, px, px);
                let mut color = [0.0f32; 4];
                if let Some((t0, t1)) =
                    bounds.intersect_ray(ray.origin, ray.inv_direction(), 0.0, f64::INFINITY)
                {
                    let mut t = t0.max(0.0) + step * 0.5;
                    while t < t1 && color[3] < 0.99 {
                        if let Some(v) = grid.sample_scalar(values, ray.at(t)) {
                            let mut s = tf.sample_range(v, lo, hi);
                            s[3] = (s[3] * opacity_scale as f32).clamp(0.0, 1.0);
                            let w = s[3] * (1.0 - color[3]);
                            color[0] += s[0] * w;
                            color[1] += s[1] * w;
                            color[2] += s[2] * w;
                            color[3] += w;
                        }
                        t += step;
                    }
                }
                // The kernel only writes pixels that accumulated opacity.
                let expected = if color[3] > 0.0 { color } else { [0.0f32; 4] };
                let got = img.get(x, y);
                if got
                    .iter()
                    .zip(&expected)
                    .any(|(a, b)| a.to_bits() != b.to_bits())
                {
                    mismatches += 1;
                }
            }
        }
    }
    CheckResult::new(alg, KIND, check, n, mismatches as f64, 0.0, 0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fields;

    /// The sequential MC reference agrees with itself run twice, and the
    /// weld produces an indexed mesh (no duplicate point keys).
    #[test]
    fn sequential_mc_is_deterministic_and_welded() {
        let ds = fields::sphere_dataset(8);
        let grid = ds.as_uniform().unwrap();
        let vals = ds.point_scalars(FIELD).unwrap();
        let (p1, t1) = sequential_marching_cubes(grid, vals, SPHERE_R);
        let (p2, t2) = sequential_marching_cubes(grid, vals, SPHERE_R);
        assert_eq!(p1, p2);
        assert_eq!(t1, t2);
        assert!(!t1.is_empty());
        for t in &t1 {
            for &i in t {
                assert!((i as usize) < p1.len());
            }
        }
    }
}
