//! Analytic input fields with closed-form answers.
//!
//! Every conformance check runs a kernel on one of these fields. They are
//! chosen so the kernel's output has an *exact* (or tightly bounded)
//! analytic value:
//!
//! * [`sphere_dataset`] — `f(p) = |p − center|` on the unit cube. The
//!   `f = r` isosurface is a sphere of area `4πr²` and genus 0; the
//!   `f ≤ r` sub-volume is a ball of volume `4/3·πr³`.
//! * [`xramp_dataset`] — `f(p) = p.x`, point-centered. Linear, so
//!   tetrahedral clipping and plane slicing are exact: the `[lo, hi]`
//!   isovolume is a slab of volume `hi − lo`.
//! * [`cell_xramp_dataset`] — cell-centered `f = x` of the cell center,
//!   giving threshold an exactly countable kept-cell set.
//! * [`rotation_dataset`] — rigid rotation `v = (−(y−c), x−c, 0)` at
//!   `ω = 1 rad/s`. Trilinear interpolation reproduces a linear field
//!   exactly, so advected particles move on perfect circles.
//! * [`energy_dataset`] — constant point scalar named `energy`, the
//!   carry field of the spherical clip.

use vizmesh::{Association, DataSet, Field, UniformGrid, Vec3};

/// The scalar field name every scalar conformance input uses.
pub const FIELD: &str = "f";

/// The vector field name the advection input uses.
pub const VELOCITY: &str = "velocity";

/// Center of the unit-cube domain, shared by all the analytic fields.
pub const CENTER: Vec3 = Vec3 {
    x: 0.5,
    y: 0.5,
    z: 0.5,
};

/// Point scalar `f(p) = |p − CENTER|` on an `n³`-cell unit cube.
pub fn sphere_dataset(n: usize) -> DataSet {
    let grid = UniformGrid::cube_cells(n);
    let vals: Vec<f64> = (0..grid.num_points())
        .map(|p| grid.point_coord_id(p).distance(CENTER))
        .collect();
    DataSet::uniform(grid).with_field(Field::scalar(FIELD, Association::Points, vals))
}

/// Point scalar `f(p) = p.x` on an `n³`-cell unit cube.
pub fn xramp_dataset(n: usize) -> DataSet {
    let grid = UniformGrid::cube_cells(n);
    let vals: Vec<f64> = (0..grid.num_points())
        .map(|p| grid.point_coord_id(p).x)
        .collect();
    DataSet::uniform(grid).with_field(Field::scalar(FIELD, Association::Points, vals))
}

/// Cell scalar `f = x` of the cell center on an `n³`-cell unit cube.
pub fn cell_xramp_dataset(n: usize) -> DataSet {
    let grid = UniformGrid::cube_cells(n);
    let vals: Vec<f64> = (0..grid.num_cells())
        .map(|c| grid.cell_center(c).x)
        .collect();
    DataSet::uniform(grid).with_field(Field::scalar(FIELD, Association::Cells, vals))
}

/// Rigid-rotation point vector field `v = (−(y−c), x−c, 0)` (ω = 1).
pub fn rotation_dataset(n: usize) -> DataSet {
    let grid = UniformGrid::cube_cells(n);
    let vals: Vec<Vec3> = (0..grid.num_points())
        .map(|p| {
            let q = grid.point_coord_id(p) - CENTER;
            Vec3::new(-q.y, q.x, 0.0)
        })
        .collect();
    DataSet::uniform(grid).with_field(Field::vector(VELOCITY, Association::Points, vals))
}

/// Rigid-rotation field scaled to angular rate `omega`:
/// `v = ω·(−(y−c), x−c, 0)`. Still linear in space, so trilinear
/// sampling stays exact; snapshots of this field at rates `ω(t_k)`
/// linear in `t` make the series' temporal lerp exact too (the basis of
/// the time-varying pathline oracle in [`crate::flow`]).
pub fn rotation_dataset_scaled(n: usize, omega: f64) -> DataSet {
    let grid = UniformGrid::cube_cells(n);
    let vals: Vec<Vec3> = (0..grid.num_points())
        .map(|p| {
            let q = grid.point_coord_id(p) - CENTER;
            Vec3::new(-q.y * omega, q.x * omega, 0.0)
        })
        .collect();
    DataSet::uniform(grid).with_field(Field::vector(VELOCITY, Association::Points, vals))
}

/// Constant point scalar named `energy` (the spherical clip's carry
/// field), value 1.
pub fn energy_dataset(n: usize) -> DataSet {
    let grid = UniformGrid::cube_cells(n);
    let np = grid.num_points();
    DataSet::uniform(grid).with_field(Field::scalar("energy", Association::Points, vec![1.0; np]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sphere_field_is_distance_from_center() {
        let ds = sphere_dataset(4);
        let vals = ds.point_scalars(FIELD).unwrap();
        let grid = ds.as_uniform().unwrap();
        for (id, &v) in vals.iter().enumerate() {
            assert!((v - grid.point_coord_id(id).distance(CENTER)).abs() < 1e-15);
        }
    }

    #[test]
    fn rotation_field_is_divergence_free_and_planar() {
        let ds = rotation_dataset(4);
        let vel = ds.point_vectors(VELOCITY).unwrap();
        for v in vel {
            assert_eq!(v.z, 0.0);
        }
        // Velocity at the center is zero.
        let grid = ds.as_uniform().unwrap();
        let mid = grid.point_id(2, 2, 2);
        assert_eq!(vel[mid], Vec3::ZERO);
    }

    #[test]
    fn cell_ramp_matches_cell_centers() {
        let ds = cell_xramp_dataset(4);
        let vals = ds.cell_scalars(FIELD).unwrap();
        assert_eq!(vals.len(), 64);
        assert!((vals[0] - 0.125).abs() < 1e-15);
    }
}
