//! Closed-form oracle checks: each kernel runs on an analytic field and
//! its output is compared against the exact answer.
//!
//! Tolerances follow the discretization theory (docs/CONFORMANCE.md):
//! piecewise-linear interpolation of a curved surface converges at
//! second order, so curved-geometry checks carry an `O(1/n²)` tolerance;
//! everything linear (slabs, planes, counts, rigid rotations) is exact
//! up to `f64` rounding and carries a tiny or zero tolerance.

use crate::fields::CENTER;
use crate::{
    count_shape, explicit_parts, surface_area, CheckKind, CheckResult, ConformanceConfig, ISO_HI,
    ISO_LO, SPHERE_R, THRESH_HI, THRESH_LO,
};
use std::f64::consts::PI;
use vizalgo::{Algorithm, FilterOutput};
use vizmesh::{validate_cells, validate_surface, Camera, CellShape, DataSet, UniformGrid, Vec3};

const KIND: CheckKind = CheckKind::Oracle;

/// Oracle checks for `alg` at grid `n` over the output `out` of the
/// canonical filter (see [`crate::build_filter`]) on `input`.
pub fn checks(
    alg: Algorithm,
    cfg: &ConformanceConfig,
    n: usize,
    input: &DataSet,
    out: &FilterOutput,
) -> Vec<CheckResult> {
    match alg {
        Algorithm::Contour => contour(n, out),
        Algorithm::Threshold => threshold(n, out),
        Algorithm::SphericalClip => clip(n, out),
        Algorithm::Isovolume => isovolume(n, out),
        Algorithm::Slice => slice(n, input, out),
        Algorithm::ParticleAdvection => advection(cfg, n, input, out),
        Algorithm::RayTracing => raytrace(cfg, n, input, out),
        Algorithm::VolumeRendering => volren(cfg, n, input, out),
    }
}

fn mesh_of(out: &FilterOutput) -> Option<(&[Vec3], &vizmesh::CellSet)> {
    out.dataset.as_ref().and_then(explicit_parts)
}

/// Contoured sphere: area `4πr²`, watertight, consistently oriented,
/// genus 0.
fn contour(n: usize, out: &FilterOutput) -> Vec<CheckResult> {
    let alg = Algorithm::Contour;
    let Some((points, cells)) = mesh_of(out) else {
        return vec![CheckResult::setup_failure(alg, KIND, "sphere-area", n)];
    };
    let rep = validate_surface(points, cells, 0.0);
    let area = surface_area(points, cells);
    let exact = 4.0 * PI * SPHERE_R * SPHERE_R;
    // Marching cubes approximates the sphere by chords: second-order
    // convergent, so the relative error budget shrinks as 1/n².
    let area_tol = exact * 8.0 / (n * n) as f64;
    let genus = match rep.genus() {
        Some(g) => g as f64,
        None => f64::NAN,
    };
    vec![
        CheckResult::new(alg, KIND, "sphere-area", n, area, exact, area_tol),
        CheckResult::new(
            alg,
            KIND,
            "sphere-watertight",
            n,
            (rep.boundary_edges + rep.nonmanifold_edges) as f64,
            0.0,
            0.0,
        ),
        CheckResult::new(
            alg,
            KIND,
            "sphere-orientation",
            n,
            rep.orientation_conflicts as f64,
            0.0,
            0.0,
        ),
        CheckResult::new(alg, KIND, "sphere-genus", n, genus, 0.0, 0.0),
    ]
}

/// Thresholded cell ramp: the kept-cell and welded-point counts are
/// exactly countable (dyadic band bounds on power-of-two grids).
fn threshold(n: usize, out: &FilterOutput) -> Vec<CheckResult> {
    let alg = Algorithm::Threshold;
    let Some(ds) = out.dataset.as_ref() else {
        return vec![CheckResult::setup_failure(alg, KIND, "kept-cells", n)];
    };
    let Some((_, cells)) = explicit_parts(ds) else {
        return vec![CheckResult::setup_failure(alg, KIND, "kept-cells", n)];
    };
    let nn = n as f64;
    let kept_cols = (0..n)
        .filter(|&i| {
            let x = (i as f64 + 0.5) / nn;
            x >= THRESH_LO && x <= THRESH_HI
        })
        .count();
    let expected_cells = (kept_cols * n * n) as f64;
    // Kept columns are contiguous, so the welded points form
    // `kept_cols + 1` planes of `(n+1)²` points each.
    let expected_points = ((kept_cols + 1) * (n + 1) * (n + 1)) as f64;
    vec![
        CheckResult::new(
            alg,
            KIND,
            "kept-cells",
            n,
            count_shape(cells, CellShape::Hexahedron) as f64,
            expected_cells,
            0.0,
        ),
        CheckResult::new(
            alg,
            KIND,
            "welded-points",
            n,
            ds.num_points() as f64,
            expected_points,
            0.0,
        ),
    ]
}

/// Spherical clip: kept volume `1 − 4/3·πr³`, and no output point inside
/// the sphere (beyond the chord-sagitta depth of the linear cut).
fn clip(n: usize, out: &FilterOutput) -> Vec<CheckResult> {
    let alg = Algorithm::SphericalClip;
    let Some((points, cells)) = mesh_of(out) else {
        return vec![CheckResult::setup_failure(alg, KIND, "kept-volume", n)];
    };
    let rep = validate_cells(points, cells, 0.0);
    let exact = 1.0 - 4.0 / 3.0 * PI * SPHERE_R.powi(3);
    let vol_tol = 4.0 / (n * n) as f64;
    let min_dist = points
        .iter()
        .map(|p| p.distance(CENTER))
        .fold(f64::INFINITY, f64::min);
    // Cut vertices sit on chords of the sphere. The tetrahedralization
    // cuts along cell diagonals up to `√3·h` long, so the deepest
    // sagitta is `3h²/(8r) ≈ 1.25h²` (measured ≈ 1.13h²).
    let depth_tol = 2.0 / (n * n) as f64;
    vec![
        CheckResult::new(
            alg,
            KIND,
            "kept-volume",
            n,
            rep.total_volume,
            exact,
            vol_tol,
        ),
        CheckResult::new(
            alg,
            KIND,
            "outside-sphere",
            n,
            (SPHERE_R - min_dist).max(0.0),
            0.0,
            depth_tol,
        ),
    ]
}

/// Isovolume of the linear ramp: tetrahedral clipping of a linear field
/// is exact, so the band volume is `hi − lo` to rounding, and the
/// interior hexahedron count is exactly countable.
fn isovolume(n: usize, out: &FilterOutput) -> Vec<CheckResult> {
    let alg = Algorithm::Isovolume;
    let Some((points, cells)) = mesh_of(out) else {
        return vec![CheckResult::setup_failure(alg, KIND, "band-volume", n)];
    };
    let rep = validate_cells(points, cells, 0.0);
    let grid = UniformGrid::cube_cells(n);
    // A cell is interior iff both its corner planes sit inside the band;
    // same f64 comparisons as the kernel's classification.
    let cols = (0..n)
        .filter(|&i| {
            let x0 = grid.point_coord(i, 0, 0).x;
            let x1 = grid.point_coord(i + 1, 0, 0).x;
            x0 >= ISO_LO && x1 <= ISO_HI
        })
        .count();
    vec![
        CheckResult::new(
            alg,
            KIND,
            "band-volume",
            n,
            rep.total_volume,
            ISO_HI - ISO_LO,
            1e-9,
        ),
        CheckResult::new(
            alg,
            KIND,
            "interior-hexes",
            n,
            count_shape(cells, CellShape::Hexahedron) as f64,
            (cols * n * n) as f64,
            0.0,
        ),
    ]
}

/// Three centered axis slices of the unit cube: cross-section area 3·1,
/// and every vertex exactly on one of the three planes.
fn slice(n: usize, input: &DataSet, out: &FilterOutput) -> Vec<CheckResult> {
    let alg = Algorithm::Slice;
    let Some((points, cells)) = mesh_of(out) else {
        return vec![CheckResult::setup_failure(alg, KIND, "slice-area", n)];
    };
    let area = surface_area(points, cells);
    let c = input.bounds().center();
    let max_off = points
        .iter()
        .map(|p| {
            let d = *p - c;
            d.x.abs().min(d.y.abs()).min(d.z.abs())
        })
        .fold(0.0, f64::max);
    vec![
        CheckResult::new(alg, KIND, "slice-area", n, area, 3.0, 1e-9),
        CheckResult::new(alg, KIND, "on-plane", n, max_off, 0.0, 1e-12),
    ]
}

/// Rigid-rotation advection: trilinear interpolation reproduces the
/// linear field exactly, so RK4 trajectories stay planar to the bit and
/// conserve radius and angular rate to integrator order (`h⁴` ≪ 1e-9).
fn advection(
    cfg: &ConformanceConfig,
    n: usize,
    input: &DataSet,
    out: &FilterOutput,
) -> Vec<CheckResult> {
    let alg = Algorithm::ParticleAdvection;
    let Some((points, cells)) = mesh_of(out) else {
        return vec![CheckResult::setup_failure(alg, KIND, "radius-drift", n)];
    };
    let h = input.bounds().diagonal() * cfg.step_fraction;
    let mut max_z = 0.0f64;
    let mut max_radius_drift = 0.0f64;
    let mut max_rate_err = 0.0f64;
    let mut path: Vec<Vec3> = Vec::with_capacity(64);
    for (shape, conn) in cells.iter() {
        if shape != CellShape::PolyLine || conn.len() < 2 {
            continue;
        }
        path.clear();
        path.extend(conn.iter().map(|&i| points[i as usize]));
        let r0 = ((path[0].x - CENTER.x).powi(2) + (path[0].y - CENTER.y).powi(2)).sqrt();
        for p in &path {
            max_z = max_z.max((p.z - path[0].z).abs());
        }
        // Tight circular orbits amplify rounding; the macroscopic ones
        // carry the law.
        if r0 < 0.05 {
            continue;
        }
        let mut angle = 0.0f64;
        let mut prev = f64::atan2(path[0].y - CENTER.y, path[0].x - CENTER.x);
        for p in &path[1..] {
            let r = ((p.x - CENTER.x).powi(2) + (p.y - CENTER.y).powi(2)).sqrt();
            max_radius_drift = max_radius_drift.max((r - r0).abs() / r0);
            let th = f64::atan2(p.y - CENTER.y, p.x - CENTER.x);
            let mut d = th - prev;
            if d > PI {
                d -= 2.0 * PI;
            } else if d < -PI {
                d += 2.0 * PI;
            }
            angle += d;
            prev = th;
        }
        let expected = (path.len() - 1) as f64 * h;
        max_rate_err = max_rate_err.max((angle - expected).abs() / expected);
    }
    vec![
        CheckResult::new(alg, KIND, "planar", n, max_z, 0.0, 0.0),
        CheckResult::new(alg, KIND, "radius-drift", n, max_radius_drift, 0.0, 1e-9),
        CheckResult::new(alg, KIND, "angular-rate", n, max_rate_err, 0.0, 1e-9),
    ]
}

/// Ray tracing the cube's external faces: hits must agree with the exact
/// ray/AABB slab test, hit depths must equal the slab entry distance,
/// and missed pixels must stay transparent black.
fn raytrace(
    cfg: &ConformanceConfig,
    n: usize,
    input: &DataSet,
    out: &FilterOutput,
) -> Vec<CheckResult> {
    let alg = Algorithm::RayTracing;
    if out.images.is_empty() {
        return vec![CheckResult::setup_failure(alg, KIND, "hit-mask", n)];
    }
    let bounds = input.bounds();
    let cameras = Camera::orbit(&bounds, cfg.cameras);
    let px = cfg.render_px;
    let mut mismatches = 0usize;
    let mut total = 0usize;
    let mut max_depth_err = 0.0f64;
    let mut bad_background = 0usize;
    for (img, cam) in out.images.iter().zip(&cameras) {
        for y in 0..px {
            for x in 0..px {
                total += 1;
                let ray = cam.pixel_ray(x, y, px, px);
                let slab =
                    bounds.intersect_ray(ray.origin, ray.inv_direction(), 0.0, f64::INFINITY);
                let depth = img.depth_at(x, y);
                match (slab, depth.is_finite()) {
                    (Some((t0, _)), true) => {
                        max_depth_err = max_depth_err.max((f64::from(depth) - t0).abs());
                    }
                    (None, false) => {
                        if img.get(x, y) != [0.0; 4] {
                            bad_background += 1;
                        }
                    }
                    _ => mismatches += 1,
                }
            }
        }
    }
    vec![
        CheckResult::new(
            alg,
            KIND,
            "hit-mask",
            n,
            mismatches as f64 / total.max(1) as f64,
            0.0,
            2e-3,
        ),
        CheckResult::new(alg, KIND, "hit-depth", n, max_depth_err, 0.0, 1e-4),
        CheckResult::new(alg, KIND, "background", n, bad_background as f64, 0.0, 0.0),
    ]
}

/// Volume rendering: missed pixels exactly transparent, compositing
/// keeps opacity in `[0, 1]`, and nearly every ray that crosses the
/// volume accumulates some opacity (the ramp transfer function is
/// positive almost everywhere).
fn volren(
    cfg: &ConformanceConfig,
    n: usize,
    input: &DataSet,
    out: &FilterOutput,
) -> Vec<CheckResult> {
    let alg = Algorithm::VolumeRendering;
    if out.images.is_empty() {
        return vec![CheckResult::setup_failure(alg, KIND, "background", n)];
    }
    let bounds = input.bounds();
    let cameras = Camera::orbit(&bounds, cfg.cameras);
    let px = cfg.render_px;
    let mut bad_background = 0usize;
    let mut bad_alpha = 0usize;
    let mut hit = 0usize;
    let mut hit_empty = 0usize;
    for (img, cam) in out.images.iter().zip(&cameras) {
        for y in 0..px {
            for x in 0..px {
                let c = img.get(x, y);
                if !(0.0..=1.0).contains(&c[3]) {
                    bad_alpha += 1;
                }
                let ray = cam.pixel_ray(x, y, px, px);
                let slab =
                    bounds.intersect_ray(ray.origin, ray.inv_direction(), 0.0, f64::INFINITY);
                match slab {
                    None => {
                        if c != [0.0; 4] {
                            bad_background += 1;
                        }
                    }
                    Some(_) => {
                        hit += 1;
                        if c[3] == 0.0 {
                            hit_empty += 1;
                        }
                    }
                }
            }
        }
    }
    vec![
        CheckResult::new(alg, KIND, "background", n, bad_background as f64, 0.0, 0.0),
        CheckResult::new(alg, KIND, "alpha-range", n, bad_alpha as f64, 0.0, 0.0),
        CheckResult::new(
            alg,
            KIND,
            "coverage",
            n,
            hit_empty as f64 / hit.max(1) as f64,
            0.0,
            // Silhouette-grazing rays whose chord is shorter than half a
            // step take no samples; that rim thins as the step shrinks
            // with the grid (measured 0.076 at 16³, 0.0085 at 32³).
            2.0 / n as f64,
        ),
    ]
}
