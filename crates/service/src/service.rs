//! The study service proper: batched dispatch, deterministic node
//! placement, budget-bounded wave scheduling, and journaling.
//!
//! # Determinism argument
//!
//! Everything a caller can observe — responses, report, journal — is a
//! pure function of `(config, requests)` regardless of worker count or
//! thread interleaving, because every observable quantity is fixed at
//! **dispatch time**, before any worker runs:
//!
//! 1. Requests are classified in request order against the cache state
//!    left by *earlier batches* (hit), the keys scheduled *earlier in
//!    the same batch* (coalesced), or neither (miss → new job).
//! 2. Jobs are placed by the seeded [`CacheKey::placement`] hash and
//!    packed into per-node waves greedily in job order; each wave's
//!    admitted power is bounded by the node's budget share.
//! 3. Completion times come from the *modeled* clock: a node runs its
//!    waves sequentially, a wave takes the max modeled duration of its
//!    jobs, and modeled durations come from the deterministic power
//!    model.
//!
//! Worker threads only ever compute `JobResult`s through the
//! single-flight cache; they never touch the journal, the report, or
//! the clock. The wall-clock speedup from more workers is real, but the
//! modeled outputs are byte-identical — the root `service_golden` suite
//! pins exactly that.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};

use powersim::{CacheEvent, CpuSpec, Event, Journal, Scope, ServiceRequest, Watts};
use vizalgo::Algorithm;
use vizpower::study::sweep;
use vizpower::{AlgorithmRun, CapSweep, DatasetStore, StudyConfig};

use crate::admission::Admission;
use crate::cache::{CacheStats, Outcome, ResultCache};
use crate::engine::{Engine, JobResult, Request, ServiceError};
use crate::key::CacheKey;

/// Tolerance when packing admitted caps against a node budget. Keyed
/// caps truncate toward zero so they never quantize above the admitted
/// value; this only absorbs float-summation noise when a wave fills.
const CAP_EPS: f64 = 1e-6;

/// Everything that parameterizes a [`StudyService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Simulated nodes the fleet schedules across.
    pub nodes: usize,
    /// Worker threads executing jobs (affects wall-clock only).
    pub workers: usize,
    /// Requests per dispatch batch.
    pub batch: usize,
    /// Fleet-wide power budget, split evenly across nodes.
    pub fleet_budget: Watts,
    /// Seed for the deterministic placement hash.
    pub seed: u64,
    /// Shards in the result cache (and the native-run cache).
    pub shards: usize,
    /// Result-cache slot capacity. `Some(n)`: at each batch end the
    /// service evicts its oldest-scheduled resident entries until at
    /// most `n` remain, journaling one `cache_event` with outcome
    /// `evict` per dropped key. `None` (the default) keeps every
    /// result resident, the pre-capacity behavior.
    pub cache_slots: Option<usize>,
    /// Study parameterization behind [`StudyConfig::spec`] and the
    /// service-side cap sweep.
    pub study: StudyConfig,
    /// Processor model executed against.
    pub cpu: CpuSpec,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            nodes: 4,
            workers: 4,
            batch: 64,
            fleet_budget: Watts(360.0),
            seed: 0x5eed_0009,
            shards: 16,
            cache_slots: None,
            study: StudyConfig::quick(),
            cpu: CpuSpec::broadwell_e5_2695v4(),
        }
    }
}

/// One scheduled execution wave: the admitted power concurrently drawn
/// on one node during one scheduling window. The service's core budget
/// invariant — checked by the property suite — is that `admitted` never
/// exceeds the node's share of the fleet budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowLoad {
    /// Node the wave ran on.
    pub node: u32,
    /// Wave ordinal on that node (monotonic across batches).
    pub wave: u32,
    /// Sum of admitted caps of the wave's jobs.
    pub admitted: Watts,
    /// Jobs that ran concurrently in the wave.
    pub jobs: u32,
}

/// Aggregate outcome of one [`StudyService::serve`] call.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Requests served.
    pub requests: usize,
    /// Requests answered from resident cache entries.
    pub hits: usize,
    /// Requests that scheduled a new job.
    pub misses: usize,
    /// Requests that rode along on a job scheduled earlier in their
    /// own batch.
    pub coalesced: usize,
    /// Resident entries dropped by capacity eviction (0 unless
    /// [`ServiceConfig::cache_slots`] is set).
    pub evictions: usize,
    /// Dispatch batches the traffic was split into.
    pub batches: usize,
    /// Simulated nodes.
    pub nodes: usize,
    /// Per-node share of the fleet budget.
    pub node_budget: Watts,
    /// The fleet-wide budget.
    pub fleet_budget: Watts,
    /// Jobs executed per node, indexed by node.
    pub per_node_jobs: Vec<u64>,
    /// Requests (misses + coalesced) backed by each node.
    pub per_node_requests: Vec<u64>,
    /// Every scheduling window, in (batch, node, wave) order.
    pub windows: Vec<WindowLoad>,
    /// Modeled seconds from first dispatch to last completion.
    pub modeled_seconds: f64,
    /// Modeled latency of each request, in request order.
    pub latencies: Vec<f64>,
}

impl ServeReport {
    /// Strict hit rate: hits over requests (coalesced requests are
    /// *not* hits — they paid for a compute, just a shared one).
    pub fn hit_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.hits as f64 / self.requests as f64
        }
    }

    /// Modeled latency percentile (`p` in 0..=100), nearest-rank over
    /// the sorted latencies.
    pub fn latency_percentile(&self, p: f64) -> f64 {
        if self.latencies.is_empty() {
            return 0.0;
        }
        let mut sorted = self.latencies.clone();
        sorted.sort_by(f64::total_cmp);
        let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
        sorted[idx.min(sorted.len() - 1)]
    }

    /// The most heavily loaded scheduling window, if any job ran.
    pub fn max_window(&self) -> Option<&WindowLoad> {
        self.windows
            .iter()
            .max_by(|a, b| a.admitted.value().total_cmp(&b.admitted.value()))
    }

    /// Modeled request throughput (requests per modeled second).
    pub fn throughput(&self) -> f64 {
        if self.modeled_seconds > 0.0 {
            self.requests as f64 / self.modeled_seconds
        } else {
            0.0
        }
    }

    /// Deterministic plain-text rendering (pinned by `service_golden`).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "study service: {} requests in {} batches over {} nodes \
             (budget {:.0} W fleet, {:.0} W/node)\n",
            self.requests,
            self.batches,
            self.nodes,
            self.fleet_budget.value(),
            self.node_budget.value(),
        ));
        out.push_str(&format!(
            "  outcomes: {} hits ({:.1}%), {} misses, {} coalesced\n",
            self.hits,
            100.0 * self.hit_rate(),
            self.misses,
            self.coalesced,
        ));
        // Only slot-capped services evict; the default render is
        // unchanged (pinned by `service_golden`).
        if self.evictions > 0 {
            out.push_str(&format!(
                "  evictions: {} (slot-capped result cache)\n",
                self.evictions,
            ));
        }
        out.push_str(&format!(
            "  modeled: {:.3} s total, {:.1} req/s, latency p50 {:.3} s \
             p95 {:.3} s p99 {:.3} s\n",
            self.modeled_seconds,
            self.throughput(),
            self.latency_percentile(50.0),
            self.latency_percentile(95.0),
            self.latency_percentile(99.0),
        ));
        match self.max_window() {
            Some(w) => out.push_str(&format!(
                "  peak window: {:.1} W across {} jobs on node {} \
                 (budget {:.0} W)\n",
                w.admitted.value(),
                w.jobs,
                w.node,
                self.node_budget.value(),
            )),
            None => out.push_str("  peak window: none (no jobs executed)\n"),
        }
        out.push_str("  node  jobs  requests\n");
        for node in 0..self.nodes {
            out.push_str(&format!(
                "  {:>4}  {:>4}  {:>8}\n",
                node, self.per_node_jobs[node], self.per_node_requests[node],
            ));
        }
        out
    }
}

/// One answered request.
#[derive(Debug, Clone)]
pub struct Response {
    /// Index of the request in the served slice.
    pub request_index: usize,
    /// The (admitted) cache key the request resolved to.
    pub key: CacheKey,
    /// Dispatch classification.
    pub outcome: Outcome,
    /// Node that backed the response (0 for hits).
    pub node: u32,
    /// Modeled seconds from batch arrival to response (0 for hits).
    pub latency_seconds: f64,
    /// Journal time the response was ready.
    pub completed_at: f64,
    /// The result, shared with every other request on the same key.
    pub result: Arc<JobResult>,
}

/// Responses plus the aggregate report for one serve call.
#[derive(Debug)]
pub struct ServeOutcome {
    /// One response per request, in request order.
    pub responses: Vec<Response>,
    /// The aggregate report.
    pub report: ServeReport,
}

/// A unique unit of scheduled work within one batch.
struct Job {
    key: CacheKey,
    req: Request,
    node: usize,
}

/// A wave being packed: job indices plus their admitted-cap sum.
struct Wave {
    jobs: Vec<usize>,
    load: Watts,
}

/// The fingerprint-addressed study service. See the module docs for
/// the determinism argument and `docs/SERVICE.md` for the architecture.
#[derive(Debug)]
pub struct StudyService {
    cfg: ServiceConfig,
    engine: Engine,
    cache: ResultCache<JobResult>,
    admission: Admission,
    waves_started: Vec<u32>,
    /// Resident cache keys in first-scheduled order — the deterministic
    /// eviction queue when [`ServiceConfig::cache_slots`] bounds the
    /// cache. Every insert goes through `serve`, so this list mirrors
    /// the resident set exactly.
    resident_order: Vec<CacheKey>,
}

impl StudyService {
    /// Validate `cfg` and build the service (empty caches, fresh
    /// dataset store).
    pub fn new(cfg: ServiceConfig) -> Result<StudyService, ServiceError> {
        StudyService::with_store(cfg, Arc::new(DatasetStore::new()))
    }

    /// Like [`StudyService::new`] but sharing an existing dataset store
    /// (so embedding drivers reuse already-built study datasets).
    pub fn with_store(
        cfg: ServiceConfig,
        store: Arc<DatasetStore>,
    ) -> Result<StudyService, ServiceError> {
        if cfg.nodes == 0 {
            return Err(ServiceError::InvalidConfig("nodes must be at least 1"));
        }
        if cfg.workers == 0 {
            return Err(ServiceError::InvalidConfig("workers must be at least 1"));
        }
        if cfg.batch == 0 {
            return Err(ServiceError::InvalidConfig("batch must be at least 1"));
        }
        if cfg.shards == 0 {
            return Err(ServiceError::InvalidConfig("shards must be at least 1"));
        }
        if cfg.cache_slots == Some(0) {
            return Err(ServiceError::InvalidConfig(
                "cache_slots must be at least 1 when set",
            ));
        }
        let admission = Admission::new(cfg.fleet_budget, cfg.nodes, cfg.cpu.clone())?;
        let engine = Engine::new(store, cfg.cpu.clone(), cfg.shards);
        let cache = ResultCache::new(cfg.shards);
        let waves_started = vec![0; cfg.nodes];
        Ok(StudyService {
            cfg,
            engine,
            cache,
            admission,
            waves_started,
            resident_order: Vec::new(),
        })
    }

    /// The configuration the service was built with.
    pub fn config(&self) -> &ServiceConfig {
        &self.cfg
    }

    /// The per-node share of the fleet budget.
    pub fn node_budget(&self) -> Watts {
        self.admission.node_budget()
    }

    /// Physical result-cache counters (per `get_or_compute` call by the
    /// worker pool; classification counts live in the [`ServeReport`]).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Resident result-cache entries.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Serve a traffic slice: dispatch in batches, dedupe through the
    /// result cache, schedule unique jobs across the fleet, and journal
    /// one `cache_event` per request at dispatch plus one
    /// `service_request` at its modeled completion.
    pub fn serve(
        &mut self,
        requests: &[Request],
        journal: &mut Journal,
    ) -> Result<ServeOutcome, ServiceError> {
        let serve_t0 = journal.now();
        let nodes = self.cfg.nodes;
        let budget = self.admission.node_budget();
        let mut responses: Vec<Option<Response>> = requests.iter().map(|_| None).collect();
        let mut report = ServeReport {
            requests: requests.len(),
            hits: 0,
            misses: 0,
            coalesced: 0,
            evictions: 0,
            batches: 0,
            nodes,
            node_budget: budget,
            fleet_budget: self.cfg.fleet_budget,
            per_node_jobs: vec![0; nodes],
            per_node_requests: vec![0; nodes],
            windows: Vec::new(),
            modeled_seconds: 0.0,
            latencies: vec![0.0; requests.len()],
        };

        for (bi, batch) in requests.chunks(self.cfg.batch).enumerate() {
            let base = bi * self.cfg.batch;
            let batch_start = journal.now();
            report.batches += 1;

            // 1. Classify in request order; collect unique jobs.
            let mut jobs: Vec<Job> = Vec::new();
            let mut scheduled: HashMap<CacheKey, usize> = HashMap::new();
            let mut classes: Vec<(CacheKey, Outcome, Option<usize>)> =
                Vec::with_capacity(batch.len());
            for req in batch {
                self.engine.validate(req)?;
                let admitted = self.admission.admit(req.cap);
                let key = CacheKey::new(
                    &req.spec,
                    self.engine.data_fp(req.size),
                    admitted,
                    req.backend,
                );
                let (outcome, job) = if self.cache.contains(&key) {
                    (Outcome::Hit, None)
                } else if let Some(&j) = scheduled.get(&key) {
                    (Outcome::Coalesced, Some(j))
                } else {
                    let j = jobs.len();
                    scheduled.insert(key, j);
                    self.resident_order.push(key);
                    jobs.push(Job {
                        key,
                        req: Request {
                            cap: admitted,
                            ..req.clone()
                        },
                        node: key.placement(self.cfg.seed, nodes),
                    });
                    (Outcome::Miss, Some(j))
                };
                classes.push((key, outcome, job));
            }

            // 2. Pack jobs into budget-bounded waves, greedily in job
            //    order, per node.
            let mut waves_of: Vec<Vec<Wave>> = (0..nodes).map(|_| Vec::new()).collect();
            for (j, job) in jobs.iter().enumerate() {
                let cap = job.key.cap();
                let node_waves = &mut waves_of[job.node];
                match node_waves.last_mut() {
                    Some(w) if (w.load + cap).value() <= budget.value() + CAP_EPS => {
                        w.jobs.push(j);
                        w.load += cap;
                    }
                    _ => node_waves.push(Wave {
                        jobs: vec![j],
                        load: cap,
                    }),
                }
            }

            // 3. Execute unique jobs on the worker pool (wall-clock
            //    only; no observable state is produced here).
            let results = self.execute_jobs(&jobs);

            // 4. Modeled time: nodes run their waves sequentially; a
            //    wave lasts as long as its slowest job.
            let mut completion = vec![batch_start; jobs.len()];
            let mut batch_end = batch_start;
            for (node, waves) in waves_of.iter().enumerate() {
                let mut t = batch_start;
                for w in waves {
                    let mut width = 0.0f64;
                    for &j in &w.jobs {
                        completion[j] = t + results[j].exec.seconds;
                        width = width.max(results[j].exec.seconds);
                    }
                    t += width;
                    report.windows.push(WindowLoad {
                        node: node as u32,
                        wave: self.waves_started[node],
                        admitted: w.load,
                        jobs: w.jobs.len() as u32,
                    });
                    self.waves_started[node] += 1;
                }
                batch_end = batch_end.max(t);
            }

            // 5. Journal + respond. Cache events carry the dispatch
            //    time; service requests carry modeled completions.
            for (key, outcome, _) in &classes {
                journal.push(Event::CacheEvent(CacheEvent {
                    t: batch_start,
                    spec_fp: key.spec_fp as f64,
                    data_fp: key.data_fp as f64,
                    cap_watts: key.cap(),
                    backend: key.backend.name().to_string(),
                    outcome: outcome.name().to_string(),
                    shard: key.shard(self.cfg.shards) as u32,
                }));
            }
            journal.advance(batch_end - batch_start);
            let mut batch_hits = 0usize;
            let mut batch_coalesced = 0usize;
            for (i, (key, outcome, job)) in classes.iter().enumerate() {
                let (node, completed_at, result) = match (outcome, job) {
                    (Outcome::Hit, _) => {
                        batch_hits += 1;
                        report.hits += 1;
                        let r = self.cache.get(key).expect("classified hit is resident");
                        (0u32, batch_start, r)
                    }
                    (outcome, Some(j)) => {
                        let j = *j;
                        let node = jobs[j].node;
                        report.per_node_requests[node] += 1;
                        match outcome {
                            Outcome::Miss => report.misses += 1,
                            _ => {
                                batch_coalesced += 1;
                                report.coalesced += 1;
                            }
                        }
                        (node as u32, completion[j], Arc::clone(&results[j]))
                    }
                    (outcome, None) => unreachable!("{outcome:?} classified without a job"),
                };
                let latency = completed_at - batch_start;
                journal.push(Event::ServiceRequest(ServiceRequest {
                    t: completed_at,
                    algorithm: result.algorithm.name().to_string(),
                    backend: key.backend.name().to_string(),
                    spec_fp: key.spec_fp as f64,
                    data_fp: key.data_fp as f64,
                    cap_watts: key.cap(),
                    outcome: outcome.name().to_string(),
                    node,
                    latency_seconds: latency,
                }));
                report.latencies[base + i] = latency;
                responses[base + i] = Some(Response {
                    request_index: base + i,
                    key: *key,
                    outcome: *outcome,
                    node,
                    latency_seconds: latency,
                    completed_at,
                    result,
                });
            }
            for (node, waves) in waves_of.iter().enumerate() {
                report.per_node_jobs[node] +=
                    waves.iter().map(|w| w.jobs.len() as u64).sum::<u64>();
            }
            journal.push_span(
                Scope::Service,
                format!("batch:{bi}"),
                batch_start,
                None,
                vec![
                    ("requests", batch.len() as f64),
                    ("hits", batch_hits as f64),
                    ("misses", jobs.len() as f64),
                    ("coalesced", batch_coalesced as f64),
                    ("jobs", jobs.len() as f64),
                    ("seconds", batch_end - batch_start),
                ],
            );

            // 6. Capacity eviction: with a slot-capped cache, drop the
            //    oldest-scheduled residents above the budget. Runs on
            //    the main thread after every batch job has published,
            //    so the evicted entries are always `Ready` and the
            //    order is deterministic.
            if let Some(slots) = self.cfg.cache_slots {
                while self.resident_order.len() > slots {
                    let key = self.resident_order.remove(0);
                    if self.cache.remove(&key) {
                        report.evictions += 1;
                        journal.push(Event::CacheEvent(CacheEvent {
                            t: journal.now(),
                            spec_fp: key.spec_fp as f64,
                            data_fp: key.data_fp as f64,
                            cap_watts: key.cap(),
                            backend: key.backend.name().to_string(),
                            outcome: "evict".to_string(),
                            shard: key.shard(self.cfg.shards) as u32,
                        }));
                    }
                }
            }
        }

        report.modeled_seconds = journal.now() - serve_t0;
        journal.push_span(
            Scope::Service,
            format!("serve:{}", requests.len()),
            serve_t0,
            None,
            vec![
                ("requests", requests.len() as f64),
                ("hits", report.hits as f64),
                ("misses", report.misses as f64),
                ("coalesced", report.coalesced as f64),
                ("nodes", nodes as f64),
                ("budget_watts", self.cfg.fleet_budget.value()),
            ],
        );
        let responses = responses
            .into_iter()
            .map(|r| r.expect("every request answered"))
            .collect();
        Ok(ServeOutcome { responses, report })
    }

    /// Run every unique job of a batch through the single-flight cache
    /// on `workers` scoped threads. Work is claimed from a shared
    /// atomic counter; results return over a channel keyed by job
    /// index, so the output order is deterministic even though the
    /// execution order is not.
    fn execute_jobs(&self, jobs: &[Job]) -> Vec<Arc<JobResult>> {
        if jobs.is_empty() {
            return Vec::new();
        }
        let workers = self.cfg.workers.min(jobs.len());
        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, Arc<JobResult>)>();
        let mut results: Vec<Option<Arc<JobResult>>> = jobs.iter().map(|_| None).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                let next = &next;
                scope.spawn(move || loop {
                    let j = next.fetch_add(1, Ordering::Relaxed);
                    if j >= jobs.len() {
                        break;
                    }
                    let job = &jobs[j];
                    let result = self
                        .cache
                        .get_or_compute(job.key, || self.engine.execute(&job.req, job.key));
                    tx.send((j, result)).expect("result channel open");
                });
            }
        });
        drop(tx);
        for (j, result) in rx {
            results[j] = Some(result);
        }
        results
            .into_iter()
            .map(|r| r.expect("every job executed"))
            .collect()
    }

    /// A study-style cap sweep served through the engine's native-run
    /// cache: sweeps the configured study caps for `algorithm` at
    /// `size`. An empty configured cap list is an actionable
    /// [`ServiceError::EmptySweep`], not a silently empty report.
    pub fn cap_sweep(&self, algorithm: Algorithm, size: usize) -> Result<CapSweep, ServiceError> {
        let spec = self.cfg.study.spec(algorithm);
        let req = Request {
            spec: spec.clone(),
            size,
            cap: self.cfg.cpu.tdp_watts,
            backend: vizalgo::Backend::Traditional,
        };
        self.engine.validate(&req)?;
        let native = self.engine.native(&req, self.engine.data_fp(size));
        let run = AlgorithmRun {
            algorithm,
            size,
            input_cells: native.input_cells,
            spec,
            reports: native.reports.clone(),
        };
        let sw = sweep(&run, &self.cfg.study.caps, self.engine.cpu());
        sw.require_ratios().map_err(ServiceError::EmptySweep)?;
        Ok(sw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vizalgo::Backend;

    fn tiny_cfg() -> ServiceConfig {
        ServiceConfig {
            nodes: 2,
            workers: 2,
            batch: 4,
            fleet_budget: Watts(180.0),
            shards: 4,
            ..ServiceConfig::default()
        }
    }

    fn req(algorithm: Algorithm, cap: f64) -> Request {
        Request {
            spec: algorithm.default_spec(),
            size: 6,
            cap: Watts(cap),
            backend: Backend::Traditional,
        }
    }

    #[test]
    fn serve_dedupes_and_balances_the_books() {
        let mut svc = StudyService::new(tiny_cfg()).expect("valid config");
        let traffic = vec![
            req(Algorithm::Slice, 80.0),
            req(Algorithm::Slice, 80.0),      // same batch → coalesced
            req(Algorithm::Threshold, 80.0),  // distinct work → miss
            req(Algorithm::Slice, 80.0),      // still batch 1 → coalesced
            req(Algorithm::Slice, 80.0),      // batch 2 → hit
            req(Algorithm::Threshold, 120.0), // distinct cap → miss
        ];
        let out = svc
            .serve(&traffic, &mut Journal::off())
            .expect("traffic serves");
        let r = &out.report;
        assert_eq!(
            (r.hits, r.misses, r.coalesced),
            (1, 3, 2),
            "classification: {r:?}"
        );
        assert_eq!(r.hits + r.misses + r.coalesced, r.requests);
        assert_eq!(r.batches, 2);
        assert_eq!(r.per_node_jobs.iter().sum::<u64>(), 3);
        // Requests 0, 1, 3, 4 share one key; byte-identical results.
        let slice0 = &out.responses[0];
        for i in [1usize, 3, 4] {
            assert_eq!(out.responses[i].key, slice0.key);
            assert!(Arc::ptr_eq(&out.responses[i].result, &slice0.result));
        }
        assert_eq!(out.responses[4].outcome, Outcome::Hit);
        assert_eq!(out.responses[4].latency_seconds, 0.0);
        // The 120 W ask was admitted at the 90 W node budget.
        assert_eq!(out.responses[5].key.cap(), Watts(90.0));
        // Every window respects the node budget.
        for w in &r.windows {
            assert!(w.admitted.value() <= r.node_budget.value() + CAP_EPS);
        }
        assert!(r.modeled_seconds > 0.0);
    }

    #[test]
    fn worker_count_does_not_change_observables() {
        let traffic: Vec<Request> = vec![
            req(Algorithm::Slice, 60.0),
            req(Algorithm::Threshold, 60.0),
            req(Algorithm::Slice, 90.0),
            req(Algorithm::Slice, 60.0),
            req(Algorithm::Contour, 60.0),
        ];
        let serve_with = |workers: usize| {
            let mut svc = StudyService::new(ServiceConfig {
                workers,
                ..tiny_cfg()
            })
            .expect("valid config");
            let mut journal = Journal::with_capacity(1 << 12);
            let out = svc.serve(&traffic, &mut journal).expect("serves");
            (format!("{:?}", out.report), journal.to_jsonl())
        };
        let (report1, journal1) = serve_with(1);
        let (report8, journal8) = serve_with(8);
        assert_eq!(report1, report8, "report is worker-count-invariant");
        assert_eq!(journal1, journal8, "journal is worker-count-invariant");
        assert!(journal1.contains("\"ev\":\"cache_event\""));
        assert!(journal1.contains("\"ev\":\"service_request\""));
        assert!(journal1.contains("batch:0"));
        assert!(journal1.contains("serve:5"));
    }

    #[test]
    fn slot_capped_cache_evicts_oldest_and_journals_it() {
        let mut svc = StudyService::new(ServiceConfig {
            cache_slots: Some(2),
            ..tiny_cfg()
        })
        .expect("valid config");
        let traffic = vec![
            req(Algorithm::Slice, 80.0),
            req(Algorithm::Threshold, 80.0),
            req(Algorithm::Contour, 80.0), // 3 unique keys > 2 slots
            req(Algorithm::Slice, 80.0),   // same batch → coalesced
            // batch 2: Slice was the oldest resident, evicted at the
            // end of batch 1 — it must *miss* again, not hit.
            req(Algorithm::Slice, 80.0),
        ];
        let mut journal = Journal::with_capacity(1 << 12);
        let out = svc.serve(&traffic, &mut journal).expect("serves");
        let r = &out.report;
        assert_eq!(
            (r.hits, r.misses, r.coalesced),
            (0, 4, 1),
            "evicted key recomputes: {r:?}"
        );
        // Batch 1 evicts Slice, batch 2 evicts Threshold.
        assert_eq!(r.evictions, 2);
        assert_eq!(svc.cache_len(), 2, "cache bounded to the slot budget");
        let evict_lines = journal
            .to_jsonl()
            .lines()
            .filter(|l| l.contains("\"outcome\":\"evict\""))
            .count();
        assert_eq!(evict_lines, 2, "one journaled evict per drop");
        assert!(out.report.render().contains("evictions: 2"));
    }

    #[test]
    fn uncapped_service_never_evicts() {
        let mut svc = StudyService::new(tiny_cfg()).expect("valid config");
        let traffic = vec![
            req(Algorithm::Slice, 80.0),
            req(Algorithm::Threshold, 80.0),
            req(Algorithm::Contour, 80.0),
        ];
        let mut journal = Journal::with_capacity(1 << 12);
        let out = svc.serve(&traffic, &mut journal).expect("serves");
        assert_eq!(out.report.evictions, 0);
        assert_eq!(svc.cache_len(), 3);
        assert!(!journal.to_jsonl().contains("\"outcome\":\"evict\""));
        assert!(!out.report.render().contains("evictions"));
    }

    #[test]
    fn invalid_configs_are_rejected_up_front() {
        for (cfg, what) in [
            (
                ServiceConfig {
                    nodes: 0,
                    ..ServiceConfig::default()
                },
                "nodes",
            ),
            (
                ServiceConfig {
                    workers: 0,
                    ..ServiceConfig::default()
                },
                "workers",
            ),
            (
                ServiceConfig {
                    batch: 0,
                    ..ServiceConfig::default()
                },
                "batch",
            ),
            (
                ServiceConfig {
                    shards: 0,
                    ..ServiceConfig::default()
                },
                "shards",
            ),
            (
                ServiceConfig {
                    cache_slots: Some(0),
                    ..ServiceConfig::default()
                },
                "cache_slots",
            ),
        ] {
            match StudyService::new(cfg) {
                Err(ServiceError::InvalidConfig(msg)) => {
                    assert!(msg.contains(what), "{msg} should mention {what}")
                }
                other => panic!("expected InvalidConfig({what}), got {other:?}"),
            }
        }
        match StudyService::new(ServiceConfig {
            fleet_budget: Watts(100.0),
            ..ServiceConfig::default()
        }) {
            Err(ServiceError::BudgetBelowFloor { .. }) => {}
            other => panic!("expected BudgetBelowFloor, got {other:?}"),
        }
    }

    #[test]
    fn cap_sweep_propagates_the_empty_sweep_error() {
        let mut study = StudyConfig::quick();
        study.caps.clear();
        let svc = StudyService::new(ServiceConfig {
            study,
            ..ServiceConfig::default()
        })
        .expect("valid config");
        let err = svc
            .cap_sweep(Algorithm::Contour, 6)
            .expect_err("no caps configured");
        let msg = err.to_string();
        assert!(msg.contains("Contour"), "{msg}");
        assert!(msg.contains("configure at least one cap"), "{msg}");
        let ok = StudyService::new(ServiceConfig::default())
            .expect("valid config")
            .cap_sweep(Algorithm::Slice, 6)
            .expect("default caps sweep");
        assert_eq!(ok.rows.len(), ServiceConfig::default().study.caps.len());
    }
}
