//! # service — the study service at scale
//!
//! Everything below `crates/service` turns the one-shot study pipeline
//! (`vizpower::study`) into a long-lived, concurrency-safe service: it
//! accepts thousands of requests, dedupes identical work through a
//! fingerprint-addressed cache, and schedules what remains across a
//! simulated fleet without ever exceeding a power budget.
//!
//! * [`key`] — the [`CacheKey`]: `(spec fingerprint, dataset
//!   fingerprint, admitted cap, backend)`, the four axes along which
//!   two requests are the same work.
//! * [`cache`] — [`ResultCache`], a sharded single-flight map: one
//!   compute per key no matter how many threads ask at once.
//! * [`admission`] — [`Admission`], `governor::sanitize` repurposed as
//!   the service's budget gate: every admitted cap fits its node's
//!   share of the fleet budget and the hardware range.
//! * [`engine`] — [`Engine`], the two-level compute path: cap-independent
//!   native filter runs (cached per backend-qualified spec) feeding the
//!   cap-dependent power model.
//! * [`service`] — [`StudyService`], the batched dispatcher/scheduler
//!   and its determinism argument: responses, report, and journal are
//!   byte-identical across worker counts.
//! * [`traffic`] — seeded Zipfian synthetic traffic for the
//!   `reproduce serve` driver.
//!
//! The architecture and the cache-key derivation (including why keys
//! carry the *admitted* cap, not the requested one) are documented in
//! `docs/SERVICE.md`; journal events are in `docs/OBSERVABILITY.md`
//! (schema v8).

pub mod admission;
pub mod cache;
pub mod engine;
pub mod key;
pub mod service;
pub mod traffic;

pub use admission::Admission;
pub use cache::{CacheStats, Outcome, ResultCache};
pub use engine::{Engine, JobResult, NativeRun, Request, ServiceError};
pub use key::CacheKey;
pub use service::{Response, ServeOutcome, ServeReport, ServiceConfig, StudyService, WindowLoad};
pub use traffic::{universe, zipf_traffic, TrafficConfig, XorShift};
