//! Deterministic synthetic traffic: the request universe and a seeded
//! Zipfian sampler.
//!
//! Real visualization services see heavy-tailed request popularity — a
//! few (spec, data, cap) combinations dominate while a long tail of
//! one-off asks trickles in. The driver models that with a Zipf(s)
//! distribution over a shuffled request universe: rank `r` (1-based)
//! carries weight `r^-s`. At the quick driver's defaults (universe 72,
//! s = 1.1, 400 requests) well over half the traffic lands on
//! already-served keys, which is what makes the result cache earn its
//! place — and what the `reproduce serve --quick` acceptance gate
//! (≥ 50 % hit rate) checks.
//!
//! Everything here is seeded xorshift64 — no external RNG crate, and
//! byte-identical traffic for a given `(universe, config)` pair.

use powersim::Watts;
use vizalgo::{Algorithm, Backend};
use vizpower::StudyConfig;

use crate::engine::Request;

/// Seeded xorshift64 generator (never zero-state).
#[derive(Debug, Clone)]
pub struct XorShift(u64);

impl XorShift {
    /// A generator seeded by `seed` (zero is remapped to a fixed odd
    /// constant so the state never sticks).
    pub fn new(seed: u64) -> XorShift {
        XorShift(if seed == 0 {
            0x9E37_79B9_7F4A_7C15
        } else {
            seed
        })
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    /// Uniform draw in `[0, n)` (`n > 0`).
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n.max(1) as u64) as usize
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Parameters of one synthetic traffic run.
#[derive(Debug, Clone, Copy)]
pub struct TrafficConfig {
    /// Requests to draw.
    pub requests: usize,
    /// Zipf exponent `s` (0 = uniform; larger = heavier head).
    pub zipf_s: f64,
    /// RNG seed for both the universe shuffle and the draws.
    pub seed: u64,
}

/// The full request universe: every `(algorithm, size, cap, backend)`
/// combination the study config can express, with backends filtered to
/// those that support the algorithm. Order is deterministic:
/// algorithm-major, then size, then cap, then backend.
pub fn universe(study: &StudyConfig, sizes: &[usize], caps: &[Watts]) -> Vec<Request> {
    let mut all = Vec::new();
    for algorithm in Algorithm::ALL {
        let spec = study.spec(algorithm);
        for &size in sizes {
            for &cap in caps {
                for backend in Backend::ALL {
                    if backend.supports(algorithm) {
                        all.push(Request {
                            spec: spec.clone(),
                            size,
                            cap,
                            backend,
                        });
                    }
                }
            }
        }
    }
    all
}

/// Draw `cfg.requests` requests from `universe` under a Zipf(`s`)
/// popularity law over a seeded shuffle of the universe (so which
/// requests are popular varies with the seed, not just how popular the
/// head is).
pub fn zipf_traffic(universe: &[Request], cfg: TrafficConfig) -> Vec<Request> {
    if universe.is_empty() || cfg.requests == 0 {
        return Vec::new();
    }
    let mut rng = XorShift::new(cfg.seed);
    // Fisher–Yates: rank-to-request assignment.
    let mut ranked: Vec<usize> = (0..universe.len()).collect();
    for i in (1..ranked.len()).rev() {
        ranked.swap(i, rng.below(i + 1));
    }
    // Zipf CDF over ranks 1..=n with weight r^-s.
    let mut cdf = Vec::with_capacity(ranked.len());
    let mut total = 0.0f64;
    for r in 1..=ranked.len() {
        total += (r as f64).powf(-cfg.zipf_s);
        cdf.push(total);
    }
    (0..cfg.requests)
        .map(|_| {
            let draw = rng.unit() * total;
            let rank = cdf.partition_point(|&c| c < draw).min(ranked.len() - 1);
            universe[ranked[rank]].clone()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_universe() -> Vec<Request> {
        universe(
            &StudyConfig::quick(),
            &[8, 12],
            &[Watts(120.0), Watts(80.0), Watts(40.0)],
        )
    }

    #[test]
    fn universe_enumerates_supported_combinations_once() {
        let u = quick_universe();
        // 8 algorithms × 2 sizes × 3 caps on traditional, plus the 4
        // DPP-expressible algorithms × 2 × 3.
        assert_eq!(u.len(), 8 * 2 * 3 + 4 * 2 * 3);
        for r in &u {
            assert!(r.backend.supports(r.spec.algorithm()));
        }
    }

    #[test]
    fn traffic_is_seed_deterministic_and_zipf_skewed() {
        let u = quick_universe();
        let cfg = TrafficConfig {
            requests: 400,
            zipf_s: 1.1,
            seed: 7,
        };
        let a = zipf_traffic(&u, cfg);
        let b = zipf_traffic(&u, cfg);
        assert_eq!(a.len(), 400);
        assert_eq!(format!("{a:?}"), format!("{b:?}"), "replay-identical");
        // Skew: the most popular key should dominate a uniform share.
        let mut counts = std::collections::HashMap::new();
        for r in &a {
            *counts
                .entry((
                    r.spec.fingerprint(),
                    r.size,
                    r.backend,
                    r.cap.value() as u64,
                ))
                .or_insert(0usize) += 1;
        }
        let max = counts.values().max().copied().unwrap_or(0);
        assert!(
            max > 400 / u.len() * 4,
            "zipf head should beat uniform: max {max}"
        );
        let other = zipf_traffic(&u, TrafficConfig { seed: 8, ..cfg });
        assert_ne!(
            format!("{a:?}"),
            format!("{other:?}"),
            "seed moves the draw"
        );
    }

    #[test]
    fn degenerate_inputs_yield_empty_traffic() {
        let u = quick_universe();
        assert!(zipf_traffic(
            &[],
            TrafficConfig {
                requests: 10,
                zipf_s: 1.0,
                seed: 1
            }
        )
        .is_empty());
        assert!(zipf_traffic(
            &u,
            TrafficConfig {
                requests: 0,
                zipf_s: 1.0,
                seed: 1
            }
        )
        .is_empty());
    }
}
