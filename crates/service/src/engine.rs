//! The execution engine behind the service: request/response types, the
//! service error, and the two-level compute path (native filter run,
//! then cap-dependent power model).
//!
//! A cached study result factors into two stages with different key
//! spaces:
//!
//! * the **native run** — `spec.build_with(backend).execute(dataset)` —
//!   depends on `(spec, backend, dataset)` but *not* the cap, so it is
//!   cached once per backend-qualified spec fingerprint and shared by
//!   every cap the fleet serves it under;
//! * the **capped execution** — `characterize` + `Package::run_capped`
//!   via [`vizpower::study::sweep`] — depends on all four key
//!   components and is what the service's main result cache stores.
//!
//! The native entry keeps the `Debug` rendering of the full
//! [`FilterOutput`](vizalgo::FilterOutput) (geometry, images, kernels,
//! primitives). That string is the differential-parity oracle: the
//! root `service_parity` suite compares it byte-for-byte against a cold
//! direct run of the same spec.

use std::sync::Arc;

use powersim::{CpuSpec, ExecResult, Watts};
use vizalgo::{Algorithm, AlgorithmSpec, Backend, KernelReport};
use vizpower::study::sweep;
use vizpower::{AlgorithmRun, DatasetStore, EmptySweepError};

use crate::cache::ResultCache;
use crate::key::CacheKey;

/// One unit of incoming traffic: run `spec` on the `size`³ study
/// dataset under a requested power cap, on a backend.
#[derive(Debug, Clone)]
pub struct Request {
    /// The algorithm plan to execute.
    pub spec: AlgorithmSpec,
    /// Study dataset size (cells per axis).
    pub size: usize,
    /// Requested power cap — admission may clamp it before keying.
    pub cap: Watts,
    /// Execution backend.
    pub backend: Backend,
}

/// The cached product of one unit of work: the native output rendering
/// (the parity oracle) plus the power-model execution at the key's cap.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// The key this result is cached under (admitted cap included).
    pub key: CacheKey,
    /// The executed algorithm.
    pub algorithm: Algorithm,
    /// `format!("{:?}")` of the native [`vizalgo::FilterOutput`] —
    /// byte-compared against cold direct runs by the parity suite.
    pub output_debug: String,
    /// The capped power-model execution (time, energy, counters).
    pub exec: ExecResult,
}

/// Everything that can go wrong on the service path. `Clone` so one
/// failure can be reported to every requester that coalesced onto it.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// The requested backend cannot express the requested algorithm.
    UnsupportedBackend {
        /// The backend asked for.
        backend: Backend,
        /// The algorithm it cannot run.
        algorithm: Algorithm,
    },
    /// The fleet budget shared across nodes leaves some node below the
    /// hardware minimum cap — no request could legally be admitted.
    BudgetBelowFloor {
        /// The per-node share of the fleet budget.
        node_budget: Watts,
        /// The hardware floor it fails to clear.
        floor: Watts,
        /// How many ways the fleet budget was split.
        nodes: usize,
    },
    /// A service configuration knob was zero that must not be.
    InvalidConfig(&'static str),
    /// A cap sweep on the service path came back empty.
    EmptySweep(EmptySweepError),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::UnsupportedBackend { backend, algorithm } => write!(
                f,
                "the {backend:?} backend does not support {algorithm:?}; \
                 route this request to the traditional backend"
            ),
            ServiceError::BudgetBelowFloor {
                node_budget,
                floor,
                nodes,
            } => write!(
                f,
                "fleet budget splits to {node_budget:?} per node across {nodes} nodes, \
                 below the {floor:?} hardware floor: no cap could be admitted; \
                 raise the budget or shrink the fleet"
            ),
            ServiceError::InvalidConfig(what) => {
                write!(f, "invalid service configuration: {what}")
            }
            ServiceError::EmptySweep(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<EmptySweepError> for ServiceError {
    fn from(e: EmptySweepError) -> ServiceError {
        ServiceError::EmptySweep(e)
    }
}

/// A cached native filter run: the parity-oracle rendering plus the
/// kernel reports that feed `characterize`.
#[derive(Debug)]
pub struct NativeRun {
    /// `Debug` rendering of the full `FilterOutput`.
    pub output_debug: String,
    /// Measured per-kernel work counts, in execution order.
    pub reports: Vec<KernelReport>,
    /// Cells in the input dataset.
    pub input_cells: usize,
}

/// The compute core shared by every worker thread: dataset store,
/// processor model, and the cap-independent native-run cache.
#[derive(Debug)]
pub struct Engine {
    store: Arc<DatasetStore>,
    cpu: CpuSpec,
    natives: ResultCache<NativeRun>,
}

impl Engine {
    /// An engine over `store`, modeling `cpu`, with `shards` native
    /// cache shards.
    pub fn new(store: Arc<DatasetStore>, cpu: CpuSpec, shards: usize) -> Engine {
        Engine {
            store,
            cpu,
            natives: ResultCache::new(shards),
        }
    }

    /// The processor model the engine executes against.
    pub fn cpu(&self) -> &CpuSpec {
        &self.cpu
    }

    /// The shared dataset store (lazily built, fingerprint-cached).
    pub fn store(&self) -> &Arc<DatasetStore> {
        &self.store
    }

    /// 48-bit fingerprint of the `size`³ study dataset.
    pub fn data_fp(&self, size: usize) -> u64 {
        self.store.fingerprint(size)
    }

    /// Reject requests the backend cannot serve. Runs at dispatch time
    /// so invalid traffic fails before any scheduling happens.
    pub fn validate(&self, req: &Request) -> Result<(), ServiceError> {
        let algorithm = req.spec.algorithm();
        if !req.backend.supports(algorithm) {
            return Err(ServiceError::UnsupportedBackend {
                backend: req.backend,
                algorithm,
            });
        }
        Ok(())
    }

    /// The native run for a request, built at most once per
    /// `(backend-qualified spec fingerprint, dataset)` across all caps
    /// and all worker threads. The synthetic key reuses the result
    /// cache's single-flight machinery with `cap_milliwatts = 0` (a cap
    /// no admitted key can have, since admission floors at `min_cap`).
    pub fn native(&self, req: &Request, data_fp: u64) -> Arc<NativeRun> {
        let key = CacheKey {
            spec_fp: req.spec.fingerprint_with(req.backend),
            data_fp,
            cap_milliwatts: 0,
            backend: req.backend,
        };
        self.natives.get_or_compute(key, || {
            let ds = self.store.dataset(req.size);
            let out = req.spec.build_with(req.backend, &ds).execute(&ds);
            NativeRun {
                output_debug: format!("{out:?}"),
                reports: out.kernels,
                input_cells: ds.num_cells(),
            }
        })
    }

    /// Execute one validated, admitted unit of work: native run (cached
    /// across caps), then the power model at exactly the key's cap.
    pub fn execute(&self, req: &Request, key: CacheKey) -> JobResult {
        let algorithm = req.spec.algorithm();
        let native = self.native(req, key.data_fp);
        let run = AlgorithmRun {
            algorithm,
            size: req.size,
            input_cells: native.input_cells,
            spec: req.spec.clone(),
            reports: native.reports.clone(),
        };
        let sw = sweep(&run, &[key.cap()], &self.cpu);
        let exec = sw
            .rows
            .first()
            .expect("single-cap sweep has exactly one row")
            .clone();
        JobResult {
            key,
            algorithm,
            output_debug: native.output_debug.clone(),
            exec,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powersim::CpuSpec;

    fn engine() -> Engine {
        Engine::new(
            Arc::new(DatasetStore::new()),
            CpuSpec::broadwell_e5_2695v4(),
            4,
        )
    }

    fn request(cap: f64, backend: Backend) -> Request {
        Request {
            spec: Algorithm::Slice.default_spec(),
            size: 6,
            cap: Watts(cap),
            backend,
        }
    }

    #[test]
    fn validate_rejects_dpp_only_where_unsupported() {
        let e = engine();
        let bad = Request {
            spec: Algorithm::RayTracing.default_spec(),
            ..request(80.0, Backend::Dpp)
        };
        match e.validate(&bad) {
            Err(ServiceError::UnsupportedBackend { backend, algorithm }) => {
                assert_eq!(backend, Backend::Dpp);
                assert_eq!(algorithm, Algorithm::RayTracing);
            }
            other => panic!("expected UnsupportedBackend, got {other:?}"),
        }
        e.validate(&request(80.0, Backend::Dpp))
            .expect("slice has a DPP formulation");
    }

    #[test]
    fn native_runs_are_shared_across_caps_but_not_backends() {
        let e = engine();
        let data_fp = e.data_fp(6);
        let lo = request(60.0, Backend::Traditional);
        let hi = request(120.0, Backend::Traditional);
        let a = e.native(&lo, data_fp);
        let b = e.native(&hi, data_fp);
        assert!(Arc::ptr_eq(&a, &b), "cap does not key the native run");
        let dpp = e.native(&request(60.0, Backend::Dpp), data_fp);
        assert!(!Arc::ptr_eq(&a, &dpp), "backend does key the native run");
    }

    #[test]
    fn execute_runs_the_power_model_at_exactly_the_key_cap() {
        let e = engine();
        let req = request(60.0, Backend::Traditional);
        let key = CacheKey::new(&req.spec, e.data_fp(6), req.cap, req.backend);
        let job = e.execute(&req, key);
        assert_eq!(job.key, key);
        assert_eq!(job.exec.cap_watts, Watts(60.0));
        assert!(job.exec.seconds > 0.0);
        assert!(!job.output_debug.is_empty());
        assert_eq!(job.algorithm, Algorithm::Slice);
    }
}
