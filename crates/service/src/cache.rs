//! Sharded, fingerprint-addressed, single-flight result cache.
//!
//! The cache maps a [`CacheKey`] to an `Arc<V>`. Its one structural
//! guarantee is **single-flight**: for any key, the compute closure runs
//! at most once no matter how many threads ask concurrently — the first
//! caller inserts an in-flight marker and computes *outside* the shard
//! lock; everyone else parks on that marker's condvar and receives the
//! same `Arc`. Shard locks are therefore only ever held for map
//! bookkeeping, never across a study execution.
//!
//! Sharding is by [`CacheKey::hash48`] modulo the shard count, so
//! unrelated keys contend on different mutexes. Outcome counters
//! (hit / miss / coalesced) are atomics updated at classification time;
//! the service reads them through [`ResultCache::stats`].
//!
//! One sharp edge, documented rather than papered over: if a compute
//! closure panics, its in-flight marker is never published and waiters
//! on that key would block. The service runs computes on scoped worker
//! threads whose panics propagate at join, so a panicking compute takes
//! the whole serve call down with it — it cannot silently wedge.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use crate::key::CacheKey;

/// How a request resolved against the cache, decided at dispatch time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Outcome {
    /// The key was already resident (computed by an earlier batch).
    Hit,
    /// First sight of the key: this request pays for the compute.
    Miss,
    /// The key was already in flight (scheduled earlier in the same
    /// batch or being computed by another thread); this request rides
    /// along without scheduling new work.
    Coalesced,
}

impl Outcome {
    /// Journal spelling of the outcome.
    pub fn name(&self) -> &'static str {
        match self {
            Outcome::Hit => "hit",
            Outcome::Miss => "miss",
            Outcome::Coalesced => "coalesced",
        }
    }
}

/// Counter snapshot: outcomes observed since the cache was built.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Requests answered from a resident entry.
    pub hits: u64,
    /// Requests that computed a new entry.
    pub misses: u64,
    /// Requests coalesced onto an in-flight compute.
    pub coalesced: u64,
}

/// A published-or-pending cache slot.
enum Slot<V> {
    Ready(Arc<V>),
    InFlight(Arc<Flight<V>>),
}

/// Rendezvous for threads waiting on an in-flight compute.
struct Flight<V> {
    slot: Mutex<Option<Arc<V>>>,
    ready: Condvar,
}

/// The sharded single-flight cache. See the module docs for the
/// concurrency contract.
pub struct ResultCache<V> {
    shards: Vec<Mutex<HashMap<CacheKey, Slot<V>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
}

impl<V> std::fmt::Debug for ResultCache<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResultCache")
            .field("shards", &self.shards.len())
            .field("len", &self.len())
            .field("stats", &self.stats())
            .finish()
    }
}

impl<V> ResultCache<V> {
    /// A cache with `shards` independent lock domains (minimum 1).
    pub fn new(shards: usize) -> ResultCache<V> {
        let shards = shards.max(1);
        ResultCache {
            shards: (0..shards).map(|_| Mutex::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &CacheKey) -> &Mutex<HashMap<CacheKey, Slot<V>>> {
        &self.shards[key.shard(self.shards.len())]
    }

    /// The value for `key`, computing it with `f` if absent. Exactly one
    /// concurrent caller per key runs `f`; the rest block until the
    /// value is published and share the same `Arc`.
    pub fn get_or_compute<F>(&self, key: CacheKey, f: F) -> Arc<V>
    where
        F: FnOnce() -> V,
    {
        let flight = {
            let mut shard = self.shard(&key).lock().expect("cache shard poisoned");
            match shard.get(&key) {
                Some(Slot::Ready(v)) => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Arc::clone(v);
                }
                Some(Slot::InFlight(flight)) => {
                    self.coalesced.fetch_add(1, Ordering::Relaxed);
                    Arc::clone(flight)
                }
                None => {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    let flight = Arc::new(Flight {
                        slot: Mutex::new(None),
                        ready: Condvar::new(),
                    });
                    shard.insert(key, Slot::InFlight(Arc::clone(&flight)));
                    // Compute outside the shard lock, publish, wake waiters.
                    drop(shard);
                    let value = Arc::new(f());
                    let mut shard = self.shard(&key).lock().expect("cache shard poisoned");
                    shard.insert(key, Slot::Ready(Arc::clone(&value)));
                    drop(shard);
                    *flight.slot.lock().expect("flight slot poisoned") = Some(Arc::clone(&value));
                    flight.ready.notify_all();
                    return value;
                }
            }
        };
        let mut slot = flight.slot.lock().expect("flight slot poisoned");
        while slot.is_none() {
            slot = flight.ready.wait(slot).expect("flight slot poisoned");
        }
        Arc::clone(slot.as_ref().expect("flight published empty"))
    }

    /// The resident value for `key`, if already published.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<V>> {
        let shard = self.shard(key).lock().expect("cache shard poisoned");
        match shard.get(key) {
            Some(Slot::Ready(v)) => Some(Arc::clone(v)),
            _ => None,
        }
    }

    /// Whether `key` is resident (published, not merely in flight).
    pub fn contains(&self, key: &CacheKey) -> bool {
        self.get(key).is_some()
    }

    /// Remove the resident entry for `key`, returning whether one was
    /// dropped. In-flight slots are never removed — the flight owns its
    /// slot until it publishes, so a concurrent compute can't be orphaned.
    /// Outcome counters are untouched: eviction is a capacity decision,
    /// not a request outcome (the service journals it separately).
    pub fn remove(&self, key: &CacheKey) -> bool {
        let mut shard = self.shard(key).lock().expect("cache shard poisoned");
        match shard.get(key) {
            Some(Slot::Ready(_)) => {
                shard.remove(key);
                true
            }
            _ => false,
        }
    }

    /// Count one classification-time outcome. The service classifies
    /// requests at dispatch (before workers run), so batch-level hit
    /// accounting lives here rather than inside [`Self::get_or_compute`].
    pub fn record(&self, outcome: Outcome) {
        match outcome {
            Outcome::Hit => &self.hits,
            Outcome::Miss => &self.misses,
            Outcome::Coalesced => &self.coalesced,
        }
        .fetch_add(1, Ordering::Relaxed);
    }

    /// Resident entry count across all shards (in-flight slots included).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").len())
            .sum()
    }

    /// Whether no key has ever been inserted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the outcome counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powersim::Watts;
    use std::sync::atomic::AtomicUsize;
    use vizalgo::{Algorithm, Backend};

    fn key(data_fp: u64) -> CacheKey {
        CacheKey::new(
            &Algorithm::Slice.default_spec(),
            data_fp,
            Watts(100.0),
            Backend::Traditional,
        )
    }

    #[test]
    fn second_lookup_is_a_hit_sharing_the_allocation() {
        let cache: ResultCache<String> = ResultCache::new(4);
        let a = cache.get_or_compute(key(1), || "built".to_string());
        let b = cache.get_or_compute(key(1), || unreachable_value());
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                coalesced: 0
            }
        );
        assert_eq!(cache.len(), 1);
    }

    fn unreachable_value() -> String {
        panic!("compute must not rerun for a resident key")
    }

    #[test]
    fn distinct_keys_occupy_distinct_slots() {
        let cache: ResultCache<u64> = ResultCache::new(2);
        for fp in 0..16 {
            cache.get_or_compute(key(fp), || fp * 10);
        }
        assert_eq!(cache.len(), 16);
        assert_eq!(cache.stats().misses, 16);
        assert_eq!(*cache.get(&key(7)).expect("resident"), 70);
        assert!(!cache.contains(&key(99)));
    }

    #[test]
    fn concurrent_same_key_computes_exactly_once() {
        let cache: ResultCache<usize> = ResultCache::new(8);
        let computes = AtomicUsize::new(0);
        let results: Vec<Arc<usize>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..16)
                .map(|_| {
                    scope.spawn(|| {
                        cache.get_or_compute(key(42), || {
                            computes.fetch_add(1, Ordering::SeqCst);
                            // Widen the race window so later arrivals
                            // coalesce instead of missing the flight.
                            std::thread::sleep(std::time::Duration::from_millis(20));
                            7usize
                        })
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("no panic"))
                .collect()
        });
        assert_eq!(computes.load(Ordering::SeqCst), 1, "single flight");
        for r in &results {
            assert!(Arc::ptr_eq(r, &results[0]));
        }
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits + stats.coalesced, 15);
    }

    #[test]
    fn remove_drops_resident_entries_only() {
        let cache: ResultCache<u64> = ResultCache::new(2);
        cache.get_or_compute(key(1), || 10);
        cache.get_or_compute(key(2), || 20);
        assert!(cache.remove(&key(1)), "resident entry drops");
        assert!(!cache.remove(&key(1)), "second remove is a no-op");
        assert!(!cache.remove(&key(9)), "absent key is a no-op");
        assert!(!cache.contains(&key(1)));
        assert_eq!(cache.len(), 1);
        // A removed key recomputes (and the stats see a fresh miss).
        let v = cache.get_or_compute(key(1), || 11);
        assert_eq!(*v, 11);
        assert_eq!(cache.stats().misses, 3);
    }

    #[test]
    fn record_feeds_the_classification_counters() {
        let cache: ResultCache<()> = ResultCache::new(1);
        cache.record(Outcome::Hit);
        cache.record(Outcome::Hit);
        cache.record(Outcome::Miss);
        cache.record(Outcome::Coalesced);
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 2,
                misses: 1,
                coalesced: 1
            }
        );
        assert_eq!(Outcome::Coalesced.name(), "coalesced");
    }
}
