//! The service cache key: the four components that make a study
//! execution content-addressable.
//!
//! Two requests are the *same work* iff all four components agree:
//!
//! 1. `spec_fp` — the 48-bit [`AlgorithmSpec`] fingerprint (what plan),
//! 2. `data_fp` — the 48-bit dataset fingerprint (what data),
//! 3. `cap_milliwatts` — the admitted power cap (what machine regime),
//! 4. `backend` — the execution backend (which formulation).
//!
//! The spec fingerprint here is the backend-*independent*
//! [`AlgorithmSpec::fingerprint`], so the backend is its own key axis
//! rather than being folded into the hash — perturbing any single
//! component must force a distinct key (the property the service's
//! invariants suite checks). The cap is stored in integer milliwatts so
//! the key is `Eq`/`Hash`/`Ord` without floating-point equality; the
//! conversion truncates toward zero so a keyed cap never quantizes
//! *above* the admitted value (the budget law holds for the key's cap,
//! not just the pre-quantization one).

use powersim::Watts;
use vizalgo::{AlgorithmSpec, Backend, Fnv1a};

/// The four-component fingerprint address of one unit of service work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CacheKey {
    /// Backend-independent 48-bit spec fingerprint.
    pub spec_fp: u64,
    /// 48-bit dataset content fingerprint.
    pub data_fp: u64,
    /// Admitted power cap in integer milliwatts.
    pub cap_milliwatts: u64,
    /// Execution backend.
    pub backend: Backend,
}

impl CacheKey {
    /// Key for `spec` against the dataset fingerprinted as `data_fp`,
    /// under the (already admitted) `cap`, on `backend`.
    pub fn new(spec: &AlgorithmSpec, data_fp: u64, cap: Watts, backend: Backend) -> CacheKey {
        CacheKey {
            spec_fp: spec.fingerprint(),
            data_fp,
            cap_milliwatts: (cap.value() * 1000.0).floor() as u64,
            backend,
        }
    }

    /// The cap component as [`Watts`].
    pub fn cap(&self) -> Watts {
        Watts(self.cap_milliwatts as f64 / 1000.0)
    }

    /// 48-bit FNV-1a over the four components — the hash behind shard
    /// selection and node placement.
    pub fn hash48(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.update_u64(self.spec_fp);
        h.update_u64(self.data_fp);
        h.update_u64(self.cap_milliwatts);
        h.update_u64(self.backend as u64);
        h.finish48()
    }

    /// Cache shard this key lives on, for a cache of `shards` shards.
    pub fn shard(&self, shards: usize) -> usize {
        (self.hash48() % shards.max(1) as u64) as usize
    }

    /// Deterministic seeded node placement: the simulated node (of
    /// `nodes`) an execution of this key is scheduled onto. A
    /// splitmix64 finalizer over `hash48 ^ seed` spreads consecutive
    /// keys across the fleet while staying replay-identical.
    pub fn placement(&self, seed: u64, nodes: usize) -> usize {
        (mix64(self.hash48() ^ seed) % nodes.max(1) as u64) as usize
    }
}

/// splitmix64 finalizer: a full-avalanche bijection on `u64`.
fn mix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vizalgo::Algorithm;

    fn key() -> CacheKey {
        CacheKey::new(
            &Algorithm::Contour.default_spec(),
            0xABCD_EF01_2345,
            Watts(80.0),
            Backend::Traditional,
        )
    }

    #[test]
    fn cap_round_trips_through_milliwatts() {
        let k = key();
        assert_eq!(k.cap_milliwatts, 80_000);
        assert_eq!(k.cap(), Watts(80.0));
        let fractional = CacheKey::new(
            &Algorithm::Contour.default_spec(),
            1,
            Watts(72.5),
            Backend::Traditional,
        );
        assert_eq!(fractional.cap(), Watts(72.5));
        // Sub-milliwatt caps truncate toward zero: the keyed cap must
        // never exceed the admitted value it encodes.
        let awkward = CacheKey::new(
            &Algorithm::Contour.default_spec(),
            1,
            Watts(51.403_633_367_795_926),
            Backend::Traditional,
        );
        assert_eq!(awkward.cap_milliwatts, 51_403);
        assert!(awkward.cap().value() <= 51.403_633_367_795_926);
    }

    #[test]
    fn every_component_moves_the_key_and_its_hash() {
        let base = key();
        let variants = [
            CacheKey::new(
                &Algorithm::Threshold.default_spec(),
                base.data_fp,
                base.cap(),
                base.backend,
            ),
            CacheKey {
                data_fp: base.data_fp ^ 1,
                ..base
            },
            CacheKey::new(
                &Algorithm::Contour.default_spec(),
                base.data_fp,
                Watts(79.0),
                base.backend,
            ),
            CacheKey {
                backend: Backend::Dpp,
                ..base
            },
        ];
        for v in variants {
            assert_ne!(base, v);
            assert_ne!(base.hash48(), v.hash48());
        }
    }

    #[test]
    fn placement_is_deterministic_and_in_range() {
        let k = key();
        for nodes in [1, 3, 8] {
            let n = k.placement(42, nodes);
            assert!(n < nodes);
            assert_eq!(n, k.placement(42, nodes), "replay-identical");
        }
        assert_eq!(k.placement(7, 1), 0, "single node takes everything");
    }
}
