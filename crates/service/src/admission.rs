//! Admission control: the governor's cap sanitizer as a service-side
//! budget gate.
//!
//! The fleet budget divides evenly across the simulated nodes; each
//! node's share must admit at least one package at the hardware floor
//! (`min_cap`), otherwise the node could never legally run anything —
//! [`Admission::new`] rejects such configurations up front instead of
//! letting `governor::sanitize`'s documented lone-survivor caveat
//! (budgets below `min_cap` pass through unclamped) leak into the
//! schedule.
//!
//! A request's cap is admitted as a lone-survivor governor split: the
//! request is the `sim` side, the `viz` side is retired, and
//! [`governor::sanitize`] clamps against the node budget and the
//! hardware range. The service builds its cache key from the *admitted*
//! cap — a 120 W ask on a 90 W node is served, journaled, and cached at
//! 90 W, so over-budget requests still dedupe with each other.

use governor::{sanitize, CapSplit};
use powersim::{CpuSpec, Watts};

use crate::engine::ServiceError;

/// Per-node admission gate under a fleet-wide power budget.
#[derive(Debug, Clone)]
pub struct Admission {
    node_budget: Watts,
    spec: CpuSpec,
}

impl Admission {
    /// Split `fleet_budget` across `nodes` and validate that each share
    /// clears the hardware floor of `spec`.
    pub fn new(
        fleet_budget: Watts,
        nodes: usize,
        spec: CpuSpec,
    ) -> Result<Admission, ServiceError> {
        let nodes = nodes.max(1);
        let node_budget = fleet_budget / nodes as f64;
        if node_budget < spec.min_cap_watts {
            return Err(ServiceError::BudgetBelowFloor {
                node_budget,
                floor: spec.min_cap_watts,
                nodes,
            });
        }
        Ok(Admission { node_budget, spec })
    }

    /// The per-node share of the fleet budget.
    pub fn node_budget(&self) -> Watts {
        self.node_budget
    }

    /// The processor spec whose hardware range bounds every admitted cap.
    pub fn spec(&self) -> &CpuSpec {
        &self.spec
    }

    /// Admit a requested cap onto one node: the lone-survivor
    /// `governor::sanitize` split against the node budget. The result is
    /// always within `[min_cap, min(node_budget, tdp)]`.
    pub fn admit(&self, requested: Watts) -> Watts {
        sanitize(
            CapSplit {
                sim: requested,
                viz: Watts::ZERO,
            },
            true,
            false,
            self.node_budget,
            &self.spec,
        )
        .sim
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> CpuSpec {
        CpuSpec::broadwell_e5_2695v4()
    }

    #[test]
    fn admitted_caps_stay_inside_budget_and_hardware_range() {
        let adm = Admission::new(Watts(360.0), 4, spec()).expect("feasible");
        assert_eq!(adm.node_budget(), Watts(90.0));
        assert_eq!(adm.admit(Watts(120.0)), Watts(90.0), "budget-capped");
        assert_eq!(adm.admit(Watts(80.0)), Watts(80.0), "within budget");
        assert_eq!(adm.admit(Watts(10.0)), Watts(40.0), "floor-clamped");
        assert_eq!(adm.admit(Watts(500.0)), Watts(90.0), "tdp then budget");
    }

    #[test]
    fn roomy_budget_caps_at_tdp_not_budget() {
        let adm = Admission::new(Watts(400.0), 2, spec()).expect("feasible");
        assert_eq!(adm.node_budget(), Watts(200.0));
        assert_eq!(adm.admit(Watts(500.0)), spec().tdp_watts);
    }

    #[test]
    fn infeasible_share_is_rejected_at_construction() {
        let err = Admission::new(Watts(100.0), 4, spec()).expect_err("25 W/node < 40 W floor");
        match err {
            ServiceError::BudgetBelowFloor {
                node_budget,
                floor,
                nodes,
            } => {
                assert_eq!(node_budget, Watts(25.0));
                assert_eq!(floor, Watts(40.0));
                assert_eq!(nodes, 4);
            }
            other => panic!("wrong error: {other:?}"),
        }
    }
}
