//! Property tests for the study service's hard laws:
//!
//! 1. **Budget law** — no scheduling window's admitted power exceeds a
//!    node's share of the fleet budget, for any traffic and any
//!    feasible fleet shape; and the fleet never exceeds the budget in
//!    aggregate (per-node share × nodes ≤ fleet budget).
//! 2. **Bookkeeping law** — hits + misses + coalesced always equals the
//!    request count, and the responses agree with the report.
//! 3. **Key-sensitivity law** — perturbing any one of the four cache-key
//!    components (spec, dataset, cap, backend) forces a miss where the
//!    unperturbed request hits.
//! 4. **Replay law** — identical `(config, traffic)` produce
//!    byte-identical reports and journals, regardless of worker count.
//! 5. **Traffic laws** — the Zipf sampler is seed-deterministic, draws
//!    only from its universe with boundedly many distinct keys, and its
//!    rank-binned frequencies decay monotonically (the heavy head the
//!    cache's hit rate depends on).
//!
//! Kept intentionally small (cheap algorithms, 6³/8³ data, single-digit
//! case counts): each case executes real filter kernels through the
//! full service path.

use powersim::trace::Journal;
use powersim::Watts;
use proptest::prelude::*;
use service::traffic::{universe, zipf_traffic, TrafficConfig, XorShift};
use service::{Outcome, Request, ServiceConfig, StudyService};
use vizalgo::{Algorithm, Backend};
use vizpower::StudyConfig;

/// A stable identity for one universe entry (requests don't implement
/// `Eq`, so comparisons go through the cache-key components).
fn request_id(r: &Request) -> (u64, usize, u64, Backend) {
    (
        r.spec.fingerprint(),
        r.size,
        r.cap.value().to_bits(),
        r.backend,
    )
}

/// The traffic driver's quick universe (72 + 24 entries).
fn quick_universe() -> Vec<Request> {
    universe(
        &StudyConfig::quick(),
        &[8, 12],
        &[Watts(120.0), Watts(80.0), Watts(40.0)],
    )
}

fn algorithm() -> impl Strategy<Value = Algorithm> {
    prop_oneof![
        Just(Algorithm::Slice),
        Just(Algorithm::Threshold),
        Just(Algorithm::Contour),
    ]
}

fn backend() -> impl Strategy<Value = Backend> {
    // All three algorithms above have DPP formulations, so both
    // backends are always valid traffic.
    prop_oneof![Just(Backend::Traditional), Just(Backend::Dpp)]
}

fn request() -> impl Strategy<Value = Request> {
    (
        algorithm(),
        prop_oneof![Just(6usize), Just(8usize)],
        30.0f64..200.0,
        backend(),
    )
        .prop_map(|(algorithm, size, cap, backend)| Request {
            spec: algorithm.default_spec(),
            size,
            cap: Watts(cap),
            backend,
        })
}

fn service(nodes: usize, workers: usize, batch: usize, share: f64, seed: u64) -> StudyService {
    StudyService::new(ServiceConfig {
        nodes,
        workers,
        batch,
        fleet_budget: Watts(share * nodes as f64),
        seed,
        shards: 4,
        ..ServiceConfig::default()
    })
    .expect("per-node share >= 40 W is always feasible")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn admitted_power_never_exceeds_the_budget_and_books_balance(
        traffic in prop::collection::vec(request(), 1..14),
        nodes in 1usize..4,
        workers in 1usize..4,
        batch in 2usize..6,
        share in 40.0f64..120.0,
    ) {
        let mut svc = service(nodes, workers, batch, share, 0x5eed_0009);
        let budget = svc.node_budget();
        let fleet = svc.config().fleet_budget;
        prop_assert!(budget.value() * nodes as f64 <= fleet.value() + 1e-6);
        let out = svc.serve(&traffic, &mut Journal::off()).expect("serves");
        let r = &out.report;
        prop_assert_eq!(r.hits + r.misses + r.coalesced, r.requests);
        prop_assert_eq!(r.requests, traffic.len());
        prop_assert_eq!(out.responses.len(), traffic.len());
        for w in &r.windows {
            prop_assert!(
                w.admitted.value() <= budget.value() + 1e-6,
                "window {w:?} over node budget {budget:?}"
            );
            prop_assert!(w.jobs > 0);
        }
        for resp in &out.responses {
            // Every admitted cap individually fits its node's budget
            // and the hardware range.
            prop_assert!(resp.key.cap().value() <= budget.value() + 1e-6);
            prop_assert!(resp.key.cap() >= svc.config().cpu.min_cap_watts);
            prop_assert!((resp.node as usize) < nodes);
        }
        let hits = out.responses.iter().filter(|r| r.outcome == Outcome::Hit).count();
        prop_assert_eq!(hits, r.hits, "responses agree with the report");
    }

    #[test]
    fn perturbing_any_key_component_forces_a_miss(
        cap in 50.0f64..90.0,
        seed in 0u64..1_000_000,
    ) {
        let mut svc = service(2, 2, 8, 90.0, seed);
        let base = Request {
            spec: Algorithm::Threshold.default_spec(),
            size: 6,
            cap: Watts(cap),
            backend: Backend::Traditional,
        };
        // Warm the cache; re-serving the identical request must hit.
        let cold = svc.serve(std::slice::from_ref(&base), &mut Journal::off()).expect("serves");
        prop_assert_eq!(cold.responses[0].outcome, Outcome::Miss);
        let warm = svc.serve(std::slice::from_ref(&base), &mut Journal::off()).expect("serves");
        prop_assert_eq!(warm.responses[0].outcome, Outcome::Hit);
        // One perturbation per key component. The cap nudge stays
        // admissible and cannot collide after admission: both caps are
        // in-range, and min(cap + 5, budget) > cap for cap < budget.
        let perturbed = [
            Request { spec: Algorithm::Slice.default_spec(), ..base.clone() },
            Request { size: 8, ..base.clone() },
            Request { cap: base.cap + Watts(5.0), ..base.clone() },
            Request { backend: Backend::Dpp, ..base.clone() },
        ];
        for req in perturbed {
            let out = svc.serve(std::slice::from_ref(&req), &mut Journal::off()).expect("serves");
            prop_assert_eq!(
                out.responses[0].outcome,
                Outcome::Miss,
                "perturbed request must not reuse {:?}: {:?}",
                base,
                req
            );
            prop_assert!(out.responses[0].key != cold.responses[0].key);
        }
    }

    #[test]
    fn seeded_runs_replay_byte_identically_across_worker_counts(
        traffic in prop::collection::vec(request(), 1..10),
        seed in 0u64..1_000_000,
        workers_a in 1usize..5,
        workers_b in 1usize..5,
    ) {
        let run = |workers: usize| {
            let mut svc = service(2, workers, 4, 90.0, seed);
            let mut journal = Journal::with_capacity(1 << 12);
            let out = svc.serve(&traffic, &mut journal).expect("serves");
            (format!("{:?}", out.report), journal.to_jsonl())
        };
        let (report_a, journal_a) = run(workers_a);
        let (report_b, journal_b) = run(workers_b);
        prop_assert_eq!(report_a, report_b);
        prop_assert_eq!(journal_a, journal_b);
    }

    #[test]
    fn zipf_traffic_is_seed_deterministic(
        seed in 0u64..1_000_000,
        requests in 1usize..200,
        s in 0.8f64..1.5,
    ) {
        let u = quick_universe();
        let cfg = TrafficConfig { requests, zipf_s: s, seed };
        let a = zipf_traffic(&u, cfg);
        let b = zipf_traffic(&u, cfg);
        prop_assert_eq!(a.len(), requests);
        let ids = |t: &[Request]| t.iter().map(request_id).collect::<Vec<_>>();
        prop_assert_eq!(ids(&a), ids(&b), "same config replays identically");
    }

    #[test]
    fn zipf_rank_binned_frequencies_decay_monotonically(
        seed in 0u64..1_000_000,
        s in 0.8f64..1.5,
    ) {
        let u = quick_universe();
        let cfg = TrafficConfig { requests: 6000, zipf_s: s, seed };
        let traffic = zipf_traffic(&u, cfg);
        // Recover the sampler's rank order by replaying its shuffle:
        // the first draws of the same xorshift stream are the
        // Fisher–Yates swaps that assigned ranks to universe entries.
        let mut rng = XorShift::new(seed);
        let mut ranked: Vec<usize> = (0..u.len()).collect();
        for i in (1..ranked.len()).rev() {
            ranked.swap(i, rng.below(i + 1));
        }
        let mut count_at_rank = vec![0usize; u.len()];
        let by_id: std::collections::HashMap<_, _> = ranked
            .iter()
            .enumerate()
            .map(|(rank, &idx)| (request_id(&u[idx]), rank))
            .collect();
        for r in &traffic {
            count_at_rank[by_id[&request_id(r)]] += 1;
        }
        // Quartile bins over the rank axis: at 6000 draws the smallest
        // expected bin gap (s = 0.8, tail quartiles) is ≈ 4.6 σ of the
        // sampling noise, so the binned law must be non-increasing even
        // though individual adjacent ranks may jitter.
        let quarter = count_at_rank.len() / 4;
        let bins: Vec<usize> = (0..4)
            .map(|q| count_at_rank[q * quarter..(q + 1) * quarter].iter().sum())
            .collect();
        for pair in bins.windows(2) {
            prop_assert!(
                pair[0] >= pair[1],
                "rank-binned frequencies must decay: {bins:?} (s = {s})"
            );
        }
        prop_assert!(bins[0] > bins[3], "the head must beat the tail: {bins:?}");
    }

    #[test]
    fn zipf_draws_stay_inside_the_universe_with_bounded_coverage(
        seed in 0u64..1_000_000,
        requests in 1usize..400,
        s in 0.8f64..1.5,
    ) {
        let u = quick_universe();
        let ids: std::collections::HashSet<_> = u.iter().map(request_id).collect();
        let traffic = zipf_traffic(&u, TrafficConfig { requests, zipf_s: s, seed });
        let mut distinct = std::collections::HashSet::new();
        for r in &traffic {
            let id = request_id(r);
            prop_assert!(ids.contains(&id), "draw outside the universe: {r:?}");
            distinct.insert(id);
        }
        prop_assert!(!distinct.is_empty());
        prop_assert!(distinct.len() <= requests.min(u.len()));
    }
}
