//! Property tests for the study service's hard laws:
//!
//! 1. **Budget law** — no scheduling window's admitted power exceeds a
//!    node's share of the fleet budget, for any traffic and any
//!    feasible fleet shape; and the fleet never exceeds the budget in
//!    aggregate (per-node share × nodes ≤ fleet budget).
//! 2. **Bookkeeping law** — hits + misses + coalesced always equals the
//!    request count, and the responses agree with the report.
//! 3. **Key-sensitivity law** — perturbing any one of the four cache-key
//!    components (spec, dataset, cap, backend) forces a miss where the
//!    unperturbed request hits.
//! 4. **Replay law** — identical `(config, traffic)` produce
//!    byte-identical reports and journals, regardless of worker count.
//!
//! Kept intentionally small (cheap algorithms, 6³/8³ data, single-digit
//! case counts): each case executes real filter kernels through the
//! full service path.

use powersim::trace::Journal;
use powersim::Watts;
use proptest::prelude::*;
use service::{Outcome, Request, ServiceConfig, StudyService};
use vizalgo::{Algorithm, Backend};

fn algorithm() -> impl Strategy<Value = Algorithm> {
    prop_oneof![
        Just(Algorithm::Slice),
        Just(Algorithm::Threshold),
        Just(Algorithm::Contour),
    ]
}

fn backend() -> impl Strategy<Value = Backend> {
    // All three algorithms above have DPP formulations, so both
    // backends are always valid traffic.
    prop_oneof![Just(Backend::Traditional), Just(Backend::Dpp)]
}

fn request() -> impl Strategy<Value = Request> {
    (
        algorithm(),
        prop_oneof![Just(6usize), Just(8usize)],
        30.0f64..200.0,
        backend(),
    )
        .prop_map(|(algorithm, size, cap, backend)| Request {
            spec: algorithm.default_spec(),
            size,
            cap: Watts(cap),
            backend,
        })
}

fn service(nodes: usize, workers: usize, batch: usize, share: f64, seed: u64) -> StudyService {
    StudyService::new(ServiceConfig {
        nodes,
        workers,
        batch,
        fleet_budget: Watts(share * nodes as f64),
        seed,
        shards: 4,
        ..ServiceConfig::default()
    })
    .expect("per-node share >= 40 W is always feasible")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn admitted_power_never_exceeds_the_budget_and_books_balance(
        traffic in prop::collection::vec(request(), 1..14),
        nodes in 1usize..4,
        workers in 1usize..4,
        batch in 2usize..6,
        share in 40.0f64..120.0,
    ) {
        let mut svc = service(nodes, workers, batch, share, 0x5eed_0009);
        let budget = svc.node_budget();
        let fleet = svc.config().fleet_budget;
        prop_assert!(budget.value() * nodes as f64 <= fleet.value() + 1e-6);
        let out = svc.serve(&traffic, &mut Journal::off()).expect("serves");
        let r = &out.report;
        prop_assert_eq!(r.hits + r.misses + r.coalesced, r.requests);
        prop_assert_eq!(r.requests, traffic.len());
        prop_assert_eq!(out.responses.len(), traffic.len());
        for w in &r.windows {
            prop_assert!(
                w.admitted.value() <= budget.value() + 1e-6,
                "window {w:?} over node budget {budget:?}"
            );
            prop_assert!(w.jobs > 0);
        }
        for resp in &out.responses {
            // Every admitted cap individually fits its node's budget
            // and the hardware range.
            prop_assert!(resp.key.cap().value() <= budget.value() + 1e-6);
            prop_assert!(resp.key.cap() >= svc.config().cpu.min_cap_watts);
            prop_assert!((resp.node as usize) < nodes);
        }
        let hits = out.responses.iter().filter(|r| r.outcome == Outcome::Hit).count();
        prop_assert_eq!(hits, r.hits, "responses agree with the report");
    }

    #[test]
    fn perturbing_any_key_component_forces_a_miss(
        cap in 50.0f64..90.0,
        seed in 0u64..1_000_000,
    ) {
        let mut svc = service(2, 2, 8, 90.0, seed);
        let base = Request {
            spec: Algorithm::Threshold.default_spec(),
            size: 6,
            cap: Watts(cap),
            backend: Backend::Traditional,
        };
        // Warm the cache; re-serving the identical request must hit.
        let cold = svc.serve(std::slice::from_ref(&base), &mut Journal::off()).expect("serves");
        prop_assert_eq!(cold.responses[0].outcome, Outcome::Miss);
        let warm = svc.serve(std::slice::from_ref(&base), &mut Journal::off()).expect("serves");
        prop_assert_eq!(warm.responses[0].outcome, Outcome::Hit);
        // One perturbation per key component. The cap nudge stays
        // admissible and cannot collide after admission: both caps are
        // in-range, and min(cap + 5, budget) > cap for cap < budget.
        let perturbed = [
            Request { spec: Algorithm::Slice.default_spec(), ..base.clone() },
            Request { size: 8, ..base.clone() },
            Request { cap: base.cap + Watts(5.0), ..base.clone() },
            Request { backend: Backend::Dpp, ..base.clone() },
        ];
        for req in perturbed {
            let out = svc.serve(std::slice::from_ref(&req), &mut Journal::off()).expect("serves");
            prop_assert_eq!(
                out.responses[0].outcome,
                Outcome::Miss,
                "perturbed request must not reuse {:?}: {:?}",
                base,
                req
            );
            prop_assert!(out.responses[0].key != cold.responses[0].key);
        }
    }

    #[test]
    fn seeded_runs_replay_byte_identically_across_worker_counts(
        traffic in prop::collection::vec(request(), 1..10),
        seed in 0u64..1_000_000,
        workers_a in 1usize..5,
        workers_b in 1usize..5,
    ) {
        let run = |workers: usize| {
            let mut svc = service(2, workers, 4, 90.0, seed);
            let mut journal = Journal::with_capacity(1 << 12);
            let out = svc.serve(&traffic, &mut journal).expect("serves");
            (format!("{:?}", out.report), journal.to_jsonl())
        };
        let (report_a, journal_a) = run(workers_a);
        let (report_b, journal_b) = run(workers_b);
        prop_assert_eq!(report_a, report_b);
        prop_assert_eq!(journal_a, journal_b);
    }
}
