//! # insitu — the tightly-coupled simulation/visualization runtime
//!
//! An Ascent-flavoured in situ framework: JSON-describable **actions**
//! declare pipelines (chains of visualization filters) and scenes
//! (renderers producing image databases); the **runtime** alternates the
//! CloverLeaf proxy simulation with the declared visualization on the
//! same resources — the paper's "tightly coupled" configuration (§IV-A).
//!
//! The runtime records, per visualization cycle, the instrumented work of
//! both the simulation step batch and every visualization kernel. The
//! `vizpower` crate turns those records into the power/performance
//! experiments; the examples render the image databases.

pub mod actions;
pub mod runtime;
pub mod scene;
pub mod trigger;

pub use actions::{
    Action, ActionList, FilterSpec, IsoValues, RendererSpec, ScalarBand, SphereSpec,
};
pub use runtime::{CoupledRun, CycleRecord, InSituRuntime, RuntimeConfig};
pub use scene::Scene;
pub use trigger::Trigger;
