//! Visualization triggers: when a cycle should run the pipelines.

use serde::{Deserialize, Serialize};
use vizmesh::DataSet;

/// When to trigger an in situ visualization cycle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum Trigger {
    /// Every `n` simulation steps (the common Ascent configuration).
    EveryN { n: u64 },
    /// When a scalar field's maximum first exceeds `above`, then every
    /// step while it remains above.
    FieldMax { field: String, above: f64 },
    /// Both conditions must hold.
    Both { a: Box<Trigger>, b: Box<Trigger> },
}

impl Trigger {
    /// Should step `step` (1-based) visualize, given the current data?
    pub fn fires(&self, step: u64, data: &DataSet) -> bool {
        match self {
            Trigger::EveryN { n } => *n > 0 && step % n == 0,
            Trigger::FieldMax { field, above } => data
                .field(field)
                .and_then(|f| f.scalar_range())
                .map(|(_, hi)| hi > *above)
                .unwrap_or(false),
            Trigger::Both { a, b } => a.fires(step, data) && b.fires(step, data),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vizmesh::{Association, Field, UniformGrid};

    fn data(max: f64) -> DataSet {
        let grid = UniformGrid::cube_cells(2);
        let n = grid.num_points();
        let mut vals = vec![0.0; n];
        vals[0] = max;
        DataSet::uniform(grid).with_field(Field::scalar("energy", Association::Points, vals))
    }

    #[test]
    fn every_n_cadence() {
        let t = Trigger::EveryN { n: 10 };
        let d = data(1.0);
        assert!(!t.fires(1, &d));
        assert!(t.fires(10, &d));
        assert!(!t.fires(15, &d));
        assert!(t.fires(20, &d));
        // n = 0 never fires.
        assert!(!Trigger::EveryN { n: 0 }.fires(10, &d));
    }

    #[test]
    fn field_max_threshold() {
        let t = Trigger::FieldMax {
            field: "energy".into(),
            above: 2.0,
        };
        assert!(!t.fires(1, &data(1.5)));
        assert!(t.fires(1, &data(2.5)));
        // Missing field never fires.
        let t2 = Trigger::FieldMax {
            field: "nope".into(),
            above: 0.0,
        };
        assert!(!t2.fires(1, &data(5.0)));
    }

    #[test]
    fn conjunction() {
        let t = Trigger::Both {
            a: Box::new(Trigger::EveryN { n: 2 }),
            b: Box::new(Trigger::FieldMax {
                field: "energy".into(),
                above: 2.0,
            }),
        };
        assert!(t.fires(4, &data(3.0)));
        assert!(!t.fires(3, &data(3.0)));
        assert!(!t.fires(4, &data(1.0)));
    }

    #[test]
    fn serde_round_trip() {
        let t = Trigger::EveryN { n: 10 };
        let json = serde_json::to_string(&t).unwrap();
        assert_eq!(serde_json::from_str::<Trigger>(&json).unwrap(), t);
    }
}
