//! Declarative actions, JSON-compatible in the spirit of Ascent's
//! `ascent_actions.json`.
//!
//! The filter and renderer declarations *are* the workspace's canonical
//! [`AlgorithmSpec`] (see `vizalgo::spec` and docs/REGISTRY.md):
//! [`FilterSpec`] and [`RendererSpec`] are aliases of it, so an action
//! list can now declare any of the eight algorithms in a pipeline — the
//! two renderers included, which the old insitu-private spec could not
//! express — and every build goes through the one registry-sanctioned
//! construction site, [`AlgorithmSpec::build`].

use serde::{Deserialize, Serialize};
pub use vizalgo::spec::{AlgorithmSpec, IsoValues, ScalarBand, SphereSpec};

/// A filter declaration inside a pipeline: the canonical
/// [`AlgorithmSpec`], JSON-tagged by algorithm (`{"type": "contour",
/// ...}`).
pub type FilterSpec = AlgorithmSpec;

/// A renderer declaration inside a scene — the same canonical spec; the
/// wire shape of the two renderer variants (`{"type": "ray_tracing",
/// "field": ..., "width": ..., "height": ..., "images": ...}`) is
/// unchanged from the pre-registry insitu format.
pub type RendererSpec = AlgorithmSpec;

/// One action in the list.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
#[serde(tag = "action", rename_all = "snake_case")]
pub enum Action {
    AddPipeline {
        name: String,
        filters: Vec<FilterSpec>,
    },
    AddScene {
        name: String,
        renderer: RendererSpec,
    },
}

/// The full declarative document.
#[derive(Debug, Clone, Default, Serialize, Deserialize, PartialEq)]
pub struct ActionList(pub Vec<Action>);

impl ActionList {
    /// Parse from JSON (the Ascent-style interface).
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("actions serialize")
    }

    pub fn pipelines(&self) -> impl Iterator<Item = (&str, &[FilterSpec])> {
        self.0.iter().filter_map(|a| match a {
            Action::AddPipeline { name, filters } => Some((name.as_str(), filters.as_slice())),
            _ => None,
        })
    }

    pub fn scenes(&self) -> impl Iterator<Item = (&str, &RendererSpec)> {
        self.0.iter().filter_map(|a| match a {
            Action::AddScene { name, renderer } => Some((name.as_str(), renderer)),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vizalgo::Filter as _;
    use vizmesh::{Association, DataSet, Field, UniformGrid, Vec3};

    fn dataset() -> DataSet {
        let grid = UniformGrid::cube_cells(6);
        let np = grid.num_points();
        let vals: Vec<f64> = (0..np).map(|p| grid.point_coord_id(p).x).collect();
        DataSet::uniform(grid)
            .with_field(Field::scalar("energy", Association::Points, vals))
            .with_field(Field::vector(
                "velocity",
                Association::Points,
                vec![Vec3::X; np],
            ))
    }

    #[test]
    fn json_round_trip() {
        let list = ActionList(vec![
            Action::AddPipeline {
                name: "pl1".into(),
                filters: vec![FilterSpec::Contour {
                    field: "energy".into(),
                    isovalues: IsoValues::Spanning(10),
                }],
            },
            Action::AddScene {
                name: "s1".into(),
                renderer: RendererSpec::VolumeRendering {
                    field: "energy".into(),
                    width: 64,
                    height: 64,
                    images: 50,
                },
            },
        ]);
        let json = list.to_json();
        let parsed = ActionList::from_json(&json).unwrap();
        assert_eq!(parsed, list);
    }

    #[test]
    fn parses_handwritten_json() {
        let json = r#"[
            {"action": "add_pipeline", "name": "p",
             "filters": [{"type": "slice", "field": "energy"}]},
            {"action": "add_scene", "name": "s",
             "renderer": {"type": "ray_tracing", "field": "energy",
                          "width": 32, "height": 32, "images": 2}}
        ]"#;
        let list = ActionList::from_json(json).unwrap();
        assert_eq!(list.pipelines().count(), 1);
        assert_eq!(list.scenes().count(), 1);
    }

    #[test]
    fn every_filter_spec_builds_and_runs() {
        let ds = dataset();
        // The canonical spec covers all eight algorithms — including the
        // two renderers the old insitu-private spec could not declare in
        // a pipeline.
        for name in [
            "contour",
            "threshold",
            "spherical_clip",
            "isovolume",
            "slice",
            "particle_advection",
            "ray_tracing",
            "volume_rendering",
        ] {
            let spec = FilterSpec::paper_default(name).unwrap();
            let filter = spec.build(&ds);
            let out = filter.execute(&ds);
            assert!(!out.kernels.is_empty(), "{name} produced no kernels");
        }
        assert!(FilterSpec::paper_default("bogus").is_none());
    }

    #[test]
    fn renderers_build_and_produce_images() {
        let ds = dataset();
        for spec in [
            RendererSpec::RayTracing {
                field: "energy".into(),
                width: 16,
                height: 16,
                images: 2,
            },
            RendererSpec::VolumeRendering {
                field: "energy".into(),
                width: 16,
                height: 16,
                images: 2,
            },
        ] {
            let out = spec.build(&ds).execute(&ds);
            assert_eq!(out.images.len(), 2);
        }
    }
}
