//! Declarative actions, JSON-compatible in the spirit of Ascent's
//! `ascent_actions.json`.

use serde::{Deserialize, Serialize};
use vizalgo::{
    Contour, Filter, Isovolume, ParticleAdvection, RayTracer, SphericalClip, ThreeSlice, Threshold,
    VolumeRenderer,
};
use vizmesh::DataSet;

/// A filter declaration inside a pipeline.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum FilterSpec {
    Contour {
        field: String,
        /// Number of evenly spaced isovalues (the paper uses 10).
        isovalues: usize,
    },
    Threshold {
        field: String,
        /// Keep the upper fraction of the field range.
        upper_fraction: f64,
    },
    SphericalClip {
        field: String,
        /// Radius as a fraction of the dataset diagonal.
        radius_fraction: f64,
    },
    Isovolume {
        field: String,
        /// Width of the middle band, as a fraction of the field range.
        band_fraction: f64,
    },
    Slice {
        field: String,
    },
    ParticleAdvection {
        field: String,
        particles: usize,
        steps: usize,
    },
}

impl FilterSpec {
    /// Instantiate the filter against a concrete dataset (ranges and
    /// bounds are data dependent).
    pub fn build(&self, input: &DataSet) -> Box<dyn Filter> {
        match self {
            FilterSpec::Contour { field, isovalues } => {
                Box::new(Contour::spanning(field.clone(), input, *isovalues))
            }
            FilterSpec::Threshold {
                field,
                upper_fraction,
            } => Box::new(Threshold::upper_fraction(
                field.clone(),
                input,
                *upper_fraction,
            )),
            FilterSpec::SphericalClip {
                field,
                radius_fraction,
            } => {
                let b = input.bounds();
                let mut clip =
                    SphericalClip::new(b.center(), b.diagonal() * radius_fraction.max(1e-6));
                clip.carry_field = field.clone();
                Box::new(clip)
            }
            FilterSpec::Isovolume {
                field,
                band_fraction,
            } => Box::new(Isovolume::middle_band(field.clone(), input, *band_fraction)),
            FilterSpec::Slice { field } => Box::new(ThreeSlice::centered(input, field.clone())),
            FilterSpec::ParticleAdvection {
                field,
                particles,
                steps,
            } => Box::new(ParticleAdvection::new(
                field.clone(),
                *particles,
                *steps,
                5e-4,
                0x5eed_1234,
            )),
        }
    }

    /// A paper-default spec for each of the six data-producing algorithms.
    pub fn paper_default(name: &str) -> Option<FilterSpec> {
        Some(match name {
            "contour" => FilterSpec::Contour {
                field: "energy".into(),
                isovalues: 10,
            },
            "threshold" => FilterSpec::Threshold {
                field: "energy".into(),
                upper_fraction: 0.5,
            },
            "spherical_clip" => FilterSpec::SphericalClip {
                field: "energy".into(),
                radius_fraction: 0.3,
            },
            "isovolume" => FilterSpec::Isovolume {
                field: "energy".into(),
                band_fraction: 0.5,
            },
            "slice" => FilterSpec::Slice {
                field: "energy".into(),
            },
            "particle_advection" => FilterSpec::ParticleAdvection {
                field: "velocity".into(),
                particles: 1000,
                steps: 1000,
            },
            _ => return None,
        })
    }
}

/// A renderer declaration inside a scene.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum RendererSpec {
    RayTracing {
        field: String,
        width: usize,
        height: usize,
        images: usize,
    },
    VolumeRendering {
        field: String,
        width: usize,
        height: usize,
        images: usize,
    },
}

impl RendererSpec {
    pub fn build(&self) -> Box<dyn Filter> {
        match self {
            RendererSpec::RayTracing {
                field,
                width,
                height,
                images,
            } => Box::new(RayTracer::new(field.clone(), *width, *height, *images)),
            RendererSpec::VolumeRendering {
                field,
                width,
                height,
                images,
            } => Box::new(VolumeRenderer::new(field.clone(), *width, *height, *images)),
        }
    }
}

/// One action in the list.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
#[serde(tag = "action", rename_all = "snake_case")]
pub enum Action {
    AddPipeline {
        name: String,
        filters: Vec<FilterSpec>,
    },
    AddScene {
        name: String,
        renderer: RendererSpec,
    },
}

/// The full declarative document.
#[derive(Debug, Clone, Default, Serialize, Deserialize, PartialEq)]
pub struct ActionList(pub Vec<Action>);

impl ActionList {
    /// Parse from JSON (the Ascent-style interface).
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("actions serialize")
    }

    pub fn pipelines(&self) -> impl Iterator<Item = (&str, &[FilterSpec])> {
        self.0.iter().filter_map(|a| match a {
            Action::AddPipeline { name, filters } => Some((name.as_str(), filters.as_slice())),
            _ => None,
        })
    }

    pub fn scenes(&self) -> impl Iterator<Item = (&str, &RendererSpec)> {
        self.0.iter().filter_map(|a| match a {
            Action::AddScene { name, renderer } => Some((name.as_str(), renderer)),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vizmesh::{Association, Field, UniformGrid, Vec3};

    fn dataset() -> DataSet {
        let grid = UniformGrid::cube_cells(6);
        let np = grid.num_points();
        let vals: Vec<f64> = (0..np).map(|p| grid.point_coord_id(p).x).collect();
        DataSet::uniform(grid)
            .with_field(Field::scalar("energy", Association::Points, vals))
            .with_field(Field::vector(
                "velocity",
                Association::Points,
                vec![Vec3::X; np],
            ))
    }

    #[test]
    fn json_round_trip() {
        let list = ActionList(vec![
            Action::AddPipeline {
                name: "pl1".into(),
                filters: vec![FilterSpec::Contour {
                    field: "energy".into(),
                    isovalues: 10,
                }],
            },
            Action::AddScene {
                name: "s1".into(),
                renderer: RendererSpec::VolumeRendering {
                    field: "energy".into(),
                    width: 64,
                    height: 64,
                    images: 50,
                },
            },
        ]);
        let json = list.to_json();
        let parsed = ActionList::from_json(&json).unwrap();
        assert_eq!(parsed, list);
    }

    #[test]
    fn parses_handwritten_json() {
        let json = r#"[
            {"action": "add_pipeline", "name": "p",
             "filters": [{"type": "slice", "field": "energy"}]},
            {"action": "add_scene", "name": "s",
             "renderer": {"type": "ray_tracing", "field": "energy",
                          "width": 32, "height": 32, "images": 2}}
        ]"#;
        let list = ActionList::from_json(json).unwrap();
        assert_eq!(list.pipelines().count(), 1);
        assert_eq!(list.scenes().count(), 1);
    }

    #[test]
    fn every_filter_spec_builds_and_runs() {
        let ds = dataset();
        for name in [
            "contour",
            "threshold",
            "spherical_clip",
            "isovolume",
            "slice",
            "particle_advection",
        ] {
            let spec = FilterSpec::paper_default(name).unwrap();
            let filter = spec.build(&ds);
            let out = filter.execute(&ds);
            assert!(!out.kernels.is_empty(), "{name} produced no kernels");
        }
        assert!(FilterSpec::paper_default("bogus").is_none());
    }

    #[test]
    fn renderers_build_and_produce_images() {
        let ds = dataset();
        for spec in [
            RendererSpec::RayTracing {
                field: "energy".into(),
                width: 16,
                height: 16,
                images: 2,
            },
            RendererSpec::VolumeRendering {
                field: "energy".into(),
                width: 16,
                height: 16,
                images: 2,
            },
        ] {
            let out = spec.build().execute(&ds);
            assert_eq!(out.images.len(), 2);
        }
    }
}
