//! Scenes: renderers plus an image-database sink.

use crate::actions::RendererSpec;
use std::io;
use std::path::{Path, PathBuf};
use vizalgo::FilterOutput;
use vizmesh::{DataSet, Image};

/// A named scene: a renderer and optionally a directory into which its
/// image database is written as PPM files.
#[derive(Debug, Clone)]
pub struct Scene {
    pub name: String,
    pub renderer: RendererSpec,
    pub output_dir: Option<PathBuf>,
}

impl Scene {
    pub fn new(name: impl Into<String>, renderer: RendererSpec) -> Self {
        Scene {
            name: name.into(),
            renderer,
            output_dir: None,
        }
    }

    /// Write rendered images under `dir` as `<scene>_<cycle>_<idx>.ppm`.
    pub fn with_output_dir(mut self, dir: impl AsRef<Path>) -> Self {
        self.output_dir = Some(dir.as_ref().to_path_buf());
        self
    }

    /// Render the scene against `data` for visualization cycle `cycle`.
    pub fn render(&self, data: &DataSet, cycle: u64) -> io::Result<FilterOutput> {
        let out = self.renderer.build(data).execute(data);
        if let Some(dir) = &self.output_dir {
            std::fs::create_dir_all(dir)?;
            for (i, img) in out.images.iter().enumerate() {
                let path = dir.join(format!("{}_{:04}_{:02}.ppm", self.name, cycle, i));
                img.save_ppm(path, [1.0, 1.0, 1.0])?;
            }
        }
        Ok(out)
    }

    /// Helper used by examples: save one image with a white background.
    pub fn save_image(img: &Image, path: impl AsRef<Path>) -> io::Result<()> {
        img.save_ppm(path, [1.0, 1.0, 1.0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vizmesh::{Association, Field, UniformGrid};

    fn dataset() -> DataSet {
        let grid = UniformGrid::cube_cells(4);
        let vals: Vec<f64> = (0..grid.num_points())
            .map(|p| grid.point_coord_id(p).x)
            .collect();
        DataSet::uniform(grid).with_field(Field::scalar("energy", Association::Points, vals))
    }

    fn spec(images: usize) -> RendererSpec {
        RendererSpec::RayTracing {
            field: "energy".into(),
            width: 16,
            height: 16,
            images,
        }
    }

    #[test]
    fn render_without_sink_produces_images() {
        let s = Scene::new("s", spec(3));
        let out = s.render(&dataset(), 0).unwrap();
        assert_eq!(out.images.len(), 3);
    }

    #[test]
    fn render_with_sink_writes_ppm_files() {
        let dir = std::env::temp_dir().join("vizpower_scene_test");
        let _ = std::fs::remove_dir_all(&dir);
        let s = Scene::new("db", spec(2)).with_output_dir(&dir);
        s.render(&dataset(), 7).unwrap();
        let mut names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        names.sort();
        assert_eq!(names, vec!["db_0007_00.ppm", "db_0007_01.ppm"]);
        // PPM header sanity.
        let bytes = std::fs::read(dir.join("db_0007_00.ppm")).unwrap();
        assert!(bytes.starts_with(b"P6\n16 16\n255\n"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
