//! The tightly-coupled runtime: alternate simulation and visualization
//! on the same resources, recording both sides' instrumented work.

use crate::actions::ActionList;
use crate::scene::Scene;
use crate::trigger::Trigger;
use cloverleaf::{Problem, SimConfig, Simulation};
use powersim::trace::{Journal, Scope};
use serde::{Deserialize, Serialize};
use vizalgo::{KernelClass, KernelReport};
use vizmesh::{Image, WorkCounters};

/// Runtime configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RuntimeConfig {
    /// Cells per axis (the paper's 32/64/128/256).
    pub grid_cells: usize,
    /// Total simulation steps to run.
    pub total_steps: u64,
    /// Visualization trigger.
    pub trigger: Trigger,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            grid_cells: 32,
            total_steps: 20,
            trigger: Trigger::EveryN { n: 10 },
        }
    }
}

/// One visualization cycle's record: the simulation work since the last
/// cycle and the per-kernel visualization work.
#[derive(Debug, Clone)]
pub struct CycleRecord {
    pub step: u64,
    /// Work of the simulation steps since the previous cycle.
    pub sim_work: KernelReport,
    /// The same simulation work broken down by hydro kernel (first-seen
    /// order, one report per kernel name), from
    /// [`Simulation::step_phases`] — the phase-level view the power
    /// governor characterizes the simulation side from. Instruction
    /// counts sum exactly to `sim_work`.
    pub sim_phases: Vec<KernelReport>,
    /// Work of every visualization kernel in this cycle.
    pub viz_kernels: Vec<KernelReport>,
    /// Images rendered by the scenes this cycle.
    pub images: Vec<Image>,
}

/// The result of a coupled run.
#[derive(Debug, Clone, Default)]
pub struct CoupledRun {
    pub cycles: Vec<CycleRecord>,
    /// Simulation work after the final visualization cycle.
    pub trailing_sim_work: WorkCounters,
}

impl CoupledRun {
    /// Total visualization work across cycles.
    pub fn total_viz_work(&self) -> WorkCounters {
        let mut w = WorkCounters::new();
        for c in &self.cycles {
            for k in &c.viz_kernels {
                w += k.work;
            }
        }
        w
    }

    /// Total simulation work across cycles.
    pub fn total_sim_work(&self) -> WorkCounters {
        let mut w = self.trailing_sim_work;
        for c in &self.cycles {
            w += c.sim_work.work;
        }
        w
    }
}

/// The coupled driver.
pub struct InSituRuntime {
    pub sim: Simulation,
    pub actions: ActionList,
    pub scenes: Vec<Scene>,
    config: RuntimeConfig,
}

impl InSituRuntime {
    pub fn new(problem: Problem, config: RuntimeConfig, actions: ActionList) -> Self {
        let scenes = actions
            .scenes()
            .map(|(name, renderer)| Scene::new(name, renderer.clone()))
            .collect();
        InSituRuntime {
            sim: Simulation::new(problem, config.grid_cells, SimConfig::default()),
            actions,
            scenes,
            config,
        }
    }

    /// Run the coupled loop to completion.
    ///
    /// Equivalent to [`InSituRuntime::run_journaled`] with a disabled
    /// journal.
    pub fn run(&mut self) -> CoupledRun {
        self.run_journaled(&mut Journal::off())
    }

    /// Run the coupled loop like [`InSituRuntime::run`], journaling
    /// each simulation timestep (via
    /// [`Simulation::step_journaled`]) and emitting a [`Scope::Action`]
    /// span per executed pipeline, per rendered scene, and per whole
    /// visualization cycle. Viz spans are zero-width: the in situ layer
    /// models no time of its own, only counted work.
    pub fn run_journaled(&mut self, journal: &mut Journal) -> CoupledRun {
        let mut out = CoupledRun::default();
        let mut sim_since_viz = WorkCounters::new();
        // Per-hydro-kernel accumulation since the last cycle, keyed by
        // name in first-seen order (repeated kernels merge).
        let mut sim_phase_acc: Vec<(&'static str, WorkCounters)> = Vec::new();
        for _ in 0..self.config.total_steps {
            let report = self.sim.step_phases_journaled(
                &mut |name, w| match sim_phase_acc.iter_mut().find(|(n, _)| *n == name) {
                    Some((_, acc)) => *acc += w,
                    None => sim_phase_acc.push((name, w)),
                },
                journal,
            );
            sim_since_viz += report.work;
            let data = self.sim.dataset();
            if !self.config.trigger.fires(report.step, &data) {
                continue;
            }
            // Visualization cycle: pipelines, then scenes.
            let cycle_t0 = journal.now();
            let mut viz_kernels = Vec::new();
            for (name, filters) in self.actions.pipelines() {
                let t0 = journal.now();
                let kernels_before = viz_kernels.len();
                for spec in filters {
                    let filter = spec.build(&data);
                    let result = filter.execute(&data);
                    viz_kernels.extend(result.kernels);
                }
                if journal.is_enabled() {
                    let added = &viz_kernels[kernels_before..];
                    journal.push_span(
                        Scope::Action,
                        format!("pipeline:{name}"),
                        t0,
                        None,
                        vec![
                            ("kernels", added.len() as f64),
                            ("instructions", kernel_instructions(added)),
                        ],
                    );
                }
            }
            let mut images = Vec::new();
            for scene in &self.scenes {
                let t0 = journal.now();
                let kernels_before = viz_kernels.len();
                let images_before = images.len();
                let result = scene
                    .render(&data, report.step)
                    .expect("scene render should not fail without an output dir");
                viz_kernels.extend(result.kernels);
                images.extend(result.images);
                if journal.is_enabled() {
                    let added = &viz_kernels[kernels_before..];
                    journal.push_span(
                        Scope::Action,
                        format!("scene:{}", scene.name),
                        t0,
                        None,
                        vec![
                            ("kernels", added.len() as f64),
                            ("instructions", kernel_instructions(added)),
                            ("images", (images.len() - images_before) as f64),
                        ],
                    );
                }
            }
            if journal.is_enabled() {
                journal.push_span(
                    Scope::Action,
                    format!("cycle:{}", report.step),
                    cycle_t0,
                    None,
                    vec![
                        ("step", report.step as f64),
                        ("kernels", viz_kernels.len() as f64),
                        ("instructions", kernel_instructions(&viz_kernels)),
                    ],
                );
            }
            out.cycles.push(CycleRecord {
                step: report.step,
                sim_work: KernelReport::new(
                    "cloverleaf-steps",
                    KernelClass::Simulation,
                    sim_since_viz,
                ),
                sim_phases: sim_phase_acc
                    .drain(..)
                    .map(|(name, w)| KernelReport::new(name, KernelClass::Simulation, w))
                    .collect(),
                viz_kernels,
                images,
            });
            sim_since_viz = WorkCounters::new();
        }
        out.trailing_sim_work = sim_since_viz;
        out
    }
}

/// Total instruction count across kernel reports, as a journal arg.
fn kernel_instructions(kernels: &[KernelReport]) -> f64 {
    kernels.iter().map(|k| k.work.instructions).sum::<u64>() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actions::{Action, FilterSpec, IsoValues, RendererSpec};

    fn actions() -> ActionList {
        ActionList(vec![
            Action::AddPipeline {
                name: "pl".into(),
                filters: vec![FilterSpec::Contour {
                    field: "energy".into(),
                    isovalues: IsoValues::Spanning(3),
                }],
            },
            Action::AddScene {
                name: "sc".into(),
                renderer: RendererSpec::VolumeRendering {
                    field: "energy".into(),
                    width: 12,
                    height: 12,
                    images: 2,
                },
            },
        ])
    }

    #[test]
    fn coupled_loop_alternates_sim_and_viz() {
        let config = RuntimeConfig {
            grid_cells: 8,
            total_steps: 10,
            trigger: Trigger::EveryN { n: 5 },
        };
        let mut rt = InSituRuntime::new(Problem::TwoState, config, actions());
        let run = rt.run();
        assert_eq!(run.cycles.len(), 2);
        for c in &run.cycles {
            assert!(c.sim_work.work.instructions > 0);
            assert!(!c.viz_kernels.is_empty());
            assert_eq!(c.images.len(), 2);
        }
        assert_eq!(run.cycles[0].step, 5);
        assert_eq!(run.cycles[1].step, 10);
    }

    #[test]
    fn sim_phases_break_down_sim_work_exactly() {
        let config = RuntimeConfig {
            grid_cells: 8,
            total_steps: 10,
            trigger: Trigger::EveryN { n: 5 },
        };
        let mut rt = InSituRuntime::new(Problem::TwoState, config, actions());
        let run = rt.run();
        for c in &run.cycles {
            assert!(!c.sim_phases.is_empty());
            // One merged report per hydro kernel name.
            let names: Vec<&str> = c.sim_phases.iter().map(|k| k.name.as_str()).collect();
            let unique: std::collections::BTreeSet<&str> = names.iter().copied().collect();
            assert_eq!(
                unique.len(),
                names.len(),
                "duplicate phase names: {names:?}"
            );
            assert!(names.contains(&"advect"));
            let phase_inst: u64 = c.sim_phases.iter().map(|k| k.work.instructions).sum();
            assert_eq!(phase_inst, c.sim_work.work.instructions);
            assert!(c
                .sim_phases
                .iter()
                .all(|k| k.class == KernelClass::Simulation));
        }
    }

    #[test]
    fn viz_and_sim_totals_are_disjoint_accumulations() {
        let config = RuntimeConfig {
            grid_cells: 6,
            total_steps: 6,
            trigger: Trigger::EveryN { n: 3 },
        };
        let mut rt = InSituRuntime::new(Problem::TwoState, config, actions());
        let run = rt.run();
        let viz = run.total_viz_work();
        let sim = run.total_sim_work();
        assert!(viz.instructions > 0);
        assert!(sim.instructions > 0);
        // Simulation classify work counts hydro cells, viz counts its own.
        assert!(sim.items > 0 && viz.items > 0);
    }

    #[test]
    fn journaled_run_emits_action_spans() {
        use powersim::trace::Event;
        let config = RuntimeConfig {
            grid_cells: 8,
            total_steps: 10,
            trigger: Trigger::EveryN { n: 5 },
        };
        let mut rt = InSituRuntime::new(Problem::TwoState, config, actions());
        let mut journal = Journal::with_capacity(1 << 12);
        let run = rt.run_journaled(&mut journal);
        assert_eq!(run.cycles.len(), 2);
        let names: Vec<&str> = journal
            .events()
            .filter_map(|e| match e {
                Event::Span(s) if s.scope == Scope::Action => Some(s.name.as_str()),
                _ => None,
            })
            .collect();
        // Per cycle: one pipeline span, one scene span, one cycle span.
        assert_eq!(names.len(), 6);
        assert!(names.contains(&"pipeline:pl"));
        assert!(names.contains(&"scene:sc"));
        assert!(names.contains(&"cycle:5"));
        let timesteps = journal
            .events()
            .filter(|e| matches!(e, Event::Span(s) if s.scope == Scope::Timestep))
            .count();
        assert_eq!(timesteps, 10);
    }

    #[test]
    fn trigger_gates_visualization() {
        let config = RuntimeConfig {
            grid_cells: 6,
            total_steps: 5,
            trigger: Trigger::EveryN { n: 100 },
        };
        let mut rt = InSituRuntime::new(Problem::TwoState, config, actions());
        let run = rt.run();
        assert!(run.cycles.is_empty());
        assert!(run.trailing_sim_work.instructions > 0);
    }
}
