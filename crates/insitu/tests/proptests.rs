//! Property-based tests for the in situ action/trigger layer.

use insitu::{
    Action, ActionList, FilterSpec, IsoValues, RendererSpec, ScalarBand, SphereSpec, Trigger,
};
use proptest::prelude::*;
use vizmesh::{Association, DataSet, Field, UniformGrid};

fn filter_spec_strategy() -> impl Strategy<Value = FilterSpec> {
    prop_oneof![
        (1usize..20).prop_map(|n| FilterSpec::Contour {
            field: "energy".into(),
            isovalues: IsoValues::Spanning(n),
        }),
        // Fractions are quantized to 1/1000 so the JSON round trip is
        // bitwise (serde_json's float parsing is not exact to the ULP).
        (0u32..1000).prop_map(|q| FilterSpec::Threshold {
            field: "energy".into(),
            band: ScalarBand::UpperFraction(q as f64 / 1000.0),
        }),
        (50u32..500).prop_map(|q| FilterSpec::SphericalClip {
            field: "energy".into(),
            sphere: SphereSpec::RadiusFraction(q as f64 / 1000.0),
        }),
        (100u32..900).prop_map(|q| FilterSpec::Isovolume {
            field: "energy".into(),
            band: ScalarBand::MiddleBand(q as f64 / 1000.0),
        }),
        Just(FilterSpec::Slice {
            field: "energy".into()
        }),
        ((1usize..50), (1usize..50)).prop_map(|(particles, steps)| {
            FilterSpec::ParticleAdvection {
                field: "velocity".into(),
                particles,
                steps,
                step_fraction: 5e-4,
                seed: 0x5eed_1234,
                scenario: Default::default(),
            }
        }),
    ]
}

fn renderer_spec_strategy() -> impl Strategy<Value = RendererSpec> {
    prop_oneof![
        ((4usize..32), (1usize..6)).prop_map(|(px, images)| RendererSpec::RayTracing {
            field: "energy".into(),
            width: px,
            height: px,
            images,
        }),
        ((4usize..32), (1usize..6)).prop_map(|(px, images)| RendererSpec::VolumeRendering {
            field: "energy".into(),
            width: px,
            height: px,
            images,
        }),
    ]
}

fn action_list_strategy() -> impl Strategy<Value = ActionList> {
    prop::collection::vec(
        prop_oneof![
            (
                prop::collection::vec(filter_spec_strategy(), 1..3),
                "[a-z]{1,8}"
            )
                .prop_map(|(filters, name)| Action::AddPipeline { name, filters }),
            (renderer_spec_strategy(), "[a-z]{1,8}")
                .prop_map(|(renderer, name)| Action::AddScene { name, renderer }),
        ],
        0..5,
    )
    .prop_map(ActionList)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any action list survives a JSON round trip bitwise.
    #[test]
    fn actions_json_round_trip(list in action_list_strategy()) {
        let json = list.to_json();
        let parsed = ActionList::from_json(&json).unwrap();
        prop_assert_eq!(parsed, list);
    }

    /// Pipelines and scenes partition the action list.
    #[test]
    fn pipelines_and_scenes_partition(list in action_list_strategy()) {
        let total = list.0.len();
        prop_assert_eq!(list.pipelines().count() + list.scenes().count(), total);
    }

    /// EveryN fires exactly floor(total / n) times over a run.
    #[test]
    fn every_n_cadence_counts(n in 1u64..20, total in 0u64..100) {
        let grid = UniformGrid::cube_cells(2);
        let np = grid.num_points();
        let ds = DataSet::uniform(grid)
            .with_field(Field::scalar("energy", Association::Points, vec![0.0; np]));
        let t = Trigger::EveryN { n };
        let fired = (1..=total).filter(|&s| t.fires(s, &ds)).count() as u64;
        prop_assert_eq!(fired, total / n);
    }

    /// Conjunction is commutative and never fires more than either arm.
    #[test]
    fn both_is_an_intersection(n in 1u64..10, above in -1.0f64..2.0, step in 1u64..50) {
        let grid = UniformGrid::cube_cells(2);
        let np = grid.num_points();
        let ds = DataSet::uniform(grid)
            .with_field(Field::scalar("energy", Association::Points, vec![1.0; np]));
        let a = Trigger::EveryN { n };
        let b = Trigger::FieldMax { field: "energy".into(), above };
        let ab = Trigger::Both { a: Box::new(a.clone()), b: Box::new(b.clone()) };
        let ba = Trigger::Both { a: Box::new(b.clone()), b: Box::new(a.clone()) };
        prop_assert_eq!(ab.fires(step, &ds), ba.fires(step, &ds));
        if ab.fires(step, &ds) {
            prop_assert!(a.fires(step, &ds) && b.fires(step, &ds));
        }
    }
}
