//! # vizmesh — mesh and image data model
//!
//! A compact, VTK-m-flavoured scientific data model used by every other
//! crate in the workspace:
//!
//! * [`Vec3`] — double-precision 3-vector with the usual algebra.
//! * [`UniformGrid`] — axis-aligned structured grid of hexahedral cells
//!   (origin + spacing + point dimensions), with point/cell indexing and
//!   trilinear sampling.
//! * [`CellSet`] / [`CellShape`] — explicit (unstructured) connectivity
//!   produced by the filters that extract geometry.
//! * [`Field`] — named arrays associated with points or cells.
//! * [`DataSet`] — a coordinate system, a cell set, and any number of
//!   fields; either structured or unstructured.
//! * [`Image`] / [`Camera`] — render targets and a pinhole camera with
//!   orbit generation for image databases.
//! * [`FieldSeries`] / [`TimeWindow`] — an ordered, bounded ring of
//!   timestamped `Arc<DataSet>` snapshots, the time-varying view that
//!   pathline advection consumes.
//! * [`WorkCounters`] — the instrumentation record each kernel fills in as
//!   it executes; consumed by the `vizpower` characterization bridge.
//! * [`validate`] — watertightness / orientation / degenerate-cell
//!   validators used by the conformance suite and the filter tests.
//! * [`vtkio`] — legacy `.vtk` export so every dataset opens in
//!   ParaView/VisIt.
//!
//! The model deliberately mirrors the subset of VTK-m the paper exercises:
//! uniform hexahedral grids of `double` scalars (CloverLeaf output) and the
//! unstructured triangle/polyline/hex outputs of the eight filters.

pub mod bounds;
pub mod camera;
pub mod cells;
pub mod counters;
pub mod dataset;
pub mod field;
pub mod grid;
pub mod image;
pub mod series;
pub mod validate;
pub mod vec3;
pub mod vtkio;

pub use bounds::Aabb;
pub use camera::{Camera, Ray};
pub use cells::{CellSet, CellShape};
pub use counters::WorkCounters;
pub use dataset::DataSet;
pub use field::{Association, Field, FieldData};
pub use grid::UniformGrid;
pub use image::Image;
pub use series::{FieldSeries, TimeWindow};
pub use validate::{validate_cells, validate_surface, CellReport, SurfaceReport};
pub use vec3::Vec3;
pub use vtkio::{save_vtk, write_vtk};
