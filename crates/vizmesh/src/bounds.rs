//! Axis-aligned bounding boxes.

use crate::vec3::Vec3;
use serde::{Deserialize, Serialize};

/// An axis-aligned bounding box in 3-D.
///
/// The empty box is represented with `min > max` (see [`Aabb::empty`]) so
/// that growing an empty box by a point yields the degenerate box at that
/// point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Aabb {
    pub min: Vec3,
    pub max: Vec3,
}

impl Aabb {
    /// The canonical empty box: `min = +inf`, `max = -inf`.
    pub fn empty() -> Self {
        Aabb {
            min: Vec3::splat(f64::INFINITY),
            max: Vec3::splat(f64::NEG_INFINITY),
        }
    }

    pub fn new(min: Vec3, max: Vec3) -> Self {
        Aabb { min, max }
    }

    /// Box covering exactly one point.
    pub fn from_point(p: Vec3) -> Self {
        Aabb { min: p, max: p }
    }

    /// Box covering an iterator of points; empty if the iterator is.
    pub fn from_points<I: IntoIterator<Item = Vec3>>(pts: I) -> Self {
        let mut b = Aabb::empty();
        for p in pts {
            b.grow(p);
        }
        b
    }

    /// True when no point has been added.
    pub fn is_empty(&self) -> bool {
        self.min.x > self.max.x || self.min.y > self.max.y || self.min.z > self.max.z
    }

    /// Expand to include `p`.
    pub fn grow(&mut self, p: Vec3) {
        self.min = self.min.min(p);
        self.max = self.max.max(p);
    }

    /// Expand to include all of `o`.
    pub fn union(&mut self, o: &Aabb) {
        self.min = self.min.min(o.min);
        self.max = self.max.max(o.max);
    }

    /// Union of two boxes as a new value.
    pub fn unioned(mut self, o: &Aabb) -> Aabb {
        self.union(o);
        self
    }

    /// `max - min`; zero vector for empty boxes.
    pub fn extent(&self) -> Vec3 {
        if self.is_empty() {
            Vec3::ZERO
        } else {
            self.max - self.min
        }
    }

    /// Geometric center; `ZERO` for empty boxes.
    pub fn center(&self) -> Vec3 {
        if self.is_empty() {
            Vec3::ZERO
        } else {
            (self.min + self.max) * 0.5
        }
    }

    /// Surface area (used by BVH build heuristics); 0 for empty boxes.
    pub fn surface_area(&self) -> f64 {
        let e = self.extent();
        2.0 * (e.x * e.y + e.y * e.z + e.z * e.x)
    }

    /// Length of the space diagonal.
    pub fn diagonal(&self) -> f64 {
        self.extent().length()
    }

    /// True when `p` lies inside or on the boundary.
    pub fn contains(&self, p: Vec3) -> bool {
        p.x >= self.min.x
            && p.x <= self.max.x
            && p.y >= self.min.y
            && p.y <= self.max.y
            && p.z >= self.min.z
            && p.z <= self.max.z
    }

    /// Index (0, 1, 2) of the longest axis.
    pub fn longest_axis(&self) -> usize {
        let e = self.extent();
        if e.x >= e.y && e.x >= e.z {
            0
        } else if e.y >= e.z {
            1
        } else {
            2
        }
    }

    /// Slab test: returns `Some((t_near, t_far))` when the ray
    /// `origin + t * dir` hits the box with `t_far >= t_near.max(t_min)`.
    ///
    /// `inv_dir` must be the component-wise reciprocal of the direction;
    /// infinities from zero components are handled by IEEE semantics.
    pub fn intersect_ray(
        &self,
        origin: Vec3,
        inv_dir: Vec3,
        t_min: f64,
        t_max: f64,
    ) -> Option<(f64, f64)> {
        let mut t0 = t_min;
        let mut t1 = t_max;
        for axis in 0..3 {
            let inv = inv_dir[axis];
            let mut near = (self.min[axis] - origin[axis]) * inv;
            let mut far = (self.max[axis] - origin[axis]) * inv;
            if near > far {
                std::mem::swap(&mut near, &mut far);
            }
            // NaNs (0 * inf) fall out of the comparisons conservatively.
            if near > t0 {
                t0 = near;
            }
            if far < t1 {
                t1 = far;
            }
            if t0 > t1 {
                return None;
            }
        }
        Some((t0, t1))
    }
}

impl Default for Aabb {
    fn default() -> Self {
        Aabb::empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_box_properties() {
        let b = Aabb::empty();
        assert!(b.is_empty());
        assert_eq!(b.extent(), Vec3::ZERO);
        assert_eq!(b.center(), Vec3::ZERO);
        assert_eq!(b.surface_area(), 0.0);
    }

    #[test]
    fn grow_from_empty() {
        let mut b = Aabb::empty();
        b.grow(Vec3::new(1.0, 2.0, 3.0));
        assert!(!b.is_empty());
        assert_eq!(b.min, b.max);
        b.grow(Vec3::new(-1.0, 4.0, 0.0));
        assert_eq!(b.min, Vec3::new(-1.0, 2.0, 0.0));
        assert_eq!(b.max, Vec3::new(1.0, 4.0, 3.0));
    }

    #[test]
    fn union_covers_both() {
        let a = Aabb::new(Vec3::ZERO, Vec3::ONE);
        let b = Aabb::new(Vec3::splat(2.0), Vec3::splat(3.0));
        let u = a.unioned(&b);
        assert!(u.contains(Vec3::splat(0.5)));
        assert!(u.contains(Vec3::splat(2.5)));
    }

    #[test]
    fn contains_boundary() {
        let b = Aabb::new(Vec3::ZERO, Vec3::ONE);
        assert!(b.contains(Vec3::ZERO));
        assert!(b.contains(Vec3::ONE));
        assert!(b.contains(Vec3::splat(0.5)));
        assert!(!b.contains(Vec3::new(1.0001, 0.5, 0.5)));
    }

    #[test]
    fn longest_axis_selection() {
        assert_eq!(
            Aabb::new(Vec3::ZERO, Vec3::new(3.0, 1.0, 2.0)).longest_axis(),
            0
        );
        assert_eq!(
            Aabb::new(Vec3::ZERO, Vec3::new(1.0, 3.0, 2.0)).longest_axis(),
            1
        );
        assert_eq!(
            Aabb::new(Vec3::ZERO, Vec3::new(1.0, 2.0, 3.0)).longest_axis(),
            2
        );
    }

    #[test]
    fn ray_hits_box_straight_on() {
        let b = Aabb::new(Vec3::ZERO, Vec3::ONE);
        let origin = Vec3::new(-1.0, 0.5, 0.5);
        let dir = Vec3::X;
        let inv = Vec3::new(1.0 / dir.x, f64::INFINITY, f64::INFINITY);
        let (t0, t1) = b.intersect_ray(origin, inv, 0.0, f64::INFINITY).unwrap();
        assert!((t0 - 1.0).abs() < 1e-12);
        assert!((t1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn ray_misses_box() {
        let b = Aabb::new(Vec3::ZERO, Vec3::ONE);
        let origin = Vec3::new(-1.0, 2.0, 0.5);
        let inv = Vec3::new(1.0, f64::INFINITY, f64::INFINITY);
        assert!(b.intersect_ray(origin, inv, 0.0, f64::INFINITY).is_none());
    }

    #[test]
    fn ray_starting_inside() {
        let b = Aabb::new(Vec3::ZERO, Vec3::ONE);
        let origin = Vec3::splat(0.5);
        let inv = Vec3::new(1.0, f64::INFINITY, f64::INFINITY);
        let (t0, t1) = b.intersect_ray(origin, inv, 0.0, f64::INFINITY).unwrap();
        assert_eq!(t0, 0.0);
        assert!((t1 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn surface_area_unit_cube() {
        let b = Aabb::new(Vec3::ZERO, Vec3::ONE);
        assert!((b.surface_area() - 6.0).abs() < 1e-12);
    }
}
