//! Double-precision 3-component vector.

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Div, DivAssign, Index, Mul, MulAssign, Neg, Sub, SubAssign};

/// A 3-component `f64` vector used for coordinates, velocities and colors.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec3 {
    pub x: f64,
    pub y: f64,
    pub z: f64,
}

impl Vec3 {
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };
    pub const ONE: Vec3 = Vec3 {
        x: 1.0,
        y: 1.0,
        z: 1.0,
    };
    pub const X: Vec3 = Vec3 {
        x: 1.0,
        y: 0.0,
        z: 0.0,
    };
    pub const Y: Vec3 = Vec3 {
        x: 0.0,
        y: 1.0,
        z: 0.0,
    };
    pub const Z: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 1.0,
    };

    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// All three components set to `v`.
    #[inline]
    pub const fn splat(v: f64) -> Self {
        Vec3::new(v, v, v)
    }

    #[inline]
    pub fn dot(self, o: Vec3) -> f64 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    #[inline]
    pub fn cross(self, o: Vec3) -> Vec3 {
        Vec3::new(
            self.y * o.z - self.z * o.y,
            self.z * o.x - self.x * o.z,
            self.x * o.y - self.y * o.x,
        )
    }

    #[inline]
    pub fn length_squared(self) -> f64 {
        self.dot(self)
    }

    #[inline]
    pub fn length(self) -> f64 {
        self.length_squared().sqrt()
    }

    /// Unit vector in the same direction; returns `ZERO` for a zero vector.
    #[inline]
    pub fn normalized(self) -> Vec3 {
        let len = self.length();
        if len > 0.0 {
            self / len
        } else {
            Vec3::ZERO
        }
    }

    /// Linear interpolation: `self` at `t = 0`, `o` at `t = 1`.
    #[inline]
    pub fn lerp(self, o: Vec3, t: f64) -> Vec3 {
        self + (o - self) * t
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x.min(o.x), self.y.min(o.y), self.z.min(o.z))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x.max(o.x), self.y.max(o.y), self.z.max(o.z))
    }

    /// Component-wise product (Hadamard).
    #[inline]
    pub fn mul_elem(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x * o.x, self.y * o.y, self.z * o.z)
    }

    /// Largest component value.
    #[inline]
    pub fn max_component(self) -> f64 {
        self.x.max(self.y).max(self.z)
    }

    /// Smallest component value.
    #[inline]
    pub fn min_component(self) -> f64 {
        self.x.min(self.y).min(self.z)
    }

    /// True when every component is finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }

    /// Distance between two points.
    #[inline]
    pub fn distance(self, o: Vec3) -> f64 {
        (self - o).length()
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, o: Vec3) {
        *self = *self + o;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, o: Vec3) {
        *self = *self - o;
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    #[inline]
    fn mul(self, v: Vec3) -> Vec3 {
        v * self
    }
}

impl MulAssign<f64> for Vec3 {
    #[inline]
    fn mul_assign(&mut self, s: f64) {
        *self = *self * s;
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, s: f64) -> Vec3 {
        Vec3::new(self.x / s, self.y / s, self.z / s)
    }
}

impl DivAssign<f64> for Vec3 {
    #[inline]
    fn div_assign(&mut self, s: f64) {
        *self = *self / s;
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl Index<usize> for Vec3 {
    type Output = f64;
    #[inline]
    fn index(&self, i: usize) -> &f64 {
        match i {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            // lint: infallible because Vec3 has exactly three
            // components; every caller indexes an axis in 0..3.
            _ => panic!("Vec3 index out of range: {i}"),
        }
    }
}

impl From<[f64; 3]> for Vec3 {
    #[inline]
    fn from(a: [f64; 3]) -> Self {
        Vec3::new(a[0], a[1], a[2])
    }
}

impl From<Vec3> for [f64; 3] {
    #[inline]
    fn from(v: Vec3) -> Self {
        [v.x, v.y, v.z]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_cross_are_orthogonal() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-4.0, 0.5, 2.0);
        let c = a.cross(b);
        assert!(c.dot(a).abs() < 1e-12);
        assert!(c.dot(b).abs() < 1e-12);
    }

    #[test]
    fn cross_of_axes() {
        assert_eq!(Vec3::X.cross(Vec3::Y), Vec3::Z);
        assert_eq!(Vec3::Y.cross(Vec3::Z), Vec3::X);
        assert_eq!(Vec3::Z.cross(Vec3::X), Vec3::Y);
    }

    #[test]
    fn normalized_has_unit_length() {
        let v = Vec3::new(3.0, -4.0, 12.0);
        assert!((v.normalized().length() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalized_zero_is_zero() {
        assert_eq!(Vec3::ZERO.normalized(), Vec3::ZERO);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Vec3::new(0.0, 2.0, -1.0);
        let b = Vec3::new(4.0, 0.0, 1.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec3::new(2.0, 1.0, 0.0));
    }

    #[test]
    fn arithmetic_ops() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        assert_eq!(a + b, Vec3::new(5.0, 7.0, 9.0));
        assert_eq!(b - a, Vec3::new(3.0, 3.0, 3.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(b / 2.0, Vec3::new(2.0, 2.5, 3.0));
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
    }

    #[test]
    fn min_max_component_wise() {
        let a = Vec3::new(1.0, 5.0, 3.0);
        let b = Vec3::new(2.0, 4.0, 3.0);
        assert_eq!(a.min(b), Vec3::new(1.0, 4.0, 3.0));
        assert_eq!(a.max(b), Vec3::new(2.0, 5.0, 3.0));
        assert_eq!(a.max_component(), 5.0);
        assert_eq!(a.min_component(), 1.0);
    }

    #[test]
    fn indexing_matches_fields() {
        let v = Vec3::new(7.0, 8.0, 9.0);
        assert_eq!(v[0], v.x);
        assert_eq!(v[1], v.y);
        assert_eq!(v[2], v.z);
    }

    #[test]
    #[should_panic]
    fn index_out_of_range_panics() {
        let _ = Vec3::ZERO[3];
    }

    #[test]
    fn array_round_trip() {
        let v = Vec3::new(1.5, 2.5, 3.5);
        let a: [f64; 3] = v.into();
        assert_eq!(Vec3::from(a), v);
    }
}
