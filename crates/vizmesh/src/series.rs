//! Time-varying data: an ordered, bounded ring of timestamped dataset
//! snapshots.
//!
//! The paper's advection workload is steady-state — one frozen velocity
//! field — but real in-situ pipelines see the simulation as a *stream*
//! of timesteps, and pathlines (particles advected through the evolving
//! field) are the paper-scale extension the ROADMAP flags. This module
//! supplies the data-layer half of that extension:
//!
//! * [`FieldSeries`] — an ordered ring of `(time, Arc<DataSet>)`
//!   snapshots with a bounded capacity. Pushing past capacity evicts
//!   the oldest snapshot (and counts it), so a long simulation run can
//!   retain a sliding window without unbounded memory. Snapshots are
//!   `Arc`-shared: a series never clones field payloads, and consumers
//!   (kernels, caches) can hold cheap references.
//! * [`TimeWindow`] — a borrowed contiguous view of a series, the unit
//!   the service cache fingerprints (`data_fp` per window).
//!
//! Temporal *interpolation* deliberately lives with the consumer (the
//! advection kernel resolves per-snapshot field arrays once, then lerps
//! between bracketing snapshots); the series only answers the indexing
//! question — [`FieldSeries::bracket`] — so the data layer stays free
//! of any field-name or sampling policy.

use std::collections::VecDeque;
use std::sync::Arc;

use crate::DataSet;

/// An ordered, bounded ring of timestamped dataset snapshots.
///
/// Times are strictly increasing; capacity is at least one. When a
/// recorded snapshot would exceed capacity the oldest is evicted and
/// counted in [`FieldSeries::evicted`].
#[derive(Debug, Clone)]
pub struct FieldSeries {
    snaps: VecDeque<(f64, Arc<DataSet>)>,
    capacity: usize,
    evicted: u64,
}

impl FieldSeries {
    /// An empty series retaining at most `capacity` snapshots.
    pub fn with_capacity(capacity: usize) -> FieldSeries {
        // lint: constructor precondition, caller bug
        assert!(capacity > 0, "series capacity must be positive");
        FieldSeries {
            snaps: VecDeque::with_capacity(capacity),
            capacity,
            evicted: 0,
        }
    }

    /// A single-snapshot ("frozen") series at time `t = 0` — the bridge
    /// from the steady-state world: pathlines on a frozen series must
    /// reproduce streamlines exactly.
    pub fn frozen(snapshot: Arc<DataSet>) -> FieldSeries {
        let mut s = FieldSeries::with_capacity(1);
        s.record(0.0, snapshot);
        s
    }

    /// Record a snapshot at time `t` (strictly after the last) into the
    /// pre-sized ring. Returns `true` if an old snapshot was evicted to
    /// make room.
    pub fn record(&mut self, t: f64, snapshot: Arc<DataSet>) -> bool {
        if let Some(&(last, _)) = self.snaps.back() {
            // lint: monotonicity precondition, caller bug
            assert!(t > last, "snapshot times must strictly increase");
        }
        self.snaps.push_back((t, snapshot));
        if self.snaps.len() > self.capacity {
            self.snaps.pop_front();
            self.evicted += 1;
            true
        } else {
            false
        }
    }

    /// Number of retained snapshots.
    pub fn len(&self) -> usize {
        self.snaps.len()
    }

    /// Whether the series holds no snapshots.
    pub fn is_empty(&self) -> bool {
        self.snaps.is_empty()
    }

    /// The ring capacity this series was built with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// How many snapshots have been evicted over the series' lifetime.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// The retained snapshots, oldest first.
    pub fn snapshots(&self) -> impl Iterator<Item = (f64, &Arc<DataSet>)> {
        self.snaps.iter().map(|(t, ds)| (*t, ds))
    }

    /// Snapshot `i` (0 = oldest retained), if present.
    pub fn get(&self, i: usize) -> Option<(f64, &Arc<DataSet>)> {
        self.snaps.get(i).map(|(t, ds)| (*t, ds))
    }

    /// The newest retained snapshot, if any.
    pub fn latest(&self) -> Option<(f64, &Arc<DataSet>)> {
        self.snaps.back().map(|(t, ds)| (*t, ds))
    }

    /// Time of the oldest retained snapshot.
    pub fn first_time(&self) -> Option<f64> {
        self.snaps.front().map(|&(t, _)| t)
    }

    /// Time of the newest retained snapshot.
    pub fn last_time(&self) -> Option<f64> {
        self.snaps.back().map(|&(t, _)| t)
    }

    /// Locate `t` among the retained snapshot times: the index pair
    /// `(i, j)` of the snapshots bracketing `t` and the interpolation
    /// weight `alpha` in `[0, 1]` between them.
    ///
    /// Outside the retained span the nearest snapshot is used with
    /// `alpha` clamped (`i == j`, `alpha == 0`), so consumers can treat
    /// the boundary and single-snapshot cases uniformly — and, because
    /// `i == j` signals "no interpolation", avoid introducing any lerp
    /// arithmetic on frozen series. Returns `None` on an empty series.
    pub fn bracket(&self, t: f64) -> Option<(usize, usize, f64)> {
        let (first, last) = (self.first_time()?, self.last_time()?);
        if self.snaps.len() == 1 || t <= first {
            return Some((0, 0, 0.0));
        }
        let n = self.snaps.len();
        if t >= last {
            return Some((n - 1, n - 1, 0.0));
        }
        // Retained spans are short (a ring of tens of snapshots), so a
        // linear scan beats binary search bookkeeping here.
        let mut i = 0;
        while i + 1 < n && self.snaps[i + 1].0 <= t {
            i += 1;
        }
        let (t0, _) = self.snaps[i];
        let (t1, _) = self.snaps[i + 1];
        if t <= t0 || t1 <= t0 {
            return Some((i, i, 0.0));
        }
        Some((i, i + 1, (t - t0) / (t1 - t0)))
    }

    /// A borrowed view of the retained snapshots whose times intersect
    /// `[t0, t1]`, widened by one snapshot on each side so interpolation
    /// at the endpoints stays in-window. Empty window on an empty
    /// series.
    pub fn window(&self, t0: f64, t1: f64) -> TimeWindow<'_> {
        if self.snaps.is_empty() {
            return TimeWindow {
                series: self,
                start: 0,
                end: 0,
            };
        }
        let n = self.snaps.len();
        let mut start = 0;
        while start + 1 < n && self.snaps[start + 1].0 <= t0 {
            start += 1;
        }
        let mut end = start;
        while end < n && self.snaps[end].0 < t1 {
            end += 1;
        }
        TimeWindow {
            series: self,
            start,
            end: end.min(n - 1) + 1,
        }
    }

    /// The whole retained span as a window.
    pub fn full_window(&self) -> TimeWindow<'_> {
        TimeWindow {
            series: self,
            start: 0,
            end: self.snaps.len(),
        }
    }
}

/// A borrowed, contiguous view of a [`FieldSeries`]: the snapshots a
/// consumer (kernel, cache key) actually touches. Indexing is relative
/// to the series' retained ring.
#[derive(Debug, Clone, Copy)]
pub struct TimeWindow<'a> {
    series: &'a FieldSeries,
    start: usize,
    end: usize,
}

impl<'a> TimeWindow<'a> {
    /// Number of snapshots in view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The snapshots in view, oldest first.
    pub fn snapshots(&self) -> impl Iterator<Item = (f64, &'a Arc<DataSet>)> + '_ {
        (self.start..self.end).filter_map(|i| self.series.get(i))
    }

    /// The `[first, last]` times of the view, if non-empty.
    pub fn span(&self) -> Option<(f64, f64)> {
        let first = self.series.get(self.start)?.0;
        let last = self.series.get(self.end.checked_sub(1)?)?.0;
        Some((first, last))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Aabb, UniformGrid, Vec3};

    fn snap(scale: f64) -> Arc<DataSet> {
        let grid = UniformGrid::from_cell_dims([2, 2, 2], Aabb::new(Vec3::ZERO, Vec3::ONE));
        let n = grid.num_points();
        let values: Vec<f64> = (0..n).map(|i| i as f64 * scale).collect();
        Arc::new(DataSet::uniform(grid).with_field(crate::Field::scalar(
            "energy",
            crate::Association::Points,
            values,
        )))
    }

    #[test]
    fn ring_evicts_oldest_past_capacity() {
        let mut s = FieldSeries::with_capacity(3);
        for i in 0..5 {
            let evicted = s.record(i as f64, snap(1.0));
            assert_eq!(evicted, i >= 3, "eviction starts at the 4th push");
        }
        assert_eq!(s.len(), 3);
        assert_eq!(s.evicted(), 2);
        assert_eq!(s.first_time(), Some(2.0));
        assert_eq!(s.last_time(), Some(4.0));
        let times: Vec<f64> = s.snapshots().map(|(t, _)| t).collect();
        assert_eq!(times, vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn frozen_series_has_one_snapshot_at_time_zero() {
        let s = FieldSeries::frozen(snap(1.0));
        assert_eq!(s.len(), 1);
        assert_eq!(s.first_time(), Some(0.0));
        // Any query time brackets to the single snapshot, no lerp.
        for t in [-1.0, 0.0, 0.5, 100.0] {
            assert_eq!(s.bracket(t), Some((0, 0, 0.0)));
        }
    }

    #[test]
    fn snapshots_are_arc_shared_not_cloned() {
        let ds = snap(1.0);
        let s = FieldSeries::frozen(Arc::clone(&ds));
        let (_, held) = s.latest().expect("non-empty");
        assert!(Arc::ptr_eq(held, &ds), "series holds the same allocation");
    }

    #[test]
    fn bracket_interpolates_between_snapshots_and_clamps_outside() {
        let mut s = FieldSeries::with_capacity(8);
        s.record(1.0, snap(1.0));
        s.record(2.0, snap(2.0));
        s.record(4.0, snap(3.0));
        assert_eq!(s.bracket(0.5), Some((0, 0, 0.0)), "clamped before span");
        assert_eq!(s.bracket(1.0), Some((0, 0, 0.0)), "exactly first");
        assert_eq!(s.bracket(1.5), Some((0, 1, 0.5)));
        // Exact knots resolve to the single snapshot (no lerp), the
        // same rule as the boundaries.
        assert_eq!(s.bracket(2.0), Some((1, 1, 0.0)), "exactly interior knot");
        assert_eq!(s.bracket(3.0), Some((1, 2, 0.5)));
        assert_eq!(s.bracket(4.0), Some((2, 2, 0.0)), "exactly last");
        assert_eq!(s.bracket(9.0), Some((2, 2, 0.0)), "clamped after span");
        assert_eq!(FieldSeries::with_capacity(1).bracket(0.0), None);
    }

    #[test]
    fn monotonicity_is_enforced() {
        let mut s = FieldSeries::with_capacity(4);
        s.record(1.0, snap(1.0));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            s.record(1.0, snap(2.0));
        }));
        assert!(result.is_err(), "equal time must be rejected");
    }

    #[test]
    fn window_covers_query_span_with_interpolation_margin() {
        let mut s = FieldSeries::with_capacity(8);
        for i in 0..6 {
            s.record(i as f64, snap(1.0));
        }
        let w = s.window(1.5, 3.5);
        let times: Vec<f64> = w.snapshots().map(|(t, _)| t).collect();
        assert_eq!(
            times,
            vec![1.0, 2.0, 3.0, 4.0],
            "one margin snapshot each side"
        );
        assert_eq!(w.span(), Some((1.0, 4.0)));
        let full = s.full_window();
        assert_eq!(full.len(), 6);
        assert_eq!(full.span(), Some((0.0, 5.0)));
        let empty = FieldSeries::with_capacity(1);
        assert!(empty.window(0.0, 1.0).is_empty());
        assert_eq!(empty.window(0.0, 1.0).span(), None);
    }
}
