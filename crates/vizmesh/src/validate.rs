//! Mesh validity checks: watertightness, orientation consistency, and
//! degenerate-cell detection.
//!
//! The conformance suite (`crates/conformance`) runs these validators on
//! every kernel output; they are kept in `vizmesh` so unit tests of the
//! filters themselves can assert the same invariants. All checks are
//! reporting, not panicking: callers inspect the returned report.

use std::collections::HashMap;

use crate::cells::{CellSet, CellShape};
use crate::vec3::Vec3;

/// Validity report for the triangle subcomplex of a cell set.
///
/// Only `Triangle` cells participate; other shapes are ignored so the
/// report is meaningful for mixed outputs (e.g. a slice that also carries
/// polylines).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SurfaceReport {
    /// Number of triangles inspected.
    pub triangles: usize,
    /// Distinct points referenced by at least one triangle.
    pub vertices: usize,
    /// Distinct undirected edges.
    pub edges: usize,
    /// Undirected edges used by exactly one triangle (surface boundary).
    pub boundary_edges: usize,
    /// Undirected edges used by more than two triangles.
    pub nonmanifold_edges: usize,
    /// Directed edges traversed more than once: two neighbouring
    /// triangles wind the shared edge the same way, i.e. their normals
    /// disagree.
    pub orientation_conflicts: usize,
    /// Triangles whose area is at or below the degeneracy threshold.
    pub degenerate_triangles: usize,
}

impl SurfaceReport {
    /// Closed 2-manifold: every edge is shared by exactly two triangles.
    pub fn is_watertight(&self) -> bool {
        self.boundary_edges == 0 && self.nonmanifold_edges == 0
    }

    /// Every interior edge is traversed once in each direction, so all
    /// triangle normals agree across shared edges.
    pub fn is_consistently_oriented(&self) -> bool {
        self.orientation_conflicts == 0
    }

    /// Euler characteristic `V - E + F` of the triangle subcomplex.
    pub fn euler_characteristic(&self) -> i64 {
        self.vertices as i64 - self.edges as i64 + self.triangles as i64
    }

    /// Genus of a watertight connected surface (`(2 - χ) / 2`), or
    /// `None` when the surface is open, non-manifold, or χ is odd.
    pub fn genus(&self) -> Option<i64> {
        if !self.is_watertight() {
            return None;
        }
        let chi = self.euler_characteristic();
        if (2 - chi) % 2 != 0 {
            return None;
        }
        Some((2 - chi) / 2)
    }
}

/// Inspect the triangle subcomplex of `cells`: edge manifoldness,
/// orientation consistency, and degenerate (area ≤ `area_eps`) triangles.
pub fn validate_surface(points: &[Vec3], cells: &CellSet, area_eps: f64) -> SurfaceReport {
    // Undirected edge -> (uses, forward traversals of (lo, hi)).
    let mut edge_uses: HashMap<(u32, u32), (u32, u32)> = HashMap::new();
    let mut used_points: Vec<bool> = vec![false; points.len()];
    let mut triangles = 0usize;
    let mut degenerate = 0usize;
    for (shape, conn) in cells.iter() {
        if shape != CellShape::Triangle || conn.len() != 3 {
            continue;
        }
        triangles += 1;
        for &p in conn {
            if let Some(slot) = used_points.get_mut(p as usize) {
                *slot = true;
            }
        }
        let (a, b, c) = (
            points[conn[0] as usize],
            points[conn[1] as usize],
            points[conn[2] as usize],
        );
        if 0.5 * (b - a).cross(c - a).length() <= area_eps {
            degenerate += 1;
        }
        for (u, v) in [(conn[0], conn[1]), (conn[1], conn[2]), (conn[2], conn[0])] {
            let key = (u.min(v), u.max(v));
            let entry = edge_uses.entry(key).or_insert((0, 0));
            entry.0 += 1;
            if u < v {
                entry.1 += 1;
            }
        }
    }
    let mut boundary = 0usize;
    let mut nonmanifold = 0usize;
    let mut conflicts = 0usize;
    for &(uses, forward) in edge_uses.values() {
        match uses {
            1 => boundary += 1,
            2 => {
                // A consistently oriented interior edge is traversed
                // once as (lo, hi) and once as (hi, lo).
                if forward != 1 {
                    conflicts += 1;
                }
            }
            _ => nonmanifold += 1,
        }
    }
    SurfaceReport {
        triangles,
        vertices: used_points.iter().filter(|&&u| u).count(),
        edges: edge_uses.len(),
        boundary_edges: boundary,
        nonmanifold_edges: nonmanifold,
        orientation_conflicts: conflicts,
        degenerate_triangles: degenerate,
    }
}

/// The six-tetrahedron decomposition of a VTK-ordered hexahedron, all
/// sharing the 0–6 diagonal. Mirrors `vizalgo::tetclip::HEX_TO_TETS`.
const HEX_TO_TETS: [[usize; 4]; 6] = [
    [0, 1, 2, 6],
    [0, 2, 3, 6],
    [0, 3, 7, 6],
    [0, 7, 4, 6],
    [0, 4, 5, 6],
    [0, 5, 1, 6],
];

/// Volumetric validity report for the tetrahedra and hexahedra of a cell
/// set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellReport {
    /// Number of volumetric (tet/hex) cells inspected.
    pub cells: usize,
    /// Cells whose absolute volume is at or below the threshold.
    pub degenerate_cells: usize,
    /// Sum of absolute cell volumes.
    pub total_volume: f64,
    /// Smallest absolute cell volume seen (0 when no cells).
    pub min_volume: f64,
}

/// Inspect the tetrahedra and hexahedra of `cells`: total and minimum
/// absolute volume, and cells degenerate at `vol_eps`.
pub fn validate_cells(points: &[Vec3], cells: &CellSet, vol_eps: f64) -> CellReport {
    let tet_vol =
        |a: Vec3, b: Vec3, c: Vec3, d: Vec3| -> f64 { (b - a).cross(c - a).dot(d - a) / 6.0 };
    let mut report = CellReport {
        cells: 0,
        degenerate_cells: 0,
        total_volume: 0.0,
        min_volume: 0.0,
    };
    let mut min_seen = f64::INFINITY;
    for (shape, conn) in cells.iter() {
        let volume = match shape {
            CellShape::Tetra if conn.len() == 4 => tet_vol(
                points[conn[0] as usize],
                points[conn[1] as usize],
                points[conn[2] as usize],
                points[conn[3] as usize],
            )
            .abs(),
            CellShape::Hexahedron if conn.len() == 8 => HEX_TO_TETS
                .iter()
                .map(|t| {
                    tet_vol(
                        points[conn[t[0]] as usize],
                        points[conn[t[1]] as usize],
                        points[conn[t[2]] as usize],
                        points[conn[t[3]] as usize],
                    )
                    .abs()
                })
                .sum(),
            _ => continue,
        };
        report.cells += 1;
        report.total_volume += volume;
        if volume <= vol_eps {
            report.degenerate_cells += 1;
        }
        min_seen = min_seen.min(volume);
    }
    if report.cells > 0 {
        report.min_volume = min_seen;
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A unit tetrahedron's four faces, wound outward.
    fn tet_surface() -> (Vec<Vec3>, CellSet) {
        let points = vec![Vec3::ZERO, Vec3::X, Vec3::Y, Vec3::Z];
        let mut cells = CellSet::new();
        for conn in [[0u32, 2, 1], [0, 1, 3], [0, 3, 2], [1, 2, 3]] {
            cells.push(CellShape::Triangle, &conn);
        }
        (points, cells)
    }

    #[test]
    fn closed_tet_is_watertight_oriented_genus_zero() {
        let (points, cells) = tet_surface();
        let r = validate_surface(&points, &cells, 0.0);
        assert_eq!(r.triangles, 4);
        assert_eq!(r.vertices, 4);
        assert_eq!(r.edges, 6);
        assert!(r.is_watertight(), "{r:?}");
        assert!(r.is_consistently_oriented(), "{r:?}");
        assert_eq!(r.euler_characteristic(), 2);
        assert_eq!(r.genus(), Some(0));
        assert_eq!(r.degenerate_triangles, 0);
    }

    #[test]
    fn missing_face_shows_boundary_edges() {
        let (points, mut cells) = tet_surface();
        let mut open = CellSet::new();
        for c in 0..3 {
            open.push(CellShape::Triangle, cells.cell_points(c));
        }
        cells = open;
        let r = validate_surface(&points, &cells, 0.0);
        assert_eq!(r.boundary_edges, 3);
        assert!(!r.is_watertight());
        assert_eq!(r.genus(), None);
    }

    #[test]
    fn flipped_triangle_is_an_orientation_conflict() {
        let (points, cells) = tet_surface();
        let mut flipped = CellSet::new();
        for c in 0..3 {
            flipped.push(CellShape::Triangle, cells.cell_points(c));
        }
        let last = cells.cell_points(3);
        flipped.push(CellShape::Triangle, &[last[0], last[2], last[1]]);
        let r = validate_surface(&points, &flipped, 0.0);
        assert!(r.is_watertight(), "{r:?}");
        assert_eq!(r.orientation_conflicts, 3, "{r:?}");
        assert!(!r.is_consistently_oriented());
    }

    #[test]
    fn zero_area_triangle_is_degenerate() {
        let points = vec![Vec3::ZERO, Vec3::X, Vec3::X * 2.0];
        let mut cells = CellSet::new();
        cells.push(CellShape::Triangle, &[0, 1, 2]);
        let r = validate_surface(&points, &cells, 0.0);
        assert_eq!(r.degenerate_triangles, 1);
    }

    #[test]
    fn non_triangles_are_ignored() {
        let (points, mut cells) = tet_surface();
        cells.push(CellShape::PolyLine, &[0, 1, 2, 3]);
        let r = validate_surface(&points, &cells, 0.0);
        assert_eq!(r.triangles, 4);
        assert!(r.is_watertight());
    }

    #[test]
    fn cell_volumes_sum_for_tet_and_hex() {
        // Unit cube as a hex plus a separate unit tet.
        let mut points = vec![
            Vec3::ZERO,
            Vec3::X,
            Vec3::new(1.0, 1.0, 0.0),
            Vec3::Y,
            Vec3::Z,
            Vec3::new(1.0, 0.0, 1.0),
            Vec3::ONE,
            Vec3::new(0.0, 1.0, 1.0),
        ];
        let base = points.len() as u32;
        points.extend([
            Vec3::splat(2.0),
            Vec3::splat(2.0) + Vec3::X,
            Vec3::splat(2.0) + Vec3::Y,
            Vec3::splat(2.0) + Vec3::Z,
        ]);
        let mut cells = CellSet::new();
        cells.push(CellShape::Hexahedron, &[0, 1, 2, 3, 4, 5, 6, 7]);
        cells.push(CellShape::Tetra, &[base, base + 1, base + 2, base + 3]);
        let r = validate_cells(&points, &cells, 0.0);
        assert_eq!(r.cells, 2);
        assert!((r.total_volume - (1.0 + 1.0 / 6.0)).abs() < 1e-12);
        assert!((r.min_volume - 1.0 / 6.0).abs() < 1e-12);
        assert_eq!(r.degenerate_cells, 0);
    }

    #[test]
    fn flat_hex_is_degenerate() {
        let points = vec![
            Vec3::ZERO,
            Vec3::X,
            Vec3::new(1.0, 1.0, 0.0),
            Vec3::Y,
            Vec3::ZERO,
            Vec3::X,
            Vec3::new(1.0, 1.0, 0.0),
            Vec3::Y,
        ];
        let mut cells = CellSet::new();
        cells.push(CellShape::Hexahedron, &[0, 1, 2, 3, 4, 5, 6, 7]);
        let r = validate_cells(&points, &cells, 1e-12);
        assert_eq!(r.degenerate_cells, 1);
        assert_eq!(r.min_volume, 0.0);
    }

    #[test]
    fn empty_cellset_reports_zeroes() {
        let r = validate_cells(&[], &CellSet::new(), 0.0);
        assert_eq!(r.cells, 0);
        assert_eq!(r.total_volume, 0.0);
        assert_eq!(r.min_volume, 0.0);
        let s = validate_surface(&[], &CellSet::new(), 0.0);
        assert_eq!(s.triangles, 0);
        assert!(s.is_watertight());
    }
}
