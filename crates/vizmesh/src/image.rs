//! RGBA render targets with depth, and PPM/PGM export.

use serde::{Deserialize, Serialize};
use std::io::{self, Write};
use std::path::Path;

/// An RGBA32F image with a depth channel.
///
/// Pixel `(0, 0)` is the **bottom-left** corner (camera convention);
/// the PPM writer flips rows so files display upright.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Image {
    width: usize,
    height: usize,
    /// RGBA, row-major from bottom row.
    pixels: Vec<[f32; 4]>,
    /// Camera-space depth per pixel; `f32::INFINITY` where nothing was hit.
    depth: Vec<f32>,
}

impl Image {
    /// Create a transparent-black image.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be positive");
        Image {
            width,
            height,
            pixels: vec![[0.0; 4]; width * height],
            depth: vec![f32::INFINITY; width * height],
        }
    }

    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    #[inline]
    pub fn num_pixels(&self) -> usize {
        self.width * self.height
    }

    #[inline]
    fn idx(&self, x: usize, y: usize) -> usize {
        debug_assert!(x < self.width && y < self.height);
        y * self.width + x
    }

    #[inline]
    pub fn get(&self, x: usize, y: usize) -> [f32; 4] {
        self.pixels[self.idx(x, y)]
    }

    #[inline]
    pub fn set(&mut self, x: usize, y: usize, rgba: [f32; 4]) {
        let i = self.idx(x, y);
        self.pixels[i] = rgba;
    }

    #[inline]
    pub fn depth_at(&self, x: usize, y: usize) -> f32 {
        self.depth[self.idx(x, y)]
    }

    /// Write `rgba` only when `depth` is closer than the stored depth.
    /// Returns true when the pixel was updated.
    #[inline]
    pub fn set_if_closer(&mut self, x: usize, y: usize, depth: f32, rgba: [f32; 4]) -> bool {
        let i = self.idx(x, y);
        if depth < self.depth[i] {
            self.depth[i] = depth;
            self.pixels[i] = rgba;
            true
        } else {
            false
        }
    }

    /// Mutable row access for parallel renderers: the image is split into
    /// disjoint `(pixel, depth)` row slices, bottom row first.
    pub fn rows_mut(&mut self) -> impl Iterator<Item = (&mut [[f32; 4]], &mut [f32])> {
        self.pixels
            .chunks_mut(self.width)
            .zip(self.depth.chunks_mut(self.width))
    }

    /// Fill every pixel with a constant color and reset depth.
    pub fn clear(&mut self, rgba: [f32; 4]) {
        self.pixels.fill(rgba);
        self.depth.fill(f32::INFINITY);
    }

    /// Fraction of pixels with any opacity — a cheap "did we draw
    /// anything" check used by tests.
    pub fn coverage(&self) -> f64 {
        let hit = self.pixels.iter().filter(|p| p[3] > 0.0).count();
        hit as f64 / self.num_pixels() as f64
    }

    /// Mean color over all pixels.
    pub fn mean_color(&self) -> [f32; 4] {
        let mut acc = [0.0f64; 4];
        for p in &self.pixels {
            for c in 0..4 {
                acc[c] += p[c] as f64;
            }
        }
        let n = self.num_pixels() as f64;
        [
            (acc[0] / n) as f32,
            (acc[1] / n) as f32,
            (acc[2] / n) as f32,
            (acc[3] / n) as f32,
        ]
    }

    /// Encode as binary PPM (P6). Alpha is composited over `background`.
    pub fn write_ppm<W: Write>(&self, w: &mut W, background: [f32; 3]) -> io::Result<()> {
        writeln!(w, "P6\n{} {}\n255", self.width, self.height)?;
        let mut buf = Vec::with_capacity(self.num_pixels() * 3);
        for y in (0..self.height).rev() {
            for x in 0..self.width {
                let p = self.get(x, y);
                let a = p[3].clamp(0.0, 1.0);
                for c in 0..3 {
                    let v = p[c] * a + background[c] * (1.0 - a);
                    buf.push((v.clamp(0.0, 1.0) * 255.0).round() as u8);
                }
            }
        }
        w.write_all(&buf)
    }

    /// Write a PPM file (convenience wrapper over [`Self::write_ppm`]).
    pub fn save_ppm<P: AsRef<Path>>(&self, path: P, background: [f32; 3]) -> io::Result<()> {
        let mut f = io::BufWriter::new(std::fs::File::create(path)?);
        self.write_ppm(&mut f, background)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_image_is_transparent() {
        let img = Image::new(4, 3);
        assert_eq!(img.width(), 4);
        assert_eq!(img.height(), 3);
        assert_eq!(img.coverage(), 0.0);
        assert_eq!(img.depth_at(0, 0), f32::INFINITY);
    }

    #[test]
    #[should_panic]
    fn zero_size_panics() {
        let _ = Image::new(0, 4);
    }

    #[test]
    fn set_get_round_trip() {
        let mut img = Image::new(2, 2);
        img.set(1, 0, [0.1, 0.2, 0.3, 1.0]);
        assert_eq!(img.get(1, 0), [0.1, 0.2, 0.3, 1.0]);
        assert_eq!(img.get(0, 0), [0.0; 4]);
    }

    #[test]
    fn depth_test_keeps_nearest() {
        let mut img = Image::new(1, 1);
        assert!(img.set_if_closer(0, 0, 5.0, [1.0, 0.0, 0.0, 1.0]));
        assert!(!img.set_if_closer(0, 0, 7.0, [0.0, 1.0, 0.0, 1.0]));
        assert!(img.set_if_closer(0, 0, 2.0, [0.0, 0.0, 1.0, 1.0]));
        assert_eq!(img.get(0, 0), [0.0, 0.0, 1.0, 1.0]);
        assert_eq!(img.depth_at(0, 0), 2.0);
    }

    #[test]
    fn coverage_counts_opaque_pixels() {
        let mut img = Image::new(2, 2);
        img.set(0, 0, [1.0, 1.0, 1.0, 1.0]);
        img.set(1, 1, [1.0, 1.0, 1.0, 0.5]);
        assert!((img.coverage() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ppm_header_and_size() {
        let mut img = Image::new(3, 2);
        img.set(0, 1, [1.0, 0.0, 0.0, 1.0]);
        let mut out = Vec::new();
        img.write_ppm(&mut out, [0.0, 0.0, 0.0]).unwrap();
        let header = b"P6\n3 2\n255\n";
        assert_eq!(&out[..header.len()], header);
        assert_eq!(out.len(), header.len() + 3 * 2 * 3);
        // Top-left in file = (0, height-1) in image = red.
        assert_eq!(&out[header.len()..header.len() + 3], &[255, 0, 0]);
    }

    #[test]
    fn ppm_background_composite() {
        let img = Image::new(1, 1); // fully transparent
        let mut out = Vec::new();
        img.write_ppm(&mut out, [1.0, 1.0, 1.0]).unwrap();
        let px = &out[out.len() - 3..];
        assert_eq!(px, &[255, 255, 255]);
    }

    #[test]
    fn rows_mut_covers_whole_image() {
        let mut img = Image::new(4, 3);
        let mut rows = 0;
        for (pix, dep) in img.rows_mut() {
            assert_eq!(pix.len(), 4);
            assert_eq!(dep.len(), 4);
            rows += 1;
        }
        assert_eq!(rows, 3);
    }
}
