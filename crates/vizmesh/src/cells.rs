//! Explicit (unstructured) cell sets.

use serde::{Deserialize, Serialize};

/// Shape of a single cell in an explicit cell set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CellShape {
    Vertex,
    Line,
    Triangle,
    Quad,
    Tetra,
    Pyramid,
    Wedge,
    Hexahedron,
    /// Arbitrary convex polygon (slice / clip cross-sections).
    Polygon,
    /// Polyline (streamlines from particle advection).
    PolyLine,
}

impl CellShape {
    /// Number of points for fixed-size shapes; `None` for `Polygon` and
    /// `PolyLine`, whose arity is per-cell.
    pub fn fixed_point_count(self) -> Option<usize> {
        match self {
            CellShape::Vertex => Some(1),
            CellShape::Line => Some(2),
            CellShape::Triangle => Some(3),
            CellShape::Quad => Some(4),
            CellShape::Tetra => Some(4),
            CellShape::Pyramid => Some(5),
            CellShape::Wedge => Some(6),
            CellShape::Hexahedron => Some(8),
            CellShape::Polygon | CellShape::PolyLine => None,
        }
    }
}

/// An explicit cell set: per-cell shapes and a ragged connectivity array,
/// CSR-style (offsets into `connectivity`).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CellSet {
    shapes: Vec<CellShape>,
    /// `offsets.len() == shapes.len() + 1`; cell `c` uses
    /// `connectivity[offsets[c]..offsets[c + 1]]`.
    offsets: Vec<usize>,
    connectivity: Vec<u32>,
}

impl CellSet {
    pub fn new() -> Self {
        CellSet {
            shapes: Vec::new(),
            offsets: vec![0],
            connectivity: Vec::new(),
        }
    }

    /// Pre-allocate for `cells` cells and `conn` connectivity entries.
    pub fn with_capacity(cells: usize, conn: usize) -> Self {
        let mut offsets = Vec::with_capacity(cells + 1);
        offsets.push(0);
        CellSet {
            shapes: Vec::with_capacity(cells),
            offsets,
            connectivity: Vec::with_capacity(conn),
        }
    }

    /// Append one cell.
    ///
    /// # Panics
    /// If `points` length disagrees with a fixed-arity shape, or a
    /// variable-arity cell has fewer than 2 points (PolyLine) / 3 points
    /// (Polygon).
    pub fn push(&mut self, shape: CellShape, points: &[u32]) {
        match shape.fixed_point_count() {
            Some(n) => assert_eq!(
                points.len(),
                n,
                "{shape:?} needs {n} points, got {}",
                points.len()
            ),
            None => {
                let min = if shape == CellShape::PolyLine { 2 } else { 3 };
                assert!(
                    points.len() >= min,
                    "{shape:?} needs at least {min} points, got {}",
                    points.len()
                );
            }
        }
        self.shapes.push(shape);
        self.connectivity.extend_from_slice(points);
        self.offsets.push(self.connectivity.len());
    }

    /// Append every cell of `other`, with point ids shifted by
    /// `point_offset` (used when merging per-thread outputs).
    pub fn append_shifted(&mut self, other: &CellSet, point_offset: u32) {
        self.shapes.extend_from_slice(&other.shapes);
        let base = self.connectivity.len();
        self.connectivity
            .extend(other.connectivity.iter().map(|&p| p + point_offset));
        self.offsets
            .extend(other.offsets[1..].iter().map(|&o| o + base));
    }

    #[inline]
    pub fn num_cells(&self) -> usize {
        self.shapes.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.shapes.is_empty()
    }

    /// Total connectivity length (sum of per-cell arities).
    #[inline]
    pub fn connectivity_len(&self) -> usize {
        self.connectivity.len()
    }

    #[inline]
    pub fn shape(&self, cell: usize) -> CellShape {
        self.shapes[cell]
    }

    /// Point ids of one cell.
    #[inline]
    pub fn cell_points(&self, cell: usize) -> &[u32] {
        &self.connectivity[self.offsets[cell]..self.offsets[cell + 1]]
    }

    /// Iterator over `(shape, point-ids)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (CellShape, &[u32])> + '_ {
        (0..self.num_cells()).map(move |c| (self.shape(c), self.cell_points(c)))
    }

    /// Largest point id referenced, or `None` when empty.
    pub fn max_point_id(&self) -> Option<u32> {
        self.connectivity.iter().copied().max()
    }

    /// Count of cells per shape, for reporting.
    pub fn shape_histogram(&self) -> Vec<(CellShape, usize)> {
        // Pre-sized for the handful of shapes the kernels emit.
        let mut hist: Vec<(CellShape, usize)> = Vec::with_capacity(8);
        for &s in &self.shapes {
            match hist.iter_mut().find(|(h, _)| *h == s) {
                Some((_, n)) => *n += 1,
                None => hist.push((s, 1)),
            }
        }
        hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read_back() {
        let mut cs = CellSet::new();
        cs.push(CellShape::Triangle, &[0, 1, 2]);
        cs.push(CellShape::Line, &[2, 3]);
        cs.push(CellShape::Polygon, &[4, 5, 6, 7, 8]);
        assert_eq!(cs.num_cells(), 3);
        assert_eq!(cs.shape(0), CellShape::Triangle);
        assert_eq!(cs.cell_points(0), &[0, 1, 2]);
        assert_eq!(cs.cell_points(1), &[2, 3]);
        assert_eq!(cs.cell_points(2), &[4, 5, 6, 7, 8]);
        assert_eq!(cs.connectivity_len(), 10);
        assert_eq!(cs.max_point_id(), Some(8));
    }

    #[test]
    #[should_panic]
    fn wrong_arity_panics() {
        let mut cs = CellSet::new();
        cs.push(CellShape::Triangle, &[0, 1]);
    }

    #[test]
    #[should_panic]
    fn degenerate_polygon_panics() {
        let mut cs = CellSet::new();
        cs.push(CellShape::Polygon, &[0, 1]);
    }

    #[test]
    fn append_shifted_remaps_ids() {
        let mut a = CellSet::new();
        a.push(CellShape::Triangle, &[0, 1, 2]);
        let mut b = CellSet::new();
        b.push(CellShape::Triangle, &[0, 1, 2]);
        b.push(CellShape::Line, &[1, 2]);
        a.append_shifted(&b, 3);
        assert_eq!(a.num_cells(), 3);
        assert_eq!(a.cell_points(1), &[3, 4, 5]);
        assert_eq!(a.cell_points(2), &[4, 5]);
    }

    #[test]
    fn iter_matches_indexing() {
        let mut cs = CellSet::new();
        cs.push(CellShape::Vertex, &[9]);
        cs.push(CellShape::Quad, &[0, 1, 2, 3]);
        let collected: Vec<_> = cs.iter().map(|(s, p)| (s, p.to_vec())).collect();
        assert_eq!(collected[0], (CellShape::Vertex, vec![9]));
        assert_eq!(collected[1], (CellShape::Quad, vec![0, 1, 2, 3]));
    }

    #[test]
    fn shape_histogram_counts() {
        let mut cs = CellSet::new();
        cs.push(CellShape::Triangle, &[0, 1, 2]);
        cs.push(CellShape::Triangle, &[1, 2, 3]);
        cs.push(CellShape::Hexahedron, &[0, 1, 2, 3, 4, 5, 6, 7]);
        let hist = cs.shape_histogram();
        assert!(hist.contains(&(CellShape::Triangle, 2)));
        assert!(hist.contains(&(CellShape::Hexahedron, 1)));
    }

    #[test]
    fn empty_set() {
        let cs = CellSet::new();
        assert!(cs.is_empty());
        assert_eq!(cs.max_point_id(), None);
        assert_eq!(cs.iter().count(), 0);
    }
}
