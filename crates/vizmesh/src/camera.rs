//! Pinhole camera with orbit generation for image databases.
//!
//! The paper renders an image database of 50 images per visualization
//! cycle "generated from different camera positions around the data set";
//! [`Camera::orbit`] produces exactly that set of positions.

use crate::bounds::Aabb;
use crate::vec3::Vec3;
use serde::{Deserialize, Serialize};

/// A ray `origin + t * direction` with `direction` normalized.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ray {
    pub origin: Vec3,
    pub direction: Vec3,
}

impl Ray {
    pub fn new(origin: Vec3, direction: Vec3) -> Self {
        Ray {
            origin,
            direction: direction.normalized(),
        }
    }

    /// Point at parameter `t`.
    #[inline]
    pub fn at(&self, t: f64) -> Vec3 {
        self.origin + self.direction * t
    }

    /// Component-wise reciprocal of the direction for slab tests.
    #[inline]
    pub fn inv_direction(&self) -> Vec3 {
        Vec3::new(
            1.0 / self.direction.x,
            1.0 / self.direction.y,
            1.0 / self.direction.z,
        )
    }
}

/// Pinhole camera.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Camera {
    pub position: Vec3,
    pub look_at: Vec3,
    pub up: Vec3,
    /// Vertical field of view in degrees.
    pub fov_y_degrees: f64,
}

impl Camera {
    pub fn new(position: Vec3, look_at: Vec3, up: Vec3, fov_y_degrees: f64) -> Self {
        assert!(
            fov_y_degrees > 0.0 && fov_y_degrees < 180.0,
            "fov must be in (0, 180), got {fov_y_degrees}"
        );
        Camera {
            position,
            look_at,
            up,
            fov_y_degrees,
        }
    }

    /// A camera looking at the center of `bounds` from a distance that
    /// frames the whole box (the default view used by the renderers).
    pub fn framing(bounds: &Aabb) -> Self {
        let center = bounds.center();
        let dist = bounds.diagonal().max(1e-9) * 1.4;
        Camera::new(
            center + Vec3::new(0.4, 0.3, 1.0).normalized() * dist,
            center,
            Vec3::Y,
            45.0,
        )
    }

    /// Orthonormal camera basis `(right, true_up, forward)`.
    pub fn basis(&self) -> (Vec3, Vec3, Vec3) {
        let forward = (self.look_at - self.position).normalized();
        let mut right = forward.cross(self.up).normalized();
        if right == Vec3::ZERO {
            // `up` was parallel to the view direction; pick any right.
            right = forward.cross(Vec3::X).normalized();
            if right == Vec3::ZERO {
                right = forward.cross(Vec3::Y).normalized();
            }
        }
        let true_up = right.cross(forward);
        (right, true_up, forward)
    }

    /// Generate the primary ray through pixel `(x, y)` of a
    /// `width × height` image; pixel centers, y up.
    pub fn pixel_ray(&self, x: usize, y: usize, width: usize, height: usize) -> Ray {
        let (right, up, forward) = self.basis();
        let aspect = width as f64 / height as f64;
        let half_h = (self.fov_y_degrees.to_radians() * 0.5).tan();
        let half_w = half_h * aspect;
        let u = ((x as f64 + 0.5) / width as f64) * 2.0 - 1.0;
        let v = ((y as f64 + 0.5) / height as f64) * 2.0 - 1.0;
        Ray::new(
            self.position,
            forward + right * (u * half_w) + up * (v * half_h),
        )
    }

    /// `count` cameras orbiting the center of `bounds` in the equatorial
    /// plane, all framing the box — the paper's 50-position image
    /// database.
    pub fn orbit(bounds: &Aabb, count: usize) -> Vec<Camera> {
        assert!(count > 0, "orbit needs at least one camera");
        let center = bounds.center();
        let dist = bounds.diagonal().max(1e-9) * 1.4;
        (0..count)
            .map(|i| {
                let theta = i as f64 / count as f64 * std::f64::consts::TAU;
                // Slight elevation so the top of the volume is visible.
                let dir = Vec3::new(theta.cos(), 0.35, theta.sin()).normalized();
                Camera::new(center + dir * dist, center, Vec3::Y, 45.0)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ray_direction_normalized() {
        let r = Ray::new(Vec3::ZERO, Vec3::new(3.0, 4.0, 0.0));
        assert!((r.direction.length() - 1.0).abs() < 1e-12);
        assert!((r.at(5.0) - Vec3::new(3.0, 4.0, 0.0)).length() < 1e-12);
    }

    #[test]
    fn basis_is_orthonormal() {
        let c = Camera::new(Vec3::new(3.0, 2.0, 5.0), Vec3::ZERO, Vec3::Y, 45.0);
        let (r, u, f) = c.basis();
        for v in [r, u, f] {
            assert!((v.length() - 1.0).abs() < 1e-12);
        }
        assert!(r.dot(u).abs() < 1e-12);
        assert!(u.dot(f).abs() < 1e-12);
        assert!(f.dot(r).abs() < 1e-12);
    }

    #[test]
    fn degenerate_up_recovers() {
        let c = Camera::new(Vec3::new(0.0, 5.0, 0.0), Vec3::ZERO, Vec3::Y, 45.0);
        let (r, u, f) = c.basis();
        assert!((r.length() - 1.0).abs() < 1e-9);
        assert!((u.length() - 1.0).abs() < 1e-9);
        assert!((f - Vec3::new(0.0, -1.0, 0.0)).length() < 1e-12);
    }

    #[test]
    fn center_pixel_ray_points_forward() {
        let c = Camera::new(Vec3::new(0.0, 0.0, 5.0), Vec3::ZERO, Vec3::Y, 60.0);
        // With an even number of pixels there is no exact center pixel, so
        // check the mean of the two middle pixels is forward.
        let r1 = c.pixel_ray(3, 3, 8, 8).direction;
        let r2 = c.pixel_ray(4, 4, 8, 8).direction;
        let mean = (r1 + r2).normalized();
        assert!((mean - Vec3::new(0.0, 0.0, -1.0)).length() < 1e-6);
    }

    #[test]
    fn corner_rays_diverge_symmetrically() {
        let c = Camera::new(Vec3::new(0.0, 0.0, 5.0), Vec3::ZERO, Vec3::Y, 60.0);
        let bl = c.pixel_ray(0, 0, 64, 64).direction;
        let tr = c.pixel_ray(63, 63, 64, 64).direction;
        assert!((bl.x + tr.x).abs() < 1e-12);
        assert!((bl.y + tr.y).abs() < 1e-12);
    }

    #[test]
    fn orbit_count_and_framing() {
        let b = Aabb::new(Vec3::ZERO, Vec3::ONE);
        let cams = Camera::orbit(&b, 50);
        assert_eq!(cams.len(), 50);
        let center = b.center();
        let d0 = cams[0].position.distance(center);
        for c in &cams {
            assert!((c.position.distance(center) - d0).abs() < 1e-9);
            assert_eq!(c.look_at, center);
        }
        // All positions distinct.
        for i in 1..cams.len() {
            assert!(cams[i].position.distance(cams[i - 1].position) > 1e-6);
        }
    }

    #[test]
    fn framing_camera_sees_bounds() {
        let b = Aabb::new(Vec3::ZERO, Vec3::ONE);
        let c = Camera::framing(&b);
        let (_, _, f) = c.basis();
        // Forward must point toward the box center.
        let to_center = (b.center() - c.position).normalized();
        assert!(f.dot(to_center) > 0.999);
    }
}
