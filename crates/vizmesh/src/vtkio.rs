//! Legacy VTK (ASCII) export.
//!
//! Every dataset in the workspace can be written as a legacy `.vtk` file
//! and opened in ParaView or VisIt — the tools built on the ecosystem
//! the paper studies. Structured datasets export as
//! `STRUCTURED_POINTS`, unstructured ones as `UNSTRUCTURED_GRID`.

use crate::cells::CellShape;
use crate::dataset::{DataSet, Geometry};
use crate::field::{Association, FieldData};
use std::io::{self, Write};
use std::path::Path;

/// VTK legacy cell-type codes.
fn vtk_cell_type(shape: CellShape) -> u8 {
    match shape {
        CellShape::Vertex => 1,
        CellShape::PolyLine => 4,
        CellShape::Line => 3,
        CellShape::Triangle => 5,
        CellShape::Polygon => 7,
        CellShape::Quad => 9,
        CellShape::Tetra => 10,
        CellShape::Hexahedron => 12,
        CellShape::Pyramid => 14,
        CellShape::Wedge => 13,
    }
}

/// Write `ds` as a legacy ASCII VTK file.
pub fn write_vtk<W: Write>(w: &mut W, ds: &DataSet, title: &str) -> io::Result<()> {
    writeln!(w, "# vtk DataFile Version 3.0")?;
    writeln!(w, "{}", title.lines().next().unwrap_or("vizmesh dataset"))?;
    writeln!(w, "ASCII")?;
    match &ds.geometry {
        Geometry::Uniform(grid) => {
            let [nx, ny, nz] = grid.point_dims();
            let o = grid.origin();
            let s = grid.spacing();
            writeln!(w, "DATASET STRUCTURED_POINTS")?;
            writeln!(w, "DIMENSIONS {nx} {ny} {nz}")?;
            writeln!(w, "ORIGIN {} {} {}", o.x, o.y, o.z)?;
            writeln!(w, "SPACING {} {} {}", s.x, s.y, s.z)?;
        }
        Geometry::Explicit { points, cells } => {
            writeln!(w, "DATASET UNSTRUCTURED_GRID")?;
            writeln!(w, "POINTS {} double", points.len())?;
            for p in points {
                writeln!(w, "{} {} {}", p.x, p.y, p.z)?;
            }
            let total = cells.num_cells() + cells.connectivity_len();
            writeln!(w, "CELLS {} {}", cells.num_cells(), total)?;
            for (_, conn) in cells.iter() {
                write!(w, "{}", conn.len())?;
                for &p in conn {
                    write!(w, " {p}")?;
                }
                writeln!(w)?;
            }
            writeln!(w, "CELL_TYPES {}", cells.num_cells())?;
            for (shape, _) in cells.iter() {
                writeln!(w, "{}", vtk_cell_type(shape))?;
            }
        }
    }

    // Fields, grouped by association; the section header is emitted
    // lazily so empty groups write nothing.
    for association in [Association::Points, Association::Cells] {
        let mut header_written = false;
        for f in ds
            .fields
            .iter()
            .filter(|f| f.association == association && !f.is_empty())
        {
            if !header_written {
                match association {
                    Association::Points => writeln!(w, "POINT_DATA {}", ds.num_points())?,
                    Association::Cells => writeln!(w, "CELL_DATA {}", ds.num_cells())?,
                }
                header_written = true;
            }
            let name = f.name.replace(char::is_whitespace, "_");
            match &f.data {
                FieldData::Scalar(values) => {
                    writeln!(w, "SCALARS {name} double 1")?;
                    writeln!(w, "LOOKUP_TABLE default")?;
                    for v in values {
                        writeln!(w, "{v}")?;
                    }
                }
                FieldData::Vector(values) => {
                    writeln!(w, "VECTORS {name} double")?;
                    for v in values {
                        writeln!(w, "{} {} {}", v.x, v.y, v.z)?;
                    }
                }
            }
        }
    }
    Ok(())
}

/// Convenience: write to a file path.
pub fn save_vtk<P: AsRef<Path>>(path: P, ds: &DataSet, title: &str) -> io::Result<()> {
    let mut f = io::BufWriter::new(std::fs::File::create(path)?);
    write_vtk(&mut f, ds, title)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells::CellSet;
    use crate::field::Field;
    use crate::grid::UniformGrid;
    use crate::vec3::Vec3;

    fn render(ds: &DataSet) -> String {
        let mut out = Vec::new();
        write_vtk(&mut out, ds, "test").unwrap();
        String::from_utf8(out).unwrap()
    }

    #[test]
    fn structured_header_and_dims() {
        let grid = UniformGrid::cube_cells(2);
        let n = grid.num_points();
        let ds = DataSet::uniform(grid).with_field(Field::scalar(
            "energy",
            Association::Points,
            vec![1.5; n],
        ));
        let text = render(&ds);
        assert!(text.starts_with("# vtk DataFile Version 3.0"));
        assert!(text.contains("DATASET STRUCTURED_POINTS"));
        assert!(text.contains("DIMENSIONS 3 3 3"));
        assert!(text.contains("POINT_DATA 27"));
        assert!(text.contains("SCALARS energy double 1"));
        assert_eq!(text.matches("1.5").count(), 27);
    }

    #[test]
    fn unstructured_cells_and_types() {
        let points = vec![Vec3::ZERO, Vec3::X, Vec3::Y, Vec3::Z];
        let mut cells = CellSet::new();
        cells.push(CellShape::Triangle, &[0, 1, 2]);
        cells.push(CellShape::Tetra, &[0, 1, 2, 3]);
        let mut ds = DataSet::explicit(points, cells);
        ds.add_field(Field::scalar("v", Association::Cells, vec![7.0, 8.0]));
        let text = render(&ds);
        assert!(text.contains("DATASET UNSTRUCTURED_GRID"));
        assert!(text.contains("POINTS 4 double"));
        // CELLS count and size: 2 cells, 3+1 + 4+1 entries.
        assert!(text.contains("CELLS 2 9"));
        assert!(text.contains("CELL_TYPES 2"));
        // Triangle = 5, tetra = 10, on their own lines.
        let after_types = text.split("CELL_TYPES 2").nth(1).unwrap();
        let types: Vec<&str> = after_types.trim().lines().take(2).collect();
        assert_eq!(types, vec!["5", "10"]);
        assert!(text.contains("CELL_DATA 2"));
    }

    #[test]
    fn vector_fields_export() {
        let grid = UniformGrid::cube_cells(1);
        let n = grid.num_points();
        let ds = DataSet::uniform(grid).with_field(Field::vector(
            "velocity",
            Association::Points,
            vec![Vec3::new(1.0, 2.0, 3.0); n],
        ));
        let text = render(&ds);
        assert!(text.contains("VECTORS velocity double"));
        assert!(text.contains("1 2 3"));
    }

    #[test]
    fn field_names_are_sanitized() {
        let grid = UniformGrid::cube_cells(1);
        let n = grid.num_points();
        let ds = DataSet::uniform(grid).with_field(Field::scalar(
            "my field",
            Association::Points,
            vec![0.0; n],
        ));
        let text = render(&ds);
        assert!(text.contains("SCALARS my_field double 1"));
    }

    /// Golden bytes: a structured export is pinned line-for-line, so any
    /// formatting drift (float printing, header order, grouping) fails
    /// loudly rather than silently changing what ParaView ingests.
    #[test]
    fn structured_golden_bytes() {
        let grid = UniformGrid::cube_cells(1);
        let n = grid.num_points();
        let vals: Vec<f64> = (0..n).map(|i| i as f64 * 0.5).collect();
        let ds = DataSet::uniform(grid)
            .with_field(Field::scalar("e", Association::Points, vals))
            .with_field(Field::scalar("c", Association::Cells, vec![7.25]));
        let mut out = Vec::new();
        write_vtk(&mut out, &ds, "golden\nsecond line ignored").unwrap();
        let expected = "\
# vtk DataFile Version 3.0
golden
ASCII
DATASET STRUCTURED_POINTS
DIMENSIONS 2 2 2
ORIGIN 0 0 0
SPACING 1 1 1
POINT_DATA 8
SCALARS e double 1
LOOKUP_TABLE default
0
0.5
1
1.5
2
2.5
3
3.5
CELL_DATA 1
SCALARS c double 1
LOOKUP_TABLE default
7.25
";
        assert_eq!(String::from_utf8(out).unwrap(), expected);
    }

    /// Golden bytes for the unstructured path: points, CSR cells, cell
    /// types, and a vector field, pinned exactly.
    #[test]
    fn unstructured_golden_bytes() {
        let points = vec![Vec3::ZERO, Vec3::X, Vec3::Y, Vec3::new(0.25, 0.5, 1.0)];
        let mut cells = CellSet::new();
        cells.push(CellShape::Triangle, &[0, 1, 2]);
        cells.push(CellShape::PolyLine, &[0, 1, 3]);
        let ds = DataSet::explicit(points, cells).with_field(Field::vector(
            "velocity",
            Association::Points,
            vec![Vec3::new(1.0, 2.0, 3.0); 4],
        ));
        let mut out = Vec::new();
        write_vtk(&mut out, &ds, "golden").unwrap();
        let expected = "\
# vtk DataFile Version 3.0
golden
ASCII
DATASET UNSTRUCTURED_GRID
POINTS 4 double
0 0 0
1 0 0
0 1 0
0.25 0.5 1
CELLS 2 8
3 0 1 2
3 0 1 3
CELL_TYPES 2
5
4
POINT_DATA 4
VECTORS velocity double
1 2 3
1 2 3
1 2 3
1 2 3
";
        assert_eq!(String::from_utf8(out).unwrap(), expected);
    }

    #[test]
    fn polyline_exports_with_arity() {
        let points = vec![Vec3::ZERO, Vec3::X, Vec3::new(2.0, 0.0, 0.0)];
        let mut cells = CellSet::new();
        cells.push(CellShape::PolyLine, &[0, 1, 2]);
        let ds = DataSet::explicit(points, cells);
        let text = render(&ds);
        assert!(text.contains("CELLS 1 4"));
        assert!(text.contains("\n3 0 1 2\n"));
        assert!(text
            .split("CELL_TYPES 1")
            .nth(1)
            .unwrap()
            .trim()
            .starts_with('4'));
    }
}
