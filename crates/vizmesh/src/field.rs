//! Named data arrays attached to mesh points or cells.

use crate::vec3::Vec3;
use serde::{Deserialize, Serialize};

/// Whether a field's values live on mesh points or on cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Association {
    Points,
    Cells,
}

/// Storage for a field: scalar (`f64`) or vector ([`Vec3`]) arrays.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FieldData {
    Scalar(Vec<f64>),
    Vector(Vec<Vec3>),
}

impl FieldData {
    pub fn len(&self) -> usize {
        match self {
            FieldData::Scalar(v) => v.len(),
            FieldData::Vector(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes of payload, used by the instrumentation layer.
    pub fn num_bytes(&self) -> u64 {
        match self {
            FieldData::Scalar(v) => (v.len() * std::mem::size_of::<f64>()) as u64,
            FieldData::Vector(v) => (v.len() * std::mem::size_of::<Vec3>()) as u64,
        }
    }
}

/// A named, associated data array.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Field {
    pub name: String,
    pub association: Association,
    pub data: FieldData,
}

impl Field {
    pub fn scalar(name: impl Into<String>, association: Association, values: Vec<f64>) -> Self {
        Field {
            name: name.into(),
            association,
            data: FieldData::Scalar(values),
        }
    }

    pub fn vector(name: impl Into<String>, association: Association, values: Vec<Vec3>) -> Self {
        Field {
            name: name.into(),
            association,
            data: FieldData::Vector(values),
        }
    }

    /// Scalar values, or `None` if this is a vector field.
    pub fn as_scalar(&self) -> Option<&[f64]> {
        match &self.data {
            FieldData::Scalar(v) => Some(v),
            FieldData::Vector(_) => None,
        }
    }

    /// Vector values, or `None` if this is a scalar field.
    pub fn as_vector(&self) -> Option<&[Vec3]> {
        match &self.data {
            FieldData::Vector(v) => Some(v),
            FieldData::Scalar(_) => None,
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// `(min, max)` of a scalar field; `None` for vector or empty fields.
    pub fn scalar_range(&self) -> Option<(f64, f64)> {
        let v = self.as_scalar()?;
        if v.is_empty() {
            return None;
        }
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &x in v {
            if x < lo {
                lo = x;
            }
            if x > hi {
                hi = x;
            }
        }
        Some((lo, hi))
    }

    /// Magnitude range of a vector field; `None` for scalar or empty fields.
    pub fn magnitude_range(&self) -> Option<(f64, f64)> {
        let v = self.as_vector()?;
        if v.is_empty() {
            return None;
        }
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for p in v {
            let m = p.length();
            if m < lo {
                lo = m;
            }
            if m > hi {
                hi = m;
            }
        }
        Some((lo, hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_accessors() {
        let f = Field::scalar("energy", Association::Points, vec![1.0, 3.0, -2.0]);
        assert_eq!(f.len(), 3);
        assert_eq!(f.as_scalar().unwrap()[1], 3.0);
        assert!(f.as_vector().is_none());
        assert_eq!(f.scalar_range(), Some((-2.0, 3.0)));
    }

    #[test]
    fn vector_accessors() {
        let f = Field::vector(
            "velocity",
            Association::Points,
            vec![Vec3::X, Vec3::new(0.0, 3.0, 4.0)],
        );
        assert!(f.as_scalar().is_none());
        assert_eq!(f.as_vector().unwrap().len(), 2);
        let (lo, hi) = f.magnitude_range().unwrap();
        assert!((lo - 1.0).abs() < 1e-12);
        assert!((hi - 5.0).abs() < 1e-12);
    }

    #[test]
    fn empty_ranges_are_none() {
        let f = Field::scalar("x", Association::Cells, vec![]);
        assert!(f.scalar_range().is_none());
        let g = Field::vector("v", Association::Cells, vec![]);
        assert!(g.magnitude_range().is_none());
    }

    #[test]
    fn num_bytes() {
        let f = Field::scalar("x", Association::Points, vec![0.0; 10]);
        assert_eq!(f.data.num_bytes(), 80);
        let g = Field::vector("v", Association::Points, vec![Vec3::ZERO; 10]);
        assert_eq!(g.data.num_bytes(), 240);
    }
}
