//! Datasets: coordinates + cells + fields.

use crate::bounds::Aabb;
use crate::cells::CellSet;
use crate::field::{Association, Field};
use crate::grid::UniformGrid;
use crate::vec3::Vec3;
use serde::{Deserialize, Serialize};

/// Coordinate/topology backing of a [`DataSet`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Geometry {
    /// Implicit coordinates and implicit hexahedral topology.
    Uniform(UniformGrid),
    /// Explicit points and explicit connectivity (filter outputs).
    Explicit { points: Vec<Vec3>, cells: CellSet },
}

/// A dataset: geometry plus any number of named fields.
///
/// Mirrors `vtkm::cont::DataSet` at the granularity the study needs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataSet {
    pub geometry: Geometry,
    pub fields: Vec<Field>,
}

impl DataSet {
    /// Structured dataset over a uniform grid, no fields yet.
    pub fn uniform(grid: UniformGrid) -> Self {
        DataSet {
            geometry: Geometry::Uniform(grid),
            fields: Vec::new(),
        }
    }

    /// Unstructured dataset from explicit points/cells.
    pub fn explicit(points: Vec<Vec3>, cells: CellSet) -> Self {
        if let Some(max) = cells.max_point_id() {
            assert!(
                (max as usize) < points.len(),
                "connectivity references point {max} but only {} points exist",
                points.len()
            );
        }
        DataSet {
            geometry: Geometry::Explicit { points, cells },
            fields: Vec::new(),
        }
    }

    /// The uniform grid, if structured.
    pub fn as_uniform(&self) -> Option<&UniformGrid> {
        match &self.geometry {
            Geometry::Uniform(g) => Some(g),
            Geometry::Explicit { .. } => None,
        }
    }

    /// Explicit points/cells, if unstructured.
    pub fn as_explicit(&self) -> Option<(&[Vec3], &CellSet)> {
        match &self.geometry {
            Geometry::Uniform(_) => None,
            Geometry::Explicit { points, cells } => Some((points, cells)),
        }
    }

    pub fn num_points(&self) -> usize {
        match &self.geometry {
            Geometry::Uniform(g) => g.num_points(),
            Geometry::Explicit { points, .. } => points.len(),
        }
    }

    pub fn num_cells(&self) -> usize {
        match &self.geometry {
            Geometry::Uniform(g) => g.num_cells(),
            Geometry::Explicit { cells, .. } => cells.num_cells(),
        }
    }

    /// World-space coordinates of point `id`.
    pub fn point_coord(&self, id: usize) -> Vec3 {
        match &self.geometry {
            Geometry::Uniform(g) => g.point_coord_id(id),
            Geometry::Explicit { points, .. } => points[id],
        }
    }

    /// Spatial bounds of the geometry (empty box for empty explicit sets).
    pub fn bounds(&self) -> Aabb {
        match &self.geometry {
            Geometry::Uniform(g) => g.bounds(),
            Geometry::Explicit { points, .. } => Aabb::from_points(points.iter().copied()),
        }
    }

    /// Add a field, replacing any existing field with the same name and
    /// association.
    ///
    /// # Panics
    /// If the field length does not match the point/cell count.
    pub fn add_field(&mut self, field: Field) {
        let expect = match field.association {
            Association::Points => self.num_points(),
            Association::Cells => self.num_cells(),
        };
        assert_eq!(
            field.len(),
            expect,
            "field '{}' has {} values but the dataset has {} {:?}",
            field.name,
            field.len(),
            expect,
            field.association
        );
        self.fields
            .retain(|f| !(f.name == field.name && f.association == field.association));
        self.fields.push(field);
    }

    /// Builder-style [`Self::add_field`].
    pub fn with_field(mut self, field: Field) -> Self {
        self.add_field(field);
        self
    }

    /// Look up a field by name (either association).
    pub fn field(&self, name: &str) -> Option<&Field> {
        self.fields.iter().find(|f| f.name == name)
    }

    /// Look up a field by name and association.
    pub fn field_with(&self, name: &str, association: Association) -> Option<&Field> {
        self.fields
            .iter()
            .find(|f| f.name == name && f.association == association)
    }

    /// Scalar values of a point field (convenience for the filters).
    pub fn point_scalars(&self, name: &str) -> Option<&[f64]> {
        self.field_with(name, Association::Points)?.as_scalar()
    }

    /// Vector values of a point field.
    pub fn point_vectors(&self, name: &str) -> Option<&[Vec3]> {
        self.field_with(name, Association::Points)?.as_vector()
    }

    /// Scalar values of a cell field.
    pub fn cell_scalars(&self, name: &str) -> Option<&[f64]> {
        self.field_with(name, Association::Cells)?.as_scalar()
    }

    /// Drop points not referenced by any cell and remap connectivity.
    /// No-op for structured datasets. Point fields are compacted in step.
    pub fn compact_points(&mut self) {
        let Geometry::Explicit { points, cells } = &mut self.geometry else {
            return;
        };
        let mut used = vec![false; points.len()];
        for c in 0..cells.num_cells() {
            for &p in cells.cell_points(c) {
                used[p as usize] = true;
            }
        }
        if used.iter().all(|&u| u) {
            return;
        }
        let mut remap = vec![u32::MAX; points.len()];
        let mut new_points = Vec::with_capacity(used.iter().filter(|&&u| u).count());
        for (old, &u) in used.iter().enumerate() {
            if u {
                remap[old] = new_points.len() as u32;
                new_points.push(points[old]);
            }
        }
        let mut new_cells = CellSet::with_capacity(cells.num_cells(), cells.connectivity_len());
        let mut conn: Vec<u32> = Vec::with_capacity(8);
        for c in 0..cells.num_cells() {
            conn.clear();
            conn.extend(cells.cell_points(c).iter().map(|&p| remap[p as usize]));
            new_cells.push(cells.shape(c), &conn);
        }
        *points = new_points;
        *cells = new_cells;
        for f in &mut self.fields {
            if f.association == Association::Points {
                match &mut f.data {
                    crate::field::FieldData::Scalar(v) => {
                        let mut out = Vec::with_capacity(points.len());
                        for (old, &u) in used.iter().enumerate() {
                            if u {
                                out.push(v[old]);
                            }
                        }
                        *v = out;
                    }
                    crate::field::FieldData::Vector(v) => {
                        let mut out = Vec::with_capacity(points.len());
                        for (old, &u) in used.iter().enumerate() {
                            if u {
                                out.push(v[old]);
                            }
                        }
                        *v = out;
                    }
                }
            }
        }
    }

    /// Total bytes across geometry and fields — the "data set size" used
    /// by the working-set instrumentation.
    pub fn payload_bytes(&self) -> u64 {
        let geom = match &self.geometry {
            // Implicit coordinates: only the scalar payload counts, which
            // matches how the paper sizes CloverLeaf data (doubles/cell).
            Geometry::Uniform(_) => 0u64,
            Geometry::Explicit { points, cells } => {
                (points.len() * std::mem::size_of::<Vec3>()) as u64
                    + (cells.connectivity_len() * std::mem::size_of::<u32>()) as u64
            }
        };
        geom + self.fields.iter().map(|f| f.data.num_bytes()).sum::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells::CellShape;

    fn tri_dataset() -> DataSet {
        let points = vec![Vec3::ZERO, Vec3::X, Vec3::Y];
        let mut cells = CellSet::new();
        cells.push(CellShape::Triangle, &[0, 1, 2]);
        DataSet::explicit(points, cells)
    }

    #[test]
    fn uniform_counts() {
        let ds = DataSet::uniform(UniformGrid::cube_cells(4));
        assert_eq!(ds.num_cells(), 64);
        assert_eq!(ds.num_points(), 125);
        assert!(ds.as_uniform().is_some());
        assert!(ds.as_explicit().is_none());
    }

    #[test]
    fn explicit_counts_and_bounds() {
        let ds = tri_dataset();
        assert_eq!(ds.num_points(), 3);
        assert_eq!(ds.num_cells(), 1);
        let b = ds.bounds();
        assert_eq!(b.min, Vec3::ZERO);
        assert_eq!(b.max, Vec3::new(1.0, 1.0, 0.0));
    }

    #[test]
    #[should_panic]
    fn explicit_with_dangling_connectivity_panics() {
        let mut cells = CellSet::new();
        cells.push(CellShape::Triangle, &[0, 1, 5]);
        let _ = DataSet::explicit(vec![Vec3::ZERO, Vec3::X, Vec3::Y], cells);
    }

    #[test]
    fn add_and_replace_field() {
        let mut ds = tri_dataset();
        ds.add_field(Field::scalar("e", Association::Points, vec![1.0, 2.0, 3.0]));
        ds.add_field(Field::scalar("e", Association::Points, vec![4.0, 5.0, 6.0]));
        assert_eq!(ds.fields.len(), 1);
        assert_eq!(ds.point_scalars("e").unwrap(), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn same_name_different_association_coexist() {
        let mut ds = tri_dataset();
        ds.add_field(Field::scalar("e", Association::Points, vec![1.0, 2.0, 3.0]));
        ds.add_field(Field::scalar("e", Association::Cells, vec![9.0]));
        assert_eq!(ds.fields.len(), 2);
        assert_eq!(ds.cell_scalars("e").unwrap(), &[9.0]);
        assert_eq!(ds.point_scalars("e").unwrap(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic]
    fn wrong_length_field_panics() {
        let mut ds = tri_dataset();
        ds.add_field(Field::scalar("e", Association::Points, vec![1.0]));
    }

    #[test]
    fn point_coord_dispatch() {
        let ds = DataSet::uniform(UniformGrid::cube_cells(2));
        assert_eq!(ds.point_coord(0), Vec3::ZERO);
        let tri = tri_dataset();
        assert_eq!(tri.point_coord(1), Vec3::X);
    }

    #[test]
    fn compact_points_drops_unreferenced() {
        let points = vec![Vec3::ZERO, Vec3::X, Vec3::Y, Vec3::Z, Vec3::ONE];
        let mut cells = CellSet::new();
        cells.push(CellShape::Triangle, &[0, 2, 4]);
        let mut ds = DataSet::explicit(points, cells);
        ds.add_field(Field::scalar(
            "v",
            Association::Points,
            vec![0.0, 1.0, 2.0, 3.0, 4.0],
        ));
        ds.compact_points();
        assert_eq!(ds.num_points(), 3);
        let (pts, cs) = ds.as_explicit().unwrap();
        assert_eq!(pts, &[Vec3::ZERO, Vec3::Y, Vec3::ONE]);
        assert_eq!(cs.cell_points(0), &[0, 1, 2]);
        assert_eq!(ds.point_scalars("v").unwrap(), &[0.0, 2.0, 4.0]);
    }

    #[test]
    fn compact_points_noop_when_all_used() {
        let mut ds = tri_dataset();
        let before = ds.clone();
        ds.compact_points();
        assert_eq!(ds, before);
    }

    #[test]
    fn payload_bytes_counts_fields() {
        let g = UniformGrid::cube_cells(2);
        let n = g.num_points();
        let ds =
            DataSet::uniform(g).with_field(Field::scalar("e", Association::Points, vec![0.0; n]));
        assert_eq!(ds.payload_bytes(), (n * 8) as u64);
    }
}
