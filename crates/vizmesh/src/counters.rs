//! Kernel work instrumentation.
//!
//! Every visualization / simulation kernel in the workspace fills in a
//! [`WorkCounters`] record while it runs: how many domain items it
//! processed, an estimate of the instructions and floating-point operations
//! it retired, and how many bytes it moved. The `vizpower` crate translates
//! these measured counts into a workload for the simulated processor — the
//! counts are *observed from real executions*, only the hardware response
//! is modeled.

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign};

/// Additive work counters for one kernel execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct WorkCounters {
    /// Domain items processed (cells classified, rays traced, particle
    /// steps taken, ...). Defines the paper's elements/sec rate.
    pub items: u64,
    /// Estimated retired instructions (all kinds).
    pub instructions: u64,
    /// Floating-point operations (a subset of `instructions`).
    pub flops: u64,
    /// Bytes read from arrays.
    pub bytes_read: u64,
    /// Bytes written to arrays.
    pub bytes_written: u64,
    /// Bytes of data the kernel revisits (hot working set); drives the
    /// LLC capacity model. Combined with `max` on merge, not `+`.
    pub working_set_bytes: u64,
}

impl WorkCounters {
    pub fn new() -> Self {
        Self::default()
    }

    /// Total bytes moved.
    #[inline]
    pub fn bytes_total(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }

    /// Flops per byte moved; 0 when no traffic.
    pub fn arithmetic_intensity(&self) -> f64 {
        let b = self.bytes_total();
        if b == 0 {
            0.0
        } else {
            self.flops as f64 / b as f64
        }
    }

    /// Fraction of instructions that are floating-point.
    pub fn fp_fraction(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            (self.flops as f64 / self.instructions as f64).min(1.0)
        }
    }

    /// Record `n` items each costing `instr` instructions, `flops` flops,
    /// `read`/`written` bytes.
    pub fn tally(&mut self, n: u64, instr: u64, flops: u64, read: u64, written: u64) {
        self.items += n;
        self.instructions += n * instr;
        self.flops += n * flops;
        self.bytes_read += n * read;
        self.bytes_written += n * written;
    }

    /// Merge another counter set produced by a parallel partition of the
    /// same kernel: sums everything except `working_set_bytes`, which the
    /// partitions share (max).
    pub fn merge(&mut self, o: &WorkCounters) {
        self.items += o.items;
        self.instructions += o.instructions;
        self.flops += o.flops;
        self.bytes_read += o.bytes_read;
        self.bytes_written += o.bytes_written;
        self.working_set_bytes = self.working_set_bytes.max(o.working_set_bytes);
    }
}

impl Add for WorkCounters {
    type Output = WorkCounters;
    fn add(mut self, o: WorkCounters) -> WorkCounters {
        self.merge(&o);
        self
    }
}

impl AddAssign for WorkCounters {
    fn add_assign(&mut self, o: WorkCounters) {
        self.merge(&o);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tally_accumulates_per_item() {
        let mut c = WorkCounters::new();
        c.tally(10, 100, 20, 64, 8);
        assert_eq!(c.items, 10);
        assert_eq!(c.instructions, 1000);
        assert_eq!(c.flops, 200);
        assert_eq!(c.bytes_read, 640);
        assert_eq!(c.bytes_written, 80);
        assert_eq!(c.bytes_total(), 720);
    }

    #[test]
    fn merge_sums_but_maxes_working_set() {
        let mut a = WorkCounters {
            items: 1,
            instructions: 10,
            flops: 5,
            bytes_read: 100,
            bytes_written: 10,
            working_set_bytes: 1000,
        };
        let b = WorkCounters {
            items: 2,
            instructions: 20,
            flops: 1,
            bytes_read: 50,
            bytes_written: 5,
            working_set_bytes: 500,
        };
        a.merge(&b);
        assert_eq!(a.items, 3);
        assert_eq!(a.instructions, 30);
        assert_eq!(a.working_set_bytes, 1000);
    }

    #[test]
    fn derived_metrics() {
        let c = WorkCounters {
            items: 1,
            instructions: 100,
            flops: 50,
            bytes_read: 20,
            bytes_written: 5,
            working_set_bytes: 0,
        };
        assert!((c.arithmetic_intensity() - 2.0).abs() < 1e-12);
        assert!((c.fp_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_counters_have_zero_derived() {
        let c = WorkCounters::new();
        assert_eq!(c.arithmetic_intensity(), 0.0);
        assert_eq!(c.fp_fraction(), 0.0);
    }

    #[test]
    fn add_operator_matches_merge() {
        let a = WorkCounters {
            items: 1,
            instructions: 2,
            flops: 3,
            bytes_read: 4,
            bytes_written: 5,
            working_set_bytes: 6,
        };
        let sum = a + a;
        assert_eq!(sum.items, 2);
        assert_eq!(sum.working_set_bytes, 6);
    }
}
