//! Axis-aligned uniform structured grids of hexahedral cells.

use crate::bounds::Aabb;
use crate::vec3::Vec3;
use serde::{Deserialize, Serialize};

/// A uniform (regular) structured grid.
///
/// The grid is defined by its **point** dimensions `(nx, ny, nz)`, an
/// origin, and a per-axis spacing. Cells are the hexahedra between
/// neighbouring points, so a grid described in the paper as "128³ cells"
/// has point dimensions 129³.
///
/// Point and cell ids are linearized x-fastest:
/// `id = x + nx * (y + ny * z)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UniformGrid {
    point_dims: [usize; 3],
    origin: Vec3,
    spacing: Vec3,
}

impl UniformGrid {
    /// Create a grid from **point** dimensions.
    ///
    /// # Panics
    /// If any dimension is < 2 or any spacing component is not positive.
    pub fn new(point_dims: [usize; 3], origin: Vec3, spacing: Vec3) -> Self {
        assert!(
            point_dims.iter().all(|&d| d >= 2),
            "uniform grid needs at least 2 points per axis, got {point_dims:?}"
        );
        assert!(
            spacing.x > 0.0 && spacing.y > 0.0 && spacing.z > 0.0,
            "spacing must be positive, got {spacing:?}"
        );
        UniformGrid {
            point_dims,
            origin,
            spacing,
        }
    }

    /// Create a grid with `n³` **cells** spanning the unit cube, the shape
    /// used throughout the paper (`n` ∈ {32, 64, 128, 256}).
    pub fn cube_cells(n: usize) -> Self {
        assert!(n >= 1, "need at least one cell per axis");
        let d = n + 1;
        UniformGrid::new([d, d, d], Vec3::ZERO, Vec3::splat(1.0 / n as f64))
    }

    /// Create a grid from **cell** dimensions over a given box.
    pub fn from_cell_dims(cell_dims: [usize; 3], bounds: Aabb) -> Self {
        assert!(cell_dims.iter().all(|&d| d >= 1));
        let e = bounds.extent();
        UniformGrid::new(
            [cell_dims[0] + 1, cell_dims[1] + 1, cell_dims[2] + 1],
            bounds.min,
            Vec3::new(
                e.x / cell_dims[0] as f64,
                e.y / cell_dims[1] as f64,
                e.z / cell_dims[2] as f64,
            ),
        )
    }

    #[inline]
    pub fn point_dims(&self) -> [usize; 3] {
        self.point_dims
    }

    #[inline]
    pub fn cell_dims(&self) -> [usize; 3] {
        [
            self.point_dims[0] - 1,
            self.point_dims[1] - 1,
            self.point_dims[2] - 1,
        ]
    }

    #[inline]
    pub fn origin(&self) -> Vec3 {
        self.origin
    }

    #[inline]
    pub fn spacing(&self) -> Vec3 {
        self.spacing
    }

    #[inline]
    pub fn num_points(&self) -> usize {
        self.point_dims[0] * self.point_dims[1] * self.point_dims[2]
    }

    #[inline]
    pub fn num_cells(&self) -> usize {
        let [cx, cy, cz] = self.cell_dims();
        cx * cy * cz
    }

    /// Bounding box of the whole grid.
    pub fn bounds(&self) -> Aabb {
        let [cx, cy, cz] = self.cell_dims();
        let far = self.origin
            + Vec3::new(
                self.spacing.x * cx as f64,
                self.spacing.y * cy as f64,
                self.spacing.z * cz as f64,
            );
        Aabb::new(self.origin, far)
    }

    /// Linear point id from (i, j, k).
    #[inline]
    pub fn point_id(&self, i: usize, j: usize, k: usize) -> usize {
        debug_assert!(i < self.point_dims[0] && j < self.point_dims[1] && k < self.point_dims[2]);
        i + self.point_dims[0] * (j + self.point_dims[1] * k)
    }

    /// Inverse of [`Self::point_id`].
    #[inline]
    pub fn point_ijk(&self, id: usize) -> [usize; 3] {
        let nx = self.point_dims[0];
        let ny = self.point_dims[1];
        [id % nx, (id / nx) % ny, id / (nx * ny)]
    }

    /// Linear cell id from (i, j, k).
    #[inline]
    pub fn cell_id(&self, i: usize, j: usize, k: usize) -> usize {
        let [cx, cy, _cz] = self.cell_dims();
        debug_assert!(i < cx && j < cy);
        i + cx * (j + cy * k)
    }

    /// Inverse of [`Self::cell_id`].
    #[inline]
    pub fn cell_ijk(&self, id: usize) -> [usize; 3] {
        let [cx, cy, _cz] = self.cell_dims();
        [id % cx, (id / cx) % cy, id / (cx * cy)]
    }

    /// World-space coordinates of a point.
    #[inline]
    pub fn point_coord(&self, i: usize, j: usize, k: usize) -> Vec3 {
        self.origin
            + Vec3::new(
                self.spacing.x * i as f64,
                self.spacing.y * j as f64,
                self.spacing.z * k as f64,
            )
    }

    /// World-space coordinates of a point by linear id.
    #[inline]
    pub fn point_coord_id(&self, id: usize) -> Vec3 {
        let [i, j, k] = self.point_ijk(id);
        self.point_coord(i, j, k)
    }

    /// Center of a cell.
    #[inline]
    pub fn cell_center(&self, cell: usize) -> Vec3 {
        let [i, j, k] = self.cell_ijk(cell);
        self.point_coord(i, j, k) + self.spacing * 0.5
    }

    /// The eight point ids at the corners of a cell, in VTK hexahedron
    /// order: bottom face counter-clockwise (looking down -z), then top.
    ///
    /// ```text
    ///        7-------6
    ///       /|      /|        z
    ///      4-------5 |        | y
    ///      | 3-----|-2        |/
    ///      |/      |/         +--x
    ///      0-------1
    /// ```
    #[inline]
    pub fn cell_point_ids(&self, cell: usize) -> [usize; 8] {
        let [i, j, k] = self.cell_ijk(cell);
        [
            self.point_id(i, j, k),
            self.point_id(i + 1, j, k),
            self.point_id(i + 1, j + 1, k),
            self.point_id(i, j + 1, k),
            self.point_id(i, j, k + 1),
            self.point_id(i + 1, j, k + 1),
            self.point_id(i + 1, j + 1, k + 1),
            self.point_id(i, j + 1, k + 1),
        ]
    }

    /// World-space corner coordinates matching [`Self::cell_point_ids`].
    pub fn cell_corners(&self, cell: usize) -> [Vec3; 8] {
        let [i, j, k] = self.cell_ijk(cell);
        let p0 = self.point_coord(i, j, k);
        let s = self.spacing;
        [
            p0,
            p0 + Vec3::new(s.x, 0.0, 0.0),
            p0 + Vec3::new(s.x, s.y, 0.0),
            p0 + Vec3::new(0.0, s.y, 0.0),
            p0 + Vec3::new(0.0, 0.0, s.z),
            p0 + Vec3::new(s.x, 0.0, s.z),
            p0 + Vec3::new(s.x, s.y, s.z),
            p0 + Vec3::new(0.0, s.y, s.z),
        ]
    }

    /// Cell containing world point `p`, or `None` if outside the grid.
    pub fn locate_cell(&self, p: Vec3) -> Option<usize> {
        let rel = p - self.origin;
        let [cx, cy, cz] = self.cell_dims();
        let fx = rel.x / self.spacing.x;
        let fy = rel.y / self.spacing.y;
        let fz = rel.z / self.spacing.z;
        if fx < 0.0 || fy < 0.0 || fz < 0.0 {
            return None;
        }
        // Points exactly on the far boundary belong to the last cell.
        let i = (fx as usize).min(cx.checked_sub(1)?);
        let j = (fy as usize).min(cy.checked_sub(1)?);
        let k = (fz as usize).min(cz.checked_sub(1)?);
        if fx > cx as f64 || fy > cy as f64 || fz > cz as f64 {
            return None;
        }
        Some(self.cell_id(i, j, k))
    }

    /// Trilinear interpolation of a point-centered scalar field at world
    /// point `p`. Returns `None` outside the grid or when `values` has the
    /// wrong length.
    pub fn sample_scalar(&self, values: &[f64], p: Vec3) -> Option<f64> {
        if values.len() != self.num_points() {
            return None;
        }
        let cell = self.locate_cell(p)?;
        let [i, j, k] = self.cell_ijk(cell);
        let p0 = self.point_coord(i, j, k);
        let t = Vec3::new(
            ((p.x - p0.x) / self.spacing.x).clamp(0.0, 1.0),
            ((p.y - p0.y) / self.spacing.y).clamp(0.0, 1.0),
            ((p.z - p0.z) / self.spacing.z).clamp(0.0, 1.0),
        );
        let ids = self.cell_point_ids(cell);
        let v = |n: usize| values[ids[n]];
        // Interpolate along x on the four edges, then y, then z.
        let c00 = v(0) + (v(1) - v(0)) * t.x;
        let c10 = v(3) + (v(2) - v(3)) * t.x;
        let c01 = v(4) + (v(5) - v(4)) * t.x;
        let c11 = v(7) + (v(6) - v(7)) * t.x;
        let c0 = c00 + (c10 - c00) * t.y;
        let c1 = c01 + (c11 - c01) * t.y;
        Some(c0 + (c1 - c0) * t.z)
    }

    /// Trilinear interpolation of a point-centered vector field at `p`.
    pub fn sample_vector(&self, values: &[Vec3], p: Vec3) -> Option<Vec3> {
        if values.len() != self.num_points() {
            return None;
        }
        let cell = self.locate_cell(p)?;
        let [i, j, k] = self.cell_ijk(cell);
        let p0 = self.point_coord(i, j, k);
        let t = Vec3::new(
            ((p.x - p0.x) / self.spacing.x).clamp(0.0, 1.0),
            ((p.y - p0.y) / self.spacing.y).clamp(0.0, 1.0),
            ((p.z - p0.z) / self.spacing.z).clamp(0.0, 1.0),
        );
        let ids = self.cell_point_ids(cell);
        let v = |n: usize| values[ids[n]];
        let c00 = v(0).lerp(v(1), t.x);
        let c10 = v(3).lerp(v(2), t.x);
        let c01 = v(4).lerp(v(5), t.x);
        let c11 = v(7).lerp(v(6), t.x);
        let c0 = c00.lerp(c10, t.y);
        let c1 = c01.lerp(c11, t.y);
        Some(c0.lerp(c1, t.z))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cube_cells_dimensions() {
        let g = UniformGrid::cube_cells(32);
        assert_eq!(g.cell_dims(), [32, 32, 32]);
        assert_eq!(g.point_dims(), [33, 33, 33]);
        assert_eq!(g.num_cells(), 32 * 32 * 32);
        assert_eq!(g.num_points(), 33 * 33 * 33);
        let b = g.bounds();
        assert!((b.max - Vec3::ONE).length() < 1e-12);
    }

    #[test]
    fn point_id_round_trip() {
        let g = UniformGrid::new([4, 5, 6], Vec3::ZERO, Vec3::ONE);
        for k in 0..6 {
            for j in 0..5 {
                for i in 0..4 {
                    let id = g.point_id(i, j, k);
                    assert_eq!(g.point_ijk(id), [i, j, k]);
                }
            }
        }
    }

    #[test]
    fn cell_id_round_trip() {
        let g = UniformGrid::new([4, 5, 6], Vec3::ZERO, Vec3::ONE);
        for id in 0..g.num_cells() {
            let [i, j, k] = g.cell_ijk(id);
            assert_eq!(g.cell_id(i, j, k), id);
        }
    }

    #[test]
    fn cell_point_ids_are_corners() {
        let g = UniformGrid::cube_cells(2);
        let ids = g.cell_point_ids(0);
        // First cell corners: combinations of {0,1}³ in VTK order.
        assert_eq!(ids[0], g.point_id(0, 0, 0));
        assert_eq!(ids[1], g.point_id(1, 0, 0));
        assert_eq!(ids[2], g.point_id(1, 1, 0));
        assert_eq!(ids[3], g.point_id(0, 1, 0));
        assert_eq!(ids[6], g.point_id(1, 1, 1));
    }

    #[test]
    fn locate_cell_interior_and_boundary() {
        let g = UniformGrid::cube_cells(4);
        assert_eq!(g.locate_cell(Vec3::splat(0.1)), Some(0));
        // Far corner belongs to the last cell.
        assert_eq!(g.locate_cell(Vec3::ONE), Some(g.num_cells() - 1));
        assert_eq!(g.locate_cell(Vec3::splat(-0.01)), None);
        assert_eq!(g.locate_cell(Vec3::splat(1.01)), None);
    }

    #[test]
    fn sample_reproduces_linear_field() {
        // A trilinear interpolant must reproduce any linear function exactly.
        let g = UniformGrid::cube_cells(4);
        let f = |p: Vec3| 2.0 * p.x - 3.0 * p.y + 0.5 * p.z + 1.0;
        let values: Vec<f64> = (0..g.num_points())
            .map(|id| f(g.point_coord_id(id)))
            .collect();
        for &p in &[
            Vec3::splat(0.3),
            Vec3::new(0.12, 0.77, 0.5),
            Vec3::new(0.99, 0.01, 0.33),
            Vec3::ONE,
            Vec3::ZERO,
        ] {
            let s = g.sample_scalar(&values, p).unwrap();
            assert!((s - f(p)).abs() < 1e-12, "at {p:?}: {s} vs {}", f(p));
        }
    }

    #[test]
    fn sample_vector_reproduces_linear_field() {
        let g = UniformGrid::cube_cells(3);
        let f = |p: Vec3| Vec3::new(p.x, 2.0 * p.y, -p.z + 0.5);
        let values: Vec<Vec3> = (0..g.num_points())
            .map(|id| f(g.point_coord_id(id)))
            .collect();
        let p = Vec3::new(0.4, 0.6, 0.2);
        let s = g.sample_vector(&values, p).unwrap();
        assert!((s - f(p)).length() < 1e-12);
    }

    #[test]
    fn sample_outside_is_none() {
        let g = UniformGrid::cube_cells(2);
        let values = vec![0.0; g.num_points()];
        assert!(g.sample_scalar(&values, Vec3::splat(2.0)).is_none());
        assert!(g.sample_scalar(&values[..3], Vec3::splat(0.5)).is_none());
    }

    #[test]
    fn cell_center_is_average_of_corners() {
        let g = UniformGrid::cube_cells(3);
        for cell in [0, 5, g.num_cells() - 1] {
            let corners = g.cell_corners(cell);
            let avg = corners.iter().fold(Vec3::ZERO, |a, &c| a + c) / 8.0;
            assert!((avg - g.cell_center(cell)).length() < 1e-12);
        }
    }

    #[test]
    #[should_panic]
    fn degenerate_dims_panic() {
        let _ = UniformGrid::new([1, 4, 4], Vec3::ZERO, Vec3::ONE);
    }
}
