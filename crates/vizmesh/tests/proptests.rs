//! Property-based tests for the vizmesh data model.

use proptest::prelude::*;
use vizmesh::{Aabb, Camera, CellSet, CellShape, UniformGrid, Vec3, WorkCounters};

fn vec3_strategy(range: std::ops::Range<f64>) -> impl Strategy<Value = Vec3> {
    (range.clone(), range.clone(), range).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

proptest! {
    /// Trilinear sampling must reproduce arbitrary linear fields exactly
    /// (to rounding) anywhere inside the grid.
    #[test]
    fn sampling_reproduces_linear_fields(
        a in -5.0f64..5.0,
        b in -5.0f64..5.0,
        c in -5.0f64..5.0,
        d in -5.0f64..5.0,
        n in 1usize..6,
        p in vec3_strategy(0.0..1.0),
    ) {
        let g = UniformGrid::cube_cells(n);
        let f = |q: Vec3| a * q.x + b * q.y + c * q.z + d;
        let vals: Vec<f64> = (0..g.num_points())
            .map(|id| f(g.point_coord_id(id)))
            .collect();
        let s = g.sample_scalar(&vals, p).unwrap();
        prop_assert!((s - f(p)).abs() < 1e-9);
    }

    /// Point-id linearization round-trips for arbitrary grid shapes.
    #[test]
    fn point_id_round_trip(
        nx in 2usize..10,
        ny in 2usize..10,
        nz in 2usize..10,
    ) {
        let g = UniformGrid::new([nx, ny, nz], Vec3::ZERO, Vec3::ONE);
        for id in (0..g.num_points()).step_by(7) {
            let [i, j, k] = g.point_ijk(id);
            prop_assert_eq!(g.point_id(i, j, k), id);
        }
    }

    /// Every cell's corner points lie within the grid bounds and the cell
    /// center is inside the located cell.
    #[test]
    fn locate_cell_finds_center(n in 1usize..8, cell_frac in 0.0f64..1.0) {
        let g = UniformGrid::cube_cells(n);
        let cell = ((g.num_cells() as f64 - 1.0) * cell_frac) as usize;
        let center = g.cell_center(cell);
        prop_assert_eq!(g.locate_cell(center), Some(cell));
    }

    /// An AABB grown from points contains all of them.
    #[test]
    fn aabb_contains_generating_points(
        pts in prop::collection::vec(vec3_strategy(-100.0..100.0), 1..40)
    ) {
        let b = Aabb::from_points(pts.iter().copied());
        for p in &pts {
            prop_assert!(b.contains(*p));
        }
    }

    /// Slab-test consistency: any point between the returned entry and
    /// exit parameters is inside the box (within tolerance).
    #[test]
    fn ray_slab_interval_is_inside(
        origin in vec3_strategy(-3.0..3.0),
        dir in vec3_strategy(-1.0..1.0),
        t in 0.0f64..1.0,
    ) {
        prop_assume!(dir.length() > 1e-3);
        let b = Aabb::new(Vec3::ZERO, Vec3::ONE);
        let d = dir.normalized();
        let inv = Vec3::new(1.0 / d.x, 1.0 / d.y, 1.0 / d.z);
        if let Some((t0, t1)) = b.intersect_ray(origin, inv, 0.0, f64::INFINITY) {
            let tm = t0 + (t1 - t0) * t;
            let p = origin + d * tm;
            let grown = Aabb::new(Vec3::splat(-1e-6), Vec3::splat(1.0 + 1e-6));
            prop_assert!(grown.contains(p), "p = {p:?} at t = {tm}");
        }
    }

    /// Camera rays always have unit direction and originate at the camera.
    #[test]
    fn camera_rays_unit_length(
        pos in vec3_strategy(2.0..6.0),
        x in 0usize..32,
        y in 0usize..32,
    ) {
        let cam = Camera::new(pos, Vec3::ZERO, Vec3::Y, 45.0);
        let r = cam.pixel_ray(x, y, 32, 32);
        prop_assert!((r.direction.length() - 1.0).abs() < 1e-12);
        prop_assert_eq!(r.origin, pos);
    }

    /// CellSet::append_shifted preserves per-cell arity and shape.
    #[test]
    fn cellset_append_preserves_shape(tris in 1usize..20, shift in 0u32..100) {
        let mut a = CellSet::new();
        a.push(CellShape::Line, &[0, 1]);
        let mut b = CellSet::new();
        for i in 0..tris as u32 {
            b.push(CellShape::Triangle, &[i, i + 1, i + 2]);
        }
        a.append_shifted(&b, shift);
        prop_assert_eq!(a.num_cells(), 1 + tris);
        for c in 1..a.num_cells() {
            prop_assert_eq!(a.shape(c), CellShape::Triangle);
            let pts = a.cell_points(c);
            prop_assert_eq!(pts.len(), 3);
            prop_assert!(pts.iter().all(|&p| p >= shift));
        }
    }

    /// WorkCounters::merge is associative on the summed fields.
    #[test]
    fn counters_merge_associative(
        a in (0u64..1000, 0u64..1000, 0u64..1000),
        b in (0u64..1000, 0u64..1000, 0u64..1000),
        c in (0u64..1000, 0u64..1000, 0u64..1000),
    ) {
        let mk = |(items, instr, ws): (u64, u64, u64)| WorkCounters {
            items,
            instructions: instr,
            flops: instr / 2,
            bytes_read: items * 8,
            bytes_written: items,
            working_set_bytes: ws,
        };
        let (ca, cb, cc) = (mk(a), mk(b), mk(c));
        let left = (ca + cb) + cc;
        let right = ca + (cb + cc);
        prop_assert_eq!(left, right);
    }
}
