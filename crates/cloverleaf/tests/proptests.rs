//! Property-based tests for the hydrodynamics proxy.

use cloverleaf::{Problem, SimConfig, Simulation};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Mass is conserved to rounding for every problem, grid size and
    /// step count (the donor-cell advection is conservative and the
    /// boundaries are closed).
    #[test]
    fn mass_conserved(
        n in 4usize..10,
        steps in 1u64..40,
        problem in prop_oneof![
            Just(Problem::TwoState),
            Just(Problem::HotSphere),
            Just(Problem::TripleSlab),
        ],
    ) {
        let mut sim = Simulation::new(problem, n, SimConfig::default());
        let m0 = sim.state.total_mass();
        sim.run_steps(steps);
        let m1 = sim.state.total_mass();
        prop_assert!(((m1 - m0) / m0).abs() < 1e-9, "{m0} -> {m1}");
    }

    /// The state stays physical: positive density and energy, finite
    /// velocity, and the CFL time step stays positive.
    #[test]
    fn state_stays_physical(n in 4usize..9, steps in 1u64..60) {
        let mut sim = Simulation::new(Problem::TwoState, n, SimConfig::default());
        sim.run_steps(steps);
        prop_assert!(sim.state.density.iter().all(|d| d.is_finite() && *d > 0.0));
        prop_assert!(sim.state.energy.iter().all(|e| e.is_finite() && *e > 0.0));
        prop_assert!(sim.state.velocity.iter().all(|u| u.is_finite()));
        prop_assert!(sim.current_dt() > 0.0);
    }

    /// Total (internal + kinetic) energy stays bounded: the scheme may
    /// dissipate through the artificial viscosity and the energy floor,
    /// but it must not blow up.
    #[test]
    fn energy_bounded(steps in 5u64..50) {
        let mut sim = Simulation::new(Problem::TwoState, 8, SimConfig::default());
        let e0 = sim.state.total_internal_energy() + sim.state.total_kinetic_energy();
        sim.run_steps(steps);
        let e1 = sim.state.total_internal_energy() + sim.state.total_kinetic_energy();
        prop_assert!(e1 < e0 * 1.2, "energy grew {e0} -> {e1}");
        prop_assert!(e1 > e0 * 0.3, "energy collapsed {e0} -> {e1}");
    }

    /// Determinism: the same problem and step count give bitwise equal
    /// states regardless of when they run.
    #[test]
    fn bitwise_deterministic(n in 4usize..8, steps in 1u64..20) {
        let run = || {
            let mut sim = Simulation::new(Problem::HotSphere, n, SimConfig::default());
            sim.run_steps(steps);
            (sim.state.energy.clone(), sim.state.velocity.clone(), sim.time())
        };
        prop_assert_eq!(run(), run());
    }

    /// Symmetry: the HotSphere problem is symmetric under mirroring all
    /// three axes, and the solver preserves that symmetry.
    #[test]
    fn hot_sphere_stays_symmetric(steps in 1u64..25) {
        let n = 6;
        let mut sim = Simulation::new(Problem::HotSphere, n, SimConfig::default());
        sim.run_steps(steps);
        let g = &sim.state.grid;
        for k in 0..n {
            for j in 0..n {
                for i in 0..n {
                    let a = sim.state.energy[g.cell_id(i, j, k)];
                    let b = sim.state.energy[g.cell_id(n - 1 - i, n - 1 - j, n - 1 - k)];
                    prop_assert!(
                        (a - b).abs() < 1e-9 * a.abs().max(1.0),
                        "asymmetry at ({i},{j},{k}): {a} vs {b}"
                    );
                }
            }
        }
    }
}
