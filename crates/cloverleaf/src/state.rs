//! Field storage for the hydrodynamics state.

use vizmesh::{Association, DataSet, Field, UniformGrid, Vec3};

/// The complete hydrodynamic state on a staggered uniform grid.
///
/// Cell-centered arrays are indexed with the grid's cell ids, node-centered
/// arrays with its point ids (x-fastest linearization).
#[derive(Debug, Clone)]
pub struct State {
    pub grid: UniformGrid,
    /// Cell-centered density.
    pub density: Vec<f64>,
    /// Cell-centered specific internal energy.
    pub energy: Vec<f64>,
    /// Cell-centered pressure (derived by the EOS each step).
    pub pressure: Vec<f64>,
    /// Cell-centered artificial viscosity.
    pub viscosity: Vec<f64>,
    /// Node-centered velocity.
    pub velocity: Vec<Vec3>,
    /// Cell-centered sound speed (derived by the EOS each step).
    pub soundspeed: Vec<f64>,
}

impl State {
    /// A quiescent state: `ρ = 1`, `e = 1`, `u = 0` everywhere.
    pub fn quiescent(grid: UniformGrid) -> Self {
        let nc = grid.num_cells();
        let np = grid.num_points();
        State {
            grid,
            density: vec![1.0; nc],
            energy: vec![1.0; nc],
            pressure: vec![0.0; nc],
            viscosity: vec![0.0; nc],
            velocity: vec![Vec3::ZERO; np],
            soundspeed: vec![0.0; nc],
        }
    }

    /// Total mass `Σ ρ·V` (cell volumes are uniform).
    pub fn total_mass(&self) -> f64 {
        let s = self.grid.spacing();
        let vol = s.x * s.y * s.z;
        self.density.iter().sum::<f64>() * vol
    }

    /// Total internal energy `Σ ρ·e·V`.
    pub fn total_internal_energy(&self) -> f64 {
        let s = self.grid.spacing();
        let vol = s.x * s.y * s.z;
        self.density
            .iter()
            .zip(&self.energy)
            .map(|(&d, &e)| d * e)
            .sum::<f64>()
            * vol
    }

    /// Total kinetic energy `Σ ρ_node·|u|²/2·V_node` (node mass from the
    /// average of adjacent cell densities).
    pub fn total_kinetic_energy(&self) -> f64 {
        let s = self.grid.spacing();
        let vol = s.x * s.y * s.z;
        let mut total = 0.0;
        for (id, &u) in self.velocity.iter().enumerate() {
            let rho = self.node_density(id);
            total += 0.5 * rho * u.length_squared() * vol;
        }
        total
    }

    /// Density at a node: mean of the adjacent cells (1–8 of them).
    pub fn node_density(&self, point_id: usize) -> f64 {
        let [i, j, k] = self.grid.point_ijk(point_id);
        let [cx, cy, cz] = self.grid.cell_dims();
        let mut sum = 0.0;
        let mut n = 0u32;
        for dk in 0..2usize {
            for dj in 0..2usize {
                for di in 0..2usize {
                    // Cell (i-1+di, j-1+dj, k-1+dk) if it exists.
                    let (ci, cj, ck) = (
                        (i + di).wrapping_sub(1),
                        (j + dj).wrapping_sub(1),
                        (k + dk).wrapping_sub(1),
                    );
                    if ci < cx && cj < cy && ck < cz {
                        sum += self.density[self.grid.cell_id(ci, cj, ck)];
                        n += 1;
                    }
                }
            }
        }
        if n == 0 {
            1.0
        } else {
            sum / n as f64
        }
    }

    /// Cell-centered scalar averaged to the nodes (used to export
    /// point-centered fields for contouring).
    pub fn cell_to_point(&self, cell_values: &[f64]) -> Vec<f64> {
        assert_eq!(cell_values.len(), self.grid.num_cells());
        let [cx, cy, cz] = self.grid.cell_dims();
        let np = self.grid.num_points();
        let mut out = vec![0.0; np];
        for id in 0..np {
            let [i, j, k] = self.grid.point_ijk(id);
            let mut sum = 0.0;
            let mut n = 0u32;
            for dk in 0..2usize {
                for dj in 0..2usize {
                    for di in 0..2usize {
                        let (ci, cj, ck) = (
                            (i + di).wrapping_sub(1),
                            (j + dj).wrapping_sub(1),
                            (k + dk).wrapping_sub(1),
                        );
                        if ci < cx && cj < cy && ck < cz {
                            sum += cell_values[self.grid.cell_id(ci, cj, ck)];
                            n += 1;
                        }
                    }
                }
            }
            out[id] = sum / n as f64;
        }
        out
    }

    /// Export the state as a [`DataSet`] with the fields the paper's
    /// visualization pipelines consume: point- and cell-centered
    /// `energy`, cell-centered `density` and `pressure`, and the
    /// node-centered `velocity` vector field.
    pub fn to_dataset(&self) -> DataSet {
        let mut ds = DataSet::uniform(self.grid.clone());
        ds.add_field(Field::scalar(
            "energy",
            Association::Cells,
            self.energy.clone(),
        ));
        ds.add_field(Field::scalar(
            "energy",
            Association::Points,
            self.cell_to_point(&self.energy),
        ));
        ds.add_field(Field::scalar(
            "density",
            Association::Cells,
            self.density.clone(),
        ));
        ds.add_field(Field::scalar(
            "pressure",
            Association::Cells,
            self.pressure.clone(),
        ));
        ds.add_field(Field::vector(
            "velocity",
            Association::Points,
            self.velocity.clone(),
        ));
        ds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> State {
        State::quiescent(UniformGrid::cube_cells(4))
    }

    #[test]
    fn quiescent_invariants() {
        let s = small();
        assert!((s.total_mass() - 1.0).abs() < 1e-12, "unit cube of ρ = 1");
        assert!((s.total_internal_energy() - 1.0).abs() < 1e-12);
        assert_eq!(s.total_kinetic_energy(), 0.0);
    }

    #[test]
    fn node_density_interior_and_corner() {
        let mut s = small();
        // Uniform density: every node sees 1.0.
        assert!((s.node_density(0) - 1.0).abs() < 1e-12);
        // Make one corner cell heavy; the corner node sees only that cell.
        s.density[0] = 9.0;
        assert!((s.node_density(s.grid.point_id(0, 0, 0)) - 9.0).abs() < 1e-12);
        // An interior node adjacent to the heavy cell averages 8 cells.
        let interior = s.grid.point_id(1, 1, 1);
        assert!((s.node_density(interior) - (9.0 + 7.0) / 8.0).abs() < 1e-12);
    }

    #[test]
    fn cell_to_point_constant_field() {
        let s = small();
        let vals = vec![3.5; s.grid.num_cells()];
        let pts = s.cell_to_point(&vals);
        assert!(pts.iter().all(|&v| (v - 3.5).abs() < 1e-12));
    }

    #[test]
    fn cell_to_point_preserves_linear_gradient_direction() {
        let s = small();
        // Cell field increasing with x: point field must too.
        let vals: Vec<f64> = (0..s.grid.num_cells())
            .map(|c| s.grid.cell_ijk(c)[0] as f64)
            .collect();
        let pts = s.cell_to_point(&vals);
        let left = pts[s.grid.point_id(0, 2, 2)];
        let right = pts[s.grid.point_id(4, 2, 2)];
        assert!(right > left);
    }

    #[test]
    fn dataset_export_has_expected_fields() {
        let s = small();
        let ds = s.to_dataset();
        assert!(ds.point_scalars("energy").is_some());
        assert!(ds.cell_scalars("energy").is_some());
        assert!(ds.cell_scalars("density").is_some());
        assert!(ds.cell_scalars("pressure").is_some());
        assert!(ds.point_vectors("velocity").is_some());
        assert_eq!(ds.num_cells(), 64);
    }
}
