//! The hydrodynamics kernels: EOS, artificial viscosity, acceleration,
//! PdV, and conservative donor-cell advection.
//!
//! Every kernel returns the [`WorkCounters`] it accumulated so the in situ
//! power experiments can characterize the simulation side of the coupled
//! workload. Per-item instruction/flop estimates are rough static costs of
//! the inner loops; the *counts* (cells, faces, nodes touched) are exact.

use crate::eos;
use crate::state::State;
use rayon::prelude::*;
use vizmesh::{Vec3, WorkCounters};

/// Scratch buffers reused across steps to avoid per-step allocation.
#[derive(Debug, Default)]
pub struct Scratch {
    /// Cell-centered velocity divergence.
    pub div: Vec<f64>,
    /// Mass flux through x/y/z faces.
    pub flux_mass: [Vec<f64>; 3],
    /// Energy (ρe) flux through x/y/z faces.
    pub flux_energy: [Vec<f64>; 3],
    /// Post-advection density / energy staging.
    pub new_density: Vec<f64>,
    pub new_energy: Vec<f64>,
}

impl Scratch {
    pub fn for_state(state: &State) -> Self {
        let [cx, cy, cz] = state.grid.cell_dims();
        let nc = state.grid.num_cells();
        Scratch {
            div: vec![0.0; nc],
            flux_mass: [
                vec![0.0; (cx + 1) * cy * cz],
                vec![0.0; cx * (cy + 1) * cz],
                vec![0.0; cx * cy * (cz + 1)],
            ],
            flux_energy: [
                vec![0.0; (cx + 1) * cy * cz],
                vec![0.0; cx * (cy + 1) * cz],
                vec![0.0; cx * cy * (cz + 1)],
            ],
            new_density: vec![0.0; nc],
            new_energy: vec![0.0; nc],
        }
    }
}

/// Corner index groups of a hexahedral cell (see
/// [`vizmesh::UniformGrid::cell_point_ids`]): `[negative-side, positive-side]`
/// corner slots per axis.
const X_NEG: [usize; 4] = [0, 3, 4, 7];
const X_POS: [usize; 4] = [1, 2, 5, 6];
const Y_NEG: [usize; 4] = [0, 1, 4, 5];
const Y_POS: [usize; 4] = [2, 3, 6, 7];
const Z_NEG: [usize; 4] = [0, 1, 2, 3];
const Z_POS: [usize; 4] = [4, 5, 6, 7];

/// Update pressure and sound speed from the ideal-gas EOS.
pub fn ideal_gas(state: &mut State) -> WorkCounters {
    let density = &state.density;
    let energy = &state.energy;
    state
        .pressure
        .par_iter_mut()
        .zip(state.soundspeed.par_iter_mut())
        .enumerate()
        .for_each(|(c, (p, cs))| {
            *p = eos::pressure(density[c], energy[c]);
            *cs = eos::sound_speed(density[c], *p);
        });
    let mut w = WorkCounters::new();
    w.tally(state.density.len() as u64, 14, 6, 16, 16);
    w.working_set_bytes = (state.density.len() * 8 * 4) as u64;
    w
}

/// Cell-centered velocity divergence from the corner node velocities.
pub fn divergence(state: &State, div: &mut [f64]) -> WorkCounters {
    let g = &state.grid;
    let s = g.spacing();
    let vel = &state.velocity;
    div.par_iter_mut().enumerate().for_each(|(c, d)| {
        let ids = g.cell_point_ids(c);
        let avg = |slots: [usize; 4], f: fn(Vec3) -> f64| {
            slots.iter().map(|&i| f(vel[ids[i]])).sum::<f64>() * 0.25
        };
        let dudx = (avg(X_POS, |v| v.x) - avg(X_NEG, |v| v.x)) / s.x;
        let dvdy = (avg(Y_POS, |v| v.y) - avg(Y_NEG, |v| v.y)) / s.y;
        let dwdz = (avg(Z_POS, |v| v.z) - avg(Z_NEG, |v| v.z)) / s.z;
        *d = dudx + dvdy + dwdz;
    });
    let mut w = WorkCounters::new();
    w.tally(div.len() as u64, 60, 27, 8 * 24, 8);
    w
}

/// Von Neumann–Richtmyer artificial viscosity with a linear term:
/// `q = c₂ ρ (Δ div u)² + c₁ ρ c_s Δ |div u|` in compression, 0 otherwise.
pub fn viscosity(state: &mut State, div: &[f64]) -> WorkCounters {
    const C1: f64 = 0.5;
    const C2: f64 = 2.0;
    let s = state.grid.spacing();
    let dx = s.min_component();
    let density = &state.density;
    let soundspeed = &state.soundspeed;
    state
        .viscosity
        .par_iter_mut()
        .enumerate()
        .for_each(|(c, q)| {
            let d = div[c];
            *q = if d < 0.0 {
                let rho = density[c];
                let dd = dx * d;
                C2 * rho * dd * dd + C1 * rho * soundspeed[c] * dx * d.abs()
            } else {
                0.0
            };
        });
    let mut w = WorkCounters::new();
    w.tally(state.viscosity.len() as u64, 18, 8, 24, 8);
    w
}

/// Accelerate the node velocities by the pressure + viscosity gradient and
/// apply reflective boundary conditions (zero normal velocity on the
/// domain faces).
pub fn acceleration(state: &mut State, dt: f64) -> WorkCounters {
    let g = state.grid.clone();
    let [cx, cy, cz] = g.cell_dims();
    let [nx, ny, nz] = g.point_dims();
    let s = g.spacing();
    // Total stress per cell.
    let stress: Vec<f64> = state
        .pressure
        .iter()
        .zip(&state.viscosity)
        .map(|(&p, &q)| p + q)
        .collect();
    let density = &state.density;

    // Average stress over up to 4 cells on one side of a node along `axis`.
    // `side_idx` is the cell index on that axis; the other two axes clamp
    // to existing cells around (j, k).
    let side_avg = |axis: usize, side_idx: usize, a: usize, b: usize| -> f64 {
        // a, b are the node indices on the other two axes (in axis order).
        let (alo, ahi, blo, bhi, adim, bdim) = match axis {
            0 => (a.saturating_sub(1), a, b.saturating_sub(1), b, cy, cz),
            1 => (a.saturating_sub(1), a, b.saturating_sub(1), b, cx, cz),
            _ => (a.saturating_sub(1), a, b.saturating_sub(1), b, cx, cy),
        };
        let mut sum = 0.0;
        let mut n = 0u32;
        for aa in alo..=ahi.min(adim.saturating_sub(1)) {
            if aa >= adim {
                continue;
            }
            for bb in blo..=bhi.min(bdim.saturating_sub(1)) {
                if bb >= bdim {
                    continue;
                }
                let cell = match axis {
                    0 => g.cell_id(side_idx, aa, bb),
                    1 => g.cell_id(aa, side_idx, bb),
                    _ => g.cell_id(aa, bb, side_idx),
                };
                sum += stress[cell];
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    };

    let node_density = |id: usize| -> f64 {
        let [i, j, k] = g.point_ijk(id);
        let mut sum = 0.0;
        let mut n = 0u32;
        for dk in 0..2usize {
            for dj in 0..2usize {
                for di in 0..2usize {
                    let (ci, cj, ck) = (
                        (i + di).wrapping_sub(1),
                        (j + dj).wrapping_sub(1),
                        (k + dk).wrapping_sub(1),
                    );
                    if ci < cx && cj < cy && ck < cz {
                        sum += density[g.cell_id(ci, cj, ck)];
                        n += 1;
                    }
                }
            }
        }
        if n == 0 {
            1.0
        } else {
            sum / n as f64
        }
    };

    state
        .velocity
        .par_iter_mut()
        .enumerate()
        .for_each(|(id, u)| {
            let [i, j, k] = g.point_ijk(id);
            let rho = node_density(id).max(1e-12);
            // Each axis needs cells on both sides of the node; boundary nodes
            // get the reflective condition instead.
            if i >= 1 && i < nx - 1 {
                let grad = (side_avg(0, i, j, k) - side_avg(0, i - 1, j, k)) / s.x;
                u.x -= dt * grad / rho;
            } else {
                u.x = 0.0; // reflective: zero normal velocity on x faces
            }
            if j >= 1 && j < ny - 1 {
                let grad = (side_avg(1, j, i, k) - side_avg(1, j - 1, i, k)) / s.y;
                u.y -= dt * grad / rho;
            } else {
                u.y = 0.0;
            }
            if k >= 1 && k < nz - 1 {
                let grad = (side_avg(2, k, i, j) - side_avg(2, k - 1, i, j)) / s.z;
                u.z -= dt * grad / rho;
            } else {
                u.z = 0.0;
            }
        });

    let mut w = WorkCounters::new();
    w.tally(state.velocity.len() as u64, 140, 45, 8 * 24, 24);
    w
}

/// PdV internal-energy update: `de/dt = −(p + q) ∇·u / ρ`.
///
/// Energy is floored at a small positive value to keep the EOS sane in
/// strong expansions.
pub fn pdv(state: &mut State, div: &[f64], dt: f64) -> WorkCounters {
    const E_FLOOR: f64 = 1e-9;
    let pressure = &state.pressure;
    let viscosity = &state.viscosity;
    let density = &state.density;
    state.energy.par_iter_mut().enumerate().for_each(|(c, e)| {
        let work = (pressure[c] + viscosity[c]) * div[c] / density[c].max(1e-12);
        *e = (*e - dt * work).max(E_FLOOR);
    });
    let mut w = WorkCounters::new();
    w.tally(state.energy.len() as u64, 16, 7, 40, 8);
    w
}

/// Conservative first-order donor-cell (upwind) advection of mass and
/// internal energy. Boundary faces carry zero flux, so total mass is
/// conserved to rounding.
pub fn advect(state: &mut State, scratch: &mut Scratch, dt: f64) -> WorkCounters {
    let g = state.grid.clone();
    let [cx, cy, cz] = g.cell_dims();
    let s = g.spacing();
    let vol = s.x * s.y * s.z;
    let areas = [s.y * s.z, s.x * s.z, s.x * s.y];
    let mut w = WorkCounters::new();

    // Face-normal velocity: average the 4 node velocities on the face.
    // x-face (fi, j, k) with fi in 0..=cx separates cells fi-1 and fi.
    {
        let vel = &state.velocity;
        let density = &state.density;
        let energy = &state.energy;
        // X faces.
        scratch.flux_mass[0]
            .par_iter_mut()
            .zip(scratch.flux_energy[0].par_iter_mut())
            .enumerate()
            .for_each(|(f, (fm, fe))| {
                let fi = f % (cx + 1);
                let j = (f / (cx + 1)) % cy;
                let k = f / ((cx + 1) * cy);
                if fi == 0 || fi == cx {
                    *fm = 0.0;
                    *fe = 0.0;
                    return;
                }
                let un = 0.25
                    * (vel[g.point_id(fi, j, k)].x
                        + vel[g.point_id(fi, j + 1, k)].x
                        + vel[g.point_id(fi, j, k + 1)].x
                        + vel[g.point_id(fi, j + 1, k + 1)].x);
                let donor = if un >= 0.0 {
                    g.cell_id(fi - 1, j, k)
                } else {
                    g.cell_id(fi, j, k)
                };
                let m = un * areas[0] * dt * density[donor];
                *fm = m;
                *fe = m * energy[donor];
            });
        // Y faces.
        scratch.flux_mass[1]
            .par_iter_mut()
            .zip(scratch.flux_energy[1].par_iter_mut())
            .enumerate()
            .for_each(|(f, (fm, fe))| {
                let i = f % cx;
                let fj = (f / cx) % (cy + 1);
                let k = f / (cx * (cy + 1));
                if fj == 0 || fj == cy {
                    *fm = 0.0;
                    *fe = 0.0;
                    return;
                }
                let un = 0.25
                    * (vel[g.point_id(i, fj, k)].y
                        + vel[g.point_id(i + 1, fj, k)].y
                        + vel[g.point_id(i, fj, k + 1)].y
                        + vel[g.point_id(i + 1, fj, k + 1)].y);
                let donor = if un >= 0.0 {
                    g.cell_id(i, fj - 1, k)
                } else {
                    g.cell_id(i, fj, k)
                };
                let m = un * areas[1] * dt * density[donor];
                *fm = m;
                *fe = m * energy[donor];
            });
        // Z faces.
        scratch.flux_mass[2]
            .par_iter_mut()
            .zip(scratch.flux_energy[2].par_iter_mut())
            .enumerate()
            .for_each(|(f, (fm, fe))| {
                let i = f % cx;
                let j = (f / cx) % cy;
                let fk = f / (cx * cy);
                if fk == 0 || fk == cz {
                    *fm = 0.0;
                    *fe = 0.0;
                    return;
                }
                let un = 0.25
                    * (vel[g.point_id(i, j, fk)].z
                        + vel[g.point_id(i + 1, j, fk)].z
                        + vel[g.point_id(i, j + 1, fk)].z
                        + vel[g.point_id(i + 1, j + 1, fk)].z);
                let donor = if un >= 0.0 {
                    g.cell_id(i, j, fk - 1)
                } else {
                    g.cell_id(i, j, fk)
                };
                let m = un * areas[2] * dt * density[donor];
                *fm = m;
                *fe = m * energy[donor];
            });
    }
    let nfaces = (scratch.flux_mass[0].len()
        + scratch.flux_mass[1].len()
        + scratch.flux_mass[2].len()) as u64;
    w.tally(nfaces, 46, 14, 8 * 8, 16);

    // Apply fluxes: new mass = old mass + Σ incoming − Σ outgoing.
    {
        let density = &state.density;
        let energy = &state.energy;
        let fm = &scratch.flux_mass;
        let fe = &scratch.flux_energy;
        scratch
            .new_density
            .par_iter_mut()
            .zip(scratch.new_energy.par_iter_mut())
            .enumerate()
            .for_each(|(c, (nd, ne))| {
                let i = c % cx;
                let j = (c / cx) % cy;
                let k = c / (cx * cy);
                let fx = |fi: usize| fi + (cx + 1) * (j + cy * k);
                let fy = |fj: usize| i + cx * (fj + (cy + 1) * k);
                let fz = |fk: usize| i + cx * (j + cy * fk);
                let dm = fm[0][fx(i)] - fm[0][fx(i + 1)] + fm[1][fy(j)] - fm[1][fy(j + 1)]
                    + fm[2][fz(k)]
                    - fm[2][fz(k + 1)];
                let de = fe[0][fx(i)] - fe[0][fx(i + 1)] + fe[1][fy(j)] - fe[1][fy(j + 1)]
                    + fe[2][fz(k)]
                    - fe[2][fz(k + 1)];
                let mass_old = density[c] * vol;
                let rho_e_old = density[c] * energy[c] * vol;
                let mass_new = (mass_old + dm).max(1e-12 * vol);
                let rho_e_new = (rho_e_old + de).max(0.0);
                *nd = mass_new / vol;
                *ne = (rho_e_new / mass_new).max(1e-9);
            });
    }
    state.density.copy_from_slice(&scratch.new_density);
    state.energy.copy_from_slice(&scratch.new_energy);
    w.tally(state.density.len() as u64, 60, 26, 8 * 14, 16);
    w
}

/// CFL time-step: `dt = cfl · min(Δ / (c_s + |u| + ε))`, additionally
/// limited to grow at most 5 % per step.
pub fn calc_dt(state: &State, prev_dt: f64, cfl: f64) -> (f64, WorkCounters) {
    let g = &state.grid;
    let s = g.spacing();
    let dx = s.min_component();
    let max_u = state
        .velocity
        .par_iter() // lint: deterministic because f64::max is order-insensitive
        .map(|u| u.length())
        .reduce(|| 0.0, f64::max);
    let max_cs = state
        .soundspeed
        .par_iter() // lint: deterministic because f64::max is order-insensitive
        .copied()
        .reduce(|| 0.0, f64::max);
    let dt = cfl * dx / (max_cs + max_u + 1e-12);
    let dt = dt.min(prev_dt * 1.05);
    let mut w = WorkCounters::new();
    w.tally(
        (state.velocity.len() + state.soundspeed.len()) as u64,
        10,
        5,
        16,
        0,
    );
    (dt, w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vizmesh::UniformGrid;

    fn state(n: usize) -> (State, Scratch) {
        let s = State::quiescent(UniformGrid::cube_cells(n));
        let scratch = Scratch::for_state(&s);
        (s, scratch)
    }

    #[test]
    fn ideal_gas_uniform_state() {
        let (mut s, _) = state(4);
        ideal_gas(&mut s);
        assert!(s.pressure.iter().all(|&p| (p - 0.4).abs() < 1e-12));
        let cs = (1.4 * 0.4f64).sqrt();
        assert!(s.soundspeed.iter().all(|&c| (c - cs).abs() < 1e-12));
    }

    #[test]
    fn divergence_zero_for_uniform_velocity() {
        let (mut s, mut scr) = state(4);
        for u in &mut s.velocity {
            *u = Vec3::new(0.3, -0.2, 0.1);
        }
        divergence(&s, &mut scr.div);
        assert!(scr.div.iter().all(|&d| d.abs() < 1e-12));
    }

    #[test]
    fn divergence_of_linear_expansion() {
        // u = (x, y, z) has divergence 3 everywhere.
        let (mut s, mut scr) = state(4);
        for (id, u) in s.velocity.iter_mut().enumerate() {
            *u = s.grid.point_coord_id(id);
        }
        divergence(&s, &mut scr.div);
        assert!(
            scr.div.iter().all(|&d| (d - 3.0).abs() < 1e-9),
            "div = {:?}",
            &scr.div[..4]
        );
    }

    #[test]
    fn viscosity_only_in_compression() {
        let (mut s, mut scr) = state(4);
        ideal_gas(&mut s);
        // Compression: u = -x.
        for (id, u) in s.velocity.iter_mut().enumerate() {
            let p = s.grid.point_coord_id(id);
            *u = Vec3::new(-p.x, 0.0, 0.0);
        }
        divergence(&s, &mut scr.div);
        viscosity(&mut s, &scr.div);
        assert!(s.viscosity.iter().all(|&q| q > 0.0));
        // Expansion: u = +x.
        for (id, u) in s.velocity.iter_mut().enumerate() {
            let p = s.grid.point_coord_id(id);
            *u = Vec3::new(p.x, 0.0, 0.0);
        }
        divergence(&s, &mut scr.div);
        viscosity(&mut s, &scr.div);
        assert!(s.viscosity.iter().all(|&q| q == 0.0));
    }

    #[test]
    fn acceleration_pushes_away_from_high_pressure() {
        let (mut s, _) = state(4);
        // Hot corner cell at the origin.
        s.energy[0] = 10.0;
        ideal_gas(&mut s);
        acceleration(&mut s, 0.01);
        // The interior node nearest the hot corner should accelerate away
        // from the origin (positive components).
        let id = s.grid.point_id(1, 1, 1);
        let u = s.velocity[id];
        assert!(u.x > 0.0 && u.y > 0.0 && u.z > 0.0, "u = {u:?}");
    }

    #[test]
    fn acceleration_keeps_boundary_normal_velocity_zero() {
        let (mut s, _) = state(4);
        s.energy[0] = 10.0;
        ideal_gas(&mut s);
        acceleration(&mut s, 0.01);
        let [nx, ny, nz] = s.grid.point_dims();
        for k in 0..nz {
            for j in 0..ny {
                assert_eq!(s.velocity[s.grid.point_id(0, j, k)].x, 0.0);
                assert_eq!(s.velocity[s.grid.point_id(nx - 1, j, k)].x, 0.0);
            }
        }
    }

    #[test]
    fn pdv_heats_compression_cools_expansion() {
        let (mut s, mut scr) = state(4);
        ideal_gas(&mut s);
        let e0 = s.energy[0];
        // Uniform compression field: div < 0 heats.
        for (id, u) in s.velocity.iter_mut().enumerate() {
            let p = s.grid.point_coord_id(id);
            *u = (Vec3::splat(0.5) - p) * 0.1;
        }
        divergence(&s, &mut scr.div);
        pdv(&mut s, &scr.div, 0.01);
        assert!(s.energy[0] > e0);
    }

    #[test]
    fn advection_conserves_mass_exactly() {
        let (mut s, mut scr) = state(6);
        // Random-ish smooth velocity field and non-uniform density.
        for (id, u) in s.velocity.iter_mut().enumerate() {
            let p = s.grid.point_coord_id(id);
            *u = Vec3::new(
                (p.y * 7.0).sin() * 0.2,
                (p.z * 5.0).cos() * 0.2,
                (p.x * 3.0).sin() * 0.2,
            );
        }
        for (c, d) in s.density.iter_mut().enumerate() {
            *d = 1.0 + 0.5 * ((c % 7) as f64 / 7.0);
        }
        let m0 = s.total_mass();
        advect(&mut s, &mut scr, 1e-3);
        let m1 = s.total_mass();
        assert!(
            (m1 - m0).abs() < 1e-12 * m0.max(1.0),
            "mass drifted: {m0} -> {m1}"
        );
    }

    #[test]
    fn advection_moves_energy_downwind() {
        let (mut s, mut scr) = state(6);
        // Hot slab at low x, uniform +x velocity: energy must move right.
        for c in 0..s.grid.num_cells() {
            if s.grid.cell_ijk(c)[0] == 0 {
                s.energy[c] = 5.0;
            }
        }
        for u in &mut s.velocity {
            *u = Vec3::new(1.0, 0.0, 0.0);
        }
        // Boundary normal velocities are not zeroed here (no acceleration
        // call), but boundary faces carry no flux by construction.
        let right_before: f64 = (0..s.grid.num_cells())
            .filter(|&c| s.grid.cell_ijk(c)[0] == 1)
            .map(|c| s.energy[c])
            .sum();
        advect(&mut s, &mut scr, 0.01);
        let right_after: f64 = (0..s.grid.num_cells())
            .filter(|&c| s.grid.cell_ijk(c)[0] == 1)
            .map(|c| s.energy[c])
            .sum();
        assert!(right_after > right_before);
    }

    #[test]
    fn calc_dt_respects_cfl_and_growth_limit() {
        let (mut s, _) = state(4);
        ideal_gas(&mut s);
        let (dt, _) = calc_dt(&s, 1.0, 0.5);
        let cs = (1.4f64 * 0.4).sqrt();
        let expect = 0.5 * 0.25 / (cs + 1e-12);
        assert!((dt - expect).abs() < 1e-9);
        // Growth limit binds when previous dt was tiny.
        let (dt2, _) = calc_dt(&s, 1e-6, 0.5);
        assert!((dt2 - 1.05e-6).abs() < 1e-12);
    }
}
