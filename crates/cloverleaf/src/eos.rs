//! Ideal-gas equation of state.

/// Ratio of specific heats for the ideal gas (CloverLeaf uses 1.4).
pub const GAMMA: f64 = 1.4;

/// Pressure from density and specific internal energy:
/// `p = (γ − 1) ρ e`.
#[inline]
pub fn pressure(density: f64, energy: f64) -> f64 {
    (GAMMA - 1.0) * density * energy
}

/// Adiabatic sound speed: `c² = γ p / ρ` (with the pressure already
/// computed from the same `ρ`, `e`). Clamped at zero for robustness
/// against transient negative energies.
#[inline]
pub fn sound_speed(density: f64, pressure: f64) -> f64 {
    if density <= 0.0 || pressure <= 0.0 {
        0.0
    } else {
        (GAMMA * pressure / density).sqrt()
    }
}

/// Specific internal energy that produces `pressure` at `density`
/// (inverse EOS, used by problem setup).
#[inline]
pub fn energy_for_pressure(density: f64, pressure: f64) -> f64 {
    pressure / ((GAMMA - 1.0) * density)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pressure_matches_ideal_gas_law() {
        assert!((pressure(1.0, 1.0) - 0.4).abs() < 1e-12);
        assert!((pressure(2.0, 3.0) - 2.4).abs() < 1e-12);
    }

    #[test]
    fn eos_inverse_round_trip() {
        let rho = 1.7;
        let e = 2.3;
        let p = pressure(rho, e);
        assert!((energy_for_pressure(rho, p) - e).abs() < 1e-12);
    }

    #[test]
    fn sound_speed_positive_and_scales() {
        let c1 = sound_speed(1.0, 0.4);
        let c2 = sound_speed(1.0, 1.6);
        assert!(c1 > 0.0);
        assert!((c2 / c1 - 2.0).abs() < 1e-12, "c ∝ sqrt(p)");
    }

    #[test]
    fn sound_speed_degenerate_inputs() {
        assert_eq!(sound_speed(0.0, 1.0), 0.0);
        assert_eq!(sound_speed(1.0, -0.1), 0.0);
    }
}
