//! # cloverleaf — hydrodynamics proxy application
//!
//! A from-scratch, 3-D, explicit, compressible Eulerian hydrodynamics
//! proxy in the spirit of the CloverLeaf mini-app the paper couples with
//! its visualization pipelines. It solves the compressible Euler
//! equations for an ideal gas on a staggered uniform grid:
//!
//! * **cell-centered**: density `ρ`, specific internal energy `e`,
//!   pressure `p` (from the ideal-gas EOS), artificial viscosity `q`;
//! * **node-centered**: velocity `u`.
//!
//! Each step performs the classic staggered-grid sequence:
//! EOS → artificial viscosity → nodal acceleration → PdV internal-energy
//! update → conservative donor-cell advection of mass and energy →
//! CFL time-step control. The standard problem is CloverLeaf's two-state
//! "small energy source in a cold box" configuration, which drives a
//! shock/energy front through the domain — the field rendered in Fig. 1
//! of the paper at time step 200.
//!
//! The solver is instrumented: every kernel tallies a
//! [`vizmesh::WorkCounters`] so the in situ power experiments can model
//! the *simulation's* power draw alongside the visualization's.

pub mod driver;
pub mod eos;
pub mod kernels;
pub mod problems;
pub mod state;

pub use driver::{SimConfig, Simulation, StepReport};
pub use problems::Problem;
pub use state::State;
