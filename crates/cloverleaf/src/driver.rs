//! The time-step driver orchestrating the hydro kernels.

use crate::kernels::{self, Scratch};
use crate::problems::Problem;
use crate::state::State;
use powersim::trace::{Journal, Scope};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use vizmesh::{DataSet, FieldSeries, WorkCounters};

/// Driver configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SimConfig {
    /// CFL safety factor.
    pub cfl: f64,
    /// Initial (and maximum first-step) time step.
    pub initial_dt: f64,
    /// Hard ceiling on dt.
    pub max_dt: f64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            cfl: 0.4,
            initial_dt: 1e-4,
            max_dt: 5e-2,
        }
    }
}

/// What one step did, for logging and for the power instrumentation.
#[derive(Debug, Clone, Copy)]
pub struct StepReport {
    pub step: u64,
    pub t: f64,
    pub dt: f64,
    /// Work done by all kernels this step.
    pub work: WorkCounters,
}

/// A running simulation: state + scratch + time bookkeeping.
pub struct Simulation {
    pub state: State,
    scratch: Scratch,
    config: SimConfig,
    time: f64,
    step: u64,
    dt: f64,
}

impl Simulation {
    /// Build a simulation from a problem on an `n³` grid.
    pub fn new(problem: Problem, n: usize, config: SimConfig) -> Self {
        let state = problem.build(n);
        let scratch = Scratch::for_state(&state);
        let dt = config.initial_dt;
        Simulation {
            state,
            scratch,
            config,
            time: 0.0,
            step: 0,
            dt,
        }
    }

    pub fn time(&self) -> f64 {
        self.time
    }

    pub fn step_count(&self) -> u64 {
        self.step
    }

    pub fn current_dt(&self) -> f64 {
        self.dt
    }

    /// Advance one time step: EOS → viscosity → acceleration → PdV →
    /// advection → next-dt.
    pub fn step(&mut self) -> StepReport {
        self.step_phases(&mut |_, _| {})
    }

    /// Advance one time step like [`Simulation::step`], invoking
    /// `observer` with each hydro kernel's name and work counters as it
    /// retires — the phase-level callback the in-situ runtime and the
    /// power governor characterize per-kernel workloads from.
    pub fn step_phases(
        &mut self,
        observer: &mut dyn FnMut(&'static str, WorkCounters),
    ) -> StepReport {
        let mut work = WorkCounters::new();
        let mut tally = |work: &mut WorkCounters, name: &'static str, w: WorkCounters| {
            observer(name, w);
            *work += w;
        };
        tally(&mut work, "ideal_gas", kernels::ideal_gas(&mut self.state));
        tally(
            &mut work,
            "divergence",
            kernels::divergence(&self.state, &mut self.scratch.div),
        );
        tally(
            &mut work,
            "viscosity",
            kernels::viscosity(&mut self.state, &self.scratch.div),
        );
        tally(
            &mut work,
            "acceleration",
            kernels::acceleration(&mut self.state, self.dt),
        );
        // Divergence changed with the new velocities; PdV uses the fresh one.
        tally(
            &mut work,
            "divergence",
            kernels::divergence(&self.state, &mut self.scratch.div),
        );
        tally(
            &mut work,
            "pdv",
            kernels::pdv(&mut self.state, &self.scratch.div, self.dt),
        );
        tally(
            &mut work,
            "advect",
            kernels::advect(&mut self.state, &mut self.scratch, self.dt),
        );

        self.time += self.dt;
        self.step += 1;

        let (next_dt, w_dt) = kernels::calc_dt(&self.state, self.dt, self.config.cfl);
        tally(&mut work, "calc_dt", w_dt);
        self.dt = next_dt.min(self.config.max_dt);

        // The hot working set of a step: every field array.
        work.working_set_bytes =
            (self.state.density.len() * 8 * 4 + self.state.velocity.len() * 24) as u64;

        StepReport {
            step: self.step,
            t: self.time,
            dt: self.dt,
            work,
        }
    }

    /// Advance one time step like [`Simulation::step`], additionally
    /// advancing `journal`'s clock by the step's simulated duration and
    /// emitting a [`Scope::Timestep`] span covering it.
    pub fn step_journaled(&mut self, journal: &mut Journal) -> StepReport {
        self.step_phases_journaled(&mut |_, _| {}, journal)
    }

    /// [`Simulation::step_phases`] with the journaling of
    /// [`Simulation::step_journaled`].
    pub fn step_phases_journaled(
        &mut self,
        observer: &mut dyn FnMut(&'static str, WorkCounters),
        journal: &mut Journal,
    ) -> StepReport {
        let time_before = self.time;
        let report = self.step_phases(observer);
        let t0 = journal.now();
        // `report.dt` is the *next* step's dt; this step advanced time
        // by `report.t - time_before`.
        let step_dt = report.t - time_before;
        journal.advance(step_dt);
        if journal.is_enabled() {
            journal.push_span(
                Scope::Timestep,
                format!("step:{}", report.step),
                t0,
                None,
                vec![
                    ("step", report.step as f64),
                    ("dt", step_dt),
                    ("instructions", report.work.instructions as f64),
                ],
            );
        }
        report
    }

    /// Run `n` steps, returning the accumulated work.
    pub fn run_steps(&mut self, n: u64) -> WorkCounters {
        let mut total = WorkCounters::new();
        for _ in 0..n {
            total += self.step().work;
        }
        total
    }

    /// Run `n` steps like [`Simulation::run_steps`], journaling each.
    pub fn run_steps_journaled(&mut self, n: u64, journal: &mut Journal) -> WorkCounters {
        let mut total = WorkCounters::new();
        for _ in 0..n {
            total += self.step_journaled(journal).work;
        }
        total
    }

    /// Run `n` steps, recording a snapshot of the state into `series`
    /// every `every`-th step (by global step count) — the feed for
    /// time-varying consumers (pathline advection). The series' ring
    /// capacity bounds retention, so a long run keeps a sliding window
    /// rather than every exported state. The final state is always
    /// recorded, so the retained window ends at the simulation's
    /// current time even when `n` is off-cadence.
    pub fn run_steps_recording(
        &mut self,
        n: u64,
        every: u64,
        series: &mut FieldSeries,
    ) -> WorkCounters {
        self.run_recording(n, every, series, None)
    }

    /// [`Simulation::run_steps_recording`] with the journaling of
    /// [`Simulation::run_steps_journaled`]. Snapshot recording itself
    /// emits nothing: the journal sees exactly the same timestep spans
    /// as an unrecorded run, so recording cannot perturb golden traces.
    pub fn run_steps_recording_journaled(
        &mut self,
        n: u64,
        every: u64,
        series: &mut FieldSeries,
        journal: &mut Journal,
    ) -> WorkCounters {
        self.run_recording(n, every, series, Some(journal))
    }

    fn run_recording(
        &mut self,
        n: u64,
        every: u64,
        series: &mut FieldSeries,
        mut journal: Option<&mut Journal>,
    ) -> WorkCounters {
        // lint: cadence precondition, caller bug
        assert!(every > 0, "recording cadence must be positive");
        let mut total = WorkCounters::new();
        for _ in 0..n {
            let report = match journal.as_deref_mut() {
                Some(j) => self.step_journaled(j),
                None => self.step(),
            };
            total += report.work;
            if self.step % every == 0 {
                series.record(self.time, Arc::new(self.dataset()));
            }
        }
        if n > 0 && series.last_time() != Some(self.time) {
            series.record(self.time, Arc::new(self.dataset()));
        }
        total
    }

    /// Export the current state for visualization.
    pub fn dataset(&self) -> DataSet {
        self.state.to_dataset()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steps_advance_time_monotonically() {
        let mut sim = Simulation::new(Problem::TwoState, 6, SimConfig::default());
        let mut last_t = 0.0;
        for _ in 0..5 {
            let r = sim.step();
            assert!(r.t > last_t);
            assert!(r.dt > 0.0);
            last_t = r.t;
        }
        assert_eq!(sim.step_count(), 5);
    }

    #[test]
    fn mass_is_conserved_over_many_steps() {
        let mut sim = Simulation::new(Problem::TwoState, 8, SimConfig::default());
        let m0 = sim.state.total_mass();
        sim.run_steps(50);
        let m1 = sim.state.total_mass();
        assert!(((m1 - m0) / m0).abs() < 1e-10, "mass drift {m0} -> {m1}");
    }

    #[test]
    fn energy_front_propagates_outward() {
        let mut sim = Simulation::new(Problem::TwoState, 12, SimConfig::default());
        // Sample a cell on the diagonal, outside the initial source region.
        let probe = sim.state.grid.cell_id(6, 6, 6);
        let e_before = sim.state.energy[probe];
        sim.run_steps(200);
        // After the front passes, pressure/energy at the probe cell should
        // have changed from the quiescent background value.
        let e_after = sim.state.energy[probe];
        assert!(
            (e_after - e_before).abs() > 1e-6,
            "front never reached probe: {e_before} vs {e_after}"
        );
    }

    #[test]
    fn state_remains_physical() {
        let mut sim = Simulation::new(Problem::TwoState, 8, SimConfig::default());
        sim.run_steps(100);
        assert!(sim.state.density.iter().all(|d| d.is_finite() && *d > 0.0));
        assert!(sim.state.energy.iter().all(|e| e.is_finite() && *e > 0.0));
        assert!(sim.state.velocity.iter().all(|u| u.is_finite()));
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut sim = Simulation::new(Problem::TwoState, 6, SimConfig::default());
            sim.run_steps(20);
            sim.state.energy.clone()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn journaled_steps_advance_journal_clock() {
        use powersim::trace::Event;
        let mut sim = Simulation::new(Problem::TwoState, 6, SimConfig::default());
        let mut journal = Journal::with_capacity(64);
        sim.run_steps_journaled(5, &mut journal);
        assert!((journal.now() - sim.time()).abs() < 1e-12);
        let spans = journal
            .events()
            .filter(|e| matches!(e, Event::Span(s) if s.scope == Scope::Timestep))
            .count();
        assert_eq!(spans, 5);
    }

    #[test]
    fn step_phases_reports_every_kernel_and_sums_to_step_work() {
        let mut sim = Simulation::new(Problem::TwoState, 6, SimConfig::default());
        let mut names = Vec::new();
        let mut instructions = 0u64;
        let r = sim.step_phases(&mut |name, w| {
            names.push(name);
            instructions += w.instructions;
        });
        assert_eq!(
            names,
            vec![
                "ideal_gas",
                "divergence",
                "viscosity",
                "acceleration",
                "divergence",
                "pdv",
                "advect",
                "calc_dt",
            ]
        );
        assert_eq!(instructions, r.work.instructions);
    }

    #[test]
    fn step_phases_matches_plain_step() {
        let mut plain = Simulation::new(Problem::TwoState, 6, SimConfig::default());
        let mut observed = Simulation::new(Problem::TwoState, 6, SimConfig::default());
        for _ in 0..5 {
            let a = plain.step();
            let b = observed.step_phases(&mut |_, _| {});
            assert_eq!(a.t, b.t);
            assert_eq!(a.work.instructions, b.work.instructions);
        }
        assert_eq!(plain.state.energy, observed.state.energy);
    }

    #[test]
    fn recording_retains_a_bounded_ring_past_step_200() {
        let mut sim = Simulation::new(Problem::TwoState, 6, SimConfig::default());
        let mut series = FieldSeries::with_capacity(4);
        sim.run_steps_recording(240, 20, &mut series);
        assert_eq!(sim.step_count(), 240);
        // 12 recorded snapshots (steps 20, 40, ..., 240), ring keeps 4.
        assert_eq!(series.len(), 4);
        assert_eq!(series.evicted(), 8);
        let times: Vec<f64> = series.snapshots().map(|(t, _)| t).collect();
        assert!(times.windows(2).all(|w| w[0] < w[1]), "times increase");
        assert_eq!(series.last_time(), Some(sim.time()));
        // The retained snapshots are genuinely different states.
        let energies: Vec<f64> = series
            .snapshots()
            .map(|(_, ds)| {
                ds.point_scalars("energy")
                    .expect("hydro exports energy") // lint: export contract
                    .iter()
                    .sum()
            })
            .collect();
        assert!(
            energies.windows(2).any(|w| w[0] != w[1]),
            "snapshots must not alias one evolving state"
        );
    }

    #[test]
    fn recording_appends_the_final_state_when_off_cadence() {
        let mut sim = Simulation::new(Problem::TwoState, 6, SimConfig::default());
        let mut series = FieldSeries::with_capacity(8);
        sim.run_steps_recording(10, 4, &mut series);
        // Cadence snapshots at steps 4 and 8, plus the final state at 10.
        assert_eq!(series.len(), 3);
        assert_eq!(series.last_time(), Some(sim.time()));
    }

    #[test]
    fn recording_journaled_matches_plain_recording() {
        let run = |journaled: bool| {
            let mut sim = Simulation::new(Problem::TwoState, 6, SimConfig::default());
            let mut series = FieldSeries::with_capacity(4);
            if journaled {
                let mut journal = Journal::with_capacity(256);
                sim.run_steps_recording_journaled(24, 8, &mut series, &mut journal);
                assert!((journal.now() - sim.time()).abs() < 1e-12);
            } else {
                sim.run_steps_recording(24, 8, &mut series);
            }
            let times: Vec<f64> = series.snapshots().map(|(t, _)| t).collect();
            (times, sim.state.energy.clone())
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn work_counters_scale_with_grid() {
        let mut small = Simulation::new(Problem::TwoState, 4, SimConfig::default());
        let mut large = Simulation::new(Problem::TwoState, 8, SimConfig::default());
        let ws = small.step().work;
        let wl = large.step().work;
        // 8x the cells → roughly 8x the instructions.
        let ratio = wl.instructions as f64 / ws.instructions as f64;
        assert!(ratio > 5.0 && ratio < 11.0, "ratio = {ratio}");
    }
}
