//! Initial-condition problems.

use crate::eos;
use crate::state::State;
use vizmesh::{UniformGrid, Vec3};

/// Built-in problem definitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Problem {
    /// CloverLeaf's standard benchmark: a cold, dense background with a
    /// hot, light source region in the low corner. Drives an energy front
    /// diagonally through the box.
    TwoState,
    /// A hot sphere at the domain center; useful for the spherical-clip
    /// and isovolume demos because the resulting field is radially
    /// symmetric.
    HotSphere,
    /// Three hot slabs of different strengths; produces a multi-front
    /// field with rich contour topology.
    TripleSlab,
}

impl Problem {
    /// Construct the initial [`State`] on a grid of `n³` cells over the
    /// unit cube.
    pub fn build(self, n: usize) -> State {
        self.build_on(UniformGrid::cube_cells(n))
    }

    /// Construct the initial [`State`] on an arbitrary grid.
    pub fn build_on(self, grid: UniformGrid) -> State {
        let mut s = State::quiescent(grid);
        match self {
            Problem::TwoState => {
                // Background: ρ = 0.2, e = 1.0  (CloverLeaf state 1)
                // Source:     ρ = 1.0, e = 2.5  in [0, 0.3]³ of the unit cube
                let b = s.grid.bounds();
                let ext = b.extent();
                for c in 0..s.grid.num_cells() {
                    let p = s.grid.cell_center(c);
                    let rel = Vec3::new(
                        (p.x - b.min.x) / ext.x,
                        (p.y - b.min.y) / ext.y,
                        (p.z - b.min.z) / ext.z,
                    );
                    if rel.x < 0.3 && rel.y < 0.3 && rel.z < 0.3 {
                        s.density[c] = 1.0;
                        s.energy[c] = 2.5;
                    } else {
                        s.density[c] = 0.2;
                        s.energy[c] = 1.0;
                    }
                }
            }
            Problem::HotSphere => {
                let b = s.grid.bounds();
                let center = b.center();
                let radius = b.diagonal() * 0.15;
                for c in 0..s.grid.num_cells() {
                    let p = s.grid.cell_center(c);
                    if p.distance(center) < radius {
                        s.density[c] = 1.0;
                        s.energy[c] = 3.0;
                    } else {
                        s.density[c] = 0.25;
                        s.energy[c] = 1.0;
                    }
                }
            }
            Problem::TripleSlab => {
                let b = s.grid.bounds();
                let ext = b.extent();
                for c in 0..s.grid.num_cells() {
                    let p = s.grid.cell_center(c);
                    let rx = (p.x - b.min.x) / ext.x;
                    let (rho, e) = if rx < 0.2 {
                        (1.0, 2.0)
                    } else if rx < 0.45 {
                        (0.4, 1.0)
                    } else if rx < 0.65 {
                        (0.8, 1.6)
                    } else {
                        (0.2, 1.0)
                    };
                    s.density[c] = rho;
                    s.energy[c] = e;
                }
            }
        }
        // Initialize pressure and sound speed so the first CFL computation
        // is meaningful.
        for c in 0..s.grid.num_cells() {
            s.pressure[c] = eos::pressure(s.density[c], s.energy[c]);
            s.soundspeed[c] = eos::sound_speed(s.density[c], s.pressure[c]);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_state_has_hot_corner() {
        let s = Problem::TwoState.build(8);
        // Cell 0 is in the source region.
        assert_eq!(s.energy[0], 2.5);
        assert_eq!(s.density[0], 1.0);
        // Far corner is background.
        let far = s.grid.num_cells() - 1;
        assert_eq!(s.energy[far], 1.0);
        assert_eq!(s.density[far], 0.2);
    }

    #[test]
    fn pressure_initialized_consistently() {
        let s = Problem::TwoState.build(4);
        for c in 0..s.grid.num_cells() {
            let expect = eos::pressure(s.density[c], s.energy[c]);
            assert!((s.pressure[c] - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn hot_sphere_is_radially_symmetric() {
        let s = Problem::HotSphere.build(8);
        let g = &s.grid;
        // Mirror cells across the center have equal energy.
        for (a, b) in [((1, 2, 3), (6, 5, 4)), ((0, 0, 0), (7, 7, 7))] {
            let ca = g.cell_id(a.0, a.1, a.2);
            let cb = g.cell_id(b.0, b.1, b.2);
            assert_eq!(s.energy[ca], s.energy[cb]);
        }
    }

    #[test]
    fn triple_slab_has_three_energy_levels() {
        let s = Problem::TripleSlab.build(16);
        let mut levels: Vec<u64> = s.energy.iter().map(|e| (e * 10.0) as u64).collect();
        levels.sort_unstable();
        levels.dedup();
        assert_eq!(levels.len(), 3, "expected 3 distinct energies");
    }

    #[test]
    fn all_problems_have_positive_state() {
        for p in [Problem::TwoState, Problem::HotSphere, Problem::TripleSlab] {
            let s = p.build(6);
            assert!(s.density.iter().all(|&d| d > 0.0));
            assert!(s.energy.iter().all(|&e| e > 0.0));
            assert!(s.pressure.iter().all(|&p| p > 0.0));
        }
    }
}
