//! The Moreland–Oldfield rate of §V-C: elements processed per second.
//!
//! The paper compares the cell-centered algorithms with `n / T(n, p)`
//! (data-set cells over execution time) rather than classical speedup,
//! because serial baselines are impractical at scale.

use powersim::units::Watts;
use serde::{Deserialize, Serialize};

/// Elements/second for one (cap, time) measurement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rate {
    pub cap_watts: Watts,
    /// Millions of elements (input cells) processed per second.
    pub melements_per_sec: f64,
}

/// The Moreland–Oldfield rate: `n / T`, reported in millions/s.
pub fn rate(input_cells: usize, seconds: f64) -> f64 {
    assert!(seconds > 0.0, "rate needs a positive execution time");
    input_cells as f64 / seconds / 1.0e6
}

/// Rates across a cap sweep.
pub fn rates(input_cells: usize, rows: &[(Watts, f64)]) -> Vec<Rate> {
    rows.iter()
        .map(|&(cap_watts, seconds)| Rate {
            cap_watts,
            melements_per_sec: rate(input_cells, seconds),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_matches_definition() {
        // 128³ cells in 33.477 s (Table I) ≈ 0.0626 M elements/s per
        // visualization cycle set.
        let r = rate(128 * 128 * 128, 33.477);
        assert!((r - 2097152.0 / 33.477 / 1e6).abs() < 1e-9);
    }

    #[test]
    fn higher_rate_means_more_efficient() {
        assert!(rate(1000, 1.0) > rate(1000, 2.0));
        assert!(rate(2000, 1.0) > rate(1000, 1.0));
    }

    #[test]
    fn sweep_rates_preserve_order() {
        let rows = vec![
            (Watts(120.0), 10.0),
            (Watts(80.0), 10.0),
            (Watts(40.0), 14.0),
        ];
        let rs = rates(1_000_000, &rows);
        assert_eq!(rs.len(), 3);
        assert_eq!(rs[0].cap_watts, 120.0);
        // Flat until the severe cap, then the rate declines (Fig. 3).
        assert_eq!(rs[0].melements_per_sec, rs[1].melements_per_sec);
        assert!(rs[2].melements_per_sec < rs[1].melements_per_sec);
    }

    #[test]
    #[should_panic]
    fn zero_time_panics() {
        let _ = rate(10, 0.0);
    }
}
