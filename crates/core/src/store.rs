//! The thread-safe dataset store: the dataset half of the
//! [`StudyContext`](crate::study::StudyContext) cache, extracted so the
//! study service (`crates/service`) can share hydro solves and
//! upsampled grids across worker threads.
//!
//! `StudyContext` is single-threaded by construction (`&mut self`
//! everywhere, one owned journal); the service's worker pool is not.
//! This store keeps the exact caching discipline the context always had
//! — the hydro base solve is computed once per `min(size, 64)` and
//! every size above [`HYDRO_BASE_MAX`](crate::study::HYDRO_BASE_MAX)
//! upsamples from it; hits hand back another [`Arc`] handle, never a
//! deep clone — behind interior mutability, and adds a cached 48-bit
//! content fingerprint ([`vizalgo::dataset_fingerprint`]) per size, the
//! `data_fp` component of the service's cache key.
//!
//! Builds are single-flight: the size map's lock is held across the
//! build, so concurrent requests for the same (or any) size serialize
//! onto one solve instead of duplicating it. That is the same trade the
//! service's result cache makes — bounded redundant work beats bounded
//! extra latency here, because a duplicated 64³ hydro solve costs far
//! more than any wait.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use cloverleaf::{Problem, SimConfig, Simulation};
use powersim::trace::{Journal, Scope};
use vizmesh::DataSet;

use crate::study::{upsample, HYDRO_BASE_MAX, HYDRO_T_END};

/// Keyed maps of shared dataset handles plus their content
/// fingerprints. See the module docs for the caching discipline.
#[derive(Debug, Default)]
pub struct DatasetStore {
    /// Hydro base solves, keyed by `min(size, HYDRO_BASE_MAX)`.
    base: Mutex<BTreeMap<usize, Arc<DataSet>>>,
    /// Study datasets at full size (the base itself, or its upsample).
    full: Mutex<BTreeMap<usize, Arc<DataSet>>>,
    /// 48-bit dataset fingerprints, keyed by size.
    fingerprints: Mutex<BTreeMap<usize, u64>>,
}

impl DatasetStore {
    /// An empty store.
    pub fn new() -> DatasetStore {
        DatasetStore::default()
    }

    /// Dataset at `size`, computed once; the hydro base is shared, and
    /// a hit returns another handle to the cached allocation.
    pub fn dataset(&self, size: usize) -> Arc<DataSet> {
        self.dataset_journaled(size, &mut Journal::off())
    }

    /// [`dataset`](DatasetStore::dataset), journaling a fresh base
    /// solve the way `StudyContext` always has: per-timestep
    /// [`Scope::Timestep`] spans from the hydro driver plus one
    /// `dataset:{base_n}` [`Scope::Study`] span. Cache hits emit
    /// nothing, so journal bytes are unchanged by the extraction.
    pub fn dataset_journaled(&self, size: usize, journal: &mut Journal) -> Arc<DataSet> {
        let mut full = self.full.lock().expect("dataset store poisoned");
        if let Some(ds) = full.get(&size) {
            return Arc::clone(ds);
        }
        let base_n = size.min(HYDRO_BASE_MAX);
        let base = {
            let mut bases = self.base.lock().expect("dataset store poisoned");
            if let Some(base) = bases.get(&base_n) {
                Arc::clone(base)
            } else {
                let base = Arc::new(solve_base(base_n, journal));
                bases.insert(base_n, Arc::clone(&base));
                base
            }
        };
        let ds = if base_n == size {
            base
        } else {
            Arc::new(upsample(&base, size))
        };
        full.insert(size, Arc::clone(&ds));
        ds
    }

    /// 48-bit content fingerprint of the dataset at `size`
    /// ([`vizalgo::dataset_fingerprint`]), computed once per size —
    /// the `data_fp` component of the service cache key.
    pub fn fingerprint(&self, size: usize) -> u64 {
        if let Some(&fp) = self
            .fingerprints
            .lock()
            .expect("dataset store poisoned")
            .get(&size)
        {
            return fp;
        }
        let ds = self.dataset(size);
        let fp = vizalgo::dataset_fingerprint(&ds);
        self.fingerprints
            .lock()
            .expect("dataset store poisoned")
            .insert(size, fp);
        fp
    }

    /// Number of distinct full-size datasets built so far.
    pub fn len(&self) -> usize {
        self.full.lock().expect("dataset store poisoned").len()
    }

    /// Whether no dataset has been built yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The **one** construction site for study hydro bases: solve the
/// TwoState problem at `base_n` to [`HYDRO_T_END`], journaling
/// per-timestep [`Scope::Timestep`] spans plus one `dataset:{base_n}`
/// [`Scope::Study`] span when the journal is live. Both the store above
/// and the free [`crate::study::dataset_for`] (which passes
/// [`Journal::off`]) build through here, so the solve loop and its
/// journal shape cannot drift apart.
pub(crate) fn solve_base(base_n: usize, journal: &mut Journal) -> DataSet {
    let t0 = journal.now();
    let mut sim = Simulation::new(Problem::TwoState, base_n, SimConfig::default());
    while sim.time() < HYDRO_T_END {
        sim.step_journaled(journal);
    }
    if journal.is_enabled() {
        journal.push_span(
            Scope::Study,
            format!("dataset:{base_n}"),
            t0,
            None,
            vec![
                ("cells", (base_n * base_n * base_n) as f64),
                ("steps", sim.step_count() as f64),
            ],
        );
    }
    sim.dataset()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn hits_share_allocations_and_bases_are_reused() {
        let store = DatasetStore::new();
        let a = store.dataset(8);
        let b = store.dataset(8);
        assert!(Arc::ptr_eq(&a, &b), "cache hit must share the allocation");
        assert_eq!(store.len(), 1);
        store.dataset(10);
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn fingerprints_are_cached_and_size_distinct() {
        let store = DatasetStore::new();
        let f8 = store.fingerprint(8);
        assert_eq!(f8, store.fingerprint(8));
        assert_ne!(f8, store.fingerprint(10), "sizes fingerprint differently");
        assert_eq!(
            f8,
            vizalgo::dataset_fingerprint(&store.dataset(8)),
            "cached fingerprint matches a fresh computation"
        );
    }

    #[test]
    fn concurrent_requests_converge_on_one_build() {
        let store = Arc::new(DatasetStore::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let store = Arc::clone(&store);
                thread::spawn(move || store.dataset(9))
            })
            .collect();
        let datasets: Vec<Arc<DataSet>> = handles
            .into_iter()
            .map(|h| h.join().expect("builder thread panicked"))
            .collect();
        for ds in &datasets[1..] {
            assert!(
                Arc::ptr_eq(&datasets[0], ds),
                "all threads must share one build"
            );
        }
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn matches_the_free_function() {
        let store = DatasetStore::new();
        let from_store = store.dataset(6);
        let direct = crate::study::dataset_for(6);
        assert_eq!(
            vizalgo::dataset_fingerprint(&from_store),
            vizalgo::dataset_fingerprint(&direct),
            "store and dataset_for agree bit-for-bit"
        );
    }
}
