//! The study drivers: native instrumented runs and power-cap sweeps.
//!
//! The key structural insight of the reproduction: a *native run*
//! (actually executing an algorithm against CloverLeaf data and
//! collecting its work counts) happens **once** per (algorithm, size);
//! the nine power caps are then simulated from that one measured
//! workload, because the cap changes how the machine executes the work,
//! not what work the algorithm does.

use crate::characterize::characterize;
use crate::metrics::Ratios;
use crate::store::DatasetStore;
use powersim::trace::{Journal, Scope};
use powersim::{CpuSpec, ExecResult, Joules, Package, Watts, Workload};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;
use vizalgo::{Algorithm, AlgorithmSpec, Filter, IsoValues, KernelReport, ScalarBand, SphereSpec};
use vizmesh::DataSet;

/// The paper's nine processor power caps (W).
pub const PAPER_CAPS: [Watts; 9] = [
    Watts(120.0),
    Watts(110.0),
    Watts(100.0),
    Watts(90.0),
    Watts(80.0),
    Watts(70.0),
    Watts(60.0),
    Watts(50.0),
    Watts(40.0),
];

/// The paper's four data-set sizes (cells per axis).
pub const PAPER_SIZES: [usize; 4] = [32, 64, 128, 256];

/// Tunable experiment parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StudyConfig {
    /// Power caps to sweep.
    pub caps: Vec<Watts>,
    /// Isovalues per contour cycle (paper: 10).
    pub isovalues: usize,
    /// Rendered image resolution (square).
    pub render_px: usize,
    /// Images per visualization cycle for the renderers (paper: 50).
    pub cameras: usize,
    /// Particle advection seeds and steps (paper-style: 1000 × 1000).
    pub particles: usize,
    pub advect_steps: usize,
}

impl StudyConfig {
    /// Paper-faithful parameters (native runs take minutes at 256³).
    pub fn paper() -> Self {
        StudyConfig {
            caps: PAPER_CAPS.to_vec(),
            isovalues: 10,
            render_px: 128,
            cameras: 50,
            particles: 1000,
            advect_steps: 1000,
        }
    }

    /// Scaled-down parameters for tests and quick sanity runs. The
    /// workload *mix* (which drives all the ratios) is preserved; only
    /// absolute sizes shrink.
    pub fn quick() -> Self {
        StudyConfig {
            caps: PAPER_CAPS.to_vec(),
            isovalues: 5,
            render_px: 32,
            cameras: 4,
            particles: 120,
            advect_steps: 150,
        }
    }

    /// The canonical [`AlgorithmSpec`] this configuration runs for an
    /// algorithm: the paper's §IV parameterization with this config's
    /// size knobs substituted in. All study filters are built from
    /// these specs via [`AlgorithmSpec::build`].
    pub fn spec(&self, algorithm: Algorithm) -> AlgorithmSpec {
        match algorithm {
            Algorithm::Contour => AlgorithmSpec::Contour {
                field: "energy".into(),
                isovalues: IsoValues::Spanning(self.isovalues),
            },
            Algorithm::Threshold => AlgorithmSpec::Threshold {
                field: "energy".into(),
                band: ScalarBand::UpperFraction(0.5),
            },
            Algorithm::SphericalClip => AlgorithmSpec::SphericalClip {
                field: "energy".into(),
                sphere: SphereSpec::RadiusFraction(0.3),
            },
            Algorithm::Isovolume => AlgorithmSpec::Isovolume {
                field: "energy".into(),
                band: ScalarBand::MiddleBand(0.5),
            },
            Algorithm::Slice => AlgorithmSpec::Slice {
                field: "energy".into(),
            },
            Algorithm::ParticleAdvection => AlgorithmSpec::ParticleAdvection {
                field: "velocity".into(),
                particles: self.particles,
                steps: self.advect_steps,
                step_fraction: 5e-4,
                seed: 0x5eed_1234,
                scenario: Default::default(),
            },
            Algorithm::RayTracing => AlgorithmSpec::RayTracing {
                field: "energy".into(),
                width: self.render_px,
                height: self.render_px,
                images: self.cameras,
            },
            Algorithm::VolumeRendering => AlgorithmSpec::VolumeRendering {
                field: "energy".into(),
                width: self.render_px,
                height: self.render_px,
                images: self.cameras,
            },
        }
    }
}

/// Physical end time of the hydro run feeding the study. By this time the
/// CloverLeaf-style energy front has swept a large fraction of the box,
/// giving the visualization algorithms the same rich field structure the
/// paper's cycle-200 snapshots show (Fig. 1).
pub const HYDRO_T_END: f64 = 0.35;

/// The hydro solve runs at most at this resolution; larger study sizes
/// are produced by trilinear upsampling (see [`dataset_for`]).
pub const HYDRO_BASE_MAX: usize = 64;

/// Produce the study dataset for a given size.
///
/// The hydrodynamics solve runs at `min(size, 64)` to [`HYDRO_T_END`] and
/// is trilinearly upsampled to `size`. This substitution (documented in
/// DESIGN.md) keeps data generation tractable on one core while the
/// visualization algorithms still process full-resolution `size³` data —
/// their instrumented work counts, which drive all power results, are
/// exact at the target size. It also makes the field structure identical
/// across sizes, which is the premise of the paper's Figs. 4–6 (IPC
/// trends attributed to data volume, not field differences).
///
/// Delegates to the one journaled construction site
/// ([`crate::store::solve_base`]) with the journal off, so the free
/// function and [`DatasetStore`] can never produce different bits.
pub fn dataset_for(size: usize) -> DataSet {
    let base_n = size.min(HYDRO_BASE_MAX);
    let base = crate::store::solve_base(base_n, &mut Journal::off());
    if base_n == size {
        base
    } else {
        upsample(&base, size)
    }
}

/// Trilinearly upsample a structured dataset's fields onto an `n³` grid
/// spanning the same bounds.
pub fn upsample(base: &DataSet, n: usize) -> DataSet {
    use vizmesh::{Association, Field, UniformGrid};
    let bgrid = base.as_uniform().expect("upsample needs a structured base");
    let grid = UniformGrid::from_cell_dims([n, n, n], bgrid.bounds());
    let mut ds = DataSet::uniform(grid.clone());
    let clamp_in = |p: vizmesh::Vec3| {
        // Keep sampling points strictly inside the base grid.
        let b = bgrid.bounds();
        vizmesh::Vec3::new(
            p.x.clamp(b.min.x, b.max.x),
            p.y.clamp(b.min.y, b.max.y),
            p.z.clamp(b.min.z, b.max.z),
        )
    };
    // Point scalar + vector fields.
    if let Some(vals) = base.point_scalars("energy") {
        let out: Vec<f64> = (0..grid.num_points())
            .map(|id| {
                bgrid
                    .sample_scalar(vals, clamp_in(grid.point_coord_id(id)))
                    .unwrap_or(0.0)
            })
            .collect();
        ds.add_field(Field::scalar("energy", Association::Points, out));
    }
    if let Some(vel) = base.point_vectors("velocity") {
        let out: Vec<vizmesh::Vec3> = (0..grid.num_points())
            .map(|id| {
                bgrid
                    .sample_vector(vel, clamp_in(grid.point_coord_id(id)))
                    .unwrap_or(vizmesh::Vec3::ZERO)
            })
            .collect();
        ds.add_field(Field::vector("velocity", Association::Points, out));
    }
    // Cell fields: sample the base *point* field at the new cell centers.
    if let Some(vals) = base.point_scalars("energy") {
        let out: Vec<f64> = (0..grid.num_cells())
            .map(|c| {
                bgrid
                    .sample_scalar(vals, clamp_in(grid.cell_center(c)))
                    .unwrap_or(0.0)
            })
            .collect();
        ds.add_field(Field::scalar("energy", Association::Cells, out));
    }
    ds
}

/// One native (really-executed) instrumented run.
#[derive(Debug, Clone)]
pub struct AlgorithmRun {
    pub algorithm: Algorithm,
    pub size: usize,
    /// Cells in the input dataset (for the Fig. 3 rate).
    pub input_cells: usize,
    /// The exact plan the run executed (its
    /// [`fingerprint`](AlgorithmSpec::fingerprint) rides in every
    /// journal span derived from this run).
    pub spec: AlgorithmSpec,
    pub reports: Vec<KernelReport>,
}

/// Execute an algorithm natively against `input`, collecting its reports.
pub fn native_run(
    config: &StudyConfig,
    algorithm: Algorithm,
    size: usize,
    input: &DataSet,
) -> AlgorithmRun {
    let spec = config.spec(algorithm);
    let filter: Box<dyn Filter> = spec.build(input);
    let out = filter.execute(input);
    AlgorithmRun {
        algorithm,
        size,
        input_cells: input.num_cells(),
        spec,
        reports: out.kernels,
    }
}

/// The power-cap sweep of one algorithm at one size.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CapSweep {
    pub algorithm: Algorithm,
    pub size: usize,
    pub input_cells: usize,
    /// One result per cap, in the order the caps were given.
    pub rows: Vec<ExecResult>,
}

impl CapSweep {
    /// §V-A ratios of every row against the first (default-power) row.
    /// An empty sweep has no baseline and yields no ratios.
    pub fn ratios(&self) -> Vec<Ratios> {
        let Some(base) = self.rows.first() else {
            return Vec::new();
        };
        self.rows
            .iter()
            .map(|r| {
                Ratios::new(
                    base.cap_watts,
                    base.seconds,
                    base.avg_effective_freq_ghz,
                    r.cap_watts,
                    r.seconds,
                    r.avg_effective_freq_ghz,
                )
            })
            .collect()
    }

    /// The default-power (first-row) execution, if the sweep ran any
    /// caps at all.
    pub fn baseline(&self) -> Option<&ExecResult> {
        self.rows.first()
    }

    /// Row at a specific cap.
    pub fn at_cap(&self, cap: Watts) -> Option<&ExecResult> {
        self.rows.iter().find(|r| (r.cap_watts - cap).abs() < 0.5)
    }

    /// [`baseline`](CapSweep::baseline), but an empty sweep is an
    /// actionable error instead of `None`. The Option-returning
    /// accessors exist for report renderers that legitimately skip
    /// empty sweeps; paths that *serve* a result — the study service's
    /// job executor — must surface the misconfiguration instead of
    /// silently dropping the request.
    pub fn require_baseline(&self) -> Result<&ExecResult, EmptySweepError> {
        self.baseline().ok_or(EmptySweepError {
            algorithm: self.algorithm,
            size: self.size,
        })
    }

    /// [`ratios`](CapSweep::ratios), but an empty sweep is an
    /// actionable error instead of an empty vector.
    pub fn require_ratios(&self) -> Result<Vec<Ratios>, EmptySweepError> {
        self.require_baseline()?;
        Ok(self.ratios())
    }
}

/// A cap sweep ran zero caps, so it has no baseline row and no ratios.
/// Every Option-chain caller of [`CapSweep::baseline`]/[`CapSweep::ratios`]
/// silently drops such a sweep; [`CapSweep::require_baseline`] turns it
/// into this error for paths that must answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EmptySweepError {
    /// Algorithm the empty sweep was for.
    pub algorithm: Algorithm,
    /// Data size (cells per axis) the empty sweep was for.
    pub size: usize,
}

impl std::fmt::Display for EmptySweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cap sweep of {} at {}\u{b3} has no rows: the study config's cap \
             list is empty, so there is no baseline to answer with; configure \
             at least one cap (e.g. StudyConfig::paper()'s 120 W default)",
            self.algorithm, self.size
        )
    }
}

impl std::error::Error for EmptySweepError {}

/// Characterize a native run and execute it under every cap.
pub fn sweep(run: &AlgorithmRun, caps: &[Watts], spec: &CpuSpec) -> CapSweep {
    sweep_journaled(run, caps, spec, &mut Journal::off())
}

/// [`sweep`], emitting one [`Scope::Sweep`] span per cap point whose
/// joules are the row's total energy (the rollup of that execution's
/// kernel spans), plus the executor's own events.
pub fn sweep_journaled(
    run: &AlgorithmRun,
    caps: &[Watts],
    spec: &CpuSpec,
    journal: &mut Journal,
) -> CapSweep {
    let workload: Workload = characterize(run.algorithm.name(), &run.reports, spec);
    assert!(
        !workload.is_empty(),
        "{} produced an empty workload",
        run.algorithm
    );
    let spec_fp = run.spec.fingerprint() as f64;
    let rows = caps
        .iter()
        .map(|&cap| {
            let t0 = journal.now();
            let mut pkg = Package::new(spec.clone());
            let row = pkg.run_capped_journaled(&workload, cap, journal);
            if journal.is_enabled() {
                journal.push_span(
                    Scope::Sweep,
                    format!("cap:{:.0}W", cap.value()),
                    t0,
                    Some(row.energy_joules),
                    vec![
                        ("cap_watts", cap.value()),
                        ("seconds", row.seconds),
                        ("spec_fp", spec_fp),
                    ],
                );
            }
            row
        })
        .collect();
    CapSweep {
        algorithm: run.algorithm,
        size: run.size,
        input_cells: run.input_cells,
        rows,
    }
}

/// A cache of datasets and native runs so the experiment harness never
/// repeats an expensive native execution. The hydro base solve is cached
/// separately so every size above [`HYDRO_BASE_MAX`] reuses it.
///
/// Entries are keyed maps of shared [`Arc`]s: a cache hit hands back
/// another handle to the same allocation, never a deep clone of a
/// dataset or report vector, so the governor/insitu consumers can hold
/// the same data the study drivers use.
///
/// The context owns the study's run [`Journal`] (disabled by default;
/// see [`StudyContext::enable_journal`]): dataset builds, native runs,
/// sweeps, and experiment phases all record into it.
#[derive(Default)]
pub struct StudyContext {
    pub config: Option<StudyConfig>,
    /// The study-wide run journal (disabled unless enabled explicitly).
    pub journal: Journal,
    store: DatasetStore,
    runs: BTreeMap<(Algorithm, usize), Arc<AlgorithmRun>>,
}

impl StudyContext {
    pub fn new(config: StudyConfig) -> Self {
        StudyContext {
            config: Some(config),
            journal: Journal::off(),
            store: DatasetStore::new(),
            runs: BTreeMap::new(),
        }
    }

    /// Start journaling into a ring buffer of at most `capacity` events.
    pub fn enable_journal(&mut self, capacity: usize) {
        self.journal = Journal::with_capacity(capacity);
    }

    pub fn config(&self) -> StudyConfig {
        self.config.clone().unwrap_or_else(StudyConfig::paper)
    }

    /// Number of distinct native runs computed so far.
    pub fn cached_runs(&self) -> usize {
        self.runs.len()
    }

    /// Dataset at `size`, computed once; the hydro base is shared, and a
    /// hit returns another handle to the cached allocation. Delegates to
    /// the context's [`DatasetStore`], journaling fresh base solves
    /// exactly as before the extraction.
    pub fn dataset(&mut self, size: usize) -> Arc<DataSet> {
        self.store.dataset_journaled(size, &mut self.journal)
    }

    /// The context's dataset store, for consumers (the study service)
    /// that share datasets across threads.
    pub fn store(&self) -> &DatasetStore {
        &self.store
    }

    /// Native run for (algorithm, size), computed once; a hit returns
    /// another handle to the cached run, reports and all.
    pub fn run(&mut self, algorithm: Algorithm, size: usize) -> Arc<AlgorithmRun> {
        if let Some(r) = self.runs.get(&(algorithm, size)) {
            return Arc::clone(r);
        }
        let config = self.config();
        let ds = self.dataset(size);
        let t0 = self.journal.now();
        let run = Arc::new(native_run(&config, algorithm, size, &ds));
        if self.journal.is_enabled() {
            let instructions: u64 = run.reports.iter().map(|r| r.work.instructions).sum();
            self.journal.push_span(
                Scope::Study,
                format!("native:{}:{size}", algorithm.name()),
                t0,
                None,
                vec![
                    ("kernels", run.reports.len() as f64),
                    ("instructions", instructions as f64),
                    ("spec_fp", run.spec.fingerprint() as f64),
                ],
            );
        }
        self.runs.insert((algorithm, size), Arc::clone(&run));
        run
    }

    /// Sweep an algorithm at a size over the configured caps, emitting
    /// (when the journal is enabled) a [`Scope::Study`] span whose
    /// joules are the rollup of the per-cap sweep spans.
    pub fn sweep(&mut self, algorithm: Algorithm, size: usize) -> CapSweep {
        let caps = self.config().caps;
        let run = self.run(algorithm, size);
        let t0 = self.journal.now();
        let sweep = sweep_journaled(
            &run,
            &caps,
            &CpuSpec::broadwell_e5_2695v4(),
            &mut self.journal,
        );
        if self.journal.is_enabled() {
            let joules: Joules = sweep.rows.iter().map(|r| r.energy_joules).sum();
            self.journal.push_span(
                Scope::Study,
                format!("sweep:{}:{size}", algorithm.name()),
                t0,
                Some(joules),
                vec![
                    ("caps", sweep.rows.len() as f64),
                    ("spec_fp", run.spec.fingerprint() as f64),
                ],
            );
        }
        sweep
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> StudyConfig {
        StudyConfig {
            caps: vec![Watts(120.0), Watts(80.0), Watts(40.0)],
            isovalues: 3,
            render_px: 12,
            cameras: 2,
            particles: 20,
            advect_steps: 30,
        }
    }

    #[test]
    fn dataset_runs_to_the_study_end_time() {
        let ds = dataset_for(8);
        // Field exists and the front has developed: values spread well
        // beyond the initial two plateaus.
        let (lo, hi) = ds.field("energy").unwrap().scalar_range().unwrap();
        assert!(hi > lo);
        assert!(ds.point_vectors("velocity").is_some());
    }

    #[test]
    fn upsample_preserves_bounds_and_interpolates() {
        let base = dataset_for(8);
        let up = upsample(&base, 16);
        assert_eq!(up.num_cells(), 16 * 16 * 16);
        let bb = base.bounds();
        let ub = up.bounds();
        assert!((bb.min - ub.min).length() < 1e-9);
        assert!((bb.max - ub.max).length() < 1e-9);
        // Value range cannot expand under trilinear interpolation.
        let (blo, bhi) = base.field("energy").unwrap().scalar_range().unwrap();
        let (ulo, uhi) = up
            .field_with("energy", vizmesh::Association::Points)
            .unwrap()
            .scalar_range()
            .unwrap();
        assert!(ulo >= blo - 1e-9 && uhi <= bhi + 1e-9);
    }

    #[test]
    fn every_algorithm_produces_reports_on_real_data() {
        let config = tiny_config();
        let ds = dataset_for(12);
        for algorithm in Algorithm::ALL {
            let run = native_run(&config, algorithm, 12, &ds);
            assert!(
                !run.reports.is_empty(),
                "{algorithm} produced no kernel reports"
            );
            let total: u64 = run.reports.iter().map(|r| r.work.instructions).sum();
            assert!(total > 0, "{algorithm} did no work");
        }
    }

    #[test]
    fn sweep_produces_one_row_per_cap() {
        let mut ctx = StudyContext::new(tiny_config());
        let sweep = ctx.sweep(Algorithm::Threshold, 12);
        assert_eq!(sweep.rows.len(), 3);
        let ratios = sweep.ratios();
        assert!((ratios[0].tratio - 1.0).abs() < 1e-12);
        assert!((ratios[0].pratio - 1.0).abs() < 1e-12);
        assert!(ratios[2].pratio > 2.9);
    }

    #[test]
    fn context_caches_native_runs() {
        let mut ctx = StudyContext::new(tiny_config());
        let a = ctx.run(Algorithm::Slice, 8);
        let b = ctx.run(Algorithm::Slice, 8);
        assert_eq!(a.reports.len(), b.reports.len());
        assert_eq!(ctx.runs.len(), 1);
        ctx.run(Algorithm::Slice, 10);
        assert_eq!(ctx.runs.len(), 2);
    }

    #[test]
    fn context_cache_hits_share_allocations() {
        let mut ctx = StudyContext::new(tiny_config());
        // Dataset hits hand back the same allocation, not a deep clone.
        let d1 = ctx.dataset(8);
        let d2 = ctx.dataset(8);
        assert!(Arc::ptr_eq(&d1, &d2), "dataset cache hit must share");
        // Run hits likewise share the run (and its report vector).
        let r1 = ctx.run(Algorithm::Threshold, 8);
        let r2 = ctx.run(Algorithm::Threshold, 8);
        assert!(Arc::ptr_eq(&r1, &r2), "run cache hit must share");
        // Two caller handles + the cache entry, no hidden copies.
        assert_eq!(Arc::strong_count(&r1), 3);
        // Distinct keys are distinct entries.
        let r3 = ctx.run(Algorithm::Slice, 8);
        assert!(!Arc::ptr_eq(&r1, &r3));
    }

    #[test]
    fn native_runs_carry_their_spec() {
        let mut ctx = StudyContext::new(tiny_config());
        let run = ctx.run(Algorithm::Contour, 8);
        assert_eq!(run.spec.algorithm(), Algorithm::Contour);
        assert_eq!(run.spec, tiny_config().spec(Algorithm::Contour));
        assert_eq!(
            run.spec.fingerprint(),
            tiny_config().spec(Algorithm::Contour).fingerprint()
        );
    }

    #[test]
    fn empty_sweep_is_safe() {
        let sweep = CapSweep {
            algorithm: Algorithm::Contour,
            size: 8,
            input_cells: 512,
            rows: Vec::new(),
        };
        assert!(sweep.baseline().is_none());
        assert!(sweep.ratios().is_empty());
        assert!(sweep.at_cap(Watts(120.0)).is_none());
    }

    #[test]
    fn empty_sweep_errors_are_actionable() {
        let sweep = CapSweep {
            algorithm: Algorithm::Contour,
            size: 8,
            input_cells: 512,
            rows: Vec::new(),
        };
        let err = sweep
            .require_baseline()
            .expect_err("empty sweep must error");
        assert_eq!(
            err,
            EmptySweepError {
                algorithm: Algorithm::Contour,
                size: 8
            }
        );
        let msg = err.to_string();
        assert!(msg.contains("Contour"), "names the algorithm: {msg}");
        assert!(msg.contains("8³"), "names the size: {msg}");
        assert!(
            msg.contains("configure at least one cap"),
            "says what to do: {msg}"
        );
        assert!(sweep.require_ratios().is_err());
        // A non-empty sweep answers.
        let mut ctx = StudyContext::new(tiny_config());
        let full = ctx.sweep(Algorithm::Threshold, 8);
        assert!(full.require_baseline().is_ok());
        assert_eq!(
            full.require_ratios().expect("has rows").len(),
            full.rows.len()
        );
    }

    #[test]
    fn journal_attributes_sweep_energy_exactly() {
        use powersim::trace::Event;
        let mut ctx = StudyContext::new(tiny_config());
        ctx.enable_journal(1 << 16);
        let sweep = ctx.sweep(Algorithm::Threshold, 8);
        let spans: Vec<_> = ctx
            .journal
            .events()
            .filter_map(|e| match e {
                Event::Span(s) => Some(s),
                _ => None,
            })
            .collect();
        // One workload span per cap, each matching its row's energy.
        let workloads: Vec<_> = spans
            .iter()
            .filter(|s| s.scope == Scope::Workload)
            .collect();
        assert_eq!(workloads.len(), sweep.rows.len());
        for (span, row) in workloads.iter().zip(&sweep.rows) {
            assert_eq!(span.joules, Some(row.energy_joules));
        }
        // The study-level sweep span rolls up every row's energy.
        let total: Joules = sweep.rows.iter().map(|r| r.energy_joules).sum();
        let study = spans
            .iter()
            .find(|s| s.scope == Scope::Study && s.name.starts_with("sweep:"))
            .expect("study sweep span present");
        assert_eq!(study.joules, Some(total));
        // v4: every sweep-derived span carries the spec fingerprint.
        let fp = tiny_config().spec(Algorithm::Threshold).fingerprint() as f64;
        assert_eq!(
            study.args.iter().find(|(k, _)| *k == "spec_fp"),
            Some(&("spec_fp", fp))
        );
        for s in spans.iter().filter(|s| s.scope == Scope::Sweep) {
            assert_eq!(
                s.args.iter().find(|(k, _)| *k == "spec_fp"),
                Some(&("spec_fp", fp))
            );
        }
    }

    #[test]
    fn capped_time_never_faster_than_uncapped() {
        let mut ctx = StudyContext::new(tiny_config());
        for algorithm in [Algorithm::Contour, Algorithm::ParticleAdvection] {
            let sweep = ctx.sweep(algorithm, 10);
            let base = sweep.baseline().expect("non-empty sweep").seconds;
            for row in &sweep.rows {
                assert!(
                    row.seconds >= base * 0.999,
                    "{algorithm}: {} < {base}",
                    row.seconds
                );
            }
        }
    }
}
