//! Extension: the time-varying advection scenario sweep.
//!
//! The paper's particle-advection workload is steady-state: one frozen
//! velocity snapshot, streamlines only (§IV). This module runs the
//! time-varying generalization end to end — the hydro driver records a
//! bounded [`FieldSeries`] ring past step 200, and each cell of a
//! scenario matrix (flow mode × seeding × step control × termination)
//! executes against that series, is characterized like any study
//! workload, and lands in the journal as one schema-v8
//! [`Scope::FlowScenario`] span keyed by the scenario'd spec
//! fingerprint and the series window fingerprint.
//!
//! The sweep is the `reproduce advect [--quick]` target; the root
//! integration test `tests/advect_golden.rs` pins its journal to be
//! byte-identical across rayon thread counts and its matrix to cover at
//! least two seedings × two terminations × both flow modes.

use crate::characterize::characterize;
use cloverleaf::{Problem, SimConfig, Simulation};
use powersim::trace::{Journal, Scope};
use powersim::{CpuSpec, Joules, Package, Watts};
use serde::{Deserialize, Serialize};
use vizalgo::{AlgorithmSpec, FlowMode, FlowScenario, Seeding, StepControl, Termination};
use vizmesh::FieldSeries;

/// Tunable parameters of one advection scenario sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdvectConfig {
    /// Hydro grid cells per axis.
    pub hydro_n: usize,
    /// Hydro steps to run (past the paper's cycle-200 snapshot point).
    pub hydro_steps: u64,
    /// Record a snapshot into the ring every this many steps.
    pub record_every: u64,
    /// Snapshot ring capacity (the retained sliding window).
    pub ring_capacity: usize,
    /// Particles seeded per scenario.
    pub particles: usize,
    /// Integration step budget per particle.
    pub steps: usize,
    /// RK4 step size as a fraction of the domain diagonal.
    pub step_fraction: f64,
    /// Seed for the dense-box seeding RNG.
    pub seed: u64,
    /// Power cap the characterized workload executes under.
    pub cap: Watts,
    /// The scenario matrix, one sweep row per entry.
    pub scenarios: Vec<FlowScenario>,
}

impl AdvectConfig {
    /// Full-fidelity sweep: 12³ hydro, 260 steps, 12 scenario cells.
    pub fn full() -> Self {
        AdvectConfig {
            hydro_n: 12,
            hydro_steps: 260,
            record_every: 20,
            ring_capacity: 8,
            particles: 200,
            steps: 150,
            step_fraction: 5e-4,
            seed: 0x5eed_1234,
            cap: Watts(80.0),
            scenarios: scenario_matrix(false),
        }
    }

    /// Scaled-down sweep for smoke runs and the golden test: the hydro
    /// still runs past step 200 (the ring must demonstrably evict), but
    /// grid, particle, and step counts shrink.
    pub fn quick() -> Self {
        AdvectConfig {
            hydro_n: 6,
            hydro_steps: 220,
            record_every: 20,
            ring_capacity: 6,
            particles: 32,
            steps: 48,
            step_fraction: 5e-4,
            seed: 0x5eed_1234,
            cap: Watts(80.0),
            scenarios: scenario_matrix(true),
        }
    }
}

/// The scenario matrix: both flow modes × {dense-box, sparse-grid}
/// seeding × {max-steps, exit-domain} termination under fixed stepping
/// (the 8-cell core the golden test pins), plus one richer cell per
/// mode exercising along-feature seeding, adaptive step control, and
/// the max-time horizon. Full runs add a tight-tolerance adaptive cell
/// per mode.
pub fn scenario_matrix(quick: bool) -> Vec<FlowScenario> {
    let mut rows = Vec::new();
    for mode in [FlowMode::Streamline, FlowMode::Pathline] {
        for seeding in [Seeding::DenseBox, Seeding::SparseGrid] {
            for termination in [Termination::MaxSteps, Termination::ExitDomain] {
                rows.push(FlowScenario {
                    mode,
                    seeding,
                    step_control: StepControl::Fixed,
                    termination,
                });
            }
        }
        rows.push(FlowScenario {
            mode,
            seeding: Seeding::AlongFeature,
            step_control: StepControl::Adaptive { tol: 1e-4 },
            termination: Termination::MaxTime { t_end: 0.02 },
        });
        if !quick {
            rows.push(FlowScenario {
                mode,
                seeding: Seeding::AlongFeature,
                step_control: StepControl::Adaptive { tol: 1e-5 },
                termination: Termination::MaxSteps,
            });
        }
    }
    rows
}

/// One executed scenario cell.
#[derive(Debug, Clone)]
pub struct ScenarioRow {
    /// The scenario this row ran.
    pub scenario: FlowScenario,
    /// Fingerprint of the scenario'd advection spec.
    pub spec_fp: u64,
    /// Fingerprint of the series window the row executed against.
    pub data_fp: u64,
    /// Polylines produced.
    pub lines: usize,
    /// Polyline points produced.
    pub points: usize,
    /// Modeled execution time at the sweep cap.
    pub seconds: f64,
    /// Modeled energy at the sweep cap.
    pub joules: Joules,
}

/// The sweep's result: the recorded window plus one row per scenario.
#[derive(Debug, Clone)]
pub struct AdvectReport {
    /// Snapshots retained in the ring when the sweep ran.
    pub snapshots: usize,
    /// Snapshots the ring evicted while recording.
    pub evicted: u64,
    /// `[first, last]` times of the retained window.
    pub span: (f64, f64),
    /// One row per scenario, in matrix order.
    pub rows: Vec<ScenarioRow>,
}

/// Run the hydro, record the snapshot ring, and execute every scenario
/// cell against it. Journals (when enabled) the hydro timesteps, one
/// `advect:hydro:{n}` study span, the characterized execution of each
/// cell, and one zero-width [`Scope::FlowScenario`] span per row.
pub fn run_sweep(cfg: &AdvectConfig, journal: &mut Journal) -> AdvectReport {
    let t0 = journal.now();
    let mut series = FieldSeries::with_capacity(cfg.ring_capacity);
    let mut sim = Simulation::new(Problem::TwoState, cfg.hydro_n, SimConfig::default());
    sim.run_steps_recording_journaled(cfg.hydro_steps, cfg.record_every, &mut series, journal);
    if journal.is_enabled() {
        journal.push_span(
            Scope::Study,
            format!("advect:hydro:{}", cfg.hydro_n),
            t0,
            None,
            vec![
                ("steps", sim.step_count() as f64),
                ("snapshots", series.len() as f64),
                ("evicted", series.evicted() as f64),
            ],
        );
    }

    let window = series.full_window();
    let data_fp = vizalgo::series_fingerprint(&window);
    let span = window.span().unwrap_or((0.0, 0.0));
    let snapshots = series.len();
    let evicted = series.evicted();

    let cpu = CpuSpec::broadwell_e5_2695v4();
    let rows = cfg
        .scenarios
        .iter()
        .map(|&scenario| {
            let spec = AlgorithmSpec::ParticleAdvection {
                field: "velocity".into(),
                particles: cfg.particles,
                steps: cfg.steps,
                step_fraction: cfg.step_fraction,
                seed: cfg.seed,
                scenario,
            };
            let spec_fp = spec.fingerprint();
            let kernel = spec
                .build_flow()
                // lint: infallible — the spec above is always advection
                .expect("advection spec builds a flow kernel");
            let out = kernel.execute_series(&series);
            let lines = out.dataset.as_ref().map_or(0, |d| d.num_cells());
            let points = out.dataset.as_ref().map_or(0, |d| d.num_points());
            let workload = characterize("advect-scenario", &out.kernels, &cpu);
            let mut pkg = Package::new(cpu.clone());
            let exec = pkg.run_capped_journaled(&workload, cfg.cap, journal);
            if journal.is_enabled() {
                journal.push_span(
                    Scope::FlowScenario,
                    format!("scenario:{}", scenario.label()),
                    journal.now(),
                    None,
                    vec![
                        ("spec_fp", spec_fp as f64),
                        ("data_fp", data_fp as f64),
                        ("snapshots", snapshots as f64),
                        ("particles", cfg.particles as f64),
                        ("lines", lines as f64),
                        ("points", points as f64),
                        ("seconds", exec.seconds),
                        ("joules", exec.energy_joules.value()),
                    ],
                );
            }
            ScenarioRow {
                scenario,
                spec_fp,
                data_fp,
                lines,
                points,
                seconds: exec.seconds,
                joules: exec.energy_joules,
            }
        })
        .collect();

    AdvectReport {
        snapshots,
        evicted,
        span,
        rows,
    }
}

/// Paper-style table of the sweep: one line per scenario cell.
pub fn render_table(report: &AdvectReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "series: {} snapshots retained ({} evicted), t = [{:.4}, {:.4}]\n",
        report.snapshots, report.evicted, report.span.0, report.span.1
    ));
    out.push_str(&format!(
        "{:<44} {:>6} {:>8} {:>9} {:>9}  {}\n",
        "scenario", "lines", "points", "seconds", "joules", "spec_fp"
    ));
    for row in &report.rows {
        out.push_str(&format!(
            "{:<44} {:>6} {:>8} {:>9.4} {:>9.2}  {:012x}\n",
            row.scenario.label(),
            row.lines,
            row.points,
            row.seconds,
            row.joules.value(),
            row.spec_fp
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> AdvectConfig {
        AdvectConfig {
            hydro_n: 6,
            hydro_steps: 30,
            record_every: 10,
            ring_capacity: 4,
            particles: 8,
            steps: 12,
            step_fraction: 5e-4,
            seed: 0x5eed_1234,
            cap: Watts(80.0),
            scenarios: scenario_matrix(true),
        }
    }

    #[test]
    fn matrix_covers_the_required_axes() {
        for quick in [true, false] {
            let rows = scenario_matrix(quick);
            let modes: std::collections::BTreeSet<_> =
                rows.iter().map(|s| s.mode.wire_name()).collect();
            let seedings: std::collections::BTreeSet<_> =
                rows.iter().map(|s| s.seeding.wire_name()).collect();
            let terms: std::collections::BTreeSet<_> =
                rows.iter().map(|s| s.termination.wire_name()).collect();
            assert_eq!(modes.len(), 2, "both flow modes");
            assert!(seedings.len() >= 2, "at least two seedings");
            assert!(terms.len() >= 2, "at least two terminations");
        }
        assert_eq!(scenario_matrix(true).len(), 10);
        assert_eq!(scenario_matrix(false).len(), 12);
    }

    #[test]
    fn sweep_rows_are_distinctly_fingerprinted_over_one_window() {
        let cfg = tiny();
        let report = run_sweep(&cfg, &mut Journal::off());
        assert_eq!(report.rows.len(), cfg.scenarios.len());
        assert!(report.snapshots >= 2, "ring retained a real window");
        let fps: std::collections::BTreeSet<u64> = report.rows.iter().map(|r| r.spec_fp).collect();
        assert_eq!(fps.len(), report.rows.len(), "spec_fp is per-scenario");
        assert!(
            report
                .rows
                .iter()
                .all(|r| r.data_fp == report.rows[0].data_fp),
            "every row executed against the same window"
        );
        for row in &report.rows {
            assert!(row.lines > 0 && row.points > 0, "{}", row.scenario.label());
            assert!(row.seconds > 0.0 && row.joules.value() > 0.0);
        }
    }

    #[test]
    fn sweep_is_deterministic() {
        let run = || {
            let mut journal = Journal::with_capacity(1 << 14);
            run_sweep(&tiny(), &mut journal);
            journal.to_jsonl()
        };
        assert_eq!(run(), run());
    }
}
