//! The derived ratios of §V-A and the first-slowdown rule of §VI.

use powersim::units::Watts;
use serde::{Deserialize, Serialize};

/// The paper's significance threshold: a 10 % slowdown.
pub const SLOWDOWN_THRESHOLD: f64 = 1.10;

/// The §V-A ratios for one (cap, measurement) pair relative to the
/// default-power baseline.
///
/// `Pratio = P_D / P_R` and `Fratio = F_D / F_R` put the default in the
/// numerator; `Tratio = T_R / T_D` is inverted so that all three ratios
/// are ≥ 1 when capping hurts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Ratios {
    pub cap_watts: Watts,
    pub pratio: f64,
    pub tratio: f64,
    pub fratio: f64,
    /// Absolute values backing the ratios.
    pub seconds: f64,
    pub freq_ghz: f64,
}

impl Ratios {
    /// Compute the ratios of a capped run against the default run.
    pub fn new(
        default_cap_watts: Watts,
        default_seconds: f64,
        default_freq_ghz: f64,
        cap_watts: Watts,
        seconds: f64,
        freq_ghz: f64,
    ) -> Self {
        assert!(default_seconds > 0.0 && seconds > 0.0);
        Ratios {
            cap_watts,
            pratio: default_cap_watts / cap_watts,
            tratio: seconds / default_seconds,
            fratio: if freq_ghz > 0.0 {
                default_freq_ghz / freq_ghz
            } else {
                f64::INFINITY
            },
            seconds,
            freq_ghz,
        }
    }

    /// §V-A: the algorithm was "sufficiently data intensive" at this cap
    /// when the slowdown is smaller than the power reduction.
    pub fn data_intensive(&self) -> bool {
        self.tratio < self.pratio
    }

    /// Does this row carry the paper's red marker (≥ 10 % slowdown)?
    pub fn significant_slowdown(&self) -> bool {
        self.tratio >= SLOWDOWN_THRESHOLD
    }
}

/// The highest (first, when sweeping downward) cap at which the slowdown
/// reaches 10 % — the quantity the paper's red highlights encode.
/// Returns `None` when no cap slows the algorithm significantly.
pub fn first_slowdown_cap(rows: &[Ratios]) -> Option<Watts> {
    rows.iter()
        .filter(|r| r.significant_slowdown())
        .map(|r| r.cap_watts)
        .fold(None, |acc: Option<Watts>, cap| {
            Some(match acc {
                Some(best) => best.max(cap),
                None => cap,
            })
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(cap: f64, tratio: f64) -> Ratios {
        Ratios {
            cap_watts: Watts(cap),
            pratio: 120.0 / cap,
            tratio,
            fratio: 1.0,
            seconds: tratio * 10.0,
            freq_ghz: 2.6,
        }
    }

    #[test]
    fn ratios_match_paper_definitions() {
        // Paper's worked example: halving the cap gives Pratio 2; an
        // algorithm that takes twice as long has Tratio 2.
        let r = Ratios::new(Watts(120.0), 10.0, 2.6, Watts(60.0), 20.0, 1.3);
        assert!((r.pratio - 2.0).abs() < 1e-12);
        assert!((r.tratio - 2.0).abs() < 1e-12);
        assert!((r.fratio - 2.0).abs() < 1e-12);
        assert!(!r.data_intensive());
    }

    #[test]
    fn data_intensive_when_slowdown_below_power_cut() {
        // Cap cut 3×, time grew only 1.17× (Table I's 40 W contour row).
        let r = Ratios::new(Watts(120.0), 33.477, 2.55, Watts(40.0), 39.198, 2.07);
        assert!(r.data_intensive());
        assert!(r.significant_slowdown());
        assert!((r.fratio - 1.2319).abs() < 1e-3);
    }

    #[test]
    fn first_slowdown_picks_highest_cap() {
        let rows = vec![
            row(120.0, 1.0),
            row(100.0, 1.02),
            row(80.0, 1.12),
            row(60.0, 1.05), // non-monotone dip, like the paper's data
            row(40.0, 1.5),
        ];
        assert_eq!(first_slowdown_cap(&rows), Some(Watts(80.0)));
    }

    #[test]
    fn no_slowdown_returns_none() {
        let rows = vec![row(120.0, 1.0), row(40.0, 1.09)];
        assert_eq!(first_slowdown_cap(&rows), None);
    }

    #[test]
    fn zero_frequency_gives_infinite_fratio() {
        let r = Ratios::new(Watts(120.0), 1.0, 2.6, Watts(40.0), 1.0, 0.0);
        assert!(r.fratio.is_infinite());
    }

    #[test]
    #[should_panic]
    fn zero_time_panics() {
        let _ = Ratios::new(Watts(120.0), 0.0, 2.6, Watts(40.0), 1.0, 1.0);
    }
}
