//! Paper-style rendering of tables and figure series.
//!
//! The paper highlights in red the first cell of each row where a 10 %
//! slowdown appears; plain-text output marks the same cells with `*`.

use crate::classify::classify;
use crate::experiments::FigSeries;
use crate::metrics::first_slowdown_cap;
use crate::study::CapSweep;
use powersim::Watts;
use std::fmt::Write;

/// Render Table I: P, Pratio, T, Tratio, F, Fratio for one sweep.
pub fn render_table1(sweep: &CapSweep) -> String {
    let mut out = String::new();
    writeln!(out, "{} ({}³ cells)", sweep.algorithm, sweep.size).unwrap();
    writeln!(
        out,
        "{:>6} {:>7} {:>10} {:>7} {:>9} {:>7}",
        "P", "Pratio", "T", "Tratio", "F", "Fratio"
    )
    .unwrap();
    let ratios = sweep.ratios();
    let marker_cap = first_slowdown_cap(&ratios);
    for r in &ratios {
        let mark = match marker_cap {
            Some(c) if (r.cap_watts - c).abs() < 0.5 => "*",
            _ => " ",
        };
        writeln!(
            out,
            "{:>5.0}W {:>6.1}X {:>9.3}s {:>6.2}X{} {:>6.2}GHz {:>6.2}X",
            r.cap_watts, r.pratio, r.seconds, r.tratio, mark, r.freq_ghz, r.fratio
        )
        .unwrap();
    }
    out
}

/// Render Table II / III: per-algorithm Tratio and Fratio rows across
/// caps, with the first-10 %-slowdown marker and the class label.
pub fn render_slowdown_table(sweeps: &[CapSweep]) -> String {
    let mut out = String::new();
    if sweeps.is_empty() {
        return out;
    }
    let caps: Vec<Watts> = sweeps[0].rows.iter().map(|r| r.cap_watts).collect();
    write!(out, "{:<20} {:>7}", "P", "").unwrap();
    for c in &caps {
        write!(out, " {:>7.0}W", c).unwrap();
    }
    writeln!(out).unwrap();
    write!(out, "{:<20} {:>7}", "Pratio", "").unwrap();
    for &c in &caps {
        write!(out, " {:>7.1}X", caps[0] / c).unwrap();
    }
    writeln!(out).unwrap();

    for sweep in sweeps {
        let ratios = sweep.ratios();
        let marker = first_slowdown_cap(&ratios);
        let class = classify(&ratios);
        write!(out, "{:<20} {:>7}", sweep.algorithm.name(), "Tratio").unwrap();
        for r in &ratios {
            let mark = match marker {
                Some(c) if (r.cap_watts - c).abs() < 0.5 => "*",
                _ => " ",
            };
            write!(out, " {:>6.2}X{}", r.tratio, mark).unwrap();
        }
        writeln!(out).unwrap();
        write!(out, "{:<20} {:>7}", format!("  [{class}]"), "Fratio").unwrap();
        for r in &ratios {
            write!(out, " {:>6.2}X ", r.fratio).unwrap();
        }
        writeln!(out).unwrap();
    }
    out
}

/// Render figure series as aligned columns (cap, then one column per
/// series) — easy to eyeball or feed to a plotting tool.
pub fn render_series(title: &str, series: &[FigSeries]) -> String {
    let mut out = String::new();
    writeln!(out, "# {title}").unwrap();
    if series.is_empty() {
        return out;
    }
    write!(out, "{:>6}", "cap_W").unwrap();
    for s in series {
        write!(out, " {:>18}", s.label).unwrap();
    }
    writeln!(out).unwrap();
    for i in 0..series[0].points.len() {
        write!(out, "{:>6.0}", series[0].points[i].0).unwrap();
        for s in series {
            write!(out, " {:>18.4}", s.points[i].1).unwrap();
        }
        writeln!(out).unwrap();
    }
    out
}

/// Summarize the Ratios rows of one sweep as a compact one-liner.
pub fn summarize(sweep: &CapSweep) -> String {
    let ratios = sweep.ratios();
    let Some(last) = ratios.last() else {
        return format!(
            "{:<20} {}³  (empty sweep)",
            sweep.algorithm.name(),
            sweep.size
        );
    };
    format!(
        "{:<20} {}³  Tratio(40W) = {:.2}X  Fratio(40W) = {:.2}X  first 10% slowdown at {}",
        sweep.algorithm.name(),
        sweep.size,
        last.tratio,
        last.fratio,
        match first_slowdown_cap(&ratios) {
            Some(c) => format!("{c:.0}W"),
            None => "never".to_string(),
        }
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::{StudyConfig, StudyContext};
    use vizalgo::Algorithm;

    fn sweep() -> CapSweep {
        let mut ctx = StudyContext::new(StudyConfig {
            caps: vec![Watts(120.0), Watts(40.0)],
            isovalues: 2,
            render_px: 8,
            cameras: 1,
            particles: 10,
            advect_steps: 10,
        });
        ctx.sweep(Algorithm::Threshold, 8)
    }

    #[test]
    fn table1_renders_all_rows_with_headers() {
        let t = render_table1(&sweep());
        assert!(t.contains("Pratio"));
        assert!(t.contains("120W"));
        assert!(t.contains("40W"));
        assert!(t.contains("GHz"));
    }

    #[test]
    fn slowdown_table_contains_class_labels() {
        let s = sweep();
        let t = render_slowdown_table(&[s]);
        assert!(t.contains("Threshold"));
        assert!(t.contains("power"));
        assert!(t.contains("Tratio"));
        assert!(t.contains("Fratio"));
    }

    #[test]
    fn series_rendering_is_column_aligned() {
        let series = vec![
            FigSeries {
                label: "A".into(),
                points: vec![(120.0, 1.0), (40.0, 2.0)],
            },
            FigSeries {
                label: "B".into(),
                points: vec![(120.0, 3.0), (40.0, 4.0)],
            },
        ];
        let out = render_series("Fig test", &series);
        assert!(out.contains("# Fig test"));
        assert!(out.lines().count() >= 4);
        assert!(out.contains("120"));
        assert!(out.contains("3.0000"));
    }

    #[test]
    fn summarize_mentions_first_slowdown() {
        let line = summarize(&sweep());
        assert!(line.contains("Threshold"));
        assert!(line.contains("Tratio(40W)"));
    }
}
