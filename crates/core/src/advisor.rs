//! The power advisor: the paper's motivating runtime use case (§VII).
//!
//! "Our findings may be integrated into a runtime system that assigns
//! power between a simulation and visualization application running
//! concurrently under a power budget, such that overall performance is
//! maximized."
//!
//! Given a node budget and the two characterized workloads (one per
//! package: the simulation on one socket, the visualization on the
//! other), the advisor searches the cap split minimizing completion time
//! of the concurrent pair, and reports the gain over the naïve uniform
//! split. Because visualization workloads are mostly power-opportunity,
//! the advisor typically steals nearly all headroom above 40 W for the
//! power-hungry simulation.

use powersim::{CpuSpec, Joules, Package, Watts, Workload};
use serde::{Deserialize, Serialize};

/// The advisor's output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AllocationPlan {
    pub budget_watts: Watts,
    /// Chosen caps.
    pub sim_cap_watts: Watts,
    pub viz_cap_watts: Watts,
    /// Completion time (both workloads run concurrently; the pair
    /// finishes when the slower one does).
    pub predicted_seconds: f64,
    /// Completion time under the naïve uniform split.
    pub naive_seconds: f64,
}

impl AllocationPlan {
    /// Speedup of the optimized split over the uniform split. A
    /// degenerate plan (zero predicted time, e.g. from empty workloads)
    /// reports no improvement rather than a meaningless ∞/NaN ratio.
    pub fn improvement(&self) -> f64 {
        debug_assert!(
            self.predicted_seconds > 0.0,
            "improvement() on a plan with zero predicted_seconds"
        );
        if self.predicted_seconds <= 0.0 {
            return 1.0;
        }
        self.naive_seconds / self.predicted_seconds
    }
}

/// Predicted execution time of `workload` under `cap`.
pub fn predict_seconds(workload: &Workload, cap: Watts, spec: &CpuSpec) -> f64 {
    let mut pkg = Package::new(spec.clone());
    pkg.run_capped(workload, cap).seconds
}

/// Search the best split of `budget` between the two packages in
/// `step`-watt increments. Each package cap is clamped to the hardware
/// range, so the feasible budget is `2 × min_cap ..= 2 × TDP`.
pub fn allocate(
    sim: &Workload,
    viz: &Workload,
    budget_watts: Watts,
    spec: &CpuSpec,
) -> AllocationPlan {
    let lo = spec.min_cap_watts;
    let hi = spec.tdp_watts;
    let budget = budget_watts.clamp(2.0 * lo, 2.0 * hi);
    let step = Watts(5.0);

    let naive_cap = (budget / 2.0).clamp(lo, hi);
    let naive_seconds =
        predict_seconds(sim, naive_cap, spec).max(predict_seconds(viz, naive_cap, spec));

    // Keep the naive split unless a candidate is strictly better; with
    // flat workloads every split ties and re-shuffling power would be
    // arbitrary churn.
    let mut best = (naive_cap, naive_cap, naive_seconds);
    let mut sim_cap = lo;
    while sim_cap <= hi + Watts(1e-9) {
        let viz_cap = (budget - sim_cap).clamp(lo, hi);
        if sim_cap + viz_cap <= budget + Watts(1e-9) {
            let t = predict_seconds(sim, sim_cap, spec).max(predict_seconds(viz, viz_cap, spec));
            if t < best.2 * (1.0 - 1e-6) {
                best = (sim_cap, viz_cap, t);
            }
        }
        sim_cap += step;
    }

    AllocationPlan {
        budget_watts: budget,
        sim_cap_watts: best.0,
        viz_cap_watts: best.1,
        predicted_seconds: best.2,
        naive_seconds,
    }
}

/// A phase-aware schedule for the tightly-coupled (time-shared) case:
/// the simulation and visualization alternate on the *same* package, and
/// the runtime may program a different RAPL cap for each phase as long as
/// the **time-averaged** power stays under the budget — the
/// GEOPM/PaViz-style dynamic reallocation the paper's §VII points to.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PhasedPlan {
    pub avg_budget_watts: Watts,
    pub sim_cap_watts: Watts,
    pub viz_cap_watts: Watts,
    pub total_seconds: f64,
    pub avg_power_watts: Watts,
    /// Total time under a single static cap equal to the budget.
    pub static_seconds: f64,
}

impl PhasedPlan {
    /// Speedup of the phased schedule over the static cap, with the
    /// same zero-time guard as [`AllocationPlan::improvement`].
    pub fn improvement(&self) -> f64 {
        debug_assert!(
            self.total_seconds > 0.0,
            "improvement() on a plan with zero total_seconds"
        );
        if self.total_seconds <= 0.0 {
            return 1.0;
        }
        self.static_seconds / self.total_seconds
    }
}

/// Execute a workload under `cap` and return `(seconds, joules)`.
fn run_once(workload: &Workload, cap: Watts, spec: &CpuSpec) -> (f64, Joules) {
    let mut pkg = Package::new(spec.clone());
    let r = pkg.run_capped(workload, cap);
    (r.seconds, r.energy_joules)
}

/// Search per-phase caps minimizing total time subject to the
/// time-averaged power budget. Because the data-bound visualization
/// phase draws little power even uncapped, lowering its cap frees
/// average-power headroom that lets the simulation phase run above the
/// budget.
pub fn schedule_phased(
    sim: &Workload,
    viz: &Workload,
    avg_budget_watts: Watts,
    spec: &CpuSpec,
) -> PhasedPlan {
    let lo = spec.min_cap_watts;
    let hi = spec.tdp_watts;
    let budget = avg_budget_watts.clamp(lo, hi);
    let step = Watts(5.0);

    // Static baseline: one cap equal to the budget for both phases.
    let (ts_static, _) = run_once(sim, budget, spec);
    let (tv_static, _) = run_once(viz, budget, spec);
    let static_seconds = ts_static + tv_static;

    // Memoized per-cap runs.
    let caps: Vec<Watts> = {
        let mut v = Vec::new();
        let mut c = lo;
        while c <= hi + Watts(1e-9) {
            v.push(c);
            c += step;
        }
        v
    };
    let sim_runs: Vec<(f64, Joules)> = caps.iter().map(|&c| run_once(sim, c, spec)).collect();
    let viz_runs: Vec<(f64, Joules)> = caps.iter().map(|&c| run_once(viz, c, spec)).collect();

    let mut best = (budget, budget, static_seconds, budget);
    for (i, &cs) in caps.iter().enumerate() {
        for (j, &cv) in caps.iter().enumerate() {
            let (ts, es) = sim_runs[i];
            let (tv, ev) = viz_runs[j];
            let total_t = ts + tv;
            let avg_p = (es + ev).over_seconds(total_t);
            if avg_p <= budget + Watts(1e-9) && total_t < best.2 * (1.0 - 1e-6) {
                best = (cs, cv, total_t, avg_p);
            }
        }
    }
    PhasedPlan {
        avg_budget_watts: budget,
        sim_cap_watts: best.0,
        viz_cap_watts: best.1,
        total_seconds: best.2,
        avg_power_watts: best.3,
        static_seconds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powersim::KernelPhase;

    fn hot_sim() -> Workload {
        Workload::new("sim").with_phase(KernelPhase::compute("hydro", 3_000_000_000_000))
    }

    fn cold_viz() -> Workload {
        Workload::new("viz").with_phase(KernelPhase::memory(
            "contour",
            60_000_000_000,
            1_500_000_000_000,
        ))
    }

    fn spec() -> CpuSpec {
        CpuSpec::broadwell_e5_2695v4()
    }

    #[test]
    fn advisor_gives_power_to_the_hungry_simulation() {
        let plan = allocate(&hot_sim(), &cold_viz(), Watts(160.0), &spec());
        assert!(
            plan.sim_cap_watts > plan.viz_cap_watts,
            "sim {} !> viz {}",
            plan.sim_cap_watts,
            plan.viz_cap_watts
        );
        assert!(plan.improvement() >= 1.0);
    }

    #[test]
    fn advisor_beats_naive_split_under_tight_budget() {
        // 140 W across two sockets: uniform gives each 70 W, throttling
        // the compute-bound simulation while the memory-bound viz wastes
        // headroom. The advisor should recover most of the loss.
        let plan = allocate(&hot_sim(), &cold_viz(), Watts(140.0), &spec());
        assert!(
            plan.improvement() > 1.05,
            "improvement = {}",
            plan.improvement()
        );
        // Viz gets close to the floor.
        assert!(plan.viz_cap_watts <= 60.0);
    }

    #[test]
    fn symmetric_workloads_split_evenly_ish() {
        let plan = allocate(&hot_sim(), &hot_sim(), Watts(160.0), &spec());
        assert!((plan.sim_cap_watts - plan.viz_cap_watts).abs() <= 10.0);
    }

    #[test]
    fn budget_is_clamped_to_hardware_range() {
        let plan = allocate(&hot_sim(), &cold_viz(), Watts(10.0), &spec());
        assert!((plan.budget_watts - Watts(80.0)).abs() < 1e-9);
        assert!(plan.sim_cap_watts >= 40.0 && plan.viz_cap_watts >= 40.0);
    }

    #[test]
    fn phased_schedule_beats_static_cap() {
        // A 70 W average budget: statically, the hot simulation phase is
        // throttled the whole time. Phased, the cold viz phase banks
        // headroom the sim phase spends.
        let plan = schedule_phased(&hot_sim(), &cold_viz(), Watts(70.0), &spec());
        assert!(plan.avg_power_watts <= 70.0 + 1e-6);
        assert!(
            plan.improvement() > 1.02,
            "phased improvement = {}",
            plan.improvement()
        );
        // The sim phase runs hotter than the viz phase.
        assert!(plan.sim_cap_watts > plan.viz_cap_watts);
    }

    #[test]
    fn phased_schedule_never_worse_than_static() {
        for budget in [Watts(50.0), Watts(80.0), Watts(110.0)] {
            let plan = schedule_phased(&hot_sim(), &hot_sim(), budget, &spec());
            assert!(plan.total_seconds <= plan.static_seconds * (1.0 + 1e-9));
        }
    }

    #[test]
    fn zero_time_plan_improvement_is_guarded() {
        let plan = AllocationPlan {
            budget_watts: Watts(160.0),
            sim_cap_watts: Watts(80.0),
            viz_cap_watts: Watts(80.0),
            predicted_seconds: 0.0,
            naive_seconds: 5.0,
        };
        if cfg!(debug_assertions) {
            // Debug builds flag the degenerate plan loudly.
            let caught =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| plan.improvement()));
            assert!(caught.is_err(), "debug_assert on zero predicted_seconds");
        } else {
            // Release builds degrade to "no improvement", never ∞/NaN.
            assert_eq!(plan.improvement(), 1.0);
        }
    }

    #[test]
    fn positive_time_plan_improvement_is_the_plain_ratio() {
        let plan = AllocationPlan {
            budget_watts: Watts(160.0),
            sim_cap_watts: Watts(110.0),
            viz_cap_watts: Watts(50.0),
            predicted_seconds: 4.0,
            naive_seconds: 5.0,
        };
        assert_eq!(plan.improvement(), 1.25);
    }

    #[test]
    fn generous_budget_removes_the_tradeoff() {
        let plan = allocate(&hot_sim(), &cold_viz(), Watts(240.0), &spec());
        // With 120 W available per socket nothing throttles; naive and
        // optimized coincide.
        assert!((plan.improvement() - 1.0).abs() < 0.02);
    }
}
