//! Ablation studies of the model's design choices (DESIGN.md §5).
//!
//! Each ablation switches one mechanism off, re-runs a representative
//! sweep, and reports what breaks — demonstrating that every modelled
//! mechanism earns its place:
//!
//! * **traffic power** (`mem_power_watts = 0`): without it, the
//!   cell-centered algorithms never draw enough power to throttle before
//!   the very lowest caps and Table III loses its upward marker shift;
//! * **memory cushion** (`dram_bytes = 0`): every algorithm becomes
//!   compute-coupled and the power-opportunity class disappears —
//!   Tratio tracks Fratio exactly;
//! * **turbo headroom** (`turbo = base`): the uncapped frequency column
//!   of Fig. 2a flattens to the base clock and the knee structure moves.

use crate::metrics::Ratios;
use crate::study::{AlgorithmRun, CapSweep};
use powersim::{CpuSpec, Watts};
use serde::{Deserialize, Serialize};

/// One mechanism that can be switched off.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Ablation {
    /// Zero the DRAM-traffic power term.
    NoTrafficPower,
    /// Zero all DRAM traffic, removing the memory-time cushion.
    NoMemoryCushion,
    /// Clamp turbo to the base clock.
    NoTurbo,
}

impl Ablation {
    pub const ALL: [Ablation; 3] = [
        Ablation::NoTrafficPower,
        Ablation::NoMemoryCushion,
        Ablation::NoTurbo,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Ablation::NoTrafficPower => "no traffic power",
            Ablation::NoMemoryCushion => "no memory cushion",
            Ablation::NoTurbo => "no turbo",
        }
    }

    /// The modified package spec.
    pub fn spec(self) -> CpuSpec {
        let mut spec = CpuSpec::broadwell_e5_2695v4();
        match self {
            Ablation::NoTrafficPower => spec.mem_power_watts = Watts::ZERO,
            Ablation::NoMemoryCushion => {} // applied to the workload below
            Ablation::NoTurbo => spec.turbo_ghz = spec.base_ghz,
        }
        spec
    }
}

/// Result of one ablated sweep next to the reference.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AblationResult {
    pub ablation: Ablation,
    pub reference: Vec<Ratios>,
    pub ablated: Vec<Ratios>,
}

impl AblationResult {
    /// Largest absolute Tratio difference across caps.
    pub fn max_tratio_delta(&self) -> f64 {
        self.reference
            .iter()
            .zip(&self.ablated)
            .map(|(a, b)| (a.tratio - b.tratio).abs())
            .fold(0.0, f64::max)
    }
}

/// Run one ablation against a measured native run.
pub fn run_ablation(run: &AlgorithmRun, caps: &[Watts], ablation: Ablation) -> AblationResult {
    let reference_spec = CpuSpec::broadwell_e5_2695v4();
    let reference = crate::study::sweep(run, caps, &reference_spec).ratios();

    let spec = ablation.spec();
    let ablated: Vec<Ratios> = if ablation == Ablation::NoMemoryCushion {
        // Rebuild the workload with memory traffic zeroed.
        let mut workload =
            crate::characterize::characterize(run.algorithm.name(), &run.reports, &spec);
        for phase in &mut workload.phases {
            phase.dram_bytes = 0;
            phase.llc_miss_rate = 0.0;
        }
        let rows: Vec<powersim::ExecResult> = caps
            .iter()
            .map(|&cap| {
                let mut pkg = powersim::Package::new(spec.clone());
                pkg.run_capped(&workload, cap)
            })
            .collect();
        CapSweep {
            algorithm: run.algorithm,
            size: run.size,
            input_cells: run.input_cells,
            rows,
        }
        .ratios()
    } else {
        crate::study::sweep(run, caps, &spec).ratios()
    };

    AblationResult {
        ablation,
        reference,
        ablated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::{dataset_for, native_run, StudyConfig, PAPER_CAPS};
    use vizalgo::Algorithm;

    fn contour_run() -> AlgorithmRun {
        let config = StudyConfig {
            caps: PAPER_CAPS.to_vec(),
            isovalues: 4,
            render_px: 8,
            cameras: 1,
            particles: 10,
            advect_steps: 10,
        };
        let ds = dataset_for(12);
        native_run(&config, Algorithm::Contour, 12, &ds)
    }

    #[test]
    fn no_memory_cushion_couples_time_to_frequency() {
        let run = contour_run();
        let result = run_ablation(&run, &PAPER_CAPS, Ablation::NoMemoryCushion);
        // Without the cushion, Tratio ≈ Fratio at the lowest cap.
        let last = result.ablated.last().unwrap();
        assert!(
            (last.tratio - last.fratio).abs() < 0.05,
            "T {} vs F {}",
            last.tratio,
            last.fratio
        );
        // With the cushion, the reference keeps T below F.
        let ref_last = result.reference.last().unwrap();
        assert!(ref_last.tratio <= ref_last.fratio + 1e-9);
    }

    #[test]
    fn no_turbo_removes_the_headroom() {
        let run = contour_run();
        let result = run_ablation(&run, &PAPER_CAPS, Ablation::NoTurbo);
        // Uncapped frequency is the base clock, so even the severest cap
        // has less room to cut: the 40 W Fratio shrinks.
        let f_ref = result.reference.last().unwrap().fratio;
        let f_abl = result.ablated.last().unwrap().fratio;
        assert!(f_abl < f_ref, "Fratio {f_ref} -> {f_abl}");
    }

    #[test]
    fn no_traffic_power_weakens_throttling() {
        let run = contour_run();
        let result = run_ablation(&run, &PAPER_CAPS, Ablation::NoTrafficPower);
        // Contour's 40 W slowdown relies partly on traffic power; without
        // it the slowdown cannot grow.
        let t_ref = result.reference.last().unwrap().tratio;
        let t_abl = result.ablated.last().unwrap().tratio;
        assert!(t_abl <= t_ref + 1e-9, "T {t_ref} -> {t_abl}");
        assert!(result.max_tratio_delta() >= 0.0);
    }

    #[test]
    fn every_ablation_runs() {
        let run = contour_run();
        for ab in Ablation::ALL {
            let r = run_ablation(&run, &[Watts(120.0), Watts(40.0)], ab);
            assert_eq!(r.reference.len(), 2);
            assert_eq!(r.ablated.len(), 2);
            assert!(!ab.name().is_empty());
        }
    }
}
