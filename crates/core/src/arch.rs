//! Cross-architecture comparison — the paper's §VIII future work:
//! "explore how the power and performance tradeoffs for visualization
//! algorithms compare across other architectures that provide power
//! capping."
//!
//! The same measured workloads run on three simulated packages
//! (Broadwell-EP as in the paper, a Skylake-SP-class part, and a
//! low-power Xeon-D-class part), sweeping each architecture's own cap
//! range. The qualitative finding transfers — data-bound algorithms
//! tolerate caps everywhere — but the *knees* move with each part's
//! power envelope, confirming the paper's suspicion that "other
//! architectures may exhibit different responses".

use crate::classify::PowerClass;
use crate::metrics::{first_slowdown_cap, Ratios};
use crate::study::{sweep, AlgorithmRun};
use powersim::{CpuSpec, Watts};
use serde::{Deserialize, Serialize};

/// The architectures compared.
pub fn architectures() -> Vec<CpuSpec> {
    vec![
        CpuSpec::broadwell_e5_2695v4(),
        CpuSpec::skylake_8160_like(),
        CpuSpec::lowpower_d_like(),
    ]
}

/// Nine evenly spaced caps across an architecture's supported range,
/// mirroring the paper's 120→40 W sweep proportionally.
pub fn caps_for(spec: &CpuSpec) -> Vec<Watts> {
    let n = 9;
    (0..n)
        .map(|i| {
            let t = i as f64 / (n - 1) as f64;
            spec.tdp_watts + (spec.min_cap_watts - spec.tdp_watts) * t
        })
        .collect()
}

/// One architecture's verdict on one algorithm.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ArchRow {
    pub arch: String,
    pub algorithm: String,
    pub class: PowerClass,
    /// First ≥10 % slowdown cap, as a fraction of that part's TDP.
    pub first_slowdown_tdp_fraction: Option<f64>,
    /// Tratio at the severest cap.
    pub tratio_at_floor: f64,
    pub ratios: Vec<Ratios>,
}

/// Sweep one measured run across every architecture.
pub fn compare_architectures(run: &AlgorithmRun) -> Vec<ArchRow> {
    architectures()
        .into_iter()
        .map(|spec| {
            let caps = caps_for(&spec);
            let ratios = sweep(run, &caps, &spec).ratios();
            ArchRow {
                arch: spec.name.clone(),
                algorithm: run.algorithm.name().to_string(),
                class: classify_scaled(&ratios, &spec),
                first_slowdown_tdp_fraction: first_slowdown_cap(&ratios)
                    .map(|c| c / spec.tdp_watts),
                tratio_at_floor: ratios.last().unwrap().tratio,
                ratios,
            }
        })
        .collect()
}

/// Classification with the sensitive boundary scaled to the part's TDP
/// (the paper's 70 W ≈ 58 % of the Broadwell TDP).
fn classify_scaled(ratios: &[Ratios], spec: &CpuSpec) -> PowerClass {
    let boundary = 0.58 * spec.tdp_watts;
    match first_slowdown_cap(ratios) {
        Some(cap) if cap >= boundary => PowerClass::PowerSensitive,
        _ => PowerClass::PowerOpportunity,
    }
}

impl std::fmt::Display for ArchRow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<28} {:<20} {:<18} floor Tratio {:>5.2}X  first slowdown {}",
            self.arch,
            self.algorithm,
            self.class.to_string(),
            self.tratio_at_floor,
            match self.first_slowdown_tdp_fraction {
                Some(fr) => format!("{:.0}% of TDP", fr * 100.0),
                None => "never".into(),
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::{dataset_for, native_run, StudyConfig, PAPER_CAPS};
    use vizalgo::Algorithm;

    fn run_of(algorithm: Algorithm) -> AlgorithmRun {
        let config = StudyConfig {
            caps: PAPER_CAPS.to_vec(),
            isovalues: 4,
            render_px: 24,
            cameras: 3,
            particles: 150,
            advect_steps: 150,
        };
        let ds = dataset_for(12);
        native_run(&config, algorithm, 12, &ds)
    }

    #[test]
    fn caps_span_each_architectures_range() {
        for spec in architectures() {
            let caps = caps_for(&spec);
            assert_eq!(caps.len(), 9);
            assert!((caps[0] - spec.tdp_watts).abs() < 1e-9);
            assert!((caps[8] - spec.min_cap_watts).abs() < 1e-9);
        }
    }

    #[test]
    fn advection_is_sensitive_on_every_architecture() {
        let rows = compare_architectures(&run_of(Algorithm::ParticleAdvection));
        assert_eq!(rows.len(), 3);
        for row in &rows {
            assert_eq!(
                row.class,
                PowerClass::PowerSensitive,
                "{}: advection must stay sensitive",
                row.arch
            );
            assert!(row.tratio_at_floor > 1.3, "{}", row.arch);
        }
    }

    #[test]
    fn threshold_stays_opportunity_on_server_parts() {
        let rows = compare_architectures(&run_of(Algorithm::Threshold));
        for row in rows.iter().take(2) {
            assert_eq!(
                row.class,
                PowerClass::PowerOpportunity,
                "{}: threshold should tolerate caps",
                row.arch
            );
        }
    }

    #[test]
    fn knees_differ_across_architectures() {
        let rows = compare_architectures(&run_of(Algorithm::ParticleAdvection));
        let fracs: Vec<f64> = rows
            .iter()
            .filter_map(|r| r.first_slowdown_tdp_fraction)
            .collect();
        assert_eq!(fracs.len(), 3);
        // Not all knees sit at the same TDP fraction: architectures
        // respond differently, the paper's §VIII conjecture.
        let spread = fracs.iter().fold(f64::MIN, |a, &b| a.max(b))
            - fracs.iter().fold(f64::MAX, |a, &b| a.min(b));
        assert!(spread > 0.01, "knees identical: {fracs:?}");
    }

    #[test]
    fn rows_render_for_reports() {
        let rows = compare_architectures(&run_of(Algorithm::Threshold));
        for row in rows {
            let line = row.to_string();
            assert!(line.contains("Threshold"));
        }
    }
}
