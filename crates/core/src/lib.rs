//! # vizpower — the power/performance study
//!
//! This crate is the reproduction of the paper's contribution proper: the
//! methodology that takes the eight instrumented visualization algorithms
//! (`vizalgo`), runs them against CloverLeaf data (`cloverleaf`) on the
//! simulated RAPL-capped Broadwell package (`powersim`), and produces the
//! analyses of §V–§VII:
//!
//! * [`characterize`] — the bridge from measured kernel work counts to
//!   processor workloads: per-kernel-class microarchitectural signatures
//!   (core CPI, power activity, cache locality) applied to real counts.
//! * [`study`] — the three experiment phases: Phase 1 (contour × 9 power
//!   caps), Phase 2 (8 algorithms × 9 caps), Phase 3 (× 4 data sizes),
//!   288 configurations in total.
//! * [`metrics`] — the derived ratios of §V-A (`Pratio`, `Tratio`,
//!   `Fratio`) and the first-10 %-slowdown rule of §VI.
//! * [`classify`] — the paper's two algorithm classes: *power
//!   opportunity* vs *power sensitive*.
//! * [`efficiency`] — the Moreland–Oldfield elements-per-second rate used
//!   for Fig. 3.
//! * [`advisor`] — the motivating use case (§VII): split a node power
//!   budget between a simulation and a visualization workload to
//!   minimize time-to-solution, plus a phase-aware scheduler for the
//!   tightly-coupled case.
//! * [`report`] — paper-style table and figure-series rendering.
//! * [`experiments`] — one entry point per table/figure of the paper.
//!
//! Extensions beyond the paper (its §VIII future work): [`energy`]
//! (energy/EDP view of the §V-A tradeoff), [`arch`] (the same study on
//! Skylake-SP-class and Xeon-D-class packages), [`ablation`]
//! (switching off model mechanisms to show each one earns its place),
//! and [`advect`] (the time-varying flow pipeline: a hydro snapshot
//! ring driving a pathline/streamline scenario sweep).
//!
//! Every layer can record into the run journal ([`powersim::trace`],
//! re-exported as [`trace`]): enable it with
//! [`study::StudyContext::enable_journal`] and serialize with
//! [`trace::Journal::to_jsonl`] / [`trace::Journal::to_chrome_trace`].
//! The event schema is documented in `docs/OBSERVABILITY.md`.

pub mod ablation;
pub mod advect;
pub mod advisor;
pub mod arch;
pub mod characterize;
pub mod classify;
pub mod efficiency;
pub mod energy;
pub mod experiments;
pub mod metrics;
pub mod report;
pub mod store;
pub mod study;

pub use characterize::{characterize, ClassSignature};
pub use classify::{classify, PowerClass};
pub use metrics::{first_slowdown_cap, Ratios, SLOWDOWN_THRESHOLD};
pub use powersim::trace;
pub use store::DatasetStore;
pub use study::{AlgorithmRun, CapSweep, EmptySweepError, StudyConfig, PAPER_CAPS, PAPER_SIZES};
