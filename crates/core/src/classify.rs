//! The paper's two algorithm classes (§I, §VI-B).

use crate::metrics::{first_slowdown_cap, Ratios};
use powersim::units::Watts;
use serde::{Deserialize, Serialize};

/// The paper's classification of visualization algorithms under a cap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PowerClass {
    /// Memory/data-bound: insensitive to the cap until severe values —
    /// power can be taken away "for free".
    PowerOpportunity,
    /// Compute-bound: performance degrades almost proportionally with
    /// the cap.
    PowerSensitive,
}

impl std::fmt::Display for PowerClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            PowerClass::PowerOpportunity => "power opportunity",
            PowerClass::PowerSensitive => "power sensitive",
        })
    }
}

/// Cap boundary: the paper's sensitive algorithms first slow ≥ 10 % at
/// 70–80 W ("roughly 67 % of TDP"), the opportunity algorithms at 60 W or
/// below. A first slowdown at or above this cap ⇒ power sensitive.
pub const SENSITIVE_CAP_WATTS: Watts = Watts(70.0);

/// Classify an algorithm from its cap-sweep ratios.
pub fn classify(rows: &[Ratios]) -> PowerClass {
    match first_slowdown_cap(rows) {
        Some(cap) if cap >= SENSITIVE_CAP_WATTS => PowerClass::PowerSensitive,
        _ => PowerClass::PowerOpportunity,
    }
}

/// Online IPC boundary (the divide visible in Fig. 2b): compute-bound
/// phases retire more than one instruction per reference cycle even
/// under deep caps, while memory-bound phases sit below it at any cap.
pub const SENSITIVE_IPC: f64 = 1.0;

/// Online LLC miss-ratio boundary: when misses dominate references the
/// phase is memory-bound regardless of its apparent IPC.
pub const OPPORTUNITY_LLC_MISS_RATE: f64 = 0.5;

/// Classify a single 100 ms counter sample online, without a cap sweep.
///
/// This is the governor's per-window view of [`classify`]: a phase
/// whose LLC misses dominate its references, or whose IPC is below
/// [`SENSITIVE_IPC`], is a power opportunity (capping it is nearly
/// free); anything else is power sensitive.
pub fn classify_sample(ipc: f64, llc_miss_rate: f64) -> PowerClass {
    if llc_miss_rate >= OPPORTUNITY_LLC_MISS_RATE || ipc < SENSITIVE_IPC {
        PowerClass::PowerOpportunity
    } else {
        PowerClass::PowerSensitive
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(pairs: &[(f64, f64)]) -> Vec<Ratios> {
        pairs
            .iter()
            .map(|&(cap, tratio)| Ratios {
                cap_watts: Watts(cap),
                pratio: 120.0 / cap,
                tratio,
                fratio: 1.0,
                seconds: tratio,
                freq_ghz: 2.6,
            })
            .collect()
    }

    #[test]
    fn contour_like_is_opportunity() {
        // Table II contour: no 10 % slowdown until 40 W.
        let r = rows(&[
            (120.0, 1.0),
            (80.0, 1.0),
            (60.0, 0.91),
            (50.0, 0.93),
            (40.0, 1.17),
        ]);
        assert_eq!(classify(&r), PowerClass::PowerOpportunity);
    }

    #[test]
    fn advection_like_is_sensitive() {
        // Table II particle advection: 1.11 at 80 W already.
        let r = rows(&[
            (120.0, 1.0),
            (90.0, 1.05),
            (80.0, 1.11),
            (70.0, 1.21),
            (40.0, 3.12),
        ]);
        assert_eq!(classify(&r), PowerClass::PowerSensitive);
    }

    #[test]
    fn volren_like_at_70w_is_sensitive() {
        let r = rows(&[(120.0, 1.0), (70.0, 1.12), (40.0, 1.86)]);
        assert_eq!(classify(&r), PowerClass::PowerSensitive);
    }

    #[test]
    fn never_slowing_is_opportunity() {
        let r = rows(&[(120.0, 1.0), (40.0, 1.05)]);
        assert_eq!(classify(&r), PowerClass::PowerOpportunity);
    }

    #[test]
    fn boundary_cap_counts_as_sensitive() {
        let r = rows(&[(120.0, 1.0), (70.0, 1.10), (40.0, 2.0)]);
        assert_eq!(classify(&r), PowerClass::PowerSensitive);
    }

    #[test]
    fn sample_compute_bound_is_sensitive() {
        // Uncapped compute phase: IPC ≈ 3, almost no LLC misses.
        assert_eq!(classify_sample(3.0, 0.02), PowerClass::PowerSensitive);
        // Still sensitive when a deep cap has dragged the IPC down.
        assert_eq!(classify_sample(1.3, 0.02), PowerClass::PowerSensitive);
    }

    #[test]
    fn sample_memory_bound_is_opportunity() {
        assert_eq!(classify_sample(0.4, 0.9), PowerClass::PowerOpportunity);
        // High miss ratio wins even with inflated IPC.
        assert_eq!(classify_sample(1.8, 0.8), PowerClass::PowerOpportunity);
        // Low IPC alone is enough.
        assert_eq!(classify_sample(0.6, 0.1), PowerClass::PowerOpportunity);
    }
}
