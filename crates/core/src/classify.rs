//! The paper's two algorithm classes (§I, §VI-B).

use crate::metrics::{first_slowdown_cap, Ratios};
use powersim::units::Watts;
use serde::{Deserialize, Serialize};

/// The paper's classification of visualization algorithms under a cap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PowerClass {
    /// Memory/data-bound: insensitive to the cap until severe values —
    /// power can be taken away "for free".
    PowerOpportunity,
    /// Compute-bound: performance degrades almost proportionally with
    /// the cap.
    PowerSensitive,
}

impl std::fmt::Display for PowerClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            PowerClass::PowerOpportunity => "power opportunity",
            PowerClass::PowerSensitive => "power sensitive",
        })
    }
}

/// Cap boundary: the paper's sensitive algorithms first slow ≥ 10 % at
/// 70–80 W ("roughly 67 % of TDP"), the opportunity algorithms at 60 W or
/// below. A first slowdown at or above this cap ⇒ power sensitive.
pub const SENSITIVE_CAP_WATTS: Watts = Watts(70.0);

/// Classify an algorithm from its cap-sweep ratios.
pub fn classify(rows: &[Ratios]) -> PowerClass {
    match first_slowdown_cap(rows) {
        Some(cap) if cap >= SENSITIVE_CAP_WATTS => PowerClass::PowerSensitive,
        _ => PowerClass::PowerOpportunity,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(pairs: &[(f64, f64)]) -> Vec<Ratios> {
        pairs
            .iter()
            .map(|&(cap, tratio)| Ratios {
                cap_watts: Watts(cap),
                pratio: 120.0 / cap,
                tratio,
                fratio: 1.0,
                seconds: tratio,
                freq_ghz: 2.6,
            })
            .collect()
    }

    #[test]
    fn contour_like_is_opportunity() {
        // Table II contour: no 10 % slowdown until 40 W.
        let r = rows(&[
            (120.0, 1.0),
            (80.0, 1.0),
            (60.0, 0.91),
            (50.0, 0.93),
            (40.0, 1.17),
        ]);
        assert_eq!(classify(&r), PowerClass::PowerOpportunity);
    }

    #[test]
    fn advection_like_is_sensitive() {
        // Table II particle advection: 1.11 at 80 W already.
        let r = rows(&[
            (120.0, 1.0),
            (90.0, 1.05),
            (80.0, 1.11),
            (70.0, 1.21),
            (40.0, 3.12),
        ]);
        assert_eq!(classify(&r), PowerClass::PowerSensitive);
    }

    #[test]
    fn volren_like_at_70w_is_sensitive() {
        let r = rows(&[(120.0, 1.0), (70.0, 1.12), (40.0, 1.86)]);
        assert_eq!(classify(&r), PowerClass::PowerSensitive);
    }

    #[test]
    fn never_slowing_is_opportunity() {
        let r = rows(&[(120.0, 1.0), (40.0, 1.05)]);
        assert_eq!(classify(&r), PowerClass::PowerOpportunity);
    }

    #[test]
    fn boundary_cap_counts_as_sensitive() {
        let r = rows(&[(120.0, 1.0), (70.0, 1.10), (40.0, 2.0)]);
        assert_eq!(classify(&r), PowerClass::PowerSensitive);
    }
}
