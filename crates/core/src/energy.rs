//! Energy analysis — the other side of the §V-A tradeoff.
//!
//! The paper frames capping as "users can make a tradeoff between running
//! their algorithm Tratio times slower and using Pratio less power". This
//! module quantifies what that means in energy terms. A cap above an
//! algorithm's natural draw changes nothing (`eratio = 1`): the benefit
//! of capping a power-opportunity algorithm is the *headroom freed for
//! other applications*, not joules saved on the algorithm itself. Once
//! the cap bites, static power burning over the stretched runtime makes
//! energy-to-solution rise — mildly for data-bound algorithms, and
//! painfully in energy-delay terms for the compute-bound ones.

use crate::study::CapSweep;
use serde::{Deserialize, Serialize};

pub use powersim::units::{Joules, Watts};

/// Energy metrics of one cap relative to the default-power run.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct EnergyRow {
    pub cap_watts: Watts,
    pub energy_joules: Joules,
    /// `E_R / E_D`: below 1 means the cap saves energy.
    pub eratio: f64,
    /// Energy-delay product `E·T`, normalized to the default run.
    pub edp_ratio: f64,
}

/// Per-cap energy metrics for a sweep. An empty sweep has no baseline
/// to normalize against and yields no rows.
pub fn energy_rows(sweep: &CapSweep) -> Vec<EnergyRow> {
    let Some(base) = sweep.baseline() else {
        return Vec::new();
    };
    assert!(base.energy_joules > 0.0 && base.seconds > 0.0);
    let base_edp = base.energy_joules.value() * base.seconds;
    sweep
        .rows
        .iter()
        .map(|r| EnergyRow {
            cap_watts: r.cap_watts,
            energy_joules: r.energy_joules,
            eratio: r.energy_joules / base.energy_joules,
            edp_ratio: r.energy_joules.value() * r.seconds / base_edp,
        })
        .collect()
}

/// The cap minimizing energy-to-solution, with its saving vs default;
/// `None` for an empty sweep.
pub fn best_energy_cap(sweep: &CapSweep) -> Option<(Watts, f64)> {
    let rows = energy_rows(sweep);
    let best = rows
        .iter()
        .min_by(|a, b| a.energy_joules.total_cmp(&b.energy_joules))?;
    Some((best.cap_watts, 1.0 - best.eratio))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::{StudyConfig, StudyContext, PAPER_CAPS};
    use vizalgo::Algorithm;

    fn ctx() -> StudyContext {
        StudyContext::new(StudyConfig {
            caps: PAPER_CAPS.to_vec(),
            isovalues: 4,
            render_px: 16,
            cameras: 2,
            particles: 60,
            advect_steps: 80,
        })
    }

    #[test]
    fn energy_rows_are_normalized_to_default() {
        let mut ctx = ctx();
        let sweep = ctx.sweep(Algorithm::Threshold, 12);
        let rows = energy_rows(&sweep);
        assert_eq!(rows.len(), PAPER_CAPS.len());
        assert!((rows[0].eratio - 1.0).abs() < 1e-12);
        assert!((rows[0].edp_ratio - 1.0).abs() < 1e-12);
    }

    #[test]
    fn caps_above_the_natural_draw_leave_energy_unchanged() {
        // Threshold draws ~50 W; every cap at or above 60 W neither slows
        // it nor lowers its power, so the energy is bitwise identical —
        // the freed headroom is the whole benefit (paper §VI-A).
        let mut ctx = ctx();
        let sweep = ctx.sweep(Algorithm::Threshold, 12);
        let rows = energy_rows(&sweep);
        for r in &rows {
            if r.cap_watts >= 60.0 {
                assert!(
                    (r.eratio - 1.0).abs() < 0.02,
                    "{} W eratio {}",
                    r.cap_watts,
                    r.eratio
                );
            }
        }
        // Severe caps cost energy: static power over a longer runtime.
        let (best_cap, saving) = best_energy_cap(&sweep).expect("non-empty sweep");
        assert!(saving.abs() < 0.05, "saving {saving} at {best_cap} W");
    }

    #[test]
    fn sensitive_algorithms_save_less_energy_and_lose_edp() {
        let mut ctx = ctx();
        let adv = ctx.sweep(Algorithm::ParticleAdvection, 12);
        let thr = ctx.sweep(Algorithm::Threshold, 12);
        let adv_rows = energy_rows(&adv);
        let thr_rows = energy_rows(&thr);
        let last = adv_rows.last().unwrap();
        // Advection's EDP degrades badly at 40 W (paper: 2.6x slower).
        assert!(
            last.edp_ratio > 1.3,
            "advection EDP ratio {}",
            last.edp_ratio
        );
        // Threshold keeps its EDP near or below par at the same cap.
        let thr_last = thr_rows.last().unwrap();
        assert!(
            thr_last.edp_ratio < last.edp_ratio,
            "threshold {} !< advection {}",
            thr_last.edp_ratio,
            last.edp_ratio
        );
    }
}
