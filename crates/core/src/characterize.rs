//! The characterization bridge: measured kernel work → processor
//! workload.
//!
//! Instrumented algorithm executions produce exact *counts* (items,
//! instructions, bytes, working sets) but a count alone does not say how
//! a kernel behaves microarchitecturally. This module assigns each
//! [`KernelClass`] a **signature** — core CPI, dynamic-power activity,
//! cache-line amplification, and LLC locality — and combines signature ×
//! measured counts into the [`powersim::KernelPhase`]s the simulated
//! package executes.
//!
//! The signatures are the model's calibration surface, and they are the
//! *only* place where paper-matching constants live. They are chosen so
//! the emergent behaviour reproduces §VI: streaming cell-centered kernels
//! land at IPC < 1 with 50–60 W draw; the image-order FP kernels land at
//! IPC 2.5–2.7 with ~85 W draw; isovolume's tet-clipping shows the worst
//! LLC locality (Fig. 2c); and the LLC capacity term makes volume
//! rendering's IPC fall with data-set size (Fig. 5).

use powersim::{CpuSpec, KernelPhase, Workload};
use vizalgo::{KernelClass, KernelReport};

/// Microarchitectural signature of a kernel class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassSignature {
    /// Core-limited cycles per instruction (no memory stalls).
    pub cpi_core: f64,
    /// Dynamic-power activity factor.
    pub activity: f64,
    /// Amplification of measured array bytes into memory-system traffic
    /// (cache-line granularity, gather waste, prefetch overshoot).
    pub line_amplification: f64,
    /// LLC miss-rate floor for working sets that fit in cache
    /// (streaming kernels miss regardless of capacity).
    pub miss_floor: f64,
}

/// Signature table. One row per [`KernelClass`].
pub fn signature(class: KernelClass) -> ClassSignature {
    match class {
        // Streaming per-cell compares: load/store bound, low power.
        KernelClass::CellClassify => ClassSignature {
            cpi_core: 2.8,
            activity: 0.3,
            line_amplification: 1.0,
            miss_floor: 0.3,
        },
        // Marching-cubes case classification: gathers 8 corners and
        // indexes the case tables — more ILP than a raw compare stream.
        KernelClass::CaseTable => ClassSignature {
            cpi_core: 1.6,
            activity: 0.3,
            line_amplification: 1.0,
            miss_floor: 0.3,
        },
        // Contour interpolation: moderate FP mixed with lookups.
        KernelClass::Interpolate => ClassSignature {
            cpi_core: 1.0,
            activity: 0.4,
            line_amplification: 1.2,
            miss_floor: 0.3,
        },
        // Implicit-function evaluation: FP-dense streaming (slice).
        KernelClass::SignedDistance => ClassSignature {
            cpi_core: 0.62,
            activity: 0.42,
            line_amplification: 1.0,
            miss_floor: 0.22,
        },
        // Output compaction: pointer-chasing gathers, poor locality.
        KernelClass::GatherScatter => ClassSignature {
            cpi_core: 2.4,
            activity: 0.4,
            line_amplification: 1.1,
            miss_floor: 0.35,
        },
        // Tetrahedral subdivision: irregular, weld-map lookups — the
        // worst LLC behaviour in the study (isovolume, Fig. 2c).
        KernelClass::TetClip => ClassSignature {
            cpi_core: 1.7,
            activity: 0.8,
            line_amplification: 1.2,
            miss_floor: 0.52,
        },
        // BVH construction: sorts and bounding-box reductions.
        KernelClass::BvhBuild => ClassSignature {
            cpi_core: 1.8,
            activity: 0.42,
            line_amplification: 2.0,
            miss_floor: 0.42,
        },
        // BVH traversal: branchy but cache-resident FP.
        KernelClass::RayTraverse => ClassSignature {
            cpi_core: 0.75,
            activity: 0.64,
            line_amplification: 1.0,
            miss_floor: 0.1,
        },
        // Volume sampling loop: the highest-IPC kernel in the paper.
        KernelClass::RayMarch => ClassSignature {
            cpi_core: 0.5,
            activity: 0.84,
            line_amplification: 4.0,
            miss_floor: 0.05,
        },
        // RK4 integration: "computationally very efficient … large
        // number of high power instructions" (§VI-C).
        KernelClass::Rk4Advect => ClassSignature {
            cpi_core: 0.46,
            activity: 1.0,
            line_amplification: 1.0,
            miss_floor: 0.03,
        },
        // Per-pixel shading.
        KernelClass::Shade => ClassSignature {
            cpi_core: 0.8,
            activity: 0.55,
            line_amplification: 1.0,
            miss_floor: 0.1,
        },
        // Hydrodynamics: bandwidth-heavy stencil sweeps with real FP.
        KernelClass::Simulation => ClassSignature {
            cpi_core: 1.1,
            activity: 0.78,
            line_amplification: 1.3,
            miss_floor: 0.4,
        },
    }
}

/// LLC capacity term: extra miss fraction once the working set exceeds
/// the cache. A 3× overshoot costs ~30 extra points — calibrated to the
/// magnitude of volume rendering's IPC drop from 128³ to 256³ (Fig. 5).
pub fn capacity_miss(working_set_bytes: u64, llc_bytes: u64) -> f64 {
    if working_set_bytes == 0 {
        return 0.0;
    }
    let x = working_set_bytes as f64 / llc_bytes as f64;
    if x <= 1.0 {
        0.0
    } else {
        (0.45 * (1.0 - 1.0 / x)).min(0.45)
    }
}

/// Calibration of abstract operation counts to retired instructions.
///
/// The instrumentation tallies count algorithmic work (comparisons,
/// interpolations, traversal steps); a real VTK-m worklet retires several
/// times more instructions per item (index arithmetic, bounds checks,
/// field fetch plumbing, TBB task management). The uniform factor below
/// converts counted work into realistic instruction/traffic volumes — it
/// scales compute and memory identically, so every ratio in the study is
/// invariant to it; it only sets absolute times and the Fig. 3
/// elements/sec magnitudes (calibrated to the paper's 10–60 M/s band).
pub const WORK_SCALE: u64 = 10;

/// Fixed per-kernel dispatch overhead: worklet/task-scheduler setup that
/// does not scale with the data (thread-pool wakeups, control flow,
/// lookup-table initialization). At small data sizes this low-ILP work
/// dilutes the kernel's IPC — the mechanism behind Fig. 4's rising IPC
/// with data size for the cell-centered algorithms. At paper sizes
/// (≥ 32³ with real per-cell work) it is negligible.
pub const DISPATCH_OVERHEAD_INSTR: u64 = 500_000;

/// CPI of the dispatch overhead (branchy, serial, uncached).
pub const DISPATCH_OVERHEAD_CPI: f64 = 6.0;

/// Translate one kernel report into a processor phase.
pub fn phase_for(report: &KernelReport, spec: &CpuSpec) -> KernelPhase {
    let sig = signature(report.class);
    let w = &report.work;
    let traffic = (w.bytes_total() as f64 * sig.line_amplification) as u64;
    let llc_refs = (traffic / 64).max(1);
    let miss_rate = (sig.miss_floor
        + (1.0 - sig.miss_floor) * capacity_miss(w.working_set_bytes, spec.llc_bytes))
    .clamp(0.0, 1.0);
    let dram_bytes = (llc_refs as f64 * miss_rate * 64.0) as u64;
    // Fold the fixed dispatch overhead into the phase: total instructions
    // grow by the overhead, and the core CPI becomes the
    // instruction-weighted blend of kernel and overhead CPI.
    let kernel_instr = w.instructions.max(1);
    let instructions = kernel_instr + DISPATCH_OVERHEAD_INSTR;
    let cpi_core = (kernel_instr as f64 * sig.cpi_core
        + DISPATCH_OVERHEAD_INSTR as f64 * DISPATCH_OVERHEAD_CPI)
        / instructions as f64;
    KernelPhase {
        name: report.name.clone(),
        instructions: instructions * WORK_SCALE,
        cpi_core,
        activity: sig.activity,
        llc_refs: llc_refs * WORK_SCALE,
        llc_miss_rate: miss_rate,
        dram_bytes: dram_bytes * WORK_SCALE,
    }
}

/// Translate a full instrumented run into a workload.
pub fn characterize(name: impl Into<String>, reports: &[KernelReport], spec: &CpuSpec) -> Workload {
    let mut w = Workload::new(name);
    for r in reports {
        if r.work.instructions == 0 {
            continue; // empty kernels contribute no execution time
        }
        w.push(phase_for(r, spec));
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use vizmesh::WorkCounters;

    fn report(class: KernelClass, instr: u64, bytes: u64, ws: u64) -> KernelReport {
        let work = WorkCounters {
            items: instr / 10,
            instructions: instr,
            flops: instr / 3,
            bytes_read: bytes,
            bytes_written: bytes / 8,
            working_set_bytes: ws,
        };
        KernelReport::new("k", class, work)
    }

    #[test]
    fn every_class_has_valid_signature() {
        for class in [
            KernelClass::CellClassify,
            KernelClass::CaseTable,
            KernelClass::Interpolate,
            KernelClass::SignedDistance,
            KernelClass::GatherScatter,
            KernelClass::TetClip,
            KernelClass::BvhBuild,
            KernelClass::RayTraverse,
            KernelClass::RayMarch,
            KernelClass::Rk4Advect,
            KernelClass::Shade,
            KernelClass::Simulation,
        ] {
            let s = signature(class);
            assert!(s.cpi_core > 0.0 && s.cpi_core < 3.0);
            assert!((0.0..=1.2).contains(&s.activity));
            assert!(s.line_amplification >= 1.0);
            assert!((0.0..=1.0).contains(&s.miss_floor));
        }
    }

    #[test]
    fn compute_classes_hotter_than_memory_classes() {
        assert!(
            signature(KernelClass::Rk4Advect).activity
                > signature(KernelClass::CellClassify).activity + 0.4
        );
        assert!(
            signature(KernelClass::RayMarch).activity
                > signature(KernelClass::GatherScatter).activity + 0.4
        );
    }

    #[test]
    fn capacity_miss_kicks_in_past_llc() {
        let llc = 45 * 1024 * 1024;
        assert_eq!(capacity_miss(0, llc), 0.0);
        assert_eq!(capacity_miss(llc / 2, llc), 0.0);
        assert_eq!(capacity_miss(llc, llc), 0.0);
        let over3x = capacity_miss(llc * 3, llc);
        assert!(over3x > 0.25 && over3x <= 0.45, "3x overshoot = {over3x}");
        // Monotone in the working set.
        assert!(capacity_miss(llc * 8, llc) >= over3x);
    }

    #[test]
    fn phase_reflects_measured_counts_and_signature() {
        let spec = CpuSpec::broadwell_e5_2695v4();
        let r = report(KernelClass::CellClassify, 1_000_000, 640_000, 0);
        let p = phase_for(&r, &spec);
        let sig = signature(KernelClass::CellClassify);
        assert_eq!(
            p.instructions,
            (1_000_000 + DISPATCH_OVERHEAD_INSTR) * WORK_SCALE
        );
        // Blended CPI sits between the kernel's and the overhead's.
        assert!(p.cpi_core > sig.cpi_core && p.cpi_core < DISPATCH_OVERHEAD_CPI);
        // 640 kB read + 80 kB written, amplified, /64 per line.
        let expect_refs = ((720_000.0 * sig.line_amplification) as u64) / 64 * WORK_SCALE;
        assert_eq!(p.llc_refs, expect_refs);
        assert!((p.llc_miss_rate - sig.miss_floor).abs() < 1e-12);
        assert!(p.is_valid());
    }

    #[test]
    fn oversized_working_set_raises_miss_rate() {
        let spec = CpuSpec::broadwell_e5_2695v4();
        let small = phase_for(
            &report(KernelClass::RayMarch, 1_000_000, 1_000_000, 16 << 20),
            &spec,
        );
        let big = phase_for(
            &report(KernelClass::RayMarch, 1_000_000, 1_000_000, 200 << 20),
            &spec,
        );
        assert!(big.llc_miss_rate > small.llc_miss_rate + 0.05);
    }

    #[test]
    fn characterize_skips_empty_kernels() {
        let spec = CpuSpec::broadwell_e5_2695v4();
        let empty = KernelReport::new("e", KernelClass::TetClip, WorkCounters::new());
        let real = report(KernelClass::Interpolate, 500, 100, 0);
        let w = characterize("test", &[empty, real], &spec);
        assert_eq!(w.phases.len(), 1);
        // A tiny kernel (500 instructions) is dominated by the dispatch
        // overhead, so its blended CPI approaches the overhead CPI.
        assert!(w.phases[0].cpi_core > signature(KernelClass::Interpolate).cpi_core);
    }
}
