//! One entry point per table/figure of the paper's evaluation.
//!
//! Every function takes the caching [`StudyContext`] plus the data-set
//! size(s) to use, so the reproduction harness can run paper-scale sizes
//! while the test-suite runs scaled-down ones — the *structure* of each
//! experiment (which algorithms, which caps, which metric) is identical.

use crate::efficiency;
use crate::study::{CapSweep, StudyContext};
use powersim::trace::Scope;
use powersim::Joules;
use serde::{Deserialize, Serialize};
use vizalgo::Algorithm;

/// A plottable series: one labelled line of (power cap, value) points.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FigSeries {
    pub label: String,
    pub points: Vec<(f64, f64)>,
}

/// Which per-sample metric a figure plots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FigMetric {
    /// Fig. 2a: effective frequency (GHz).
    EffectiveFrequency,
    /// Fig. 2b: instructions per cycle.
    Ipc,
    /// Fig. 2c: last-level-cache miss rate.
    LlcMissRate,
}

impl FigMetric {
    fn extract(&self, row: &powersim::ExecResult) -> f64 {
        match self {
            FigMetric::EffectiveFrequency => row.avg_effective_freq_ghz,
            FigMetric::Ipc => row.avg_ipc,
            FigMetric::LlcMissRate => row.avg_llc_miss_rate,
        }
    }

    /// Stable name for journal span labels and report headers.
    pub fn name(&self) -> &'static str {
        match self {
            FigMetric::EffectiveFrequency => "effective_frequency",
            FigMetric::Ipc => "ipc",
            FigMetric::LlcMissRate => "llc_miss_rate",
        }
    }
}

/// Close an experiment-phase span whose joules roll up every row of the
/// sweeps the phase executed.
fn emit_phase(ctx: &mut StudyContext, name: String, t0: f64, sweeps: &[CapSweep]) {
    if !ctx.journal.is_enabled() {
        return;
    }
    let joules: Joules = sweeps
        .iter()
        .flat_map(|s| s.rows.iter())
        .map(|r| r.energy_joules)
        .sum();
    ctx.journal.push_span(
        Scope::Study,
        name,
        t0,
        Some(joules),
        vec![("sweeps", sweeps.len() as f64)],
    );
}

/// **Table I** — Phase 1: the contour baseline across the cap sweep.
pub fn table1(ctx: &mut StudyContext, size: usize) -> CapSweep {
    let t0 = ctx.journal.now();
    let sweep = ctx.sweep(Algorithm::Contour, size);
    emit_phase(
        ctx,
        format!("table1:{size}"),
        t0,
        std::slice::from_ref(&sweep),
    );
    sweep
}

/// **Table II / Table III** — Phases 2 and 3: every algorithm at one
/// data-set size (128³ for Table II, 256³ for Table III).
pub fn slowdown_table(ctx: &mut StudyContext, size: usize) -> Vec<CapSweep> {
    let t0 = ctx.journal.now();
    let sweeps: Vec<CapSweep> = Algorithm::ALL.iter().map(|&a| ctx.sweep(a, size)).collect();
    emit_phase(ctx, format!("slowdown_table:{size}"), t0, &sweeps);
    sweeps
}

/// **Fig. 2a/2b/2c** — the chosen metric vs power cap for all algorithms
/// at one size.
pub fn fig2(ctx: &mut StudyContext, size: usize, metric: FigMetric) -> Vec<FigSeries> {
    let t0 = ctx.journal.now();
    let sweeps: Vec<CapSweep> = Algorithm::ALL.iter().map(|&a| ctx.sweep(a, size)).collect();
    let series = sweeps
        .iter()
        .map(|sweep| FigSeries {
            label: sweep.algorithm.name().to_string(),
            points: sweep
                .rows
                .iter()
                .map(|r| (r.cap_watts.value(), metric.extract(r)))
                .collect(),
        })
        .collect();
    emit_phase(ctx, format!("fig2:{}:{size}", metric.name()), t0, &sweeps);
    series
}

/// **Fig. 3** — elements (millions) per second for the cell-centered
/// algorithms.
pub fn fig3(ctx: &mut StudyContext, size: usize) -> Vec<FigSeries> {
    let t0 = ctx.journal.now();
    let sweeps: Vec<CapSweep> = Algorithm::CELL_CENTERED
        .iter()
        .map(|&a| ctx.sweep(a, size))
        .collect();
    let series = sweeps
        .iter()
        .map(|sweep| FigSeries {
            label: sweep.algorithm.name().to_string(),
            points: sweep
                .rows
                .iter()
                .map(|r| {
                    (
                        r.cap_watts.value(),
                        efficiency::rate(sweep.input_cells, r.seconds),
                    )
                })
                .collect(),
        })
        .collect();
    emit_phase(ctx, format!("fig3:{size}"), t0, &sweeps);
    series
}

/// **Figs. 4/5/6** — IPC vs cap across data-set sizes for one algorithm
/// (slice: rises with size; volume rendering: falls; advection: flat).
pub fn fig_size_ipc(
    ctx: &mut StudyContext,
    algorithm: Algorithm,
    sizes: &[usize],
) -> Vec<FigSeries> {
    let t0 = ctx.journal.now();
    let sweeps: Vec<CapSweep> = sizes.iter().map(|&n| ctx.sweep(algorithm, n)).collect();
    let series = sweeps
        .iter()
        .map(|sweep| FigSeries {
            label: format!("{}", sweep.size),
            points: sweep
                .rows
                .iter()
                .map(|r| (r.cap_watts.value(), r.avg_ipc))
                .collect(),
        })
        .collect();
    emit_phase(ctx, format!("fig_size:{}", algorithm.name()), t0, &sweeps);
    series
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::StudyConfig;
    use powersim::Watts;

    fn ctx() -> StudyContext {
        StudyContext::new(StudyConfig {
            caps: vec![Watts(120.0), Watts(70.0), Watts(40.0)],
            isovalues: 3,
            render_px: 10,
            cameras: 2,
            particles: 15,
            advect_steps: 25,
        })
    }

    #[test]
    fn table1_has_one_row_per_cap() {
        let mut ctx = ctx();
        let t = table1(&mut ctx, 10);
        assert_eq!(t.rows.len(), 3);
        assert_eq!(t.algorithm, Algorithm::Contour);
    }

    #[test]
    fn slowdown_table_covers_all_algorithms() {
        let mut ctx = ctx();
        let t = slowdown_table(&mut ctx, 8);
        assert_eq!(t.len(), 8);
        for sweep in &t {
            assert_eq!(sweep.rows.len(), 3);
        }
    }

    #[test]
    fn fig2_metrics_are_positive_and_distinct() {
        let mut ctx = ctx();
        let freq = fig2(&mut ctx, 8, FigMetric::EffectiveFrequency);
        let ipc = fig2(&mut ctx, 8, FigMetric::Ipc);
        assert_eq!(freq.len(), 8);
        for s in &freq {
            // Counter rounding in short runs can nudge the APERF/MPERF
            // ratio a hair past turbo.
            assert!(s.points.iter().all(|&(_, v)| v > 0.5 && v <= 2.61));
        }
        for s in &ipc {
            assert!(s.points.iter().all(|&(_, v)| v > 0.0));
        }
    }

    #[test]
    fn fig3_covers_cell_centered_only() {
        let mut ctx = ctx();
        let series = fig3(&mut ctx, 8);
        assert_eq!(series.len(), 5);
        for s in &series {
            assert!(s.points.iter().all(|&(_, v)| v > 0.0));
        }
    }

    #[test]
    fn experiment_phases_emit_rollup_spans() {
        use powersim::trace::{Event, Scope};
        let mut ctx = ctx();
        ctx.enable_journal(1 << 16);
        let t = table1(&mut ctx, 8);
        let total: Joules = t.rows.iter().map(|r| r.energy_joules).sum();
        let phase = ctx
            .journal
            .events()
            .find_map(|e| match e {
                Event::Span(s) if s.scope == Scope::Study && s.name == "table1:8" => Some(s),
                _ => None,
            })
            .expect("table1 phase span present");
        assert_eq!(phase.joules, Some(total));
    }

    #[test]
    fn fig_size_ipc_one_series_per_size() {
        let mut ctx = ctx();
        let series = fig_size_ipc(&mut ctx, Algorithm::ParticleAdvection, &[8, 12]);
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].label, "8");
        assert_eq!(series[1].label, "12");
    }
}
