//! Execution-time model: a smoothed roofline of core time vs memory time.
//!
//! A phase with `I` instructions at core CPI `c` on `N` cores at `f` GHz
//! needs `t_core = I·c / (N·f·10⁹)` seconds of core time. Its memory
//! side needs the larger of the bandwidth time (`bytes / BW`) and the
//! latency time (`misses · L / (N · MLP)`), which do **not** scale with
//! core frequency. The phase time blends the two with a p-norm so the
//! compute↔memory knee is gradual, as on real machines:
//!
//! `t = (t_core^p + t_mem^p)^(1/p)`, p = 3.
//!
//! This is the mechanism behind the paper's headline observation: when
//! the cap lowers `f`, only `t_core` stretches, so memory-bound phases
//! (t_mem dominant) barely slow down while compute-bound phases slow
//! proportionally.

use crate::cpu::CpuSpec;
use crate::workload::KernelPhase;

/// Blend exponent for the roofline max.
const P_NORM: f64 = 3.0;

/// Core-limited time of a phase at `f_ghz`.
pub fn core_time(spec: &CpuSpec, phase: &KernelPhase, f_ghz: f64) -> f64 {
    phase.instructions as f64 * phase.cpi_core / (spec.cores as f64 * f_ghz * 1e9)
}

/// Memory-limited time of a phase (frequency independent).
pub fn memory_time(spec: &CpuSpec, phase: &KernelPhase) -> f64 {
    let bw_time = phase.dram_bytes as f64 / spec.dram_bytes_per_sec;
    let lat_time =
        phase.llc_misses() as f64 * spec.mem_latency_sec / (spec.cores as f64 * spec.mlp);
    bw_time.max(lat_time)
}

/// Wall-clock time of a phase at `f_ghz`.
pub fn phase_time(spec: &CpuSpec, phase: &KernelPhase, f_ghz: f64) -> f64 {
    let tc = core_time(spec, phase, f_ghz);
    let tm = memory_time(spec, phase);
    (tc.powf(P_NORM) + tm.powf(P_NORM)).powf(1.0 / P_NORM)
}

/// How memory-bound a phase is at `f_ghz`: 0 = pure compute, 1 = pure
/// memory. Used by the effective-activity model (a stalled core gates
/// its execution units and draws less dynamic power).
pub fn memory_boundedness(spec: &CpuSpec, phase: &KernelPhase, f_ghz: f64) -> f64 {
    let tc = core_time(spec, phase, f_ghz);
    let tm = memory_time(spec, phase);
    if tc + tm <= 0.0 {
        return 0.0;
    }
    tm.powf(P_NORM) / (tc.powf(P_NORM) + tm.powf(P_NORM))
}

/// Dynamic activity the package sees for a phase. The per-class
/// signatures in `vizpower::characterize` already fold stall behaviour
/// into `activity` (they are calibrated against the paper's measured
/// per-algorithm power draws), so this is the identity — kept as a
/// function so alternative derating models can be slotted in for
/// ablation studies.
pub fn effective_activity(_spec: &CpuSpec, phase: &KernelPhase, _f_ghz: f64) -> f64 {
    phase.activity
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> CpuSpec {
        CpuSpec::broadwell_e5_2695v4()
    }

    fn compute_phase() -> KernelPhase {
        KernelPhase {
            name: "compute".into(),
            instructions: 1_000_000_000_000,
            cpi_core: 0.4,
            activity: 0.95,
            llc_refs: 1_000_000,
            llc_miss_rate: 0.02,
            dram_bytes: 1_000_000,
        }
    }

    fn memory_phase() -> KernelPhase {
        KernelPhase {
            name: "memory".into(),
            instructions: 10_000_000_000,
            cpi_core: 0.8,
            activity: 0.4,
            llc_refs: 2_000_000_000,
            llc_miss_rate: 0.7,
            dram_bytes: 400_000_000_000,
        }
    }

    #[test]
    fn compute_time_scales_inverse_frequency() {
        let s = spec();
        let p = compute_phase();
        let t_fast = phase_time(&s, &p, 2.6);
        let t_slow = phase_time(&s, &p, 1.3);
        let ratio = t_slow / t_fast;
        assert!((ratio - 2.0).abs() < 0.05, "ratio = {ratio}");
    }

    #[test]
    fn memory_time_insensitive_to_frequency() {
        let s = spec();
        let p = memory_phase();
        let t_fast = phase_time(&s, &p, 2.6);
        let t_slow = phase_time(&s, &p, 1.3);
        let ratio = t_slow / t_fast;
        assert!(ratio < 1.15, "memory-bound slowdown = {ratio}");
    }

    #[test]
    fn memory_time_uses_max_of_bandwidth_and_latency() {
        let s = spec();
        let mut p = memory_phase();
        // Huge bytes, few misses → bandwidth bound.
        p.llc_refs = 10;
        let bw = p.dram_bytes as f64 / s.dram_bytes_per_sec;
        assert!((memory_time(&s, &p) - bw).abs() < 1e-12);
        // Few bytes, many misses → latency bound.
        p.dram_bytes = 10;
        p.llc_refs = 50_000_000_000;
        p.llc_miss_rate = 1.0;
        let lat = p.llc_misses() as f64 * s.mem_latency_sec / (s.cores as f64 * s.mlp);
        assert!((memory_time(&s, &p) - lat).abs() < 1e-9 * lat);
    }

    #[test]
    fn phase_time_at_least_both_components() {
        let s = spec();
        for p in [compute_phase(), memory_phase()] {
            for f in [0.8, 1.7, 2.6] {
                let t = phase_time(&s, &p, f);
                assert!(t >= core_time(&s, &p, f) * 0.999);
                assert!(t >= memory_time(&s, &p) * 0.999);
            }
        }
    }

    #[test]
    fn boundedness_classifies_phases() {
        let s = spec();
        assert!(memory_boundedness(&s, &compute_phase(), 2.6) < 0.1);
        assert!(memory_boundedness(&s, &memory_phase(), 2.6) > 0.9);
        // Lowering frequency makes everything look less memory-bound.
        let p = memory_phase();
        assert!(memory_boundedness(&s, &p, 0.8) <= memory_boundedness(&s, &p, 2.6) + 1e-12);
    }

    #[test]
    fn effective_activity_is_the_signature_activity() {
        let s = spec();
        let c = compute_phase();
        let m = memory_phase();
        assert_eq!(effective_activity(&s, &c, 2.6), c.activity);
        assert_eq!(effective_activity(&s, &m, 0.8), m.activity);
    }
}
