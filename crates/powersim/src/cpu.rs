//! The package (processor) model: V/f curve, DVFS ladder, and the
//! analytic power model.

use serde::{Deserialize, Serialize};

use crate::units::Watts;

/// Static description of one processor package.
///
/// The default, [`CpuSpec::broadwell_e5_2695v4`], models the paper's
/// RZTopaz processor: 18 cores, 2.1 GHz base, 2.6 GHz all-core turbo,
/// 120 W TDP, cappable down to 40 W, 45 MB LLC.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CpuSpec {
    pub name: String,
    pub cores: u32,
    pub base_ghz: f64,
    /// All-core turbo ceiling.
    pub turbo_ghz: f64,
    pub min_ghz: f64,
    /// DVFS step between available frequencies.
    pub dvfs_step_ghz: f64,
    pub tdp_watts: Watts,
    /// Lowest RAPL cap the package accepts.
    pub min_cap_watts: Watts,
    pub llc_bytes: u64,
    /// Sustained DRAM bandwidth per package.
    pub dram_bytes_per_sec: f64,
    /// DRAM access latency.
    pub mem_latency_sec: f64,
    /// Memory-level parallelism: outstanding misses per core.
    pub mlp: f64,
    /// Constant uncore power.
    pub uncore_watts: Watts,
    /// Additional package power at full DRAM-bandwidth utilization
    /// (memory controllers, LLC and ring traffic). Scales linearly with
    /// the utilization fraction.
    pub mem_power_watts: Watts,
    /// Leakage coefficient: `P_leak = leak_per_volt * V`.
    pub leak_per_volt: f64,
    /// Dynamic coefficient: `P_dyn = cores * c_dyn * V² * f_ghz * α`.
    pub c_dyn: f64,
    /// Voltage at `min_ghz`.
    pub v_min: f64,
    /// Voltage slope per GHz above `min_ghz`.
    pub v_slope: f64,
}

impl CpuSpec {
    /// The paper's processor: Intel Xeon E5-2695 v4 (Broadwell-EP).
    ///
    /// Power-model coefficients are calibrated so that an FP-dense
    /// workload (activity ≈ 0.95) draws ≈ 88 W at the 2.6 GHz all-core
    /// turbo — matching §VI-B's "roughly 85 W per processor" for volume
    /// rendering and particle advection — and a stall-dominated workload
    /// (activity ≈ 0.3) draws ≈ 55 W, the low end the paper reports.
    pub fn broadwell_e5_2695v4() -> Self {
        CpuSpec {
            name: "Intel Xeon E5-2695 v4 (simulated)".into(),
            cores: 18,
            base_ghz: 2.1,
            turbo_ghz: 2.6,
            min_ghz: 0.8,
            dvfs_step_ghz: 0.1,
            tdp_watts: Watts(120.0),
            min_cap_watts: Watts(40.0),
            llc_bytes: 45 * 1024 * 1024,
            dram_bytes_per_sec: 68.0e9,
            mem_latency_sec: 89e-9,
            mlp: 10.0,
            uncore_watts: Watts(24.0),
            mem_power_watts: Watts(7.0),
            leak_per_volt: 5.0,
            c_dyn: 1.335,
            v_min: 0.65,
            v_slope: 0.19,
        }
    }

    /// A Skylake-SP-class preset for the paper's cross-architecture
    /// future work (§VIII): more cores, higher TDP, a smaller
    /// non-inclusive LLC, and more memory bandwidth. Power caps reach
    /// further down relative to the draw of hot workloads, and the
    /// bandwidth headroom shrinks memory-bound cushions.
    pub fn skylake_8160_like() -> Self {
        CpuSpec {
            name: "Skylake-SP class (simulated)".into(),
            cores: 24,
            base_ghz: 2.1,
            turbo_ghz: 2.8,
            min_ghz: 1.0,
            dvfs_step_ghz: 0.1,
            tdp_watts: Watts(150.0),
            min_cap_watts: Watts(50.0),
            llc_bytes: 33 * 1024 * 1024,
            dram_bytes_per_sec: 100.0e9,
            mem_latency_sec: 94e-9,
            mlp: 12.0,
            uncore_watts: Watts(30.0),
            mem_power_watts: Watts(9.0),
            leak_per_volt: 6.0,
            c_dyn: 1.30,
            v_min: 0.62,
            v_slope: 0.17,
        }
    }

    /// A low-power dense-node preset (Xeon-D flavour): few cores, small
    /// power range, low bandwidth. Even "cold" visualization kernels sit
    /// near its TDP, so the power-opportunity window shrinks.
    pub fn lowpower_d_like() -> Self {
        CpuSpec {
            name: "Xeon-D class (simulated)".into(),
            cores: 8,
            base_ghz: 2.0,
            turbo_ghz: 2.4,
            min_ghz: 0.8,
            dvfs_step_ghz: 0.1,
            tdp_watts: Watts(45.0),
            min_cap_watts: Watts(20.0),
            llc_bytes: 12 * 1024 * 1024,
            dram_bytes_per_sec: 30.0e9,
            mem_latency_sec: 85e-9,
            mlp: 8.0,
            uncore_watts: Watts(9.0),
            mem_power_watts: Watts(4.0),
            leak_per_volt: 3.0,
            c_dyn: 1.95,
            v_min: 0.60,
            v_slope: 0.15,
        }
    }

    /// Operating voltage at frequency `f_ghz`.
    pub fn voltage(&self, f_ghz: f64) -> f64 {
        self.v_min + self.v_slope * (f_ghz - self.min_ghz).max(0.0)
    }

    /// Package power at frequency `f_ghz` with dynamic activity `alpha`
    /// and no memory traffic.
    pub fn power(&self, f_ghz: f64, alpha: f64) -> Watts {
        self.power_with_traffic(f_ghz, alpha, 0.0)
    }

    /// Package power including the DRAM-traffic term. `bw_utilization` is
    /// the fraction of peak DRAM bandwidth in flight (clamped to [0, 1]).
    pub fn power_with_traffic(&self, f_ghz: f64, alpha: f64, bw_utilization: f64) -> Watts {
        let v = self.voltage(f_ghz);
        self.uncore_watts
            + self.mem_power_watts * bw_utilization.clamp(0.0, 1.0)
            + Watts(self.leak_per_volt * v)
            + Watts(self.cores as f64 * self.c_dyn * v * v * f_ghz * alpha)
    }

    /// The DVFS ladder, descending from turbo to minimum.
    pub fn frequencies(&self) -> Vec<f64> {
        let mut out = Vec::new();
        let mut f = self.turbo_ghz;
        while f >= self.min_ghz - 1e-9 {
            out.push((f * 100.0).round() / 100.0);
            f -= self.dvfs_step_ghz;
        }
        out
    }

    /// Highest ladder frequency whose power at `alpha` fits under
    /// `cap_watts`; falls back to the minimum frequency if none does
    /// (RAPL cannot throttle below the lowest P-state).
    pub fn solve_frequency(&self, cap_watts: Watts, alpha: f64) -> f64 {
        for f in self.frequencies() {
            if self.power(f, alpha) <= cap_watts {
                return f;
            }
        }
        self.min_ghz
    }

    /// Clamp a requested cap into the supported range (the paper sweeps
    /// 120 W down to 40 W).
    pub fn clamp_cap(&self, cap_watts: Watts) -> Watts {
        cap_watts.clamp(self.min_cap_watts, self.tdp_watts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> CpuSpec {
        CpuSpec::broadwell_e5_2695v4()
    }

    #[test]
    fn voltage_monotone_in_frequency() {
        let s = spec();
        let mut last = 0.0;
        for f in [0.8, 1.2, 2.1, 2.6] {
            let v = s.voltage(f);
            assert!(v > last);
            last = v;
        }
        assert!((s.voltage(0.8) - 0.65).abs() < 1e-12);
    }

    #[test]
    fn power_monotone_in_frequency_and_activity() {
        let s = spec();
        assert!(s.power(2.6, 0.9) > s.power(2.1, 0.9));
        assert!(s.power(2.1, 0.9) > s.power(2.1, 0.3));
        // Idle-ish floor: uncore + leakage only.
        let idle = s.power(0.8, 0.0);
        assert!(idle > 15.0 && idle < 35.0, "idle = {idle}");
    }

    #[test]
    fn calibration_matches_paper_power_ranges() {
        let s = spec();
        // FP-dense workload at all-core turbo ≈ 85–92 W (§VI-B2).
        let hot = s.power(2.6, 0.95);
        assert!((84.0..=93.0).contains(&hot), "hot = {hot}");
        // Stall-dominated workload ≈ 50–58 W (§VI-B1).
        let cold = s.power(2.6, 0.38);
        assert!((48.0..=60.0).contains(&cold), "cold = {cold}");
        // Idle-ish floor stays well under the 40 W minimum cap.
        assert!(s.power(s.min_ghz, 0.05) < 40.0);
        // Nothing exceeds TDP at max turbo and activity 1.1.
        assert!(s.power(s.turbo_ghz, 1.1) <= s.tdp_watts);
    }

    #[test]
    fn ladder_spans_turbo_to_min() {
        let s = spec();
        let f = s.frequencies();
        assert_eq!(f[0], 2.6);
        assert_eq!(*f.last().unwrap(), 0.8);
        // Descending in 0.1 steps.
        for w in f.windows(2) {
            assert!((w[0] - w[1] - 0.1).abs() < 1e-9);
        }
    }

    #[test]
    fn solver_uncapped_runs_turbo() {
        let s = spec();
        assert_eq!(s.solve_frequency(Watts(120.0), 0.95), 2.6);
        assert_eq!(s.solve_frequency(Watts(120.0), 0.3), 2.6);
    }

    #[test]
    fn solver_throttles_hot_workloads_first() {
        let s = spec();
        // At 70 W, a hot workload must slow below turbo…
        let hot = s.solve_frequency(Watts(70.0), 0.95);
        assert!(hot < 2.6, "hot freq = {hot}");
        // …while a cold workload still runs at turbo.
        assert_eq!(s.solve_frequency(Watts(70.0), 0.35), 2.6);
    }

    #[test]
    fn solver_at_40w_matches_paper_shape() {
        let s = spec();
        // Paper Table I: contour (cold) at 40 W drops to ≈ 2.07 GHz
        // (Fratio 1.23); advection (hot) drops to ≈ 0.95 GHz (Fratio 2.69).
        let cold = s.solve_frequency(Watts(40.0), 0.38);
        assert!((1.8..=2.3).contains(&cold), "cold 40 W freq = {cold}");
        let hot = s.solve_frequency(Watts(40.0), 0.95);
        assert!((0.8..=1.2).contains(&hot), "hot 40 W freq = {hot}");
    }

    #[test]
    fn solver_never_returns_below_min() {
        let s = spec();
        assert_eq!(s.solve_frequency(Watts(1.0), 1.0), s.min_ghz);
    }

    #[test]
    fn traffic_power_adds_at_full_bandwidth() {
        let s = spec();
        let quiet = s.power_with_traffic(2.6, 0.4, 0.0);
        let streaming = s.power_with_traffic(2.6, 0.4, 1.0);
        assert!((streaming - quiet - s.mem_power_watts).abs() < 1e-12);
        // Utilization is clamped.
        assert_eq!(s.power_with_traffic(2.6, 0.4, 5.0), streaming);
    }

    #[test]
    fn alternative_architectures_are_self_consistent() {
        for spec in [CpuSpec::skylake_8160_like(), CpuSpec::lowpower_d_like()] {
            // Hot workloads fit under TDP at max turbo.
            assert!(
                spec.power(spec.turbo_ghz, 1.0) <= spec.tdp_watts,
                "{}: peak power exceeds TDP",
                spec.name
            );
            // The ladder spans turbo down to min.
            let ladder = spec.frequencies();
            assert_eq!(ladder[0], spec.turbo_ghz);
            assert!((ladder.last().unwrap() - spec.min_ghz).abs() < 1e-9);
            // Capping to the floor forces a real slowdown for hot work.
            let f = spec.solve_frequency(spec.min_cap_watts, 0.95);
            assert!(f < spec.turbo_ghz, "{}: no throttle at floor", spec.name);
        }
    }

    #[test]
    fn clamp_cap_bounds() {
        let s = spec();
        assert_eq!(s.clamp_cap(Watts(500.0)), 120.0);
        assert_eq!(s.clamp_cap(Watts(10.0)), 40.0);
        assert_eq!(s.clamp_cap(Watts(90.0)), 90.0);
    }
}
