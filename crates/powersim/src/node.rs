//! The dual-socket node: two packages sharing a workload, as on the
//! paper's RZTopaz nodes ("each node contains … two Intel Xeon E5-2695
//! v4 dual-socket processors"; the study applies the same cap to each
//! processor and reports per-processor power).

use crate::cpu::CpuSpec;
use crate::exec::{ExecResult, Package};
use crate::units::{Joules, Watts};
use crate::workload::{KernelPhase, Workload};
use serde::{Deserialize, Serialize};

/// Aggregate result of a node run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NodeResult {
    /// The slower package defines completion (the workload is split and
    /// both halves must finish).
    pub seconds: f64,
    /// Total node energy across both packages.
    pub energy_joules: Joules,
    /// Combined average node power while running.
    pub avg_power_watts: Watts,
    /// Per-package results.
    pub packages: [ExecResult; 2],
}

/// A two-package node with a uniform per-package cap, the paper's
/// configuration ("a uniform power cap to all nodes").
pub struct Node {
    pub sockets: [Package; 2],
}

impl Node {
    pub fn new(spec: CpuSpec) -> Self {
        Node {
            sockets: [Package::new(spec.clone()), Package::new(spec)],
        }
    }

    /// The paper's node: two simulated Broadwell packages.
    pub fn rztopaz() -> Self {
        Node::new(CpuSpec::broadwell_e5_2695v4())
    }

    /// Split a workload evenly across the sockets (each phase's counts
    /// halve; shared-memory parallel sections split this way on the real
    /// machine too).
    pub fn split(workload: &Workload) -> [Workload; 2] {
        let half = |w: &Workload| -> Workload {
            let mut out = Workload::new(format!("{}:half", w.name));
            for p in &w.phases {
                out.push(KernelPhase {
                    name: p.name.clone(),
                    instructions: (p.instructions / 2).max(1),
                    cpi_core: p.cpi_core,
                    activity: p.activity,
                    llc_refs: p.llc_refs / 2,
                    llc_miss_rate: p.llc_miss_rate,
                    dram_bytes: p.dram_bytes / 2,
                });
            }
            out
        };
        [half(workload), half(workload)]
    }

    /// Run a workload split across both sockets under a uniform
    /// per-package cap.
    pub fn run_capped(&mut self, workload: &Workload, cap_per_package: Watts) -> NodeResult {
        let halves = Self::split(workload);
        let a = self.sockets[0].run_capped(&halves[0], cap_per_package);
        let b = self.sockets[1].run_capped(&halves[1], cap_per_package);
        let seconds = a.seconds.max(b.seconds);
        let energy = a.energy_joules + b.energy_joules;
        NodeResult {
            seconds,
            energy_joules: energy,
            avg_power_watts: if seconds > 0.0 {
                energy.over_seconds(seconds)
            } else {
                Watts::ZERO
            },
            packages: [a, b],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workload() -> Workload {
        Workload::new("w")
            .with_phase(KernelPhase::compute("hot", 800_000_000_000))
            .with_phase(KernelPhase::memory("cold", 50_000_000_000, 900_000_000_000))
    }

    #[test]
    fn split_halves_the_counts() {
        let w = workload();
        let [a, b] = Node::split(&w);
        assert_eq!(a.total_instructions(), b.total_instructions());
        assert_eq!(a.total_instructions(), w.total_instructions() / 2);
        assert_eq!(a.phases.len(), w.phases.len());
    }

    #[test]
    fn node_time_is_half_of_single_package() {
        let w = workload();
        let single = Package::broadwell().run_capped(&w, Watts(120.0)).seconds;
        let node = Node::rztopaz().run_capped(&w, Watts(120.0)).seconds;
        let speedup = single / node;
        assert!((1.8..=2.2).contains(&speedup), "speedup = {speedup}");
    }

    #[test]
    fn node_power_is_roughly_double_package_power() {
        let w = workload();
        let pkg = Package::broadwell().run_capped(&w, Watts(120.0));
        let node = Node::rztopaz().run_capped(&w, Watts(120.0));
        let ratio = node.avg_power_watts / pkg.avg_power_watts;
        assert!((1.7..=2.2).contains(&ratio), "ratio = {ratio}");
        // Paper: both processors' 120 W is ~88 % of node power; without a
        // modeled motherboard/DRAM-DIMM budget ours is the full node.
        assert!(node.avg_power_watts <= 2.0 * 120.0);
    }

    #[test]
    fn uniform_cap_applies_to_both_sockets() {
        let w = workload();
        let node = Node::rztopaz().run_capped(&w, Watts(50.0));
        for pkg in &node.packages {
            assert!(pkg.avg_power_watts <= 51.5, "P = {}", pkg.avg_power_watts);
            assert!((pkg.cap_watts - Watts(50.0)).abs() < 0.5);
        }
    }

    #[test]
    fn symmetric_split_gives_symmetric_results() {
        let w = workload();
        let node = Node::rztopaz().run_capped(&w, Watts(80.0));
        assert!((node.packages[0].seconds - node.packages[1].seconds).abs() < 1e-12);
        assert!((node.packages[0].energy_joules - node.packages[1].energy_joules).abs() < 1e-9);
    }
}
