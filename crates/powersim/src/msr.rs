//! A model-specific-register file with `msr-safe`-style allow-listing.
//!
//! The paper's measurements flow through LLNL's `msr-safe` kernel driver,
//! which exposes a vetted subset of MSRs to userspace. This module
//! reproduces that interface: 64-bit registers at their real addresses,
//! an allowlist with separate read/write permission, and the Broadwell
//! energy-status semantics (32-bit wrapping counter in units read from
//! `MSR_RAPL_POWER_UNIT`).

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

use crate::units::Joules;

/// Register addresses (Intel SDM / Broadwell-EP).
pub mod addr {
    /// Units for power/energy/time fields.
    pub const MSR_RAPL_POWER_UNIT: u32 = 0x606;
    /// Package power-limit control.
    pub const MSR_PKG_POWER_LIMIT: u32 = 0x610;
    /// Package energy consumed, wrapping 32-bit counter.
    pub const MSR_PKG_ENERGY_STATUS: u32 = 0x611;
    /// Maximum-performance counter (reference clock ticks unhalted).
    pub const IA32_MPERF: u32 = 0xE7;
    /// Actual-performance counter (actual clock ticks unhalted).
    pub const IA32_APERF: u32 = 0xE8;
    /// Fixed counter 0: INST_RETIRED.ANY.
    pub const IA32_FIXED_CTR0: u32 = 0x309;
    /// Fixed counter 2: CPU_CLK_UNHALTED.REF_TSC.
    pub const IA32_FIXED_CTR2: u32 = 0x30B;
    /// Programmable counter 0 (here: LONG_LAT_CACHE.REFERENCE).
    pub const IA32_PMC0: u32 = 0xC1;
    /// Programmable counter 1 (here: LONG_LAT_CACHE.MISS).
    pub const IA32_PMC1: u32 = 0xC2;
    /// Event select for PMC0.
    pub const IA32_PERFEVTSEL0: u32 = 0x186;
    /// Event select for PMC1.
    pub const IA32_PERFEVTSEL1: u32 = 0x187;
}

/// Perf-event encodings (event | umask << 8) used by the study.
pub mod event {
    /// LONGEST_LAT_CACHE.REFERENCE (0x2E / 0x4F).
    pub const LLC_REFERENCE: u64 = 0x2E | 0x4F << 8;
    /// LONGEST_LAT_CACHE.MISS (0x2E / 0x41).
    pub const LLC_MISS: u64 = 0x2E | 0x41 << 8;
}

/// Errors from the allow-listed register file.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum MsrError {
    /// The register is not on the allowlist at all.
    UnknownRegister(u32),
    /// The register exists but the operation is not permitted.
    PermissionDenied { addr: u32, write: bool },
}

impl std::fmt::Display for MsrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MsrError::UnknownRegister(a) => write!(f, "MSR {a:#x} is not allow-listed"),
            MsrError::PermissionDenied { addr, write } => write!(
                f,
                "MSR {addr:#x}: {} not permitted",
                if *write { "write" } else { "read" }
            ),
        }
    }
}

impl std::error::Error for MsrError {}

/// Allowlist entry.
#[derive(Debug, Clone, Copy)]
struct Permission {
    read: bool,
    /// Bits that may be written (msr-safe uses write masks).
    write_mask: u64,
}

/// The simulated register file.
#[derive(Debug, Clone)]
pub struct MsrFile {
    regs: HashMap<u32, u64>,
    perms: HashMap<u32, Permission>,
}

impl Default for MsrFile {
    fn default() -> Self {
        Self::new()
    }
}

impl MsrFile {
    /// Registers and permissions matching the study's msr-safe allowlist.
    pub fn new() -> Self {
        use addr::*;
        let mut perms = HashMap::new();
        let ro = Permission {
            read: true,
            write_mask: 0,
        };
        let rw = Permission {
            read: true,
            write_mask: u64::MAX,
        };
        perms.insert(MSR_RAPL_POWER_UNIT, ro);
        perms.insert(MSR_PKG_POWER_LIMIT, rw);
        perms.insert(MSR_PKG_ENERGY_STATUS, ro);
        perms.insert(IA32_MPERF, ro);
        perms.insert(IA32_APERF, ro);
        perms.insert(IA32_FIXED_CTR0, ro);
        perms.insert(IA32_FIXED_CTR2, ro);
        perms.insert(IA32_PMC0, ro);
        perms.insert(IA32_PMC1, ro);
        perms.insert(IA32_PERFEVTSEL0, rw);
        perms.insert(IA32_PERFEVTSEL1, rw);

        let mut regs = HashMap::new();
        // Energy-status unit: bits 12:8 of MSR_RAPL_POWER_UNIT give the
        // energy unit as 1 / 2^ESU joules. Broadwell-EP reports ESU = 14
        // → 61 µJ.
        regs.insert(
            MSR_RAPL_POWER_UNIT,
            14u64 << 8 | 0x3, /* power unit 1/8 W */
        );
        for &a in perms.keys() {
            regs.entry(a).or_insert(0);
        }
        MsrFile { regs, perms }
    }

    /// Userspace read through the allowlist.
    pub fn read(&self, addr: u32) -> Result<u64, MsrError> {
        let p = self
            .perms
            .get(&addr)
            .ok_or(MsrError::UnknownRegister(addr))?;
        if !p.read {
            return Err(MsrError::PermissionDenied { addr, write: false });
        }
        Ok(*self.regs.get(&addr).unwrap_or(&0))
    }

    /// Userspace write through the allowlist; only `write_mask` bits take
    /// effect, as in msr-safe.
    pub fn write(&mut self, addr: u32, value: u64) -> Result<(), MsrError> {
        let p = self
            .perms
            .get(&addr)
            .ok_or(MsrError::UnknownRegister(addr))?;
        if p.write_mask == 0 {
            return Err(MsrError::PermissionDenied { addr, write: true });
        }
        let old = *self.regs.get(&addr).unwrap_or(&0);
        self.regs
            .insert(addr, (old & !p.write_mask) | (value & p.write_mask));
        Ok(())
    }

    /// Hardware-side update (the simulation itself), bypassing the
    /// allowlist — how the "silicon" advances counters.
    pub fn hw_set(&mut self, addr: u32, value: u64) {
        self.regs.insert(addr, value);
    }

    /// Hardware-side read.
    pub fn hw_get(&self, addr: u32) -> u64 {
        *self.regs.get(&addr).unwrap_or(&0)
    }

    /// Energy unit, decoded from `MSR_RAPL_POWER_UNIT`.
    pub fn energy_unit_joules(&self) -> Joules {
        let esu = self.hw_get(addr::MSR_RAPL_POWER_UNIT) >> 8 & 0x1F;
        Joules(1.0 / (1u64 << esu) as f64)
    }

    /// Add `joules` to the wrapping 32-bit energy-status counter.
    pub fn hw_accumulate_energy(&mut self, joules: Joules) {
        let unit = self.energy_unit_joules();
        let ticks = (joules / unit).round() as u64;
        let old = self.hw_get(addr::MSR_PKG_ENERGY_STATUS);
        let new = (old + ticks) & 0xFFFF_FFFF;
        self.hw_set(addr::MSR_PKG_ENERGY_STATUS, new);
    }

    /// Difference between two energy-status readings, handling a single
    /// wrap — the standard userspace idiom.
    pub fn energy_delta_joules(&self, before: u64, after: u64) -> Joules {
        let delta = if after >= before {
            after - before
        } else {
            // One wrap of the 32-bit counter.
            after + (1u64 << 32) - before
        };
        delta as f64 * self.energy_unit_joules()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_unit_is_61_microjoules() {
        let m = MsrFile::new();
        let u = m.energy_unit_joules();
        assert!((u - Joules(1.0 / 16384.0)).abs() < 1e-12, "unit = {u}");
    }

    #[test]
    fn read_allowed_registers() {
        let m = MsrFile::new();
        assert!(m.read(addr::MSR_PKG_ENERGY_STATUS).is_ok());
        assert!(m.read(addr::IA32_APERF).is_ok());
    }

    #[test]
    fn unknown_register_rejected() {
        let m = MsrFile::new();
        assert_eq!(m.read(0x1234), Err(MsrError::UnknownRegister(0x1234)));
    }

    #[test]
    fn write_to_read_only_denied() {
        let mut m = MsrFile::new();
        let err = m.write(addr::MSR_PKG_ENERGY_STATUS, 42).unwrap_err();
        assert_eq!(
            err,
            MsrError::PermissionDenied {
                addr: addr::MSR_PKG_ENERGY_STATUS,
                write: true
            }
        );
    }

    #[test]
    fn power_limit_write_round_trips() {
        let mut m = MsrFile::new();
        m.write(addr::MSR_PKG_POWER_LIMIT, 0xDEAD_BEEF).unwrap();
        assert_eq!(m.read(addr::MSR_PKG_POWER_LIMIT).unwrap(), 0xDEAD_BEEF);
    }

    #[test]
    fn energy_accumulates_and_wraps() {
        let mut m = MsrFile::new();
        let unit = m.energy_unit_joules();
        // Park the counter near the wrap point.
        m.hw_set(addr::MSR_PKG_ENERGY_STATUS, 0xFFFF_FFF0);
        let before = m.read(addr::MSR_PKG_ENERGY_STATUS).unwrap();
        m.hw_accumulate_energy(unit * 0x20 as f64);
        let after = m.read(addr::MSR_PKG_ENERGY_STATUS).unwrap();
        assert!(after < before, "counter must wrap");
        let delta = m.energy_delta_joules(before, after);
        assert!((delta - unit * 32.0).abs() < unit, "delta = {delta}");
    }

    #[test]
    fn energy_delta_without_wrap() {
        let m = MsrFile::new();
        let d = m.energy_delta_joules(100, 300);
        assert!((d - 200.0 * m.energy_unit_joules()).abs() < 1e-12);
    }

    #[test]
    fn perfevtsel_accepts_event_encodings() {
        let mut m = MsrFile::new();
        m.write(addr::IA32_PERFEVTSEL0, event::LLC_REFERENCE)
            .unwrap();
        m.write(addr::IA32_PERFEVTSEL1, event::LLC_MISS).unwrap();
        assert_eq!(
            m.read(addr::IA32_PERFEVTSEL0).unwrap(),
            event::LLC_REFERENCE
        );
        assert_eq!(m.read(addr::IA32_PERFEVTSEL1).unwrap(), event::LLC_MISS);
    }
}
