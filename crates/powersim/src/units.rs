//! Dimensional newtypes for the power/energy quantities that cross crate
//! APIs: [`Watts`] (power, RAPL caps) and [`Joules`] (energy).
//!
//! The paper's tables are built from exactly these two quantities plus
//! seconds, and the historical failure mode is silently mixing them in
//! raw `f64` arithmetic. The newtypes make same-unit arithmetic
//! (`+`, `-`, scaling, ratios) ergonomic while forcing every W·s ↔ J
//! conversion through a named method:
//!
//! * [`Watts::for_duration`] — power integrated over seconds → energy;
//! * [`Joules::over_seconds`] — energy averaged over seconds → power.
//!
//! Dividing two values of the same unit yields a dimensionless `f64`
//! ratio (`Pratio`, `Eratio`), and comparisons against bare `f64`
//! literals are allowed in both directions so thresholds like
//! `cap >= 60.0` keep reading naturally. `cargo xtask lint` enforces
//! that watt-/joule-named quantities in the boundary modules actually
//! use these types (see `crates/xtask`).
//!
//! Both types serialize transparently as plain numbers, so report and
//! JSON output are unchanged by the migration.

#![deny(missing_docs)]

use std::cmp::Ordering;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

macro_rules! unit_newtype {
    ($name:ident, $doc:literal) => {
        #[doc = $doc]
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
        #[serde(transparent)]
        pub struct $name(pub f64);

        impl $name {
            /// The zero quantity (additive identity for sums).
            pub const ZERO: $name = $name(0.0);

            /// The raw magnitude, shedding the unit. Prefer keeping the
            /// newtype; this is the escape hatch for plotting/tabulation.
            #[inline]
            pub fn value(self) -> f64 {
                self.0
            }

            /// Absolute value, keeping the unit.
            #[inline]
            pub fn abs(self) -> $name {
                $name(self.0.abs())
            }

            /// The smaller of two same-unit quantities.
            #[inline]
            pub fn min(self, other: $name) -> $name {
                $name(self.0.min(other.0))
            }

            /// The larger of two same-unit quantities.
            #[inline]
            pub fn max(self, other: $name) -> $name {
                $name(self.0.max(other.0))
            }

            /// Clamp into the closed same-unit range `[lo, hi]`.
            #[inline]
            pub fn clamp(self, lo: $name, hi: $name) -> $name {
                $name(self.0.clamp(lo.0, hi.0))
            }

            /// Total order over magnitudes (IEEE 754 `totalOrder`), for
            /// sorting sample series that may contain NaN.
            #[inline]
            pub fn total_cmp(&self, other: &$name) -> Ordering {
                self.0.total_cmp(&other.0)
            }

            /// Whether the magnitude is neither infinite nor NaN.
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }

        /// Formats as the bare magnitude (honouring width/precision), so
        /// `{:>5.0}` table columns are unchanged by the newtype.
        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::Display::fmt(&self.0, f)
            }
        }

        impl Add for $name {
            type Output = $name;
            #[inline]
            fn add(self, rhs: $name) -> $name {
                $name(self.0 + rhs.0)
            }
        }

        impl Sub for $name {
            type Output = $name;
            #[inline]
            fn sub(self, rhs: $name) -> $name {
                $name(self.0 - rhs.0)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: $name) {
                self.0 += rhs.0;
            }
        }

        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: $name) {
                self.0 -= rhs.0;
            }
        }

        /// Scaling by a dimensionless factor keeps the unit.
        impl Mul<f64> for $name {
            type Output = $name;
            #[inline]
            fn mul(self, k: f64) -> $name {
                $name(self.0 * k)
            }
        }

        impl Div<f64> for $name {
            type Output = $name;
            #[inline]
            fn div(self, k: f64) -> $name {
                $name(self.0 / k)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        /// Same-unit division is a dimensionless ratio.
        impl Div for $name {
            type Output = f64;
            #[inline]
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = $name>>(iter: I) -> $name {
                $name(iter.map(|x| x.0).sum())
            }
        }

        impl<'a> Sum<&'a $name> for $name {
            fn sum<I: Iterator<Item = &'a $name>>(iter: I) -> $name {
                $name(iter.map(|x| x.0).sum())
            }
        }

        impl PartialEq<f64> for $name {
            #[inline]
            fn eq(&self, other: &f64) -> bool {
                self.0 == *other
            }
        }

        impl PartialEq<$name> for f64 {
            #[inline]
            fn eq(&self, other: &$name) -> bool {
                *self == other.0
            }
        }

        impl PartialOrd<f64> for $name {
            #[inline]
            fn partial_cmp(&self, other: &f64) -> Option<Ordering> {
                self.0.partial_cmp(other)
            }
        }

        impl PartialOrd<$name> for f64 {
            #[inline]
            fn partial_cmp(&self, other: &$name) -> Option<Ordering> {
                self.partial_cmp(&other.0)
            }
        }
    };
}

unit_newtype!(Watts, "Power in watts (RAPL caps, package draw, TDP).");
unit_newtype!(
    Joules,
    "Energy in joules (RAPL energy counters, E and EDP views)."
);

impl Watts {
    /// Integrate this power over a duration: `P · t` in joules. The only
    /// sanctioned W → J conversion.
    #[inline]
    pub fn for_duration(self, seconds: f64) -> Joules {
        Joules(self.0 * seconds)
    }
}

impl Joules {
    /// Average this energy over a duration: `E / t` in watts. The only
    /// sanctioned J → W conversion.
    #[inline]
    pub fn over_seconds(self, seconds: f64) -> Watts {
        Watts(self.0 / seconds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_unit_arithmetic_and_ratios() {
        let a = Watts(120.0);
        let b = Watts(40.0);
        assert_eq!(a + b, Watts(160.0));
        assert_eq!(a - b, Watts(80.0));
        assert_eq!(a / b, 3.0);
        assert_eq!(a * 0.5, Watts(60.0));
        assert_eq!(0.5 * a, Watts(60.0));
        assert_eq!(a / 2.0, Watts(60.0));
        let mut acc = Watts::ZERO;
        acc += a;
        acc -= b;
        assert_eq!(acc, Watts(80.0));
    }

    #[test]
    fn conversions_go_through_named_methods() {
        let e = Watts(50.0).for_duration(4.0);
        assert_eq!(e, Joules(200.0));
        assert_eq!(e.over_seconds(4.0), Watts(50.0));
    }

    #[test]
    fn comparisons_against_bare_f64_work_both_ways() {
        let cap = Watts(70.0);
        assert!(cap >= 60.0);
        assert!(40.0 < cap);
        assert!(cap == 70.0);
        assert!((60.0..=90.0).contains(&cap));
    }

    #[test]
    fn helpers_min_max_clamp_abs_sum() {
        let lo = Watts(40.0);
        let hi = Watts(120.0);
        assert_eq!(Watts(200.0).clamp(lo, hi), hi);
        assert_eq!(lo.max(hi), hi);
        assert_eq!(lo.min(hi), lo);
        assert_eq!((lo - hi).abs(), Watts(80.0));
        let total: Joules = [Joules(1.0), Joules(2.5)].into_iter().sum();
        assert_eq!(total, Joules(3.5));
        let total_ref: Joules = [Joules(1.0), Joules(2.5)].iter().sum();
        assert_eq!(total_ref, Joules(3.5));
    }

    #[test]
    fn display_passes_width_and_precision_through() {
        assert_eq!(format!("{:>6.1}", Watts(70.25)), "  70.2");
        assert_eq!(format!("{:.0}", Joules(19.6)), "20");
    }
}
