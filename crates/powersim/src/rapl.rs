//! The RAPL power limiter: `MSR_PKG_POWER_LIMIT` encoding and the
//! running-average control loop.
//!
//! Real RAPL measures a running average of package energy over a
//! configurable window and modulates the P-state so the average stays at
//! or below the programmed limit. The simulation reproduces the
//! steady-state behaviour: each control window, the firmware picks the
//! highest DVFS frequency whose predicted power under the *current
//! workload phase* fits the cap. Uncapped (or with the limit disabled),
//! the package runs all-core turbo subject to TDP.

use crate::cpu::CpuSpec;
use crate::msr::{addr, MsrError, MsrFile};
use crate::units::Watts;

/// Power-limit field unit: 1/8 W (bits 3:0 = 3 in `MSR_RAPL_POWER_UNIT`).
const POWER_UNIT: Watts = Watts(0.125);

/// RAPL control window used by the firmware model.
pub const CONTROL_WINDOW_SEC: f64 = 0.010;

/// Encode/decode and apply package power limits.
#[derive(Debug, Clone, Copy, Default)]
pub struct PowerLimiter;

impl PowerLimiter {
    /// Program a package power cap in watts (clamped to the supported
    /// range) through the MSR interface, with the enable bit set.
    pub fn set_cap(msr: &mut MsrFile, spec: &CpuSpec, watts: Watts) -> Result<(), MsrError> {
        let clamped = spec.clamp_cap(watts);
        let field = (clamped / POWER_UNIT).round() as u64 & 0x7FFF;
        // Bit 15: enable. Bits 23:17: time window (encoded, fixed here).
        let value = field | 1 << 15 | 0x6 << 17;
        msr.write(addr::MSR_PKG_POWER_LIMIT, value)
    }

    /// Disable power limiting (the 120 W "default" column of the tables
    /// still enforces TDP, which `control_frequency` applies regardless).
    pub fn disable(msr: &mut MsrFile) -> Result<(), MsrError> {
        msr.write(addr::MSR_PKG_POWER_LIMIT, 0)
    }

    /// The currently programmed cap, if enabled.
    pub fn get_cap(msr: &MsrFile) -> Option<Watts> {
        let v = msr.hw_get(addr::MSR_PKG_POWER_LIMIT);
        if v & 1 << 15 == 0 {
            return None;
        }
        Some((v & 0x7FFF) as f64 * POWER_UNIT)
    }

    /// The cap the firmware actually enforces this window: the
    /// programmed limit if enabled, else TDP — and never above TDP.
    pub fn effective_cap(msr: &MsrFile, spec: &CpuSpec) -> Watts {
        Self::get_cap(msr)
            .unwrap_or(spec.tdp_watts)
            .min(spec.tdp_watts)
    }

    /// Firmware decision for one control window: the frequency to run at
    /// given the active workload's effective activity factor.
    pub fn control_frequency(msr: &MsrFile, spec: &CpuSpec, activity: f64) -> f64 {
        spec.solve_frequency(Self::effective_cap(msr, spec), activity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (MsrFile, CpuSpec) {
        (MsrFile::new(), CpuSpec::broadwell_e5_2695v4())
    }

    #[test]
    fn cap_round_trips_through_msr() {
        let (mut msr, spec) = setup();
        for watts in [Watts(40.0), Watts(70.0), Watts(120.0)] {
            PowerLimiter::set_cap(&mut msr, &spec, watts).unwrap();
            let got = PowerLimiter::get_cap(&msr).unwrap();
            assert!((got - watts).abs() < POWER_UNIT, "{watts} -> {got}");
        }
    }

    #[test]
    fn cap_is_clamped_to_supported_range() {
        let (mut msr, spec) = setup();
        PowerLimiter::set_cap(&mut msr, &spec, Watts(10.0)).unwrap();
        assert!((PowerLimiter::get_cap(&msr).unwrap() - Watts(40.0)).abs() < 0.2);
        PowerLimiter::set_cap(&mut msr, &spec, Watts(500.0)).unwrap();
        assert!((PowerLimiter::get_cap(&msr).unwrap() - Watts(120.0)).abs() < 0.2);
    }

    #[test]
    fn effective_cap_defaults_to_tdp_and_never_exceeds_it() {
        let (mut msr, spec) = setup();
        PowerLimiter::disable(&mut msr).unwrap();
        assert_eq!(PowerLimiter::effective_cap(&msr, &spec), spec.tdp_watts);
        PowerLimiter::set_cap(&mut msr, &spec, Watts(70.0)).unwrap();
        assert!((PowerLimiter::effective_cap(&msr, &spec) - Watts(70.0)).abs() < POWER_UNIT);
    }

    #[test]
    fn disabled_limit_reads_as_none() {
        let (mut msr, _spec) = setup();
        PowerLimiter::disable(&mut msr).unwrap();
        assert_eq!(PowerLimiter::get_cap(&msr), None);
    }

    #[test]
    fn uncapped_control_runs_turbo() {
        let (mut msr, spec) = setup();
        PowerLimiter::disable(&mut msr).unwrap();
        assert_eq!(PowerLimiter::control_frequency(&msr, &spec, 0.95), 2.6);
    }

    #[test]
    fn capped_control_throttles_by_activity() {
        let (mut msr, spec) = setup();
        PowerLimiter::set_cap(&mut msr, &spec, Watts(60.0)).unwrap();
        let hot = PowerLimiter::control_frequency(&msr, &spec, 0.95);
        let cold = PowerLimiter::control_frequency(&msr, &spec, 0.3);
        assert!(hot < cold, "hot {hot} !< cold {cold}");
        assert_eq!(cold, 2.6);
    }

    #[test]
    fn frequency_monotone_in_cap() {
        let (mut msr, spec) = setup();
        let mut last = 0.0;
        for cap in [40.0, 50.0, 60.0, 70.0, 80.0, 90.0, 100.0, 110.0, 120.0] {
            let cap = Watts(cap);
            PowerLimiter::set_cap(&mut msr, &spec, cap).unwrap();
            let f = PowerLimiter::control_frequency(&msr, &spec, 0.9);
            assert!(f >= last, "cap {cap}: {f} < {last}");
            last = f;
        }
    }
}
