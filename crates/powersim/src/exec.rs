//! The workload executor: advances virtual time through a workload under
//! the programmed power cap, updating counters and energy, and sampling
//! every 100 ms exactly as the study does.
//!
//! Every entry point has a `_journaled` twin that additionally emits
//! typed events into a [`Journal`]: per-kernel-phase energy spans, the
//! 100 ms counter samples, and RAPL cap changes (schema in
//! `docs/OBSERVABILITY.md`).
//!
//! Execution is resumable: [`RunState`] holds all in-flight progress of
//! one workload on one [`Package`], and [`RunState::advance`] runs it
//! for a bounded slice of virtual time. [`Package::run_journaled`] is
//! the one-shot wrapper (an unbounded advance); the closed-loop governor
//! steps two `RunState`s in 100 ms windows and reprograms caps between
//! them.

#![deny(missing_docs)]

use crate::counters::{derived, CounterBank};
use crate::cpu::CpuSpec;
use crate::msr::{addr, MsrFile};
use crate::rapl::{PowerLimiter, CONTROL_WINDOW_SEC};
use crate::timing::{effective_activity, phase_time};
use crate::trace::{CapChange, CounterSample, Event, Journal, Scope};
use crate::units::{Joules, Watts};
use crate::workload::Workload;
use serde::{Deserialize, Serialize};

/// Sampling period used by the study (§V-B): 100 ms.
pub const SAMPLE_PERIOD_SEC: f64 = 0.100;

/// One 100 ms sample: the derived metrics of §V-B over the interval.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Sample {
    /// End time of the interval (virtual seconds).
    pub t: f64,
    /// Mean package power over the interval, from the energy MSR delta.
    pub power_watts: Watts,
    /// Effective frequency over the interval (APERF/MPERF), in GHz.
    pub effective_freq_ghz: f64,
    /// Instructions per reference cycle over the interval.
    pub ipc: f64,
    /// LLC miss rate (misses / references) over the interval.
    pub llc_miss_rate: f64,
}

/// Aggregate result of one workload execution.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExecResult {
    /// Name of the executed workload.
    pub workload: String,
    /// The cap programmed when the run started.
    pub cap_watts: Watts,
    /// Total execution time (virtual seconds).
    pub seconds: f64,
    /// Total package energy, accumulated per phase then summed, so the
    /// per-phase journal spans sum to it exactly.
    pub energy_joules: Joules,
    /// `energy_joules / seconds` (zero for an empty run).
    pub avg_power_watts: Watts,
    /// Time-weighted mean of the per-sample effective frequencies.
    pub avg_effective_freq_ghz: f64,
    /// Whole-run instructions per reference cycle.
    pub avg_ipc: f64,
    /// Whole-run LLC miss rate (misses / references).
    pub avg_llc_miss_rate: f64,
    /// The 100 ms sample series (last sample may be partial).
    pub samples: Vec<Sample>,
    /// Wall-clock seconds spent in each phase, by phase index.
    pub phase_seconds: Vec<f64>,
}

/// One simulated processor package.
pub struct Package {
    /// The package model (V/f curve, DVFS ladder, power coefficients).
    pub spec: CpuSpec,
    /// The package's model-specific registers (msr-safe allow-listed).
    pub msr: MsrFile,
    /// The package's performance counter bank.
    pub counters: CounterBank,
    /// Virtual time since construction.
    pub now: f64,
}

impl Package {
    /// A fresh package (zeroed counters, time 0) with the given model.
    pub fn new(spec: CpuSpec) -> Self {
        Package {
            spec,
            msr: MsrFile::new(),
            counters: CounterBank::default(),
            now: 0.0,
        }
    }

    /// Default paper package.
    pub fn broadwell() -> Self {
        Package::new(CpuSpec::broadwell_e5_2695v4())
    }

    /// Program a package cap (clamped to the supported range).
    pub fn set_cap(&mut self, watts: Watts) {
        PowerLimiter::set_cap(&mut self.msr, &self.spec, watts)
            // lint: infallible because MSR_PKG_POWER_LIMIT is writable in the msr-safe allowlist
            .expect("power-limit MSR is writable");
    }

    /// Program a package cap like [`Package::set_cap`], emitting a
    /// [`CapChange`] event recording both the requested and the actually
    /// programmed (range-clamped) cap.
    pub fn set_cap_journaled(&mut self, watts: Watts, journal: &mut Journal) {
        self.set_cap(watts);
        if journal.is_enabled() {
            let actual = PowerLimiter::get_cap(&self.msr).unwrap_or(watts);
            journal.push(Event::CapChange(CapChange {
                t: journal.now(),
                requested_watts: watts,
                actual_watts: actual,
            }));
        }
    }

    /// DRAM bandwidth utilization of a phase when running at `f_ghz`.
    fn bw_utilization(&self, phase: &crate::workload::KernelPhase, f_ghz: f64) -> f64 {
        let t = phase_time(&self.spec, phase, f_ghz);
        if t <= 0.0 {
            return 0.0;
        }
        (phase.dram_bytes as f64 / t / self.spec.dram_bytes_per_sec).clamp(0.0, 1.0)
    }

    /// Firmware frequency decision for a phase: the highest ladder
    /// frequency whose total package power — core dynamic power at the
    /// phase's activity plus the DRAM-traffic term at the bandwidth the
    /// phase would actually achieve at that frequency — fits the cap.
    fn decide_frequency(&self, phase: &crate::workload::KernelPhase) -> (f64, f64, f64) {
        let cap = PowerLimiter::effective_cap(&self.msr, &self.spec);
        let act = effective_activity(&self.spec, phase, self.spec.turbo_ghz);
        let mut chosen = self.spec.min_ghz;
        let mut chosen_util = self.bw_utilization(phase, self.spec.min_ghz);
        for f in self.spec.frequencies() {
            let util = self.bw_utilization(phase, f);
            if self.spec.power_with_traffic(f, act, util) <= cap {
                chosen = f;
                chosen_util = util;
                break;
            }
        }
        (chosen, act, chosen_util)
    }

    /// Execute `workload` to completion under the currently programmed
    /// cap, returning the aggregate result and the 100 ms sample series.
    ///
    /// Equivalent to [`Package::run_journaled`] with a disabled journal.
    pub fn run(&mut self, workload: &Workload) -> ExecResult {
        self.run_journaled(workload, &mut Journal::off())
    }

    /// Execute `workload` like [`Package::run`], additionally emitting
    /// journal events: a [`Scope::Kernel`] span per phase carrying that
    /// phase's exact energy, a [`CounterSample`] per 100 ms interval,
    /// and a closing [`Scope::Workload`] span whose joules are the sum
    /// of the kernel spans — the same additions in the same order as
    /// `energy_joules`, so children sum to the parent exactly. The
    /// journal clock advances in lock-step with the package's virtual
    /// time.
    pub fn run_journaled(&mut self, workload: &Workload, journal: &mut Journal) -> ExecResult {
        let mut state = RunState::new(self, workload, journal);
        while !state.is_done() {
            state.advance(self, f64::INFINITY, journal);
        }
        state.finish(self)
    }

    fn make_sample(
        &self,
        t: f64,
        dt: f64,
        snap: &CounterBank,
        e_before: u64,
        e_after: u64,
    ) -> Sample {
        let d_aperf = CounterBank::delta(snap.aperf, self.counters.aperf);
        let d_mperf = CounterBank::delta(snap.mperf, self.counters.mperf);
        let d_inst = CounterBank::delta(snap.inst_retired, self.counters.inst_retired);
        let d_ref_tsc = CounterBank::delta(snap.ref_tsc, self.counters.ref_tsc);
        let d_llc_ref = CounterBank::delta(snap.llc_ref, self.counters.llc_ref);
        let d_llc_miss = CounterBank::delta(snap.llc_miss, self.counters.llc_miss);
        Sample {
            t,
            power_watts: self
                .msr
                .energy_delta_joules(e_before, e_after)
                .over_seconds(dt),
            effective_freq_ghz: derived::effective_frequency_ghz(
                self.spec.base_ghz,
                d_aperf,
                d_mperf,
            ),
            ipc: derived::ipc(d_inst, d_ref_tsc),
            llc_miss_rate: derived::llc_miss_rate(d_llc_miss, d_llc_ref),
        }
    }

    /// Convenience: program `cap_watts` and run.
    pub fn run_capped(&mut self, workload: &Workload, cap_watts: Watts) -> ExecResult {
        self.set_cap(cap_watts);
        self.run(workload)
    }

    /// Convenience: program `cap_watts` (journaling the [`CapChange`])
    /// and [`Package::run_journaled`].
    pub fn run_capped_journaled(
        &mut self,
        workload: &Workload,
        cap_watts: Watts,
        journal: &mut Journal,
    ) -> ExecResult {
        self.set_cap_journaled(cap_watts, journal);
        self.run_journaled(workload, journal)
    }
}

/// In-flight progress of one workload on one [`Package`].
///
/// Created by [`RunState::new`], driven by repeated calls to
/// [`RunState::advance`] with a virtual-time budget per call (the
/// governor uses the 100 ms sample period), and consumed by
/// [`RunState::finish`] once [`RunState::is_done`]. An unbounded
/// `advance` reproduces [`Package::run_journaled`] exactly — same
/// events, same order, same arithmetic.
pub struct RunState<'w> {
    workload: &'w Workload,
    /// Cap programmed at construction (reported in [`ExecResult`]).
    cap: Watts,
    start_t: f64,
    run_t0: f64,
    energy: Joules,
    samples: Vec<Sample>,
    phase_seconds: Vec<f64>,
    // Sampling bookkeeping.
    last_sample_t: f64,
    snap: CounterBank,
    snap_energy_reg: u64,
    // In-flight phase bookkeeping.
    phase_index: usize,
    progress: f64,
    t_in_phase: f64,
    phase_energy: Joules,
    phase_t0: f64,
    phase_open: bool,
    completed: bool,
}

impl<'w> RunState<'w> {
    /// Begin executing `workload` on `pkg` under its currently
    /// programmed cap. Nothing advances until [`RunState::advance`].
    pub fn new(pkg: &Package, workload: &'w Workload, journal: &Journal) -> Self {
        RunState {
            workload,
            cap: PowerLimiter::get_cap(&pkg.msr).unwrap_or(pkg.spec.tdp_watts),
            start_t: pkg.now,
            run_t0: journal.now(),
            energy: Joules::ZERO,
            samples: Vec::new(),
            phase_seconds: Vec::with_capacity(workload.phases.len()),
            last_sample_t: pkg.now,
            snap: pkg.counters,
            snap_energy_reg: pkg.msr.hw_get(addr::MSR_PKG_ENERGY_STATUS),
            phase_index: 0,
            progress: 0.0,
            t_in_phase: 0.0,
            phase_energy: Joules::ZERO,
            phase_t0: 0.0,
            phase_open: false,
            completed: false,
        }
    }

    /// All phases executed and the closing events emitted.
    pub fn is_done(&self) -> bool {
        self.completed
    }

    /// The most recent 100 ms [`Sample`], if one has been emitted yet.
    pub fn latest_sample(&self) -> Option<&Sample> {
        self.samples.last()
    }

    /// Energy accumulated so far, including the open phase — the
    /// governor differences this per window to track node power.
    pub fn energy_so_far(&self) -> Joules {
        self.energy + self.phase_energy
    }

    /// Run for at most `budget_seconds` of virtual time, mutating `pkg`
    /// (clock, counters, energy MSR) and emitting journal events as
    /// they occur. Returns the virtual seconds actually consumed, which
    /// is less than the budget only when the workload completes inside
    /// this slice. The cap is re-read from the MSR every firmware
    /// control window, so caps reprogrammed between calls take effect
    /// at the next window edge.
    pub fn advance(
        &mut self,
        pkg: &mut Package,
        budget_seconds: f64,
        journal: &mut Journal,
    ) -> f64 {
        let mut consumed = 0.0f64;
        while !self.completed {
            if self.phase_index >= self.workload.phases.len() {
                // All phases done: flush the final partial sample and
                // close the workload span, exactly once.
                if pkg.now - self.last_sample_t > 1e-9 {
                    let e_reg = pkg.msr.hw_get(addr::MSR_PKG_ENERGY_STATUS);
                    self.samples.push(pkg.make_sample(
                        pkg.now,
                        pkg.now - self.last_sample_t,
                        &self.snap,
                        self.snap_energy_reg,
                        e_reg,
                    ));
                    emit_counter(journal, &self.samples);
                    self.last_sample_t = pkg.now;
                    self.snap = pkg.counters;
                    self.snap_energy_reg = e_reg;
                }
                if journal.is_enabled() {
                    journal.push_span(
                        Scope::Workload,
                        self.workload.name.clone(),
                        self.run_t0,
                        Some(self.energy),
                        vec![
                            ("cap_watts", self.cap.value()),
                            ("phases", self.workload.phases.len() as f64),
                            ("samples", self.samples.len() as f64),
                        ],
                    );
                }
                self.completed = true;
                break;
            }
            if budget_seconds - consumed <= 1e-12 {
                break;
            }
            let phase = &self.workload.phases[self.phase_index];
            if !self.phase_open {
                debug_assert!(phase.is_valid(), "invalid phase {phase:?}");
                self.phase_t0 = journal.now();
                self.phase_energy = Joules::ZERO;
                self.progress = 0.0;
                self.t_in_phase = 0.0;
                self.phase_open = true;
            }

            let (f, act, bw_util) = pkg.decide_frequency(phase);
            let total_t = phase_time(&pkg.spec, phase, f);
            let remaining_t = (1.0 - self.progress) * total_t;
            // Advance to the next control window, sample boundary, or
            // phase end — whichever is first — bounded by the slice.
            let to_window =
                CONTROL_WINDOW_SEC - (pkg.now / CONTROL_WINDOW_SEC).fract() * CONTROL_WINDOW_SEC;
            let to_sample = (self.last_sample_t + SAMPLE_PERIOD_SEC - pkg.now).max(0.0);
            let dt = remaining_t
                .min(if to_window <= 1e-12 {
                    CONTROL_WINDOW_SEC
                } else {
                    to_window
                })
                .min(if to_sample <= 1e-12 {
                    SAMPLE_PERIOD_SEC
                } else {
                    to_sample
                })
                .max(1e-9)
                .min(budget_seconds - consumed);

            let inst_rate = phase.instructions as f64 / total_t;
            let ref_rate = phase.llc_refs as f64 / total_t;
            let miss_rate = phase.llc_misses() as f64 / total_t;
            pkg.counters.advance(
                dt,
                f,
                pkg.spec.base_ghz,
                pkg.spec.cores,
                inst_rate,
                ref_rate,
                miss_rate,
            );
            let p = pkg.spec.power_with_traffic(f, act, bw_util);
            let de = p.for_duration(dt);
            self.phase_energy += de;
            pkg.msr.hw_accumulate_energy(de);
            pkg.counters.sync_to_msr(&mut pkg.msr);
            pkg.now += dt;
            journal.advance(dt);
            consumed += dt;
            self.t_in_phase += dt;
            self.progress += dt / total_t;

            // Emit a sample at each 100 ms boundary.
            if pkg.now - self.last_sample_t >= SAMPLE_PERIOD_SEC - 1e-12 {
                let e_reg = pkg.msr.hw_get(addr::MSR_PKG_ENERGY_STATUS);
                self.samples.push(pkg.make_sample(
                    pkg.now,
                    pkg.now - self.last_sample_t,
                    &self.snap,
                    self.snap_energy_reg,
                    e_reg,
                ));
                emit_counter(journal, &self.samples);
                self.last_sample_t = pkg.now;
                self.snap = pkg.counters;
                self.snap_energy_reg = e_reg;
            }

            if self.progress >= 1.0 {
                self.energy += self.phase_energy;
                self.phase_seconds.push(self.t_in_phase);
                if journal.is_enabled() {
                    journal.push_span(
                        Scope::Kernel,
                        phase.name.clone(),
                        self.phase_t0,
                        Some(self.phase_energy),
                        vec![
                            ("phase_index", self.phase_index as f64),
                            ("instructions", phase.instructions as f64),
                        ],
                    );
                }
                self.phase_energy = Joules::ZERO;
                self.phase_open = false;
                self.phase_index += 1;
            }
        }
        consumed
    }

    /// Aggregate the completed run into an [`ExecResult`].
    pub fn finish(self, pkg: &Package) -> ExecResult {
        debug_assert!(self.completed, "finish() before the workload completed");
        let seconds = pkg.now - self.start_t;
        let total_inst = self.workload.total_instructions();
        let total_refs = self.workload.total_llc_refs();
        let total_miss: u64 = self.workload.phases.iter().map(|p| p.llc_misses()).sum();
        // Run-level averages weighted by time (frequency) or totals (IPC).
        let avg_freq = if seconds > 0.0 {
            self.samples
                .iter()
                .zip(sample_durations(&self.samples, self.start_t))
                .map(|(s, d)| s.effective_freq_ghz * d)
                .sum::<f64>()
                / seconds
        } else {
            0.0
        };
        let avg_ipc = derived::ipc(
            total_inst,
            (pkg.spec.base_ghz * 1e9 * seconds * pkg.spec.cores as f64) as u64,
        );
        ExecResult {
            workload: self.workload.name.clone(),
            cap_watts: self.cap,
            seconds,
            energy_joules: self.energy,
            avg_power_watts: if seconds > 0.0 {
                self.energy.over_seconds(seconds)
            } else {
                Watts::ZERO
            },
            avg_effective_freq_ghz: avg_freq,
            avg_ipc,
            avg_llc_miss_rate: derived::llc_miss_rate(total_miss, total_refs),
            samples: self.samples,
            phase_seconds: self.phase_seconds,
        }
    }
}

/// Mirror the newest 100 ms [`Sample`] onto the journal timeline.
fn emit_counter(journal: &mut Journal, samples: &[Sample]) {
    if !journal.is_enabled() {
        return;
    }
    if let Some(s) = samples.last() {
        let t = journal.now();
        journal.push(Event::Counter(CounterSample {
            t,
            power_watts: s.power_watts,
            effective_freq_ghz: s.effective_freq_ghz,
            ipc: s.ipc,
            llc_miss_rate: s.llc_miss_rate,
        }));
    }
}

/// Reconstruct per-sample durations from sample end times.
fn sample_durations(samples: &[Sample], start_t: f64) -> Vec<f64> {
    let mut last = start_t;
    samples
        .iter()
        .map(|s| {
            let d = s.t - last;
            last = s.t;
            d
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::KernelPhase;

    fn compute_workload(scale: u64) -> Workload {
        Workload::new("compute").with_phase(KernelPhase::compute("c", scale))
    }

    fn memory_workload(scale: u64) -> Workload {
        Workload::new("memory").with_phase(KernelPhase::memory("m", scale, scale * 30))
    }

    #[test]
    fn uncapped_compute_runs_at_turbo() {
        let mut pkg = Package::broadwell();
        let r = pkg.run_capped(&compute_workload(2_000_000_000_000), Watts(120.0));
        assert!(r.seconds > 0.0);
        assert!(
            (r.avg_effective_freq_ghz - 2.6).abs() < 0.01,
            "freq = {}",
            r.avg_effective_freq_ghz
        );
        // Power near the hot-workload calibration point.
        assert!(
            (80.0..95.0).contains(&r.avg_power_watts),
            "P = {}",
            r.avg_power_watts
        );
    }

    #[test]
    fn capped_compute_slows_proportionally() {
        let w = compute_workload(2_000_000_000_000);
        let t120 = Package::broadwell().run_capped(&w, Watts(120.0)).seconds;
        let r40 = Package::broadwell().run_capped(&w, Watts(40.0));
        let slowdown = r40.seconds / t120;
        // Paper: compute-bound algorithms slow 1.8–3.1× at 40 W.
        assert!((1.8..3.3).contains(&slowdown), "slowdown = {slowdown}");
        // And the cap is respected.
        assert!(r40.avg_power_watts <= 41.0, "P = {}", r40.avg_power_watts);
    }

    #[test]
    fn capped_memory_barely_slows() {
        let w = memory_workload(40_000_000_000);
        let t120 = Package::broadwell().run_capped(&w, Watts(120.0)).seconds;
        let t40 = Package::broadwell().run_capped(&w, Watts(40.0)).seconds;
        let slowdown = t40 / t120;
        assert!(slowdown < 1.35, "memory slowdown = {slowdown}");
    }

    #[test]
    fn energy_accounting_is_consistent() {
        let mut pkg = Package::broadwell();
        let r = pkg.run_capped(&compute_workload(500_000_000_000), Watts(80.0));
        // Energy ≈ avg power × time by construction; the MSR counter
        // (with wraps) must agree with the float accumulation.
        let msr_total: Joules = {
            // Re-run and track via samples: sum power × dt.
            let durations = sample_durations(&r.samples, 0.0);
            r.samples
                .iter()
                .zip(durations)
                .map(|(s, d)| s.power_watts.for_duration(d))
                .sum()
        };
        let rel = (msr_total - r.energy_joules).abs() / r.energy_joules;
        assert!(rel < 0.01, "MSR {msr_total} vs accum {}", r.energy_joules);
    }

    #[test]
    fn sample_cadence_is_100ms() {
        let mut pkg = Package::broadwell();
        let r = pkg.run_capped(&compute_workload(1_000_000_000_000), Watts(120.0));
        assert!(r.samples.len() >= 3);
        let durations = sample_durations(&r.samples, 0.0);
        for d in &durations[..durations.len() - 1] {
            assert!((d - SAMPLE_PERIOD_SEC).abs() < 1e-6, "sample dt = {d}");
        }
    }

    #[test]
    fn ipc_definition_drops_with_cap_for_compute() {
        // REF_TSC-based IPC: compute-bound IPC falls when capped (the
        // shape in Fig. 2b for volume rendering / advection).
        let w = compute_workload(1_000_000_000_000);
        let i120 = Package::broadwell().run_capped(&w, Watts(120.0)).avg_ipc;
        let i40 = Package::broadwell().run_capped(&w, Watts(40.0)).avg_ipc;
        assert!(i40 < 0.6 * i120, "IPC {i120} -> {i40}");
    }

    #[test]
    fn ipc_flat_for_memory_bound() {
        let w = memory_workload(40_000_000_000);
        let i120 = Package::broadwell().run_capped(&w, Watts(120.0)).avg_ipc;
        let i50 = Package::broadwell().run_capped(&w, Watts(50.0)).avg_ipc;
        assert!((i50 / i120 - 1.0).abs() < 0.1, "IPC {i120} -> {i50}");
    }

    #[test]
    fn phase_seconds_sum_to_total() {
        let w = Workload::new("mix")
            .with_phase(KernelPhase::compute("a", 500_000_000_000))
            .with_phase(KernelPhase::memory("b", 20_000_000_000, 600_000_000_000));
        let mut pkg = Package::broadwell();
        let r = pkg.run_capped(&w, Watts(90.0));
        let sum: f64 = r.phase_seconds.iter().sum();
        assert!((sum - r.seconds).abs() < 1e-6);
        assert_eq!(r.phase_seconds.len(), 2);
    }

    #[test]
    fn deterministic_execution() {
        let w = compute_workload(300_000_000_000);
        let a = Package::broadwell().run_capped(&w, Watts(70.0));
        let b = Package::broadwell().run_capped(&w, Watts(70.0));
        assert_eq!(a.seconds, b.seconds);
        assert_eq!(a.energy_joules, b.energy_joules);
        assert_eq!(a.samples.len(), b.samples.len());
    }

    #[test]
    fn journaled_run_attributes_phase_energy_exactly() {
        let w = Workload::new("mix")
            .with_phase(KernelPhase::compute("a", 500_000_000_000))
            .with_phase(KernelPhase::memory("b", 20_000_000_000, 600_000_000_000));
        let mut journal = Journal::with_capacity(1 << 14);
        let mut pkg = Package::broadwell();
        let r = pkg.run_capped_journaled(&w, Watts(90.0), &mut journal);
        let mut kernel_sum = Joules::ZERO;
        let mut workload_joules = None;
        let mut counters = 0;
        let mut cap_changes = 0;
        for ev in journal.events() {
            match ev {
                Event::Span(s) if s.scope == Scope::Kernel => {
                    kernel_sum += s.joules.unwrap_or(Joules::ZERO);
                }
                Event::Span(s) if s.scope == Scope::Workload => workload_joules = s.joules,
                Event::Counter(_) => counters += 1,
                Event::CapChange(_) => cap_changes += 1,
                _ => {}
            }
        }
        // Exact: the run total is accumulated per phase in span order.
        assert_eq!(workload_joules, Some(r.energy_joules));
        assert_eq!(kernel_sum, r.energy_joules);
        assert_eq!(counters, r.samples.len());
        assert_eq!(cap_changes, 1);
    }

    #[test]
    fn journaled_run_matches_plain_run() {
        let w = compute_workload(300_000_000_000);
        let plain = Package::broadwell().run_capped(&w, Watts(70.0));
        let mut journal = Journal::with_capacity(1 << 14);
        let journaled = Package::broadwell().run_capped_journaled(&w, Watts(70.0), &mut journal);
        assert_eq!(plain.seconds, journaled.seconds);
        assert_eq!(plain.energy_joules, journaled.energy_joules);
        assert_eq!(plain.samples.len(), journaled.samples.len());
        assert!(!journal.is_empty());
    }

    #[test]
    fn mixed_workload_frequency_tracks_phases() {
        // Under a 70 W cap, the compute phase runs slower than the memory
        // phase (which fits under the cap at turbo).
        let w = Workload::new("mix")
            .with_phase(KernelPhase::compute("hot", 2_000_000_000_000))
            .with_phase(KernelPhase::memory("cold", 20_000_000_000, 600_000_000_000));
        let mut pkg = Package::broadwell();
        let r = pkg.run_capped(&w, Watts(70.0));
        // Find per-sample frequencies: early samples (compute) slower
        // than late samples (memory).
        let first = r.samples.first().unwrap().effective_freq_ghz;
        let last = r.samples.last().unwrap().effective_freq_ghz;
        assert!(first < last, "first {first} !< last {last}");
    }

    #[test]
    fn windowed_advance_matches_one_shot_run() {
        let w = Workload::new("mix")
            .with_phase(KernelPhase::compute("a", 500_000_000_000))
            .with_phase(KernelPhase::memory("b", 20_000_000_000, 600_000_000_000));
        let one = Package::broadwell().run_capped(&w, Watts(90.0));

        let mut pkg = Package::broadwell();
        pkg.set_cap(Watts(90.0));
        let mut journal = Journal::off();
        let mut st = RunState::new(&pkg, &w, &journal);
        let mut windows = 0;
        while !st.is_done() {
            let consumed = st.advance(&mut pkg, SAMPLE_PERIOD_SEC, &mut journal);
            assert!(consumed <= SAMPLE_PERIOD_SEC + 1e-9);
            windows += 1;
            assert!(windows < 100_000, "advance() must make progress");
        }
        let windowed = st.finish(&pkg);

        // Window boundaries may split a micro-quantum in two, so the
        // trajectories agree to float dust rather than bit-exactly.
        assert!((one.seconds - windowed.seconds).abs() < 1e-6);
        let rel =
            (one.energy_joules - windowed.energy_joules).abs() / one.energy_joules.max(Joules(1.0));
        assert!(
            rel < 1e-6,
            "energy {} vs {}",
            one.energy_joules,
            windowed.energy_joules
        );
        assert_eq!(one.samples.len(), windowed.samples.len());
        assert_eq!(one.phase_seconds.len(), windowed.phase_seconds.len());
    }

    #[test]
    fn midstream_cap_change_takes_effect_next_window() {
        // Start a long compute run uncapped, then cap it hard mid-flight:
        // subsequent samples must show lower power and frequency.
        let w = compute_workload(3_000_000_000_000);
        let mut pkg = Package::broadwell();
        pkg.set_cap(Watts(120.0));
        let mut journal = Journal::off();
        let mut st = RunState::new(&pkg, &w, &journal);
        for _ in 0..3 {
            st.advance(&mut pkg, SAMPLE_PERIOD_SEC, &mut journal);
        }
        let before = st.latest_sample().copied().unwrap();
        pkg.set_cap(Watts(40.0));
        for _ in 0..3 {
            st.advance(&mut pkg, SAMPLE_PERIOD_SEC, &mut journal);
        }
        let after = st.latest_sample().copied().unwrap();
        assert!(
            after.power_watts < before.power_watts - Watts(20.0),
            "power {} -> {}",
            before.power_watts,
            after.power_watts
        );
        assert!(after.effective_freq_ghz < before.effective_freq_ghz);
        // Run it out and check the energy rollup still holds together.
        while !st.is_done() {
            st.advance(&mut pkg, SAMPLE_PERIOD_SEC, &mut journal);
        }
        let r = st.finish(&pkg);
        assert!((r.seconds - pkg.now).abs() < 1e-12);
        assert!(r.energy_joules > Joules::ZERO);
    }
}
