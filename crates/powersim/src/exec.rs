//! The workload executor: advances virtual time through a workload under
//! the programmed power cap, updating counters and energy, and sampling
//! every 100 ms exactly as the study does.

use crate::counters::{derived, CounterBank};
use crate::cpu::CpuSpec;
use crate::msr::{addr, MsrFile};
use crate::rapl::{PowerLimiter, CONTROL_WINDOW_SEC};
use crate::timing::{effective_activity, phase_time};
use crate::units::{Joules, Watts};
use crate::workload::Workload;
use serde::{Deserialize, Serialize};

/// Sampling period used by the study (§V-B): 100 ms.
pub const SAMPLE_PERIOD_SEC: f64 = 0.100;

/// One 100 ms sample: the derived metrics of §V-B over the interval.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Sample {
    /// End time of the interval (virtual seconds).
    pub t: f64,
    pub power_watts: Watts,
    pub effective_freq_ghz: f64,
    pub ipc: f64,
    pub llc_miss_rate: f64,
}

/// Aggregate result of one workload execution.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExecResult {
    pub workload: String,
    pub cap_watts: Watts,
    pub seconds: f64,
    pub energy_joules: Joules,
    pub avg_power_watts: Watts,
    pub avg_effective_freq_ghz: f64,
    pub avg_ipc: f64,
    pub avg_llc_miss_rate: f64,
    pub samples: Vec<Sample>,
    /// Wall-clock seconds spent in each phase, by phase index.
    pub phase_seconds: Vec<f64>,
}

/// One simulated processor package.
pub struct Package {
    pub spec: CpuSpec,
    pub msr: MsrFile,
    pub counters: CounterBank,
    /// Virtual time since construction.
    pub now: f64,
}

impl Package {
    pub fn new(spec: CpuSpec) -> Self {
        Package {
            spec,
            msr: MsrFile::new(),
            counters: CounterBank::default(),
            now: 0.0,
        }
    }

    /// Default paper package.
    pub fn broadwell() -> Self {
        Package::new(CpuSpec::broadwell_e5_2695v4())
    }

    /// Program a package cap (clamped to the supported range).
    pub fn set_cap(&mut self, watts: Watts) {
        PowerLimiter::set_cap(&mut self.msr, &self.spec, watts)
            // lint: infallible because MSR_PKG_POWER_LIMIT is writable in the msr-safe allowlist
            .expect("power-limit MSR is writable");
    }

    /// DRAM bandwidth utilization of a phase when running at `f_ghz`.
    fn bw_utilization(&self, phase: &crate::workload::KernelPhase, f_ghz: f64) -> f64 {
        let t = phase_time(&self.spec, phase, f_ghz);
        if t <= 0.0 {
            return 0.0;
        }
        (phase.dram_bytes as f64 / t / self.spec.dram_bytes_per_sec).clamp(0.0, 1.0)
    }

    /// Firmware frequency decision for a phase: the highest ladder
    /// frequency whose total package power — core dynamic power at the
    /// phase's activity plus the DRAM-traffic term at the bandwidth the
    /// phase would actually achieve at that frequency — fits the cap.
    fn decide_frequency(&self, phase: &crate::workload::KernelPhase) -> (f64, f64, f64) {
        let cap = PowerLimiter::get_cap(&self.msr)
            .unwrap_or(self.spec.tdp_watts)
            .min(self.spec.tdp_watts);
        let act = effective_activity(&self.spec, phase, self.spec.turbo_ghz);
        let mut chosen = self.spec.min_ghz;
        let mut chosen_util = self.bw_utilization(phase, self.spec.min_ghz);
        for f in self.spec.frequencies() {
            let util = self.bw_utilization(phase, f);
            if self.spec.power_with_traffic(f, act, util) <= cap {
                chosen = f;
                chosen_util = util;
                break;
            }
        }
        (chosen, act, chosen_util)
    }

    /// Execute `workload` to completion under the currently programmed
    /// cap, returning the aggregate result and the 100 ms sample series.
    pub fn run(&mut self, workload: &Workload) -> ExecResult {
        let cap = PowerLimiter::get_cap(&self.msr).unwrap_or(self.spec.tdp_watts);
        let start_t = self.now;
        let mut energy = Joules::ZERO;
        let mut samples = Vec::new();
        let mut phase_seconds = Vec::with_capacity(workload.phases.len());

        // Sampling bookkeeping.
        let mut last_sample_t = self.now;
        let mut snap = self.counters;
        let mut snap_energy_reg = self.msr.hw_get(addr::MSR_PKG_ENERGY_STATUS);

        for phase in &workload.phases {
            debug_assert!(phase.is_valid(), "invalid phase {phase:?}");
            let mut progress = 0.0f64; // fraction of the phase completed
            let mut t_in_phase = 0.0f64;
            while progress < 1.0 {
                let (f, act, bw_util) = self.decide_frequency(phase);
                let total_t = phase_time(&self.spec, phase, f);
                let remaining_t = (1.0 - progress) * total_t;
                // Advance to the next control window, sample boundary, or
                // phase end — whichever is first.
                let to_window = CONTROL_WINDOW_SEC
                    - (self.now / CONTROL_WINDOW_SEC).fract() * CONTROL_WINDOW_SEC;
                let to_sample = (last_sample_t + SAMPLE_PERIOD_SEC - self.now).max(0.0);
                let dt = remaining_t
                    .min(if to_window <= 1e-12 {
                        CONTROL_WINDOW_SEC
                    } else {
                        to_window
                    })
                    .min(if to_sample <= 1e-12 {
                        SAMPLE_PERIOD_SEC
                    } else {
                        to_sample
                    })
                    .max(1e-9);

                let inst_rate = phase.instructions as f64 / total_t;
                let ref_rate = phase.llc_refs as f64 / total_t;
                let miss_rate = phase.llc_misses() as f64 / total_t;
                self.counters.advance(
                    dt,
                    f,
                    self.spec.base_ghz,
                    self.spec.cores,
                    inst_rate,
                    ref_rate,
                    miss_rate,
                );
                let p = self.spec.power_with_traffic(f, act, bw_util);
                let de = p.for_duration(dt);
                energy += de;
                self.msr.hw_accumulate_energy(de);
                self.counters.sync_to_msr(&mut self.msr);
                self.now += dt;
                t_in_phase += dt;
                progress += dt / total_t;

                // Emit a sample at each 100 ms boundary.
                if self.now - last_sample_t >= SAMPLE_PERIOD_SEC - 1e-12 {
                    let e_reg = self.msr.hw_get(addr::MSR_PKG_ENERGY_STATUS);
                    samples.push(self.make_sample(
                        self.now,
                        self.now - last_sample_t,
                        &snap,
                        snap_energy_reg,
                        e_reg,
                    ));
                    last_sample_t = self.now;
                    snap = self.counters;
                    snap_energy_reg = e_reg;
                }
            }
            phase_seconds.push(t_in_phase);
        }

        // Flush the final partial sample.
        if self.now - last_sample_t > 1e-9 {
            let e_reg = self.msr.hw_get(addr::MSR_PKG_ENERGY_STATUS);
            samples.push(self.make_sample(
                self.now,
                self.now - last_sample_t,
                &snap,
                snap_energy_reg,
                e_reg,
            ));
        }

        let seconds = self.now - start_t;
        let total_inst = workload.total_instructions();
        let total_refs = workload.total_llc_refs();
        let total_miss: u64 = workload.phases.iter().map(|p| p.llc_misses()).sum();
        // Run-level averages weighted by time (frequency) or totals (IPC).
        let avg_freq = if seconds > 0.0 {
            samples
                .iter()
                .zip(sample_durations(&samples, start_t))
                .map(|(s, d)| s.effective_freq_ghz * d)
                .sum::<f64>()
                / seconds
        } else {
            0.0
        };
        let avg_ipc = derived::ipc(
            total_inst,
            (self.spec.base_ghz * 1e9 * seconds * self.spec.cores as f64) as u64,
        );
        ExecResult {
            workload: workload.name.clone(),
            cap_watts: cap,
            seconds,
            energy_joules: energy,
            avg_power_watts: if seconds > 0.0 {
                energy.over_seconds(seconds)
            } else {
                Watts::ZERO
            },
            avg_effective_freq_ghz: avg_freq,
            avg_ipc,
            avg_llc_miss_rate: derived::llc_miss_rate(total_miss, total_refs),
            samples,
            phase_seconds,
        }
    }

    fn make_sample(
        &self,
        t: f64,
        dt: f64,
        snap: &CounterBank,
        e_before: u64,
        e_after: u64,
    ) -> Sample {
        let d_aperf = CounterBank::delta(snap.aperf, self.counters.aperf);
        let d_mperf = CounterBank::delta(snap.mperf, self.counters.mperf);
        let d_inst = CounterBank::delta(snap.inst_retired, self.counters.inst_retired);
        let d_ref_tsc = CounterBank::delta(snap.ref_tsc, self.counters.ref_tsc);
        let d_llc_ref = CounterBank::delta(snap.llc_ref, self.counters.llc_ref);
        let d_llc_miss = CounterBank::delta(snap.llc_miss, self.counters.llc_miss);
        Sample {
            t,
            power_watts: self
                .msr
                .energy_delta_joules(e_before, e_after)
                .over_seconds(dt),
            effective_freq_ghz: derived::effective_frequency_ghz(
                self.spec.base_ghz,
                d_aperf,
                d_mperf,
            ),
            ipc: derived::ipc(d_inst, d_ref_tsc),
            llc_miss_rate: derived::llc_miss_rate(d_llc_miss, d_llc_ref),
        }
    }

    /// Convenience: program `cap_watts` and run.
    pub fn run_capped(&mut self, workload: &Workload, cap_watts: Watts) -> ExecResult {
        self.set_cap(cap_watts);
        self.run(workload)
    }
}

/// Reconstruct per-sample durations from sample end times.
fn sample_durations(samples: &[Sample], start_t: f64) -> Vec<f64> {
    let mut last = start_t;
    samples
        .iter()
        .map(|s| {
            let d = s.t - last;
            last = s.t;
            d
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::KernelPhase;

    fn compute_workload(scale: u64) -> Workload {
        Workload::new("compute").with_phase(KernelPhase::compute("c", scale))
    }

    fn memory_workload(scale: u64) -> Workload {
        Workload::new("memory").with_phase(KernelPhase::memory("m", scale, scale * 30))
    }

    #[test]
    fn uncapped_compute_runs_at_turbo() {
        let mut pkg = Package::broadwell();
        let r = pkg.run_capped(&compute_workload(2_000_000_000_000), Watts(120.0));
        assert!(r.seconds > 0.0);
        assert!(
            (r.avg_effective_freq_ghz - 2.6).abs() < 0.01,
            "freq = {}",
            r.avg_effective_freq_ghz
        );
        // Power near the hot-workload calibration point.
        assert!(
            (80.0..95.0).contains(&r.avg_power_watts),
            "P = {}",
            r.avg_power_watts
        );
    }

    #[test]
    fn capped_compute_slows_proportionally() {
        let w = compute_workload(2_000_000_000_000);
        let t120 = Package::broadwell().run_capped(&w, Watts(120.0)).seconds;
        let r40 = Package::broadwell().run_capped(&w, Watts(40.0));
        let slowdown = r40.seconds / t120;
        // Paper: compute-bound algorithms slow 1.8–3.1× at 40 W.
        assert!((1.8..3.3).contains(&slowdown), "slowdown = {slowdown}");
        // And the cap is respected.
        assert!(r40.avg_power_watts <= 41.0, "P = {}", r40.avg_power_watts);
    }

    #[test]
    fn capped_memory_barely_slows() {
        let w = memory_workload(40_000_000_000);
        let t120 = Package::broadwell().run_capped(&w, Watts(120.0)).seconds;
        let t40 = Package::broadwell().run_capped(&w, Watts(40.0)).seconds;
        let slowdown = t40 / t120;
        assert!(slowdown < 1.35, "memory slowdown = {slowdown}");
    }

    #[test]
    fn energy_accounting_is_consistent() {
        let mut pkg = Package::broadwell();
        let r = pkg.run_capped(&compute_workload(500_000_000_000), Watts(80.0));
        // Energy ≈ avg power × time by construction; the MSR counter
        // (with wraps) must agree with the float accumulation.
        let msr_total: Joules = {
            // Re-run and track via samples: sum power × dt.
            let durations = sample_durations(&r.samples, 0.0);
            r.samples
                .iter()
                .zip(durations)
                .map(|(s, d)| s.power_watts.for_duration(d))
                .sum()
        };
        let rel = (msr_total - r.energy_joules).abs() / r.energy_joules;
        assert!(rel < 0.01, "MSR {msr_total} vs accum {}", r.energy_joules);
    }

    #[test]
    fn sample_cadence_is_100ms() {
        let mut pkg = Package::broadwell();
        let r = pkg.run_capped(&compute_workload(1_000_000_000_000), Watts(120.0));
        assert!(r.samples.len() >= 3);
        let durations = sample_durations(&r.samples, 0.0);
        for d in &durations[..durations.len() - 1] {
            assert!((d - SAMPLE_PERIOD_SEC).abs() < 1e-6, "sample dt = {d}");
        }
    }

    #[test]
    fn ipc_definition_drops_with_cap_for_compute() {
        // REF_TSC-based IPC: compute-bound IPC falls when capped (the
        // shape in Fig. 2b for volume rendering / advection).
        let w = compute_workload(1_000_000_000_000);
        let i120 = Package::broadwell().run_capped(&w, Watts(120.0)).avg_ipc;
        let i40 = Package::broadwell().run_capped(&w, Watts(40.0)).avg_ipc;
        assert!(i40 < 0.6 * i120, "IPC {i120} -> {i40}");
    }

    #[test]
    fn ipc_flat_for_memory_bound() {
        let w = memory_workload(40_000_000_000);
        let i120 = Package::broadwell().run_capped(&w, Watts(120.0)).avg_ipc;
        let i50 = Package::broadwell().run_capped(&w, Watts(50.0)).avg_ipc;
        assert!((i50 / i120 - 1.0).abs() < 0.1, "IPC {i120} -> {i50}");
    }

    #[test]
    fn phase_seconds_sum_to_total() {
        let w = Workload::new("mix")
            .with_phase(KernelPhase::compute("a", 500_000_000_000))
            .with_phase(KernelPhase::memory("b", 20_000_000_000, 600_000_000_000));
        let mut pkg = Package::broadwell();
        let r = pkg.run_capped(&w, Watts(90.0));
        let sum: f64 = r.phase_seconds.iter().sum();
        assert!((sum - r.seconds).abs() < 1e-6);
        assert_eq!(r.phase_seconds.len(), 2);
    }

    #[test]
    fn deterministic_execution() {
        let w = compute_workload(300_000_000_000);
        let a = Package::broadwell().run_capped(&w, Watts(70.0));
        let b = Package::broadwell().run_capped(&w, Watts(70.0));
        assert_eq!(a.seconds, b.seconds);
        assert_eq!(a.energy_joules, b.energy_joules);
        assert_eq!(a.samples.len(), b.samples.len());
    }

    #[test]
    fn mixed_workload_frequency_tracks_phases() {
        // Under a 70 W cap, the compute phase runs slower than the memory
        // phase (which fits under the cap at turbo).
        let w = Workload::new("mix")
            .with_phase(KernelPhase::compute("hot", 2_000_000_000_000))
            .with_phase(KernelPhase::memory("cold", 20_000_000_000, 600_000_000_000));
        let mut pkg = Package::broadwell();
        let r = pkg.run_capped(&w, Watts(70.0));
        // Find per-sample frequencies: early samples (compute) slower
        // than late samples (memory).
        let first = r.samples.first().unwrap().effective_freq_ghz;
        let last = r.samples.last().unwrap().effective_freq_ghz;
        assert!(first < last, "first {first} !< last {last}");
    }
}
