//! Workload descriptions consumed by the simulated processor.
//!
//! A [`Workload`] is a sequence of [`KernelPhase`]s. The counts come from
//! instrumented executions of the real algorithms; the per-phase
//! microarchitectural parameters (`cpi_core`, `activity`,
//! `llc_miss_rate`) come from the characterization bridge in the
//! `vizpower` crate, which assigns an instruction-mix signature per
//! kernel class.

use serde::{Deserialize, Serialize};

/// One homogeneous stretch of execution.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KernelPhase {
    pub name: String,
    /// Total instructions retired by the phase (across all cores).
    pub instructions: u64,
    /// Core-limited cycles-per-instruction: the CPI the phase would
    /// achieve with an infinitely fast memory system.
    pub cpi_core: f64,
    /// Dynamic-power activity factor in `[0, ~1.1]`; FP-dense kernels are
    /// high, stall-dominated kernels low.
    pub activity: f64,
    /// Last-level cache references issued by the phase.
    pub llc_refs: u64,
    /// Fraction of LLC references that miss to DRAM.
    pub llc_miss_rate: f64,
    /// Total DRAM traffic in bytes (read + write).
    pub dram_bytes: u64,
}

impl KernelPhase {
    /// LLC misses implied by the reference count and miss rate.
    pub fn llc_misses(&self) -> u64 {
        (self.llc_refs as f64 * self.llc_miss_rate).round() as u64
    }

    /// Basic sanity checks; used by `debug_assert` in the executor.
    pub fn is_valid(&self) -> bool {
        self.instructions > 0
            && self.cpi_core > 0.0
            && (0.0..=1.5).contains(&self.activity)
            && (0.0..=1.0).contains(&self.llc_miss_rate)
    }
}

/// An ordered list of phases, executed back to back.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Workload {
    pub name: String,
    pub phases: Vec<KernelPhase>,
}

impl Workload {
    pub fn new(name: impl Into<String>) -> Self {
        Workload {
            name: name.into(),
            phases: Vec::new(),
        }
    }

    pub fn push(&mut self, phase: KernelPhase) {
        debug_assert!(phase.is_valid(), "invalid phase: {phase:?}");
        self.phases.push(phase);
    }

    pub fn with_phase(mut self, phase: KernelPhase) -> Self {
        self.push(phase);
        self
    }

    pub fn total_instructions(&self) -> u64 {
        self.phases.iter().map(|p| p.instructions).sum()
    }

    pub fn total_llc_refs(&self) -> u64 {
        self.phases.iter().map(|p| p.llc_refs).sum()
    }

    pub fn total_dram_bytes(&self) -> u64 {
        self.phases.iter().map(|p| p.dram_bytes).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
    }

    /// Instruction-weighted mean activity — a quick estimate of how much
    /// power the workload wants.
    pub fn mean_activity(&self) -> f64 {
        let total = self.total_instructions();
        if total == 0 {
            return 0.0;
        }
        self.phases
            .iter()
            .map(|p| p.activity * p.instructions as f64)
            .sum::<f64>()
            / total as f64
    }
}

/// Convenience constructors for tests and benchmarks.
impl KernelPhase {
    /// A pure compute phase: negligible memory traffic, high activity.
    pub fn compute(name: impl Into<String>, instructions: u64) -> Self {
        KernelPhase {
            name: name.into(),
            instructions,
            cpi_core: 0.4,
            activity: 0.95,
            llc_refs: instructions / 100,
            llc_miss_rate: 0.02,
            dram_bytes: instructions / 50,
        }
    }

    /// A streaming memory phase: one LLC ref every few instructions,
    /// nearly all missing to DRAM.
    pub fn memory(name: impl Into<String>, instructions: u64, bytes: u64) -> Self {
        KernelPhase {
            name: name.into(),
            instructions,
            cpi_core: 0.8,
            activity: 0.35,
            llc_refs: instructions / 4,
            llc_miss_rate: 0.6,
            dram_bytes: bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn misses_follow_rate() {
        let p = KernelPhase {
            name: "x".into(),
            instructions: 1000,
            cpi_core: 0.5,
            activity: 0.5,
            llc_refs: 200,
            llc_miss_rate: 0.25,
            dram_bytes: 0,
        };
        assert_eq!(p.llc_misses(), 50);
        assert!(p.is_valid());
    }

    #[test]
    fn invalid_phases_detected() {
        let mut p = KernelPhase::compute("c", 100);
        p.llc_miss_rate = 1.5;
        assert!(!p.is_valid());
        p.llc_miss_rate = 0.5;
        p.instructions = 0;
        assert!(!p.is_valid());
    }

    #[test]
    fn workload_totals() {
        let w = Workload::new("test")
            .with_phase(KernelPhase::compute("a", 1000))
            .with_phase(KernelPhase::memory("b", 3000, 64_000));
        assert_eq!(w.total_instructions(), 4000);
        assert!(w.total_dram_bytes() >= 64_000);
        assert_eq!(w.phases.len(), 2);
    }

    #[test]
    fn mean_activity_weighted_by_instructions() {
        let w = Workload::new("test")
            .with_phase(KernelPhase::compute("a", 1000)) // 0.95
            .with_phase(KernelPhase::memory("b", 3000, 0)); // 0.35
        let expect = (0.95 * 1000.0 + 0.35 * 3000.0) / 4000.0;
        assert!((w.mean_activity() - expect).abs() < 1e-12);
    }

    #[test]
    fn empty_workload() {
        let w = Workload::new("empty");
        assert!(w.is_empty());
        assert_eq!(w.mean_activity(), 0.0);
    }
}
