//! The run journal: a typed, ring-buffered event stream for run
//! observability.
//!
//! The paper's evaluation hangs on 100 ms samples of RAPL energy and
//! performance counters (§V-B), but aggregates alone cannot say *where
//! inside a run* the joules went. This module is the reproduction's
//! substitute for the paper's msr-safe sampling harness: every layer of
//! the workspace (the executor's sampler, RAPL cap programming,
//! CloverLeaf timesteps, in situ actions, and study phases) emits a
//! typed [`Event`] into a shared [`Journal`], which serializes to
//! line-delimited JSON ([`Journal::to_jsonl`]) and to a
//! `chrome://tracing`-compatible trace file
//! ([`Journal::to_chrome_trace`]).
//!
//! Design constraints, in order:
//!
//! 1. **Determinism.** The journal must be byte-identical across runs
//!    and across rayon thread counts, so it carries no wall-clock
//!    timestamps. Time is a single logical clock ([`Journal::now`])
//!    advanced only by *modeled* seconds: the executor advances it in
//!    lock-step with virtual package time, and the CloverLeaf driver by
//!    each step's simulated `dt`. Layers that model no time of their own
//!    (study orchestration, in situ filter graphs) emit spans whose
//!    endpoints are whatever the clock read when they started/ended —
//!    possibly zero-width.
//! 2. **Zero cost when off.** A disabled journal ([`Journal::off`]) has
//!    capacity 0; emitters guard with [`Journal::is_enabled`] and every
//!    push is a no-op, so the hot executor loop stays untouched for
//!    non-journaled runs.
//! 3. **Bounded memory.** The buffer is a ring: when full, the oldest
//!    event is dropped and counted in [`Journal::dropped`], which both
//!    serializers surface so a truncated journal is never mistaken for a
//!    complete one.
//!
//! The serialized schema is versioned ([`SCHEMA_VERSION`]) and
//! documented in `docs/OBSERVABILITY.md`; `cargo xtask lint` enforces
//! that every public [`Event`] and [`Scope`] variant has a row in that
//! document's schema table.

#![deny(missing_docs)]

use std::collections::VecDeque;
use std::fmt::Write as _;

use crate::units::{Joules, Watts};

/// Version of the serialized journal schema. Every JSONL line carries it
/// as `"v"`, and the chrome trace embeds it in `otherData`. Bump it when
/// an event's fields or semantics change, and update the schema table in
/// `docs/OBSERVABILITY.md` in the same commit.
///
/// v2 added the [`PolicyDecision`] event and the [`Scope::Governor`]
/// span scope for the closed-loop power governor. v3 added the
/// [`ConformanceCheck`] event and the [`Scope::Conformance`] span scope
/// for the analytic-oracle conformance suite (`crates/conformance`).
/// v5 added the [`Scope::Bench`] span scope wrapping each
/// (algorithm, size) row of a `reproduce bench` run. v6 added the
/// [`Scope::Primitive`] span scope carrying per-primitive element/byte
/// counters from the data-parallel-primitives backend (`vizalgo::dpp`).
/// v7 added the [`ServiceRequest`] and [`CacheEvent`] events plus the
/// [`Scope::Service`] span scope for the fingerprint-addressed study
/// service (`crates/service`). v8 added the [`Scope::FlowScenario`]
/// span scope — one zero-width span per advection-scenario sweep row
/// (`core::advect`) — and the `evict` outcome on [`CacheEvent`] for
/// capacity-bounded result caches.
pub const SCHEMA_VERSION: u32 = 8;

/// Which layer of the stack emitted a [`Span`].
///
/// Scopes form the attribution hierarchy: a `Study` phase contains
/// `Sweep` rows, a sweep row contains one `Workload` execution, and a
/// workload contains `Kernel` phases. `Timestep` and `Action` spans come
/// from the native (pre-characterization) layer. Each scope maps to its
/// own track (`tid`) in the chrome trace so the hierarchy reads as
/// stacked timelines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scope {
    /// Study/experiment orchestration in `core::study` and
    /// `core::experiments`: dataset builds, native runs, and experiment
    /// phases (`table1:64`, `fig2:32`, ...).
    Study,
    /// One cap point of a power-cap sweep (`core::study::sweep_journaled`).
    Sweep,
    /// One workload execution under a programmed cap
    /// (`powersim::exec::Package::run_journaled`).
    Workload,
    /// One kernel phase inside a workload execution, carrying the
    /// per-phase energy attribution.
    Kernel,
    /// One CloverLeaf hydrodynamics timestep
    /// (`cloverleaf::driver::Simulation::step_journaled`).
    Timestep,
    /// One in situ visualization action (a pipeline, a rendered scene,
    /// or a whole viz cycle) from `insitu::runtime`.
    Action,
    /// One closed-loop governor run: a simulation/visualization pair
    /// executed concurrently under a node power budget
    /// (`governor::control::govern`).
    Governor,
    /// One conformance pass over a single algorithm at one grid size
    /// (`conformance::run_algorithm`): its child events are the
    /// individual [`ConformanceCheck`] results.
    Conformance,
    /// One (algorithm, size) row of a wall-clock benchmark run
    /// (`bench::perf::bench`), timing the real kernel execution that
    /// the performance snapshots in `results/` are built from.
    Bench,
    /// One data-parallel primitive invocation rollup from the DPP
    /// backend (`vizalgo::dpp`): element/byte/flop counters for one
    /// primitive op across a filter execution, journaled by the
    /// conformance and bench drivers as zero-width spans.
    Primitive,
    /// Study-service orchestration (`crates/service`): one span per
    /// scheduled request batch (`batch:{index}`) plus a `serve:{requests}`
    /// rollup per traffic run, on the modeled fleet clock.
    Service,
    /// One advection-scenario sweep row (`core::advect`): a zero-width
    /// span carrying the scenario's spec/window fingerprints and the
    /// characterized cost of one (seeding × step-control × termination
    /// × flow-mode) cell.
    FlowScenario,
}

impl Scope {
    /// Lowercase wire name used by both serializers.
    pub fn name(self) -> &'static str {
        match self {
            Scope::Study => "study",
            Scope::Sweep => "sweep",
            Scope::Workload => "workload",
            Scope::Kernel => "kernel",
            Scope::Timestep => "timestep",
            Scope::Action => "action",
            Scope::Governor => "governor",
            Scope::Conformance => "conformance",
            Scope::Bench => "bench",
            Scope::Primitive => "primitive",
            Scope::Service => "service",
            Scope::FlowScenario => "flow_scenario",
        }
    }

    /// Chrome-trace track id for this scope (`tid` field).
    fn tid(self) -> u32 {
        match self {
            Scope::Study => 1,
            Scope::Sweep => 2,
            Scope::Workload => 3,
            Scope::Kernel => 4,
            Scope::Timestep => 5,
            Scope::Action => 6,
            Scope::Governor => 7,
            Scope::Conformance => 8,
            Scope::Bench => 9,
            Scope::Primitive => 10,
            Scope::Service => 11,
            Scope::FlowScenario => 12,
        }
    }
}

/// All scope/track pairs, for chrome-trace thread-name metadata.
const ALL_SCOPES: [Scope; 12] = [
    Scope::Study,
    Scope::Sweep,
    Scope::Workload,
    Scope::Kernel,
    Scope::Timestep,
    Scope::Action,
    Scope::Governor,
    Scope::Conformance,
    Scope::Bench,
    Scope::Primitive,
    Scope::Service,
    Scope::FlowScenario,
];

/// A closed interval of journal time attributed to one named unit of
/// work, optionally carrying an energy rollup.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Which layer emitted the span.
    pub scope: Scope,
    /// Name of the unit of work, namespaced by convention
    /// (`"cap:70W"`, `"pipeline:contour"`, `"table1:64"`, ...).
    pub name: String,
    /// Journal time at which the span opened (seconds).
    pub t0: f64,
    /// Journal time at which the span closed (seconds, `>= t0`).
    pub t1: f64,
    /// Energy attributed to this span, if the emitting layer models
    /// energy. Kernel spans carry exact per-phase attribution; parent
    /// spans carry the rollup (sum) of their children.
    pub joules: Option<Joules>,
    /// Mean power over the span (`joules / (t1 - t0)`), present whenever
    /// `joules` is present and the span has nonzero width.
    pub watts: Option<Watts>,
    /// Scope-specific numeric annotations (instruction counts, step
    /// indices, ...). Keys are static by construction so the schema
    /// stays enumerable.
    pub args: Vec<(&'static str, f64)>,
}

/// One 100 ms sampler reading from the executor, mirroring the derived
/// metrics of [`crate::exec::Sample`] on the journal timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CounterSample {
    /// Journal time at the end of the sampling interval (seconds).
    pub t: f64,
    /// Mean package power over the interval, from the energy MSR delta.
    pub power_watts: Watts,
    /// Effective frequency over the interval (APERF/MPERF), in GHz.
    pub effective_freq_ghz: f64,
    /// Instructions per reference cycle over the interval.
    pub ipc: f64,
    /// LLC miss rate (misses / references) over the interval.
    pub llc_miss_rate: f64,
}

/// A RAPL package power-limit reprogramming.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CapChange {
    /// Journal time of the MSR write (seconds).
    pub t: f64,
    /// The cap the caller asked for.
    pub requested_watts: Watts,
    /// The cap actually programmed after clamping to the package's
    /// supported range.
    pub actual_watts: Watts,
}

/// One control decision of the closed-loop power governor: the per-side
/// observations of the last 100 ms window and the cap split chosen for
/// the next one. A cap of 0 W marks a side whose workload has completed
/// (its package is idle and excluded from the budget).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolicyDecision {
    /// Journal time of the decision (end of the observed window, seconds).
    pub t: f64,
    /// The node power budget the governor splits.
    pub budget_watts: Watts,
    /// Cap chosen for the simulation package (0 W once it completed).
    pub sim_cap_watts: Watts,
    /// Cap chosen for the visualization package (0 W once it completed).
    pub viz_cap_watts: Watts,
    /// Observed simulation-package power over the window.
    pub sim_power_watts: Watts,
    /// Observed visualization-package power over the window.
    pub viz_power_watts: Watts,
    /// Observed simulation IPC (instructions / reference cycle).
    pub sim_ipc: f64,
    /// Observed visualization IPC (instructions / reference cycle).
    pub viz_ipc: f64,
    /// Observed simulation LLC miss ratio (misses / references).
    pub sim_llc_miss_rate: f64,
    /// Observed visualization LLC miss ratio (misses / references).
    pub viz_llc_miss_rate: f64,
}

/// One verdict of the analytic-oracle conformance suite
/// (`crates/conformance`): a single measured quantity compared against
/// its closed-form or reference expectation. `pass` is recorded rather
/// than derived so a serialized journal is self-contained evidence.
#[derive(Debug, Clone, PartialEq)]
pub struct ConformanceCheck {
    /// Journal time of the check (seconds; conformance runs model no
    /// time, so this is whatever the clock read).
    pub t: f64,
    /// Display name of the algorithm under test (`"Contour"`, ...).
    pub algorithm: String,
    /// Check identifier, namespaced by kind (`"oracle:sphere-area"`,
    /// `"differential:mesh-canonical"`, `"metamorphic:clip-complement"`).
    pub check: String,
    /// Check family: `"oracle"`, `"differential"`, or `"metamorphic"`.
    pub kind: String,
    /// Grid resolution (cells per axis) the check ran at.
    pub grid: u32,
    /// The quantity the kernel produced.
    pub measured: f64,
    /// The closed-form or reference expectation.
    pub expected: f64,
    /// Absolute tolerance: the check passes iff
    /// `|measured - expected| <= tolerance` (0 for exact checks).
    pub tolerance: f64,
    /// Whether the check passed.
    pub pass: bool,
}

/// One request served by the fingerprint-addressed study service
/// (`crates/service`): its full cache key, how the scheduler classified
/// it (fresh execution, in-batch coalesce, or cache hit), and its modeled
/// completion on the fleet clock. Classification happens deterministically
/// at dispatch time, so these events are byte-identical across worker
/// counts.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceRequest {
    /// Journal time at which the response was ready (seconds; equals the
    /// batch arrival time for cache hits).
    pub t: f64,
    /// Display name of the requested algorithm (`"Contour"`, ...).
    pub algorithm: String,
    /// Execution backend the request named (`"traditional"` / `"dpp"`).
    pub backend: String,
    /// 48-bit spec fingerprint component of the cache key (exact in f64).
    pub spec_fp: f64,
    /// 48-bit dataset fingerprint component of the cache key.
    pub data_fp: f64,
    /// Admitted power-cap component of the cache key.
    pub cap_watts: Watts,
    /// Scheduler classification: `"hit"`, `"miss"`, or `"coalesced"`.
    pub outcome: String,
    /// Simulated node the backing execution was placed on (the node of
    /// the coalesced-onto job for coalesced requests; 0 for hits, which
    /// run on no node).
    pub node: u32,
    /// Modeled seconds from batch arrival to response (0 for hits).
    pub latency_seconds: f64,
}

/// One result-cache lookup outcome from the study service's sharded
/// fingerprint-addressed cache, recorded at batch-dispatch time.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheEvent {
    /// Journal time of the lookup (seconds; the batch arrival time).
    pub t: f64,
    /// 48-bit spec fingerprint component of the looked-up key.
    pub spec_fp: f64,
    /// 48-bit dataset fingerprint component of the looked-up key.
    pub data_fp: f64,
    /// Admitted power-cap component of the looked-up key.
    pub cap_watts: Watts,
    /// Backend component of the looked-up key (`"traditional"` / `"dpp"`).
    pub backend: String,
    /// Lookup outcome: `"hit"`, `"miss"`, or `"coalesced"` — or
    /// `"evict"` (schema v8) when a capacity-bounded cache drops its
    /// oldest ready entry.
    pub outcome: String,
    /// Cache shard the key hashes to.
    pub shard: u32,
}

/// One journal entry. Every variant is documented in the schema table of
/// `docs/OBSERVABILITY.md`; `cargo xtask lint` fails if a variant is
/// added without a matching row.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A closed interval of attributed work.
    Span(Span),
    /// A 100 ms executor sampler reading.
    Counter(CounterSample),
    /// A RAPL cap reprogramming.
    CapChange(CapChange),
    /// A governor control decision (observed ratios + chosen cap split).
    PolicyDecision(PolicyDecision),
    /// One conformance-suite verdict (measured vs expected).
    ConformanceCheck(ConformanceCheck),
    /// One study-service request: cache key, classification, and modeled
    /// completion (`crates/service`).
    ServiceRequest(ServiceRequest),
    /// One study-service result-cache lookup outcome.
    CacheEvent(CacheEvent),
}

/// Ring-buffered event journal with a logical clock.
///
/// Construct with [`Journal::with_capacity`] to record, or
/// [`Journal::off`] (also [`Default`]) for a disabled journal that
/// ignores every push. See the module docs for the clock and
/// determinism contract.
#[derive(Debug, Clone)]
pub struct Journal {
    /// `(seq, event)` pairs; `seq` is assigned at push time and survives
    /// ring eviction, so gaps in the serialized stream reveal drops.
    events: VecDeque<(u64, Event)>,
    capacity: usize,
    dropped: u64,
    seq: u64,
    t: f64,
}

impl Journal {
    /// A disabled journal: capacity 0, every push a no-op.
    pub fn off() -> Journal {
        Journal::with_capacity(0)
    }

    /// A journal holding at most `capacity` events; once full, each push
    /// evicts the oldest event and increments [`Journal::dropped`].
    pub fn with_capacity(capacity: usize) -> Journal {
        Journal {
            events: VecDeque::new(),
            capacity,
            dropped: 0,
            seq: 0,
            t: 0.0,
        }
    }

    /// Whether pushes are recorded. Emitters on hot paths should guard
    /// span construction (allocation, `format!`) behind this.
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Current journal time in seconds.
    pub fn now(&self) -> f64 {
        self.t
    }

    /// Advance the journal clock by `dt` seconds of modeled time. Only
    /// layers that model time call this (the executor, the CloverLeaf
    /// driver); see the module docs.
    pub fn advance(&mut self, dt: f64) {
        self.t += dt;
    }

    /// Record an event (no-op when disabled; evicts the oldest event
    /// when full).
    pub fn push(&mut self, event: Event) {
        if self.capacity == 0 {
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back((self.seq, event));
        self.seq += 1;
    }

    /// Record a [`Span`] closing now: `t1` is the current clock, and the
    /// mean power is derived from `joules` when the span has width.
    pub fn push_span(
        &mut self,
        scope: Scope,
        name: impl Into<String>,
        t0: f64,
        joules: Option<Joules>,
        args: Vec<(&'static str, f64)>,
    ) {
        if self.capacity == 0 {
            return;
        }
        let t1 = self.t;
        let width = t1 - t0;
        let watts = match joules {
            Some(j) if width > 0.0 => Some(j.over_seconds(width)),
            _ => None,
        };
        self.push(Event::Span(Span {
            scope,
            name: name.into(),
            t0,
            t1,
            joules,
            watts,
            args,
        }));
    }

    /// The buffered events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.events.iter().map(|(_, e)| e)
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of events evicted by the ring so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Maximum number of buffered events (0 when disabled).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Serialize to line-delimited JSON, one event per line, oldest
    /// first. Deterministic: field order is fixed, floats use Rust's
    /// shortest-roundtrip formatting, absent options are omitted.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for (seq, event) in &self.events {
            write_jsonl_line(&mut out, *seq, event);
        }
        out
    }

    /// Serialize to the Trace Event Format JSON understood by
    /// `chrome://tracing` and Perfetto. Spans become complete (`"X"`)
    /// events on per-scope tracks, counter samples a `"C"` counter
    /// track, and cap changes global instant (`"i"`) events. Journal
    /// seconds are exported as trace microseconds.
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"displayTimeUnit\":\"ms\",\"otherData\":{{\"schema_version\":{SCHEMA_VERSION},\
             \"dropped\":{}}},\"traceEvents\":[",
            self.dropped
        );
        let mut first = true;
        for scope in ALL_SCOPES {
            sep(&mut out, &mut first);
            let _ = write!(
                out,
                "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":{},\
                 \"args\":{{\"name\":\"{}\"}}}}",
                scope.tid(),
                scope.name()
            );
        }
        for (_, event) in &self.events {
            sep(&mut out, &mut first);
            write_chrome_event(&mut out, event);
        }
        out.push_str("]}\n");
        out
    }
}

impl Default for Journal {
    fn default() -> Journal {
        Journal::off()
    }
}

fn sep(out: &mut String, first: &mut bool) {
    if *first {
        *first = false;
    } else {
        out.push(',');
    }
}

/// JSON string escaping for the subset of strings we emit (names come
/// from workload/algorithm identifiers, but escape fully anyway).
fn json_escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Write an `f64` as a JSON number. Rust's `Display` for `f64` is the
/// shortest string that round-trips, which is both deterministic and
/// valid JSON for finite values; non-finite values become `null`.
fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

fn push_args(out: &mut String, args: &[(&'static str, f64)]) {
    out.push('{');
    for (i, (key, value)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        json_escape_into(out, key);
        out.push_str("\":");
        push_f64(out, *value);
    }
    out.push('}');
}

fn write_jsonl_line(out: &mut String, seq: u64, event: &Event) {
    let _ = write!(out, "{{\"v\":{SCHEMA_VERSION},\"seq\":{seq},");
    match event {
        Event::Span(s) => {
            out.push_str("\"ev\":\"span\",\"scope\":\"");
            out.push_str(s.scope.name());
            out.push_str("\",\"name\":\"");
            json_escape_into(out, &s.name);
            out.push_str("\",\"t0\":");
            push_f64(out, s.t0);
            out.push_str(",\"t1\":");
            push_f64(out, s.t1);
            if let Some(j) = s.joules {
                out.push_str(",\"joules\":");
                push_f64(out, j.value());
            }
            if let Some(w) = s.watts {
                out.push_str(",\"watts\":");
                push_f64(out, w.value());
            }
            if !s.args.is_empty() {
                out.push_str(",\"args\":");
                push_args(out, &s.args);
            }
        }
        Event::Counter(c) => {
            out.push_str("\"ev\":\"counter\",\"t\":");
            push_f64(out, c.t);
            out.push_str(",\"power_watts\":");
            push_f64(out, c.power_watts.value());
            out.push_str(",\"effective_freq_ghz\":");
            push_f64(out, c.effective_freq_ghz);
            out.push_str(",\"ipc\":");
            push_f64(out, c.ipc);
            out.push_str(",\"llc_miss_rate\":");
            push_f64(out, c.llc_miss_rate);
        }
        Event::CapChange(c) => {
            out.push_str("\"ev\":\"cap_change\",\"t\":");
            push_f64(out, c.t);
            out.push_str(",\"requested_watts\":");
            push_f64(out, c.requested_watts.value());
            out.push_str(",\"actual_watts\":");
            push_f64(out, c.actual_watts.value());
        }
        Event::PolicyDecision(d) => {
            out.push_str("\"ev\":\"policy_decision\",\"t\":");
            push_f64(out, d.t);
            out.push_str(",\"budget_watts\":");
            push_f64(out, d.budget_watts.value());
            out.push_str(",\"sim_cap_watts\":");
            push_f64(out, d.sim_cap_watts.value());
            out.push_str(",\"viz_cap_watts\":");
            push_f64(out, d.viz_cap_watts.value());
            out.push_str(",\"sim_power_watts\":");
            push_f64(out, d.sim_power_watts.value());
            out.push_str(",\"viz_power_watts\":");
            push_f64(out, d.viz_power_watts.value());
            out.push_str(",\"sim_ipc\":");
            push_f64(out, d.sim_ipc);
            out.push_str(",\"viz_ipc\":");
            push_f64(out, d.viz_ipc);
            out.push_str(",\"sim_llc_miss_rate\":");
            push_f64(out, d.sim_llc_miss_rate);
            out.push_str(",\"viz_llc_miss_rate\":");
            push_f64(out, d.viz_llc_miss_rate);
        }
        Event::ConformanceCheck(c) => {
            out.push_str("\"ev\":\"conformance_check\",\"t\":");
            push_f64(out, c.t);
            out.push_str(",\"algorithm\":\"");
            json_escape_into(out, &c.algorithm);
            out.push_str("\",\"check\":\"");
            json_escape_into(out, &c.check);
            out.push_str("\",\"kind\":\"");
            json_escape_into(out, &c.kind);
            let _ = write!(out, "\",\"grid\":{},", c.grid);
            out.push_str("\"measured\":");
            push_f64(out, c.measured);
            out.push_str(",\"expected\":");
            push_f64(out, c.expected);
            out.push_str(",\"tolerance\":");
            push_f64(out, c.tolerance);
            out.push_str(",\"pass\":");
            out.push_str(if c.pass { "true" } else { "false" });
        }
        Event::ServiceRequest(r) => {
            out.push_str("\"ev\":\"service_request\",\"t\":");
            push_f64(out, r.t);
            out.push_str(",\"algorithm\":\"");
            json_escape_into(out, &r.algorithm);
            out.push_str("\",\"backend\":\"");
            json_escape_into(out, &r.backend);
            out.push_str("\",\"spec_fp\":");
            push_f64(out, r.spec_fp);
            out.push_str(",\"data_fp\":");
            push_f64(out, r.data_fp);
            out.push_str(",\"cap_watts\":");
            push_f64(out, r.cap_watts.value());
            out.push_str(",\"outcome\":\"");
            json_escape_into(out, &r.outcome);
            let _ = write!(out, "\",\"node\":{},", r.node);
            out.push_str("\"latency_seconds\":");
            push_f64(out, r.latency_seconds);
        }
        Event::CacheEvent(c) => {
            out.push_str("\"ev\":\"cache_event\",\"t\":");
            push_f64(out, c.t);
            out.push_str(",\"spec_fp\":");
            push_f64(out, c.spec_fp);
            out.push_str(",\"data_fp\":");
            push_f64(out, c.data_fp);
            out.push_str(",\"cap_watts\":");
            push_f64(out, c.cap_watts.value());
            out.push_str(",\"backend\":\"");
            json_escape_into(out, &c.backend);
            out.push_str("\",\"outcome\":\"");
            json_escape_into(out, &c.outcome);
            let _ = write!(out, "\",\"shard\":{}", c.shard);
        }
    }
    out.push_str("}\n");
}

fn write_chrome_event(out: &mut String, event: &Event) {
    match event {
        Event::Span(s) => {
            out.push_str("{\"ph\":\"X\",\"name\":\"");
            json_escape_into(out, &s.name);
            out.push_str("\",\"cat\":\"");
            out.push_str(s.scope.name());
            let _ = write!(out, "\",\"pid\":1,\"tid\":{},\"ts\":", s.scope.tid());
            push_f64(out, s.t0 * 1e6);
            out.push_str(",\"dur\":");
            push_f64(out, (s.t1 - s.t0) * 1e6);
            out.push_str(",\"args\":{");
            let mut first = true;
            if let Some(j) = s.joules {
                sep(out, &mut first);
                out.push_str("\"joules\":");
                push_f64(out, j.value());
            }
            if let Some(w) = s.watts {
                sep(out, &mut first);
                out.push_str("\"watts\":");
                push_f64(out, w.value());
            }
            for (key, value) in &s.args {
                sep(out, &mut first);
                out.push('"');
                json_escape_into(out, key);
                out.push_str("\":");
                push_f64(out, *value);
            }
            out.push_str("}}");
        }
        Event::Counter(c) => {
            out.push_str("{\"ph\":\"C\",\"name\":\"sampler\",\"pid\":1,\"ts\":");
            push_f64(out, c.t * 1e6);
            out.push_str(",\"args\":{\"power_watts\":");
            push_f64(out, c.power_watts.value());
            out.push_str(",\"effective_freq_ghz\":");
            push_f64(out, c.effective_freq_ghz);
            out.push_str(",\"ipc\":");
            push_f64(out, c.ipc);
            out.push_str(",\"llc_miss_rate\":");
            push_f64(out, c.llc_miss_rate);
            out.push_str("}}");
        }
        Event::CapChange(c) => {
            out.push_str(
                "{\"ph\":\"i\",\"s\":\"g\",\"name\":\"cap_change\",\"pid\":1,\"tid\":0,\
                 \"ts\":",
            );
            push_f64(out, c.t * 1e6);
            out.push_str(",\"args\":{\"requested_watts\":");
            push_f64(out, c.requested_watts.value());
            out.push_str(",\"actual_watts\":");
            push_f64(out, c.actual_watts.value());
            out.push_str("}}");
        }
        Event::PolicyDecision(d) => {
            // A counter track: the split and the observed draw plot as
            // stacked series against the budget over journal time.
            out.push_str("{\"ph\":\"C\",\"name\":\"governor\",\"pid\":1,\"ts\":");
            push_f64(out, d.t * 1e6);
            out.push_str(",\"args\":{\"budget_watts\":");
            push_f64(out, d.budget_watts.value());
            out.push_str(",\"sim_cap_watts\":");
            push_f64(out, d.sim_cap_watts.value());
            out.push_str(",\"viz_cap_watts\":");
            push_f64(out, d.viz_cap_watts.value());
            out.push_str(",\"sim_power_watts\":");
            push_f64(out, d.sim_power_watts.value());
            out.push_str(",\"viz_power_watts\":");
            push_f64(out, d.viz_power_watts.value());
            out.push_str("}}");
        }
        Event::ConformanceCheck(c) => {
            // A global instant on the conformance track, named by the
            // check, so failures are visible on the timeline.
            let _ = write!(out, "{{\"ph\":\"i\",\"s\":\"t\",\"name\":\"",);
            json_escape_into(out, &c.check);
            let _ = write!(
                out,
                "\",\"cat\":\"conformance\",\"pid\":1,\"tid\":{},\"ts\":",
                Scope::Conformance.tid()
            );
            push_f64(out, c.t * 1e6);
            out.push_str(",\"args\":{\"algorithm\":\"");
            json_escape_into(out, &c.algorithm);
            out.push_str("\",\"kind\":\"");
            json_escape_into(out, &c.kind);
            let _ = write!(out, "\",\"grid\":{},", c.grid);
            out.push_str("\"measured\":");
            push_f64(out, c.measured);
            out.push_str(",\"expected\":");
            push_f64(out, c.expected);
            out.push_str(",\"tolerance\":");
            push_f64(out, c.tolerance);
            out.push_str(",\"pass\":");
            out.push_str(if c.pass { "true" } else { "false" });
            out.push_str("}}");
        }
        Event::ServiceRequest(r) => {
            // A complete event on the service track spanning the modeled
            // latency: hits are zero-width instants at batch arrival,
            // misses stretch to their node's completion time.
            out.push_str("{\"ph\":\"X\",\"name\":\"");
            json_escape_into(out, &r.algorithm);
            out.push_str("\",\"cat\":\"service\",\"pid\":1,\"tid\":");
            let _ = write!(out, "{},\"ts\":", Scope::Service.tid());
            push_f64(out, (r.t - r.latency_seconds) * 1e6);
            out.push_str(",\"dur\":");
            push_f64(out, r.latency_seconds * 1e6);
            out.push_str(",\"args\":{\"backend\":\"");
            json_escape_into(out, &r.backend);
            out.push_str("\",\"spec_fp\":");
            push_f64(out, r.spec_fp);
            out.push_str(",\"data_fp\":");
            push_f64(out, r.data_fp);
            out.push_str(",\"cap_watts\":");
            push_f64(out, r.cap_watts.value());
            out.push_str(",\"outcome\":\"");
            json_escape_into(out, &r.outcome);
            let _ = write!(out, "\",\"node\":{}}}}}", r.node);
        }
        Event::CacheEvent(c) => {
            // A thread-scoped instant on the service track, named by the
            // lookup outcome, so hit/miss streaks read off the timeline.
            out.push_str("{\"ph\":\"i\",\"s\":\"t\",\"name\":\"cache:");
            json_escape_into(out, &c.outcome);
            let _ = write!(
                out,
                "\",\"cat\":\"service\",\"pid\":1,\"tid\":{},\"ts\":",
                Scope::Service.tid()
            );
            push_f64(out, c.t * 1e6);
            out.push_str(",\"args\":{\"spec_fp\":");
            push_f64(out, c.spec_fp);
            out.push_str(",\"data_fp\":");
            push_f64(out, c.data_fp);
            out.push_str(",\"cap_watts\":");
            push_f64(out, c.cap_watts.value());
            out.push_str(",\"backend\":\"");
            json_escape_into(out, &c.backend);
            let _ = write!(out, "\",\"shard\":{}}}}}", c.shard);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_journal_ignores_everything() {
        let mut j = Journal::off();
        assert!(!j.is_enabled());
        j.push(Event::CapChange(CapChange {
            t: 0.0,
            requested_watts: Watts(70.0),
            actual_watts: Watts(70.0),
        }));
        j.push_span(Scope::Study, "x", 0.0, None, Vec::new());
        assert!(j.is_empty());
        assert_eq!(j.dropped(), 0);
        assert_eq!(j.to_jsonl(), "");
    }

    #[test]
    fn ring_evicts_oldest_and_preserves_seq() {
        let mut j = Journal::with_capacity(2);
        for i in 0..4 {
            j.advance(1.0);
            j.push_span(
                Scope::Kernel,
                format!("k{i}"),
                j.now() - 1.0,
                None,
                Vec::new(),
            );
        }
        assert_eq!(j.len(), 2);
        assert_eq!(j.dropped(), 2);
        let jsonl = j.to_jsonl();
        assert!(jsonl.contains("\"seq\":2,"), "{jsonl}");
        assert!(jsonl.contains("\"seq\":3,"), "{jsonl}");
        assert!(!jsonl.contains("\"seq\":0,"), "{jsonl}");
    }

    #[test]
    fn span_derives_mean_power_from_joules() {
        let mut j = Journal::with_capacity(8);
        let t0 = j.now();
        j.advance(2.0);
        j.push_span(
            Scope::Kernel,
            "c",
            t0,
            Some(Joules(100.0)),
            vec![("phase_index", 0.0)],
        );
        let events: Vec<&Event> = j.events().collect();
        match events[0] {
            Event::Span(s) => {
                assert_eq!(s.t0, 0.0);
                assert_eq!(s.t1, 2.0);
                assert_eq!(s.joules, Some(Joules(100.0)));
                assert_eq!(s.watts, Some(Watts(50.0)));
            }
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn zero_width_span_has_no_watts() {
        let mut j = Journal::with_capacity(8);
        j.push_span(
            Scope::Study,
            "setup",
            j.now(),
            Some(Joules(1.0)),
            Vec::new(),
        );
        match j.events().next() {
            Some(Event::Span(s)) => assert_eq!(s.watts, None),
            other => panic!("unexpected event {other:?}"),
        };
    }

    #[test]
    fn jsonl_shape_is_exact() {
        let mut j = Journal::with_capacity(8);
        j.push(Event::CapChange(CapChange {
            t: 0.0,
            requested_watts: Watts(250.0),
            actual_watts: Watts(120.0),
        }));
        j.advance(0.1);
        j.push(Event::Counter(CounterSample {
            t: j.now(),
            power_watts: Watts(85.5),
            effective_freq_ghz: 2.6,
            ipc: 1.25,
            llc_miss_rate: 0.05,
        }));
        j.push_span(
            Scope::Workload,
            "contour_64",
            0.0,
            Some(Joules(8.55)),
            vec![("phases", 2.0)],
        );
        let jsonl = j.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(
            lines[0],
            "{\"v\":8,\"seq\":0,\"ev\":\"cap_change\",\"t\":0,\
             \"requested_watts\":250,\"actual_watts\":120}"
        );
        assert_eq!(
            lines[1],
            "{\"v\":8,\"seq\":1,\"ev\":\"counter\",\"t\":0.1,\"power_watts\":85.5,\
             \"effective_freq_ghz\":2.6,\"ipc\":1.25,\"llc_miss_rate\":0.05}"
        );
        assert_eq!(
            lines[2],
            "{\"v\":8,\"seq\":2,\"ev\":\"span\",\"scope\":\"workload\",\"name\":\"contour_64\",\
             \"t0\":0,\"t1\":0.1,\"joules\":8.55,\"watts\":85.5,\"args\":{\"phases\":2}}"
        );
    }

    #[test]
    fn policy_decision_jsonl_shape_is_exact() {
        let mut j = Journal::with_capacity(4);
        j.advance(0.1);
        j.push(Event::PolicyDecision(PolicyDecision {
            t: j.now(),
            budget_watts: Watts(160.0),
            sim_cap_watts: Watts(110.0),
            viz_cap_watts: Watts(50.0),
            sim_power_watts: Watts(88.25),
            viz_power_watts: Watts(46.5),
            sim_ipc: 1.8,
            viz_ipc: 0.4,
            sim_llc_miss_rate: 0.05,
            viz_llc_miss_rate: 0.9,
        }));
        let jsonl = j.to_jsonl();
        assert_eq!(
            jsonl.trim_end(),
            "{\"v\":8,\"seq\":0,\"ev\":\"policy_decision\",\"t\":0.1,\"budget_watts\":160,\
             \"sim_cap_watts\":110,\"viz_cap_watts\":50,\"sim_power_watts\":88.25,\
             \"viz_power_watts\":46.5,\"sim_ipc\":1.8,\"viz_ipc\":0.4,\
             \"sim_llc_miss_rate\":0.05,\"viz_llc_miss_rate\":0.9}"
        );
        let trace = j.to_chrome_trace();
        assert!(
            trace.contains("\"ph\":\"C\",\"name\":\"governor\""),
            "{trace}"
        );
        assert!(trace.contains("\"thread_name\""), "{trace}");
    }

    #[test]
    fn conformance_check_jsonl_shape_is_exact() {
        let mut j = Journal::with_capacity(4);
        j.push(Event::ConformanceCheck(ConformanceCheck {
            t: 0.0,
            algorithm: "Contour".into(),
            check: "oracle:sphere-area".into(),
            kind: "oracle".into(),
            grid: 32,
            measured: 1.1286,
            expected: 1.13097,
            tolerance: 0.0226,
            pass: true,
        }));
        let jsonl = j.to_jsonl();
        assert_eq!(
            jsonl.trim_end(),
            "{\"v\":8,\"seq\":0,\"ev\":\"conformance_check\",\"t\":0,\
             \"algorithm\":\"Contour\",\"check\":\"oracle:sphere-area\",\
             \"kind\":\"oracle\",\"grid\":32,\"measured\":1.1286,\
             \"expected\":1.13097,\"tolerance\":0.0226,\"pass\":true}"
        );
        let trace = j.to_chrome_trace();
        assert!(
            trace.contains("\"ph\":\"i\",\"s\":\"t\",\"name\":\"oracle:sphere-area\""),
            "{trace}"
        );
        assert!(trace.contains("\"pass\":true"), "{trace}");
        assert!(trace.contains("\"name\":\"conformance\""), "{trace}");
    }

    #[test]
    fn service_request_jsonl_shape_is_exact() {
        let mut j = Journal::with_capacity(4);
        j.advance(1.5);
        j.push(Event::ServiceRequest(ServiceRequest {
            t: j.now(),
            algorithm: "Contour".into(),
            backend: "traditional".into(),
            spec_fp: 123456789.0,
            data_fp: 987654321.0,
            cap_watts: Watts(80.0),
            outcome: "miss".into(),
            node: 2,
            latency_seconds: 0.5,
        }));
        let jsonl = j.to_jsonl();
        assert_eq!(
            jsonl.trim_end(),
            "{\"v\":8,\"seq\":0,\"ev\":\"service_request\",\"t\":1.5,\
             \"algorithm\":\"Contour\",\"backend\":\"traditional\",\
             \"spec_fp\":123456789,\"data_fp\":987654321,\"cap_watts\":80,\
             \"outcome\":\"miss\",\"node\":2,\"latency_seconds\":0.5}"
        );
        let trace = j.to_chrome_trace();
        assert!(
            trace.contains("\"ph\":\"X\",\"name\":\"Contour\",\"cat\":\"service\""),
            "{trace}"
        );
        assert!(trace.contains("\"dur\":500000"), "{trace}");
        assert!(trace.contains("\"name\":\"service\""), "{trace}");
    }

    #[test]
    fn cache_event_jsonl_shape_is_exact() {
        let mut j = Journal::with_capacity(4);
        j.push(Event::CacheEvent(CacheEvent {
            t: 0.0,
            spec_fp: 42.0,
            data_fp: 7.0,
            cap_watts: Watts(120.0),
            backend: "dpp".into(),
            outcome: "coalesced".into(),
            shard: 5,
        }));
        let jsonl = j.to_jsonl();
        assert_eq!(
            jsonl.trim_end(),
            "{\"v\":8,\"seq\":0,\"ev\":\"cache_event\",\"t\":0,\"spec_fp\":42,\
             \"data_fp\":7,\"cap_watts\":120,\"backend\":\"dpp\",\
             \"outcome\":\"coalesced\",\"shard\":5}"
        );
        let trace = j.to_chrome_trace();
        assert!(
            trace.contains("\"ph\":\"i\",\"s\":\"t\",\"name\":\"cache:coalesced\""),
            "{trace}"
        );
        assert!(trace.contains("\"shard\":5"), "{trace}");
    }

    #[test]
    fn json_strings_are_escaped() {
        let mut j = Journal::with_capacity(4);
        j.push_span(Scope::Study, "a\"b\\c\nd", j.now(), None, Vec::new());
        let jsonl = j.to_jsonl();
        assert!(jsonl.contains("\"name\":\"a\\\"b\\\\c\\nd\""), "{jsonl}");
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        let mut j = Journal::with_capacity(4);
        j.push(Event::Counter(CounterSample {
            t: 0.0,
            power_watts: Watts(f64::NAN),
            effective_freq_ghz: f64::INFINITY,
            ipc: 0.0,
            llc_miss_rate: 0.0,
        }));
        let jsonl = j.to_jsonl();
        assert!(jsonl.contains("\"power_watts\":null"), "{jsonl}");
        assert!(jsonl.contains("\"effective_freq_ghz\":null"), "{jsonl}");
    }

    #[test]
    fn chrome_trace_has_tracks_and_events() {
        let mut j = Journal::with_capacity(8);
        j.advance(0.5);
        j.push_span(Scope::Timestep, "step:1", 0.0, None, vec![("dt", 0.5)]);
        let trace = j.to_chrome_trace();
        assert!(trace.starts_with("{\"displayTimeUnit\":\"ms\""), "{trace}");
        assert!(trace.contains("\"schema_version\":8"), "{trace}");
        assert!(trace.contains("\"thread_name\""), "{trace}");
        assert!(
            trace.contains("\"ph\":\"X\",\"name\":\"step:1\""),
            "{trace}"
        );
        assert!(trace.contains("\"dur\":500000"), "{trace}");
        assert!(trace.ends_with("]}\n"), "{trace}");
    }

    #[test]
    fn clock_advances_only_on_advance() {
        let mut j = Journal::with_capacity(4);
        assert_eq!(j.now(), 0.0);
        j.push_span(Scope::Study, "s", j.now(), None, Vec::new());
        assert_eq!(j.now(), 0.0);
        j.advance(0.25);
        assert_eq!(j.now(), 0.25);
    }
}
