//! Performance counters and the paper's derived metrics (§V-B).
//!
//! The counter bank mirrors what the study samples: APERF/MPERF for the
//! effective frequency, fixed counters for instructions retired and
//! unhalted reference cycles, and two programmable counters configured
//! for last-level-cache references and misses. Counters are 48 bits wide
//! and wrap, as on real Intel parts.

use crate::msr::{addr, MsrFile};
use serde::{Deserialize, Serialize};

/// Width mask for performance counters (48 bits on Broadwell).
const CTR_MASK: u64 = (1 << 48) - 1;

/// The per-package counter bank.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct CounterBank {
    pub aperf: u64,
    pub mperf: u64,
    /// INST_RETIRED.ANY.
    pub inst_retired: u64,
    /// CPU_CLK_UNHALTED.REF_TSC.
    pub ref_tsc: u64,
    /// LONGEST_LAT_CACHE.REFERENCE.
    pub llc_ref: u64,
    /// LONGEST_LAT_CACHE.MISS.
    pub llc_miss: u64,
}

impl CounterBank {
    /// Advance the counters for `dt` seconds of execution at actual
    /// frequency `f_ghz` on `cores` cores, retiring instructions and LLC
    /// events at the given rates (events/second, package-aggregate).
    #[allow(clippy::too_many_arguments)]
    pub fn advance(
        &mut self,
        dt: f64,
        f_ghz: f64,
        base_ghz: f64,
        cores: u32,
        inst_per_sec: f64,
        llc_ref_per_sec: f64,
        llc_miss_per_sec: f64,
    ) {
        let cores = cores as f64;
        let add = |ctr: &mut u64, amount: f64| {
            *ctr = (*ctr + amount.round() as u64) & CTR_MASK;
        };
        add(&mut self.aperf, f_ghz * 1e9 * dt * cores);
        add(&mut self.mperf, base_ghz * 1e9 * dt * cores);
        add(&mut self.ref_tsc, base_ghz * 1e9 * dt * cores);
        add(&mut self.inst_retired, inst_per_sec * dt);
        add(&mut self.llc_ref, llc_ref_per_sec * dt);
        add(&mut self.llc_miss, llc_miss_per_sec * dt);
    }

    /// Publish the bank into the MSR file (hardware side).
    pub fn sync_to_msr(&self, msr: &mut MsrFile) {
        msr.hw_set(addr::IA32_APERF, self.aperf);
        msr.hw_set(addr::IA32_MPERF, self.mperf);
        msr.hw_set(addr::IA32_FIXED_CTR0, self.inst_retired);
        msr.hw_set(addr::IA32_FIXED_CTR2, self.ref_tsc);
        msr.hw_set(addr::IA32_PMC0, self.llc_ref);
        msr.hw_set(addr::IA32_PMC1, self.llc_miss);
    }

    /// Wrap-aware counter delta.
    pub fn delta(before: u64, after: u64) -> u64 {
        if after >= before {
            after - before
        } else {
            after + (CTR_MASK + 1) - before
        }
    }
}

/// Derived metrics exactly as §V-B defines them.
pub mod derived {
    /// Effective CPU frequency = base × APERF / MPERF.
    pub fn effective_frequency_ghz(base_ghz: f64, d_aperf: u64, d_mperf: u64) -> f64 {
        if d_mperf == 0 {
            return 0.0;
        }
        base_ghz * d_aperf as f64 / d_mperf as f64
    }

    /// Instructions per cycle = INST_RETIRED.ANY / CPU_CLK_UNHALT.REF_TSC.
    ///
    /// Both counters are package aggregates (instructions summed over
    /// cores; reference cycles tick at the base clock on every unhalted
    /// core), so the ratio is the average per-core IPC — the quantity the
    /// paper plots in Fig. 2b.
    pub fn ipc(d_inst: u64, d_ref_tsc: u64) -> f64 {
        if d_ref_tsc == 0 {
            return 0.0;
        }
        d_inst as f64 / d_ref_tsc as f64
    }

    /// LLC miss rate = LONG_LAT_CACHE.MISS / LONG_LAT_CACHE.REF.
    pub fn llc_miss_rate(d_miss: u64, d_ref: u64) -> f64 {
        if d_ref == 0 {
            return 0.0;
        }
        d_miss as f64 / d_ref as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advance_accumulates_rates() {
        let mut c = CounterBank::default();
        c.advance(0.1, 2.6, 2.1, 18, 1e9, 1e8, 2e7);
        assert_eq!(c.aperf, (2.6e9f64 * 0.1 * 18.0).round() as u64);
        assert_eq!(c.mperf, (2.1e9f64 * 0.1 * 18.0).round() as u64);
        assert_eq!(c.inst_retired, 100_000_000);
        assert_eq!(c.llc_ref, 10_000_000);
        assert_eq!(c.llc_miss, 2_000_000);
    }

    #[test]
    fn counters_wrap_at_48_bits() {
        let mut c = CounterBank {
            aperf: CTR_MASK - 10,
            ..Default::default()
        };
        c.advance(1e-9, 50.0, 2.1, 1, 0.0, 0.0, 0.0);
        assert!(c.aperf < 1 << 48);
        assert!(c.aperf < CTR_MASK - 10, "must have wrapped");
        // Delta still recovers the true increment.
        let d = CounterBank::delta(CTR_MASK - 10, c.aperf);
        assert_eq!(d, 50);
    }

    #[test]
    fn effective_frequency_from_aperf_mperf() {
        // Running at 2.6 of base 2.1: APERF/MPERF = 2.6/2.1.
        let f = derived::effective_frequency_ghz(2.1, 26_000, 21_000);
        assert!((f - 2.6).abs() < 1e-9);
        assert_eq!(derived::effective_frequency_ghz(2.1, 5, 0), 0.0);
    }

    #[test]
    fn ipc_is_per_core_average() {
        // 18 cores each with 2.1e9 reference cycles retiring 1 IPC.
        let d_ref = (2.1e9 * 18.0) as u64;
        let d_inst = (2.1e9 * 18.0) as u64;
        assert!((derived::ipc(d_inst, d_ref) - 1.0).abs() < 1e-9);
        assert_eq!(derived::ipc(5, 0), 0.0);
    }

    #[test]
    fn miss_rate_bounds() {
        assert_eq!(derived::llc_miss_rate(0, 0), 0.0);
        assert!((derived::llc_miss_rate(25, 100) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn sync_publishes_to_msr() {
        let mut c = CounterBank::default();
        c.advance(0.1, 2.0, 2.1, 4, 1e9, 0.0, 0.0);
        let mut msr = MsrFile::new();
        c.sync_to_msr(&mut msr);
        assert_eq!(msr.read(addr::IA32_APERF).unwrap(), c.aperf);
        assert_eq!(msr.read(addr::IA32_FIXED_CTR0).unwrap(), c.inst_retired);
    }
}
