//! # powersim — the simulated power-capped processor
//!
//! The paper measures its 288 configurations on a dual-socket Intel Xeon
//! E5-2695 v4 (Broadwell) node whose processors are power-capped through
//! Intel RAPL via LLNL's `msr-safe` driver, sampling energy and
//! performance counters every 100 ms. None of that hardware is available
//! here, so this crate implements the machine:
//!
//! * [`msr`] — a model-specific-register file with `msr-safe`-style
//!   allow-listing, including `MSR_PKG_ENERGY_STATUS` with its real
//!   32-bit wrapping semantics and energy units.
//! * [`cpu`] — the package model: V/f curve, DVFS ladder, turbo, and the
//!   analytic power model `P = P_uncore + P_leak(V) + Σcores c·V²f·α`.
//! * [`rapl`] — the running-average power limiter that picks the highest
//!   frequency whose predicted window power fits under the cap (this is
//!   the mechanism that makes compute-bound workloads slow down under a
//!   cap while memory-bound ones don't).
//! * [`timing`] — a roofline-style execution-time model: core time
//!   scales with 1/f, memory time does not.
//! * [`workload`] — the input format: phases with measured instruction /
//!   flop / cache-traffic counts (produced by instrumenting the *real*
//!   algorithm executions in `vizalgo`).
//! * [`counters`] — APERF/MPERF, fixed and programmable counters, with
//!   the paper's derived metrics (§V-B).
//! * [`exec`] — the executor: advances virtual time through a workload
//!   under a cap, updating MSRs/counters, and the 100 ms sampler.
//! * [`trace`] — the run journal: typed `Span`/`Counter`/`CapChange`
//!   events in a ring buffer, serialized to JSONL and chrome://tracing
//!   files (schema in `docs/OBSERVABILITY.md`).
//!
//! Everything is deterministic; the only "measurement" the rest of the
//! workspace performs is reading these simulated counters exactly the way
//! the paper reads the real ones.

pub mod counters;
pub mod cpu;
pub mod exec;
pub mod msr;
pub mod node;
pub mod rapl;
pub mod timing;
pub mod trace;
pub mod units;
pub mod workload;

pub use cpu::CpuSpec;
pub use exec::{ExecResult, Package, RunState, Sample};
pub use msr::{MsrError, MsrFile};
pub use node::{Node, NodeResult};
pub use rapl::PowerLimiter;
pub use trace::{
    CacheEvent, CapChange, CounterSample, Event, Journal, PolicyDecision, Scope, ServiceRequest,
    Span,
};
pub use units::{Joules, Watts};
pub use workload::{KernelPhase, Workload};
