//! Property-based tests for the simulated processor.

use powersim::cpu::CpuSpec;
use powersim::msr::{addr, MsrFile};
use powersim::rapl::PowerLimiter;
use powersim::timing::{memory_time, phase_time};
use powersim::units::{Joules, Watts};
use powersim::{KernelPhase, Package, Workload};
use proptest::prelude::*;

fn phase_strategy() -> impl Strategy<Value = KernelPhase> {
    (
        1_000_000u64..5_000_000_000,
        0.3f64..2.8,
        0.05f64..1.0,
        0u64..100_000_000,
        0.0f64..1.0,
        0u64..50_000_000_000,
    )
        .prop_map(|(instr, cpi, act, refs, miss, bytes)| KernelPhase {
            name: "p".into(),
            instructions: instr,
            cpi_core: cpi,
            activity: act,
            llc_refs: refs,
            llc_miss_rate: miss,
            dram_bytes: bytes,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Power is monotone in frequency and activity for every spec.
    #[test]
    fn power_monotone(f1 in 0.8f64..2.5, df in 0.01f64..0.5, a in 0.0f64..1.0, da in 0.01f64..0.4) {
        for spec in [
            CpuSpec::broadwell_e5_2695v4(),
            CpuSpec::skylake_8160_like(),
            CpuSpec::lowpower_d_like(),
        ] {
            prop_assert!(spec.power(f1 + df, a) > spec.power(f1, a));
            prop_assert!(spec.power(f1, a + da) > spec.power(f1, a));
        }
    }

    /// The frequency solver respects its cap whenever any ladder
    /// frequency fits, and is monotone in the cap.
    #[test]
    fn solver_respects_cap(cap in 40.0f64..120.0, act in 0.05f64..1.0) {
        let spec = CpuSpec::broadwell_e5_2695v4();
        let cap = Watts(cap);
        let f = spec.solve_frequency(cap, act);
        prop_assert!(f >= spec.min_ghz - 1e-9 && f <= spec.turbo_ghz + 1e-9);
        if spec.power(spec.min_ghz, act) <= cap {
            prop_assert!(spec.power(f, act) <= cap + Watts(1e-9));
        }
        let f_higher = spec.solve_frequency(cap + Watts(10.0), act);
        prop_assert!(f_higher >= f - 1e-9);
    }

    /// Phase time is monotone non-increasing in frequency and never
    /// below either roofline component.
    #[test]
    fn phase_time_monotone_in_frequency(phase in phase_strategy(), f in 0.8f64..2.5) {
        let spec = CpuSpec::broadwell_e5_2695v4();
        let t_slow = phase_time(&spec, &phase, f);
        let t_fast = phase_time(&spec, &phase, f + 0.1);
        prop_assert!(t_fast <= t_slow + 1e-15);
        prop_assert!(t_slow >= memory_time(&spec, &phase) * 0.999);
    }

    /// Executing any workload under a lower cap never takes less time,
    /// and the average power never exceeds the cap by more than rounding.
    #[test]
    fn execution_monotone_in_cap(phase in phase_strategy()) {
        let workload = Workload::new("w").with_phase(phase);
        let hi = Package::broadwell().run_capped(&workload, Watts(120.0));
        let lo = Package::broadwell().run_capped(&workload, Watts(40.0));
        prop_assert!(lo.seconds >= hi.seconds * 0.999_999);
        // RAPL cannot throttle below the lowest P-state; at minimum
        // frequency with saturated DRAM bandwidth the package can exceed
        // a 40 W cap by a couple of watts, as real parts do.
        prop_assert!(lo.avg_power_watts <= 43.5, "P = {}", lo.avg_power_watts);
        prop_assert!(hi.seconds > 0.0 && hi.energy_joules > 0.0);
    }

    /// Energy accounting: avg power × time ≈ energy, and the wrapping
    /// MSR counter agrees with the float accumulation.
    #[test]
    fn energy_accounting_consistent(phase in phase_strategy(), cap in 45.0f64..120.0) {
        let workload = Workload::new("w").with_phase(phase);
        let mut pkg = Package::broadwell();
        let r = pkg.run_capped(&workload, Watts(cap));
        let pt = r.avg_power_watts.for_duration(r.seconds);
        prop_assert!((pt - r.energy_joules).abs() < 1e-6 * r.energy_joules.value().max(1.0));
    }

    /// The power-limit MSR round-trips any cap in range through the
    /// allowlisted interface.
    #[test]
    fn power_limit_msr_round_trip(cap in 40.0f64..120.0) {
        let spec = CpuSpec::broadwell_e5_2695v4();
        let mut msr = MsrFile::new();
        PowerLimiter::set_cap(&mut msr, &spec, Watts(cap)).unwrap();
        let got = PowerLimiter::get_cap(&msr).unwrap();
        prop_assert!((got - Watts(cap)).abs() <= 0.125, "{cap} -> {got}");
    }

    /// Energy-status deltas recover the accumulated energy through at
    /// most one wrap.
    #[test]
    fn energy_status_wrap_delta(start in 0u64..0xFFFF_FFFF, joules in 0.001f64..100.0) {
        let mut msr = MsrFile::new();
        msr.hw_set(addr::MSR_PKG_ENERGY_STATUS, start);
        let before = msr.read(addr::MSR_PKG_ENERGY_STATUS).unwrap();
        msr.hw_accumulate_energy(Joules(joules));
        let after = msr.read(addr::MSR_PKG_ENERGY_STATUS).unwrap();
        let delta = msr.energy_delta_joules(before, after);
        let unit = msr.energy_unit_joules();
        prop_assert!((delta - Joules(joules)).abs() <= unit, "{joules} vs {delta}");
    }
}
