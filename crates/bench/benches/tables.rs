//! One bench per table of the paper: the cost of regenerating Table I,
//! Table II, and Table III (characterization + the nine-cap simulated
//! sweep per algorithm) from already-measured native runs.

use criterion::{criterion_group, criterion_main, Criterion};
use powersim::CpuSpec;
use std::hint::black_box;
use vizalgo::Algorithm;
use vizpower::study::{dataset_for, native_run, sweep, AlgorithmRun, StudyConfig, PAPER_CAPS};

fn quick_config() -> StudyConfig {
    StudyConfig {
        caps: PAPER_CAPS.to_vec(),
        isovalues: 5,
        render_px: 16,
        cameras: 2,
        particles: 50,
        advect_steps: 60,
    }
}

fn runs_at(size: usize) -> Vec<AlgorithmRun> {
    let config = quick_config();
    let ds = dataset_for(size);
    Algorithm::ALL
        .iter()
        .map(|&a| native_run(&config, a, size, &ds))
        .collect()
}

fn bench_tables(c: &mut Criterion) {
    let spec = CpuSpec::broadwell_e5_2695v4();

    // Table I: contour alone across the nine caps.
    let contour = {
        let config = quick_config();
        let ds = dataset_for(16);
        native_run(&config, Algorithm::Contour, 16, &ds)
    };
    c.bench_function("table1_contour_sweep", |b| {
        b.iter(|| black_box(sweep(&contour, &PAPER_CAPS, &spec)))
    });

    // Table II: all eight algorithms at the "128³" role size.
    let t2_runs = runs_at(16);
    c.bench_function("table2_all_algorithms_sweep", |b| {
        b.iter(|| {
            for run in &t2_runs {
                black_box(sweep(run, &PAPER_CAPS, &spec));
            }
        })
    });

    // Table III: all eight at the larger role size.
    let t3_runs = runs_at(24);
    c.bench_function("table3_all_algorithms_sweep", |b| {
        b.iter(|| {
            for run in &t3_runs {
                black_box(sweep(run, &PAPER_CAPS, &spec));
            }
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_tables
}
criterion_main!(benches);
