//! One bench per figure family of the paper: the cost of regenerating
//! the Fig. 2 metric series, the Fig. 3 efficiency rates, and the
//! Fig. 4/5/6 size sweeps.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vizalgo::Algorithm;
use vizpower::experiments::{fig2, fig3, fig_size_ipc, FigMetric};
use vizpower::study::{StudyConfig, StudyContext, PAPER_CAPS};

fn quick_context() -> StudyContext {
    StudyContext::new(StudyConfig {
        caps: PAPER_CAPS.to_vec(),
        isovalues: 5,
        render_px: 16,
        cameras: 2,
        particles: 50,
        advect_steps: 60,
    })
}

fn bench_figures(c: &mut Criterion) {
    // Warm the caches once so the benches measure series generation, not
    // the one-off native runs.
    let mut ctx = quick_context();
    for a in Algorithm::ALL {
        ctx.run(a, 16);
    }
    for n in [8, 12, 16] {
        ctx.run(Algorithm::Slice, n);
        ctx.run(Algorithm::VolumeRendering, n);
        ctx.run(Algorithm::ParticleAdvection, n);
    }

    c.bench_function("fig2a_effective_frequency", |b| {
        b.iter(|| black_box(fig2(&mut ctx, 16, FigMetric::EffectiveFrequency)))
    });
    c.bench_function("fig2b_ipc", |b| {
        b.iter(|| black_box(fig2(&mut ctx, 16, FigMetric::Ipc)))
    });
    c.bench_function("fig2c_llc_miss_rate", |b| {
        b.iter(|| black_box(fig2(&mut ctx, 16, FigMetric::LlcMissRate)))
    });
    c.bench_function("fig3_elements_per_second", |b| {
        b.iter(|| black_box(fig3(&mut ctx, 16)))
    });
    c.bench_function("fig4_slice_ipc_by_size", |b| {
        b.iter(|| black_box(fig_size_ipc(&mut ctx, Algorithm::Slice, &[8, 12, 16])))
    });
    c.bench_function("fig5_volren_ipc_by_size", |b| {
        b.iter(|| {
            black_box(fig_size_ipc(
                &mut ctx,
                Algorithm::VolumeRendering,
                &[8, 12, 16],
            ))
        })
    });
    c.bench_function("fig6_advection_ipc_by_size", |b| {
        b.iter(|| {
            black_box(fig_size_ipc(
                &mut ctx,
                Algorithm::ParticleAdvection,
                &[8, 12, 16],
            ))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_figures
}
criterion_main!(benches);
