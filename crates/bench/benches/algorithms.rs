//! Native-execution throughput of the eight visualization algorithms
//! (the measured side of the study: real kernels over real CloverLeaf
//! data).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use powersim::Watts;
use std::hint::black_box;
use vizalgo::Algorithm;
use vizpower::study::{dataset_for, StudyConfig};

fn bench_algorithms(c: &mut Criterion) {
    let config = StudyConfig {
        caps: vec![Watts(120.0)],
        isovalues: 10,
        render_px: 32,
        cameras: 4,
        particles: 200,
        advect_steps: 200,
    };
    let ds = dataset_for(16);
    let mut group = c.benchmark_group("native");
    group.sample_size(10);
    for algorithm in Algorithm::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(algorithm.name()),
            &algorithm,
            |b, &alg| {
                b.iter(|| {
                    let filter = config.spec(alg).build(&ds);
                    black_box(filter.execute(&ds))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_algorithms);
criterion_main!(benches);
