//! Microbenchmarks of the substrate systems: the hydro solver, the
//! marching-cubes core, BVH construction, tetrahedral clipping, RK4
//! advection steps, and the simulated-processor executor.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cloverleaf::{Problem, SimConfig, Simulation};
use powersim::{KernelPhase, Package, Watts, Workload};
use vizalgo::contour::{marching_cubes, triangle_table};
use vizalgo::raytrace::{external_face_triangles, Bvh};
use vizalgo::tetclip::{clip_keep_above, TetMesh, HEX_TO_TETS};
use vizmesh::{Association, DataSet, Field, UniformGrid, Vec3};

fn sphere_dataset(n: usize) -> DataSet {
    let grid = UniformGrid::cube_cells(n);
    let c = grid.bounds().center();
    let vals: Vec<f64> = (0..grid.num_points())
        .map(|p| grid.point_coord_id(p).distance(c))
        .collect();
    DataSet::uniform(grid).with_field(Field::scalar("f", Association::Points, vals))
}

fn bench_substrates(c: &mut Criterion) {
    // Hydro: one full time step at 24³.
    c.bench_function("cloverleaf_step_24", |b| {
        let mut sim = Simulation::new(Problem::TwoState, 24, SimConfig::default());
        b.iter(|| black_box(sim.step()))
    });

    // Marching cubes: one isovalue pass over 24³.
    let ds = sphere_dataset(24);
    let grid = ds.as_uniform().unwrap().clone();
    let vals: Vec<f64> = ds.point_scalars("f").unwrap().to_vec();
    triangle_table(); // exclude one-time table generation
    c.bench_function("marching_cubes_24", |b| {
        b.iter(|| black_box(marching_cubes(&grid, &vals, 0.35)))
    });

    // BVH build over the external faces of 24³.
    let (tris, _) = external_face_triangles(&ds, "f");
    c.bench_function("bvh_build_ext_faces_24", |b| {
        b.iter(|| black_box(Bvh::build(&tris)))
    });

    // Tetrahedral clipping of a decomposed 12³ block.
    c.bench_function("tetclip_block_12", |b| {
        b.iter(|| {
            let grid = UniformGrid::cube_cells(12);
            let center = grid.bounds().center();
            let mut mesh = TetMesh::new();
            let ids: Vec<u32> = (0..grid.num_points())
                .map(|p| {
                    let q = grid.point_coord_id(p);
                    mesh.add_point(q, q.distance(center) - 0.35)
                })
                .collect();
            let mut tets = Vec::new();
            for cell in 0..grid.num_cells() {
                let corners = grid.cell_point_ids(cell);
                for t in HEX_TO_TETS {
                    tets.push([
                        ids[corners[t[0]]],
                        ids[corners[t[1]]],
                        ids[corners[t[2]]],
                        ids[corners[t[3]]],
                    ]);
                }
            }
            black_box(clip_keep_above(&mut mesh, &tets, 0.0))
        })
    });

    // RK4 advection through a rotating flow.
    let grid = UniformGrid::cube_cells(16);
    let center = grid.bounds().center();
    let vel: Vec<Vec3> = (0..grid.num_points())
        .map(|p| {
            let q = grid.point_coord_id(p) - center;
            Vec3::new(-q.y, q.x, 0.05)
        })
        .collect();
    let flow =
        DataSet::uniform(grid).with_field(Field::vector("velocity", Association::Points, vel));
    c.bench_function("rk4_advection_100x100", |b| {
        let adv = vizalgo::ParticleAdvection::new("velocity", 100, 100, 1e-3, 7);
        b.iter(|| black_box(vizalgo::Filter::execute(&adv, &flow)))
    });

    // Simulated processor: a mixed workload under a 70 W cap.
    let workload = Workload::new("mixed")
        .with_phase(KernelPhase::compute("hot", 50_000_000_000))
        .with_phase(KernelPhase::memory("cold", 5_000_000_000, 100_000_000_000));
    c.bench_function("powersim_run_capped_70w", |b| {
        b.iter(|| {
            let mut pkg = Package::broadwell();
            black_box(pkg.run_capped(&workload, Watts(70.0)))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_substrates
}
criterion_main!(benches);
