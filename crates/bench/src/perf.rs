//! `reproduce bench`: the kernel performance baseline.
//!
//! One row per algorithm × grid size: *measured* wall-clock time and
//! throughput of the native Rust kernels on this machine, plus the
//! *simulated* time/energy of the same run under the default power cap.
//! The committed `BENCH_<date>.json` snapshots give the raw-speed perf
//! pass (ROADMAP: "bench first, then attack") a visible before/after,
//! and `cargo xtask analyze` supplies the matching worklist.

use std::time::Instant;

use powersim::trace::{Journal, Scope};
use powersim::{CpuSpec, Watts};
use vizalgo::{Algorithm, Backend, PrimitiveReport};
use vizmesh::DataSet;
use vizpower::study::{self, StudyContext, PAPER_CAPS};

/// One benchmark measurement.
#[derive(Debug, Clone)]
pub struct BenchRow {
    /// Registry display name ("Contour", "Spherical Clip", ...).
    pub algorithm: &'static str,
    /// Execution backend the row ran on (`traditional` or `dpp`).
    pub backend: &'static str,
    /// Backend-tagged spec fingerprint of the executed plan
    /// (`AlgorithmSpec::fingerprint_with`).
    pub fingerprint: u64,
    /// Grid edge length (the dataset is `size`³ cells).
    pub size: usize,
    pub input_cells: usize,
    /// Measured wall-clock seconds of `spec.build` + `filter.execute`.
    pub wall_seconds: f64,
    /// `input_cells / wall_seconds`.
    pub cells_per_second: f64,
    /// Output geometry cells, for filters that extract geometry.
    pub output_cells: Option<usize>,
    /// `output_cells / wall_seconds` where the output cells are
    /// triangles (contour, slice).
    pub triangles_per_second: Option<f64>,
    /// Simulated seconds under the default cap (the power model's view
    /// of the same run on the paper's Broadwell node).
    pub sim_seconds: f64,
    /// Simulated package energy under the default cap.
    pub sim_joules: f64,
    /// Simulated instructions per reference cycle under the default cap
    /// — the counter the Bethel-style backend comparison contrasts
    /// between formulations.
    pub sim_ipc: f64,
    /// Simulated LLC miss rate (misses/references) under the default cap.
    pub sim_llc_miss_rate: f64,
}

/// Execute every algorithm at every size, timing the native kernels and
/// simulating the default-cap execution. Datasets come from `ctx`'s
/// cache so dataset synthesis (the hydro run) is not timed; the filter
/// build + execute is re-run fresh here, not taken from the run cache.
///
/// When `ctx`'s journal is enabled, each (algorithm, size) row emits a
/// [`Scope::Bench`] span (`bench:<name>:<size>`) whose args carry the
/// measured wall time, so bench runs are observable in the same journal
/// and chrome trace as everything else (see docs/OBSERVABILITY.md).
pub fn bench(ctx: &mut StudyContext, sizes: &[usize]) -> Vec<BenchRow> {
    bench_with(ctx, sizes, &[Backend::Traditional], None)
}

/// [`bench`] over an explicit backend list and (optionally) an algorithm
/// subset: the traditional-vs-DPP comparison driver. Backends that have
/// no formulation of an algorithm ([`Backend::supports`]) are skipped,
/// so `--backend both` still yields exactly one traditional row for the
/// four DPP-less algorithms. DPP rows additionally journal one schema-v6
/// [`Scope::Primitive`] span per primitive op the execution invoked.
pub fn bench_with(
    ctx: &mut StudyContext,
    sizes: &[usize],
    backends: &[Backend],
    algorithms: Option<&[Algorithm]>,
) -> Vec<BenchRow> {
    let cpu = CpuSpec::broadwell_e5_2695v4();
    let default_cap = [PAPER_CAPS[0]];
    let mut rows = Vec::with_capacity(sizes.len() * Algorithm::ALL.len() * backends.len());
    for &size in sizes {
        let dataset = ctx.dataset(size);
        for algorithm in Algorithm::ALL {
            if let Some(subset) = algorithms {
                if !subset.contains(&algorithm) {
                    continue;
                }
            }
            for &backend in backends {
                if !backend.supports(algorithm) {
                    continue;
                }
                rows.push(bench_row(
                    ctx,
                    &dataset,
                    algorithm,
                    backend,
                    size,
                    &default_cap,
                    &cpu,
                ));
            }
        }
    }
    rows
}

/// Time + simulate one (algorithm, backend, size) row.
fn bench_row(
    ctx: &mut StudyContext,
    dataset: &DataSet,
    algorithm: Algorithm,
    backend: Backend,
    size: usize,
    default_cap: &[Watts],
    cpu: &CpuSpec,
) -> BenchRow {
    let spec = ctx.config().spec(algorithm);
    let t0 = ctx.journal.now();
    let start = Instant::now();
    let filter = spec.build_with(backend, dataset);
    let out = filter.execute(dataset);
    let wall_seconds = start.elapsed().as_secs_f64().max(1e-9);
    eprintln!(
        "bench: {:<20} {:<11} {size:>4}  {wall_seconds:>10.4} s",
        algorithm.name(),
        backend.name()
    );
    let input_cells = dataset.num_cells();
    let output_cells = out.dataset.as_ref().map(|d| d.num_cells());
    let triangles_per_second = match algorithm {
        Algorithm::Contour | Algorithm::Slice => output_cells.map(|n| n as f64 / wall_seconds),
        _ => None,
    };
    let fingerprint = spec.fingerprint_with(backend);
    let run = study::AlgorithmRun {
        algorithm,
        size,
        input_cells,
        spec,
        reports: out.kernels,
    };
    let sweep = study::sweep(&run, default_cap, cpu);
    let (sim_seconds, sim_joules, sim_ipc, sim_llc_miss_rate) = sweep
        .baseline()
        .map(|r| {
            (
                r.seconds,
                r.energy_joules.value(),
                r.avg_ipc,
                r.avg_llc_miss_rate,
            )
        })
        .unwrap_or((0.0, 0.0, 0.0, 0.0));
    if ctx.journal.is_enabled() {
        let name = match backend {
            Backend::Traditional => format!("bench:{}:{size}", algorithm.name()),
            Backend::Dpp => format!("bench:dpp:{}:{size}", algorithm.name()),
        };
        ctx.journal.push_span(
            Scope::Bench,
            name,
            t0,
            None,
            vec![
                ("input_cells", input_cells as f64),
                ("wall_seconds", wall_seconds),
                ("sim_seconds", sim_seconds),
                ("spec_fp", fingerprint as f64),
            ],
        );
        for r in &out.primitives {
            journal_primitive(&mut ctx.journal, r);
        }
    }
    BenchRow {
        algorithm: algorithm.name(),
        backend: backend.name(),
        fingerprint,
        size,
        input_cells,
        wall_seconds,
        cells_per_second: input_cells as f64 / wall_seconds,
        output_cells,
        triangles_per_second,
        sim_seconds,
        sim_joules,
        sim_ipc,
        sim_llc_miss_rate,
    }
}

/// One zero-width schema-v6 `Primitive` span carrying a DPP op's
/// element/byte/flop counters.
fn journal_primitive(journal: &mut Journal, r: &PrimitiveReport) {
    let t = journal.now();
    journal.push_span(
        Scope::Primitive,
        format!("primitive:{}", r.op.name()),
        t,
        None,
        vec![
            ("invocations", r.counters.invocations as f64),
            ("elements", r.counters.elements as f64),
            ("bytes_read", r.counters.bytes_read as f64),
            ("bytes_written", r.counters.bytes_written as f64),
            ("flops", r.counters.flops as f64),
        ],
    );
}

/// Human-readable table for stdout.
pub fn render_table(rows: &[BenchRow]) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "{:<20} {:<11} {:>5} {:>12} {:>10} {:>12} {:>12} {:>9} {:>9} {:>7} {:>7}\n",
        "algorithm",
        "backend",
        "size",
        "cells",
        "wall s",
        "cells/s",
        "tri/s",
        "sim s",
        "sim J",
        "IPC",
        "LLC"
    ));
    for r in rows {
        let tri = r
            .triangles_per_second
            .map_or("-".to_string(), |t| format!("{t:.3e}"));
        s.push_str(&format!(
            "{:<20} {:<11} {:>5} {:>12} {:>10.4} {:>12.3e} {:>12} {:>9.3} {:>9.1} {:>7.3} {:>7.4}\n",
            r.algorithm,
            r.backend,
            r.size,
            r.input_cells,
            r.wall_seconds,
            r.cells_per_second,
            tri,
            r.sim_seconds,
            r.sim_joules,
            r.sim_ipc,
            r.sim_llc_miss_rate
        ));
    }
    s
}

/// Machine-readable report (schema 2). Hand-written: the workspace's
/// serde stubs cannot serialize, and the report must stay buildable in
/// the offline stub environment. Schema 1 → 2 added the per-row
/// `backend`, `sim_ipc`, and `sim_llc_miss_rate` fields for the
/// traditional-vs-DPP comparison snapshots.
pub fn to_json(rows: &[BenchRow], fidelity: &str, provenance: &str) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": 2,\n");
    s.push_str("  \"tool\": \"reproduce-bench\",\n");
    s.push_str(&format!("  \"fidelity\": \"{fidelity}\",\n"));
    s.push_str(&format!(
        "  \"default_cap_watts\": {:.1},\n",
        PAPER_CAPS[0].value()
    ));
    s.push_str(&format!("  \"provenance\": \"{provenance}\",\n"));
    s.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str("    {");
        s.push_str(&format!("\"algorithm\": \"{}\", ", r.algorithm));
        s.push_str(&format!("\"backend\": \"{}\", ", r.backend));
        s.push_str(&format!("\"fingerprint\": \"{:016x}\", ", r.fingerprint));
        s.push_str(&format!("\"size\": {}, ", r.size));
        s.push_str(&format!("\"input_cells\": {}, ", r.input_cells));
        s.push_str(&format!("\"wall_seconds\": {:.6}, ", r.wall_seconds));
        s.push_str(&format!(
            "\"cells_per_second\": {:.1}, ",
            r.cells_per_second
        ));
        match r.output_cells {
            Some(n) => s.push_str(&format!("\"output_cells\": {n}, ")),
            None => s.push_str("\"output_cells\": null, "),
        }
        match r.triangles_per_second {
            Some(t) => s.push_str(&format!("\"triangles_per_second\": {t:.1}, ")),
            None => s.push_str("\"triangles_per_second\": null, "),
        }
        s.push_str(&format!("\"sim_seconds\": {:.6}, ", r.sim_seconds));
        s.push_str(&format!("\"sim_joules\": {:.3}, ", r.sim_joules));
        s.push_str(&format!("\"sim_ipc\": {:.4}, ", r.sim_ipc));
        s.push_str(&format!(
            "\"sim_llc_miss_rate\": {:.5}",
            r.sim_llc_miss_rate
        ));
        s.push_str(if i + 1 == rows.len() { "}\n" } else { "},\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use vizpower::study::StudyConfig;

    #[test]
    fn bench_produces_one_row_per_algorithm_and_size() {
        let mut ctx = StudyContext::new(StudyConfig::quick());
        let rows = bench(&mut ctx, &[8]);
        assert_eq!(rows.len(), Algorithm::ALL.len());
        for r in &rows {
            assert!(r.wall_seconds > 0.0);
            assert!(r.cells_per_second > 0.0);
            assert!(r.sim_seconds > 0.0, "{} simulated no time", r.algorithm);
            assert!(r.sim_joules > 0.0, "{} simulated no energy", r.algorithm);
        }
        let contour = rows.iter().find(|r| r.algorithm == "Contour").unwrap();
        assert!(contour.triangles_per_second.is_some());
        let ray = rows.iter().find(|r| r.algorithm == "Ray Tracing");
        if let Some(ray) = ray {
            assert!(ray.triangles_per_second.is_none());
        }
    }

    #[test]
    fn bench_journals_one_span_per_row() {
        use powersim::trace::Event;
        let mut ctx = StudyContext::new(StudyConfig::quick());
        ctx.enable_journal(1 << 14);
        let rows = bench(&mut ctx, &[8]);
        let spans: Vec<&str> = ctx
            .journal
            .events()
            .filter_map(|e| match e {
                Event::Span(s) if s.scope == Scope::Bench => Some(s.name.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(spans.len(), rows.len(), "one Bench span per row");
        assert!(spans.contains(&"bench:Contour:8"));
    }

    #[test]
    fn json_report_is_shaped_and_complete() {
        let mut ctx = StudyContext::new(StudyConfig::quick());
        let rows = bench(&mut ctx, &[8]);
        let json = to_json(&rows, "quick", "test");
        assert!(json.starts_with("{\n  \"schema\": 2,\n"));
        assert_eq!(json.matches("\"algorithm\":").count(), rows.len());
        assert_eq!(
            json.matches("\"backend\": \"traditional\"").count(),
            rows.len()
        );
        assert!(json.contains("\"sim_ipc\":"));
        assert!(json.contains("\"sim_llc_miss_rate\":"));
        assert!(json.contains("\"triangles_per_second\": null"));
    }

    #[test]
    fn bench_with_dpp_adds_backend_rows_and_primitive_spans() {
        let mut ctx = StudyContext::new(StudyConfig::quick());
        ctx.enable_journal(1 << 14);
        let rows = bench_with(
            &mut ctx,
            &[8],
            &[Backend::Traditional, Backend::Dpp],
            Some(&[Algorithm::Contour, Algorithm::RayTracing]),
        );
        // Contour has both backends; ray tracing only traditional.
        assert_eq!(rows.len(), 3);
        let dpp: Vec<&BenchRow> = rows.iter().filter(|r| r.backend == "dpp").collect();
        assert_eq!(dpp.len(), 1);
        assert_eq!(dpp[0].algorithm, "Contour");
        assert!(dpp[0].sim_ipc > 0.0, "dpp row carries simulated IPC");
        assert!(dpp[0].sim_llc_miss_rate >= 0.0);
        let trad = rows
            .iter()
            .find(|r| r.backend == "traditional" && r.algorithm == "Contour");
        assert_ne!(
            dpp[0].fingerprint,
            trad.unwrap().fingerprint,
            "backend-tagged fingerprints differ"
        );
        let jsonl = ctx.journal.to_jsonl();
        assert!(jsonl.contains("bench:dpp:Contour:8"), "dpp bench span");
        assert!(
            jsonl.contains("bench:Contour:8"),
            "traditional span keeps its name"
        );
        assert!(jsonl.contains("primitive:map"), "primitive spans journaled");
    }
}
