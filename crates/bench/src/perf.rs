//! `reproduce bench`: the kernel performance baseline.
//!
//! One row per algorithm × grid size: *measured* wall-clock time and
//! throughput of the native Rust kernels on this machine, plus the
//! *simulated* time/energy of the same run under the default power cap.
//! The committed `BENCH_<date>.json` snapshots give the raw-speed perf
//! pass (ROADMAP: "bench first, then attack") a visible before/after,
//! and `cargo xtask analyze` supplies the matching worklist.

use std::time::Instant;

use powersim::trace::Scope;
use powersim::CpuSpec;
use vizalgo::Algorithm;
use vizpower::study::{self, StudyContext, PAPER_CAPS};

/// One benchmark measurement.
#[derive(Debug, Clone)]
pub struct BenchRow {
    /// Registry display name ("Contour", "Spherical Clip", ...).
    pub algorithm: &'static str,
    /// Canonical spec fingerprint of the executed plan.
    pub fingerprint: u64,
    /// Grid edge length (the dataset is `size`³ cells).
    pub size: usize,
    pub input_cells: usize,
    /// Measured wall-clock seconds of `spec.build` + `filter.execute`.
    pub wall_seconds: f64,
    /// `input_cells / wall_seconds`.
    pub cells_per_second: f64,
    /// Output geometry cells, for filters that extract geometry.
    pub output_cells: Option<usize>,
    /// `output_cells / wall_seconds` where the output cells are
    /// triangles (contour, slice).
    pub triangles_per_second: Option<f64>,
    /// Simulated seconds under the default cap (the power model's view
    /// of the same run on the paper's Broadwell node).
    pub sim_seconds: f64,
    /// Simulated package energy under the default cap.
    pub sim_joules: f64,
}

/// Execute every algorithm at every size, timing the native kernels and
/// simulating the default-cap execution. Datasets come from `ctx`'s
/// cache so dataset synthesis (the hydro run) is not timed; the filter
/// build + execute is re-run fresh here, not taken from the run cache.
///
/// When `ctx`'s journal is enabled, each (algorithm, size) row emits a
/// [`Scope::Bench`] span (`bench:<name>:<size>`) whose args carry the
/// measured wall time, so bench runs are observable in the same journal
/// and chrome trace as everything else (see docs/OBSERVABILITY.md).
pub fn bench(ctx: &mut StudyContext, sizes: &[usize]) -> Vec<BenchRow> {
    let config = ctx.config();
    let cpu = CpuSpec::broadwell_e5_2695v4();
    let default_cap = [PAPER_CAPS[0]];
    let mut rows = Vec::with_capacity(sizes.len() * Algorithm::ALL.len());
    for &size in sizes {
        let dataset = ctx.dataset(size);
        for algorithm in Algorithm::ALL {
            let spec = config.spec(algorithm);
            let t0 = ctx.journal.now();
            let start = Instant::now();
            let filter = spec.build(&dataset);
            let out = filter.execute(&dataset);
            let wall_seconds = start.elapsed().as_secs_f64().max(1e-9);
            eprintln!(
                "bench: {:<20} {size:>4}  {wall_seconds:>10.4} s",
                algorithm.name()
            );
            let input_cells = dataset.num_cells();
            let output_cells = out.dataset.as_ref().map(|d| d.num_cells());
            let triangles_per_second = match algorithm {
                Algorithm::Contour | Algorithm::Slice => {
                    output_cells.map(|n| n as f64 / wall_seconds)
                }
                _ => None,
            };
            let run = study::AlgorithmRun {
                algorithm,
                size,
                input_cells,
                spec,
                reports: out.kernels,
            };
            let sweep = study::sweep(&run, &default_cap, &cpu);
            let (sim_seconds, sim_joules) = sweep
                .baseline()
                .map(|r| (r.seconds, r.energy_joules.value()))
                .unwrap_or((0.0, 0.0));
            if ctx.journal.is_enabled() {
                ctx.journal.push_span(
                    Scope::Bench,
                    format!("bench:{}:{size}", run.algorithm.name()),
                    t0,
                    None,
                    vec![
                        ("input_cells", input_cells as f64),
                        ("wall_seconds", wall_seconds),
                        ("sim_seconds", sim_seconds),
                        ("spec_fp", run.spec.fingerprint() as f64),
                    ],
                );
            }
            rows.push(BenchRow {
                algorithm: run.algorithm.name(),
                fingerprint: run.spec.fingerprint(),
                size,
                input_cells,
                wall_seconds,
                cells_per_second: input_cells as f64 / wall_seconds,
                output_cells,
                triangles_per_second,
                sim_seconds,
                sim_joules,
            });
        }
    }
    rows
}

/// Human-readable table for stdout.
pub fn render_table(rows: &[BenchRow]) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "{:<20} {:>5} {:>12} {:>10} {:>12} {:>12} {:>9} {:>9}\n",
        "algorithm", "size", "cells", "wall s", "cells/s", "tri/s", "sim s", "sim J"
    ));
    for r in rows {
        let tri = r
            .triangles_per_second
            .map_or("-".to_string(), |t| format!("{t:.3e}"));
        s.push_str(&format!(
            "{:<20} {:>5} {:>12} {:>10.4} {:>12.3e} {:>12} {:>9.3} {:>9.1}\n",
            r.algorithm,
            r.size,
            r.input_cells,
            r.wall_seconds,
            r.cells_per_second,
            tri,
            r.sim_seconds,
            r.sim_joules
        ));
    }
    s
}

/// Machine-readable report (schema 1). Hand-written: the workspace's
/// serde stubs cannot serialize, and the report must stay buildable in
/// the offline stub environment.
pub fn to_json(rows: &[BenchRow], fidelity: &str, provenance: &str) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": 1,\n");
    s.push_str("  \"tool\": \"reproduce-bench\",\n");
    s.push_str(&format!("  \"fidelity\": \"{fidelity}\",\n"));
    s.push_str(&format!(
        "  \"default_cap_watts\": {:.1},\n",
        PAPER_CAPS[0].value()
    ));
    s.push_str(&format!("  \"provenance\": \"{provenance}\",\n"));
    s.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str("    {");
        s.push_str(&format!("\"algorithm\": \"{}\", ", r.algorithm));
        s.push_str(&format!("\"fingerprint\": \"{:016x}\", ", r.fingerprint));
        s.push_str(&format!("\"size\": {}, ", r.size));
        s.push_str(&format!("\"input_cells\": {}, ", r.input_cells));
        s.push_str(&format!("\"wall_seconds\": {:.6}, ", r.wall_seconds));
        s.push_str(&format!(
            "\"cells_per_second\": {:.1}, ",
            r.cells_per_second
        ));
        match r.output_cells {
            Some(n) => s.push_str(&format!("\"output_cells\": {n}, ")),
            None => s.push_str("\"output_cells\": null, "),
        }
        match r.triangles_per_second {
            Some(t) => s.push_str(&format!("\"triangles_per_second\": {t:.1}, ")),
            None => s.push_str("\"triangles_per_second\": null, "),
        }
        s.push_str(&format!("\"sim_seconds\": {:.6}, ", r.sim_seconds));
        s.push_str(&format!("\"sim_joules\": {:.3}", r.sim_joules));
        s.push_str(if i + 1 == rows.len() { "}\n" } else { "},\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use vizpower::study::StudyConfig;

    #[test]
    fn bench_produces_one_row_per_algorithm_and_size() {
        let mut ctx = StudyContext::new(StudyConfig::quick());
        let rows = bench(&mut ctx, &[8]);
        assert_eq!(rows.len(), Algorithm::ALL.len());
        for r in &rows {
            assert!(r.wall_seconds > 0.0);
            assert!(r.cells_per_second > 0.0);
            assert!(r.sim_seconds > 0.0, "{} simulated no time", r.algorithm);
            assert!(r.sim_joules > 0.0, "{} simulated no energy", r.algorithm);
        }
        let contour = rows.iter().find(|r| r.algorithm == "Contour").unwrap();
        assert!(contour.triangles_per_second.is_some());
        let ray = rows.iter().find(|r| r.algorithm == "Ray Tracing");
        if let Some(ray) = ray {
            assert!(ray.triangles_per_second.is_none());
        }
    }

    #[test]
    fn bench_journals_one_span_per_row() {
        use powersim::trace::Event;
        let mut ctx = StudyContext::new(StudyConfig::quick());
        ctx.enable_journal(1 << 14);
        let rows = bench(&mut ctx, &[8]);
        let spans: Vec<&str> = ctx
            .journal
            .events()
            .filter_map(|e| match e {
                Event::Span(s) if s.scope == Scope::Bench => Some(s.name.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(spans.len(), rows.len(), "one Bench span per row");
        assert!(spans.contains(&"bench:Contour:8"));
    }

    #[test]
    fn json_report_is_shaped_and_complete() {
        let mut ctx = StudyContext::new(StudyConfig::quick());
        let rows = bench(&mut ctx, &[8]);
        let json = to_json(&rows, "quick", "test");
        assert!(json.starts_with("{\n  \"schema\": 1,\n"));
        assert_eq!(json.matches("\"algorithm\":").count(), rows.len());
        assert!(json.contains("\"triangles_per_second\": null"));
    }
}
