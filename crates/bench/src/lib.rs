//! # vizpower-bench — reproduction harness and benchmarks
//!
//! Two surfaces:
//!
//! * the `reproduce` binary — regenerates **every table and figure** of
//!   the paper (`reproduce all`, or one of `table1 table2 table3 fig2a
//!   fig2b fig2c fig3 fig4 fig5 fig6`), printing the same rows/series the
//!   paper reports; `--quick` shrinks sizes for a fast smoke run;
//! * Criterion benches (`cargo bench`) — one bench group per
//!   table/figure family plus native-kernel microbenchmarks for the
//!   eight algorithms and the substrates (hydro step, MC table, BVH
//!   build, simulated executor).
//!
//! The library part hosts the shared harness configuration so the binary
//! and the benches stay consistent.

use vizalgo::{Algorithm, Backend};
use vizpower::study::{StudyConfig, PAPER_SIZES};

pub mod perf;

/// Ring-buffer capacity (events) used when `reproduce` enables the run
/// journal: large enough for `reproduce all` at paper fidelity, small
/// enough (~100 MB worst case) to stay harmless on a laptop. Drops are
/// counted and reported, never silent.
pub const JOURNAL_CAPACITY: usize = 1 << 20;

/// Sizes used by the reproduction at each fidelity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fidelity {
    /// Paper-faithful sizes: 32³–256³ cells, 128² images × 50 cameras.
    Paper,
    /// Scaled-down smoke run (about 100× cheaper, same structure).
    Quick,
}

impl Fidelity {
    pub fn sizes(self) -> Vec<usize> {
        match self {
            Fidelity::Paper => PAPER_SIZES.to_vec(),
            Fidelity::Quick => vec![8, 12, 16, 24],
        }
    }

    /// The size playing the role of the paper's 128³ (Tables I–II).
    pub fn table2_size(self) -> usize {
        match self {
            Fidelity::Paper => 128,
            Fidelity::Quick => 16,
        }
    }

    /// The size playing the role of the paper's 256³ (Table III).
    pub fn table3_size(self) -> usize {
        match self {
            Fidelity::Paper => 256,
            Fidelity::Quick => 24,
        }
    }

    pub fn study_config(self) -> StudyConfig {
        match self {
            Fidelity::Paper => StudyConfig::paper(),
            Fidelity::Quick => StudyConfig::quick(),
        }
    }
}

/// Error type for the workspace's CLI mains. `Debug` renders like
/// `Display`, so `fn main() -> Result<(), CliError>` exits nonzero with
/// just the message instead of the quoted `Debug` dump.
pub struct CliError(String);

impl CliError {
    pub fn new(msg: impl Into<String>) -> CliError {
        CliError(msg.into())
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::fmt::Debug for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CliError {}

impl From<String> for CliError {
    fn from(msg: String) -> CliError {
        CliError(msg)
    }
}

impl From<&str> for CliError {
    fn from(msg: &str) -> CliError {
        CliError(msg.to_string())
    }
}

/// Parse a `--backend` argument into the backend list to run. Accepts
/// every [`Backend::parse`] alias plus `both`/`all`; anything else is an
/// actionable error naming the accepted values.
pub fn parse_backends(s: &str) -> Result<Vec<Backend>, CliError> {
    if s.eq_ignore_ascii_case("both") || s.eq_ignore_ascii_case("all") {
        return Ok(Backend::ALL.to_vec());
    }
    match Backend::parse(s) {
        Some(b) => Ok(vec![b]),
        None => Err(CliError::new(format!(
            "unknown backend '{s}': expected 'traditional', 'dpp', or 'both'"
        ))),
    }
}

/// Parse a comma-separated `--algo` list against the registry alias
/// tables. Unknown names are an actionable error listing what was not
/// recognized and where the accepted spellings live.
pub fn parse_algorithms(s: &str) -> Result<Vec<Algorithm>, CliError> {
    let mut out = Vec::with_capacity(Algorithm::ALL.len());
    for name in s.split(',') {
        let name = name.trim();
        match Algorithm::parse(name) {
            Some(a) => {
                if !out.contains(&a) {
                    out.push(a);
                }
            }
            None => {
                return Err(CliError::new(format!(
                    "unknown algorithm '{name}': expected registry names/aliases \
                     (contour, threshold, clip, isovolume, slice, advection, \
                     raytrace, volren; see docs/REGISTRY.md)"
                )))
            }
        }
    }
    if out.is_empty() {
        return Err(CliError::new(
            "--algo needs at least one algorithm name".to_string(),
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_fidelity_matches_study_constants() {
        assert_eq!(Fidelity::Paper.sizes(), vec![32, 64, 128, 256]);
        assert_eq!(Fidelity::Paper.table2_size(), 128);
        assert_eq!(Fidelity::Paper.table3_size(), 256);
        assert_eq!(Fidelity::Paper.study_config().cameras, 50);
        assert_eq!(Fidelity::Paper.study_config().isovalues, 10);
    }

    #[test]
    fn quick_fidelity_preserves_structure() {
        let q = Fidelity::Quick;
        assert_eq!(q.sizes().len(), 4);
        assert!(q.table3_size() > q.table2_size());
        assert_eq!(q.study_config().caps.len(), 9);
    }

    #[test]
    fn parse_backends_accepts_aliases_and_both() {
        assert_eq!(parse_backends("dpp").unwrap(), vec![Backend::Dpp]);
        assert_eq!(
            parse_backends("traditional").unwrap(),
            vec![Backend::Traditional]
        );
        assert_eq!(parse_backends("BOTH").unwrap(), Backend::ALL.to_vec());
        let err = parse_backends("gpu").unwrap_err().to_string();
        assert!(err.contains("unknown backend 'gpu'"), "{err}");
        assert!(err.contains("'traditional', 'dpp', or 'both'"), "{err}");
    }

    #[test]
    fn parse_algorithms_rejects_unknown_names_actionably() {
        assert_eq!(
            parse_algorithms("contour,slice").unwrap(),
            vec![Algorithm::Contour, Algorithm::Slice]
        );
        assert_eq!(
            parse_algorithms("volren, volren").unwrap(),
            vec![Algorithm::VolumeRendering],
            "duplicates collapse"
        );
        let err = parse_algorithms("contour,bogus").unwrap_err().to_string();
        assert!(err.contains("unknown algorithm 'bogus'"), "{err}");
        assert!(err.contains("REGISTRY.md"), "{err}");
        assert!(parse_algorithms("").is_err());
    }
}
