//! Diagnostic: print the characterized phase breakdown of an algorithm.
use powersim::{CpuSpec, Package, Watts};
use vizalgo::Algorithm;
use vizpower::characterize::characterize;
use vizpower::study::{dataset_for, native_run, StudyConfig};
use vizpower_bench::CliError;

fn main() -> Result<(), CliError> {
    let alg = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "isovolume".into());
    let size: usize = match std::env::args().nth(2) {
        None => 128,
        Some(s) => s
            .parse()
            .map_err(|_| format!("invalid size '{s}': pass a grid edge length such as 64"))?,
    };
    let algorithm = Algorithm::parse(&alg).ok_or_else(|| {
        format!(
            "unknown algorithm '{alg}'; one of: {}",
            Algorithm::ALL.map(|a| a.name()).join(", ")
        )
    })?;
    let config = StudyConfig::paper();
    let ds = dataset_for(size);
    let run = native_run(&config, algorithm, size, &ds);
    let spec = CpuSpec::broadwell_e5_2695v4();
    let w = characterize(algorithm.name(), &run.reports, &spec);
    for cap in [Watts(120.0), Watts(70.0), Watts(40.0)] {
        let mut pkg = Package::new(spec.clone());
        let r = pkg.run_capped(&w, cap);
        println!(
            "cap {cap}: T={:.3}s P={:.1}W F={:.2} IPC={:.2} miss={:.2}",
            r.seconds, r.avg_power_watts, r.avg_effective_freq_ghz, r.avg_ipc, r.avg_llc_miss_rate
        );
        for (i, p) in w.phases.iter().enumerate() {
            println!(
                "   {:<22} act={:.2} instr={:>14} t={:.3}s miss={:.2}",
                p.name, p.activity, p.instructions, r.phase_seconds[i], p.llc_miss_rate
            );
        }
    }
    Ok(())
}
