//! Diagnostic: time the hydro proxy to a target sim time and summarize
//! the resulting energy field.
use cloverleaf::{Problem, SimConfig, Simulation};
use vizpower_bench::CliError;

fn main() -> Result<(), CliError> {
    let n: usize = match std::env::args().nth(1) {
        None => 64,
        Some(s) => s.parse().map_err(|_| {
            format!("invalid grid size '{s}': pass a cell count per edge such as 64")
        })?,
    };
    let t_end: f64 = match std::env::args().nth(2) {
        None => 0.35,
        Some(s) => s.parse().map_err(|_| {
            format!("invalid end time '{s}': pass a simulation time in seconds such as 0.35")
        })?,
    };
    let mut sim = Simulation::new(Problem::TwoState, n, SimConfig::default());
    let start = std::time::Instant::now();
    while sim.time() < t_end {
        sim.step();
    }
    println!(
        "n={n} steps={} t={:.3} wall={:?}",
        sim.step_count(),
        sim.time(),
        start.elapsed()
    );
    let ds = sim.dataset();
    let vals = ds
        .point_scalars("energy")
        .ok_or("simulation dataset has no point scalar field 'energy'; the hydro proxy always publishes one")?;
    let (lo, hi) = ds
        .field("energy")
        .and_then(|f| f.scalar_range())
        .ok_or("field 'energy' has no scalar range; the dataset is empty — use a grid size >= 2")?;
    let mut hist = [0usize; 10];
    for &v in vals {
        let b = (((v - lo) / (hi - lo)) * 9.99) as usize;
        hist[b.min(9)] += 1;
    }
    println!("range [{lo:.3},{hi:.3}] hist {hist:?}");
    let grid = ds.as_uniform().ok_or(
        "simulation produced a non-uniform dataset; fieldtime only reads structured grids",
    )?;
    let mid = (lo + hi) * 0.5;
    let half = (hi - lo) * 0.25;
    let (blo, bhi) = (mid - half, mid + half);
    let mut n_in = 0;
    let mut n_st = 0;
    for c in 0..grid.num_cells() {
        let ids = grid.cell_point_ids(c);
        let inside = ids
            .iter()
            .filter(|&&p| vals[p] >= blo && vals[p] <= bhi)
            .count();
        if inside == 8 {
            n_in += 1
        } else if inside > 0 {
            n_st += 1
        }
    }
    println!(
        "band 0.5: in={n_in} straddle={n_st} of {} ({:.1}%)",
        grid.num_cells(),
        100.0 * (n_in + n_st) as f64 / grid.num_cells() as f64
    );
    Ok(())
}
