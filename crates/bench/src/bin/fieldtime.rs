use cloverleaf::{Problem, SimConfig, Simulation};

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(64);
    let t_end: f64 = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(0.35);
    let mut sim = Simulation::new(Problem::TwoState, n, SimConfig::default());
    let start = std::time::Instant::now();
    while sim.time() < t_end { sim.step(); }
    println!("n={n} steps={} t={:.3} wall={:?}", sim.step_count(), sim.time(), start.elapsed());
    let ds = sim.dataset();
    let vals = ds.point_scalars("energy").unwrap();
    let (lo, hi) = ds.field("energy").unwrap().scalar_range().unwrap();
    let mut hist = [0usize; 10];
    for &v in vals {
        let b = (((v - lo) / (hi - lo)) * 9.99) as usize;
        hist[b.min(9)] += 1;
    }
    println!("range [{lo:.3},{hi:.3}] hist {hist:?}");
    let grid = ds.as_uniform().unwrap();
    let mid = (lo + hi) * 0.5; let half = (hi - lo) * 0.25;
    let (blo, bhi) = (mid - half, mid + half);
    let mut n_in = 0; let mut n_st = 0;
    for c in 0..grid.num_cells() {
        let ids = grid.cell_point_ids(c);
        let inside = ids.iter().filter(|&&p| vals[p] >= blo && vals[p] <= bhi).count();
        if inside == 8 { n_in += 1 } else if inside > 0 { n_st += 1 }
    }
    println!("band 0.5: in={n_in} straddle={n_st} of {} ({:.1}%)", grid.num_cells(), 100.0*(n_in+n_st) as f64/grid.num_cells() as f64);
}
