//! `insitu_run` — an Ascent-style command-line driver.
//!
//! ```text
//! insitu_run <actions.json> [--cells N] [--steps N] [--every N]
//!            [--out DIR] [--vtk]
//! ```
//!
//! Reads a JSON action list (the same schema as
//! `insitu::ActionList::from_json`), couples it with the CloverLeaf
//! proxy, runs the simulation, and writes each cycle's rendered images
//! (PPM) and, with `--vtk`, the simulation state as legacy VTK files —
//! everything a user needs to drive the toolkit without writing Rust.

use insitu::{ActionList, InSituRuntime, RuntimeConfig, Trigger};
use std::path::PathBuf;
use vizpower_bench::CliError;

struct Args {
    actions_path: PathBuf,
    cells: usize,
    steps: u64,
    every: u64,
    out: PathBuf,
    vtk: bool,
}

fn parse_args() -> Option<Args> {
    let mut args = std::env::args().skip(1);
    let mut parsed = Args {
        actions_path: PathBuf::new(),
        cells: 32,
        steps: 40,
        every: 10,
        out: PathBuf::from("target/insitu_out"),
        vtk: false,
    };
    let mut have_path = false;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--cells" => parsed.cells = args.next()?.parse().ok()?,
            "--steps" => parsed.steps = args.next()?.parse().ok()?,
            "--every" => parsed.every = args.next()?.parse().ok()?,
            "--out" => parsed.out = PathBuf::from(args.next()?),
            "--vtk" => parsed.vtk = true,
            other if !other.starts_with("--") && !have_path => {
                parsed.actions_path = PathBuf::from(other);
                have_path = true;
            }
            _ => return None,
        }
    }
    if have_path {
        Some(parsed)
    } else {
        None
    }
}

fn main() -> Result<(), CliError> {
    let args = parse_args().ok_or(
        "usage: insitu_run <actions.json> [--cells N] [--steps N] [--every N] [--out DIR] [--vtk]",
    )?;
    let json = std::fs::read_to_string(&args.actions_path)
        .map_err(|e| format!("cannot read {}: {e}", args.actions_path.display()))?;
    let actions = ActionList::from_json(&json)
        .map_err(|e| format!("invalid actions file {}: {e}", args.actions_path.display()))?;
    std::fs::create_dir_all(&args.out)
        .map_err(|e| format!("cannot create output dir {}: {e}", args.out.display()))?;

    let config = RuntimeConfig {
        grid_cells: args.cells,
        total_steps: args.steps,
        trigger: Trigger::EveryN { n: args.every },
    };
    println!(
        "insitu_run: {} pipelines, {} scenes, {}³ cells, {} steps, viz every {}",
        actions.pipelines().count(),
        actions.scenes().count(),
        args.cells,
        args.steps,
        args.every
    );
    let mut runtime = InSituRuntime::new(cloverleaf::Problem::TwoState, config, actions);
    // Route scene output into the chosen directory.
    for scene in &mut runtime.scenes {
        *scene = scene.clone().with_output_dir(&args.out);
    }
    let run = runtime.run();

    for cycle in &run.cycles {
        println!(
            "  cycle @ step {:>4}: {} viz kernels, {} images",
            cycle.step,
            cycle.viz_kernels.len(),
            cycle.images.len()
        );
    }
    if args.vtk {
        let ds = runtime.sim.dataset();
        let path = args
            .out
            .join(format!("state_{:04}.vtk", runtime.sim.step_count()));
        vizmesh::save_vtk(&path, &ds, "cloverleaf state")
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        println!("  wrote {}", path.display());
    }
    println!(
        "done: {} cycles, outputs in {}",
        run.cycles.len(),
        args.out.display()
    );
    Ok(())
}
