//! Regenerate the paper's tables and figures.
//!
//! ```text
//! reproduce all [--quick]
//! reproduce table1 | table2 | table3 [--quick]
//! reproduce fig2a | fig2b | fig2c | fig3 | fig4 | fig5 | fig6 [--quick]
//! reproduce summary [--quick]     # one-line classification per algorithm
//! reproduce energy  [--quick]     # extension: energy / EDP per cap
//! reproduce arch    [--quick]     # extension: cross-architecture study
//! reproduce ablation [--quick]    # extension: model-mechanism ablations
//! reproduce governor --budget-sweep [--quick]
//!                                 # extension: closed-loop governor across
//!                                 # node budgets (80-240 W, 4 policies)
//! reproduce conformance [--quick] [--backend <traditional|dpp|both>]
//!                                 # analytic-oracle / differential /
//!                                 # metamorphic checks for all eight
//!                                 # kernels (exit 1 on any failure);
//!                                 # --backend dpp runs the traditional-
//!                                 # vs-DPP differential suite instead
//! reproduce bench [--quick] [--out BENCH.json]
//!                 [--backend <traditional|dpp|both>] [--algo <a,b,...>]
//!                                 # kernel perf baseline: wall time and
//!                                 # throughput per algorithm × size,
//!                                 # plus default-cap simulated J/IPC/LLC;
//!                                 # --backend both adds a DPP row per
//!                                 # supported algorithm
//! reproduce advect [--quick]      # extension: time-varying flow — the
//!                                 # hydro runs past step 200 recording a
//!                                 # snapshot ring, then a scenario sweep
//!                                 # (streamline/pathline × seeding ×
//!                                 # step control × termination) executes
//!                                 # against it, one schema-v8
//!                                 # flow_scenario span per cell
//! reproduce serve [--quick] [--requests K] [--zipf S]
//!                 [--nodes N] [--workers W]
//!                                 # extension: the study service under
//!                                 # synthetic Zipfian traffic — dedupe
//!                                 # through the fingerprint-addressed
//!                                 # cache, batch scheduling across N
//!                                 # simulated nodes at 90 W budget each
//!                                 # (hit rate, coalesce count, modeled
//!                                 # latency percentiles)
//!
//! reproduce <target> --journal out.jsonl   # write the run journal (JSONL)
//! reproduce <target> --trace out.trace.json # write a chrome://tracing file
//! ```
//!
//! `--quick` shrinks data sizes and render resolutions ~100× while
//! preserving the experiment structure; use it for smoke runs. Without
//! it, sizes match the paper (32³–256³ cells; allow several minutes).
//!
//! `--journal` / `--trace` enable the run journal: every study phase,
//! cap sweep row, workload, kernel phase, 100 ms sample, and RAPL cap
//! change is recorded as a typed event (schema: `docs/OBSERVABILITY.md`).

use std::env;
use std::path::{Path, PathBuf};
use vizalgo::Algorithm;
use vizpower::experiments::{self, FigMetric};
use vizpower::report;
use vizpower::study::StudyContext;
use vizpower::{ablation, arch, energy};
use vizpower_bench::{CliError, Fidelity, JOURNAL_CAPACITY};

fn usage(context: &str) -> CliError {
    CliError::new(format!(
        "{context}\nusage: reproduce <all|table1|table2|table3|fig2a|fig2b|fig2c|fig3|fig4|fig5|fig6|summary|energy|arch|ablation|governor|conformance|bench|advect|serve> [--quick] [--budget-sweep] [--journal <out.jsonl>] [--trace <out.trace.json>] [--out <bench.json>] [--backend <traditional|dpp|both>] [--algo <name,...>] [--requests <K>] [--zipf <S>] [--nodes <N>] [--workers <W>]"
    ))
}

/// Serialize the context's journal to the requested output files.
fn write_journal_outputs(
    ctx: &StudyContext,
    journal_path: Option<&Path>,
    trace_path: Option<&Path>,
) -> Result<(), CliError> {
    if let Some(path) = journal_path {
        std::fs::write(path, ctx.journal.to_jsonl())
            .map_err(|e| CliError::new(format!("writing journal {}: {e}", path.display())))?;
        eprintln!(
            "journal: {} events ({} dropped) -> {}",
            ctx.journal.len(),
            ctx.journal.dropped(),
            path.display()
        );
    }
    if let Some(path) = trace_path {
        std::fs::write(path, ctx.journal.to_chrome_trace())
            .map_err(|e| CliError::new(format!("writing trace {}: {e}", path.display())))?;
        eprintln!(
            "trace:   {} events -> {} (open in chrome://tracing or ui.perfetto.dev)",
            ctx.journal.len(),
            path.display()
        );
    }
    Ok(())
}

fn main() -> Result<(), CliError> {
    let args: Vec<String> = env::args().skip(1).collect();
    let mut quick = false;
    let mut journal_path: Option<PathBuf> = None;
    let mut trace_path: Option<PathBuf> = None;
    let mut out_path: Option<PathBuf> = None;
    let mut backends: Option<Vec<vizalgo::Backend>> = None;
    let mut algorithms: Option<Vec<Algorithm>> = None;
    let mut requests_flag: Option<usize> = None;
    let mut zipf_flag: Option<f64> = None;
    let mut nodes_flag: Option<usize> = None;
    let mut workers_flag: Option<usize> = None;
    let mut targets: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            // The governor target's study selector; accepted (and
            // implied) so scripts can spell the study out explicitly.
            "--budget-sweep" => {}
            "--journal" => {
                let path = it.next().ok_or_else(|| usage("--journal needs a path"))?;
                journal_path = Some(PathBuf::from(path));
            }
            "--trace" => {
                let path = it.next().ok_or_else(|| usage("--trace needs a path"))?;
                trace_path = Some(PathBuf::from(path));
            }
            "--out" => {
                let path = it.next().ok_or_else(|| usage("--out needs a path"))?;
                out_path = Some(PathBuf::from(path));
            }
            "--backend" => {
                let name = it.next().ok_or_else(|| usage("--backend needs a name"))?;
                backends = Some(vizpower_bench::parse_backends(&name)?);
            }
            "--algo" => {
                let names = it
                    .next()
                    .ok_or_else(|| usage("--algo needs a comma-separated list"))?;
                algorithms = Some(vizpower_bench::parse_algorithms(&names)?);
            }
            "--requests" => {
                let n = it.next().ok_or_else(|| usage("--requests needs a count"))?;
                requests_flag = Some(
                    n.parse()
                        .map_err(|_| usage(&format!("--requests: '{n}' is not a count")))?,
                );
            }
            "--zipf" => {
                let s = it.next().ok_or_else(|| usage("--zipf needs an exponent"))?;
                zipf_flag = Some(
                    s.parse()
                        .map_err(|_| usage(&format!("--zipf: '{s}' is not a number")))?,
                );
            }
            "--nodes" => {
                let n = it.next().ok_or_else(|| usage("--nodes needs a count"))?;
                nodes_flag = Some(
                    n.parse()
                        .map_err(|_| usage(&format!("--nodes: '{n}' is not a count")))?,
                );
            }
            "--workers" => {
                let n = it.next().ok_or_else(|| usage("--workers needs a count"))?;
                workers_flag = Some(
                    n.parse()
                        .map_err(|_| usage(&format!("--workers: '{n}' is not a count")))?,
                );
            }
            other if other.starts_with("--") => {
                return Err(usage(&format!("unknown flag '{other}'")));
            }
            _ => targets.push(arg),
        }
    }
    let Some(target) = targets.first().map(|s| s.as_str()) else {
        return Err(usage("missing target"));
    };
    if backends.is_some() && !matches!(target, "bench" | "conformance") {
        return Err(usage(
            "--backend only applies to the bench and conformance targets",
        ));
    }
    if algorithms.is_some() && target != "bench" {
        return Err(usage("--algo only applies to the bench target"));
    }
    if (requests_flag.is_some()
        || zipf_flag.is_some()
        || nodes_flag.is_some()
        || workers_flag.is_some())
        && target != "serve"
    {
        return Err(usage(
            "--requests/--zipf/--nodes/--workers only apply to the serve target",
        ));
    }
    let fidelity = if quick {
        Fidelity::Quick
    } else {
        Fidelity::Paper
    };
    let mut ctx = StudyContext::new(fidelity.study_config());
    if journal_path.is_some() || trace_path.is_some() {
        ctx.enable_journal(JOURNAL_CAPACITY);
    }

    let run = |ctx: &mut StudyContext, what: &str| -> bool {
        let t2 = fidelity.table2_size();
        let t3 = fidelity.table3_size();
        let sizes = fidelity.sizes();
        match what {
            "table1" => {
                println!("== Table I: Phase 1 — contour across processor power caps ==");
                let sweep = experiments::table1(ctx, t2);
                print!("{}", report::render_table1(&sweep));
            }
            "table2" => {
                println!("== Table II: Phase 2 — all algorithms at {t2}³ ==");
                let sweeps = experiments::slowdown_table(ctx, t2);
                print!("{}", report::render_slowdown_table(&sweeps));
            }
            "table3" => {
                println!("== Table III: Phase 3 — all algorithms at {t3}³ ==");
                let sweeps = experiments::slowdown_table(ctx, t3);
                print!("{}", report::render_slowdown_table(&sweeps));
            }
            "fig2a" => {
                let s = experiments::fig2(ctx, t2, FigMetric::EffectiveFrequency);
                print!(
                    "{}",
                    report::render_series("Fig 2a: effective frequency (GHz) vs cap", &s)
                );
            }
            "fig2b" => {
                let s = experiments::fig2(ctx, t2, FigMetric::Ipc);
                print!("{}", report::render_series("Fig 2b: IPC vs cap", &s));
            }
            "fig2c" => {
                let s = experiments::fig2(ctx, t2, FigMetric::LlcMissRate);
                print!(
                    "{}",
                    report::render_series("Fig 2c: LLC miss rate vs cap", &s)
                );
            }
            "fig3" => {
                let s = experiments::fig3(ctx, t2);
                print!(
                    "{}",
                    report::render_series("Fig 3: elements (M)/sec, cell-centered algorithms", &s)
                );
            }
            "fig4" => {
                let s = experiments::fig_size_ipc(ctx, Algorithm::Slice, &sizes);
                print!(
                    "{}",
                    report::render_series("Fig 4: slice IPC vs cap across sizes", &s)
                );
            }
            "fig5" => {
                let s = experiments::fig_size_ipc(ctx, Algorithm::VolumeRendering, &sizes);
                print!(
                    "{}",
                    report::render_series("Fig 5: volume rendering IPC vs cap across sizes", &s)
                );
            }
            "fig6" => {
                let s = experiments::fig_size_ipc(ctx, Algorithm::ParticleAdvection, &sizes);
                print!(
                    "{}",
                    report::render_series("Fig 6: particle advection IPC vs cap across sizes", &s)
                );
            }
            "summary" => {
                println!("== Classification summary at {t2}³ ==");
                for sweep in experiments::slowdown_table(ctx, t2) {
                    println!("{}", report::summarize(&sweep));
                }
            }
            "energy" => {
                println!("== Extension: energy and EDP vs cap at {t2}³ ==");
                for algorithm in Algorithm::ALL {
                    let sweep = ctx.sweep(algorithm, t2);
                    let rows = energy::energy_rows(&sweep);
                    print!("{:<20}", algorithm.name());
                    for r in &rows {
                        print!(" {:>5.2}E", r.eratio);
                    }
                    println!();
                    print!("{:<20}", "");
                    for r in &rows {
                        print!(" {:>5.2}D", r.edp_ratio);
                    }
                    println!("   (E = energy ratio, D = EDP ratio)");
                }
            }
            "arch" => {
                println!("== Extension: cross-architecture comparison at {t2}³ ==");
                for algorithm in [
                    Algorithm::Contour,
                    Algorithm::Threshold,
                    Algorithm::ParticleAdvection,
                    Algorithm::VolumeRendering,
                ] {
                    let run = ctx.run(algorithm, t2);
                    for row in arch::compare_architectures(&run) {
                        println!("{row}");
                    }
                }
            }
            "governor" => {
                // Characterization grid: the sweep's cost is dominated by
                // the governed virtual-time loops, but quick mode still
                // shrinks the instrumentation run.
                let grid = if quick { 16 } else { 32 };
                println!("== Extension: closed-loop governor budget sweep ({grid}³) ==");
                let spec = powersim::CpuSpec::broadwell_e5_2695v4();
                let sweep = governor::budget_sweep(grid, &spec, &mut ctx.journal);
                print!("{}", governor::render_table(&sweep));
            }
            "ablation" => {
                println!("== Extension: model ablations (contour at {t2}³) ==");
                let run = ctx.run(Algorithm::Contour, t2);
                let caps = ctx.config().caps;
                for ab in ablation::Ablation::ALL {
                    let result = ablation::run_ablation(&run, &caps, ab);
                    let (rt, at) = (
                        result.reference.last().unwrap().tratio,
                        result.ablated.last().unwrap().tratio,
                    );
                    let (rf, af) = (
                        result.reference.last().unwrap().fratio,
                        result.ablated.last().unwrap().fratio,
                    );
                    println!(
                        "{:<20} floor Tratio {:.2}X -> {:.2}X   Fratio {:.2}X -> {:.2}X   (max ΔT {:.2})",
                        ab.name(),
                        rt,
                        at,
                        rf,
                        af,
                        result.max_tratio_delta()
                    );
                }
            }
            _ => return false,
        }
        println!();
        true
    };

    let all = [
        "table1", "table2", "table3", "fig2a", "fig2b", "fig2c", "fig3", "fig4", "fig5", "fig6",
        "summary", "energy", "arch", "ablation",
    ];
    let ok = match target {
        "all" => {
            for what in all {
                run(&mut ctx, what);
            }
            true
        }
        "conformance" => {
            let cfg = if quick {
                conformance::ConformanceConfig::quick()
            } else {
                conformance::ConformanceConfig::full()
            };
            let selected = backends
                .clone()
                .unwrap_or_else(|| vec![vizalgo::Backend::Traditional]);
            let mut report = conformance::ConformanceReport::default();
            if selected.contains(&vizalgo::Backend::Traditional) {
                println!(
                    "== Conformance: oracle / differential / metamorphic checks at {:?}³ ==",
                    cfg.grids
                );
                report
                    .checks
                    .extend(conformance::run_journaled(&cfg, &mut ctx.journal).checks);
            }
            if selected.contains(&vizalgo::Backend::Dpp) {
                println!(
                    "== Conformance: traditional-vs-DPP backend differential at {:?}³ ==",
                    cfg.grids
                );
                report
                    .checks
                    .extend(conformance::backend::run_journaled(&cfg, &mut ctx.journal).checks);
            }
            print!("{}", conformance::render_table(&report));
            println!();
            write_journal_outputs(&ctx, journal_path.as_deref(), trace_path.as_deref())?;
            if report.all_pass() {
                return Ok(());
            }
            return Err(CliError::new(format!(
                "{} of {} conformance checks failed",
                report.failed(),
                report.checks.len()
            )));
        }
        "advect" => {
            let cfg = if quick {
                vizpower::advect::AdvectConfig::quick()
            } else {
                vizpower::advect::AdvectConfig::full()
            };
            println!(
                "== Extension: time-varying advection scenario sweep ({}³ hydro, {} steps, ring of {}) ==",
                cfg.hydro_n, cfg.hydro_steps, cfg.ring_capacity
            );
            let report = vizpower::advect::run_sweep(&cfg, &mut ctx.journal);
            print!("{}", vizpower::advect::render_table(&report));
            println!();
            write_journal_outputs(&ctx, journal_path.as_deref(), trace_path.as_deref())?;
            return Ok(());
        }
        "serve" => {
            let requests = requests_flag.unwrap_or(if quick { 400 } else { 2000 });
            let zipf_s = zipf_flag.unwrap_or(1.1);
            let nodes = nodes_flag.unwrap_or(4);
            let workers = workers_flag.unwrap_or(4);
            // The fleet budget scales with the fleet: a 90 W share per
            // node, so any node count stays admissible (floor is 40 W).
            let cfg = service::ServiceConfig {
                nodes,
                workers,
                fleet_budget: powersim::Watts(90.0) * nodes as f64,
                study: fidelity.study_config(),
                ..service::ServiceConfig::default()
            };
            let sizes: &[usize] = if quick { &[8, 12] } else { &[16, 32] };
            let caps = [
                powersim::Watts(120.0),
                powersim::Watts(80.0),
                powersim::Watts(40.0),
            ];
            println!(
                "== Study service: {requests} zipf({zipf_s}) requests over {nodes} nodes at {:?}³ ==",
                sizes
            );
            let universe = service::universe(&cfg.study, sizes, &caps);
            let traffic = service::zipf_traffic(
                &universe,
                service::TrafficConfig {
                    requests,
                    zipf_s,
                    seed: cfg.seed,
                },
            );
            let mut svc =
                service::StudyService::new(cfg).map_err(|e| CliError::new(e.to_string()))?;
            let wall = std::time::Instant::now();
            let out = svc
                .serve(&traffic, &mut ctx.journal)
                .map_err(|e| CliError::new(e.to_string()))?;
            let wall = wall.elapsed().as_secs_f64();
            print!("{}", out.report.render());
            println!();
            eprintln!(
                "wall-clock: {wall:.2} s ({:.0} req/s) with {workers} workers; \
                 physical cache {:?}",
                requests as f64 / wall.max(1e-9),
                svc.cache_stats()
            );
            write_journal_outputs(&ctx, journal_path.as_deref(), trace_path.as_deref())?;
            return Ok(());
        }
        "bench" => {
            let sizes = fidelity.sizes();
            println!(
                "== Kernel perf baseline: all algorithms at {:?}³, default cap {:.0} W ==",
                sizes,
                vizpower::study::PAPER_CAPS[0].value()
            );
            let selected = backends
                .clone()
                .unwrap_or_else(|| vec![vizalgo::Backend::Traditional]);
            let rows = vizpower_bench::perf::bench_with(
                &mut ctx,
                &sizes,
                &selected,
                algorithms.as_deref(),
            );
            print!("{}", vizpower_bench::perf::render_table(&rows));
            println!();
            if let Some(path) = &out_path {
                let fidelity_name = if quick { "quick" } else { "paper" };
                // Record how these numbers were produced: the committed
                // baselines come from the offline stub harness, whose
                // sequential rayon stub makes wall times single-threaded.
                let provenance = std::env::var("BENCH_PROVENANCE").unwrap_or_else(|_| {
                    format!(
                        "unattested local build ({} profile); set BENCH_PROVENANCE to record the harness",
                        if cfg!(debug_assertions) { "debug" } else { "release" }
                    )
                });
                let json = vizpower_bench::perf::to_json(&rows, fidelity_name, &provenance);
                std::fs::write(path, json)
                    .map_err(|e| CliError::new(format!("writing {}: {e}", path.display())))?;
                eprintln!("bench report -> {}", path.display());
            }
            write_journal_outputs(&ctx, journal_path.as_deref(), trace_path.as_deref())?;
            return Ok(());
        }
        other => run(&mut ctx, other),
    };
    if ok {
        write_journal_outputs(&ctx, journal_path.as_deref(), trace_path.as_deref())?;
        Ok(())
    } else {
        Err(usage(&format!("unknown target '{target}'")))
    }
}
