//! Diagnostic: energy-field distribution and isovolume cell-class counts.
use vizpower::study::dataset_for;
use vizpower_bench::CliError;

fn main() -> Result<(), CliError> {
    let size: usize = match std::env::args().nth(1) {
        None => 128,
        Some(s) => s
            .parse()
            .map_err(|_| format!("invalid size '{s}': pass a grid edge length such as 64"))?,
    };
    let ds = dataset_for(size);
    let vals = ds
        .point_scalars("energy")
        .ok_or("dataset has no point scalar field 'energy'; dataset_for always attaches one — rebuild with a size >= 2")?;
    let (lo, hi) = ds
        .field("energy")
        .and_then(|f| f.scalar_range())
        .ok_or("field 'energy' has no scalar range; the dataset is empty — use a size >= 2")?;
    println!("range [{lo:.3}, {hi:.3}]");
    let mut hist = [0usize; 10];
    for &v in vals {
        let b = (((v - lo) / (hi - lo)) * 9.99) as usize;
        hist[b.min(9)] += 1;
    }
    println!("hist {hist:?}");
    let grid = ds.as_uniform().ok_or(
        "dataset_for produced a non-uniform dataset; fieldstats only reads structured grids",
    )?;
    for frac in [0.5, 0.7, 0.9] {
        let mid = (lo + hi) * 0.5;
        let half = (hi - lo) * frac * 0.5;
        let (blo, bhi) = (mid - half, mid + half);
        let mut n_in = 0;
        let mut n_strad = 0;
        for c in 0..grid.num_cells() {
            let ids = grid.cell_point_ids(c);
            let inside = ids
                .iter()
                .filter(|&&p| vals[p] >= blo && vals[p] <= bhi)
                .count();
            if inside == 8 {
                n_in += 1
            } else if inside > 0 {
                n_strad += 1
            }
        }
        println!(
            "band {frac}: [{blo:.3},{bhi:.3}] in={n_in} straddle={n_strad} of {}",
            grid.num_cells()
        );
    }
    Ok(())
}
