//! Diagnostic: energy-field distribution and isovolume cell-class counts.
use vizpower::study::dataset_for;

fn main() {
    let size: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(128);
    let ds = dataset_for(size);
    let vals = ds.point_scalars("energy").unwrap();
    let (lo, hi) = ds.field("energy").unwrap().scalar_range().unwrap();
    println!("range [{lo:.3}, {hi:.3}]");
    let mut hist = [0usize; 10];
    for &v in vals {
        let b = (((v - lo) / (hi - lo)) * 9.99) as usize;
        hist[b.min(9)] += 1;
    }
    println!("hist {hist:?}");
    let grid = ds.as_uniform().unwrap();
    for frac in [0.5, 0.7, 0.9] {
        let mid = (lo + hi) * 0.5;
        let half = (hi - lo) * frac * 0.5;
        let (blo, bhi) = (mid - half, mid + half);
        let mut n_in = 0; let mut n_strad = 0;
        for c in 0..grid.num_cells() {
            let ids = grid.cell_point_ids(c);
            let inside = ids.iter().filter(|&&p| vals[p] >= blo && vals[p] <= bhi).count();
            if inside == 8 { n_in += 1 } else if inside > 0 { n_strad += 1 }
        }
        println!("band {frac}: [{blo:.3},{bhi:.3}] in={n_in} straddle={n_strad} of {}", grid.num_cells());
    }
}
