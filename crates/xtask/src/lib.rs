//! `xtask` — workspace automation for the vizpower reproduction.
//!
//! The library half hosts the static analyzer behind `cargo xtask lint`:
//! repo-specific policies that clippy cannot express (panic-policy,
//! unit-safety, reduction-determinism, schema-docs, registry-dispatch),
//! built on a lexical scanner so the crate stays dependency-free (it must
//! compile before anything else does). See DESIGN.md "Static analysis &
//! correctness policy" for the rationale of each lint.

pub mod allow;
pub mod analyze;
pub mod diag;
pub mod lex;
pub mod lints;
pub mod policy;
pub mod scan;

use std::io;
use std::path::Path;

use allow::{Allowlist, PANICS_ALLOW, REDUCTIONS_ALLOW};
use diag::{Diagnostic, ALLOWLIST};
use policy::{
    is_lib_code_of, HOT_PATH_CRATES, KERNEL_CRATES, OBSERVABILITY_DOC, REGISTRY_CRATE,
    REGISTRY_DISPATCH_EXEMPT_FILES, TRACE_SOURCE, UNIT_EXEMPT_FILES,
};
use scan::SourceFile;

/// Analyzer options.
#[derive(Debug, Default, Clone)]
pub struct Options {
    /// Also run the strict panic-policy checks (indexing heuristics).
    pub strict: bool,
}

/// Result of a full workspace lint.
#[derive(Debug)]
pub struct Report {
    pub diagnostics: Vec<Diagnostic>,
    pub files_scanned: usize,
}

impl Report {
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Lint every library source file under `root` (the workspace root).
pub fn lint_workspace(root: &Path, opts: &Options) -> io::Result<Report> {
    if !root.join("Cargo.toml").is_file() {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            "not a workspace root (no Cargo.toml)",
        ));
    }
    let panics_allow = Allowlist::load(root, PANICS_ALLOW);
    let reductions_allow = Allowlist::load(root, REDUCTIONS_ALLOW);
    let mut panics_used = vec![false; panics_allow.entries.len()];
    let mut reductions_used = vec![false; reductions_allow.entries.len()];

    let rels = scan::workspace_sources(root)?;
    let mut diagnostics = Vec::new();
    let mut files_scanned = 0;
    for rel in &rels {
        let file = SourceFile::load(root, rel)?;
        files_scanned += 1;
        lint_file(
            &file,
            &panics_allow,
            &mut panics_used,
            &reductions_allow,
            &mut reductions_used,
            opts,
            &mut diagnostics,
        );
    }
    // Workspace-level pass: the journal event schema must stay documented.
    // Gated on the trace source existing so fixture trees without it
    // (and repos predating the journal) lint clean.
    if root.join(TRACE_SOURCE).is_file() {
        let trace = SourceFile::load(root, TRACE_SOURCE)?;
        let doc_text = std::fs::read_to_string(root.join(OBSERVABILITY_DOC)).unwrap_or_default();
        lints::schema_docs(&trace, &doc_text, &mut diagnostics);
    }
    report_stale(&panics_allow, &panics_used, &mut diagnostics);
    report_stale(&reductions_allow, &reductions_used, &mut diagnostics);
    diag::sort(&mut diagnostics);
    Ok(Report {
        diagnostics,
        files_scanned,
    })
}

/// Run every applicable pass over one cleaned file. Exposed (with
/// [`lint_source`]) so the golden tests can drive fixtures directly.
#[allow(clippy::too_many_arguments)]
pub fn lint_file(
    file: &SourceFile,
    panics_allow: &Allowlist,
    panics_used: &mut [bool],
    reductions_allow: &Allowlist,
    reductions_used: &mut [bool],
    opts: &Options,
    out: &mut Vec<Diagnostic>,
) {
    if is_lib_code_of(&file.rel_path, HOT_PATH_CRATES) {
        lints::panic_policy(file, panics_allow, panics_used, opts.strict, out);
    }
    if !UNIT_EXEMPT_FILES.contains(&file.rel_path.as_str()) {
        lints::unit_safety(file, out);
    }
    if is_lib_code_of(&file.rel_path, KERNEL_CRATES) {
        lints::reduction_determinism(file, reductions_allow, reductions_used, out);
    }
    if policy::crate_of(&file.rel_path) != Some(REGISTRY_CRATE)
        && !REGISTRY_DISPATCH_EXEMPT_FILES.contains(&file.rel_path.as_str())
    {
        lints::registry_dispatch(file, out);
    }
}

/// Lint a single source text under a virtual workspace-relative path,
/// with empty allowlists. This is the fixture-test entry point.
pub fn lint_source(rel_path: &str, text: &str, opts: &Options) -> Vec<Diagnostic> {
    let file = SourceFile::parse(rel_path, text);
    let panics = Allowlist::default();
    let reductions = Allowlist::default();
    let mut out = Vec::new();
    lint_file(
        &file,
        &panics,
        &mut [],
        &reductions,
        &mut [],
        opts,
        &mut out,
    );
    diag::sort(&mut out);
    out
}

/// Run only the schema-docs pass over in-memory trace source and doc
/// texts. This is the fixture-test entry point for that lint.
pub fn lint_schema_source(trace_text: &str, doc_text: &str) -> Vec<Diagnostic> {
    let trace = SourceFile::parse(TRACE_SOURCE, trace_text);
    let mut out = Vec::new();
    lints::schema_docs(&trace, doc_text, &mut out);
    diag::sort(&mut out);
    out
}

fn report_stale(list: &Allowlist, used: &[bool], out: &mut Vec<Diagnostic>) {
    for entry in list.stale(used) {
        out.push(Diagnostic::new(
            &list.source,
            entry.list_line,
            ALLOWLIST,
            format!(
                "stale entry `{} :: {}` matches no flagged site; remove it",
                entry.rel_path, entry.needle
            ),
        ));
    }
}
