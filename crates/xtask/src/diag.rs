//! Diagnostics: what a lint pass reports and how it renders.

use std::fmt;

/// Names of the lint passes, used in diagnostic output and golden tests.
pub const PANIC_POLICY: &str = "panic-policy";
pub const UNIT_SAFETY: &str = "unit-safety";
pub const REDUCTION_DETERMINISM: &str = "reduction-determinism";
pub const SCHEMA_DOCS: &str = "schema-docs";
pub const REGISTRY_DISPATCH: &str = "registry-dispatch";
pub const ALLOWLIST: &str = "allowlist";

/// One finding, anchored to a file and line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub rel_path: String,
    pub line: usize,
    pub lint: &'static str,
    pub message: String,
}

impl Diagnostic {
    pub fn new(rel_path: &str, line: usize, lint: &'static str, message: String) -> Diagnostic {
        Diagnostic {
            rel_path: rel_path.to_string(),
            line,
            lint,
            message,
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.rel_path, self.line, self.lint, self.message
        )
    }
}

/// Order diagnostics for stable output: by path, then line, then lint.
pub fn sort(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        (a.rel_path.as_str(), a.line, a.lint).cmp(&(b.rel_path.as_str(), b.line, b.lint))
    });
}
