//! Allowlist and determinism-manifest handling.
//!
//! Both files share one format: one entry per line,
//!
//! ```text
//! <workspace-relative-path> :: <verbatim substring of the allowed line>
//! ```
//!
//! `#`-prefixed lines are comments — use them to justify each entry.
//! Entries are checked for staleness: an entry that matches no flagged
//! site in the current tree is itself reported, so the lists can only
//! shrink as the code improves.

use std::fs;
use std::path::Path;

/// Workspace-relative locations of the two lists.
pub const PANICS_ALLOW: &str = "crates/xtask/allowlists/panics.allow";
pub const REDUCTIONS_ALLOW: &str = "crates/xtask/allowlists/reductions.allow";

/// The inline justification a panic-policy allowlist site must carry.
pub const INFALLIBLE_MARKER: &str = "lint: infallible because";

#[derive(Debug, Clone)]
pub struct Entry {
    /// Line number inside the allowlist file, for staleness diagnostics.
    pub list_line: usize,
    pub rel_path: String,
    pub needle: String,
}

#[derive(Debug, Default)]
pub struct Allowlist {
    /// Workspace-relative path of the list file itself.
    pub source: String,
    pub entries: Vec<Entry>,
}

impl Allowlist {
    /// Load a list, tolerating a missing file (empty list).
    pub fn load(root: &Path, source: &str) -> Allowlist {
        let text = fs::read_to_string(root.join(source)).unwrap_or_default();
        Allowlist::parse(source, &text)
    }

    pub fn parse(source: &str, text: &str) -> Allowlist {
        let mut entries = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some((path, needle)) = line.split_once(" :: ") {
                entries.push(Entry {
                    list_line: i + 1,
                    rel_path: path.trim().to_string(),
                    needle: needle.to_string(),
                });
            }
        }
        Allowlist {
            source: source.to_string(),
            entries,
        }
    }

    /// Does any entry cover `(rel_path, raw_line)`? Marks the entry used.
    pub fn covers(&self, used: &mut [bool], rel_path: &str, raw_line: &str) -> bool {
        let mut hit = false;
        for (i, e) in self.entries.iter().enumerate() {
            if e.rel_path == rel_path && raw_line.contains(&e.needle) {
                used[i] = true;
                hit = true;
            }
        }
        hit
    }

    /// Entries never marked used — stale, and reported as violations.
    pub fn stale<'a>(&'a self, used: &[bool]) -> Vec<&'a Entry> {
        self.entries
            .iter()
            .enumerate()
            .filter(|(i, _)| !used[*i])
            .map(|(_, e)| e)
            .collect()
    }
}
