//! `cargo xtask analyze` — the hot-path analyzer.
//!
//! Where `cargo xtask lint` enforces hard repo policies (violations fail
//! CI outright), `analyze` produces a *worklist*: findings that point at
//! cycles wasted or discipline bent on the measurement hot path. The
//! worklist is allowed to be non-empty — a committed
//! [`ANALYSIS_BASELINE`] pins the current finding count per pass, and
//! `--ratchet` fails only when a count **rises**. Fixed findings shrink
//! the baseline automatically (the same only-shrinks semantics as the
//! PR-1 allowlists), so the worklist monotonically drains as the perf
//! PRs land.
//!
//! Three passes, all scoped to the library code of
//! [`HOT_PATH_CRATES`](crate::policy::HOT_PATH_CRATES):
//!
//! * **hot-loop-alloc** — allocation-shaped tokens (`Vec::new`, `vec![`,
//!   `.collect`, `.clone()`, `.to_vec()`, `.to_owned()`, `format!`,
//!   `Box::new`, and `.push` in functions that never `with_capacity`)
//!   inside loop bodies, ranked by loop/closure nesting depth. This is
//!   the attack list for the raw-speed kernel pass.
//! * **span-discipline** — every journal span opened with a
//!   `let <ident-with-t0> = ….now();` binding must be closed by a
//!   `push_span(…)` that references the binding in the same function,
//!   with no early `return` between open and close. Protects the
//!   byte-identical journal goldens.
//! * **fp-reduction-order** — order-sensitive `f32`/`f64` folds reachable
//!   from rayon parallel iterator chains (`reduce`, `reduce_with`,
//!   `fold`, float or unannotated `sum`/`product`); extends the
//!   reduction-determinism lint beyond the kernel crates and honors the
//!   same allowlist for justified order-insensitive combines.

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

use crate::allow::{Allowlist, REDUCTIONS_ALLOW};
use crate::lex;
use crate::policy::{is_lib_code_of, HOT_PATH_CRATES};
use crate::scan::{self, SourceFile};

/// Pass names, used in findings, the JSON report, and the baseline.
pub const HOT_LOOP_ALLOC: &str = "hot-loop-alloc";
pub const SPAN_DISCIPLINE: &str = "span-discipline";
pub const FP_REDUCTION_ORDER: &str = "fp-reduction-order";

/// Every analyze pass, in report order. The baseline carries one count
/// per entry, zeros included, so a pass going quiet is visible.
pub const PASSES: &[&str] = &[FP_REDUCTION_ORDER, HOT_LOOP_ALLOC, SPAN_DISCIPLINE];

/// Version of the JSON report and baseline schema (see docs/ANALYZE.md).
pub const REPORT_SCHEMA: u32 = 1;

/// Workspace-relative path of the committed findings baseline.
pub const ANALYSIS_BASELINE: &str = "ANALYSIS_BASELINE.json";

/// One analyzer finding. Unlike a lint [`Diagnostic`](crate::diag::Diagnostic)
/// it carries hot-path context: the enclosing function and the loop
/// nesting depth used to rank the worklist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub pass: &'static str,
    pub rel_path: String,
    pub line: usize,
    /// Innermost enclosing function, when the block model found one.
    pub fn_name: Option<String>,
    /// Loop/closure nesting depth at the site (0 outside loops).
    pub loop_depth: usize,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.rel_path, self.line, self.pass, self.message
        )?;
        if let Some(name) = &self.fn_name {
            write!(f, " (in `{name}`")?;
            if self.loop_depth > 0 {
                write!(f, ", loop depth {}", self.loop_depth)?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

/// Result of a full workspace analysis.
#[derive(Debug)]
pub struct Analysis {
    /// All findings, in report order: pass, then loop depth descending
    /// (deepest nests are the hottest work), then path and line.
    pub findings: Vec<Finding>,
    pub files_scanned: usize,
}

impl Analysis {
    /// Finding count per pass; every pass is present, zeros included.
    pub fn counts(&self) -> BTreeMap<&'static str, usize> {
        let mut counts: BTreeMap<&'static str, usize> = PASSES.iter().map(|p| (*p, 0)).collect();
        for f in &self.findings {
            *counts.entry(f.pass).or_insert(0) += 1;
        }
        counts
    }
}

/// Order findings for stable output: pass, loop depth descending, path,
/// line.
pub fn sort(findings: &mut [Finding]) {
    findings.sort_by(|a, b| {
        (
            a.pass,
            std::cmp::Reverse(a.loop_depth),
            a.rel_path.as_str(),
            a.line,
        )
            .cmp(&(
                b.pass,
                std::cmp::Reverse(b.loop_depth),
                b.rel_path.as_str(),
                b.line,
            ))
    });
}

/// Run all three passes over the hot-path library code under `root`.
pub fn analyze_workspace(root: &Path) -> io::Result<Analysis> {
    if !root.join("Cargo.toml").is_file() {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            "not a workspace root (no Cargo.toml)",
        ));
    }
    let reductions_allow = Allowlist::load(root, REDUCTIONS_ALLOW);
    let mut findings = Vec::new();
    let mut files_scanned = 0;
    for rel in scan::workspace_sources(root)? {
        if !is_lib_code_of(&rel, HOT_PATH_CRATES) {
            continue;
        }
        let file = SourceFile::load(root, &rel)?;
        files_scanned += 1;
        analyze_file(&file, &reductions_allow, &mut findings);
    }
    sort(&mut findings);
    Ok(Analysis {
        findings,
        files_scanned,
    })
}

/// Run all three passes over one cleaned file.
pub fn analyze_file(file: &SourceFile, reductions_allow: &Allowlist, out: &mut Vec<Finding>) {
    hot_loop_alloc(file, out);
    span_discipline(file, out);
    fp_reduction_order(file, reductions_allow, out);
}

/// Analyze a single source text under a virtual workspace-relative path
/// with an empty allowlist. This is the fixture-test entry point.
pub fn analyze_source(rel_path: &str, text: &str) -> Vec<Finding> {
    let file = SourceFile::parse(rel_path, text);
    let mut out = Vec::new();
    analyze_file(&file, &Allowlist::default(), &mut out);
    sort(&mut out);
    out
}

// ---------------------------------------------------------------------------
// hot-loop-alloc
// ---------------------------------------------------------------------------

/// Allocation-shaped patterns flagged inside loop bodies: the cleaned
/// substring to match, the identifier token anchoring the site (whose
/// token-level loop depth gates and ranks the finding), and the verb
/// used in the message. The anchor matters: in
/// `xs.iter().map(f).collect()` the *closure body* runs per element but
/// `.collect` itself runs once, and its token sits at the chain's own
/// depth, not inside the adapter parentheses.
const ALLOC_TOKENS: &[(&str, &str, &str)] = &[
    ("Vec::new(", "new", "allocates an empty Vec"),
    ("vec![", "vec", "allocates a Vec"),
    (
        ".collect(",
        "collect",
        "allocates a fresh collection via collect",
    ),
    (
        ".collect::<",
        "collect",
        "allocates a fresh collection via collect",
    ),
    (".clone(", "clone", "deep-clones"),
    (".to_vec(", "to_vec", "copies into a new Vec"),
    (".to_owned(", "to_owned", "copies into an owned value"),
    ("format!(", "format", "allocates a String via format!"),
    ("Box::new(", "new", "heap-allocates via Box"),
];

pub fn hot_loop_alloc(file: &SourceFile, out: &mut Vec<Finding>) {
    let functions = function_runs(file);
    for line in &file.lines {
        // The line's depth is the max over its tokens, so 0 means no
        // token on it can be inside a loop — a cheap pre-filter.
        if line.in_test || line.loop_depth == 0 {
            continue;
        }
        for (pat, anchor, verb) in ALLOC_TOKENS {
            if !line.code.contains(pat) {
                continue;
            }
            let Some(depth) = anchor_depth(file, line.number, anchor) else {
                continue;
            };
            if depth == 0 {
                continue;
            }
            let display = pat.trim_end_matches('(').trim_end_matches("::<");
            push_finding(
                out,
                HOT_LOOP_ALLOC,
                file,
                line.number,
                depth,
                format!(
                    "`{display}` {verb} inside a loop body; hoist the allocation out of \
                     the hot loop or pre-size it with `with_capacity`"
                ),
            );
        }
        // `.push(` is only a finding when the enclosing function never
        // pre-sizes anything: a `with_capacity` in the function is taken
        // as evidence the growth path was considered.
        if line.code.contains(".push(") {
            let depth = anchor_depth(file, line.number, "push").unwrap_or(0);
            let presized = functions
                .iter()
                .find(|r| r.contains(line.number))
                .is_some_and(|r| r.has_token(file, "with_capacity"));
            if depth > 0 && !presized {
                push_finding(
                    out,
                    HOT_LOOP_ALLOC,
                    file,
                    line.number,
                    depth,
                    "`.push` grows a collection inside a loop and the enclosing function \
                     never calls `with_capacity`; reserve up front to avoid repeated \
                     reallocation on the hot path"
                        .to_string(),
                );
            }
        }
    }
}

/// Maximum token-level loop depth over the `anchor` identifier tokens on
/// line `line_no`, or `None` when the identifier does not appear as a
/// token there (e.g. the match was inside a longer identifier).
fn anchor_depth(file: &SourceFile, line_no: usize, anchor: &str) -> Option<usize> {
    let mut best = None;
    for (t, tc) in file.tokens.iter().zip(&file.token_ctx) {
        if t.line == line_no && t.kind == lex::Kind::Ident && t.text == anchor {
            best = Some(tc.loop_depth.max(best.unwrap_or(0)));
        }
    }
    best
}

// ---------------------------------------------------------------------------
// span-discipline
// ---------------------------------------------------------------------------

/// The lexical shape of a journal span: opened by binding `….now()` to a
/// `t0`-named local, closed by a `push_span(` statement that references
/// the binding. RAII guards (a `span_guard(` call) self-close.
const SPAN_OPEN_SUFFIX: &str = ".now()";
const SPAN_CLOSE: &str = "push_span(";
const SPAN_GUARD: &str = "span_guard(";

pub fn span_discipline(file: &SourceFile, out: &mut Vec<Finding>) {
    for run in function_runs(file) {
        let opens = span_opens(file, &run);
        if opens.is_empty() {
            continue;
        }
        // Collect the close statements of the function once: each is the
        // joined statement around a `push_span(` line.
        let mut closes: Vec<(usize, String)> = Vec::new();
        for idx in run.start_idx..=run.end_idx {
            let line = &file.lines[idx];
            if line.in_test || !line.code.contains(SPAN_CLOSE) {
                continue;
            }
            closes.push((line.number, file.statement_at(idx, 32)));
        }
        for (open_line, ident) in opens {
            let close_line = closes
                .iter()
                .find(|(_, stmt)| contains_ident(stmt, &ident))
                .map(|(n, _)| *n);
            let Some(close_line) = close_line else {
                push_finding(
                    out,
                    SPAN_DISCIPLINE,
                    file,
                    open_line,
                    file.lines[open_line - 1].loop_depth,
                    format!(
                        "journal span opened here (`{ident}` = ….now()) is never closed by \
                         a `push_span` referencing it in the same function; every open must \
                         reach a close or RAII guard on all paths"
                    ),
                );
                continue;
            };
            // An early `return` strictly between open and close exits the
            // function with the span still open on that path.
            for idx in run.start_idx..=run.end_idx {
                let line = &file.lines[idx];
                if line.number <= open_line || line.number >= close_line || line.in_test {
                    continue;
                }
                if contains_ident(&line.code, "return") {
                    push_finding(
                        out,
                        SPAN_DISCIPLINE,
                        file,
                        line.number,
                        line.loop_depth,
                        format!(
                            "early `return` between the open of journal span `{ident}` \
                             (line {open_line}) and its close (line {close_line}); the span \
                             leaks on this path"
                        ),
                    );
                }
            }
        }
    }
}

/// The `(line, ident)` of every span open in a function: a `let` binding
/// of a `t0`-named local to a `….now()` call. `t0` naming is the repo
/// idiom (`t0`, `cycle_t0`, …) and keeps unrelated clock reads (sample
/// timestamps) out of the pass. A `span_guard(` binding self-closes.
fn span_opens(file: &SourceFile, run: &FnRun) -> Vec<(usize, String)> {
    let mut opens = Vec::new();
    for idx in run.start_idx..=run.end_idx {
        let line = &file.lines[idx];
        if line.in_test {
            continue;
        }
        let trimmed = line.code.trim_start();
        let Some(rest) = trimmed.strip_prefix("let ") else {
            continue;
        };
        let stmt = file.statement_at(idx, 8);
        if !stmt.contains(SPAN_OPEN_SUFFIX) || stmt.contains(SPAN_GUARD) {
            continue;
        }
        let rest = rest.strip_prefix("mut ").unwrap_or(rest);
        let ident: String = rest
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        if ident.contains("t0") {
            opens.push((line.number, ident));
        }
    }
    opens
}

/// True when `code` contains `ident` as a whole word.
fn contains_ident(code: &str, ident: &str) -> bool {
    let bytes = code.as_bytes();
    let mut search = 0;
    while let Some(pos) = code[search..].find(ident) {
        let at = search + pos;
        search = at + ident.len().max(1);
        let before = at.checked_sub(1).map(|i| bytes[i] as char);
        let after_idx = at + ident.len();
        let after = bytes.get(after_idx).map(|b| *b as char);
        let is_word = |c: Option<char>| c.is_some_and(|c| c.is_alphanumeric() || c == '_');
        if !is_word(before) && !is_word(after) {
            return true;
        }
    }
    false
}

// ---------------------------------------------------------------------------
// fp-reduction-order
// ---------------------------------------------------------------------------

/// Lexical seeds of a rayon parallel iterator chain (kept in sync with
/// the reduction-determinism lint).
const PAR_SEEDS: &[&str] = &["par_iter", "par_chunks", "par_windows", "par_bridge"];

pub fn fp_reduction_order(file: &SourceFile, allow: &Allowlist, out: &mut Vec<Finding>) {
    let mut scratch = vec![false; allow.entries.len()];
    let mut skip_until = 0;
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test || idx < skip_until {
            continue;
        }
        if !PAR_SEEDS.iter().any(|s| line.code.contains(s)) {
            continue;
        }
        let statement = file.statement_at(idx, 16);
        skip_until = idx + file.statement_span(idx, 16);
        let Some(what) = order_sensitive_float_combine(&statement) else {
            continue;
        };
        // Sites the reduction-determinism lint already accepts as
        // order-insensitive (f64::max and friends) are not worklist items.
        if allow.covers(&mut scratch, &file.rel_path, &line.raw) {
            continue;
        }
        push_finding(
            out,
            FP_REDUCTION_ORDER,
            file,
            line.number,
            line.loop_depth,
            format!(
                "order-sensitive float combine `{what}` reachable from a rayon parallel \
                 iterator; the combine tree varies with thread count — reduce sequentially \
                 in a fixed order or prove the combine order-insensitive"
            ),
        );
    }
}

/// The first order-sensitive float combinator in a parallel statement,
/// if any: `reduce`/`reduce_with`/`fold` always (their combine tree is
/// scheduler-shaped), `sum`/`product` when the element type is floating
/// or unannotated (conservative).
fn order_sensitive_float_combine(statement: &str) -> Option<&'static str> {
    if statement.contains(".reduce_with(") {
        return Some(".reduce_with");
    }
    if statement.contains(".reduce(") {
        return Some(".reduce");
    }
    if statement.contains(".fold(") {
        return Some(".fold");
    }
    for (method, display) in [(".sum", ".sum"), (".product", ".product")] {
        let mut search = 0;
        while let Some(pos) = statement[search..].find(method) {
            let rest = &statement[search + pos + method.len()..];
            search += pos + method.len();
            if rest.starts_with("()") {
                return Some(display); // unannotated: conservative
            }
            if let Some(ty) = rest.strip_prefix("::<") {
                if ty.starts_with('f') {
                    return Some(display);
                }
            }
        }
    }
    None
}

// ---------------------------------------------------------------------------
// Function extents
// ---------------------------------------------------------------------------

/// A contiguous run of lines annotated with the same enclosing function
/// (0-based indices into `file.lines`).
struct FnRun {
    start_idx: usize,
    end_idx: usize,
}

impl FnRun {
    fn contains(&self, number: usize) -> bool {
        (self.start_idx + 1..=self.end_idx + 1).contains(&number)
    }

    fn has_token(&self, file: &SourceFile, token: &str) -> bool {
        file.lines[self.start_idx..=self.end_idx]
            .iter()
            .any(|l| l.code.contains(token))
    }
}

/// Group the file's lines into function bodies: maximal runs of
/// consecutive lines sharing one `fn_name` annotation.
fn function_runs(file: &SourceFile) -> Vec<FnRun> {
    let mut runs = Vec::new();
    let mut current: Option<(usize, &str)> = None;
    for (idx, line) in file.lines.iter().enumerate() {
        match (&current, line.fn_name.as_deref()) {
            (Some((_, cur)), Some(name)) if *cur == name => {}
            (Some((start, _)), name) => {
                runs.push(FnRun {
                    start_idx: *start,
                    end_idx: idx - 1,
                });
                current = name.map(|n| (idx, n));
            }
            (None, Some(name)) => current = Some((idx, name)),
            (None, None) => {}
        }
    }
    if let Some((start, _)) = current {
        runs.push(FnRun {
            start_idx: start,
            end_idx: file.lines.len() - 1,
        });
    }
    runs
}

fn push_finding(
    out: &mut Vec<Finding>,
    pass: &'static str,
    file: &SourceFile,
    number: usize,
    loop_depth: usize,
    message: String,
) {
    let line = &file.lines[number - 1];
    out.push(Finding {
        pass,
        rel_path: file.rel_path.clone(),
        line: number,
        fn_name: line.fn_name.clone(),
        loop_depth,
        message,
    });
}

// ---------------------------------------------------------------------------
// JSON report
// ---------------------------------------------------------------------------

/// Render the machine-readable report (schema [`REPORT_SCHEMA`],
/// documented in docs/ANALYZE.md). Dependency-free: the writer escapes
/// strings by hand and the structure is fixed.
pub fn to_json(analysis: &Analysis) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"schema\": {REPORT_SCHEMA},\n"));
    s.push_str("  \"tool\": \"xtask-analyze\",\n");
    s.push_str(&format!(
        "  \"files_scanned\": {},\n",
        analysis.files_scanned
    ));
    s.push_str("  \"counts\": {");
    let counts = analysis.counts();
    let rows: Vec<String> = counts
        .iter()
        .map(|(pass, n)| format!("\"{pass}\": {n}"))
        .collect();
    s.push_str(&rows.join(", "));
    s.push_str("},\n");
    s.push_str("  \"findings\": [\n");
    for (i, f) in analysis.findings.iter().enumerate() {
        s.push_str("    {");
        s.push_str(&format!("\"pass\": \"{}\", ", f.pass));
        s.push_str(&format!("\"path\": \"{}\", ", json_escape(&f.rel_path)));
        s.push_str(&format!("\"line\": {}, ", f.line));
        match &f.fn_name {
            Some(name) => s.push_str(&format!("\"fn\": \"{}\", ", json_escape(name))),
            None => s.push_str("\"fn\": null, "),
        }
        s.push_str(&format!("\"loop_depth\": {}, ", f.loop_depth));
        s.push_str(&format!("\"message\": \"{}\"", json_escape(&f.message)));
        s.push_str(if i + 1 == analysis.findings.len() {
            "}\n"
        } else {
            "},\n"
        });
    }
    s.push_str("  ]\n}\n");
    s
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Baseline + ratchet
// ---------------------------------------------------------------------------

/// The committed per-pass finding counts ([`ANALYSIS_BASELINE`]).
#[derive(Debug, Default, PartialEq, Eq)]
pub struct Baseline {
    pub counts: BTreeMap<String, usize>,
}

impl Baseline {
    /// Parse the baseline file. Deliberately tolerant (it only has to
    /// read what [`Baseline::render`] writes): scans `"pass": count`
    /// pairs inside the `"counts"` object.
    pub fn parse(text: &str) -> Option<Baseline> {
        let counts_at = text.find("\"counts\"")?;
        let body = &text[counts_at..];
        let open = body.find('{')?;
        let close = body[open..].find('}')? + open;
        let mut counts = BTreeMap::new();
        for pair in body[open + 1..close].split(',') {
            let (key, value) = pair.split_once(':')?;
            let key = key.trim().trim_matches('"').to_string();
            let value: usize = value.trim().parse().ok()?;
            counts.insert(key, value);
        }
        Some(Baseline { counts })
    }

    /// Render the committed form of a count table.
    pub fn render(counts: &BTreeMap<&'static str, usize>) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"schema\": {REPORT_SCHEMA},\n"));
        s.push_str("  \"tool\": \"xtask-analyze\",\n");
        s.push_str("  \"counts\": {\n");
        let rows: Vec<String> = counts
            .iter()
            .map(|(pass, n)| format!("    \"{pass}\": {n}"))
            .collect();
        s.push_str(&rows.join(",\n"));
        s.push_str("\n  }\n}\n");
        s
    }
}

/// Outcome of a ratchet comparison.
#[derive(Debug, PartialEq, Eq)]
pub enum Ratchet {
    /// Every pass matches the baseline exactly.
    Clean,
    /// Some passes improved; the new (smaller) counts that should be
    /// committed as the baseline.
    Tightened(Vec<(String, usize, usize)>),
    /// Some passes regressed (`pass, baseline, current`), or the
    /// baseline is missing a pass.
    Regressed(Vec<(String, usize, usize)>),
}

/// Compare current counts against a baseline. A regression anywhere
/// wins over improvements elsewhere: fix the regression first, then the
/// self-pruning rewrite picks up the improvements.
pub fn ratchet(baseline: &Baseline, counts: &BTreeMap<&'static str, usize>) -> Ratchet {
    let mut regressed = Vec::new();
    let mut tightened = Vec::new();
    for (pass, &current) in counts {
        match baseline.counts.get(*pass) {
            None => regressed.push((pass.to_string(), 0, current)),
            Some(&base) if current > base => {
                regressed.push((pass.to_string(), base, current));
            }
            Some(&base) if current < base => {
                tightened.push((pass.to_string(), base, current));
            }
            Some(_) => {}
        }
    }
    if !regressed.is_empty() {
        Ratchet::Regressed(regressed)
    } else if !tightened.is_empty() {
        Ratchet::Tightened(tightened)
    } else {
        Ratchet::Clean
    }
}

/// Load the committed baseline under `root`, if present.
pub fn load_baseline(root: &Path) -> Option<Baseline> {
    let text = fs::read_to_string(root.join(ANALYSIS_BASELINE)).ok()?;
    Baseline::parse(&text)
}

/// Write `counts` as the committed baseline under `root`.
pub fn write_baseline(root: &Path, counts: &BTreeMap<&'static str, usize>) -> io::Result<()> {
    fs::write(root.join(ANALYSIS_BASELINE), Baseline::render(counts))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_round_trips_through_render_and_parse() {
        let mut counts = BTreeMap::new();
        for (i, pass) in PASSES.iter().enumerate() {
            counts.insert(*pass, i * 3);
        }
        let parsed = Baseline::parse(&Baseline::render(&counts)).expect("parse rendered");
        let expected: BTreeMap<String, usize> =
            counts.iter().map(|(k, v)| (k.to_string(), *v)).collect();
        assert_eq!(parsed.counts, expected);
    }

    #[test]
    fn ratchet_classifies_rise_fall_and_match() {
        let mut counts: BTreeMap<&'static str, usize> = PASSES.iter().map(|p| (*p, 2)).collect();
        let base = Baseline::parse(&Baseline::render(&counts)).expect("baseline");
        assert_eq!(ratchet(&base, &counts), Ratchet::Clean);

        counts.insert(HOT_LOOP_ALLOC, 3);
        let Ratchet::Regressed(r) = ratchet(&base, &counts) else {
            panic!("rise must regress");
        };
        assert_eq!(r, vec![(HOT_LOOP_ALLOC.to_string(), 2, 3)]);

        counts.insert(HOT_LOOP_ALLOC, 1);
        let Ratchet::Tightened(t) = ratchet(&base, &counts) else {
            panic!("fall must tighten");
        };
        assert_eq!(t, vec![(HOT_LOOP_ALLOC.to_string(), 2, 1)]);
    }

    #[test]
    fn ratchet_treats_a_missing_pass_as_zero_baseline() {
        let base = Baseline::parse("{\"counts\": {\"hot-loop-alloc\": 1}}").expect("baseline");
        let counts: BTreeMap<&'static str, usize> = PASSES.iter().map(|p| (*p, 0)).collect();
        let Ratchet::Regressed(r) = ratchet(&base, &counts) else {
            panic!("missing pass must force a re-pin");
        };
        assert!(r.iter().all(|(_, base, _)| *base == 0));
    }
}
