//! The repo-specific lint passes: panic-policy, unit-safety,
//! reduction-determinism, and schema-docs. Each pass takes a cleaned
//! [`SourceFile`] and appends [`Diagnostic`]s; path scoping lives in
//! [`crate::policy`].

use crate::allow::{Allowlist, INFALLIBLE_MARKER, PANICS_ALLOW, REDUCTIONS_ALLOW};
use crate::diag::{
    Diagnostic, PANIC_POLICY, REDUCTION_DETERMINISM, REGISTRY_DISPATCH, SCHEMA_DOCS, UNIT_SAFETY,
};
use crate::policy::{
    unit_family, UnitFamily, FILTER_CONSTRUCTORS, OBSERVABILITY_DOC, SCHEMA_ENUMS,
    SCHEMA_TABLE_BEGIN, SCHEMA_TABLE_END, UNIT_BOUNDARY_FILES,
};
use crate::scan::SourceFile;

/// Tokens that violate the panic policy in hot-path library code.
const PANIC_TOKENS: &[&str] = &[
    ".unwrap()",
    ".expect(",
    "panic!(",
    "unreachable!(",
    "todo!(",
    "unimplemented!(",
];

/// Lexical seeds of a rayon parallel iterator chain.
const PAR_SEEDS: &[&str] = &["par_iter", "par_chunks", "par_windows", "par_bridge"];

// ---------------------------------------------------------------------------
// Panic policy
// ---------------------------------------------------------------------------

pub fn panic_policy(
    file: &SourceFile,
    allow: &Allowlist,
    used: &mut [bool],
    strict: bool,
    out: &mut Vec<Diagnostic>,
) {
    for line in &file.lines {
        if line.in_test {
            continue;
        }
        for tok in PANIC_TOKENS {
            if !line.code.contains(tok) {
                continue;
            }
            let justified =
                line.comment.contains(INFALLIBLE_MARKER) || justified_above(file, line.number);
            let registered = allow.covers(used, &file.rel_path, &line.raw);
            if justified && registered {
                continue;
            }
            let display = tok.trim_end_matches("()").trim_end_matches('(');
            let message = if justified {
                format!("`{display}` is justified inline but not registered in {PANICS_ALLOW}")
            } else {
                format!(
                    "`{display}` in hot-path library code; return Result/Option, or justify \
                     with `// {INFALLIBLE_MARKER} ...` and register the site in {PANICS_ALLOW}"
                )
            };
            out.push(Diagnostic::new(
                &file.rel_path,
                line.number,
                PANIC_POLICY,
                message,
            ));
        }
        if strict && has_unjustified_indexing(&line.code, &line.comment) {
            out.push(Diagnostic::new(
                &file.rel_path,
                line.number,
                PANIC_POLICY,
                format!(
                    "indexing can panic in hot-path library code (strict mode); prefer \
                     `get`/iterators or add a `// {INFALLIBLE_MARKER} ...` note"
                ),
            ));
        }
    }
}

/// A justification may also sit on comment-only lines immediately above
/// the panic site (the style rustfmt-friendly call chains use).
fn justified_above(file: &SourceFile, number: usize) -> bool {
    let mut idx = number.saturating_sub(1); // 0-based index of the site
    while idx > 0 {
        idx -= 1;
        let prev = &file.lines[idx];
        if !prev.code.trim().is_empty() || prev.comment.is_empty() {
            return false;
        }
        if prev.comment.contains(INFALLIBLE_MARKER) {
            return true;
        }
    }
    false
}

/// Strict-mode heuristic: `expr[...]` indexing — a `[` whose previous
/// non-space character ends an expression (identifier, `)`, or `]`).
fn has_unjustified_indexing(code: &str, comment: &str) -> bool {
    if comment.contains("lint:") || code.trim_start().starts_with("#[") {
        return false;
    }
    let chars: Vec<char> = code.chars().collect();
    for (i, &c) in chars.iter().enumerate() {
        if c != '[' {
            continue;
        }
        let prev = chars[..i].iter().rev().find(|ch| !ch.is_whitespace());
        if let Some(&p) = prev {
            if p.is_alphanumeric() || p == '_' || p == ')' || p == ']' {
                return true;
            }
        }
    }
    false
}

// ---------------------------------------------------------------------------
// Unit safety
// ---------------------------------------------------------------------------

#[derive(Debug, PartialEq)]
enum Tok {
    Ident(String),
    Op(&'static str),
    Other,
}

/// Binary operators that demand dimensional agreement between operands.
const UNIT_OPS: &[&str] = &["+", "-", "+=", "-=", "<", ">", "<=", ">=", "==", "!="];

pub fn unit_safety(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let boundary = UNIT_BOUNDARY_FILES.contains(&file.rel_path.as_str());
    for line in &file.lines {
        if line.in_test {
            continue;
        }
        mixed_family_arithmetic(file, line.number, &line.code, out);
        if boundary {
            raw_f64_boundary(file, line.number, &line.code, out);
        }
    }
}

/// Rule A: `a <op> b` where `a` and `b` carry different unit families by
/// name. Multiplication/division across families is legitimate physics
/// (W·s, 1/s, ...) and is not flagged.
fn mixed_family_arithmetic(
    file: &SourceFile,
    number: usize,
    code: &str,
    out: &mut Vec<Diagnostic>,
) {
    let toks = tokenize(code);
    for w in toks.windows(3) {
        let (Tok::Ident(a), Tok::Op(op), Tok::Ident(b)) = (&w[0], &w[1], &w[2]) else {
            continue;
        };
        if !UNIT_OPS.contains(op) {
            continue;
        }
        let (Some(fa), Some(fb)) = (unit_family(a), unit_family(b)) else {
            continue;
        };
        if fa != fb {
            out.push(Diagnostic::new(
                &file.rel_path,
                number,
                UNIT_SAFETY,
                format!(
                    "mixed-unit arithmetic: `{a} {op} {b}` combines {} with {}; convert \
                     explicitly through the `Watts`/`Joules` newtypes (vizpower::energy)",
                    fa.name(),
                    fb.name()
                ),
            ));
        }
    }
}

/// Rule B: in boundary files, a watt-/joule-named `f64` declaration
/// (`cap_watts: f64`, `fn energy_joules(..) -> f64`) bypasses the newtypes.
fn raw_f64_boundary(file: &SourceFile, number: usize, code: &str, out: &mut Vec<Diagnostic>) {
    let chars: Vec<char> = code.chars().collect();
    let bytes = code.as_bytes();
    let mut search = 0;
    while let Some(pos) = code[search..].find("f64") {
        let at = search + pos;
        search = at + 3;
        // Token boundaries: reject `f641` or `xf64`.
        let before = at.checked_sub(1).map(|i| bytes[i] as char);
        let after = chars.get(at + 3);
        if before.is_some_and(|c| c.is_alphanumeric() || c == '_')
            || after.is_some_and(|c| c.is_alphanumeric() || *c == '_')
        {
            continue;
        }
        let lead: String = code[..at].trim_end().to_string();
        let family = if let Some(prefix) = lead.strip_suffix(':') {
            unit_family(&trailing_ident(prefix))
        } else if lead.ends_with("->") {
            code.find("fn ")
                .map(|f| leading_ident(&code[f + 3..]))
                .and_then(|name| unit_family(&name))
        } else {
            None
        };
        let Some(family) = family else { continue };
        let newtype = match family {
            UnitFamily::Watts => "Watts",
            UnitFamily::Joules => "Joules",
            _ => continue, // seconds/hertz stay raw f64 by design
        };
        out.push(Diagnostic::new(
            &file.rel_path,
            number,
            UNIT_SAFETY,
            format!(
                "raw `f64` carries a {} quantity across the power API boundary; use the \
                 `{newtype}` newtype from powersim::units",
                family.name()
            ),
        ));
    }
}

fn trailing_ident(s: &str) -> String {
    s.trim_end()
        .chars()
        .rev()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
        .collect()
}

fn leading_ident(s: &str) -> String {
    s.trim_start()
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect()
}

/// Lexical tokenizer for rule A. Field paths collapse to their final
/// segment (`r.energy_joules` → `energy_joules`); any call expression
/// (`x.value()`, `f(..)`, `m!(..)`) becomes an opaque token, which makes
/// `.value()` and the newtype conversion methods the sanctioned escape
/// hatches.
fn tokenize(code: &str) -> Vec<Tok> {
    const MULTI: &[&str] = &[
        "<<=", ">>=", "..=", "->", "=>", "..", "==", "!=", "<=", ">=", "+=", "-=", "*=", "/=",
        "&&", "||", "<<", ">>",
    ];
    let chars: Vec<char> = code.chars().collect();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c.is_whitespace() {
            i += 1;
        } else if c.is_alphabetic() || c == '_' {
            let (tok, next) = read_path(&chars, i);
            toks.push(tok);
            i = next;
        } else if c.is_ascii_digit() {
            i = skip_number(&chars, i);
            toks.push(Tok::Other);
        } else {
            let rest: String = chars[i..].iter().take(3).collect();
            if let Some(op) = MULTI.iter().find(|m| rest.starts_with(**m)) {
                toks.push(if UNIT_OPS.contains(op) {
                    Tok::Op(op)
                } else {
                    Tok::Other
                });
                i += op.len();
            } else {
                let single: &'static str = match c {
                    '+' => "+",
                    '-' => "-",
                    '<' => "<",
                    '>' => ">",
                    _ => "",
                };
                toks.push(if single.is_empty() {
                    Tok::Other
                } else {
                    Tok::Op(single)
                });
                i += 1;
            }
        }
    }
    toks
}

/// Read an identifier or dotted path starting at `i`; returns the token
/// and the index just past it.
fn read_path(chars: &[char], mut i: usize) -> (Tok, usize) {
    let mut last = String::new();
    loop {
        last.clear();
        while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
            last.push(chars[i]);
            i += 1;
        }
        // Follow `.ident` chains; stop at `.0` tuple access or `..` ranges.
        if i + 1 < chars.len()
            && chars[i] == '.'
            && (chars[i + 1].is_alphabetic() || chars[i + 1] == '_')
        {
            i += 1;
            continue;
        }
        break;
    }
    // A call makes the value's unit opaque; `!` marks a macro.
    let mut j = i;
    while j < chars.len() && chars[j].is_whitespace() {
        j += 1;
    }
    if j < chars.len() && (chars[j] == '(' || chars[j] == '!') {
        return (Tok::Other, i);
    }
    (Tok::Ident(last), i)
}

fn skip_number(chars: &[char], mut i: usize) -> usize {
    let mut prev_exp = false;
    while i < chars.len() {
        let c = chars[i];
        let keep = c.is_ascii_alphanumeric()
            || c == '_'
            || c == '.'
            || (prev_exp && (c == '+' || c == '-'));
        if !keep {
            break;
        }
        prev_exp = c == 'e' || c == 'E';
        i += 1;
    }
    i
}

// ---------------------------------------------------------------------------
// Reduction determinism
// ---------------------------------------------------------------------------

pub fn reduction_determinism(
    file: &SourceFile,
    allow: &Allowlist,
    used: &mut [bool],
    out: &mut Vec<Diagnostic>,
) {
    let mut skip_until = 0;
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test || idx < skip_until {
            continue;
        }
        if !PAR_SEEDS.iter().any(|s| line.code.contains(s)) {
            continue;
        }
        let statement = file.statement_at(idx, 16);
        // One statement, one diagnostic: later seed lines of this chain
        // are part of the same statement and must not re-fire.
        skip_until = idx + file.statement_span(idx, 16);
        if !has_unordered_float_reduction(&statement) {
            continue;
        }
        if allow.covers(used, &file.rel_path, &line.raw) {
            continue;
        }
        out.push(Diagnostic::new(
            &file.rel_path,
            line.number,
            REDUCTION_DETERMINISM,
            format!(
                "unordered parallel float reduction; results may vary across thread counts \
                 — make the combine order deterministic or register the site in \
                 {REDUCTIONS_ALLOW}"
            ),
        ));
    }
}

/// `.reduce(`/`.fold(` are unordered combines under rayon; `.sum()` is
/// flagged when the element type is floating (or unannotated, in which
/// case we stay conservative). Integer sums are associative and exact.
fn has_unordered_float_reduction(statement: &str) -> bool {
    if statement.contains(".reduce(") || statement.contains(".fold(") {
        return true;
    }
    let mut search = 0;
    while let Some(pos) = statement[search..].find(".sum") {
        let rest = &statement[search + pos + 4..];
        search += pos + 4;
        if rest.starts_with("()") {
            return true; // unannotated: conservative
        }
        if let Some(ty) = rest.strip_prefix("::<") {
            if ty.starts_with('f') {
                return true;
            }
        }
    }
    false
}

// ---------------------------------------------------------------------------
// Registry dispatch
// ---------------------------------------------------------------------------

/// Outside the registry crate (and the conformance reference
/// implementations), non-test code must not call a filter constructor
/// directly: the one sanctioned construction site is
/// `AlgorithmSpec::build`, which keeps every run's parameterization
/// canonical, serializable, and fingerprinted into the journal. Path
/// scoping lives in [`crate::lint_file`].
pub fn registry_dispatch(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    for line in &file.lines {
        if line.in_test {
            continue;
        }
        for ctor in FILTER_CONSTRUCTORS {
            if !calls_constructor(&line.code, ctor) {
                continue;
            }
            let display = ctor.trim_end_matches('(');
            out.push(Diagnostic::new(
                &file.rel_path,
                line.number,
                REGISTRY_DISPATCH,
                format!(
                    "direct `{display}` construction bypasses the algorithm registry; \
                     build the filter from an `AlgorithmSpec` (vizalgo::spec) so the run \
                     carries a canonical, fingerprintable parameterization"
                ),
            ));
        }
    }
}

/// True when `code` contains `ctor` at a token boundary: the character
/// before the type name may not extend an identifier (so `MyContour::new(`
/// does not match), while a path prefix (`vizalgo::Contour::new(`) does.
fn calls_constructor(code: &str, ctor: &str) -> bool {
    let bytes = code.as_bytes();
    let mut search = 0;
    while let Some(pos) = code[search..].find(ctor) {
        let at = search + pos;
        search = at + 1;
        let before = at.checked_sub(1).map(|i| bytes[i] as char);
        if !before.is_some_and(|c| c.is_alphanumeric() || c == '_') {
            return true;
        }
    }
    false
}

// ---------------------------------------------------------------------------
// Schema docs
// ---------------------------------------------------------------------------

/// Every public variant of the journal's wire enums ([`SCHEMA_ENUMS`] in
/// the trace source) must have a row in the schema table of
/// `docs/OBSERVABILITY.md`, and every row must name a live variant. The
/// table is the marker-delimited block of `| \`Variant\` | ...` rows; a
/// row whose first cell is not backticked (headers, separators) is
/// ignored.
pub fn schema_docs(trace: &SourceFile, doc_text: &str, out: &mut Vec<Diagnostic>) {
    let begin = marker_line(doc_text, SCHEMA_TABLE_BEGIN);
    let end = marker_line(doc_text, SCHEMA_TABLE_END);
    let (Some(begin), Some(end)) = (begin, end) else {
        out.push(Diagnostic::new(
            OBSERVABILITY_DOC,
            1,
            SCHEMA_DOCS,
            format!(
                "missing `{SCHEMA_TABLE_BEGIN}`/`{SCHEMA_TABLE_END}` markers around the \
                 event schema table"
            ),
        ));
        return;
    };
    let rows = schema_table_rows(doc_text, begin, end);
    let mut variants = Vec::new();
    for enum_name in SCHEMA_ENUMS {
        for (variant, line) in enum_variants(trace, enum_name) {
            variants.push((*enum_name, variant, line));
        }
    }
    for (enum_name, variant, line) in &variants {
        if !rows.iter().any(|(name, _)| name == variant) {
            out.push(Diagnostic::new(
                &trace.rel_path,
                *line,
                SCHEMA_DOCS,
                format!(
                    "public event variant `{enum_name}::{variant}` is not documented in the \
                     {OBSERVABILITY_DOC} schema table; add a row between the markers"
                ),
            ));
        }
    }
    for (name, line) in &rows {
        if !variants.iter().any(|(_, v, _)| v == name) {
            out.push(Diagnostic::new(
                OBSERVABILITY_DOC,
                *line,
                SCHEMA_DOCS,
                format!(
                    "stale schema row `{name}` matches no public variant of {} in {}; remove it",
                    SCHEMA_ENUMS.join("/"),
                    trace.rel_path
                ),
            ));
        }
    }
}

/// 1-based line number of the first line containing `marker`.
fn marker_line(doc_text: &str, marker: &str) -> Option<usize> {
    doc_text
        .lines()
        .position(|l| l.contains(marker))
        .map(|i| i + 1)
}

/// The `(variant name, 1-based line)` of each backticked first cell in
/// table rows strictly between the marker lines.
fn schema_table_rows(doc_text: &str, begin: usize, end: usize) -> Vec<(String, usize)> {
    let mut rows = Vec::new();
    for (i, raw) in doc_text.lines().enumerate() {
        let number = i + 1;
        if number <= begin || number >= end {
            continue;
        }
        let Some(rest) = raw.trim().strip_prefix('|') else {
            continue;
        };
        let cell = rest.split('|').next().unwrap_or("").trim();
        if let Some(name) = cell
            .strip_prefix('`')
            .and_then(|s| s.strip_suffix('`'))
            .filter(|s| !s.is_empty())
        {
            rows.push((name.to_string(), number));
        }
    }
    rows
}

/// The `(variant name, 1-based line)` of each variant of `pub enum
/// {enum_name}` in the cleaned source: inside the enum's braces, a
/// depth-1 code line starting with an uppercase identifier declares a
/// variant (attributes start with `#`, doc comments are stripped).
fn enum_variants(file: &SourceFile, enum_name: &str) -> Vec<(String, usize)> {
    let mut variants = Vec::new();
    let mut inside = false;
    let mut depth: i64 = 0;
    for line in &file.lines {
        if line.in_test {
            continue;
        }
        if !inside {
            if is_enum_header(&line.code, enum_name) {
                inside = true;
                depth = brace_delta(&line.code);
                if depth <= 0 && line.code.contains('}') {
                    inside = false; // one-line (empty) enum
                }
            }
            continue;
        }
        if depth == 1 {
            let trimmed = line.code.trim();
            if trimmed
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_uppercase())
            {
                let ident: String = trimmed
                    .chars()
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .collect();
                variants.push((ident, line.number));
            }
        }
        depth += brace_delta(&line.code);
        if depth <= 0 {
            inside = false;
        }
    }
    variants
}

/// True when the cleaned line declares `pub enum {name}` (with a token
/// boundary after the name, so `Event` does not match `EventKind`).
fn is_enum_header(code: &str, name: &str) -> bool {
    let needle = format!("pub enum {name}");
    let Some(pos) = code.find(&needle) else {
        return false;
    };
    let after = code[pos + needle.len()..].chars().next();
    !after.is_some_and(|c| c.is_alphanumeric() || c == '_')
}

/// Net `{`/`}` depth change of a cleaned code line.
fn brace_delta(code: &str) -> i64 {
    let mut d = 0;
    for c in code.chars() {
        match c {
            '{' => d += 1,
            '}' => d -= 1,
            _ => {}
        }
    }
    d
}
