//! CLI for the workspace automation tasks.
//!
//! ```text
//! cargo xtask lint [--strict] [--root DIR]   # repo-specific static analysis
//! cargo xtask analyze [--json] [--ratchet] [--write-baseline] [--root DIR]
//!                                            # hot-path analyzer + findings ratchet
//! cargo xtask ci   [--root DIR]              # full local CI: fmt, clippy, lint, analyze, build, test, doc
//! ```
//!
//! Exit codes: 0 clean, 1 policy violations / ratchet regression, 2 usage
//! or environment error.

use std::env;
use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};

use xtask::{analyze, lint_workspace, Options};

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let mut cmd = None;
    let mut root = None;
    let mut strict = false;
    let mut json = false;
    let mut do_ratchet = false;
    let mut write_baseline = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--strict" => strict = true,
            "--json" => json = true,
            "--ratchet" => do_ratchet = true,
            "--write-baseline" => write_baseline = true,
            "--root" => {
                i += 1;
                match args.get(i) {
                    Some(dir) => root = Some(PathBuf::from(dir)),
                    None => return ExitCode::from(usage("--root requires a directory argument")),
                }
            }
            "lint" | "analyze" | "ci" | "help" if cmd.is_none() => cmd = Some(args[i].clone()),
            other => return ExitCode::from(usage(&format!("unrecognized argument `{other}`"))),
        }
        i += 1;
    }

    let root = match root.map_or_else(find_workspace_root, Ok) {
        Ok(dir) => dir,
        Err(e) => {
            eprintln!("xtask: {e}");
            return ExitCode::from(2);
        }
    };

    let code = match cmd.as_deref() {
        Some("lint") => run_lint(&root, strict),
        Some("analyze") => run_analyze(&root, json, do_ratchet, write_baseline),
        Some("ci") => run_ci(&root, strict),
        _ => usage(""),
    };
    ExitCode::from(code)
}

fn usage(error: &str) -> u8 {
    if !error.is_empty() {
        eprintln!("xtask: {error}");
    }
    eprintln!(
        "usage: cargo xtask <lint [--strict] | analyze [--json] [--ratchet] [--write-baseline] | ci> [--root DIR]"
    );
    2
}

/// `xtask analyze`: run the hot-path passes. Plain runs print the
/// worklist and always exit 0 (findings are work, not violations);
/// `--ratchet` gates on the committed baseline; `--write-baseline`
/// (re-)pins it.
fn run_analyze(root: &Path, json: bool, do_ratchet: bool, write_baseline: bool) -> u8 {
    let analysis = match analyze::analyze_workspace(root) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("xtask analyze: i/o error walking {}: {e}", root.display());
            return 2;
        }
    };
    if json {
        print!("{}", analyze::to_json(&analysis));
    } else {
        for f in &analysis.findings {
            println!("{f}");
        }
        eprintln!(
            "xtask analyze: {} finding(s) in {} hot-path files",
            analysis.findings.len(),
            analysis.files_scanned
        );
    }
    let counts = analysis.counts();
    if write_baseline {
        if let Err(e) = analyze::write_baseline(root, &counts) {
            eprintln!(
                "xtask analyze: cannot write {}: {e}",
                analyze::ANALYSIS_BASELINE
            );
            return 2;
        }
        eprintln!(
            "xtask analyze: baseline written to {}; commit it",
            analyze::ANALYSIS_BASELINE
        );
        return 0;
    }
    if !do_ratchet {
        return 0;
    }
    let Some(baseline) = analyze::load_baseline(root) else {
        eprintln!(
            "xtask analyze: no {} found; pin one with `cargo xtask analyze --write-baseline`",
            analyze::ANALYSIS_BASELINE
        );
        return 1;
    };
    match analyze::ratchet(&baseline, &counts) {
        analyze::Ratchet::Clean => {
            eprintln!("xtask analyze: ratchet clean (all counts at baseline)");
            0
        }
        analyze::Ratchet::Tightened(improved) => {
            // Self-pruning: fixed findings shrink the committed baseline,
            // the same only-shrinks semantics as the lint allowlists.
            for (pass, base, now) in &improved {
                eprintln!("xtask analyze: {pass} improved {base} -> {now}");
            }
            if let Err(e) = analyze::write_baseline(root, &counts) {
                eprintln!(
                    "xtask analyze: cannot rewrite {}: {e}",
                    analyze::ANALYSIS_BASELINE
                );
                return 2;
            }
            eprintln!(
                "xtask analyze: baseline tightened in {}; commit the shrink",
                analyze::ANALYSIS_BASELINE
            );
            0
        }
        analyze::Ratchet::Regressed(worse) => {
            for (pass, base, now) in &worse {
                eprintln!(
                    "xtask analyze: ratchet FAIL: {pass} rose {base} -> {now}; fix the new \
                     finding(s) or justify a re-pin with --write-baseline (see docs/ANALYZE.md)"
                );
            }
            1
        }
    }
}

fn run_lint(root: &Path, strict: bool) -> u8 {
    let report = match lint_workspace(root, &Options { strict }) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("xtask lint: i/o error walking {}: {e}", root.display());
            return 2;
        }
    };
    for d in &report.diagnostics {
        println!("{d}");
    }
    if report.is_clean() {
        eprintln!("xtask lint: {} files clean", report.files_scanned);
        0
    } else {
        eprintln!(
            "xtask lint: {} violation(s) in {} files scanned",
            report.diagnostics.len(),
            report.files_scanned
        );
        1
    }
}

/// The local CI umbrella, mirroring .github/workflows/ci.yml.
fn run_ci(root: &Path, strict: bool) -> u8 {
    let steps: &[(&str, &[&str], &[(&str, &str)])] = &[
        ("cargo fmt --check", &["fmt", "--all", "--check"], &[]),
        (
            "cargo clippy",
            &[
                "clippy",
                "--workspace",
                "--all-targets",
                "--",
                "-D",
                "warnings",
            ],
            &[],
        ),
    ];
    for (label, argv, envs) in steps {
        if let Some(code) = run_step(root, label, argv, envs) {
            return code;
        }
    }
    let lint = run_lint(root, strict);
    if lint != 0 {
        return lint;
    }
    eprintln!("xtask ci: running cargo xtask analyze --ratchet");
    let ratchet = run_analyze(root, false, true, false);
    if ratchet != 0 {
        return ratchet;
    }
    let tier1: &[(&str, &[&str], &[(&str, &str)])] = &[
        ("cargo build --release", &["build", "--release"], &[]),
        (
            "cargo test --workspace -q",
            &["test", "--workspace", "-q"],
            &[],
        ),
        (
            "reproduce conformance --quick",
            &[
                "run",
                "--release",
                "--bin",
                "reproduce",
                "--",
                "conformance",
                "--quick",
            ],
            &[],
        ),
        (
            "reproduce conformance --quick --backend dpp",
            &[
                "run",
                "--release",
                "--bin",
                "reproduce",
                "--",
                "conformance",
                "--quick",
                "--backend",
                "dpp",
            ],
            &[],
        ),
        (
            "reproduce bench --quick",
            &[
                "run",
                "--release",
                "--bin",
                "reproduce",
                "--",
                "bench",
                "--quick",
            ],
            &[],
        ),
        (
            "reproduce bench --quick --backend both (DPP comparison)",
            &[
                "run",
                "--release",
                "--bin",
                "reproduce",
                "--",
                "bench",
                "--quick",
                "--backend",
                "both",
                "--algo",
                "contour,threshold,isovolume,slice",
            ],
            &[],
        ),
        (
            "reproduce serve --quick (study service smoke)",
            &[
                "run",
                "--release",
                "--bin",
                "reproduce",
                "--",
                "serve",
                "--quick",
            ],
            &[],
        ),
        (
            "reproduce advect --quick (time-varying scenario sweep)",
            &[
                "run",
                "--release",
                "--bin",
                "reproduce",
                "--",
                "advect",
                "--quick",
            ],
            &[],
        ),
        (
            "cargo doc --no-deps (RUSTDOCFLAGS='-D warnings')",
            &["doc", "--no-deps", "--workspace"],
            &[("RUSTDOCFLAGS", "-D warnings")],
        ),
    ];
    for (label, argv, envs) in tier1 {
        if let Some(code) = run_step(root, label, argv, envs) {
            return code;
        }
    }
    eprintln!("xtask ci: all steps passed");
    0
}

/// Run one cargo step with extra environment variables; `Some(code)`
/// means it failed and CI should stop.
fn run_step(root: &Path, label: &str, argv: &[&str], envs: &[(&str, &str)]) -> Option<u8> {
    eprintln!("xtask ci: running {label}");
    match Command::new("cargo")
        .args(argv)
        .envs(envs.iter().copied())
        .current_dir(root)
        .status()
    {
        Ok(status) if status.success() => None,
        Ok(_) => {
            eprintln!("xtask ci: step failed: {label}");
            Some(1)
        }
        Err(e) => {
            eprintln!("xtask ci: could not spawn cargo for {label}: {e}");
            Some(2)
        }
    }
}

/// Walk upward from the current directory to the workspace root (the
/// first Cargo.toml declaring `[workspace]`).
fn find_workspace_root() -> Result<PathBuf, String> {
    let mut dir = env::current_dir().map_err(|e| format!("cannot read cwd: {e}"))?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            let text = std::fs::read_to_string(&manifest).unwrap_or_default();
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err("no workspace root found above the current directory; pass --root".into());
        }
    }
}
