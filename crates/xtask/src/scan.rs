//! Source model for the lint and analyze passes.
//!
//! The analyzer is deliberately lexical: it never parses Rust. Each file
//! is tokenized once by [`crate::lex`] and two views are derived from
//! the same token stream: the per-line cleaned view the lint passes
//! consume (comments and string/char literal *contents* removed), and
//! the block-model annotations (loop/closure nesting depth, enclosing
//! function) the analyze passes consume. That keeps the crate std-only
//! (it must build before any dependency is compiled) while still being
//! precise enough for the repo policies, whose trigger tokens
//! (`.unwrap()`, `par_iter`, `Vec::new(`, `push_span(`) are unambiguous
//! at the token level.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::lex::{self, Kind};

/// One physical source line after lexical cleaning.
#[derive(Debug, Clone)]
pub struct Line {
    /// 1-based line number, for diagnostics.
    pub number: usize,
    /// The line with comments and string/char literal *contents* removed.
    pub code: String,
    /// The comment text found on the line (line and block comments).
    pub comment: String,
    /// The raw line as written, used for allowlist substring matching.
    pub raw: String,
    /// True when the line sits inside a `#[cfg(test)]`-gated item.
    pub in_test: bool,
    /// Loop/closure nesting depth from the block model: how many
    /// `for`/`while`/`loop` bodies and iterator-adapter closures enclose
    /// this line.
    pub loop_depth: usize,
    /// Name of the innermost enclosing `fn` body, if any.
    pub fn_name: Option<String>,
}

/// A cleaned source file, addressed by its workspace-relative path.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with forward slashes.
    pub rel_path: String,
    pub lines: Vec<Line>,
    /// The raw token stream the views above were derived from.
    pub tokens: Vec<lex::Token>,
    /// Block-model context of each token (parallel to `tokens`), for
    /// passes that need token-accurate loop depth rather than the
    /// per-line maximum.
    pub token_ctx: Vec<lex::LineCtx>,
}

impl SourceFile {
    pub fn parse(rel_path: &str, text: &str) -> SourceFile {
        let tokens = lex::lex(text);
        let token_ctx = lex::token_contexts(&tokens);
        let cleaned = clean(&tokens);
        let contexts = lex::line_contexts(&tokens, cleaned.len());
        let raws: Vec<&str> = text.lines().collect();
        let mut lines: Vec<Line> = cleaned
            .into_iter()
            .enumerate()
            .map(|(i, (code, comment))| {
                let ctx = contexts.get(i).cloned().unwrap_or_default();
                Line {
                    number: i + 1,
                    code,
                    comment,
                    raw: raws.get(i).unwrap_or(&"").to_string(),
                    in_test: false,
                    loop_depth: ctx.loop_depth,
                    fn_name: ctx.fn_name,
                }
            })
            .collect();
        mark_test_regions(&mut lines);
        SourceFile {
            rel_path: rel_path.to_string(),
            lines,
            tokens,
            token_ctx,
        }
    }

    pub fn load(root: &Path, rel_path: &str) -> io::Result<SourceFile> {
        let text = fs::read_to_string(root.join(rel_path))?;
        Ok(SourceFile::parse(rel_path, &text))
    }

    /// Number of lines (from `start`, capped at `max`) forming one
    /// statement: joining continues while brackets stay open or the next
    /// line continues a method chain (`.`/`?`), and stops after a `;`
    /// outside brackets. Lets the lints see a multi-line iterator chain
    /// as one unit.
    pub fn statement_span(&self, start: usize, max: usize) -> usize {
        let Some(first) = self.lines.get(start) else {
            return 0;
        };
        let mut span = 1;
        let mut depth = bracket_delta(&first.code);
        while span < max {
            let last = &self.lines[start + span - 1];
            if depth <= 0 && last.code.contains(';') {
                break;
            }
            let Some(next) = self.lines.get(start + span) else {
                break;
            };
            let trimmed = next.code.trim_start();
            if depth <= 0 && !(trimmed.starts_with('.') || trimmed.starts_with('?')) {
                break;
            }
            depth += bracket_delta(&next.code);
            span += 1;
        }
        span
    }

    /// The joined code of the statement starting at `start`.
    pub fn statement_at(&self, start: usize, max: usize) -> String {
        let span = self.statement_span(start, max);
        let mut joined = String::new();
        for line in self.lines.iter().skip(start).take(span) {
            joined.push(' ');
            joined.push_str(line.code.trim());
        }
        joined
    }
}

/// Net bracket depth change of a cleaned code line.
fn bracket_delta(code: &str) -> i64 {
    let mut d = 0;
    for c in code.chars() {
        match c {
            '(' | '[' | '{' => d += 1,
            ')' | ']' | '}' => d -= 1,
            _ => {}
        }
    }
    d
}

/// Derive the per-line `(code, comment)` cleaned view from the token
/// stream: string-family literals collapse to `""`, char literals to
/// `' '`, comments move to the comment column, and everything else is
/// kept verbatim. Multi-line tokens contribute their placeholder halves
/// to the lines they open and close on.
fn clean(tokens: &[lex::Token]) -> Vec<(String, String)> {
    enum Dst {
        Code,
        Comment,
        Discard,
    }
    let mut out = Vec::new();
    let mut code = String::new();
    let mut comment = String::new();
    // Route token text to a column, flushing a line at each newline.
    fn spill(
        text: &str,
        dst: Dst,
        code: &mut String,
        comment: &mut String,
        out: &mut Vec<(String, String)>,
    ) {
        for c in text.chars() {
            if c == '\n' {
                out.push((std::mem::take(code), std::mem::take(comment)));
            } else {
                match dst {
                    Dst::Code => code.push(c),
                    Dst::Comment => comment.push(c),
                    Dst::Discard => {}
                }
            }
        }
    }
    for t in tokens {
        match t.kind {
            Kind::Ident | Kind::Lifetime | Kind::Num | Kind::Punct => code.push_str(&t.text),
            Kind::Ws => spill(&t.text, Dst::Code, &mut code, &mut comment, &mut out),
            Kind::Str | Kind::RawStr => {
                code.push('"');
                spill(&t.text, Dst::Discard, &mut code, &mut comment, &mut out);
                code.push('"');
            }
            Kind::Char => code.push_str("' '"),
            Kind::LineComment => comment.push_str(&t.text),
            Kind::BlockComment => spill(&t.text, Dst::Comment, &mut code, &mut comment, &mut out),
        }
    }
    out.push((code, comment));
    out
}

/// Mark every line that sits inside a `#[cfg(test)]` item (typically the
/// inline `mod tests`). The three lints only police non-test library code.
fn mark_test_regions(lines: &mut [Line]) {
    let mut depth: i64 = 0;
    // Brace depth at which an armed `#[cfg(test)]` item opened, if any.
    let mut test_open_depth: Option<i64> = None;
    // A `#[cfg(test)]` attribute was seen but its item has not opened yet.
    let mut armed = false;

    for line in lines.iter_mut() {
        if line.code.contains("#[cfg(test)]") || line.code.contains("#[cfg(all(test") {
            armed = true;
        }
        if armed || test_open_depth.is_some() {
            line.in_test = true;
        }
        for c in line.code.chars() {
            match c {
                '{' => {
                    if armed && test_open_depth.is_none() {
                        test_open_depth = Some(depth);
                        armed = false;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if test_open_depth == Some(depth) {
                        test_open_depth = None;
                    }
                }
                ';' => {
                    // `#[cfg(test)] use foo;` — attribute gated a single
                    // braceless item; disarm at its end.
                    if armed && test_open_depth.is_none() {
                        armed = false;
                    }
                }
                _ => {}
            }
        }
    }
}

/// Collect the workspace-relative paths of every library source file the
/// lints look at: `src/**/*.rs` of the root package and of each crate under
/// `crates/`, excluding the analyzer itself.
pub fn workspace_sources(root: &Path) -> io::Result<Vec<String>> {
    let mut found = Vec::new();
    let mut roots: Vec<PathBuf> = vec![root.join("src")];
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut entries: Vec<_> = fs::read_dir(&crates_dir)?
            .filter_map(Result::ok)
            .map(|e| e.path())
            .collect();
        entries.sort();
        for entry in entries {
            if entry.is_dir() && entry.file_name().is_some_and(|n| n != "xtask") {
                roots.push(entry.join("src"));
            }
        }
    }
    for dir in roots {
        if dir.is_dir() {
            walk(&dir, &mut found)?;
        }
    }
    let mut rels: Vec<String> = found
        .iter()
        .filter_map(|p| p.strip_prefix(root).ok())
        .map(|p| {
            p.components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/")
        })
        .collect();
    rels.sort();
    Ok(rels)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            walk(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(text: &str) -> Vec<String> {
        SourceFile::parse("crates/vizalgo/src/x.rs", text)
            .lines
            .into_iter()
            .map(|l| l.code)
            .collect()
    }

    #[test]
    fn line_comments_and_strings_are_stripped() {
        let got = codes("let a = \"x.unwrap() // not code\"; // real comment .expect(\n");
        assert_eq!(got[0], "let a = \"\"; ");
        let file = SourceFile::parse(
            "crates/vizalgo/src/x.rs",
            "let x = 1; // lint: infallible because fixed\n",
        );
        assert!(file.lines[0].comment.contains("lint: infallible because"));
    }

    #[test]
    fn raw_strings_and_char_literals_are_stripped() {
        let got = codes("let re = r#\"panic!(\"#; let c = '['; let l: &'static str = \"\";\n");
        assert_eq!(
            got[0],
            "let re = \"\"; let c = ' '; let l: &'static str = \"\";"
        );
    }

    #[test]
    fn nested_block_comments_are_stripped() {
        let got = codes("a /* one /* two */ still */ b\n");
        assert_eq!(got[0], "a  b");
    }

    #[test]
    fn cfg_test_regions_are_marked() {
        let text = "pub fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn helper() { x.unwrap(); }\n}\npub fn lib2() {}\n";
        let file = SourceFile::parse("crates/vizalgo/src/x.rs", text);
        let flags: Vec<bool> = file.lines.iter().map(|l| l.in_test).collect();
        assert_eq!(flags, vec![false, true, true, true, true, false, false]);
    }

    #[test]
    fn cfg_test_on_a_braceless_item_disarms_at_semicolon() {
        let text = "#[cfg(test)]\nuse std::fmt;\npub fn lib() {}\n";
        let file = SourceFile::parse("crates/vizalgo/src/x.rs", text);
        let flags: Vec<bool> = file.lines.iter().map(|l| l.in_test).collect();
        assert_eq!(flags, vec![true, true, false, false]);
    }

    #[test]
    fn statements_join_across_method_chains_and_open_brackets() {
        let text = "let x = v.par_iter()\n    .map(f)\n    .sum::<f64>();\nlet y = 1;\n";
        let file = SourceFile::parse("crates/vizalgo/src/x.rs", text);
        assert_eq!(file.statement_span(0, 16), 3);
        assert!(file.statement_at(0, 16).contains(".sum::<f64>()"));
        assert_eq!(file.statement_span(3, 16), 1);
    }
}
