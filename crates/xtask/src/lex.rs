//! A dependency-free lexer for Rust source, plus the lightweight block
//! model built on it.
//!
//! This replaces the line-cleaning heuristics that used to live in
//! [`crate::scan`]: instead of a per-line state machine, the whole file
//! is tokenized once and every downstream view (cleaned lines for the
//! lint passes, loop/closure nesting for the analyze passes) is derived
//! from the same token stream. The lexer understands the constructs the
//! old heuristics got wrong or could not see:
//!
//! * raw strings with any number of hashes (`r"…"`, `r#"…"#`) and the
//!   byte/C-string prefixes (`b"…"`, `br#"…"#`, `c"…"`, `cr#"…"#`),
//!   including interior quotes that used to leak literal contents into
//!   the cleaned code view;
//! * nested block comments (`/* /* */ still comment */`);
//! * char literals vs lifetimes (`'a'` vs `'a`), including escaped and
//!   byte chars (`'\n'`, `b'x'`);
//! * raw identifiers (`r#fn`), which are identifiers, not raw strings.
//!
//! It is still a *lexer*, not a parser: the block model below it is a
//! heuristic over the token stream (brace frames classified by the
//! keywords that precede them), which is exactly enough for the
//! hot-path analyzer and keeps the crate std-only.

/// Kind of one lexical token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Identifier or keyword, including raw identifiers (`r#fn`).
    Ident,
    /// Lifetime or loop label (`'a`, `'static`) — no closing quote.
    Lifetime,
    /// Char or byte-char literal (`'x'`, `'\n'`, `b'x'`).
    Char,
    /// String, byte-string, or C-string literal (`"…"`, `b"…"`, `c"…"`).
    Str,
    /// Raw string literal of any prefix (`r"…"`, `r#"…"#`, `br#"…"#`).
    RawStr,
    /// Numeric literal (including suffixes and float exponents).
    Num,
    /// One punctuation character.
    Punct,
    /// Line comment, doc comments included (`//`, `///`, `//!`).
    LineComment,
    /// Block comment, nesting included (`/* /* */ */`, `/** … */`).
    BlockComment,
    /// Whitespace run (may span newlines).
    Ws,
}

/// One token: its kind, verbatim text, and the 1-based line it starts on.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: Kind,
    pub text: String,
    pub line: usize,
}

impl Token {
    /// True for tokens the block model reasons about (not whitespace or
    /// comments).
    pub fn is_significant(&self) -> bool {
        !matches!(self.kind, Kind::Ws | Kind::LineComment | Kind::BlockComment)
    }
}

/// Tokenize a whole source text. Unterminated literals and comments run
/// to end of input instead of erroring: the analyzer must never fail on
/// a file rustc would reject, it only has to stay sane on files rustc
/// accepts.
pub fn lex(text: &str) -> Vec<Token> {
    let chars: Vec<char> = text.chars().collect();
    let mut toks = Vec::new();
    let mut i = 0;
    let mut line = 1;
    while i < chars.len() {
        let start = i;
        let start_line = line;
        let c = chars[i];
        let kind = if c.is_whitespace() {
            while i < chars.len() && chars[i].is_whitespace() {
                if chars[i] == '\n' {
                    line += 1;
                }
                i += 1;
            }
            Kind::Ws
        } else if c == '/' && chars.get(i + 1) == Some(&'/') {
            while i < chars.len() && chars[i] != '\n' {
                i += 1;
            }
            Kind::LineComment
        } else if c == '/' && chars.get(i + 1) == Some(&'*') {
            i += 2;
            let mut depth = 1u32;
            while i < chars.len() && depth > 0 {
                if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    i += 2;
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    if chars[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
            Kind::BlockComment
        } else if c == '"' {
            i = skip_str(&chars, i, &mut line);
            Kind::Str
        } else if c == '\'' {
            let (next, kind) = char_or_lifetime(&chars, i, &mut line);
            i = next;
            kind
        } else if c.is_alphabetic() || c == '_' {
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            let ident: String = chars[start..i].iter().collect();
            match ident.as_str() {
                "r" | "br" | "cr" if raw_quote_follows(&chars, i) => {
                    i = skip_raw_str(&chars, i, &mut line);
                    Kind::RawStr
                }
                "r" if chars.get(i) == Some(&'#') && is_ident_start(chars.get(i + 1)) => {
                    // Raw identifier `r#fn`: one hash, then a plain ident.
                    i += 1;
                    while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                        i += 1;
                    }
                    Kind::Ident
                }
                "b" | "c" if chars.get(i) == Some(&'"') => {
                    i = skip_str(&chars, i, &mut line);
                    Kind::Str
                }
                "b" if chars.get(i) == Some(&'\'') => {
                    let (next, _) = char_or_lifetime(&chars, i, &mut line);
                    i = next;
                    Kind::Char
                }
                _ => Kind::Ident,
            }
        } else if c.is_ascii_digit() {
            i = skip_number(&chars, i);
            Kind::Num
        } else {
            i += 1;
            Kind::Punct
        };
        toks.push(Token {
            kind,
            text: chars[start..i].iter().collect(),
            line: start_line,
        });
    }
    toks
}

/// Disambiguate `'x'` / `'\n'` (char literal) from `'a` (lifetime or
/// label) at the opening quote; returns the index past the token.
fn char_or_lifetime(chars: &[char], mut i: usize, line: &mut usize) -> (usize, Kind) {
    // i is at the `'`.
    if chars.get(i + 1) == Some(&'\\') {
        // Escaped char literal: skip the backslash and the escaped
        // character, then scan to the closing quote (same line).
        i += 2;
        if i < chars.len() {
            i += 1;
        }
        while i < chars.len() && chars[i] != '\'' && chars[i] != '\n' {
            i += 1;
        }
        if chars.get(i) == Some(&'\'') {
            i += 1;
        } else if chars.get(i) == Some(&'\n') {
            *line += 1; // malformed literal; stay line-accurate
            i += 1;
        }
        (i, Kind::Char)
    } else if chars.get(i + 2) == Some(&'\'') && chars.get(i + 1) != Some(&'\'') {
        (i + 3, Kind::Char)
    } else {
        // Lifetime or label: `'` plus identifier characters.
        i += 1;
        while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
            i += 1;
        }
        (i, Kind::Lifetime)
    }
}

/// After a raw-string prefix ident (`r`/`br`/`cr`), is the next run zero
/// or more hashes followed by a quote?
fn raw_quote_follows(chars: &[char], mut i: usize) -> bool {
    while chars.get(i) == Some(&'#') {
        i += 1;
    }
    chars.get(i) == Some(&'"')
}

fn is_ident_start(c: Option<&char>) -> bool {
    c.is_some_and(|c| c.is_alphabetic() || *c == '_')
}

/// Skip a cooked string body; `i` is at the opening quote. Escapes are
/// honored (`\"` does not close, `\\` does not escape the quote after
/// it) and newlines inside the literal keep the line count accurate.
fn skip_str(chars: &[char], mut i: usize, line: &mut usize) -> usize {
    i += 1;
    while i < chars.len() {
        match chars[i] {
            '\\' => {
                if chars.get(i + 1) == Some(&'\n') {
                    *line += 1;
                }
                i += if i + 1 < chars.len() { 2 } else { 1 };
            }
            '"' => return i + 1,
            '\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Skip a raw string body; `i` is just past the prefix ident, at the
/// first hash or the quote. No escapes: the literal closes at a quote
/// followed by the same number of hashes it opened with.
fn skip_raw_str(chars: &[char], mut i: usize, line: &mut usize) -> usize {
    let mut hashes = 0usize;
    while chars.get(i) == Some(&'#') {
        hashes += 1;
        i += 1;
    }
    debug_assert_eq!(chars.get(i), Some(&'"'));
    i += 1;
    while i < chars.len() {
        if chars[i] == '"' && (1..=hashes).all(|k| chars.get(i + k) == Some(&'#')) {
            return i + 1 + hashes;
        }
        if chars[i] == '\n' {
            *line += 1;
        }
        i += 1;
    }
    i
}

/// Skip a numeric literal: digits, `_`, type suffixes, `.`, and a signed
/// exponent. Over-eager on ranges (`1..3` lexes as one number), which is
/// harmless for cleaning — the text is kept verbatim.
fn skip_number(chars: &[char], mut i: usize) -> usize {
    let mut prev_exp = false;
    while i < chars.len() {
        let c = chars[i];
        let keep = c.is_ascii_alphanumeric()
            || c == '_'
            || c == '.'
            || (prev_exp && (c == '+' || c == '-'));
        if !keep {
            break;
        }
        prev_exp = c == 'e' || c == 'E';
        i += 1;
    }
    i
}

// ---------------------------------------------------------------------------
// Block model
// ---------------------------------------------------------------------------

/// Iterator adapters whose closure argument executes once per element:
/// code inside their call parentheses runs in a loop even though no
/// `for` keyword appears. Used by the hot-loop nesting model.
pub const LOOP_ADAPTERS: &[&str] = &[
    "map",
    "for_each",
    "try_for_each",
    "filter",
    "filter_map",
    "flat_map",
    "fold",
    "try_fold",
    "scan",
    "inspect",
    "retain",
    "map_while",
    "take_while",
    "skip_while",
    "find_map",
    "position",
    "partition",
    "zip_eq",
];

/// Per-line context derived from the block model.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LineCtx {
    /// How many loop bodies enclose this line: `for`/`while`/`loop`
    /// braces plus [`LOOP_ADAPTERS`] call parentheses. The maximum seen
    /// across the line's tokens.
    pub loop_depth: usize,
    /// Name of the innermost enclosing `fn` body, if any. Signature
    /// lines (before the body's `{`) carry `None`.
    pub fn_name: Option<String>,
}

/// What one `{ … }` frame was opened by.
enum Frame {
    Fn(String),
    Loop,
    Plain,
}

/// The block-model context of each token, parallel to the input: the
/// loop depth and enclosing function *at* that token (before its own
/// effect applies — an opening `{` still belongs to its header).
/// Heuristic, token-level:
///
/// * a `{` is a function body when the pending run since the last
///   `{`/`}`/`;` contains `fn name` at the same paren depth;
/// * a `{` is a loop body when the run contains `for`/`while`/`loop` at
///   the same paren depth — except `for` inside an `impl … for … {`
///   header, which is a trait impl, not a loop;
/// * a `(` directly preceded by `.adapter` for a name in
///   [`LOOP_ADAPTERS`] opens a loop context until its `)`.
pub fn token_contexts(toks: &[Token]) -> Vec<LineCtx> {
    let mut ctx = Vec::with_capacity(toks.len());
    let mut braces: Vec<Frame> = Vec::new();
    // One bool per open paren/bracket: true when it is a loop-adapter call.
    let mut parens: Vec<bool> = Vec::new();
    let mut loop_depth = 0usize;

    let mut pending_fn: Option<String> = None;
    let mut pending_fn_parens = 0usize;
    let mut awaiting_fn_name = false;
    let mut pending_loop = false;
    let mut pending_loop_parens = 0usize;
    let mut pending_impl = false;
    // The last two significant tokens, most recent first.
    let mut prev: [Option<(Kind, String)>; 2] = [None, None];

    let clear_pending = |pf: &mut Option<String>, af: &mut bool, pl: &mut bool, pi: &mut bool| {
        *pf = None;
        *af = false;
        *pl = false;
        *pi = false;
    };

    for t in toks {
        ctx.push(LineCtx {
            loop_depth,
            fn_name: innermost_fn(&braces),
        });
        if !t.is_significant() {
            continue;
        }
        match t.kind {
            Kind::Ident => match t.text.as_str() {
                "fn" => awaiting_fn_name = true,
                "impl" => pending_impl = true,
                "for" | "while" | "loop" if !pending_impl && !awaiting_fn_name => {
                    pending_loop = true;
                    pending_loop_parens = parens.len();
                }
                name if awaiting_fn_name => {
                    pending_fn = Some(name.to_string());
                    awaiting_fn_name = false;
                    pending_fn_parens = parens.len();
                }
                _ => {}
            },
            Kind::Punct => match t.text.as_str() {
                "(" => {
                    let adapter = matches!(
                        (&prev[0], &prev[1]),
                        (Some((Kind::Ident, m)), Some((Kind::Punct, d)))
                            if d == "." && LOOP_ADAPTERS.contains(&m.as_str())
                    );
                    if adapter {
                        loop_depth += 1;
                    }
                    parens.push(adapter);
                }
                // Square brackets share the stack so the `;` inside an
                // array type (`[[u32; 4]]`) or literal is not mistaken
                // for a statement end.
                "[" => parens.push(false),
                ")" | "]" => {
                    if parens.pop() == Some(true) {
                        loop_depth = loop_depth.saturating_sub(1);
                    }
                }
                "{" => {
                    let frame = if pending_fn.is_some() && parens.len() == pending_fn_parens {
                        Frame::Fn(pending_fn.take().unwrap_or_default())
                    } else if pending_loop && parens.len() == pending_loop_parens {
                        loop_depth += 1;
                        Frame::Loop
                    } else {
                        Frame::Plain
                    };
                    braces.push(frame);
                    clear_pending(
                        &mut pending_fn,
                        &mut awaiting_fn_name,
                        &mut pending_loop,
                        &mut pending_impl,
                    );
                }
                "}" => {
                    if let Some(Frame::Loop) = braces.pop() {
                        loop_depth = loop_depth.saturating_sub(1);
                    }
                }
                // Only a statement-level `;` (outside all parens and
                // brackets) ends a pending item header.
                ";" if parens.is_empty() => clear_pending(
                    &mut pending_fn,
                    &mut awaiting_fn_name,
                    &mut pending_loop,
                    &mut pending_impl,
                ),
                _ => {}
            },
            _ => {}
        }
        prev[1] = prev[0].take();
        prev[0] = Some((t.kind, t.text.clone()));
    }
    ctx
}

/// Annotate each source line (1-based, `num_lines` total) with its loop
/// nesting depth and enclosing function, derived from
/// [`token_contexts`]: a line carries the *maximum* depth and the first
/// function name among its significant tokens. Blank and comment-only
/// lines inherit the context that holds *between* the surrounding
/// tokens, so a comment mid-function does not split the function into
/// two runs.
pub fn line_contexts(toks: &[Token], num_lines: usize) -> Vec<LineCtx> {
    let per_token = token_contexts(toks);
    let mut ctx = vec![LineCtx::default(); num_lines];
    // Last line (1-based) annotated so far, for gap-line inheritance.
    let mut filled_to = 0usize;
    for (t, tc) in toks.iter().zip(&per_token) {
        if !t.is_significant() {
            continue;
        }
        let from = (filled_to + 1).min(t.line).max(1);
        for line in from..=t.line {
            if let Some(slot) = ctx.get_mut(line - 1) {
                slot.loop_depth = slot.loop_depth.max(tc.loop_depth);
                if slot.fn_name.is_none() {
                    slot.fn_name = tc.fn_name.clone();
                }
            }
        }
        filled_to = filled_to.max(t.line);
    }
    ctx
}

/// Name of the innermost `Fn` frame on the brace stack, if any.
fn innermost_fn(braces: &[Frame]) -> Option<String> {
    braces.iter().rev().find_map(|f| match f {
        Frame::Fn(name) => Some(name.clone()),
        _ => None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(text: &str) -> Vec<(Kind, String)> {
        lex(text)
            .into_iter()
            .filter(|t| t.kind != Kind::Ws)
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn raw_byte_strings_with_interior_quotes_are_one_token() {
        let toks = kinds("let s = br#\"say \"hi\" ok\"#;");
        assert_eq!(
            toks,
            vec![
                (Kind::Ident, "let".into()),
                (Kind::Ident, "s".into()),
                (Kind::Punct, "=".into()),
                (Kind::RawStr, "br#\"say \"hi\" ok\"#".into()),
                (Kind::Punct, ";".into()),
            ]
        );
    }

    #[test]
    fn raw_identifiers_are_identifiers_not_strings() {
        let toks = kinds("let r#fn = 1;");
        assert_eq!(toks[1], (Kind::Ident, "r#fn".into()));
    }

    #[test]
    fn char_vs_lifetime_vs_byte_char() {
        let toks = kinds("fn f<'a>(c: char) -> char { let _ = b'x'; 'a' }");
        assert!(toks.contains(&(Kind::Lifetime, "'a".into())));
        assert!(toks.contains(&(Kind::Char, "b'x'".into())));
        assert!(toks.contains(&(Kind::Char, "'a'".into())));
    }

    #[test]
    fn token_lines_survive_multiline_literals_and_comments() {
        let text = "let a = \"x\ny\";\n/* c\nd */ let b = 2;\n";
        let toks = lex(text);
        let b = toks
            .iter()
            .find(|t| t.kind == Kind::Ident && t.text == "b")
            .expect("ident b");
        assert_eq!(b.line, 4);
    }

    #[test]
    fn line_contexts_track_loops_closures_and_fns() {
        let text = "\
pub fn hot(xs: &[f64]) -> f64 {
    let mut acc = 0.0;
    for x in xs {
        while *x > acc {
            acc += 1.0;
        }
    }
    xs.iter().map(|v| {
        v + 1.0
    });
    acc
}
";
        let toks = lex(text);
        let ctx = line_contexts(&toks, text.lines().count());
        // Line 1 is the signature; lines 2.. are the body of `hot`.
        assert_eq!(ctx[0].fn_name, None);
        assert_eq!(ctx[1].fn_name.as_deref(), Some("hot"));
        assert_eq!(ctx[1].loop_depth, 0);
        assert_eq!(ctx[3].loop_depth, 1); // `while` header inside `for`
        assert_eq!(ctx[4].loop_depth, 2); // `acc += 1.0`
        assert_eq!(ctx[8].loop_depth, 1); // closure body inside `.map(`
        assert_eq!(ctx[10].loop_depth, 0);
    }

    #[test]
    fn impl_for_is_not_a_loop() {
        let text =
            "impl Filter for Contour {\n    fn name(&self) -> &str {\n        \"c\"\n    }\n}\n";
        let toks = lex(text);
        let ctx = line_contexts(&toks, text.lines().count());
        assert!(ctx.iter().all(|c| c.loop_depth == 0));
        assert_eq!(ctx[2].fn_name.as_deref(), Some("name"));
    }
}
