//! The repo-specific policy: which files each lint watches and how
//! power/energy/time/frequency identifiers are recognized.

/// Crates whose library code sits on the measurement hot path. The
/// panic-policy and reduction-determinism lints only apply here.
/// `conformance` is included so the correctness checks themselves report
/// setup failures as failed checks instead of panicking mid-suite.
/// `vizmesh` joined when the time-varying [`FieldSeries`] ring put mesh
/// code inside the per-step recording loop. The DPP backend
/// (`crates/vizalgo/src/dpp/`) is covered automatically: it is library
/// code of `vizalgo`.
pub const HOT_PATH_CRATES: &[&str] = &[
    "vizmesh",
    "vizalgo",
    "cloverleaf",
    "powersim",
    "governor",
    "conformance",
];

/// Kernel crates where unordered parallel float reductions would make the
/// paper tables run-to-run irreproducible.
pub const KERNEL_CRATES: &[&str] = &["vizalgo", "cloverleaf"];

/// Files forming the power/energy API boundary between `powersim` and
/// `vizpower` (core). Inside these, a watt- or joule-named `f64`
/// declaration is a violation: the quantity must use the `Watts`/`Joules`
/// newtypes from `powersim::units` (re-exported as `vizpower::energy`).
pub const UNIT_BOUNDARY_FILES: &[&str] = &[
    "crates/powersim/src/rapl.rs",
    "crates/powersim/src/exec.rs",
    "crates/powersim/src/trace.rs",
    "crates/powersim/src/node.rs",
    "crates/powersim/src/cpu.rs",
    "crates/powersim/src/msr.rs",
    "crates/core/src/energy.rs",
    "crates/core/src/study.rs",
    "crates/core/src/metrics.rs",
    "crates/core/src/advisor.rs",
    "crates/core/src/efficiency.rs",
    "crates/core/src/ablation.rs",
    "crates/core/src/arch.rs",
    "crates/core/src/classify.rs",
    "crates/core/src/advect.rs",
    "crates/governor/src/policy.rs",
    "crates/governor/src/control.rs",
    "crates/governor/src/study.rs",
    "crates/governor/src/pair.rs",
    "crates/service/src/admission.rs",
    "crates/service/src/service.rs",
];

/// Files exempt from the unit-safety lint: the newtype definitions
/// themselves, whose internals are raw `f64` by construction.
pub const UNIT_EXEMPT_FILES: &[&str] = &["crates/powersim/src/units.rs"];

/// The run-journal event definitions whose public enum variants must all
/// be documented in the observability schema table.
pub const TRACE_SOURCE: &str = "crates/powersim/src/trace.rs";

/// The document holding the event schema table the schema-docs lint
/// checks against [`TRACE_SOURCE`].
pub const OBSERVABILITY_DOC: &str = "docs/OBSERVABILITY.md";

/// HTML-comment markers delimiting the schema table inside
/// [`OBSERVABILITY_DOC`]. Rows between them with a backticked first cell
/// name one enum variant each.
pub const SCHEMA_TABLE_BEGIN: &str = "<!-- xtask:schema-table:begin -->";
pub const SCHEMA_TABLE_END: &str = "<!-- xtask:schema-table:end -->";

/// The public enums in [`TRACE_SOURCE`] whose variants form the journal's
/// wire schema: every variant needs a schema-table row.
pub const SCHEMA_ENUMS: &[&str] = &["Event", "Scope"];

/// The crate hosting the algorithm registry. Filter constructors may be
/// called freely inside it: the filters' own modules and the one
/// sanctioned construction site, `AlgorithmSpec::build` (`spec.rs`).
pub const REGISTRY_CRATE: &str = "vizalgo";

/// Files outside [`REGISTRY_CRATE`] that may construct filters directly:
/// the conformance suite's independent reference implementations, which
/// must not share the registry code path they are checking.
pub const REGISTRY_DISPATCH_EXEMPT_FILES: &[&str] = &["crates/conformance/src/reference.rs"];

/// `Type::constructor(` tokens that build one of the eight paper
/// algorithms directly. Outside [`REGISTRY_CRATE`] and the exempt files,
/// non-test code must go through `AlgorithmSpec::build` instead so every
/// run carries a canonical, fingerprintable parameterization.
pub const FILTER_CONSTRUCTORS: &[&str] = &[
    "Contour::new(",
    "Contour::spanning(",
    "Threshold::new(",
    "Threshold::upper_fraction(",
    "SphericalClip::new(",
    "SphericalClip::framing(",
    "Isovolume::new(",
    "Isovolume::middle_band(",
    "ThreeSlice::centered(",
    "ThreeSlice::with_planes(",
    "ParticleAdvection::new(",
    "RayTracer::new(",
    "VolumeRenderer::new(",
    "DppContour::new(",
    "DppThreshold::new(",
    "DppIsovolume::new(",
    "DppSlice::new(",
];

/// Returns the crate name (directory under `crates/`) for a
/// workspace-relative path, or `None` for the root package.
pub fn crate_of(rel_path: &str) -> Option<&str> {
    let rest = rel_path.strip_prefix("crates/")?;
    rest.split('/').next()
}

/// True when the path is library code of one of `crates` — under `src/`
/// but not under `src/bin/` (binaries are user-facing entry points, held
/// to the CLI error-handling policy instead).
pub fn is_lib_code_of(rel_path: &str, crates: &[&str]) -> bool {
    let Some(name) = crate_of(rel_path) else {
        return false;
    };
    crates.contains(&name) && rel_path.contains("/src/") && !rel_path.contains("/src/bin/")
}

/// The dimensional family of a quantity, inferred from identifier naming.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnitFamily {
    Watts,
    Joules,
    Seconds,
    Hertz,
}

impl UnitFamily {
    pub fn name(self) -> &'static str {
        match self {
            UnitFamily::Watts => "watts",
            UnitFamily::Joules => "joules",
            UnitFamily::Seconds => "seconds",
            UnitFamily::Hertz => "hertz",
        }
    }
}

/// Infer the unit family of an identifier from its name, following the
/// workspace naming convention (`cap_watts`, `energy_joules`, `seconds`,
/// `freq_ghz`, ...).
pub fn unit_family(ident: &str) -> Option<UnitFamily> {
    let n = ident.to_ascii_lowercase();
    if n.contains("watt") {
        Some(UnitFamily::Watts)
    } else if n.contains("joule") {
        Some(UnitFamily::Joules)
    } else if n.contains("second") || n.ends_with("_sec") || n.ends_with("_secs") || n == "secs" {
        Some(UnitFamily::Seconds)
    } else if n.contains("hz") || n.contains("freq") {
        Some(UnitFamily::Hertz)
    } else {
        None
    }
}
