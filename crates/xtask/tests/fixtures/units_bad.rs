//! Fixture: unit-safety violations at the power API boundary.

pub struct Row {
    pub cap_watts: f64,
    pub seconds: f64,
}

pub fn peak_power_watts(rows: &[Row]) -> f64 {
    rows.iter().map(|r| r.cap_watts).fold(0.0, f64::max)
}

pub fn nonsense(energy_joules: f64, seconds: f64) -> f64 {
    energy_joules + seconds
}

pub fn worse(cap_watts: f64, freq_ghz: f64) -> bool {
    cap_watts < freq_ghz
}
