//! Fixture: filters built through the canonical registry spec.

pub fn build(spec: &AlgorithmSpec, input: &DataSet) -> Box<dyn Filter> {
    spec.build(input)
}

pub fn build_default(algorithm: Algorithm, input: &DataSet) -> Box<dyn Filter> {
    algorithm.default_spec().build(input)
}
