//! Fixture: constructor-shaped tokens that are *text*, not code. The
//! registry-dispatch lint must stay silent on all of them; only the real
//! construction in `registry_bad.rs` may fire.

/// Doc comments mention constructors freely: prefer `AlgorithmSpec` over
/// a direct `Contour::new(iso)` call.
pub fn documented() {}

pub fn in_string_literals() -> Vec<String> {
    vec![
        "Contour::new(0.5) is the old way".to_string(),
        // Raw strings, including hash-quoted ones with interior quotes.
        r#"say "Threshold::new(" ok"#.to_string(),
        r"RayTracer::new(eye)".to_string(),
    ]
}

pub fn in_byte_strings() -> &'static [u8] {
    // Raw *byte* strings with interior quotes were the pre-lexer FP: the
    // scanner saw `br` as code and leaked the constructor into the
    // cleaned view.
    br#"say "SphericalClip::new(" ok"#
}

// A trailing line comment: Isovolume::new(0.2, 0.8) would be flagged if
// comments leaked into code.
pub fn commented() {}
