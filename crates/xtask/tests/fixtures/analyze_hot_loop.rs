//! Fixture: hot-loop-alloc. Allocation-shaped calls inside loop bodies
//! fire; the same calls outside loops, in test code, or in pre-sized
//! functions stay quiet.

pub fn flagged(points: &[f64]) -> Vec<String> {
    let mut names = Vec::new();
    for (i, p) in points.iter().enumerate() {
        let label = format!("p{i}");
        names.push(label);
        let copy = points.to_vec();
        drop(copy);
        let boxed = Box::new(*p);
        drop(boxed);
    }
    names
}

pub fn nested(rows: &[Vec<f64>]) -> f64 {
    let mut acc = 0.0;
    for row in rows {
        for v in row {
            let scratch: Vec<f64> = row.iter().map(|x| x * v).collect();
            acc += scratch[0];
        }
    }
    acc
}

pub fn presized(points: &[f64]) -> Vec<f64> {
    let mut out = Vec::with_capacity(points.len());
    for p in points {
        out.push(*p * 2.0);
    }
    out
}

pub fn outside_loops(points: &[f64]) -> Vec<f64> {
    let doubled: Vec<f64> = points.iter().map(|p| p * 2.0).collect();
    doubled
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        let mut v = Vec::new();
        for i in 0..4 {
            v.push(format!("{i}"));
        }
        assert_eq!(v.len(), 4);
    }
}
