//! Fixture: unordered parallel float reductions.

use rayon::prelude::*;

pub fn total_energy(cells: &[f64]) -> f64 {
    cells.par_iter().map(|c| c * 2.0).sum::<f64>()
}

pub fn max_speed(u: &[f64]) -> f64 {
    u.par_iter()
        .copied()
        .reduce(|| 0.0, f64::max)
}
