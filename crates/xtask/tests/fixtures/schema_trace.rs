//! Mini journal event definitions for the schema-docs golden tests.

/// A journal event.
#[derive(Debug, Clone)]
pub enum Event {
    /// A closed span.
    Span(Span),
    /// A 100 ms counter sample.
    Counter(CounterSample),
    /// A RAPL cap transition.
    CapChange(CapChange),
}

/// What layer a span describes.
pub enum Scope {
    Study,
    Kernel,
}
