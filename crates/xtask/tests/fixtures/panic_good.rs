//! Fixture: hot-path library code that satisfies the panic policy.

pub fn centroid(xs: &[f64]) -> Option<f64> {
    let first = xs.first()?;
    let last = xs.last()?;
    Some(0.5 * (first + last))
}

pub fn scale(xs: &mut [f64], k: f64) {
    for x in xs.iter_mut() {
        *x = k.max(0.0) * *x;
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        assert_eq!(super::centroid(&[2.0, 4.0]).unwrap(), 3.0);
    }
}
