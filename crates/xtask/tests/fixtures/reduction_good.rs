//! Fixture: reductions that keep the tables bitwise-reproducible.

use rayon::prelude::*;

pub fn count_active(flags: &[bool]) -> usize {
    flags.par_iter().filter(|f| **f).count()
}

pub fn total_cells(sizes: &[usize]) -> usize {
    sizes.par_iter().copied().sum::<usize>()
}

pub fn sequential_sum(xs: &[f64]) -> f64 {
    xs.iter().map(|x| x * x).sum::<f64>()
}

pub fn gathered(xs: &[f64]) -> Vec<f64> {
    xs.par_iter().map(|x| x + 1.0).collect()
}
