//! Fixture: unit-safe boundary code using the newtypes.

use powersim::units::{Joules, Watts};

pub struct Row {
    pub cap_watts: Watts,
    pub energy_joules: Joules,
    pub seconds: f64,
}

pub fn average_power(r: &Row) -> Watts {
    r.energy_joules.over_seconds(r.seconds)
}

pub fn energy_ratio(a: &Row, b: &Row) -> f64 {
    a.energy_joules / b.energy_joules
}

pub fn headroom(r: &Row, tdp_watts: Watts) -> Watts {
    tdp_watts - r.cap_watts
}
