//! Fixture: panic-policy violations in hot-path library code.

pub fn centroid(xs: &[f64]) -> f64 {
    let first = xs.first().unwrap();
    let last = xs.last().expect("non-empty");
    if xs.len() < 2 {
        panic!("need at least two samples");
    }
    0.5 * (first + last)
}

/// Justified inline but not registered in the allowlist.
pub fn tail(xs: &[f64]) -> f64 {
    *xs.last().unwrap() // lint: infallible because callers pass a non-empty slice
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        let xs = vec![1.0, 3.0];
        assert_eq!(xs.first().unwrap() + xs.last().unwrap(), 4.0);
    }
}
