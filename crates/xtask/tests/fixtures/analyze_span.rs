//! Fixture: span-discipline. A journal span open (`let t0 = ….now()`)
//! must reach a `push_span` naming the binding in the same function,
//! with no early `return` in between.

pub fn balanced(journal: &mut Journal) {
    let t0 = journal.now();
    work();
    journal.push_span(Scope::Kernel, "work", t0, None, vec![]);
}

pub fn balanced_under_guard_check(journal: &mut Journal) {
    let cycle_t0 = journal.now();
    work();
    if journal.is_enabled() {
        journal.push_span(Scope::Timestep, "cycle", cycle_t0, None, vec![]);
    }
}

pub fn leaked(journal: &mut Journal) {
    let t0 = journal.now();
    work();
    // No push_span referencing t0: the span never closes.
    let _ = t0;
}

pub fn leaked_on_early_return(journal: &mut Journal, skip: bool) -> u32 {
    let t0 = journal.now();
    if skip {
        return 0;
    }
    journal.push_span(Scope::Kernel, "full", t0, None, vec![]);
    1
}

pub fn unrelated_clock_reads(journal: &mut Journal) -> f64 {
    // Sample timestamps are not span opens: no `t0` naming.
    let stamp = journal.now();
    stamp
}
