//! Fixture: fp-reduction-order. Order-sensitive float combines reachable
//! from rayon parallel iterators fire; integer-annotated sums and
//! sequential folds stay quiet.

pub fn par_sum_unannotated(xs: &[f64]) -> f64 {
    xs.par_iter().map(|x| x * 2.0).sum()
}

pub fn par_sum_float_turbofish(xs: &[f64]) -> f64 {
    xs.par_iter().copied().sum::<f64>()
}

pub fn par_reduce_multiline(xs: &[f64]) -> f64 {
    xs.par_iter()
        .map(|x| x + 1.0)
        .reduce(|| 0.0, |a, b| a + b)
}

pub fn par_fold(xs: &[f64]) -> f64 {
    xs.par_chunks(64)
        .fold(|| 0.0, |acc, c| acc + c.iter().sum::<f64>())
        .sum::<f64>()
}

pub fn par_sum_integer_is_fine(xs: &[u64]) -> u64 {
    xs.par_iter().map(|x| x + 1).sum::<u64>()
}

pub fn sequential_sum_is_fine(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>()
}
