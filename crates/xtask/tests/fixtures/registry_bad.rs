//! Fixture: direct filter construction outside the registry crate.

pub fn build_contour(input: &DataSet) -> Box<dyn Filter> {
    Box::new(Contour::spanning("energy", input, 10))
}

pub fn build_threshold(input: &DataSet) -> Box<dyn Filter> {
    Box::new(vizalgo::Threshold::upper_fraction("energy", input, 0.5))
}

pub fn build_renderer() -> RayTracer {
    RayTracer::new("energy", 64, 64, 1)
}

pub struct MyContour;

impl MyContour {
    pub fn new() -> Self {
        // A lookalike type is not a filter constructor.
        MyContour
    }
}

pub fn not_a_ctor() {
    MyContour::new();
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_construct_directly() {
        let _ = Contour::new("energy", vec![0.5]);
    }
}
