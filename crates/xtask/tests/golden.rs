//! Golden tests for `cargo xtask lint`: one good/bad fixture pair per
//! lint, asserting the exact diagnostics, file:line anchors, and exit
//! codes, plus the allowlist/justification round trip.

use std::fs;
use std::path::PathBuf;
use std::process::Command;

use xtask::allow::Allowlist;
use xtask::scan::SourceFile;
use xtask::{lint_source, lints, Options};

const PANIC_BAD: &str = include_str!("fixtures/panic_bad.rs");
const PANIC_GOOD: &str = include_str!("fixtures/panic_good.rs");
const UNITS_BAD: &str = include_str!("fixtures/units_bad.rs");
const UNITS_GOOD: &str = include_str!("fixtures/units_good.rs");
const REDUCTION_BAD: &str = include_str!("fixtures/reduction_bad.rs");
const REDUCTION_GOOD: &str = include_str!("fixtures/reduction_good.rs");
const SCHEMA_TRACE: &str = include_str!("fixtures/schema_trace.rs");
const REGISTRY_BAD: &str = include_str!("fixtures/registry_bad.rs");
const REGISTRY_GOOD: &str = include_str!("fixtures/registry_good.rs");
const REGISTRY_STRINGS: &str = include_str!("fixtures/registry_strings.rs");

fn rendered(rel_path: &str, text: &str, strict: bool) -> Vec<String> {
    lint_source(rel_path, text, &Options { strict })
        .iter()
        .map(|d| d.to_string())
        .collect()
}

const PANIC_HELP: &str = "return Result/Option, or justify with `// lint: infallible \
                          because ...` and register the site in crates/xtask/allowlists/panics.allow";

#[test]
fn panic_policy_bad_fixture_flags_each_site() {
    let diags = rendered("crates/vizalgo/src/fixture.rs", PANIC_BAD, false);
    assert_eq!(
        diags,
        vec![
            format!(
                "crates/vizalgo/src/fixture.rs:4: [panic-policy] `.unwrap` in hot-path \
                 library code; {PANIC_HELP}"
            ),
            format!(
                "crates/vizalgo/src/fixture.rs:5: [panic-policy] `.expect` in hot-path \
                 library code; {PANIC_HELP}"
            ),
            format!(
                "crates/vizalgo/src/fixture.rs:7: [panic-policy] `panic!` in hot-path \
                 library code; {PANIC_HELP}"
            ),
            "crates/vizalgo/src/fixture.rs:14: [panic-policy] `.unwrap` is justified inline \
             but not registered in crates/xtask/allowlists/panics.allow"
                .to_string(),
        ]
    );
}

#[test]
fn panic_policy_good_fixture_is_clean() {
    assert_eq!(
        rendered("crates/vizalgo/src/fixture.rs", PANIC_GOOD, false),
        Vec::<String>::new()
    );
}

#[test]
fn panic_policy_ignores_non_hot_path_crates() {
    assert_eq!(
        rendered("crates/insitu/src/fixture.rs", PANIC_BAD, false),
        Vec::<String>::new()
    );
}

#[test]
fn strict_mode_flags_indexing_without_justification() {
    let text = "pub fn first(xs: &[f64]) -> f64 {\n    xs[0]\n}\n";
    let diags = rendered("crates/vizalgo/src/fixture.rs", text, true);
    assert_eq!(
        diags,
        vec![
            "crates/vizalgo/src/fixture.rs:2: [panic-policy] indexing can panic in hot-path \
             library code (strict mode); prefer `get`/iterators or add a `// lint: \
             infallible because ...` note"
                .to_string(),
        ]
    );
    // The same site is accepted with an inline justification, and strict
    // mode is opt-in: the default pass does not flag indexing.
    let justified =
        "pub fn first(xs: &[f64]) -> f64 {\n    xs[0] // lint: infallible because callers check\n}\n";
    assert_eq!(
        rendered("crates/vizalgo/src/fixture.rs", justified, true),
        Vec::<String>::new()
    );
    assert_eq!(
        rendered("crates/vizalgo/src/fixture.rs", text, false),
        Vec::<String>::new()
    );
}

const UNIT_HELP: &str = "convert explicitly through the `Watts`/`Joules` newtypes \
                         (vizpower::energy)";

#[test]
fn unit_safety_bad_fixture_flags_mixed_units_and_raw_f64() {
    let diags = rendered("crates/core/src/study.rs", UNITS_BAD, false);
    let raw = |family: &str, ty: &str| -> String {
        format!(
            "raw `f64` carries a {family} quantity across the power API boundary; use \
                 the `{ty}` newtype from powersim::units"
        )
    };
    assert_eq!(
        diags,
        vec![
            format!(
                "crates/core/src/study.rs:4: [unit-safety] {}",
                raw("watts", "Watts")
            ),
            format!(
                "crates/core/src/study.rs:8: [unit-safety] {}",
                raw("watts", "Watts")
            ),
            format!(
                "crates/core/src/study.rs:12: [unit-safety] {}",
                raw("joules", "Joules")
            ),
            format!(
                "crates/core/src/study.rs:13: [unit-safety] mixed-unit arithmetic: \
                 `energy_joules + seconds` combines joules with seconds; {UNIT_HELP}"
            ),
            format!(
                "crates/core/src/study.rs:16: [unit-safety] {}",
                raw("watts", "Watts")
            ),
            format!(
                "crates/core/src/study.rs:17: [unit-safety] mixed-unit arithmetic: \
                 `cap_watts < freq_ghz` combines watts with hertz; {UNIT_HELP}"
            ),
        ]
    );
}

#[test]
fn unit_safety_good_fixture_is_clean() {
    assert_eq!(
        rendered("crates/core/src/study.rs", UNITS_GOOD, false),
        Vec::<String>::new()
    );
}

#[test]
fn unit_safety_raw_f64_rule_only_applies_to_boundary_files() {
    // Outside the boundary list only the mixed-arithmetic rule applies.
    let diags = rendered("crates/insitu/src/fixture.rs", UNITS_BAD, false);
    assert_eq!(
        diags,
        vec![
            format!(
                "crates/insitu/src/fixture.rs:13: [unit-safety] mixed-unit arithmetic: \
                 `energy_joules + seconds` combines joules with seconds; {UNIT_HELP}"
            ),
            format!(
                "crates/insitu/src/fixture.rs:17: [unit-safety] mixed-unit arithmetic: \
                 `cap_watts < freq_ghz` combines watts with hertz; {UNIT_HELP}"
            ),
        ]
    );
}

const REDUCTION_MSG: &str = "unordered parallel float reduction; results may vary across \
                             thread counts — make the combine order deterministic or \
                             register the site in crates/xtask/allowlists/reductions.allow";

#[test]
fn reduction_bad_fixture_flags_par_sum_and_multiline_reduce() {
    let diags = rendered("crates/cloverleaf/src/fixture.rs", REDUCTION_BAD, false);
    assert_eq!(
        diags,
        vec![
            format!("crates/cloverleaf/src/fixture.rs:6: [reduction-determinism] {REDUCTION_MSG}"),
            format!("crates/cloverleaf/src/fixture.rs:10: [reduction-determinism] {REDUCTION_MSG}"),
        ]
    );
}

#[test]
fn reduction_good_fixture_is_clean() {
    assert_eq!(
        rendered("crates/cloverleaf/src/fixture.rs", REDUCTION_GOOD, false),
        Vec::<String>::new()
    );
}

#[test]
fn reduction_manifest_registration_silences_the_site() {
    let file = SourceFile::parse("crates/cloverleaf/src/fixture.rs", REDUCTION_BAD);
    let manifest = Allowlist::parse(
        "crates/xtask/allowlists/reductions.allow",
        "# max is order-insensitive\n\
         crates/cloverleaf/src/fixture.rs :: u.par_iter()\n",
    );
    let mut used = vec![false; manifest.entries.len()];
    let mut out = Vec::new();
    lints::reduction_determinism(&file, &manifest, &mut used, &mut out);
    // The registered reduce is silenced; the unregistered sum still fires.
    assert_eq!(out.len(), 1);
    assert_eq!(out[0].line, 6);
    assert_eq!(used, vec![true]);
    assert!(manifest.stale(&used).is_empty());
}

fn registry_msg(display: &str) -> String {
    format!(
        "direct `{display}` construction bypasses the algorithm registry; build the \
         filter from an `AlgorithmSpec` (vizalgo::spec) so the run carries a canonical, \
         fingerprintable parameterization"
    )
}

#[test]
fn registry_dispatch_bad_fixture_flags_each_construction() {
    let diags = rendered("crates/core/src/fixture.rs", REGISTRY_BAD, false);
    assert_eq!(
        diags,
        vec![
            format!(
                "crates/core/src/fixture.rs:4: [registry-dispatch] {}",
                registry_msg("Contour::spanning")
            ),
            format!(
                "crates/core/src/fixture.rs:8: [registry-dispatch] {}",
                registry_msg("Threshold::upper_fraction")
            ),
            format!(
                "crates/core/src/fixture.rs:12: [registry-dispatch] {}",
                registry_msg("RayTracer::new")
            ),
        ]
    );
}

#[test]
fn registry_dispatch_good_fixture_is_clean() {
    assert_eq!(
        rendered("crates/core/src/fixture.rs", REGISTRY_GOOD, false),
        Vec::<String>::new()
    );
}

#[test]
fn registry_dispatch_ignores_constructors_in_strings_and_doc_comments() {
    // Constructor tokens inside string literals (cooked, raw, raw byte)
    // and doc/line comments are text, not construction sites.
    assert_eq!(
        rendered("crates/core/src/fixture.rs", REGISTRY_STRINGS, false),
        Vec::<String>::new()
    );
}

#[test]
fn registry_dispatch_exempts_the_registry_crate_and_reference_impls() {
    assert_eq!(
        rendered("crates/vizalgo/src/fixture.rs", REGISTRY_BAD, false),
        Vec::<String>::new()
    );
    assert_eq!(
        rendered("crates/conformance/src/reference.rs", REGISTRY_BAD, false),
        Vec::<String>::new()
    );
}

const SCHEMA_DOC_GOOD: &str = "\
# Observability\n\
\n\
<!-- xtask:schema-table:begin -->\n\
| Variant | Kind |\n\
| --- | --- |\n\
| `Span` | event |\n\
| `Counter` | event |\n\
| `CapChange` | event |\n\
| `Study` | scope |\n\
| `Kernel` | scope |\n\
<!-- xtask:schema-table:end -->\n";

const SCHEMA_DOC_BAD: &str = "\
# Observability\n\
\n\
<!-- xtask:schema-table:begin -->\n\
| Variant | Kind |\n\
| --- | --- |\n\
| `Span` | event |\n\
| `Counter` | event |\n\
| `Study` | scope |\n\
| `Timestep` | scope |\n\
| `Kernel` | scope |\n\
<!-- xtask:schema-table:end -->\n";

fn rendered_schema(doc: &str) -> Vec<String> {
    xtask::lint_schema_source(SCHEMA_TRACE, doc)
        .iter()
        .map(|d| d.to_string())
        .collect()
}

#[test]
fn schema_docs_complete_table_is_clean() {
    assert_eq!(rendered_schema(SCHEMA_DOC_GOOD), Vec::<String>::new());
}

#[test]
fn schema_docs_flags_undocumented_variant_and_stale_row() {
    assert_eq!(
        rendered_schema(SCHEMA_DOC_BAD),
        vec![
            "crates/powersim/src/trace.rs:11: [schema-docs] public event variant \
             `Event::CapChange` is not documented in the docs/OBSERVABILITY.md schema table; \
             add a row between the markers"
                .to_string(),
            "docs/OBSERVABILITY.md:9: [schema-docs] stale schema row `Timestep` matches no \
             public variant of Event/Scope in crates/powersim/src/trace.rs; remove it"
                .to_string(),
        ]
    );
}

#[test]
fn schema_docs_requires_table_markers() {
    assert_eq!(
        rendered_schema("# Observability\n\n| `Span` | event |\n"),
        vec![
            "docs/OBSERVABILITY.md:1: [schema-docs] missing `<!-- xtask:schema-table:begin -->`\
             /`<!-- xtask:schema-table:end -->` markers around the event schema table"
                .to_string(),
        ]
    );
}

// ---------------------------------------------------------------------------
// End-to-end: the real binary against a temporary workspace tree.
// ---------------------------------------------------------------------------

struct TempTree {
    root: PathBuf,
}

impl TempTree {
    fn new(case: &str) -> TempTree {
        let root = std::env::temp_dir().join(format!("xtask-golden-{}-{case}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(&root).expect("create temp tree");
        fs::write(root.join("Cargo.toml"), "[workspace]\nmembers = []\n").expect("write manifest");
        TempTree { root }
    }

    fn write(&self, rel: &str, text: &str) {
        let path = self.root.join(rel);
        fs::create_dir_all(path.parent().expect("rel path has a parent")).expect("mkdir");
        fs::write(path, text).expect("write fixture");
    }

    fn lint(&self) -> (i32, String) {
        let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
            .args(["lint", "--root"])
            .arg(&self.root)
            .output()
            .expect("run xtask binary");
        (
            out.status.code().expect("exit code"),
            String::from_utf8(out.stdout).expect("utf-8 stdout"),
        )
    }
}

impl Drop for TempTree {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

fn relocate(diags: Vec<String>, from: &str, to: &str) -> Vec<String> {
    diags.into_iter().map(|d| d.replace(from, to)).collect()
}

#[test]
fn binary_exits_nonzero_with_exact_diagnostics_on_violations() {
    let tree = TempTree::new("bad");
    tree.write("crates/vizalgo/src/bad.rs", PANIC_BAD);
    tree.write("crates/core/src/study.rs", UNITS_BAD);
    tree.write("crates/cloverleaf/src/bad.rs", REDUCTION_BAD);
    let (code, stdout) = tree.lint();
    assert_eq!(code, 1, "violations must exit 1");

    let mut expected = Vec::new();
    expected.extend(relocate(
        rendered("crates/cloverleaf/src/fixture.rs", REDUCTION_BAD, false),
        "crates/cloverleaf/src/fixture.rs",
        "crates/cloverleaf/src/bad.rs",
    ));
    expected.extend(rendered("crates/core/src/study.rs", UNITS_BAD, false));
    expected.extend(relocate(
        rendered("crates/vizalgo/src/fixture.rs", PANIC_BAD, false),
        "crates/vizalgo/src/fixture.rs",
        "crates/vizalgo/src/bad.rs",
    ));
    let lines: Vec<String> = stdout.lines().map(str::to_string).collect();
    assert_eq!(lines, expected);
}

#[test]
fn binary_exits_zero_on_a_clean_tree() {
    let tree = TempTree::new("good");
    tree.write("crates/vizalgo/src/good.rs", PANIC_GOOD);
    tree.write("crates/core/src/study.rs", UNITS_GOOD);
    tree.write("crates/cloverleaf/src/good.rs", REDUCTION_GOOD);
    let (code, stdout) = tree.lint();
    assert_eq!(code, 0, "clean tree must exit 0; stdout:\n{stdout}");
    assert_eq!(stdout, "");
}

#[test]
fn binary_accepts_justified_and_registered_panic_sites() {
    let allowed = "pub fn tail(xs: &[f64]) -> f64 {\n    \
                   *xs.last().unwrap() // lint: infallible because callers pass a non-empty slice\n\
                   }\n";
    let tree = TempTree::new("allow");
    tree.write("crates/vizalgo/src/allowed.rs", allowed);
    tree.write(
        "crates/xtask/allowlists/panics.allow",
        "# callers validate non-emptiness before the kernel runs\n\
         crates/vizalgo/src/allowed.rs :: *xs.last().unwrap()\n",
    );
    let (code, stdout) = tree.lint();
    assert_eq!(
        code, 0,
        "registered+justified site must pass; stdout:\n{stdout}"
    );
}

#[test]
fn justification_comment_may_sit_above_a_chained_site() {
    // rustfmt puts `.expect(...)` on its own chain line; the justification
    // then lives on a comment-only line directly above the site.
    let text = "pub fn grid(input: &Input) -> &Grid {\n    \
                input\n        \
                .as_uniform()\n        \
                // lint: infallible because harness inputs are uniform grids\n        \
                .expect(\"structured input\")\n\
                }\n";
    let diags = rendered("crates/vizalgo/src/fixture.rs", text, false);
    assert_eq!(
        diags,
        vec![
            "crates/vizalgo/src/fixture.rs:5: [panic-policy] `.expect` is justified inline \
             but not registered in crates/xtask/allowlists/panics.allow"
                .to_string(),
        ]
    );

    let tree = TempTree::new("above");
    tree.write("crates/vizalgo/src/fixture.rs", text);
    tree.write(
        "crates/xtask/allowlists/panics.allow",
        "crates/vizalgo/src/fixture.rs :: .expect(\"structured input\")\n",
    );
    let (code, stdout) = tree.lint();
    assert_eq!(
        code, 0,
        "comment-above justification must pass; stdout:\n{stdout}"
    );
}

#[test]
fn binary_reports_stale_allowlist_entries() {
    let tree = TempTree::new("stale");
    tree.write("crates/vizalgo/src/ok.rs", PANIC_GOOD);
    tree.write(
        "crates/xtask/allowlists/panics.allow",
        "# left over from a removed kernel\n\
         crates/vizalgo/src/removed.rs :: .unwrap()\n",
    );
    let (code, stdout) = tree.lint();
    assert_eq!(code, 1);
    assert_eq!(
        stdout.lines().collect::<Vec<_>>(),
        vec![
            "crates/xtask/allowlists/panics.allow:2: [allowlist] stale entry \
             `crates/vizalgo/src/removed.rs :: .unwrap()` matches no flagged site; remove it",
        ]
    );
}

#[test]
fn binary_checks_the_schema_table_when_the_trace_source_exists() {
    // With the trace source present and the doc complete, the tree is
    // clean; delete the doc and the schema-docs pass fires.
    let tree = TempTree::new("schema");
    tree.write("crates/powersim/src/trace.rs", SCHEMA_TRACE);
    tree.write("docs/OBSERVABILITY.md", SCHEMA_DOC_GOOD);
    let (code, stdout) = tree.lint();
    assert_eq!(code, 0, "documented schema must pass; stdout:\n{stdout}");

    let missing = TempTree::new("schema-missing-doc");
    missing.write("crates/powersim/src/trace.rs", SCHEMA_TRACE);
    let (code, stdout) = missing.lint();
    assert_eq!(code, 1, "missing doc must fail");
    assert!(
        stdout.contains("[schema-docs] missing"),
        "stdout should report the missing markers:\n{stdout}"
    );
}

#[test]
fn binary_rejects_a_root_that_is_not_a_workspace() {
    let missing = std::env::temp_dir().join(format!("xtask-golden-missing-{}", std::process::id()));
    let _ = fs::remove_dir_all(&missing);
    let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(["lint", "--root"])
        .arg(&missing)
        .output()
        .expect("run xtask binary");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8(out.stderr).expect("utf-8 stderr");
    assert!(
        stderr.contains("not a workspace root"),
        "stderr should explain the bad root:\n{stderr}"
    );
}
