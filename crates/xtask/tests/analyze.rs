//! Goldens for `cargo xtask analyze`: one fixture per pass with exact
//! findings, the JSON report shape, and the baseline ratchet end-to-end
//! against the real binary.

use std::fs;
use std::path::PathBuf;
use std::process::Command;

use xtask::analyze::{self, analyze_source, Analysis};

const HOT_LOOP: &str = include_str!("fixtures/analyze_hot_loop.rs");
const SPAN: &str = include_str!("fixtures/analyze_span.rs");
const REDUCTION: &str = include_str!("fixtures/analyze_reduction.rs");

fn rendered(rel_path: &str, text: &str) -> Vec<String> {
    analyze_source(rel_path, text)
        .iter()
        .map(|f| f.to_string())
        .collect()
}

const ALLOC_HELP: &str =
    "inside a loop body; hoist the allocation out of the hot loop or pre-size it \
     with `with_capacity`";
const PUSH_MSG: &str =
    "`.push` grows a collection inside a loop and the enclosing function never calls \
     `with_capacity`; reserve up front to avoid repeated reallocation on the hot path";

#[test]
fn hot_loop_alloc_flags_allocations_ranked_by_token_depth() {
    let diags = rendered("crates/vizalgo/src/fixture.rs", HOT_LOOP);
    assert_eq!(
        diags,
        vec![
            // Deepest nesting first: the collect inside the double loop.
            format!(
                "crates/vizalgo/src/fixture.rs:22: [hot-loop-alloc] `.collect` allocates a \
                 fresh collection via collect {ALLOC_HELP} (in `nested`, loop depth 2)"
            ),
            format!(
                "crates/vizalgo/src/fixture.rs:8: [hot-loop-alloc] `format!` allocates a \
                 String via format! {ALLOC_HELP} (in `flagged`, loop depth 1)"
            ),
            format!(
                "crates/vizalgo/src/fixture.rs:9: [hot-loop-alloc] {PUSH_MSG} (in `flagged`, \
                 loop depth 1)"
            ),
            format!(
                "crates/vizalgo/src/fixture.rs:10: [hot-loop-alloc] `.to_vec` copies into a \
                 new Vec {ALLOC_HELP} (in `flagged`, loop depth 1)"
            ),
            format!(
                "crates/vizalgo/src/fixture.rs:12: [hot-loop-alloc] `Box::new` heap-allocates \
                 via Box {ALLOC_HELP} (in `flagged`, loop depth 1)"
            ),
        ]
    );
}

#[test]
fn hot_loop_alloc_spares_presized_pushes_and_chain_top_collects() {
    // `presized` pushes under with_capacity; `outside_loops` collects a
    // single-statement adapter chain whose collect runs once. Neither
    // may fire — check by asserting the full fixture finding set above
    // names only `flagged` and `nested`.
    for f in analyze_source("crates/vizalgo/src/fixture.rs", HOT_LOOP) {
        let name = f.fn_name.as_deref().unwrap_or("");
        assert!(
            name == "flagged" || name == "nested",
            "unexpected finding in `{name}`: {f}"
        );
    }
}

#[test]
fn span_discipline_flags_leaks_and_early_returns_only() {
    let diags = rendered("crates/powersim/src/fixture.rs", SPAN);
    assert_eq!(
        diags,
        vec![
            "crates/powersim/src/fixture.rs:20: [span-discipline] journal span opened here \
             (`t0` = ….now()) is never closed by a `push_span` referencing it in the same \
             function; every open must reach a close or RAII guard on all paths (in `leaked`)"
                .to_string(),
            "crates/powersim/src/fixture.rs:29: [span-discipline] early `return` between the \
             open of journal span `t0` (line 27) and its close (line 31); the span leaks on \
             this path (in `leaked_on_early_return`)"
                .to_string(),
        ]
    );
}

#[test]
fn fp_reduction_order_flags_parallel_float_combines_only() {
    let diags = rendered("crates/cloverleaf/src/fixture.rs", REDUCTION);
    let msg = |what: &str| -> String {
        format!(
            "order-sensitive float combine `{what}` reachable from a rayon parallel \
             iterator; the combine tree varies with thread count — reduce sequentially in \
             a fixed order or prove the combine order-insensitive"
        )
    };
    assert_eq!(
        diags,
        vec![
            format!(
                "crates/cloverleaf/src/fixture.rs:6: [fp-reduction-order] {} (in \
                 `par_sum_unannotated`, loop depth 1)",
                msg(".sum")
            ),
            format!(
                "crates/cloverleaf/src/fixture.rs:10: [fp-reduction-order] {} (in \
                 `par_sum_float_turbofish`)",
                msg(".sum")
            ),
            format!(
                "crates/cloverleaf/src/fixture.rs:14: [fp-reduction-order] {} (in \
                 `par_reduce_multiline`)",
                msg(".reduce")
            ),
            format!(
                "crates/cloverleaf/src/fixture.rs:20: [fp-reduction-order] {} (in \
                 `par_fold`)",
                msg(".fold")
            ),
        ]
    );
}

#[test]
fn analyze_passes_only_apply_to_hot_path_library_code() {
    // Same content outside HOT_PATH_CRATES or under src/bin/ is ignored
    // at the workspace level; analyze_source has no crate filter, so
    // check via the workspace entry below (e2e) and here confirm the
    // fixture content itself is pass-clean when empty.
    assert_eq!(
        rendered("crates/vizalgo/src/fixture.rs", ""),
        Vec::<String>::new()
    );
}

#[test]
fn json_report_carries_schema_counts_and_sorted_findings() {
    let findings = analyze_source("crates/vizalgo/src/fixture.rs", HOT_LOOP);
    let analysis = Analysis {
        findings,
        files_scanned: 1,
    };
    let json = analyze::to_json(&analysis);
    assert!(json.starts_with("{\n  \"schema\": 1,\n  \"tool\": \"xtask-analyze\",\n"));
    assert!(json.contains("\"files_scanned\": 1,"));
    assert!(json.contains(
        "\"counts\": {\"fp-reduction-order\": 0, \"hot-loop-alloc\": 5, \"span-discipline\": 0}"
    ));
    assert!(json.contains(
        "\"pass\": \"hot-loop-alloc\", \"path\": \"crates/vizalgo/src/fixture.rs\", \
         \"line\": 22, \"fn\": \"nested\", \"loop_depth\": 2,"
    ));
    // Exactly one finding object per finding, comma-separated.
    assert_eq!(json.matches("\"pass\":").count(), analysis.findings.len());
}

// ---------------------------------------------------------------------------
// End-to-end: the real binary, the baseline file, and the ratchet.
// ---------------------------------------------------------------------------

struct TempTree {
    root: PathBuf,
}

impl TempTree {
    fn new(case: &str) -> TempTree {
        let root =
            std::env::temp_dir().join(format!("xtask-analyze-{}-{case}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(&root).expect("create temp tree");
        fs::write(root.join("Cargo.toml"), "[workspace]\nmembers = []\n").expect("write manifest");
        TempTree { root }
    }

    fn write(&self, rel: &str, text: &str) {
        let path = self.root.join(rel);
        fs::create_dir_all(path.parent().expect("rel path has a parent")).expect("mkdir");
        fs::write(path, text).expect("write fixture");
    }

    fn remove(&self, rel: &str) {
        fs::remove_file(self.root.join(rel)).expect("remove fixture");
    }

    fn run(&self, extra: &[&str]) -> (i32, String, String) {
        let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
            .arg("analyze")
            .args(extra)
            .arg("--root")
            .arg(&self.root)
            .output()
            .expect("run xtask binary");
        (
            out.status.code().expect("exit code"),
            String::from_utf8(out.stdout).expect("utf-8 stdout"),
            String::from_utf8(out.stderr).expect("utf-8 stderr"),
        )
    }

    fn baseline(&self) -> String {
        fs::read_to_string(self.root.join(analyze::ANALYSIS_BASELINE)).expect("read baseline")
    }
}

impl Drop for TempTree {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

#[test]
fn plain_analyze_lists_findings_but_exits_zero() {
    let tree = TempTree::new("plain");
    tree.write("crates/vizalgo/src/hot.rs", HOT_LOOP);
    let (code, stdout, _) = tree.run(&[]);
    assert_eq!(code, 0, "findings are a worklist, not a gate");
    assert_eq!(stdout.lines().count(), 5, "stdout:\n{stdout}");
    assert!(stdout.contains("crates/vizalgo/src/hot.rs:22: [hot-loop-alloc]"));
}

#[test]
fn analyze_skips_non_hot_path_crates_and_binaries() {
    let tree = TempTree::new("scope");
    tree.write("crates/insitu/src/hot.rs", HOT_LOOP);
    tree.write("crates/vizalgo/src/bin/tool.rs", HOT_LOOP);
    let (code, stdout, _) = tree.run(&[]);
    assert_eq!(code, 0);
    assert_eq!(stdout, "", "non-hot-path code must produce no findings");
}

#[test]
fn ratchet_without_a_baseline_fails_with_guidance() {
    let tree = TempTree::new("nobase");
    tree.write("crates/vizalgo/src/hot.rs", HOT_LOOP);
    let (code, _, stderr) = tree.run(&["--ratchet"]);
    assert_eq!(code, 1);
    assert!(
        stderr.contains("--write-baseline"),
        "stderr should point at the pin command:\n{stderr}"
    );
}

#[test]
fn ratchet_pins_regresses_and_self_prunes() {
    let tree = TempTree::new("ratchet");
    tree.write("crates/vizalgo/src/hot.rs", HOT_LOOP);

    let (code, _, _) = tree.run(&["--write-baseline"]);
    assert_eq!(code, 0);
    assert!(tree.baseline().contains("\"hot-loop-alloc\": 5"));

    // At the pinned counts the ratchet is clean.
    let (code, _, stderr) = tree.run(&["--ratchet"]);
    assert_eq!(code, 0, "clean ratchet must pass; stderr:\n{stderr}");

    // A new finding raises the count past the baseline: fail.
    tree.write("crates/cloverleaf/src/more.rs", HOT_LOOP);
    let (code, _, stderr) = tree.run(&["--ratchet"]);
    assert_eq!(code, 1, "rise must fail");
    assert!(
        stderr.contains("hot-loop-alloc rose 5 -> 10"),
        "stderr should name the regressed pass:\n{stderr}"
    );

    // Fixing findings shrinks the committed baseline automatically.
    tree.remove("crates/cloverleaf/src/more.rs");
    tree.remove("crates/vizalgo/src/hot.rs");
    let (code, _, stderr) = tree.run(&["--ratchet"]);
    assert_eq!(code, 0, "improvement must pass; stderr:\n{stderr}");
    assert!(
        stderr.contains("baseline tightened"),
        "stderr should report the shrink:\n{stderr}"
    );
    assert!(tree.baseline().contains("\"hot-loop-alloc\": 0"));
}

#[test]
fn json_flag_emits_the_report_on_stdout() {
    let tree = TempTree::new("json");
    tree.write("crates/powersim/src/spans.rs", SPAN);
    let (code, stdout, _) = tree.run(&["--json"]);
    assert_eq!(code, 0);
    assert!(stdout.starts_with("{\n  \"schema\": 1,"));
    assert!(stdout.contains("\"span-discipline\": 2"));
    assert!(stdout.contains("\"fn\": \"leaked\""));
}
