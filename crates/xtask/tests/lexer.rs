//! Goldens for the nasty corners of the `xtask::lex` tokenizer: the
//! exact token streams and cleaned line views the lint and analyze
//! passes depend on. Each case is a construct the old line-cleaning
//! scanner either got wrong or only handled by luck.

use xtask::lex::{lex, line_contexts, Kind};
use xtask::scan::SourceFile;

fn stream(text: &str) -> Vec<(Kind, String)> {
    lex(text)
        .into_iter()
        .filter(|t| t.kind != Kind::Ws)
        .map(|t| (t.kind, t.text))
        .collect()
}

fn cleaned(text: &str) -> Vec<String> {
    SourceFile::parse("crates/vizalgo/src/x.rs", text)
        .lines
        .into_iter()
        .map(|l| l.code)
        .collect()
}

#[test]
fn hashed_raw_strings_swallow_interior_quotes_and_hashes() {
    let got = stream("let s = r##\"quote \" and \"# still inside\"##;\n");
    assert_eq!(
        got,
        vec![
            (Kind::Ident, "let".into()),
            (Kind::Ident, "s".into()),
            (Kind::Punct, "=".into()),
            (
                Kind::RawStr,
                "r##\"quote \" and \"# still inside\"##".into()
            ),
            (Kind::Punct, ";".into()),
        ]
    );
    assert_eq!(
        cleaned("let s = r##\"quote \" and \"# still inside\"##;\n")[0],
        "let s = \"\";"
    );
}

#[test]
fn byte_strings_and_raw_byte_strings_are_string_tokens() {
    let got = stream("let a = b\"bytes \\\" esc\"; let b = br#\"say \"hi(\" ok\"#;\n");
    assert_eq!(got[3], (Kind::Str, "b\"bytes \\\" esc\"".into()));
    assert_eq!(got[8], (Kind::RawStr, "br#\"say \"hi(\" ok\"#".into()));
    // Both clean to an empty placeholder: no literal content may leak
    // into the code view the lints scan.
    assert_eq!(
        cleaned("let a = b\"x.unwrap()\"; let b = br#\"panic!(\"#;\n")[0],
        "let a = \"\"; let b = \"\";"
    );
}

#[test]
fn nested_block_comments_track_depth_not_first_terminator() {
    let text = "a /* outer /* inner */ tail */ b /* plain */ c\n";
    let got = stream(text);
    assert_eq!(
        got,
        vec![
            (Kind::Ident, "a".into()),
            (Kind::BlockComment, "/* outer /* inner */ tail */".into()),
            (Kind::Ident, "b".into()),
            (Kind::BlockComment, "/* plain */".into()),
            (Kind::Ident, "c".into()),
        ]
    );
    assert_eq!(cleaned(text)[0], "a  b  c");
}

#[test]
fn lifetimes_and_char_literals_disambiguate() {
    let text = "fn f<'a>(x: &'a str) -> char { let c = 'a'; let n = '\\n'; c }\n";
    let got = stream(text);
    let lifetimes: Vec<&String> = got
        .iter()
        .filter(|(k, _)| *k == Kind::Lifetime)
        .map(|(_, s)| s)
        .collect();
    let chars: Vec<&String> = got
        .iter()
        .filter(|(k, _)| *k == Kind::Char)
        .map(|(_, s)| s)
        .collect();
    assert_eq!(lifetimes, vec!["'a", "'a"]);
    assert_eq!(chars, vec!["'a'", "'\\n'"]);
    // Lifetimes survive in the code view; char contents do not.
    assert_eq!(
        cleaned(text)[0],
        "fn f<'a>(x: &'a str) -> char { let c = ' '; let n = ' '; c }"
    );
}

#[test]
fn cfg_guarded_braces_keep_the_block_model_balanced() {
    // An `#[cfg(...)]` attribute between fn header and body must not
    // derail function attribution, and the brace inside the attribute-
    // guarded match arm pairs correctly.
    let text = "\
pub fn outer(sel: u8) -> u32 {
    #[cfg(target_pointer_width = \"64\")]
    let wide = true;
    match sel {
        0 => {
            for i in 0..4 {
                work(i);
            }
            1
        }
        _ => 2,
    }
}
pub fn after() -> u32 { 3 }
";
    let toks = lex(text);
    let ctx = line_contexts(&toks, text.lines().count());
    // The header line carries the *surrounding* context (the body opens
    // at its trailing `{`); the attribute line is already inside.
    assert_eq!(ctx[0].fn_name, None);
    assert_eq!(ctx[1].fn_name.as_deref(), Some("outer"));
    assert_eq!(ctx[6].fn_name.as_deref(), Some("outer"));
    assert_eq!(ctx[6].loop_depth, 1, "inside the for body");
    assert_eq!(ctx[10].loop_depth, 0, "after the loop closes");
    assert_eq!(ctx[13].fn_name.as_deref(), Some("after"));
}

#[test]
fn array_types_with_semicolons_do_not_split_fn_headers() {
    // The `;` inside `[[u32; 4]]` is type punctuation, not a statement
    // end: the body must still attribute to `clip`.
    let text = "\
pub fn clip(tets: &[[u32; 4]], out: &mut Vec<[u32; 4]>) {
    for t in tets {
        out.push(*t);
    }
}
";
    let toks = lex(text);
    let ctx = line_contexts(&toks, text.lines().count());
    assert_eq!(ctx[2].fn_name.as_deref(), Some("clip"));
    assert_eq!(ctx[2].loop_depth, 1);
}

#[test]
fn comment_and_blank_lines_inherit_the_enclosing_context() {
    let text = "\
pub fn f() {
    let t0 = now();

    // a comment between open and close
    push(t0);
}
";
    let toks = lex(text);
    let ctx = line_contexts(&toks, text.lines().count());
    // Every interior line, including the blank and comment-only ones,
    // stays attributed to `f` so function extents stay contiguous.
    for i in 1..=4 {
        assert_eq!(ctx[i].fn_name.as_deref(), Some("f"), "line {}", i + 1);
    }
}

#[test]
fn tokens_carry_the_line_they_start_on() {
    let text = "let s = \"one\nstill literal\";\nlet x = 1;\n";
    let toks: Vec<_> = lex(text)
        .into_iter()
        .filter(|t| t.is_significant())
        .collect();
    let lit = toks.iter().find(|t| t.kind == Kind::Str).expect("literal");
    assert_eq!(lit.line, 1);
    let x = toks.iter().find(|t| t.text == "x").expect("x");
    assert_eq!(x.line, 3, "lines inside the literal still count");
}
