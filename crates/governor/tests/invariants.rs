//! Property tests for the governor's hard invariants: no matter the
//! budget, workload shape, or policy, active caps stay within the
//! hardware range and never sum past the node budget, and the journal is
//! byte-identical across runs and rayon pool sizes.

use governor::{govern, Reactive, StaticAdvisor, Uniform, WorkloadPair};
use powersim::trace::{Event, Journal};
use powersim::{CpuSpec, KernelPhase, Watts, Workload};
use proptest::prelude::*;

fn spec() -> CpuSpec {
    CpuSpec::broadwell_e5_2695v4()
}

/// A small synthetic pair parameterized by instruction counts, so
/// proptest can vary relative side lengths and phase mixes.
fn pair(sim_ginst: u64, viz_ginst: u64, viz_heavy: bool) -> WorkloadPair {
    let sim = Workload::new("p-sim")
        .with_phase(KernelPhase::compute("hydro-a", sim_ginst * 1_000_000_000))
        .with_phase(KernelPhase::memory(
            "halo",
            sim_ginst * 250_000_000,
            sim_ginst * 6_000_000_000,
        ))
        .with_phase(KernelPhase::compute("hydro-b", sim_ginst * 1_000_000_000));
    let viz = if viz_heavy {
        Workload::new("p-viz").with_phase(KernelPhase::compute("render", viz_ginst * 1_000_000_000))
    } else {
        Workload::new("p-viz").with_phase(KernelPhase::memory(
            "contour",
            viz_ginst * 1_000_000_000,
            viz_ginst * 25_000_000_000,
        ))
    };
    WorkloadPair { sim, viz }
}

/// Every decision in the journal satisfies the budget and range
/// contract.
fn assert_decisions_feasible(journal: &Journal, budget: Watts, spec: &CpuSpec) {
    let lo = spec.min_cap_watts;
    let hi = spec.tdp_watts;
    let mut decisions = 0;
    for e in journal.events() {
        if let Event::PolicyDecision(d) = e {
            decisions += 1;
            let mut active_total = Watts::ZERO;
            for cap in [d.sim_cap_watts, d.viz_cap_watts] {
                if cap > Watts(1e-9) {
                    assert!(
                        cap >= lo - Watts(1e-9) && cap <= hi + Watts(1e-9),
                        "cap {cap} outside [{lo}, {hi}]"
                    );
                    active_total += cap;
                }
            }
            assert!(
                active_total <= budget + Watts(1e-9),
                "active caps {active_total} exceed budget {budget}"
            );
            assert!(
                d.sim_power_watts + d.viz_power_watts <= budget + Watts(0.5),
                "window power {} + {} exceeds budget {budget}",
                d.sim_power_watts,
                d.viz_power_watts
            );
        }
    }
    assert!(decisions > 0, "governed run emitted no decisions");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn caps_always_feasible_under_any_budget(
        budget in 60.0f64..300.0,
        sim_ginst in 40u64..160,
        viz_ginst in 10u64..80,
        viz_heavy in any::<bool>(),
        policy_id in 0usize..3,
    ) {
        let spec = spec();
        let pair = pair(sim_ginst, viz_ginst, viz_heavy);
        let mut journal = Journal::with_capacity(1 << 15);
        let budget = Watts(budget);
        let r = match policy_id {
            0 => govern(&pair, &mut Uniform::new(), budget, &spec, &mut journal),
            1 => govern(&pair, &mut StaticAdvisor::new(), budget, &spec, &mut journal),
            _ => govern(&pair, &mut Reactive::new(), budget, &spec, &mut journal),
        };
        // The enforced budget is the feasibility-clamped one.
        prop_assert!(r.budget_watts >= 2.0 * spec.min_cap_watts - Watts(1e-9));
        prop_assert!(r.budget_watts <= 2.0 * spec.tdp_watts + Watts(1e-9));
        prop_assert!(r.max_window_power_watts <= r.budget_watts + Watts(0.5));
        prop_assert!(r.seconds > 0.0);
        assert_decisions_feasible(&journal, r.budget_watts, &spec);
    }

    #[test]
    fn journal_is_byte_identical_across_runs_and_thread_counts(
        budget in 80.0f64..240.0,
        sim_ginst in 40u64..120,
        viz_ginst in 10u64..60,
    ) {
        let run_in_pool = |threads: usize| {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                // lint: infallible because a fresh private pool with a valid thread count cannot fail to build
                .expect("thread pool");
            pool.install(|| {
                let spec = spec();
                let pair = pair(sim_ginst, viz_ginst, false);
                let mut journal = Journal::with_capacity(1 << 15);
                govern(&pair, &mut Reactive::new(), Watts(budget), &spec, &mut journal);
                journal.to_jsonl()
            })
        };
        let one = run_in_pool(1);
        let four = run_in_pool(4);
        prop_assert_eq!(one, four);
    }
}
