//! Pluggable cap-assignment policies behind the [`Policy`] trait.
//!
//! A policy sees one [`Observation`] per 100 ms control window — each
//! side's programmed cap, measured power, and derived counter ratios —
//! and returns the [`CapSplit`] to program for the next window. The
//! governor ([`crate::control::govern`]) enforces the hard invariants
//! (caps within the hardware range, active caps summing to at most the
//! node budget) regardless of what a policy returns; policies only
//! choose *where* inside the feasible region to sit.
//!
//! All splits stay on a whole-watt grid so the RAPL 1/8 W limit field
//! encodes them exactly and journals stay byte-identical across runs.

use crate::pair::WorkloadPair;
use powersim::{CpuSpec, Watts};
use vizpower::advisor;
use vizpower::classify::{classify_sample, PowerClass};

/// A node budget split across the two packages.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CapSplit {
    /// Cap of the package running the simulation.
    pub sim: Watts,
    /// Cap of the package running the visualization.
    pub viz: Watts,
}

impl CapSplit {
    /// The naïve split: half the budget each, clamped to the hardware
    /// range.
    pub fn uniform(budget: Watts, spec: &CpuSpec) -> CapSplit {
        let per = (budget / 2.0).clamp(spec.min_cap_watts, spec.tdp_watts);
        CapSplit { sim: per, viz: per }
    }

    /// Sum of the two caps.
    pub fn total(&self) -> Watts {
        self.sim + self.viz
    }
}

/// What the governor observed for one side over the last window.
#[derive(Debug, Clone, Copy)]
pub struct SideObs {
    /// The side was still executing at the end of the window.
    pub active: bool,
    /// Cap programmed during the window (zero once the side completed).
    pub cap: Watts,
    /// Mean power drawn while the side was running this window.
    pub power: Watts,
    /// IPC of the side's newest 100 ms sample (0 before the first).
    pub ipc: f64,
    /// LLC miss ratio of the side's newest 100 ms sample.
    pub llc_miss_rate: f64,
}

impl SideObs {
    /// Online phase classification of this side's current sample, using
    /// the thresholds in [`vizpower::classify`].
    pub fn class(&self) -> PowerClass {
        classify_sample(self.ipc, self.llc_miss_rate)
    }

    /// Cap minus measured draw: power the side is not using.
    pub fn headroom(&self) -> Watts {
        (self.cap - self.power).max(Watts::ZERO)
    }
}

/// One control-loop observation: both sides plus the node budget.
#[derive(Debug, Clone, Copy)]
pub struct Observation {
    /// Governor-timeline seconds at the end of the window.
    pub t: f64,
    /// The node power budget.
    pub budget: Watts,
    /// The simulation side.
    pub sim: SideObs,
    /// The visualization side.
    pub viz: SideObs,
}

/// A cap-assignment policy driven by the 100 ms observation stream.
pub trait Policy {
    /// Short stable name used in journals and tables.
    fn name(&self) -> &'static str;

    /// The split to program before the first window.
    fn initial(&mut self, pair: &WorkloadPair, budget: Watts, spec: &CpuSpec) -> CapSplit;

    /// The split for the next window, given the last window's
    /// observation.
    fn decide(&mut self, obs: &Observation, spec: &CpuSpec) -> CapSplit;
}

/// Hand the whole budget (bounded by TDP) to the only side still
/// running; keep `split` while both run or both are done.
fn retirement_reassign(split: CapSplit, obs: &Observation, spec: &CpuSpec) -> CapSplit {
    match (obs.sim.active, obs.viz.active) {
        (true, false) => CapSplit {
            sim: obs.budget.min(spec.tdp_watts),
            viz: Watts::ZERO,
        },
        (false, true) => CapSplit {
            sim: Watts::ZERO,
            viz: obs.budget.min(spec.tdp_watts),
        },
        _ => split,
    }
}

// ---------------------------------------------------------------------------
// Uniform
// ---------------------------------------------------------------------------

/// The naïve baseline: split the budget evenly once and never look at a
/// counter again — not even when one side finishes.
#[derive(Debug, Default)]
pub struct Uniform {
    split: CapSplit,
}

impl Uniform {
    /// A fresh uniform policy.
    pub fn new() -> Self {
        Uniform::default()
    }
}

impl Policy for Uniform {
    fn name(&self) -> &'static str {
        "uniform"
    }

    fn initial(&mut self, _pair: &WorkloadPair, budget: Watts, spec: &CpuSpec) -> CapSplit {
        self.split = CapSplit::uniform(budget, spec);
        self.split
    }

    fn decide(&mut self, _obs: &Observation, _spec: &CpuSpec) -> CapSplit {
        self.split
    }
}

// ---------------------------------------------------------------------------
// StaticAdvisor
// ---------------------------------------------------------------------------

/// Apply the offline [`vizpower::advisor`] plan once, before the run,
/// and hold it: the paper's §VII runtime idea without the feedback loop.
#[derive(Debug, Default)]
pub struct StaticAdvisor {
    split: CapSplit,
}

impl StaticAdvisor {
    /// A fresh static-advisor policy.
    pub fn new() -> Self {
        StaticAdvisor::default()
    }
}

impl Policy for StaticAdvisor {
    fn name(&self) -> &'static str {
        "static-advisor"
    }

    fn initial(&mut self, pair: &WorkloadPair, budget: Watts, spec: &CpuSpec) -> CapSplit {
        let plan = advisor::allocate(&pair.sim, &pair.viz, budget, spec);
        self.split = CapSplit {
            sim: plan.sim_cap_watts,
            viz: plan.viz_cap_watts,
        };
        self.split
    }

    fn decide(&mut self, _obs: &Observation, _spec: &CpuSpec) -> CapSplit {
        self.split
    }
}

// ---------------------------------------------------------------------------
// Reactive
// ---------------------------------------------------------------------------

/// Watts moved per accepted hill-climb step.
pub const STEP_WATTS: Watts = Watts(5.0);

/// A donor must be leaving at least this much headroom *beyond* the
/// step, so taking the step provably does not slow it down.
pub const HEADROOM_SLACK_WATTS: Watts = Watts(4.0);

/// A receiver drawing within this margin of its cap counts as
/// power-limited (the margin absorbs DVFS-ladder quantization).
pub const PINCH_WATTS: Watts = Watts(3.0);

/// Consecutive windows a transfer condition must hold before a step is
/// taken (hysteresis against single-sample phase noise).
pub const HYSTERESIS_WINDOWS: u32 = 2;

/// The closed-loop policy: a hysteresis hill-climb that steals headroom
/// from memory-bound (power-opportunity) phases for the power-limited
/// side, and hands the entire budget to whichever side outlives the
/// other.
///
/// A 5 W step from X to Y is taken only after [`HYSTERESIS_WINDOWS`]
/// consecutive windows in which X classifies as a power opportunity
/// with more than `STEP + SLACK` watts of unused headroom while Y is
/// power-sensitive and pinched against its cap — so each step is free
/// for the donor at the moment it is taken, and misclassified windows
/// cannot trigger a transfer on their own.
#[derive(Debug, Default)]
pub struct Reactive {
    split: CapSplit,
    steal_from_viz: u32,
    steal_from_sim: u32,
}

impl Reactive {
    /// A fresh reactive policy.
    pub fn new() -> Self {
        Reactive::default()
    }

    /// Whether `donor` can give a step away for free while `receiver`
    /// wants it.
    fn transfer_wanted(donor: &SideObs, receiver: &SideObs) -> bool {
        donor.class() == PowerClass::PowerOpportunity
            && donor.headroom() > STEP_WATTS + HEADROOM_SLACK_WATTS
            && receiver.class() == PowerClass::PowerSensitive
            && receiver.power > receiver.cap - PINCH_WATTS
    }
}

impl Policy for Reactive {
    fn name(&self) -> &'static str {
        "reactive"
    }

    fn initial(&mut self, _pair: &WorkloadPair, budget: Watts, spec: &CpuSpec) -> CapSplit {
        self.split = CapSplit::uniform(budget, spec);
        self.steal_from_viz = 0;
        self.steal_from_sim = 0;
        self.split
    }

    fn decide(&mut self, obs: &Observation, spec: &CpuSpec) -> CapSplit {
        if !(obs.sim.active && obs.viz.active) {
            self.split = retirement_reassign(self.split, obs, spec);
            return self.split;
        }
        let lo = spec.min_cap_watts;
        let hi = spec.tdp_watts;

        if Reactive::transfer_wanted(&obs.viz, &obs.sim) {
            self.steal_from_viz += 1;
        } else {
            self.steal_from_viz = 0;
        }
        if Reactive::transfer_wanted(&obs.sim, &obs.viz) {
            self.steal_from_sim += 1;
        } else {
            self.steal_from_sim = 0;
        }

        if self.steal_from_viz >= HYSTERESIS_WINDOWS
            && self.split.viz - STEP_WATTS >= lo
            && self.split.sim + STEP_WATTS <= hi
        {
            self.split.viz -= STEP_WATTS;
            self.split.sim += STEP_WATTS;
            self.steal_from_viz = 0;
        } else if self.steal_from_sim >= HYSTERESIS_WINDOWS
            && self.split.sim - STEP_WATTS >= lo
            && self.split.viz + STEP_WATTS <= hi
        {
            self.split.sim -= STEP_WATTS;
            self.split.viz += STEP_WATTS;
            self.steal_from_sim = 0;
        }
        self.split
    }
}

// ---------------------------------------------------------------------------
// FixedSplit (oracle building block)
// ---------------------------------------------------------------------------

/// Hold a given split while both sides run, with the same retirement
/// reassignment as [`Reactive`]. The oracle is the best [`FixedSplit`]
/// over the whole split grid, found by exhaustive search in
/// [`crate::study`] — an upper bound no static assignment can beat.
#[derive(Debug)]
pub struct FixedSplit {
    split: CapSplit,
    name: &'static str,
}

impl FixedSplit {
    /// A fixed-split policy for the given caps.
    pub fn new(split: CapSplit) -> Self {
        FixedSplit {
            split,
            name: "fixed",
        }
    }

    /// A fixed split reported under a different name (the study re-runs
    /// the winning split as "oracle").
    pub fn named(split: CapSplit, name: &'static str) -> Self {
        FixedSplit { split, name }
    }
}

impl Policy for FixedSplit {
    fn name(&self) -> &'static str {
        self.name
    }

    fn initial(&mut self, _pair: &WorkloadPair, _budget: Watts, spec: &CpuSpec) -> CapSplit {
        self.split = CapSplit {
            sim: self.split.sim.clamp(spec.min_cap_watts, spec.tdp_watts),
            viz: self.split.viz.clamp(spec.min_cap_watts, spec.tdp_watts),
        };
        self.split
    }

    fn decide(&mut self, obs: &Observation, spec: &CpuSpec) -> CapSplit {
        self.split = retirement_reassign(self.split, obs, spec);
        self.split
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powersim::CpuSpec;

    fn spec() -> CpuSpec {
        CpuSpec::broadwell_e5_2695v4()
    }

    fn obs(sim: SideObs, viz: SideObs, budget: f64) -> Observation {
        Observation {
            t: 0.1,
            budget: Watts(budget),
            sim,
            viz,
        }
    }

    fn side(active: bool, cap: f64, power: f64, ipc: f64, miss: f64) -> SideObs {
        SideObs {
            active,
            cap: Watts(cap),
            power: Watts(power),
            ipc,
            llc_miss_rate: miss,
        }
    }

    #[test]
    fn uniform_never_moves() {
        let pair = WorkloadPair::synthetic_for_tests();
        let mut p = Uniform::new();
        let s0 = p.initial(&pair, Watts(160.0), &spec());
        assert_eq!(s0.sim, Watts(80.0));
        assert_eq!(s0.viz, Watts(80.0));
        // Even a retired viz side changes nothing.
        let o = obs(
            side(true, 80.0, 79.0, 2.5, 0.05),
            side(false, 0.0, 0.0, 0.0, 0.0),
            160.0,
        );
        assert_eq!(p.decide(&o, &spec()), s0);
    }

    #[test]
    fn reactive_reassigns_on_retirement() {
        let pair = WorkloadPair::synthetic_for_tests();
        let mut p = Reactive::new();
        p.initial(&pair, Watts(160.0), &spec());
        let o = obs(
            side(true, 80.0, 79.0, 2.5, 0.05),
            side(false, 0.0, 0.0, 0.0, 0.0),
            160.0,
        );
        let s = p.decide(&o, &spec());
        assert_eq!(s.sim, Watts(120.0), "sim gets min(budget, TDP)");
        assert_eq!(s.viz, Watts::ZERO);
    }

    #[test]
    fn reactive_steals_only_after_hysteresis() {
        let pair = WorkloadPair::synthetic_for_tests();
        let mut p = Reactive::new();
        p.initial(&pair, Watts(160.0), &spec());
        // viz memory-bound with lots of headroom, sim pinched & sensitive.
        let o = obs(
            side(true, 80.0, 79.0, 2.5, 0.05),
            side(true, 80.0, 45.0, 0.4, 0.9),
            160.0,
        );
        let s1 = p.decide(&o, &spec());
        assert_eq!(s1.sim, Watts(80.0), "first window: no move yet");
        let s2 = p.decide(&o, &spec());
        assert_eq!(s2.sim, Watts(85.0), "second window: one 5 W step");
        assert_eq!(s2.viz, Watts(75.0));
        assert_eq!(s2.total(), Watts(160.0), "steps conserve the sum");
    }

    #[test]
    fn reactive_never_strands_a_busy_donor() {
        let pair = WorkloadPair::synthetic_for_tests();
        let mut p = Reactive::new();
        p.initial(&pair, Watts(160.0), &spec());
        // viz compute-bound and pinched: no headroom, no steal, ever.
        let o = obs(
            side(true, 80.0, 79.0, 2.5, 0.05),
            side(true, 80.0, 78.5, 2.7, 0.03),
            160.0,
        );
        for _ in 0..10 {
            let s = p.decide(&o, &spec());
            assert_eq!(s.sim, Watts(80.0));
        }
    }

    #[test]
    fn reactive_respects_hardware_floor() {
        let pair = WorkloadPair::synthetic_for_tests();
        let mut p = Reactive::new();
        p.initial(&pair, Watts(80.0), &spec());
        // Both at the 40 W floor: no step can be taken downward.
        let o = obs(
            side(true, 40.0, 39.5, 1.4, 0.05),
            side(true, 40.0, 25.0, 0.4, 0.9),
            80.0,
        );
        for _ in 0..10 {
            let s = p.decide(&o, &spec());
            assert_eq!(s.sim, Watts(40.0));
            assert_eq!(s.viz, Watts(40.0));
        }
    }

    #[test]
    fn fixed_split_holds_then_reassigns() {
        let pair = WorkloadPair::synthetic_for_tests();
        let mut p = FixedSplit::new(CapSplit {
            sim: Watts(110.0),
            viz: Watts(50.0),
        });
        let s0 = p.initial(&pair, Watts(160.0), &spec());
        assert_eq!(s0.sim, Watts(110.0));
        let both = obs(
            side(true, 110.0, 100.0, 2.0, 0.1),
            side(true, 50.0, 45.0, 0.5, 0.8),
            160.0,
        );
        assert_eq!(p.decide(&both, &spec()), s0);
        let viz_done = obs(
            side(true, 110.0, 100.0, 2.0, 0.1),
            side(false, 0.0, 0.0, 0.0, 0.0),
            160.0,
        );
        assert_eq!(p.decide(&viz_done, &spec()).sim, Watts(120.0));
    }
}
