//! Build the coupled workload pair the governor runs: CloverLeaf on one
//! package, its in-situ visualization on the other.
//!
//! The pair comes from an instrumented [`insitu::InSituRuntime`] run —
//! the simulation side characterized from the per-hydro-kernel phase
//! breakdown ([`insitu::CycleRecord::sim_phases`]), the visualization
//! side from the per-kernel viz reports — then scaled up to study-length
//! durations so the 100 ms control loop sees enough windows to act on.
//! Scaling multiplies each phase's *counts* (instructions, LLC refs,
//! DRAM bytes) by a common integer, which preserves every per-phase
//! ratio (CPI, activity, miss rate) the classifier keys on.

use cloverleaf::Problem;
use insitu::{Action, ActionList, FilterSpec, InSituRuntime, RendererSpec, RuntimeConfig, Trigger};
use powersim::{CpuSpec, KernelPhase, Package, Workload};
use vizalgo::{IsoValues, KernelReport};
use vizpower::characterize::characterize;

/// Uncapped duration the simulation side is scaled to (seconds).
pub const TARGET_SIM_SECONDS: f64 = 6.0;

/// Uncapped duration the visualization side is scaled to (seconds). The
/// viz finishing first is the paper's concurrent-pair shape and is what
/// gives a closed-loop policy its retirement-reassignment win.
pub const TARGET_VIZ_SECONDS: f64 = 2.4;

/// The two characterized workloads the governor splits a budget across.
#[derive(Debug, Clone)]
pub struct WorkloadPair {
    /// The CloverLeaf hydro simulation (compute-bound, power-hungry).
    pub sim: Workload,
    /// The in-situ visualization (mostly data-bound).
    pub viz: Workload,
}

impl WorkloadPair {
    /// A hand-built pair for unit tests: a compute-bound simulation and
    /// a memory-bound visualization with the same target durations as
    /// the real pair, but no simulation run behind it.
    pub fn synthetic_for_tests() -> WorkloadPair {
        // ~6 s of compute at TDP (2.6 GHz × 18 cores × IPC 2.5 ≈ 117 G
        // instructions/s) and ~2.4 s of DRAM-bound streaming (160 GB at
        // the 68 GB/s sustained bandwidth; core time is ~1 s, so the
        // roofline takes the memory side).
        let sim = Workload::new("synthetic-sim")
            .with_phase(KernelPhase::compute("hydro-a", 350_000_000_000))
            .with_phase(KernelPhase::compute("hydro-b", 350_000_000_000));
        let viz = Workload::new("synthetic-viz").with_phase(KernelPhase::memory(
            "contour",
            60_000_000_000,
            160_000_000_000,
        ));
        WorkloadPair { sim, viz }
    }
}

/// Uncapped (TDP) execution time of a workload on a fresh package.
fn uncapped_seconds(workload: &Workload, spec: &CpuSpec) -> f64 {
    let mut pkg = Package::new(spec.clone());
    pkg.run(workload).seconds
}

/// Multiply every phase's event counts by `k`, stretching duration
/// without changing any rate or ratio.
fn scale_counts(workload: &mut Workload, k: u64) {
    for phase in &mut workload.phases {
        phase.instructions *= k;
        phase.llc_refs *= k;
        phase.dram_bytes *= k;
    }
}

/// Smallest integer count multiplier bringing `workload` to at least
/// `target_seconds` uncapped.
fn scale_to_target(workload: &mut Workload, target_seconds: f64, spec: &CpuSpec) {
    let base = uncapped_seconds(workload, spec);
    if base <= 0.0 {
        return;
    }
    let k = (target_seconds / base).ceil().max(1.0) as u64;
    scale_counts(workload, k);
}

/// Characterize the coupled CloverLeaf + visualization pair on an
/// `grid_cells`³ grid and scale both sides to study length.
///
/// The instrumentation run is a short tightly-coupled loop (9 steps,
/// visualizing every 3rd) with the paper's contour pipeline and a
/// volume-rendering scene; its counters are deterministic, so the
/// resulting pair — and every journal downstream of it — is too.
pub fn coupled_pair(grid_cells: usize, spec: &CpuSpec) -> WorkloadPair {
    let config = RuntimeConfig {
        grid_cells,
        total_steps: 9,
        trigger: Trigger::EveryN { n: 3 },
    };
    let actions = ActionList(vec![
        Action::AddPipeline {
            name: "contour".into(),
            filters: vec![FilterSpec::Contour {
                field: "energy".into(),
                isovalues: IsoValues::Spanning(3),
            }],
        },
        Action::AddScene {
            name: "volren".into(),
            renderer: RendererSpec::VolumeRendering {
                field: "energy".into(),
                width: 16,
                height: 16,
                images: 2,
            },
        },
    ]);
    let mut rt = InSituRuntime::new(Problem::TwoState, config, actions);
    let run = rt.run();

    let sim_reports: Vec<KernelReport> = run
        .cycles
        .iter()
        .flat_map(|c| c.sim_phases.iter().cloned())
        .collect();
    let viz_reports: Vec<KernelReport> = run
        .cycles
        .iter()
        .flat_map(|c| c.viz_kernels.iter().cloned())
        .collect();

    let mut sim = characterize("cloverleaf", &sim_reports, spec);
    let mut viz = characterize("insitu-viz", &viz_reports, spec);
    scale_to_target(&mut sim, TARGET_SIM_SECONDS, spec);
    scale_to_target(&mut viz, TARGET_VIZ_SECONDS, spec);
    WorkloadPair { sim, viz }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> CpuSpec {
        CpuSpec::broadwell_e5_2695v4()
    }

    #[test]
    fn coupled_pair_hits_its_targets() {
        let pair = coupled_pair(8, &spec());
        assert!(!pair.sim.is_empty());
        assert!(!pair.viz.is_empty());
        let ts = uncapped_seconds(&pair.sim, &spec());
        let tv = uncapped_seconds(&pair.viz, &spec());
        // Integer scaling overshoots by at most one base run.
        assert!(
            (TARGET_SIM_SECONDS..TARGET_SIM_SECONDS * 2.2).contains(&ts),
            "sim uncapped {ts} s"
        );
        assert!(
            (TARGET_VIZ_SECONDS..TARGET_VIZ_SECONDS * 2.2).contains(&tv),
            "viz uncapped {tv} s"
        );
        assert!(tv < ts, "viz should retire first ({tv} !< {ts})");
    }

    #[test]
    fn coupled_pair_phases_are_valid_and_deterministic() {
        let a = coupled_pair(8, &spec());
        let b = coupled_pair(8, &spec());
        assert!(a.sim.phases.iter().all(|p| p.is_valid()));
        assert!(a.viz.phases.iter().all(|p| p.is_valid()));
        assert_eq!(a.sim.total_instructions(), b.sim.total_instructions());
        assert_eq!(a.viz.total_instructions(), b.viz.total_instructions());
        assert_eq!(a.sim.phases.len(), b.sim.phases.len());
    }

    #[test]
    fn scaling_preserves_ratios() {
        let mut w = Workload::new("w").with_phase(KernelPhase::memory("m", 1_000, 64_000));
        let miss = w.phases[0].llc_miss_rate;
        let refs_per_inst = w.phases[0].llc_refs as f64 / w.phases[0].instructions as f64;
        scale_counts(&mut w, 7);
        assert_eq!(w.phases[0].instructions, 7_000);
        assert_eq!(w.phases[0].llc_miss_rate, miss);
        let refs_per_inst_after = w.phases[0].llc_refs as f64 / w.phases[0].instructions as f64;
        assert!((refs_per_inst - refs_per_inst_after).abs() < 1e-12);
    }

    #[test]
    fn synthetic_pair_matches_the_real_shape() {
        let pair = WorkloadPair::synthetic_for_tests();
        let ts = uncapped_seconds(&pair.sim, &spec());
        let tv = uncapped_seconds(&pair.viz, &spec());
        assert!(tv < ts, "viz retires first ({tv} !< {ts})");
        assert!(ts > 1.0, "sim long enough for many control windows");
    }
}
