//! The budget-sweep study: the governed cloverleaf + visualization pair
//! across node budgets from 80 W to 240 W, one row per (budget, policy).
//!
//! Four policies run at every budget: the three online policies
//! ([`Uniform`], [`StaticAdvisor`], [`Reactive`]) plus an *oracle* upper
//! bound — the best fixed split found by exhaustive search over the 5 W
//! grid (with journaling off), re-run journaled under the name
//! `"oracle"`. The oracle bounds what any static assignment can achieve;
//! `Reactive` may beat it, because reassigning the retired side's power
//! mid-run is outside the static space.

use crate::control::{clamp_budget, govern, GovernorResult};
use crate::pair::{coupled_pair, WorkloadPair};
use crate::policy::{CapSplit, FixedSplit, Policy, Reactive, StaticAdvisor, Uniform};
use powersim::trace::{Journal, Scope};
use powersim::{CpuSpec, Joules, Watts};

/// The studied node budgets: 80 W (both packages at the floor) to 240 W
/// (both at TDP) in 20 W steps.
pub fn budgets() -> Vec<Watts> {
    (0..9).map(|i| Watts(80.0 + 20.0 * i as f64)).collect()
}

/// One (budget, policy) cell of the sweep table.
#[derive(Debug, Clone)]
pub struct PolicyRow {
    /// The enforced node budget.
    pub budget_watts: Watts,
    /// Policy name (`uniform`, `static-advisor`, `reactive`, `oracle`).
    pub policy: String,
    /// Pair completion time (slower side).
    pub seconds: f64,
    /// Total node energy.
    pub energy_joules: Joules,
    /// `energy / seconds`.
    pub avg_power_watts: Watts,
    /// Highest node power over any 100 ms window.
    pub max_window_power_watts: Watts,
    /// Simulation-side completion time.
    pub sim_seconds: f64,
    /// Visualization-side completion time.
    pub viz_seconds: f64,
    /// RAPL reprogrammings performed.
    pub cap_changes: u64,
    /// Control decisions taken.
    pub decisions: u64,
}

impl PolicyRow {
    fn from_result(r: &GovernorResult) -> PolicyRow {
        PolicyRow {
            budget_watts: r.budget_watts,
            policy: r.policy.clone(),
            seconds: r.seconds,
            energy_joules: r.energy_joules,
            avg_power_watts: if r.seconds > 0.0 {
                r.energy_joules.over_seconds(r.seconds)
            } else {
                Watts::ZERO
            },
            max_window_power_watts: r.max_window_power_watts,
            sim_seconds: r.sim.seconds,
            viz_seconds: r.viz.seconds,
            cap_changes: r.cap_changes,
            decisions: r.decisions,
        }
    }
}

/// The full sweep: every policy at every budget.
#[derive(Debug, Clone)]
pub struct BudgetSweep {
    /// Grid size the pair was characterized from (cells per axis).
    pub grid_cells: usize,
    /// Rows in budget-major order: for each budget, `uniform`,
    /// `static-advisor`, `reactive`, `oracle`.
    pub rows: Vec<PolicyRow>,
}

impl BudgetSweep {
    /// The row for a given budget and policy, if present.
    pub fn row(&self, budget: Watts, policy: &str) -> Option<&PolicyRow> {
        self.rows
            .iter()
            .find(|r| (r.budget_watts - budget).abs() < Watts(1e-9) && r.policy == policy)
    }
}

/// Exhaustively search the best fixed split for `budget` on the 5 W cap
/// grid (journaling off), breaking ties toward the larger simulation
/// cap so the search order cannot affect the result.
fn oracle_split(pair: &WorkloadPair, budget: Watts, spec: &CpuSpec) -> CapSplit {
    let lo = spec.min_cap_watts;
    let hi = spec.tdp_watts;
    let budget = clamp_budget(budget, spec);
    let mut best: Option<(CapSplit, f64)> = None;
    let mut sim_cap = lo;
    while sim_cap <= hi + Watts(1e-9) {
        let viz_cap = (budget - sim_cap).clamp(lo, hi);
        if sim_cap + viz_cap <= budget + Watts(1e-9) {
            let split = CapSplit {
                sim: sim_cap,
                viz: viz_cap,
            };
            let r = govern(
                pair,
                &mut FixedSplit::new(split),
                budget,
                spec,
                &mut Journal::off(),
            );
            let better = match &best {
                None => true,
                Some((_, t)) => r.seconds < t * (1.0 - 1e-9),
            };
            if better {
                best = Some((split, r.seconds));
            }
        }
        sim_cap += Watts(5.0);
    }
    best.map(|(s, _)| s)
        .unwrap_or_else(|| CapSplit::uniform(budget, spec))
}

/// Sweep one already-characterized pair across `budgets`, journaling
/// each governed run.
pub fn sweep_pair(
    pair: &WorkloadPair,
    budgets: &[Watts],
    spec: &CpuSpec,
    journal: &mut Journal,
) -> Vec<PolicyRow> {
    let mut rows = Vec::with_capacity(budgets.len() * 4);
    for &budget in budgets {
        // Fresh per budget: Reactive carries state across windows and
        // must start each budget point cold.
        let mut online = online_policies();
        for policy in online.iter_mut() {
            let r = govern(pair, policy.as_mut(), budget, spec, journal);
            rows.push(PolicyRow::from_result(&r));
        }
        let split = oracle_split(pair, budget, spec);
        let mut oracle = FixedSplit::named(split, "oracle");
        let r = govern(pair, &mut oracle, budget, spec, journal);
        rows.push(PolicyRow::from_result(&r));
    }
    rows
}

/// The three online policies of the sweep, newly constructed (Reactive
/// is stateful, so each budget point needs a cold instance).
fn online_policies() -> [Box<dyn Policy>; 3] {
    [
        Box::new(Uniform::new()),
        Box::new(StaticAdvisor::new()),
        Box::new(Reactive::new()),
    ]
}

/// The full study: characterize the coupled pair at `grid_cells`³ and
/// sweep it across [`budgets`], under a [`Scope::Study`] span.
pub fn budget_sweep(grid_cells: usize, spec: &CpuSpec, journal: &mut Journal) -> BudgetSweep {
    let t0 = journal.now();
    let pair = coupled_pair(grid_cells, spec);
    let rows = sweep_pair(&pair, &budgets(), spec, journal);
    if journal.is_enabled() {
        journal.push_span(
            Scope::Study,
            format!("governor-sweep:{grid_cells}"),
            t0,
            None,
            vec![
                ("grid_cells", grid_cells as f64),
                ("budgets", budgets().len() as f64),
                ("rows", rows.len() as f64),
            ],
        );
    }
    BudgetSweep { grid_cells, rows }
}

/// Render the sweep as a paper-style fixed-width table.
pub fn render_table(sweep: &BudgetSweep) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(96 * (sweep.rows.len() + 2));
    let _ = writeln!(
        out,
        "Budget sweep: governed cloverleaf + visualization pair ({}^3 grid)",
        sweep.grid_cells
    );
    out.push_str(
        "budget_W  policy          time_s   energy_J   avg_W  max_win_W  sim_s   viz_s  caps\n",
    );
    let mut last_budget = Watts(-1.0);
    for row in &sweep.rows {
        if (row.budget_watts - last_budget).abs() > Watts(1e-9) && last_budget >= Watts::ZERO {
            out.push('\n');
        }
        last_budget = row.budget_watts;
        let _ = writeln!(
            out,
            "{:>8.0}  {:<14} {:>7.2} {:>10.0} {:>7.1} {:>10.1} {:>6.2} {:>7.2} {:>5}",
            row.budget_watts,
            row.policy,
            row.seconds,
            row.energy_joules,
            row.avg_power_watts,
            row.max_window_power_watts,
            row.sim_seconds,
            row.viz_seconds,
            row.cap_changes,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> CpuSpec {
        CpuSpec::broadwell_e5_2695v4()
    }

    #[test]
    fn budgets_cover_floor_to_tdp() {
        let b = budgets();
        assert_eq!(b.len(), 9);
        assert_eq!(b[0], Watts(80.0));
        assert_eq!(b[8], Watts(240.0));
    }

    #[test]
    fn sweep_of_synthetic_pair_orders_policies_sanely() {
        let pair = WorkloadPair::synthetic_for_tests();
        let budgets = [Watts(120.0), Watts(160.0)];
        let mut j = Journal::off();
        let rows = sweep_pair(&pair, &budgets, &spec(), &mut j);
        assert_eq!(rows.len(), 8);
        for &budget in &budgets {
            // A missing row yields NaN, which fails every assert below.
            let get = |p: &str| {
                rows.iter()
                    .find(|r| r.budget_watts == budget && r.policy == p)
                    .map(|r| r.seconds)
                    .unwrap_or(f64::NAN)
            };
            let uniform = get("uniform");
            let reactive = get("reactive");
            let oracle = get("oracle");
            assert!(
                reactive < uniform,
                "at {budget}: reactive {reactive} !< uniform {uniform}"
            );
            assert!(
                oracle <= uniform * (1.0 + 1e-9),
                "at {budget}: oracle {oracle} !<= uniform {uniform}"
            );
        }
    }

    #[test]
    fn table_renders_one_line_per_row() {
        let pair = WorkloadPair::synthetic_for_tests();
        let mut j = Journal::off();
        let rows = sweep_pair(&pair, &[Watts(160.0)], &spec(), &mut j);
        let sweep = BudgetSweep {
            grid_cells: 32,
            rows,
        };
        let table = render_table(&sweep);
        assert!(table.contains("reactive"));
        assert!(table.contains("oracle"));
        assert!(table.lines().filter(|l| l.contains("160")).count() >= 4);
    }
}
