//! # governor — the closed-loop online power governor
//!
//! The paper's motivating use case (§VII) asks for "a runtime system
//! that assigns power between a simulation and visualization application
//! running concurrently under a power budget". `vizpower::advisor` does
//! this *offline*, from pre-characterized workloads; this crate closes
//! the loop *online*: it runs the pair on two simulated RAPL-capped
//! packages, observes each 100 ms counter sample (IPC, LLC miss ratio,
//! power from the energy MSR), classifies the current phase with the
//! thresholds of [`vizpower::classify`], and reassigns the per-package
//! caps between windows — never letting the caps of active packages
//! exceed the node budget.
//!
//! * [`policy`] — the [`Policy`] trait and its implementations:
//!   [`Uniform`] (naïve half/half), [`StaticAdvisor`] (the offline plan,
//!   applied once), [`Reactive`] (a hysteresis hill-climb stealing
//!   headroom from power-opportunity phases), and [`FixedSplit`] (the
//!   oracle building block).
//! * [`pair`] — builds the governed workload pair by instrumenting a
//!   tightly-coupled CloverLeaf + visualization run.
//! * [`control`] — the control loop itself: [`govern`] steps two
//!   resumable executions window by window, journaling every
//!   `PolicyDecision` and `CapChange`.
//! * [`study`] — the `reproduce governor --budget-sweep` study: every
//!   policy at node budgets from 80 W to 240 W, plus an oracle found by
//!   exhaustive fixed-split search.
//!
//! Everything downstream of a characterized pair is deterministic:
//! identical inputs produce byte-identical journals regardless of thread
//! count or wall-clock (see `docs/GOVERNOR.md`).

pub mod control;
pub mod pair;
pub mod policy;
pub mod study;

pub use control::{clamp_budget, govern, sanitize, GovernorResult};
pub use pair::{coupled_pair, WorkloadPair, TARGET_SIM_SECONDS, TARGET_VIZ_SECONDS};
pub use policy::{
    CapSplit, FixedSplit, Observation, Policy, Reactive, SideObs, StaticAdvisor, Uniform,
};
pub use study::{budget_sweep, budgets, render_table, sweep_pair, BudgetSweep, PolicyRow};
