//! The closed control loop: run a simulation/visualization pair on two
//! packages, observe each 100 ms window, and let a [`Policy`] reassign
//! the per-package RAPL caps under the node budget.
//!
//! Each iteration advances both sides by one sample period of virtual
//! time through [`powersim::RunState::advance`], differences their
//! energy counters to get per-package window power, builds an
//! [`Observation`] from the newest 100 ms counter samples, asks the
//! policy for the next split, sanitizes it against the hard invariants
//! (hardware cap range, active caps summing to at most the budget), and
//! reprograms only the caps that changed. Every decision is journaled as
//! a [`PolicyDecision`] event and every reprogramming as a `CapChange`,
//! so the budget contract is auditable from the journal alone.
//!
//! Determinism: the loop consumes only modeled quantities (virtual time,
//! counter deltas) and the journal clock advances once per window by the
//! window's modeled duration, so identical inputs produce byte-identical
//! journals regardless of wall-clock or thread count.

use crate::pair::WorkloadPair;
use crate::policy::{CapSplit, Observation, Policy, SideObs};
use powersim::exec::SAMPLE_PERIOD_SEC;
use powersim::trace::{Event, Journal, PolicyDecision, Scope};
use powersim::{CpuSpec, ExecResult, Joules, Package, RunState, Watts};

/// Outcome of one governed pair execution.
#[derive(Debug, Clone)]
pub struct GovernorResult {
    /// Name of the policy that governed the run.
    pub policy: String,
    /// The (feasibility-clamped) node budget that was enforced.
    pub budget_watts: Watts,
    /// Pair completion time: the slower side's execution time.
    pub seconds: f64,
    /// Total node energy (both packages).
    pub energy_joules: Joules,
    /// The simulation side's execution result.
    pub sim: ExecResult,
    /// The visualization side's execution result.
    pub viz: ExecResult,
    /// Number of control decisions taken (one per 100 ms window).
    pub decisions: u64,
    /// Number of RAPL reprogrammings (including the two initial ones).
    pub cap_changes: u64,
    /// Highest node power observed over any 100 ms window.
    pub max_window_power_watts: Watts,
    /// The split in force when the run ended (0 W marks a retired side).
    pub final_split: CapSplit,
}

/// Clamp a requested budget to the feasible node range: both packages
/// must hold at least `min_cap` and can use at most TDP each.
pub fn clamp_budget(budget_watts: Watts, spec: &CpuSpec) -> Watts {
    budget_watts.clamp(2.0 * spec.min_cap_watts, 2.0 * spec.tdp_watts)
}

/// Force a policy's request into the feasible region. Active sides are
/// clamped to the hardware cap range (and, for a lone survivor, to the
/// budget); retired sides are pinned to 0 W. If both sides are active
/// and the clamped caps still exceed the budget, the request is replaced
/// by the uniform split — a deterministic fallback that keeps a buggy
/// policy from ever breaking the budget contract.
///
/// Public because the study service (`crates/service`) reuses this as
/// its admission-control primitive: a requested per-job cap is a
/// lone-survivor split (`sim` = request, `viz` = 0 W, viz inactive)
/// sanitized against the node's share of the fleet budget. One caveat
/// the service must handle itself: a lone survivor under a budget below
/// `min_cap` gets the *budget* back (below the hardware floor) — the
/// package clamp would silently raise it at programming time, so
/// budgets below `min_cap` are not admissible.
pub fn sanitize(
    raw: CapSplit,
    sim_active: bool,
    viz_active: bool,
    budget: Watts,
    spec: &CpuSpec,
) -> CapSplit {
    let lo = spec.min_cap_watts;
    let hi = spec.tdp_watts;
    let mut split = CapSplit {
        sim: if sim_active {
            raw.sim.clamp(lo, hi)
        } else {
            Watts::ZERO
        },
        viz: if viz_active {
            raw.viz.clamp(lo, hi)
        } else {
            Watts::ZERO
        },
    };
    match (sim_active, viz_active) {
        (true, true) => {
            if split.total() > budget + Watts(1e-9) {
                split = CapSplit::uniform(budget, spec);
            }
        }
        (true, false) => split.sim = split.sim.min(budget.min(hi)),
        (false, true) => split.viz = split.viz.min(budget.min(hi)),
        (false, false) => {}
    }
    split
}

/// Journal one control decision (no-op when the journal is off).
fn push_decision(
    journal: &mut Journal,
    obs: &Observation,
    next: CapSplit,
    sim_power: Watts,
    viz_power: Watts,
) {
    if !journal.is_enabled() {
        return;
    }
    journal.push(Event::PolicyDecision(PolicyDecision {
        t: journal.now(),
        budget_watts: obs.budget,
        sim_cap_watts: next.sim,
        viz_cap_watts: next.viz,
        sim_power_watts: sim_power,
        viz_power_watts: viz_power,
        sim_ipc: obs.sim.ipc,
        viz_ipc: obs.viz.ipc,
        sim_llc_miss_rate: obs.sim.llc_miss_rate,
        viz_llc_miss_rate: obs.viz.llc_miss_rate,
    }));
}

/// Per-side window bookkeeping: energy snapshot for power differencing.
struct SideTrack {
    prev_energy: Joules,
}

impl SideTrack {
    fn new() -> SideTrack {
        SideTrack {
            prev_energy: Joules::ZERO,
        }
    }

    /// Mean power over this window from the energy delta, and advance
    /// the snapshot. Zero when the side did not run this window.
    fn window_power(&mut self, energy_now: Joules, side_dt: f64) -> (Joules, Watts) {
        let de = energy_now - self.prev_energy;
        self.prev_energy = energy_now;
        if side_dt > 0.0 {
            (de, de.over_seconds(side_dt))
        } else {
            (de, Watts::ZERO)
        }
    }
}

/// Build one side's observation from its run state and window power.
fn observe_side(state: &RunState, cap: Watts, power: Watts) -> SideObs {
    let (ipc, miss) = state
        .latest_sample()
        .map(|s| (s.ipc, s.llc_miss_rate))
        .unwrap_or((0.0, 0.0));
    SideObs {
        active: !state.is_done(),
        cap,
        power,
        ipc,
        llc_miss_rate: miss,
    }
}

/// Execute `pair` concurrently on two fresh packages under `policy` and
/// the node `budget_watts` (clamped to the feasible range), journaling
/// every decision, cap change, and a closing [`Scope::Governor`] span.
pub fn govern(
    pair: &WorkloadPair,
    policy: &mut dyn Policy,
    budget_watts: Watts,
    spec: &CpuSpec,
    journal: &mut Journal,
) -> GovernorResult {
    let budget = clamp_budget(budget_watts, spec);
    let t0 = journal.now();

    let mut sim_pkg = Package::new(spec.clone());
    let mut viz_pkg = Package::new(spec.clone());

    let initial = sanitize(policy.initial(pair, budget, spec), true, true, budget, spec);
    sim_pkg.set_cap_journaled(initial.sim, journal);
    viz_pkg.set_cap_journaled(initial.viz, journal);
    let mut cap_changes = 2u64;
    let mut split = initial;

    // Each side journals into its own disabled journal: per-package
    // spans/counters would interleave two clocks, and the shared journal
    // clock must advance exactly once per window (below).
    let mut sim_off = Journal::off();
    let mut viz_off = Journal::off();
    let mut sim_state = RunState::new(&sim_pkg, &pair.sim, &sim_off);
    let mut viz_state = RunState::new(&viz_pkg, &pair.viz, &viz_off);
    let mut sim_track = SideTrack::new();
    let mut viz_track = SideTrack::new();

    let mut decisions = 0u64;
    let mut max_window_power = Watts::ZERO;

    while !(sim_state.is_done() && viz_state.is_done()) {
        let sim_dt = if sim_state.is_done() {
            0.0
        } else {
            sim_state.advance(&mut sim_pkg, SAMPLE_PERIOD_SEC, &mut sim_off)
        };
        let viz_dt = if viz_state.is_done() {
            0.0
        } else {
            viz_state.advance(&mut viz_pkg, SAMPLE_PERIOD_SEC, &mut viz_off)
        };
        let dt = sim_dt.max(viz_dt);
        if dt <= 0.0 {
            // Both sides completed without consuming time (e.g. an empty
            // workload): nothing to observe.
            continue;
        }
        journal.advance(dt);

        let (de_sim, sim_power) = sim_track.window_power(sim_state.energy_so_far(), sim_dt);
        let (de_viz, viz_power) = viz_track.window_power(viz_state.energy_so_far(), viz_dt);
        max_window_power = max_window_power.max((de_sim + de_viz).over_seconds(dt));

        if sim_state.is_done() && viz_state.is_done() {
            // This window finished the pair: there is no next window to
            // cap, so deciding would only zero the recorded final split.
            break;
        }

        let obs = Observation {
            t: journal.now(),
            budget,
            sim: observe_side(&sim_state, split.sim, sim_power),
            viz: observe_side(&viz_state, split.viz, viz_power),
        };
        let next = sanitize(
            policy.decide(&obs, spec),
            obs.sim.active,
            obs.viz.active,
            budget,
            spec,
        );
        decisions += 1;
        push_decision(journal, &obs, next, sim_power, viz_power);
        if obs.sim.active && next.sim != split.sim {
            sim_pkg.set_cap_journaled(next.sim, journal);
            cap_changes += 1;
        }
        if obs.viz.active && next.viz != split.viz {
            viz_pkg.set_cap_journaled(next.viz, journal);
            cap_changes += 1;
        }
        split = next;
    }

    let sim = sim_state.finish(&sim_pkg);
    let viz = viz_state.finish(&viz_pkg);
    let energy = sim.energy_joules + viz.energy_joules;
    let seconds = sim.seconds.max(viz.seconds);
    if journal.is_enabled() {
        journal.push_span(
            Scope::Governor,
            format!("governor:{}:{:.0}W", policy.name(), budget.value()),
            t0,
            Some(energy),
            vec![
                ("budget_watts", budget.value()),
                ("decisions", decisions as f64),
                ("cap_changes", cap_changes as f64),
            ],
        );
    }
    GovernorResult {
        policy: policy.name().to_string(),
        budget_watts: budget,
        seconds,
        energy_joules: energy,
        sim,
        viz,
        decisions,
        cap_changes,
        max_window_power_watts: max_window_power,
        final_split: split,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{Reactive, Uniform};
    use powersim::trace::Event;

    fn spec() -> CpuSpec {
        CpuSpec::broadwell_e5_2695v4()
    }

    fn pair() -> WorkloadPair {
        WorkloadPair::synthetic_for_tests()
    }

    #[test]
    fn governed_run_completes_both_sides() {
        let mut j = Journal::off();
        let r = govern(&pair(), &mut Uniform::new(), Watts(160.0), &spec(), &mut j);
        assert!(r.sim.seconds > 0.0 && r.viz.seconds > 0.0);
        assert_eq!(r.seconds, r.sim.seconds.max(r.viz.seconds));
        assert!(r.decisions > 10, "decisions = {}", r.decisions);
        assert!(r.energy_joules > Joules(0.0));
    }

    #[test]
    fn budget_is_clamped_to_feasible_range() {
        let mut j = Journal::off();
        let r = govern(&pair(), &mut Uniform::new(), Watts(10.0), &spec(), &mut j);
        assert_eq!(r.budget_watts, Watts(80.0));
        let r = govern(&pair(), &mut Uniform::new(), Watts(999.0), &spec(), &mut j);
        assert_eq!(r.budget_watts, Watts(240.0));
    }

    #[test]
    fn reactive_beats_uniform_on_the_synthetic_pair() {
        let mut j = Journal::off();
        let budget = Watts(120.0);
        let uni = govern(&pair(), &mut Uniform::new(), budget, &spec(), &mut j);
        let rea = govern(&pair(), &mut Reactive::new(), budget, &spec(), &mut j);
        assert!(
            rea.seconds < uni.seconds,
            "reactive {} !< uniform {}",
            rea.seconds,
            uni.seconds
        );
    }

    #[test]
    fn every_decision_respects_the_budget_and_cap_range() {
        let spec = spec();
        let lo = spec.min_cap_watts;
        let hi = spec.tdp_watts;
        let budget = Watts(100.0);
        let mut j = Journal::with_capacity(1 << 14);
        let r = govern(&pair(), &mut Reactive::new(), budget, &spec, &mut j);
        assert!(r.max_window_power_watts <= budget + Watts(0.5));
        let mut seen = 0;
        for e in j.events() {
            if let Event::PolicyDecision(d) = e {
                seen += 1;
                assert!(d.sim_power_watts + d.viz_power_watts <= budget + Watts(0.5));
                let mut active_total = Watts::ZERO;
                for cap in [d.sim_cap_watts, d.viz_cap_watts] {
                    if cap > Watts(1e-9) {
                        assert!(cap >= lo - Watts(1e-9) && cap <= hi + Watts(1e-9));
                        active_total += cap;
                    }
                }
                assert!(active_total <= budget + Watts(1e-9));
            }
        }
        assert_eq!(seen as u64, r.decisions);
    }

    #[test]
    fn governed_journal_is_byte_identical_across_runs() {
        let run = || {
            let mut j = Journal::with_capacity(1 << 14);
            govern(&pair(), &mut Reactive::new(), Watts(140.0), &spec(), &mut j);
            j.to_jsonl()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn sanitize_zero_headroom_budget_forces_the_floor_split() {
        // The tightest feasible budget is exactly two hardware floors
        // (clamp_budget's lower bound). Any both-active request that
        // overshoots must collapse to the uniform split at the floor —
        // zero headroom means zero discretion.
        let spec = spec();
        let budget = 2.0 * spec.min_cap_watts;
        assert_eq!(clamp_budget(Watts(0.0), &spec), budget);
        let greedy = CapSplit {
            sim: spec.tdp_watts,
            viz: spec.tdp_watts,
        };
        let split = sanitize(greedy, true, true, budget, &spec);
        assert_eq!(split.sim, spec.min_cap_watts);
        assert_eq!(split.viz, spec.min_cap_watts);
        assert_eq!(split.total(), budget);
    }

    #[test]
    fn sanitize_single_package_caps_at_budget_and_tdp() {
        // A lone survivor (the service's single-package admission path):
        // the cap is min(clamp(request), budget, TDP).
        let spec = spec();
        let lone = |req: f64, budget: f64| {
            sanitize(
                CapSplit {
                    sim: Watts(req),
                    viz: Watts::ZERO,
                },
                true,
                false,
                Watts(budget),
                &spec,
            )
        };
        // Over-TDP request under a generous budget clamps to TDP.
        let s = lone(200.0, 150.0);
        assert_eq!(s.sim, spec.tdp_watts);
        assert_eq!(s.viz, Watts::ZERO, "inactive side stays pinned to 0 W");
        // A tight budget wins over the hardware range.
        assert_eq!(lone(200.0, 100.0).sim, Watts(100.0));
        // An in-range request under an ample budget passes through.
        assert_eq!(lone(75.0, 100.0).sim, Watts(75.0));
        // Below-floor requests rise to the floor first.
        assert_eq!(lone(10.0, 100.0).sim, spec.min_cap_watts);
        // The viz-survivor arm mirrors the sim one.
        let s = sanitize(
            CapSplit {
                sim: Watts::ZERO,
                viz: Watts(200.0),
            },
            false,
            true,
            Watts(90.0),
            &spec,
        );
        assert_eq!(s.viz, Watts(90.0));
        assert_eq!(s.sim, Watts::ZERO);
    }

    #[test]
    fn sanitize_lone_survivor_below_floor_budget_returns_the_budget() {
        // Documented caveat: a budget below min_cap comes back as-is
        // for a lone survivor — below the hardware floor. The RAPL
        // layer would round it UP to the floor when programmed,
        // breaking the budget, which is why the service refuses to
        // admit onto nodes whose budget share is below min_cap.
        let spec = spec();
        let s = sanitize(
            CapSplit {
                sim: Watts(80.0),
                viz: Watts::ZERO,
            },
            true,
            false,
            Watts(25.0),
            &spec,
        );
        assert_eq!(s.sim, Watts(25.0));
        assert!(s.sim < spec.min_cap_watts);
    }

    #[test]
    fn sanitize_both_retired_is_all_zero() {
        let spec = spec();
        let s = sanitize(
            CapSplit {
                sim: Watts(120.0),
                viz: Watts(120.0),
            },
            false,
            false,
            Watts(160.0),
            &spec,
        );
        assert_eq!(s.sim, Watts::ZERO);
        assert_eq!(s.viz, Watts::ZERO);
    }

    #[test]
    fn retirement_hands_the_survivor_the_budget() {
        let mut j = Journal::with_capacity(1 << 14);
        let r = govern(&pair(), &mut Reactive::new(), Watts(160.0), &spec(), &mut j);
        // The viz side retires first; afterwards the sim cap is the
        // budget bounded by TDP.
        assert!(r.viz.seconds < r.sim.seconds);
        assert_eq!(r.final_split.sim, Watts(120.0));
        assert_eq!(r.final_split.viz, Watts::ZERO);
    }
}
