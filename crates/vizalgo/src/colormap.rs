//! Scalar → color transfer functions shared by the renderers.

/// A piecewise-linear color map over `[0, 1]` with per-stop opacity.
#[derive(Debug, Clone)]
pub struct ColorMap {
    /// `(position, rgba)` stops sorted by position.
    stops: Vec<(f64, [f32; 4])>,
}

impl ColorMap {
    /// Build from stops; they are sorted by position.
    ///
    /// # Panics
    /// If fewer than 2 stops are given or positions are outside `[0, 1]`.
    pub fn new(mut stops: Vec<(f64, [f32; 4])>) -> Self {
        assert!(stops.len() >= 2, "a color map needs at least two stops");
        assert!(
            stops.iter().all(|&(p, _)| (0.0..=1.0).contains(&p)),
            "stop positions must be in [0, 1]"
        );
        stops.sort_by(|a, b| a.0.total_cmp(&b.0));
        ColorMap { stops }
    }

    /// The "cool to warm" diverging map (blue → white → red) used for the
    /// paper-style energy renderings, fully opaque.
    pub fn cool_to_warm() -> Self {
        ColorMap::new(vec![
            (0.0, [0.23, 0.30, 0.75, 1.0]),
            (0.5, [0.87, 0.87, 0.87, 1.0]),
            (1.0, [0.71, 0.02, 0.15, 1.0]),
        ])
    }

    /// A volume-rendering transfer function: low values transparent blue,
    /// high values opaque orange/red.
    pub fn volume_default() -> Self {
        ColorMap::new(vec![
            (0.0, [0.1, 0.1, 0.8, 0.0]),
            (0.35, [0.2, 0.6, 0.9, 0.02]),
            (0.6, [0.9, 0.8, 0.2, 0.25]),
            (0.85, [0.95, 0.4, 0.1, 0.6]),
            (1.0, [0.8, 0.05, 0.05, 0.9]),
        ])
    }

    /// Sample the map at normalized scalar `t` (clamped to `[0, 1]`).
    pub fn sample(&self, t: f64) -> [f32; 4] {
        let t = t.clamp(0.0, 1.0);
        // lint: infallible because every constructor produces at least one stop
        let first = self.stops.first().unwrap();
        if t <= first.0 {
            return first.1;
        }
        for w in self.stops.windows(2) {
            let (p0, c0) = w[0];
            let (p1, c1) = w[1];
            if t == p1 {
                return c1;
            }
            if t < p1 {
                let f = if p1 > p0 {
                    ((t - p0) / (p1 - p0)) as f32
                } else {
                    1.0
                };
                return [
                    c0[0] + (c1[0] - c0[0]) * f,
                    c0[1] + (c1[1] - c0[1]) * f,
                    c0[2] + (c1[2] - c0[2]) * f,
                    c0[3] + (c1[3] - c0[3]) * f,
                ];
            }
        }
        // lint: infallible because every constructor produces at least one stop
        self.stops.last().unwrap().1
    }

    /// Normalize `v` into `[0, 1]` over `(lo, hi)` and sample. Degenerate
    /// ranges map to the middle of the map.
    pub fn sample_range(&self, v: f64, lo: f64, hi: f64) -> [f32; 4] {
        let t = if hi > lo { (v - lo) / (hi - lo) } else { 0.5 };
        self.sample(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints_are_exact() {
        let m = ColorMap::cool_to_warm();
        assert_eq!(m.sample(0.0), [0.23, 0.30, 0.75, 1.0]);
        assert_eq!(m.sample(1.0), [0.71, 0.02, 0.15, 1.0]);
    }

    #[test]
    fn midpoint_interpolates() {
        let m = ColorMap::new(vec![(0.0, [0.0; 4]), (1.0, [1.0; 4])]);
        let mid = m.sample(0.5);
        for c in mid {
            assert!((c - 0.5).abs() < 1e-6);
        }
    }

    #[test]
    fn out_of_range_clamps() {
        let m = ColorMap::cool_to_warm();
        assert_eq!(m.sample(-3.0), m.sample(0.0));
        assert_eq!(m.sample(7.0), m.sample(1.0));
    }

    #[test]
    fn sample_range_normalizes() {
        let m = ColorMap::new(vec![(0.0, [0.0; 4]), (1.0, [1.0; 4])]);
        assert_eq!(m.sample_range(5.0, 0.0, 10.0), m.sample(0.5));
        // Degenerate range → middle.
        assert_eq!(m.sample_range(5.0, 5.0, 5.0), m.sample(0.5));
    }

    #[test]
    fn unsorted_stops_are_sorted() {
        let m = ColorMap::new(vec![(1.0, [1.0; 4]), (0.0, [0.0; 4])]);
        assert_eq!(m.sample(0.0), [0.0; 4]);
    }

    #[test]
    #[should_panic]
    fn single_stop_panics() {
        let _ = ColorMap::new(vec![(0.5, [0.0; 4])]);
    }

    /// Piecewise linearity is checked analytically: inside every segment
    /// the sample must be the exact affine blend of the two surrounding
    /// stops, for an irregularly spaced map.
    #[test]
    fn segments_interpolate_affinely() {
        let stops = vec![
            (0.0, [0.1, 0.9, 0.3, 1.0]),
            (0.2, [0.5, 0.1, 0.7, 0.4]),
            (0.9, [0.0, 0.6, 0.2, 0.8]),
            (1.0, [1.0, 0.0, 0.0, 0.0]),
        ];
        let m = ColorMap::new(stops.clone());
        for w in stops.windows(2) {
            let (p0, c0) = w[0];
            let (p1, c1) = w[1];
            for i in 0..=10 {
                let f = i as f64 / 10.0;
                let t = p0 + (p1 - p0) * f;
                let got = m.sample(t);
                for ch in 0..4 {
                    let want = c0[ch] + (c1[ch] - c0[ch]) * f as f32;
                    assert!(
                        (got[ch] - want).abs() < 1e-6,
                        "t={t}: channel {ch} {} vs {want}",
                        got[ch]
                    );
                }
            }
        }
    }

    #[test]
    fn monotone_opacity_in_volume_map() {
        let m = ColorMap::volume_default();
        let mut last = -1.0f32;
        for i in 0..=20 {
            let a = m.sample(i as f64 / 20.0)[3];
            assert!(a >= last - 1e-6, "opacity must be non-decreasing");
            last = a;
        }
    }
}
