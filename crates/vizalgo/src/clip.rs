//! Spherical clip (§III-B3): cull geometry inside a sphere.
//!
//! Cells completely inside the sphere are omitted, cells completely
//! outside are passed through whole, and straddling cells are subdivided
//! (tetrahedralized and clipped) keeping only the outside part.

use crate::arena::TetScratch;
use crate::filter::{Filter, FilterOutput, KernelClass, KernelReport};
use crate::tetclip::{clip_keep_above_into, TetMesh, HEX_TO_TETS};
use rayon::prelude::*;
use vizmesh::{Association, CellSet, CellShape, DataSet, Field, Vec3, WorkCounters};

/// Per-cell classification against the sphere.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CellSide {
    Inside,
    Outside,
    Straddle,
}

/// The spherical clip filter.
#[derive(Debug, Clone)]
pub struct SphericalClip {
    pub center: Vec3,
    pub radius: f64,
    /// Point field carried through to the output (interpolated on cut
    /// edges); defaults to `energy`.
    pub carry_field: String,
}

impl SphericalClip {
    pub fn new(center: Vec3, radius: f64) -> Self {
        assert!(radius > 0.0, "clip radius must be positive");
        SphericalClip {
            center,
            radius,
            carry_field: "energy".into(),
        }
    }

    /// The paper-style configuration: a sphere centered in the dataset
    /// covering roughly a third of its diagonal.
    pub fn framing(input: &DataSet) -> Self {
        let b = input.bounds();
        SphericalClip::new(b.center(), b.diagonal() * 0.3)
    }

    /// Signed distance: negative inside the sphere.
    #[inline]
    fn distance(&self, p: Vec3) -> f64 {
        p.distance(self.center) - self.radius
    }
}

impl Filter for SphericalClip {
    fn name(&self) -> &'static str {
        "Spherical Clip"
    }

    fn execute(&self, input: &DataSet) -> FilterOutput {
        let grid = input
            .as_uniform()
            // lint: infallible because the study harness only feeds uniform grids
            .expect("spherical clip expects a structured dataset");
        let carry = input.point_scalars(&self.carry_field);
        let num_cells = grid.num_cells();

        // Phase 1 (SignedDistance): per-point distances, then per-cell
        // classification from the 8 corner signs.
        let num_points = grid.num_points();
        let dist: Vec<f64> = (0..num_points)
            .into_par_iter()
            .map(|p| self.distance(grid.point_coord_id(p)))
            .collect();
        let mut classify = WorkCounters::new();
        classify.tally(num_points as u64, 22, 12, 24, 8);
        let sides: Vec<CellSide> = (0..num_cells)
            .into_par_iter()
            .map(|c| {
                let ids = grid.cell_point_ids(c);
                let inside = ids.iter().filter(|&&p| dist[p] < 0.0).count();
                match inside {
                    0 => CellSide::Outside,
                    8 => CellSide::Inside,
                    _ => CellSide::Straddle,
                }
            })
            .collect();
        classify.tally(num_cells as u64, 26, 0, 64 + 32, 1);
        classify.working_set_bytes = (num_points * 8) as u64;

        // Phase 2 (GatherScatter): pass whole outside cells through;
        // Phase 3 (TetClip): subdivide straddling cells.
        let (mut num_out, mut num_straddle) = (0usize, 0usize);
        for s in &sides {
            match s {
                CellSide::Outside => num_out += 1,
                CellSide::Straddle => num_straddle += 1,
                CellSide::Inside => {}
            }
        }
        let active = num_out + num_straddle;
        let mut gather = WorkCounters::new();
        let mut tet_work = WorkCounters::new();
        // Pre-size for the measured shape of straddle output (≈ 9 kept
        // tets per straddling hex); everything still grows on demand.
        let mut mesh = TetMesh::with_point_capacity(active.saturating_mul(2).min(num_points));
        let mut scratch = TetScratch::new();
        let mut point_map: Vec<u32> = vec![u32::MAX; num_points];
        let mut cells = CellSet::with_capacity(
            num_out + 9 * num_straddle,
            8 * num_out + 4 * 9 * num_straddle,
        );
        let mut map_point = |mesh: &mut TetMesh, pid: usize, w: &mut WorkCounters| -> u32 {
            if point_map[pid] == u32::MAX {
                let payload = carry.map(|v| v[pid]).unwrap_or(dist[pid]);
                point_map[pid] = mesh.add_point_with(grid.point_coord_id(pid), dist[pid], payload);
                w.tally(1, 12, 3, 32, 40);
            }
            point_map[pid]
        };
        for c in 0..num_cells {
            match sides[c] {
                CellSide::Inside => {}
                CellSide::Outside => {
                    let ids = grid.cell_point_ids(c);
                    let mut conn = [0u32; 8];
                    for (slot, &pid) in ids.iter().enumerate() {
                        conn[slot] = map_point(&mut mesh, pid, &mut gather);
                    }
                    cells.push(CellShape::Hexahedron, &conn);
                    gather.tally(1, 30, 0, 32, 40);
                }
                CellSide::Straddle => {
                    let ids = grid.cell_point_ids(c);
                    let mut corner = [0u32; 8];
                    for (slot, &pid) in ids.iter().enumerate() {
                        corner[slot] = map_point(&mut mesh, pid, &mut tet_work);
                    }
                    scratch.tets.clear();
                    for t in HEX_TO_TETS {
                        scratch
                            .tets
                            .push([corner[t[0]], corner[t[1]], corner[t[2]], corner[t[3]]]);
                    }
                    tet_work +=
                        clip_keep_above_into(&mut mesh, &scratch.tets, 0.0, &mut scratch.mid);
                    for &t in &scratch.mid {
                        cells.push(CellShape::Tetra, &t);
                    }
                }
            }
        }

        let payloads = mesh.payloads.clone();
        let distances = mesh.values.clone();
        let mut ds = DataSet::explicit(mesh.points, cells);
        let n = ds.num_points();
        if carry.is_some() {
            ds.add_field(Field::scalar(
                self.carry_field.clone(),
                Association::Points,
                payloads[..n].to_vec(),
            ));
        }
        ds.add_field(Field::scalar(
            "distance",
            Association::Points,
            distances[..n].to_vec(),
        ));
        ds.compact_points();
        FilterOutput::data(
            ds,
            vec![
                KernelReport::new("clip-distance", KernelClass::SignedDistance, classify),
                KernelReport::new("clip-gather", KernelClass::GatherScatter, gather),
                KernelReport::new("clip-subdivide", KernelClass::TetClip, tet_work),
            ],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vizmesh::UniformGrid;

    fn unit_dataset(n: usize) -> DataSet {
        let grid = UniformGrid::cube_cells(n);
        let np = grid.num_points();
        DataSet::uniform(grid).with_field(Field::scalar(
            "energy",
            Association::Points,
            vec![1.0; np],
        ))
    }

    /// Volume of the output mesh (hexes + tets).
    fn output_volume(ds: &DataSet) -> f64 {
        let (points, cells) = ds.as_explicit().unwrap();
        let mut vol = 0.0;
        for (shape, conn) in cells.iter() {
            match shape {
                CellShape::Tetra => {
                    let (a, b, c, d) = (
                        points[conn[0] as usize],
                        points[conn[1] as usize],
                        points[conn[2] as usize],
                        points[conn[3] as usize],
                    );
                    vol += ((b - a).cross(c - a).dot(d - a) / 6.0).abs();
                }
                CellShape::Hexahedron => {
                    // Uniform-grid hexes: volume from the main diagonal.
                    let a = points[conn[0] as usize];
                    let g = points[conn[6] as usize];
                    let e = g - a;
                    vol += (e.x * e.y * e.z).abs();
                }
                other => panic!("unexpected output shape {other:?}"),
            }
        }
        vol
    }

    #[test]
    fn clip_removes_sphere_volume() {
        let ds = unit_dataset(12);
        let clip = SphericalClip::new(Vec3::splat(0.5), 0.3);
        let out = clip.execute(&ds);
        let result = out.dataset.unwrap();
        let vol = output_volume(&result);
        let sphere = 4.0 / 3.0 * std::f64::consts::PI * 0.3f64.powi(3);
        let expect = 1.0 - sphere;
        assert!(
            (vol - expect).abs() < 0.01,
            "clipped volume {vol} vs expected {expect}"
        );
    }

    #[test]
    fn sphere_outside_domain_keeps_everything() {
        let ds = unit_dataset(4);
        let clip = SphericalClip::new(Vec3::splat(50.0), 1.0);
        let out = clip.execute(&ds);
        let result = out.dataset.unwrap();
        assert_eq!(result.num_cells(), 64);
        let vol = output_volume(&result);
        assert!((vol - 1.0).abs() < 1e-9);
    }

    #[test]
    fn huge_sphere_removes_everything() {
        let ds = unit_dataset(4);
        let clip = SphericalClip::new(Vec3::splat(0.5), 10.0);
        let out = clip.execute(&ds);
        assert_eq!(out.dataset.unwrap().num_cells(), 0);
    }

    #[test]
    fn output_points_are_outside_or_on_sphere() {
        let ds = unit_dataset(8);
        let clip = SphericalClip::new(Vec3::splat(0.5), 0.35);
        let out = clip.execute(&ds);
        let result = out.dataset.unwrap();
        let (points, _) = result.as_explicit().unwrap();
        for p in points {
            let d = p.distance(Vec3::splat(0.5));
            assert!(
                d >= 0.35 - 0.02,
                "point {p:?} is inside the sphere (d = {d})"
            );
        }
    }

    #[test]
    fn carried_field_is_interpolated() {
        let grid = UniformGrid::cube_cells(6);
        let np = grid.num_points();
        // Energy = x coordinate: interpolated values must stay in [0, 1].
        let vals: Vec<f64> = (0..np).map(|p| grid.point_coord_id(p).x).collect();
        let ds =
            DataSet::uniform(grid).with_field(Field::scalar("energy", Association::Points, vals));
        let clip = SphericalClip::new(Vec3::splat(0.5), 0.3);
        let out = clip.execute(&ds);
        let result = out.dataset.unwrap();
        let e = result.point_scalars("energy").unwrap();
        assert!(!e.is_empty());
        assert!(e.iter().all(|&v| (-1e-9..=1.0 + 1e-9).contains(&v)));
    }

    #[test]
    fn kernel_reports_in_order() {
        let ds = unit_dataset(6);
        let out = SphericalClip::framing(&ds).execute(&ds);
        let classes: Vec<_> = out.kernels.iter().map(|k| k.class).collect();
        assert_eq!(
            classes,
            vec![
                KernelClass::SignedDistance,
                KernelClass::GatherScatter,
                KernelClass::TetClip
            ]
        );
        // Distance evaluation touched every point at least once.
        assert!(out.kernels[0].work.items >= ds.num_points() as u64);
    }
}
