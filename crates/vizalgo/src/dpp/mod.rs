//! The data-parallel-primitives (DPP) execution backend.
//!
//! Bethel et al. (arXiv:2010.02361) show that re-expressing
//! visualization kernels over a small primitive vocabulary changes both
//! their runtime and their hardware-counter profile. This module is that
//! second backend for this reproduction: the vocabulary
//! ([`primitives`]), a shared DPP marching-cubes pipeline ([`mc`]), and
//! DPP formulations of four kernels — contour, threshold, isovolume,
//! and slice — selectable per-spec via [`Backend`] through
//! [`AlgorithmSpec::build_with`](crate::AlgorithmSpec::build_with).
//!
//! Conformance posture (details and the exactness table in docs/DPP.md):
//! contour, isovolume, and slice are **bit-identical** to the
//! traditional filters; threshold keeps the identical cell set and cell
//! payloads but numbers its welded points in grid order instead of
//! first-use order, so order-sensitive float checksums over its points
//! carry a documented tolerance.

pub mod mc;
pub mod primitives;

mod contour;
mod isovolume;
mod slice;
mod threshold;

pub use contour::DppContour;
pub use isovolume::DppIsovolume;
pub use primitives::{DppTrace, PrimitiveCounters, PrimitiveOp, PrimitiveReport};
pub use slice::DppSlice;
pub use threshold::DppThreshold;

use crate::filter::Algorithm;

/// Which execution backend a spec is built for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Backend {
    /// The fused-loop formulations the paper measured.
    Traditional,
    /// The data-parallel-primitives formulations in this module.
    Dpp,
}

impl Backend {
    /// Both backends, traditional first (the default/baseline).
    pub const ALL: [Backend; 2] = [Backend::Traditional, Backend::Dpp];

    /// Wire/CLI name.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Traditional => "traditional",
            Backend::Dpp => "dpp",
        }
    }

    /// Parse a CLI-style name (case-insensitive, with aliases).
    pub fn parse(s: &str) -> Option<Backend> {
        match s.to_ascii_lowercase().as_str() {
            "traditional" | "trad" | "baseline" => Some(Backend::Traditional),
            "dpp" | "primitives" | "data-parallel" => Some(Backend::Dpp),
            _ => None,
        }
    }

    /// Whether this backend has a formulation of `alg`. Traditional
    /// covers all eight; DPP covers the four geometry-extraction kernels
    /// built on the flag/scan/compact + sort/reduce machinery.
    pub fn supports(self, alg: Algorithm) -> bool {
        match self {
            Backend::Traditional => true,
            Backend::Dpp => matches!(
                alg,
                Algorithm::Contour | Algorithm::Threshold | Algorithm::Isovolume | Algorithm::Slice
            ),
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The algorithms the DPP backend formulates, in registry order.
pub fn dpp_algorithms() -> impl Iterator<Item = Algorithm> {
    Algorithm::ALL
        .into_iter()
        .filter(|&a| Backend::Dpp.supports(a))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_names_round_trip() {
        for b in Backend::ALL {
            assert_eq!(Backend::parse(b.name()), Some(b));
        }
        assert_eq!(Backend::parse("TRAD"), Some(Backend::Traditional));
        assert_eq!(Backend::parse("primitives"), Some(Backend::Dpp));
        assert_eq!(Backend::parse("gpu"), None);
    }

    #[test]
    fn dpp_supports_exactly_four_kernels() {
        assert_eq!(dpp_algorithms().count(), 4);
        assert!(Backend::Dpp.supports(Algorithm::Contour));
        assert!(!Backend::Dpp.supports(Algorithm::RayTracing));
        for a in Algorithm::ALL {
            assert!(Backend::Traditional.supports(a));
        }
    }
}
