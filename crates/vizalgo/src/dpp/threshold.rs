//! DPP threshold: the flag → scan → compact pattern. Cell selection and
//! per-cell outputs are exactly the traditional filter's (same kept set,
//! same order, same carried values); the *point weld* is the one place
//! the formulations legitimately differ — the traditional filter numbers
//! points by first use in kept-cell order, while the DPP formulation
//! numbers them by a used-flag scatter + scan in grid order. The point
//! **sets** are identical; only their ordering (and therefore the
//! rounding of order-sensitive coordinate checksums) differs. See
//! docs/DPP.md for the documented tolerance.

use super::primitives::{self, DppTrace, PrimitiveOp};
use crate::filter::{Filter, FilterOutput};
use crate::threshold::ThresholdPolicy;
use vizmesh::{Association, CellSet, CellShape, DataSet, Field, UniformGrid, Vec3};

/// Threshold over data-parallel primitives: same parameters and kept
/// cells as [`crate::Threshold`]; DPP point numbering (grid order).
#[derive(Debug, Clone)]
pub struct DppThreshold {
    pub field: String,
    pub lo: f64,
    pub hi: f64,
    pub policy: ThresholdPolicy,
}

impl DppThreshold {
    pub fn new(field: impl Into<String>, lo: f64, hi: f64) -> Self {
        assert!(lo <= hi, "threshold range is inverted: [{lo}, {hi}]");
        DppThreshold {
            field: field.into(),
            lo,
            hi,
            policy: ThresholdPolicy::AllPoints,
        }
    }

    #[inline]
    fn in_range(&self, v: f64) -> bool {
        v >= self.lo && v <= self.hi
    }
}

impl Filter for DppThreshold {
    fn name(&self) -> &'static str {
        "Threshold"
    }

    fn execute(&self, input: &DataSet) -> FilterOutput {
        let grid = input
            .as_uniform()
            // lint: infallible because the study harness only feeds uniform grids
            .expect("threshold expects a structured dataset");
        let cell_vals = input.cell_scalars(&self.field);
        let point_vals = input.point_scalars(&self.field);
        assert!(
            cell_vals.is_some() || point_vals.is_some(),
            "missing scalar field '{}'",
            self.field
        );
        let num_cells = grid.num_cells();
        let num_points = grid.num_points();
        let mut trace = DppTrace::new();

        // 1. map: the keep flag per cell (same predicate as traditional).
        let bytes_per_cell = if cell_vals.is_some() { 8 } else { 64 + 32 };
        let keep: Vec<bool> = primitives::map_n(&mut trace, num_cells, bytes_per_cell, |c| {
            if let Some(vals) = cell_vals {
                self.in_range(vals[c])
            } else {
                // lint: infallible because the assert above guarantees point values
                let vals = point_vals.unwrap();
                let ids = grid.cell_point_ids(c);
                match self.policy {
                    ThresholdPolicy::AllPoints => ids.iter().all(|&p| self.in_range(vals[p])),
                    ThresholdPolicy::AnyPoint => ids.iter().any(|&p| self.in_range(vals[p])),
                }
            }
        });
        trace.record_flops(PrimitiveOp::Map, 2 * num_cells as u64);

        // 2. compact: the kept cell ids, in cell order.
        let kept = primitives::compact_indices(&mut trace, &keep);

        // 3. point weld, DPP-style: scatter a used flag per referenced
        // point, scan it into dense ranks, gather coordinates in grid
        // order. (The traditional filter instead numbers points by first
        // use — same set, different order.)
        let mut used: Vec<u32> = vec![0; num_points];
        mark_used_points(grid, &kept, &mut used);
        trace.record(
            PrimitiveOp::Scatter,
            8 * kept.len() as u64,
            32 * kept.len() as u64,
            4 * 8 * kept.len() as u64,
        );
        let ranks = primitives::inclusive_scan(&mut trace, &used);
        let num_out_points = ranks.last().copied().unwrap_or(0) as usize;
        let used_flags: Vec<bool> = primitives::map(&mut trace, &used, |&u| u != 0);
        let used_pids = primitives::compact_indices(&mut trace, &used_flags);
        let points: Vec<Vec3> = primitives::map(&mut trace, &used_pids, |&pid| {
            grid.point_coord_id(pid as usize)
        });
        debug_assert_eq!(points.len(), num_out_points);

        // 4. gather: connectivity through the rank table, cell payloads.
        let cells = emit_cells(grid, &kept, &ranks);
        trace.record(
            PrimitiveOp::Gather,
            8 * kept.len() as u64,
            (8 * (4 + 4) * kept.len()) as u64,
            4 * 8 * kept.len() as u64,
        );
        let out_cell_vals: Vec<f64> = match cell_vals {
            Some(vals) => primitives::gather(&mut trace, vals, &kept),
            None => Vec::new(),
        };

        let mut ds = DataSet::explicit(points, cells);
        if cell_vals.is_some() {
            ds.add_field(Field::scalar(
                self.field.clone(),
                Association::Cells,
                out_cell_vals,
            ));
        }
        FilterOutput::data_with_primitives(ds, trace.kernel_reports(), trace.reports())
    }
}

/// Scatter worklet: flag every point referenced by a kept cell.
fn mark_used_points(grid: &UniformGrid, kept: &[u32], used: &mut [u32]) {
    for &c in kept {
        for &pid in &grid.cell_point_ids(c as usize) {
            used[pid] = 1;
        }
    }
}

/// Gather worklet: kept-cell connectivity through the scanned ranks
/// (`rank − 1` is the dense id of a used point).
fn emit_cells(grid: &UniformGrid, kept: &[u32], ranks: &[u32]) -> CellSet {
    let mut cells = CellSet::with_capacity(kept.len(), 8 * kept.len());
    for &c in kept {
        let ids = grid.cell_point_ids(c as usize);
        let mut conn = [0u32; 8];
        for (slot, &pid) in ids.iter().enumerate() {
            conn[slot] = ranks[pid] - 1;
        }
        cells.push(CellShape::Hexahedron, &conn);
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::threshold::Threshold;
    use vizmesh::UniformGrid;

    fn x_ramp(n: usize) -> DataSet {
        let grid = UniformGrid::cube_cells(n);
        let vals: Vec<f64> = (0..grid.num_cells())
            .map(|c| grid.cell_ijk(c)[0] as f64)
            .collect();
        DataSet::uniform(grid).with_field(Field::scalar("v", Association::Cells, vals))
    }

    #[test]
    fn dpp_threshold_keeps_the_same_cells_and_values() {
        let ds = x_ramp(4);
        let trad = Threshold::new("v", 1.0, 2.0).execute(&ds);
        let dpp = DppThreshold::new("v", 1.0, 2.0).execute(&ds);
        let t = trad.dataset.unwrap();
        let d = dpp.dataset.unwrap();
        assert_eq!(t.num_cells(), d.num_cells());
        assert_eq!(t.num_points(), d.num_points());
        // Kept cells come out in the same order, carrying the same cell
        // values bit-for-bit.
        assert_eq!(t.cell_scalars("v").unwrap(), d.cell_scalars("v").unwrap());
        // The point *sets* agree even though the numbering differs:
        // compare sorted coordinate triples exactly.
        let (tp, _) = t.as_explicit().unwrap();
        let (dp, _) = d.as_explicit().unwrap();
        let mut ts: Vec<_> = tp
            .iter()
            .map(|p| (p.x.to_bits(), p.y.to_bits(), p.z.to_bits()))
            .collect();
        let mut dsx: Vec<_> = dp
            .iter()
            .map(|p| (p.x.to_bits(), p.y.to_bits(), p.z.to_bits()))
            .collect();
        ts.sort_unstable();
        dsx.sort_unstable();
        assert_eq!(ts, dsx);
        assert!(!dpp.primitives.is_empty());
    }

    #[test]
    fn dpp_threshold_empty_and_full_ranges() {
        let ds = x_ramp(3);
        let empty = DppThreshold::new("v", 100.0, 200.0).execute(&ds);
        assert_eq!(empty.dataset.unwrap().num_cells(), 0);
        let full = DppThreshold::new("v", 0.0, 3.0).execute(&ds);
        let out = full.dataset.unwrap();
        assert_eq!(out.num_cells(), 27);
        assert_eq!(out.num_points(), 64);
    }

    #[test]
    fn dpp_threshold_point_policy_matches_traditional_counts() {
        let grid = UniformGrid::cube_cells(2);
        let vals: Vec<f64> = (0..grid.num_points())
            .map(|p| grid.point_coord_id(p).x)
            .collect();
        let ds = DataSet::uniform(grid).with_field(Field::scalar("v", Association::Points, vals));
        let out = DppThreshold::new("v", 0.0, 0.5).execute(&ds);
        assert_eq!(out.dataset.unwrap().num_cells(), 4);
    }
}
