//! The data-parallel primitive vocabulary (Bethel et al.,
//! arXiv:2010.02361): seven deterministic building blocks every DPP
//! kernel formulation is composed from, each instrumented with
//! element/byte counters so a formulation's *shape* — how much data each
//! primitive touches — is observable in the run journal as schema-v6
//! `Primitive` spans (see docs/OBSERVABILITY.md and docs/DPP.md).
//!
//! The implementations are intentionally **sequential reference
//! executions**: the point of the backend is to change the *formulation*
//! (and therefore the instruction/byte mix powersim models), not to race
//! the traditional kernels on wall clock. Determinism also keeps the
//! differential conformance suite exact where the math is exact.

use crate::filter::{KernelClass, KernelReport};
use vizmesh::WorkCounters;

/// One primitive operation in the vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrimitiveOp {
    /// Elementwise transform (worklet application).
    Map,
    /// Inclusive prefix sum over `u32` counts.
    InclusiveScan,
    /// `out[i] = src[idx[i]]`.
    Gather,
    /// `out[idx[i]] = src[i]`.
    Scatter,
    /// Keep flagged elements, preserving order.
    Compact,
    /// Stable key ordering for (key, payload) pairs.
    SortByKey,
    /// Collapse runs of equal keys in sorted pairs.
    ReduceByKey,
}

impl PrimitiveOp {
    /// Every op, in the canonical report order.
    pub const ALL: [PrimitiveOp; 7] = [
        PrimitiveOp::Map,
        PrimitiveOp::InclusiveScan,
        PrimitiveOp::Gather,
        PrimitiveOp::Scatter,
        PrimitiveOp::Compact,
        PrimitiveOp::SortByKey,
        PrimitiveOp::ReduceByKey,
    ];

    /// Wire/report name.
    pub fn name(self) -> &'static str {
        match self {
            PrimitiveOp::Map => "map",
            PrimitiveOp::InclusiveScan => "inclusive_scan",
            PrimitiveOp::Gather => "gather",
            PrimitiveOp::Scatter => "scatter",
            PrimitiveOp::Compact => "compact",
            PrimitiveOp::SortByKey => "sort_by_key",
            PrimitiveOp::ReduceByKey => "reduce_by_key",
        }
    }

    /// The power-model kernel class the op's traffic is characterized
    /// as: `Map` carries the worklet math (classification-shaped);
    /// everything else is data movement.
    pub fn kernel_class(self) -> KernelClass {
        match self {
            PrimitiveOp::Map => KernelClass::CellClassify,
            _ => KernelClass::GatherScatter,
        }
    }

    /// Modeled instruction cost per element (compare/loop overhead for
    /// movement ops, branch-heavy merge work for sort).
    fn instructions_per_element(self) -> u64 {
        match self {
            PrimitiveOp::Map => 12,
            PrimitiveOp::InclusiveScan => 6,
            PrimitiveOp::Gather => 5,
            PrimitiveOp::Scatter => 5,
            PrimitiveOp::Compact => 9,
            PrimitiveOp::SortByKey => 40,
            PrimitiveOp::ReduceByKey => 10,
        }
    }
}

/// Accumulated traffic for one op across a filter execution.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PrimitiveCounters {
    /// Number of primitive invocations.
    pub invocations: u64,
    /// Total elements processed.
    pub elements: u64,
    pub bytes_read: u64,
    pub bytes_written: u64,
    /// Floating-point ops performed inside `Map` worklets (zero for the
    /// pure data-movement ops).
    pub flops: u64,
}

/// One op's counters, labelled — the per-execution record a DPP filter
/// returns in [`FilterOutput::primitives`](crate::FilterOutput) and the
/// payload of a journal `Primitive` span.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrimitiveReport {
    pub op: PrimitiveOp,
    pub counters: PrimitiveCounters,
}

/// The per-execution trace a DPP formulation records into: one counter
/// slot per op, merged across every primitive invocation.
#[derive(Debug, Clone, Default)]
pub struct DppTrace {
    slots: [PrimitiveCounters; PrimitiveOp::ALL.len()],
}

impl DppTrace {
    pub fn new() -> Self {
        DppTrace::default()
    }

    #[inline]
    fn slot(&mut self, op: PrimitiveOp) -> &mut PrimitiveCounters {
        let i = match op {
            PrimitiveOp::Map => 0,
            PrimitiveOp::InclusiveScan => 1,
            PrimitiveOp::Gather => 2,
            PrimitiveOp::Scatter => 3,
            PrimitiveOp::Compact => 4,
            PrimitiveOp::SortByKey => 5,
            PrimitiveOp::ReduceByKey => 6,
        };
        &mut self.slots[i]
    }

    /// Record one invocation of `op` over `elements` elements.
    #[inline]
    pub fn record(&mut self, op: PrimitiveOp, elements: u64, bytes_read: u64, bytes_written: u64) {
        let s = self.slot(op);
        s.invocations += 1;
        s.elements += elements;
        s.bytes_read += bytes_read;
        s.bytes_written += bytes_written;
    }

    /// Attribute worklet floating-point work to `op` (normally `Map`).
    #[inline]
    pub fn record_flops(&mut self, op: PrimitiveOp, flops: u64) {
        self.slot(op).flops += flops;
    }

    /// Reports for every op that saw traffic, in [`PrimitiveOp::ALL`]
    /// order.
    pub fn reports(&self) -> Vec<PrimitiveReport> {
        let mut out = Vec::with_capacity(PrimitiveOp::ALL.len());
        for (i, &op) in PrimitiveOp::ALL.iter().enumerate() {
            if self.slots[i].invocations > 0 {
                out.push(PrimitiveReport {
                    op,
                    counters: self.slots[i],
                });
            }
        }
        out
    }

    /// The same traffic as power-model kernel reports (`dpp-<op>`), so a
    /// DPP execution feeds `characterize` → powersim exactly like a
    /// traditional one — with a data-movement-heavy mix instead of the
    /// traditional fused-loop mix. That shift is the quantity the
    /// Bethel-style study measures.
    pub fn kernel_reports(&self) -> Vec<KernelReport> {
        let active = self.reports();
        let mut out = Vec::with_capacity(active.len());
        for r in active {
            out.push(KernelReport::new(
                kernel_name(r.op),
                r.op.kernel_class(),
                work_counters(r),
            ));
        }
        out
    }
}

/// Static `dpp-<op>` kernel names (KernelReport holds `&'static str`).
fn kernel_name(op: PrimitiveOp) -> &'static str {
    match op {
        PrimitiveOp::Map => "dpp-map",
        PrimitiveOp::InclusiveScan => "dpp-inclusive-scan",
        PrimitiveOp::Gather => "dpp-gather",
        PrimitiveOp::Scatter => "dpp-scatter",
        PrimitiveOp::Compact => "dpp-compact",
        PrimitiveOp::SortByKey => "dpp-sort-by-key",
        PrimitiveOp::ReduceByKey => "dpp-reduce-by-key",
    }
}

/// Lower a primitive report into the shared work-counter currency.
fn work_counters(r: PrimitiveReport) -> WorkCounters {
    let c = r.counters;
    let mut w = WorkCounters::new();
    w.items = c.elements;
    // Sort does O(n log n) comparisons; everything else is linear.
    let per = r.op.instructions_per_element();
    w.instructions = match r.op {
        PrimitiveOp::SortByKey => {
            let lg = (c.elements.max(2) as f64).log2().ceil() as u64;
            c.elements * per.max(1) * lg.max(1) / 8
        }
        _ => c.elements * per,
    };
    w.flops = c.flops;
    w.bytes_read = c.bytes_read;
    w.bytes_written = c.bytes_written;
    w.working_set_bytes = c.bytes_read.max(c.bytes_written);
    w
}

/// `map`: elementwise transform of a slice.
pub fn map<T, U>(trace: &mut DppTrace, input: &[T], mut f: impl FnMut(&T) -> U) -> Vec<U> {
    let mut out = Vec::with_capacity(input.len());
    for x in input {
        out.push(f(x));
    }
    trace.record(
        PrimitiveOp::Map,
        input.len() as u64,
        (std::mem::size_of::<T>() * input.len()) as u64,
        (std::mem::size_of::<U>() * input.len()) as u64,
    );
    out
}

/// `map` over an index space `0..n` (a worklet reading `bytes_read_per`
/// bytes of gathered input per element).
pub fn map_n<U>(
    trace: &mut DppTrace,
    n: usize,
    bytes_read_per: u64,
    mut f: impl FnMut(usize) -> U,
) -> Vec<U> {
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        out.push(f(i));
    }
    trace.record(
        PrimitiveOp::Map,
        n as u64,
        bytes_read_per * n as u64,
        (std::mem::size_of::<U>() * n) as u64,
    );
    out
}

/// `inclusive_scan`: prefix sums; `out[i] = input[0] + … + input[i]`.
pub fn inclusive_scan(trace: &mut DppTrace, input: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(input.len());
    let mut acc = 0u32;
    for &x in input {
        acc += x;
        out.push(acc);
    }
    trace.record(
        PrimitiveOp::InclusiveScan,
        input.len() as u64,
        4 * input.len() as u64,
        4 * input.len() as u64,
    );
    out
}

/// `gather`: `out[i] = src[idx[i]]`.
pub fn gather<T: Copy>(trace: &mut DppTrace, src: &[T], idx: &[u32]) -> Vec<T> {
    let mut out = Vec::with_capacity(idx.len());
    for &i in idx {
        out.push(src[i as usize]);
    }
    trace.record(
        PrimitiveOp::Gather,
        idx.len() as u64,
        (idx.len() * (4 + std::mem::size_of::<T>())) as u64,
        (idx.len() * std::mem::size_of::<T>()) as u64,
    );
    out
}

/// `scatter`: `out[idx[i]] = src[i]` (indices must be unique — the
/// deterministic-scatter contract).
pub fn scatter<T: Copy>(trace: &mut DppTrace, src: &[T], idx: &[u32], out: &mut [T]) {
    assert_eq!(src.len(), idx.len(), "scatter src/idx length mismatch");
    for (v, &i) in src.iter().zip(idx) {
        out[i as usize] = *v;
    }
    trace.record(
        PrimitiveOp::Scatter,
        idx.len() as u64,
        (idx.len() * (4 + std::mem::size_of::<T>())) as u64,
        (idx.len() * std::mem::size_of::<T>()) as u64,
    );
}

/// `compact`: keep `src[i]` where `flags[i]`, preserving order.
pub fn compact<T: Copy>(trace: &mut DppTrace, src: &[T], flags: &[bool]) -> Vec<T> {
    assert_eq!(src.len(), flags.len(), "compact src/flags length mismatch");
    let kept = flags.iter().filter(|&&f| f).count();
    let mut out = Vec::with_capacity(kept);
    for (v, &f) in src.iter().zip(flags) {
        if f {
            out.push(*v);
        }
    }
    trace.record(
        PrimitiveOp::Compact,
        src.len() as u64,
        (src.len() * (1 + std::mem::size_of::<T>())) as u64,
        (kept * std::mem::size_of::<T>()) as u64,
    );
    out
}

/// `compact` over the index space: the indices whose flag is set, in
/// ascending order.
pub fn compact_indices(trace: &mut DppTrace, flags: &[bool]) -> Vec<u32> {
    let kept = flags.iter().filter(|&&f| f).count();
    let mut out = Vec::with_capacity(kept);
    for (i, &f) in flags.iter().enumerate() {
        if f {
            out.push(i as u32);
        }
    }
    trace.record(
        PrimitiveOp::Compact,
        flags.len() as u64,
        flags.len() as u64,
        4 * kept as u64,
    );
    out
}

/// `sort_by_key`: order (key, payload) pairs by the full tuple, so equal
/// keys tie-break on payload — deterministic regardless of input order.
pub fn sort_by_key(trace: &mut DppTrace, pairs: &mut [(u64, u32)]) {
    pairs.sort_unstable();
    trace.record(
        PrimitiveOp::SortByKey,
        pairs.len() as u64,
        12 * pairs.len() as u64,
        12 * pairs.len() as u64,
    );
}

/// `reduce_by_key`: collapse runs of equal keys in key-sorted pairs with
/// `reduce`, yielding one (key, reduced payload) per distinct key in
/// first-appearance (= ascending-key) order.
pub fn reduce_by_key<P: Copy>(
    trace: &mut DppTrace,
    pairs: &[(u64, P)],
    mut reduce: impl FnMut(P, P) -> P,
) -> Vec<(u64, P)> {
    let mut distinct = 0usize;
    let mut prev = None;
    for &(k, _) in pairs {
        if prev != Some(k) {
            distinct += 1;
            prev = Some(k);
        }
    }
    let mut out: Vec<(u64, P)> = Vec::with_capacity(distinct);
    for &(k, p) in pairs {
        match out.last_mut() {
            Some(last) if last.0 == k => last.1 = reduce(last.1, p),
            _ => out.push((k, p)),
        }
    }
    trace.record(
        PrimitiveOp::ReduceByKey,
        pairs.len() as u64,
        (pairs.len() * (8 + std::mem::size_of::<P>())) as u64,
        (out.len() * (8 + std::mem::size_of::<P>())) as u64,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_empty_and_single() {
        let mut tr = DppTrace::new();
        let empty: Vec<i32> = map(&mut tr, &[] as &[i32], |&x| x * 2);
        assert!(empty.is_empty());
        assert_eq!(map(&mut tr, &[21], |&x: &i32| x * 2), vec![42]);
        let r = tr.reports();
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].op, PrimitiveOp::Map);
        assert_eq!(r[0].counters.invocations, 2);
        assert_eq!(r[0].counters.elements, 1);
    }

    #[test]
    fn scan_identity_and_prefix_sums() {
        let mut tr = DppTrace::new();
        assert!(inclusive_scan(&mut tr, &[]).is_empty());
        assert_eq!(inclusive_scan(&mut tr, &[7]), vec![7]);
        assert_eq!(inclusive_scan(&mut tr, &[1, 0, 2, 3]), vec![1, 1, 3, 6]);
        // Scan of all-zeros is the identity on length.
        assert_eq!(inclusive_scan(&mut tr, &[0, 0, 0]), vec![0, 0, 0]);
    }

    #[test]
    fn compact_all_pass_and_all_fail() {
        let mut tr = DppTrace::new();
        let src = [10, 20, 30];
        assert_eq!(compact(&mut tr, &src, &[true; 3]), vec![10, 20, 30]);
        assert!(compact(&mut tr, &src, &[false; 3]).is_empty());
        assert_eq!(compact(&mut tr, &src, &[false, true, false]), vec![20]);
        assert_eq!(
            compact_indices(&mut tr, &[true, false, true]),
            vec![0u32, 2]
        );
        assert!(compact_indices(&mut tr, &[]).is_empty());
    }

    #[test]
    fn gather_scatter_roundtrip() {
        let mut tr = DppTrace::new();
        let src = [1.0f64, 2.0, 3.0, 4.0];
        let idx = [3u32, 1, 0, 2];
        let g = gather(&mut tr, &src, &idx);
        assert_eq!(g, vec![4.0, 2.0, 1.0, 3.0]);
        let mut out = [0.0f64; 4];
        scatter(&mut tr, &g, &idx, &mut out);
        assert_eq!(out, src);
        assert!(gather(&mut tr, &src, &[]).is_empty());
    }

    #[test]
    fn sort_then_reduce_by_key_segments() {
        let mut tr = DppTrace::new();
        let mut pairs = [(5u64, 2u32), (3, 7), (5, 1), (3, 4), (9, 0)];
        sort_by_key(&mut tr, &mut pairs);
        assert_eq!(pairs, [(3, 4), (3, 7), (5, 1), (5, 2), (9, 0)]);
        let uniq = reduce_by_key(&mut tr, &pairs, |a, b| a.min(b));
        assert_eq!(uniq, vec![(3, 4), (5, 1), (9, 0)]);
        // Empty and single-element inputs.
        assert!(reduce_by_key(&mut tr, &[] as &[(u64, u32)], |a, _| a).is_empty());
        assert_eq!(reduce_by_key(&mut tr, &[(1, 8)], |a, _| a), vec![(1, 8)]);
    }

    #[test]
    fn trace_reports_only_active_ops_in_canonical_order() {
        let mut tr = DppTrace::new();
        let _ = inclusive_scan(&mut tr, &[1]);
        let _ = map(&mut tr, &[1u8], |&x| x);
        let r = tr.reports();
        // Map precedes InclusiveScan regardless of call order.
        assert_eq!(r.len(), 2);
        assert_eq!(r[0].op, PrimitiveOp::Map);
        assert_eq!(r[1].op, PrimitiveOp::InclusiveScan);
        let k = tr.kernel_reports();
        assert_eq!(k.len(), 2);
        assert_eq!(k[0].name, "dpp-map");
        assert!(k.iter().all(|kr| kr.work.items > 0));
    }

    #[test]
    fn flops_land_on_the_recorded_op() {
        let mut tr = DppTrace::new();
        let _ = map(&mut tr, &[1.0f64], |&x| x * 2.0);
        tr.record_flops(PrimitiveOp::Map, 17);
        assert_eq!(tr.reports()[0].counters.flops, 17);
    }
}
