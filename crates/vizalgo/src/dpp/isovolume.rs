//! DPP isovolume: flag-scan-compact cell selection in front of the same
//! per-cell subdivision worklet as the traditional filter.
//!
//! The classify map produces a three-way side code per cell, a compact
//! keeps the active (interior + straddling) cells in cell order, and the
//! subdivision worklet then processes exactly the cells the traditional
//! serial pass would have, in the same order, through the same shared
//! tet-clip machinery — so the output mesh is **bit-identical**. What
//! moves is the execution shape: classification and selection become
//! primitive traffic instead of a fused serial sweep.

use super::primitives::{self, DppTrace, PrimitiveOp};
use crate::arena::TetScratch;
use crate::filter::{Filter, FilterOutput};
use crate::tetclip::{clip_keep_above_into, clip_keep_below_into, TetMesh, HEX_TO_TETS};
use vizmesh::{Association, CellSet, CellShape, DataSet, Field, UniformGrid};

/// Cell side codes: 0 = out, 1 = fully in, 2 = straddles the band.
const OUT: u8 = 0;
const IN: u8 = 1;
const STRADDLE: u8 = 2;

/// Isovolume over data-parallel primitives: same parameters as
/// [`crate::Isovolume`], bit-identical output, DPP selection.
#[derive(Debug, Clone)]
pub struct DppIsovolume {
    pub field: String,
    pub lo: f64,
    pub hi: f64,
}

impl DppIsovolume {
    pub fn new(field: impl Into<String>, lo: f64, hi: f64) -> Self {
        assert!(lo <= hi, "isovolume range is inverted: [{lo}, {hi}]");
        DppIsovolume {
            field: field.into(),
            lo,
            hi,
        }
    }
}

impl Filter for DppIsovolume {
    fn name(&self) -> &'static str {
        "Isovolume"
    }

    fn execute(&self, input: &DataSet) -> FilterOutput {
        let grid = input
            .as_uniform()
            // lint: infallible because the study harness only feeds uniform grids
            .expect("isovolume expects a structured dataset");
        let values = input
            .point_scalars(&self.field)
            // lint: infallible because the pipeline registers the field before running
            .unwrap_or_else(|| panic!("missing point scalar field '{}'", self.field));
        let num_cells = grid.num_cells();
        let mut trace = DppTrace::new();

        // 1. map: three-way side classification (same predicate as the
        // traditional filter).
        let (lo, hi) = (self.lo, self.hi);
        let sides: Vec<u8> = primitives::map_n(&mut trace, num_cells, 64 + 32, |c| {
            let ids = grid.cell_point_ids(c);
            let mut all_in = true;
            let mut all_above_hi = true;
            let mut all_below_lo = true;
            for &p in &ids {
                let v = values[p];
                if v < lo || v > hi {
                    all_in = false;
                }
                if v <= hi {
                    all_above_hi = false;
                }
                if v >= lo {
                    all_below_lo = false;
                }
            }
            if all_in {
                IN
            } else if all_above_hi || all_below_lo {
                OUT
            } else {
                STRADDLE
            }
        });
        trace.record_flops(PrimitiveOp::Map, 2 * num_cells as u64);

        // 2. compact: active cells in cell order — interleaved In and
        // Straddle exactly as the traditional serial sweep visits them.
        let flags: Vec<bool> = primitives::map(&mut trace, &sides, |&s| s != OUT);
        let active = primitives::compact_indices(&mut trace, &flags);
        let mut num_in = 0usize;
        let mut num_straddle = 0usize;
        for &c in &active {
            if sides[c as usize] == IN {
                num_in += 1;
            } else {
                num_straddle += 1;
            }
        }

        // 3. the subdivision worklet over the compacted cells: identical
        // body (and shared tet-clip code) to the traditional filter, so
        // point ids, clip arithmetic, and cell order all match exactly.
        let (mesh, cells, points_welded, tets_clipped) = subdivide_active(
            grid,
            values,
            (lo, hi),
            &sides,
            &active,
            num_in,
            num_straddle,
        );
        // The worklet's traffic, in primitive currency: a map over the
        // active cells whose gathers weld points and whose tet clips are
        // FP work.
        trace.record(
            PrimitiveOp::Map,
            active.len() as u64,
            (active.len() * (64 + 32)) as u64,
            0,
        );
        trace.record(
            PrimitiveOp::Gather,
            points_welded,
            32 * points_welded,
            40 * points_welded,
        );
        trace.record_flops(PrimitiveOp::Map, 60 * tets_clipped);
        trace.record(
            PrimitiveOp::Scatter,
            cells.iter().count() as u64,
            0,
            36 * cells.iter().count() as u64,
        );

        let payloads = mesh.payloads.clone();
        let mut ds = DataSet::explicit(mesh.points, cells);
        let n = ds.num_points();
        ds.add_field(Field::scalar(
            self.field.clone(),
            Association::Points,
            payloads[..n].to_vec(),
        ));
        ds.compact_points();
        FilterOutput::data_with_primitives(ds, trace.kernel_reports(), trace.reports())
    }
}

/// The per-cell subdivision worklet: replicates the traditional filter's
/// serial body over the compacted active list. Owns (and pre-sizes) the
/// output mesh and cell set; returns them with the weld/clip tallies.
fn subdivide_active(
    grid: &UniformGrid,
    values: &[f64],
    (lo, hi): (f64, f64),
    sides: &[u8],
    active: &[u32],
    num_in: usize,
    num_straddle: usize,
) -> (TetMesh, CellSet, u64, u64) {
    let num_points = grid.num_points();
    let mut mesh = TetMesh::with_point_capacity(active.len().saturating_mul(2).min(num_points));
    let mut scratch = TetScratch::new();
    let mut point_map: Vec<u32> = vec![u32::MAX; num_points];
    let mut cells = CellSet::with_capacity(
        num_in + 12 * num_straddle,
        8 * num_in + 4 * 12 * num_straddle,
    );
    let mut points_welded = 0u64;
    let mut tets_clipped = 0u64;
    for &cell in active {
        let c = cell as usize;
        let ids = grid.cell_point_ids(c);
        let mut corner = [0u32; 8];
        for (slot, &pid) in ids.iter().enumerate() {
            if point_map[pid] == u32::MAX {
                point_map[pid] =
                    mesh.add_point_with(grid.point_coord_id(pid), values[pid], values[pid]);
                points_welded += 1;
            }
            corner[slot] = point_map[pid];
        }
        if sides[c] == IN {
            cells.push(CellShape::Hexahedron, &corner);
        } else {
            scratch.tets.clear();
            for t in HEX_TO_TETS {
                scratch
                    .tets
                    .push([corner[t[0]], corner[t[1]], corner[t[2]], corner[t[3]]]);
            }
            let _ = clip_keep_above_into(&mut mesh, &scratch.tets, lo, &mut scratch.mid);
            let _ = clip_keep_below_into(&mut mesh, &scratch.mid, hi, &mut scratch.kept);
            tets_clipped += scratch.tets.len() as u64;
            for &t in &scratch.kept {
                cells.push(CellShape::Tetra, &t);
            }
        }
    }
    (mesh, cells, points_welded, tets_clipped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isovolume::Isovolume;
    use vizmesh::{UniformGrid, Vec3};

    fn radial(n: usize) -> DataSet {
        let grid = UniformGrid::cube_cells(n);
        let c = Vec3::splat(0.5);
        let vals: Vec<f64> = (0..grid.num_points())
            .map(|p| grid.point_coord_id(p).distance(c))
            .collect();
        DataSet::uniform(grid).with_field(Field::scalar("f", Association::Points, vals))
    }

    #[test]
    fn dpp_isovolume_is_bit_identical_to_traditional() {
        let ds = radial(8);
        let trad = Isovolume::new("f", 0.2, 0.4).execute(&ds);
        let dpp = DppIsovolume::new("f", 0.2, 0.4).execute(&ds);
        let t = trad.dataset.unwrap();
        let d = dpp.dataset.unwrap();
        let (tp, tc) = t.as_explicit().unwrap();
        let (dp, dc) = d.as_explicit().unwrap();
        assert_eq!(tp.len(), dp.len());
        for (a, b) in tp.iter().zip(dp) {
            assert_eq!(a.x.to_bits(), b.x.to_bits());
            assert_eq!(a.y.to_bits(), b.y.to_bits());
            assert_eq!(a.z.to_bits(), b.z.to_bits());
        }
        assert_eq!(tc, dc);
        assert_eq!(t.point_scalars("f").unwrap(), d.point_scalars("f").unwrap());
        assert!(!dpp.primitives.is_empty());
    }

    #[test]
    fn dpp_isovolume_empty_band() {
        let ds = radial(4);
        let out = DppIsovolume::new("f", 5.0, 6.0).execute(&ds);
        assert_eq!(out.dataset.unwrap().num_cells(), 0);
    }
}
